// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§IV), plus ablations and substrate micro-benchmarks.
//
//	go test -bench=. -benchmem
//
// Tables III–V, Fig. 5, Eq. (4) and the ablations run at the "small" scale
// (DESIGN.md §6) with a shared, cached dataset per architecture; paper-scale
// runs are available through cmd/experiments -scale=paper. Reported custom
// metrics (b.ReportMetric) carry the table values: Rtop1/Etop1 percentages,
// K ranges, hit rates.
package simtune_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/metrics"
	"repro/internal/num"
	"repro/internal/predictor/registry"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/te"
)

// benchConfig is the shared small-scale experiment configuration. The
// dataset cache (in-memory + temp dir) makes the per-arch corpus a one-time
// cost across all benchmarks of a run.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Splits = 3
	cfg.CacheDir = os.TempDir() + "/simtune-bench-cache"
	return cfg
}

// BenchmarkTableI_CacheHierarchies instantiates the Table I hierarchies and
// drives a fixed blocked-matmul access trace through each, reporting L1D hit
// rates — the configuration data behind Table I, exercised end to end.
func BenchmarkTableI_CacheHierarchies(b *testing.B) {
	wl := te.MatMul(64, 64, 64)
	prog, err := lower.Build(schedule.New(wl.Op), isa.Lookup(isa.X86))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, prof := range hw.Profiles() {
			st, err := sim.Run(prog, prof.Caches)
			if err != nil {
				b.Fatal(err)
			}
			l1d, _ := st.Cache("L1D")
			b.ReportMetric(100*float64(l1d.ReadHits())/float64(l1d.ReadAccesses()),
				string(prof.Arch)+"_L1D_hit%")
		}
	}
	experiments.TableI(io.Discard)
}

// BenchmarkTableII_Workloads builds every Table II group at paper scale and
// lowers a default schedule, reporting total MACs.
func BenchmarkTableII_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var macs int64
		for g := 0; g < te.NumConvGroups; g++ {
			wl := te.ConvGroup(te.ScalePaper, g)
			if _, err := lower.Build(schedule.New(wl.Op), isa.Lookup(isa.ARM)); err != nil {
				b.Fatal(err)
			}
			macs += wl.Op.MACs()
		}
		b.ReportMetric(float64(macs), "paper_MACs")
	}
}

// predictionTableBench runs one of Tables III–V and reports the per-
// predictor mean Rtop1 and Etop1 across groups.
func predictionTableBench(b *testing.B, arch isa.Arch) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.PredictionResults(cfg, arch)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range registry.Names() {
			meanR, _ := tab.Summary(name, func(r metrics.Result) float64 { return r.Rtop1 })
			meanE, _ := tab.Summary(name, func(r metrics.Result) float64 { return r.Etop1 })
			b.ReportMetric(meanR, name+"_Rtop1%")
			b.ReportMetric(meanE, name+"_Etop1%")
		}
	}
}

// BenchmarkTableIII_PredictorsX86 reproduces Table III (x86).
func BenchmarkTableIII_PredictorsX86(b *testing.B) { predictionTableBench(b, isa.X86) }

// BenchmarkTableIV_PredictorsARM reproduces Table IV (ARM).
func BenchmarkTableIV_PredictorsARM(b *testing.B) { predictionTableBench(b, isa.ARM) }

// BenchmarkTableV_PredictorsRISCV reproduces Table V (RISC-V).
func BenchmarkTableV_PredictorsRISCV(b *testing.B) { predictionTableBench(b, isa.RISCV) }

// BenchmarkFig5_GroupHoldout reproduces Figure 5: Bayes predictions for
// group 3 with the group included vs excluded from training, per
// architecture, reporting the excluded-case Rtop1.
func BenchmarkFig5_GroupHoldout(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Fig5(cfg, 3, io.Discard, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range panels {
			tag := string(p.Arch) + "_incl"
			if !p.Included {
				tag = string(p.Arch) + "_excl"
			}
			b.ReportMetric(p.Metrics.Rtop1, tag+"_Rtop1%")
		}
	}
}

// BenchmarkEq4_Speedup reproduces the Eq. (4) analysis, reporting the
// per-architecture K ranges (paper: x86 [7,97], ARM [4,31], RISC-V [3,21]).
func BenchmarkEq4_Speedup(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, sums, err := experiments.Speedup(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range sums {
			b.ReportMetric(float64(s.KMin), string(s.Arch)+"_Kmin")
			b.ReportMetric(float64(s.KMax), string(s.Arch)+"_Kmax")
		}
	}
}

// BenchmarkAblationWindows compares oracle/static/dynamic normalization
// (§III-E claim: no accuracy loss from windows).
func BenchmarkAblationWindows(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WindowAblation(cfg, isa.ARM, 1, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Result.Rtop1, r.Window+"_Rtop1%")
		}
	}
}

// BenchmarkAblationFeatures compares feature subsets (§III-D claim: raw +
// normalized is the most promising input).
func BenchmarkAblationFeatures(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FeatureAblation(cfg, isa.ARM, 1, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			tag := strings.ReplaceAll(strings.Fields(r.Features)[0], "(", "")
			b.ReportMetric(r.Result.Spearman, tag+"_rho")
		}
	}
}

// BenchmarkAblationNoise quantifies reference-measurement noise vs ranking
// quality (why the paper repeats 15× with cooldowns and medians).
func BenchmarkAblationNoise(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NoiseAblation(cfg, isa.X86, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTrainSize sweeps the per-group training budget.
func BenchmarkAblationTrainSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TrainSizeAblation(cfg, isa.RISCV, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTuners compares AutoTVM tuners under a fixed trial
// budget.
func BenchmarkAblationTuners(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TunerComparison(cfg, isa.RISCV, 1, 48, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.BestTref*1e6, r.Tuner+"_best_us")
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkSimulatorThroughput measures instruction-accurate simulation
// speed (simulated instructions per host second), the quantity that bounds
// dataset generation. Instructions are accumulated across iterations —
// scaling one iteration's count by b.N would silently misreport if the
// workload ever varied per iteration. events/s reports the protocol-event
// rate of the block-aggregated executor→sink encoding (events ≪ instrs).
func BenchmarkSimulatorThroughput(b *testing.B) {
	wl := te.ConvGroup(te.ScaleSmall, 1)
	prog, err := lower.Build(schedule.New(wl.Op), isa.Lookup(isa.RISCV))
	if err != nil {
		b.Fatal(err)
	}
	var instrs, events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := sim.Run(prog, hw.Lookup(isa.RISCV).Caches)
		if err != nil {
			b.Fatal(err)
		}
		instrs += st.Total
		events += st.SinkEvents
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instr/s")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// mustBenchServer builds a service node (the error path is store-only and
// these configs are memory-only).
func mustBenchServer(b *testing.B, cfg service.Config) *service.Server {
	b.Helper()
	srv, err := service.NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// serviceBenchBatch builds one measurement batch of distinct candidate
// schedules (loop-order permutations) of the headline throughput workload.
func serviceBenchBatch(b *testing.B, n int) []service.Candidate {
	b.Helper()
	out := make([]service.Candidate, n)
	for i := range out {
		s := schedule.New(te.ConvGroup(te.ScaleSmall, 1).Op)
		perm := num.NthPerm(i, len(s.Leaves))
		order := make([]*schedule.IterVar, len(perm))
		for j, p := range perm {
			order[j] = s.Leaves[p]
		}
		if err := s.Reorder(order); err != nil {
			b.Fatal(err)
		}
		out[i].Steps = s.Steps
	}
	return out
}

// BenchmarkServiceThroughput measures the batch simulation service on the
// same workload as BenchmarkSimulatorThroughput (ConvGroup small/1, RISC-V):
// candidates per second through the in-process Backend, separately for the
// cold path (every candidate compiled and simulated on the 4-worker shard; a
// fresh server per iteration keeps the cache empty) and the hot path (the
// same batch re-submitted, served entirely by the content-addressed result
// cache). The hit/miss ratio is the scaling lever the service exists for:
// identical candidates re-proposed across tuning runs and clients cost a
// map lookup instead of a simulation.
func BenchmarkServiceThroughput(b *testing.B) {
	const batch = 32
	req := &service.SimulateRequest{
		Arch:       "riscv",
		Workload:   service.ConvGroupSpec(te.ScaleSmall, 1),
		Candidates: serviceBenchBatch(b, batch),
	}
	cfg := service.Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 4}
	ctx := context.Background()
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := mustBenchServer(b, cfg).Simulate(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if r := resp.Results[0]; r.Err != "" || r.CacheHit {
				b.Fatalf("cold path served %+v", r)
			}
		}
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "cand/s")
	})
	hit := func(b *testing.B, cfg service.Config) {
		srv := mustBenchServer(b, cfg)
		if _, err := srv.Simulate(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := srv.Simulate(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if r := resp.Results[0]; r.Err != "" || !r.CacheHit {
				b.Fatalf("hot path missed: %+v", r)
			}
		}
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "cand/s")
	}
	b.Run("hit", func(b *testing.B) { hit(b, cfg) })
	// The telemetry A/B pair: "hit" carries the full instrument panel
	// (per-stage histograms, trace spans); "hit-notel" disables it. The CI
	// metrics-smoke job asserts the gap stays under the 2% budget.
	cfgOff := cfg
	cfgOff.DisableTelemetry = true
	b.Run("hit-notel", func(b *testing.B) { hit(b, cfgOff) })
}

// BenchmarkBoundedResidency measures what the ARC memory bound costs at
// serve time: the same primed 64-candidate batch served by an unbounded node
// (every hit a RAM map lookup) vs a node bounded to 8 resident results over
// a durable store — ARC keeps the re-touched hot entries in RAM and every
// other hit reads through to the segment log. The disk-hit rate is the floor
// a memory-bounded node serves a corpus ≫ its RAM at; it must sit orders of
// magnitude above re-simulation (BenchmarkServiceThroughput/miss), because
// that is the bargain the bound strikes: cap RAM, never re-pay a simulation.
func BenchmarkBoundedResidency(b *testing.B) {
	const batch, bound = 64, 8
	req := &service.SimulateRequest{
		Arch:       "riscv",
		Workload:   service.ConvGroupSpec(te.ScaleSmall, 1),
		Candidates: serviceBenchBatch(b, batch),
	}
	ctx := context.Background()
	run := func(b *testing.B, cfg service.Config) {
		srv := mustBenchServer(b, cfg)
		if _, err := srv.Simulate(ctx, req); err != nil { // prime the corpus
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := srv.Simulate(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if r := resp.Results[0]; r.Err != "" || !r.CacheHit {
				b.Fatalf("primed batch missed: %+v", r)
			}
		}
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "cand/s")
		st, err := srv.Statusz(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.CacheResident), "resident")
	}
	b.Run("unbounded-ram", func(b *testing.B) {
		run(b, service.Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 4})
	})
	b.Run("bounded-disk", func(b *testing.B) {
		run(b, service.Config{
			Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 4,
			MaxResidentResults: bound, CacheDir: b.TempDir(),
		})
	})
}

// BenchmarkRouterThroughput measures the consistent-hash routing tier on the
// cache-hit path — the multi-node half of the BenchmarkServiceThroughput
// story. Parallel clients re-submit a primed 32-candidate batch; "direct" is
// the PR 2 single-node backend under the same parallel load, "1node" adds
// the routing tier in front of one node (its overhead: per-candidate key
// hashing and fan-out assembly), and "3node" shards the key space across
// three nodes so concurrent batches stop contending on a single cache map.
// Backends are in-process (no HTTP), isolating the routing machinery itself.
func BenchmarkRouterThroughput(b *testing.B) {
	const batch = 32
	req := &service.SimulateRequest{
		Arch:       "riscv",
		Workload:   service.ConvGroupSpec(te.ScaleSmall, 1),
		Candidates: serviceBenchBatch(b, batch),
	}
	cfg := service.Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 4}
	ctx := context.Background()

	hitPath := func(b *testing.B, backend service.Backend) {
		prime, err := backend.Simulate(ctx, req) // prime every owner
		if err != nil {
			b.Fatal(err)
		}
		// Wire cost per candidate: what one round trip of this batch would
		// move as JSON at the HTTP tier the in-process backends elide.
		// Encoded outside the timed loop so the metric rides along without
		// perturbing cand/s.
		reqBytes, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		respBytes, err := json.Marshal(prime)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				resp, err := backend.Simulate(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				if r := resp.Results[0]; r.Err != "" || !r.CacheHit {
					b.Fatalf("hot path missed: %+v", r)
				}
			}
		})
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "cand/s")
		b.ReportMetric(float64(len(reqBytes)+len(respBytes))/batch, "wire-B/cand")
	}
	cfgOff := cfg
	cfgOff.DisableTelemetry = true
	router := func(nodes int, cfg service.Config, rcfg service.RouterConfig) *service.Router {
		ids := make([]string, nodes)
		backends := make([]service.Backend, nodes)
		for i := range ids {
			ids[i] = fmt.Sprintf("node-%d", i)
			backends[i] = mustBenchServer(b, cfg)
		}
		rt, err := service.NewRouterBackends(ids, backends, rcfg)
		if err != nil {
			b.Fatal(err)
		}
		return rt
	}
	on := service.RouterConfig{ProbeInterval: -1}
	off := service.RouterConfig{ProbeInterval: -1, DisableTelemetry: true}

	b.Run("hit-direct", func(b *testing.B) { hitPath(b, mustBenchServer(b, cfg)) })
	b.Run("hit-1node", func(b *testing.B) { hitPath(b, router(1, cfg, on)) })
	b.Run("hit-3node", func(b *testing.B) { hitPath(b, router(3, cfg, on)) })
	// Telemetry A/B: the same fleet with every histogram and trace disabled
	// at both tiers — the router-path half of the <2% overhead budget.
	b.Run("hit-3node-notel", func(b *testing.B) { hitPath(b, router(3, cfgOff, off)) })
}

// BenchmarkTimingModel measures the cycle-approximate back-end.
func BenchmarkTimingModel(b *testing.B) {
	wl := te.ConvGroup(te.ScaleSmall, 1)
	prog, err := lower.Build(schedule.New(wl.Op), isa.Lookup(isa.ARM))
	if err != nil {
		b.Fatal(err)
	}
	prof := hw.Lookup(isa.ARM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := hw.NewMachine(prof)
		if err != nil {
			b.Fatal(err)
		}
		lower.Execute(prog, m, false)
	}
}

// BenchmarkCacheAccess measures raw cache-simulator throughput.
func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := num.NewRNG(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)], 4, i%4 == 0)
	}
}

// BenchmarkPredictorFit measures training cost of each predictor on a
// realistic feature matrix.
func BenchmarkPredictorFit(b *testing.B) {
	rng := num.NewRNG(9)
	n, d := 300, 43
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = row[0]*2 + row[1]*row[2]
	}
	for _, name := range registry.Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := registry.MustNew(name, num.NewRNG(uint64(i)))
				if err := p.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLowerBuild measures schedule-to-program compilation.
func BenchmarkLowerBuild(b *testing.B) {
	model := isa.Lookup(isa.X86)
	for i := 0; i < b.N; i++ {
		wl := te.ConvGroup(te.ScaleSmall, 2)
		if _, err := lower.Build(schedule.New(wl.Op), model); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneralizedPredictor reproduces the §V future-work extension:
// predictors trained on two architectures, applied to the untested third.
func BenchmarkGeneralizedPredictor(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Generalize(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Rtop1, string(r.Target)+"_"+r.Mode+"_Rtop1%")
		}
	}
}
