// Package simtune is the public API of this repository: a from-scratch Go
// reproduction of "Introducing Instruction-Accurate Simulators for
// Performance Estimation of Autotuning Workloads" (Pelke et al., DAC 2025).
//
// The library couples an ML-kernel autotuning stack (tensor expressions,
// schedules, AutoTVM-style template tuning and an Ansor-style
// auto-scheduler) with an instruction-accurate simulator (gem5-atomic
// analogue: instruction counts plus a parameterizable cache hierarchy) and
// trainable score predictors (linear regression, DNN, Gaussian-process
// Bayesian optimization, XGBoost) that turn simulator statistics into
// run-time rankings — so that autotuning can run on simulators instead of
// target hardware (paper Contribution I) and instruction-accurate, i.e.
// non-timing, simulators suffice to pick the fastest implementations
// (Contribution II).
//
// Quick start:
//
//	model, _ := simtune.TrainScorePredictor(simtune.TrainOptions{
//	    Arch: simtune.RISCV, Scale: simtune.ScaleSmall, Predictor: "XGBoost",
//	})
//	records, _ := model.TuneGroup(simtune.TuneGroupOptions{Group: 3, Trials: 200})
//	top := simtune.TopK(records, 5) // re-validate these on the real board
//
// See the examples/ directory for runnable programs and cmd/experiments for
// the paper's tables and figures.
package simtune

import (
	"fmt"
	"io"

	"repro/internal/ansor"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/num"
	"repro/internal/predictor"
	"repro/internal/predictor/registry"
	"repro/internal/service"
	"repro/internal/te"
)

// Arch identifies a target architecture.
type Arch = isa.Arch

// The three evaluated targets of the paper.
const (
	X86   = isa.X86
	ARM   = isa.ARM
	RISCV = isa.RISCV
)

// Archs lists all targets in paper order.
func Archs() []Arch { return isa.Archs() }

// Scale selects workload sizing (see DESIGN.md §6).
type Scale = te.Scale

// Available scales.
const (
	ScaleTiny  = te.ScaleTiny
	ScaleSmall = te.ScaleSmall
	ScalePaper = te.ScalePaper
)

// Metrics re-exports the paper's evaluation metrics.
type Metrics = metrics.Result

// Dataset is the training corpus of one (architecture, kernel type) pair.
type Dataset = core.Dataset

// Record is one auto-scheduler candidate measurement.
type Record = ansor.Record

// Predictor is a trainable score model.
type Predictor = predictor.Predictor

// PredictorNames lists the four paper predictors.
func PredictorNames() []string { return registry.Names() }

// TrainOptions configure TrainScorePredictor.
type TrainOptions struct {
	// Arch is the target CPU (x86/arm/riscv).
	Arch Arch
	// Scale sizes the Table II conv groups (default: small).
	Scale Scale
	// Predictor is one of PredictorNames() (default: "XGBoost").
	Predictor string
	// Groups are the Table II groups used for training (default: all five).
	Groups []int
	// ImplsPerGroup is the auto-scheduler budget per group (default 80;
	// paper: 500).
	ImplsPerGroup int
	// TestPerGroup implementations are held out per group for Evaluate
	// (default: ImplsPerGroup/4; paper: 100).
	TestPerGroup int
	// NParallel simulator instances run concurrently (default 4).
	NParallel int
	// Seed drives all randomness (default 1).
	Seed uint64
	// CacheDir persists the generated dataset across runs (optional).
	CacheDir string
}

func (o *TrainOptions) defaults() {
	if o.Scale == "" {
		o.Scale = ScaleSmall
	}
	if o.Predictor == "" {
		o.Predictor = "XGBoost"
	}
	if len(o.Groups) == 0 {
		o.Groups = []int{0, 1, 2, 3, 4}
	}
	if o.ImplsPerGroup <= 0 {
		o.ImplsPerGroup = 80
	}
	if o.TestPerGroup <= 0 {
		o.TestPerGroup = o.ImplsPerGroup / 4
	}
	if o.NParallel <= 0 {
		o.NParallel = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// TrainedModel is a score predictor trained for one architecture and kernel
// type (Fig. 4-I output) together with its training corpus.
type TrainedModel struct {
	Arch    Arch
	Scale   Scale
	Pred    Predictor
	Dataset *Dataset

	split core.SplitIndices
	norms map[int]core.GroupNorm
	opts  TrainOptions

	lastRunner *service.ServiceRunner
}

// TrainScorePredictor runs the paper's training phase: generate the dataset
// (auto-scheduler implementations measured natively and simulated), then fit
// the chosen predictor on group-normalized features and run times.
func TrainScorePredictor(opts TrainOptions) (*TrainedModel, error) {
	opts.defaults()
	if opts.Arch == "" {
		return nil, fmt.Errorf("simtune: TrainOptions.Arch is required")
	}
	cfg := core.DatasetConfig{
		Arch: opts.Arch, Scale: opts.Scale, Groups: opts.Groups,
		ImplsPerGroup: opts.ImplsPerGroup, BatchSize: 16,
		NParallel: opts.NParallel, MeasureOpt: hw.DefaultMeasureOptions(),
		Seed: opts.Seed,
	}
	if opts.Scale == ScaleTiny {
		cfg.MeasureOpt = hw.MeasureOptions{Nexe: 5, CooldownSec: 0.1}
		cfg.BatchSize = 8
	}
	ds, err := core.CachedDataset(cfg, opts.CacheDir)
	if err != nil {
		return nil, err
	}
	rng := num.NewRNG(opts.Seed + 7)
	split := ds.Split(rng.Split(), opts.TestPerGroup)
	x, y, norms, err := core.TrainingMatrix(ds, split, opts.Groups)
	if err != nil {
		return nil, err
	}
	pred, err := registry.New(opts.Predictor, rng.Split())
	if err != nil {
		return nil, err
	}
	if err := pred.Fit(x, y); err != nil {
		return nil, err
	}
	return &TrainedModel{
		Arch: opts.Arch, Scale: opts.Scale, Pred: pred, Dataset: ds,
		split: split, norms: norms, opts: opts,
	}, nil
}

// Evaluate computes the paper metrics on the held-out test split of one
// training group (oracle group means, the Tables III–V setting).
func (m *TrainedModel) Evaluate(group int) (Metrics, error) {
	gn, ok := m.norms[group]
	if !ok {
		return Metrics{}, fmt.Errorf("simtune: group %d was not in the training set", group)
	}
	return core.EvalGroup(m.Dataset, m.split, group, m.Pred, gn.Norm)
}

// EvaluateUnseen scores one group's held-out samples with a dynamic window,
// the setting for groups that never appeared in training (Fig. 5 d–f).
func (m *TrainedModel) EvaluateUnseen(group int) (Metrics, error) {
	return core.EvalGroup(m.Dataset, m.split, group, m.Pred, features.NewDynamicWindow())
}

// TuneGroupOptions configure the execution phase on a trained model.
type TuneGroupOptions struct {
	// Group is the Table II group to tune.
	Group int
	// Trials is the auto-scheduler budget.
	Trials int
	// BatchSize is the measurement batch (default 16).
	BatchSize int
	// NParallel simulator instances (default: the training setting).
	NParallel int
	// Window is "dynamic" (default) or "static".
	Window string
	// Seed drives the search (default: training seed + 1).
	Seed uint64
	// ServerURL switches the backend from in-process simulators to a
	// remote simulate service, e.g. "http://tuner-farm:8070". The URL may
	// point at a single server ("simtune serve") or, transparently, at a
	// consistent-hash routing tier over many servers ("simtune route") —
	// the wire protocol is identical. Candidates then travel as step logs,
	// are compiled and simulated server-side, and identical candidates —
	// from this run or any other client — are served from the fleet's
	// content-addressed result cache (each key owned by exactly one node).
	// Servers started with -cache-dir keep that cache across restarts, so
	// even a freshly restarted fleet absorbs previously tuned candidates.
	// Statistics are bit-identical to the in-process backend.
	ServerURL string
	// ServerRetries bounds re-submissions of a batch that failed with a
	// retryable service error — a restarting server, a router briefly
	// without live nodes (default 2; negative disables). Only meaningful
	// with ServerURL.
	ServerRetries int
}

// TuneGroup runs the execution phase of Fig. 4-II: simulator-only tuning of
// a group with the trained predictor; the target CPU is not required.
func (m *TrainedModel) TuneGroup(opts TuneGroupOptions) ([]Record, error) {
	if opts.Trials <= 0 {
		return nil, fmt.Errorf("simtune: TuneGroupOptions.Trials is required")
	}
	if opts.NParallel <= 0 {
		opts.NParallel = m.opts.NParallel
	}
	if opts.Seed == 0 {
		opts.Seed = m.opts.Seed + 1
	}
	eOpt := core.ExecutionOptions{
		Scale: m.Scale, Group: opts.Group, Trials: opts.Trials,
		BatchSize: opts.BatchSize, NParallel: opts.NParallel,
		Window: opts.Window, Seed: opts.Seed,
	}
	if opts.ServerURL != "" {
		runner := &service.ServiceRunner{
			Backend:  service.NewClient(opts.ServerURL),
			Arch:     m.Arch,
			Workload: service.ConvGroupSpec(m.Scale, opts.Group),
			NPar:     opts.NParallel,
			Retries:  opts.ServerRetries,
		}
		m.lastRunner = runner
		eOpt.Runner = runner
		eOpt.Builder = service.NopBuilder{}
	}
	return core.ExecutionPhase(hw.Lookup(m.Arch), m.Pred, eOpt)
}

// ServiceStats is the remote-backend client's own telemetry: batch attempts
// (including retries), how often the retry loop engaged, total backoff slept,
// and the per-attempt request latency histogram. It complements CacheStats,
// which describes what the fleet did; ServiceStats describes what this client
// experienced getting there.
type ServiceStats = service.ClientTelemetry

// ServiceStats reports the client telemetry of the most recent TuneGroup call
// that used ServerURL. The second return is false when no remote tuning has
// run on this model (in-process backends have no client tier to report on).
func (m *TrainedModel) ServiceStats() (ServiceStats, bool) {
	if m.lastRunner == nil {
		return ServiceStats{}, false
	}
	return m.lastRunner.Telemetry(), true
}

// CacheStats aggregates simulate-service cache bookkeeping over tuning
// records: cache hits, misses, and the simulation wall seconds actually
// spent (hits are free). With the in-process backend every record is a miss.
func CacheStats(records []Record) (hits, misses int, simSec float64) {
	return core.CacheStats(records)
}

// ValidateOnTarget re-measures the given records "natively" (on the timing
// model standing in for the board) and returns the best time and its index —
// the final step the paper recommends for the top 2–3% of predictions.
func (m *TrainedModel) ValidateOnTarget(group int, records []Record) (bestSec float64, idx int, err error) {
	return core.ValidateOnTarget(hw.Lookup(m.Arch), m.Scale, group, records,
		hw.DefaultMeasureOptions(), num.NewRNG(m.opts.Seed+99))
}

// TopK returns the k best-scored successful records.
func TopK(records []Record, k int) []Record { return core.TopK(records, k) }

// HardwareProfile returns the modelled CPU profile (Table I caches, clock,
// timing parameters) of an architecture.
func HardwareProfile(arch Arch) hw.Profile { return hw.Lookup(arch) }

// ConvGroupWorkload builds the Table II Conv2D+Bias+ReLU workload of a group
// at a scale (fresh tensors per call).
func ConvGroupWorkload(scale Scale, group int) *te.Workload { return te.ConvGroup(scale, group) }

// SavePredictor serializes a trained predictor so the execution phase can
// run on machines that never measure the target board (gob format).
func SavePredictor(p Predictor, w io.Writer) error { return registry.Save(p, w) }

// LoadPredictor restores a predictor saved with SavePredictor.
func LoadPredictor(r io.Reader) (Predictor, error) { return registry.Load(r) }
