// Command simtunelint runs the project's static-analysis suite (see
// internal/lint) over the module and exits non-zero on any diagnostic.
//
// Usage:
//
//	go run ./cmd/simtunelint ./...
//
// CI runs exactly that in the lint job; a finding is a build failure.
// The -list flag prints the analyzers and their one-line contracts.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", ".", "module directory to analyze")
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simtunelint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simtunelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
