package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTables(t *testing.T) {
	if err := run([]string{"-scale", "tiny", "table1", "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"-scale", "tiny", "bogus"}); err == nil {
		t.Fatal("unknown subcommand must error")
	}
}

func TestRunMissingSubcommand(t *testing.T) {
	if err := run([]string{"-scale", "tiny"}); err == nil {
		t.Fatal("missing subcommand must error")
	}
}

func TestRunBadScale(t *testing.T) {
	if err := run([]string{"-scale", "huge", "table1"}); err == nil {
		t.Fatal("bad scale must error")
	}
}

func TestRunSpeedupTiny(t *testing.T) {
	cache := t.TempDir()
	if err := run([]string{"-scale", "tiny", "-cache", cache, "speedup"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig5WithCSV(t *testing.T) {
	cache := t.TempDir()
	csv := filepath.Join(t.TempDir(), "fig5.csv")
	if err := run([]string{"-scale", "tiny", "-cache", cache,
		"-fig5-group", "2", "-csv", csv, "fig5"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("csv output empty")
	}
}
