// Command experiments regenerates every table and figure of the paper's
// evaluation section (§IV). Subcommands:
//
//	table1    Cache sizes and hierarchy of the used CPUs (Table I)
//	table2    Shapes of the Conv2D+Bias+ReLU kernels (Table II)
//	table3    Prediction results, x86 (Table III)
//	table4    Prediction results, ARM (Table IV)
//	table5    Prediction results, RISC-V (Table V)
//	fig5      Sorted run-time predictions, group in/out of training (Fig. 5)
//	speedup   Eq. (4) parallel-simulator break-even analysis
//	generalize  §V future-work extension: cross-CPU generalized predictors
//	ablate    DESIGN.md ablations (windows, features, noise, size, tuners)
//	all       everything above
//
// Flags select the scale ("tiny", "small", "paper"), budgets, the dataset
// cache directory and the output CSV path for fig5. -cpuprofile writes a
// pprof CPU profile of the whole run (the profile-capture workflow for the
// ROADMAP hot-spot list is documented in the README).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/te"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "small", "workload scale: tiny|small|paper")
	impls := fs.Int("impls", 0, "implementations per group (0 = scale default)")
	testPer := fs.Int("test", 0, "test implementations per group (0 = scale default)")
	splits := fs.Int("splits", 0, "random train/test re-splits (0 = scale default)")
	nPar := fs.Int("parallel", 4, "parallel simulator instances")
	seed := fs.Uint64("seed", 2025, "random seed")
	cacheDir := fs.String("cache", defaultCacheDir(), "dataset cache directory (empty = off)")
	fig5Group := fs.Int("fig5-group", 3, "group evaluated by fig5")
	csvPath := fs.String("csv", "", "write fig5 series to this CSV file")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("missing subcommand (table1..table5, fig5, speedup, generalize, ablate, all)")
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	scale, err := te.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	switch scale {
	case te.ScaleTiny:
		cfg = experiments.TinyConfig()
	case te.ScalePaper:
		cfg = experiments.PaperConfig()
	}
	if *impls > 0 {
		cfg.ImplsPerGroup = *impls
	}
	if *testPer > 0 {
		cfg.TestPerGroup = *testPer
	}
	if *splits > 0 {
		cfg.Splits = *splits
	}
	cfg.NParallel = *nPar
	cfg.Seed = *seed
	cfg.CacheDir = *cacheDir

	w := os.Stdout
	start := time.Now()
	var runOne func(name string) error
	runOne = func(name string) error {
		switch name {
		case "table1":
			experiments.TableI(w)
		case "table2":
			experiments.TableII(w, cfg.Scale)
		case "table3":
			_, err := experiments.TableIII(cfg, w)
			return err
		case "table4":
			_, err := experiments.TableIV(cfg, w)
			return err
		case "table5":
			_, err := experiments.TableV(cfg, w)
			return err
		case "fig5":
			var csvW *os.File
			if *csvPath != "" {
				f, err := os.Create(*csvPath)
				if err != nil {
					return err
				}
				defer f.Close()
				csvW = f
			}
			if csvW != nil {
				_, err := experiments.Fig5(cfg, *fig5Group, w, csvW)
				return err
			}
			_, err := experiments.Fig5(cfg, *fig5Group, w, nil)
			return err
		case "speedup":
			_, _, err := experiments.Speedup(cfg, w)
			return err
		case "generalize":
			_, err := experiments.Generalize(cfg, w)
			return err
		case "ablate":
			for _, arch := range isa.Archs() {
				if _, err := experiments.WindowAblation(cfg, arch, 1, w); err != nil {
					return err
				}
			}
			if _, err := experiments.FeatureAblation(cfg, isa.X86, 1, w); err != nil {
				return err
			}
			if _, err := experiments.NoiseAblation(cfg, isa.X86, w); err != nil {
				return err
			}
			if _, err := experiments.TrainSizeAblation(cfg, isa.RISCV, w); err != nil {
				return err
			}
			_, err := experiments.TunerComparison(cfg, isa.RISCV, 1, 48, w)
			return err
		case "all":
			for _, sub := range []string{"table1", "table2", "table3", "table4",
				"table5", "fig5", "speedup", "generalize", "ablate"} {
				fmt.Fprintf(w, "\n===== %s =====\n", sub)
				if err := runOne(sub); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unknown subcommand %q", name)
		}
		return nil
	}
	for _, name := range fs.Args() {
		if err := runOne(name); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "\n(done in %v, scale=%s, impls/group=%d, splits=%d)\n",
		time.Since(start).Round(time.Millisecond), cfg.Scale, cfg.ImplsPerGroup, cfg.Splits)
	return nil
}

func defaultCacheDir() string {
	return os.TempDir() + "/simtune-cache"
}
