// Command simtune tunes one Conv2D+Bias+ReLU group end to end, either the
// classic way (native measurement on the modelled target board) or the
// paper's way (parallel instruction-accurate simulators plus a trained score
// predictor), and prints the resulting best implementations. It can also run
// as the shared batch simulation server other tuning clients connect to, or
// as a consistent-hash router sharding the cache key space across several
// such servers.
//
// Examples:
//
//	simtune -arch riscv -group 1 -trials 64 -runner native
//	simtune -arch riscv -group 3 -trials 200 -runner sim -predictor XGBoost
//	simtune serve -addr :8070 -workers 8
//	simtune route -addr :8060 -nodes http://sim-0:8070,http://sim-1:8070,http://sim-2:8070
//	simtune -arch riscv -group 3 -trials 200 -runner sim -server http://tuner-farm:8060
//	simtune loadgen -seed 1 -steps 0.5,1,2 -report BENCH_10.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/ansor"
	"repro/internal/autotvm"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/num"
	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/te"

	simtune "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simtune:", err)
		os.Exit(1)
	}
}

// serve runs the batch simulation service until interrupted.
func serve(args []string) error {
	fs := flag.NewFlagSet("simtune serve", flag.ExitOnError)
	addr := fs.String("addr", ":8070", "listen address")
	archsFlag := fs.String("archs", "x86,arm,riscv", "comma-separated served architectures")
	workers := fs.Int("workers", 4, "simulator instances per architecture shard")
	cacheCap := fs.Int("cache-cap", 1<<18, "in-memory result cache capacity (entries)")
	maxResident := fs.Int("max-resident", 0, "ARC bound on results held in RAM; evicted results stay servable from -cache-dir (0 = use -cache-cap)")
	cacheDir := fs.String("cache-dir", "", "durable result store directory; a restarted server recovers its computed corpus from the segment log here (empty = memory only)")
	segBytes := fs.Int64("cache-seg-bytes", 0, "store segment rotation size in bytes (default 64 MB)")
	maxQueued := fs.Int("max-queued", 0, "admission bound: candidates held (queued+running) before new batches get 429 + Retry-After (default 65536)")
	tenantWeights := fs.String("tenant-weights", "", "fair-share weights for the admission gate, e.g. 'ci=3,adhoc=1' (unlisted tenants weigh 1)")
	drainTimeout := fs.Duration("drain-timeout", 0, "graceful-drain budget after SIGINT/SIGTERM: how long in-flight batches may finish before hard cancel (default 30s)")
	slowBatch := fs.Duration("slow-batch", 0, "log a structured slow-batch line for batches slower than this (0 = off)")
	traceRing := fs.Int("trace-ring", 0, "batch traces retained for GET /v1/traces (default 256, negative disables tracing)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	noTel := fs.Bool("no-telemetry", false, "disable stage histograms and tracing (counters on /v1/metrics remain)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var archs []isa.Arch
	for _, a := range strings.Split(*archsFlag, ",") {
		arch, err := isa.ParseArch(strings.TrimSpace(a))
		if err != nil {
			return err
		}
		archs = append(archs, arch)
	}
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		return err
	}
	srv, err := service.NewServer(service.Config{
		Archs: archs, WorkersPerArch: *workers, CacheCapacity: *cacheCap,
		MaxResidentResults: *maxResident, TenantWeights: weights,
		CacheDir: *cacheDir, CacheSegmentBytes: *segBytes,
		MaxQueuedCandidates: *maxQueued, DrainTimeout: *drainTimeout,
		SlowBatchThreshold: *slowBatch, TraceRingSize: *traceRing,
		EnablePprof: *pprofFlag, DisableTelemetry: *noTel,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("simtune serve: listening on %s (archs %v, %d workers/arch, cache cap %d)\n",
		*addr, archs, *workers, *cacheCap)
	if *cacheDir != "" {
		st, _ := srv.Statusz(ctx)
		fmt.Printf("  durable store %s: %d results recovered\n", *cacheDir, st.CacheDiskEntries)
	}
	fmt.Printf("  POST %s/v1/simulate   GET %s/v1/statusz   GET %s/v1/metrics\n", *addr, *addr, *addr)
	// SIGINT/SIGTERM cancel ctx; ListenAndServe then drains gracefully —
	// stops admitting (statusz flips to draining, routers rotate the node
	// out), lets in-flight batches finish within -drain-timeout, and flushes
	// and closes the durable store so everything computed this lifetime is
	// recoverable on the next start. Close here is an idempotent backstop
	// for the listen-error path.
	serveErr := srv.ListenAndServe(ctx, *addr)
	if err := srv.Close(); err != nil && serveErr == nil {
		serveErr = err
	}
	if ctx.Err() != nil {
		fmt.Println("simtune serve: drained and stopped")
	}
	return serveErr
}

// parseTenantWeights parses a 'name=weight,name=weight' flag value into the
// admission gate's fair-share map (nil when empty: every tenant weighs 1).
func parseTenantWeights(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	weights := make(map[string]float64)
	for _, kv := range strings.Split(spec, ",") {
		name, val, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found || name == "" {
			return nil, fmt.Errorf("-tenant-weights: %q wants name=weight", kv)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights: %q wants a positive weight", kv)
		}
		weights[name] = w
	}
	return weights, nil
}

// route runs the consistent-hash routing tier over N simulate servers until
// interrupted. The router speaks the exact wire protocol of a single server,
// so clients point -server at it unchanged; each cache key lives on exactly
// one node and a down node's key range drains to its ring successors.
func route(args []string) error {
	fs := flag.NewFlagSet("simtune route", flag.ExitOnError)
	addr := fs.String("addr", ":8060", "listen address")
	nodesFlag := fs.String("nodes", "", "comma-separated backend server URLs (required), e.g. http://sim-0:8070,http://sim-1:8070")
	replicas := fs.Int("replicas", 0, "virtual nodes per backend on the hash ring (default 128)")
	probe := fs.Duration("probe", 2*time.Second, "health-probe interval (a recovered node rejoins within one interval)")
	handoff := fs.Bool("handoff", true, "warm-handoff on rejoin: replay the keys a recovered node owns from its ring successors before it re-enters rotation")
	handoffChunk := fs.Int("handoff-chunk", 0, "results per fetch/ingest round trip during handoff (default 256)")
	rf := fs.Int("rf", 0, "replication factor: ring nodes holding each key — owner plus rf-1 successors (default 2; 1 disables replication)")
	antiEntropy := fs.Duration("antientropy", 0, "anti-entropy round interval: diff /v1/keys between replicas and repair gaps (default 1m; negative disables)")
	slowBatch := fs.Duration("slow-batch", 0, "log a structured slow-batch line for batches slower than this (0 = off)")
	traceRing := fs.Int("trace-ring", 0, "batch traces retained for GET /v1/traces (default 256, negative disables tracing)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	noTel := fs.Bool("no-telemetry", false, "disable stage histograms and tracing (counters on /v1/metrics remain)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var nodes []string
	for _, n := range strings.Split(*nodesFlag, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return fmt.Errorf("route: -nodes is required (comma-separated simulate-server URLs)")
	}
	rt, err := service.NewRouter(service.RouterConfig{
		Nodes: nodes, Replicas: *replicas, ProbeInterval: *probe,
		DisableHandoff: !*handoff, HandoffChunk: *handoffChunk,
		ReplicationFactor: *rf, AntiEntropyInterval: *antiEntropy,
		SlowBatchThreshold: *slowBatch, TraceRingSize: *traceRing,
		EnablePprof: *pprofFlag, DisableTelemetry: *noTel,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("simtune route: listening on %s, sharding across %d nodes:\n", *addr, len(nodes))
	for _, n := range nodes {
		fmt.Printf("  %s\n", n)
	}
	fmt.Printf("  POST %s/v1/simulate   GET %s/v1/statusz (aggregated)   GET %s/v1/metrics (fleet-merged)\n", *addr, *addr, *addr)
	return rt.ListenAndServe(ctx, *addr)
}

func run() error {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		return serve(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "route" {
		return route(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		return loadgenCmd(os.Args[2:])
	}
	archFlag := flag.String("arch", "riscv", "target architecture: x86|arm|riscv")
	scaleFlag := flag.String("scale", "small", "workload scale: tiny|small|paper")
	group := flag.Int("group", 1, "Table II conv group (0-4)")
	trials := flag.Int("trials", 64, "candidates to evaluate")
	runnerKind := flag.String("runner", "sim", "runner: native|sim|autotvm")
	predName := flag.String("predictor", "XGBoost", "score predictor for -runner sim")
	serverURL := flag.String("server", "", "simulate-service URL for -runner sim — a `simtune serve` node or a `simtune route` router, the protocol is identical (e.g. http://tuner-farm:8070); empty = in-process simulators")
	nPar := flag.Int("parallel", 4, "parallel simulator instances")
	implsPerGroup := flag.Int("train-impls", 40, "training implementations per group for -runner sim")
	seed := flag.Uint64("seed", 1, "random seed")
	topK := flag.Int("top", 5, "print the K best implementations")
	cacheDir := flag.String("cache", os.TempDir()+"/simtune-cache", "dataset cache directory")
	flag.Parse()

	arch, err := isa.ParseArch(*archFlag)
	if err != nil {
		return err
	}
	scale, err := te.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	prof := hw.Lookup(arch)
	start := time.Now()

	switch *runnerKind {
	case "native":
		return tuneNative(prof, scale, *group, *trials, *seed, *topK, start)
	case "autotvm":
		return tuneAutoTVM(prof, scale, *group, *trials, *seed, *topK, start)
	case "sim":
		return tuneSimulator(arch, scale, *group, *trials, *predName, *nPar,
			*implsPerGroup, *seed, *topK, *cacheDir, *serverURL, start)
	}
	return fmt.Errorf("unknown runner %q (want native|sim|autotvm)", *runnerKind)
}

// tuneNative measures every candidate on the modelled board (Fig. 2 flow).
func tuneNative(prof hw.Profile, scale te.Scale, group, trials int, seed uint64, topK int, start time.Time) error {
	g := group
	factory := func() *te.Workload { return te.ConvGroup(scale, g) }
	lr := runner.NewLocalRunner(prof, hw.DefaultMeasureOptions(), num.NewRNG(seed))
	records, err := searchWith(factory, prof.Arch, lr, trials, seed)
	if err != nil {
		return err
	}
	fmt.Printf("native tuning of group %d on %s: %d candidates, wall-clock cost %.0f s (with cooldowns)\n",
		group, prof.Arch, len(records), lr.WallClockSec())
	printTop(records, topK)
	fmt.Printf("(host time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// tuneAutoTVM uses the template-based flow with the model-guided tuner.
func tuneAutoTVM(prof hw.Profile, scale te.Scale, group, trials int, seed uint64, topK int, start time.Time) error {
	g := group
	factory := func() *te.Workload { return te.ConvGroup(scale, g) }
	tmpl := autotvm.ConvTemplate{}
	space, err := tmpl.Space(factory())
	if err != nil {
		return err
	}
	records, err := autotvm.Tune(factory, tmpl,
		autotvm.NewModelTuner(space, num.NewRNG(seed)),
		autotvm.Options{
			Trials: trials, BatchSize: 16,
			Builder: runner.LocalBuilder{Arch: prof.Arch},
			Runner:  runner.NewLocalRunner(prof, hw.DefaultMeasureOptions(), num.NewRNG(seed+1)),
		})
	if err != nil {
		return err
	}
	best := autotvm.Best(records)
	fmt.Printf("autotvm (xgb tuner) on group %d, %s: %d trials\n", group, prof.Arch, len(records))
	if best != nil {
		fmt.Printf("best config: %s  tref=%.6fs\n", space.String(best.Config), best.TimeSec)
		fmt.Printf("schedule: %s\n", renderSteps(best.Steps, factory))
	}
	fmt.Printf("(host time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// tuneSimulator is the paper's flow: train a predictor, tune on simulators
// only, then validate the top-K natively. With serverURL the tuning batches
// go to a shared simulate service instead of in-process simulators.
func tuneSimulator(arch isa.Arch, scale te.Scale, group, trials int, predName string, nPar, implsPerGroup int, seed uint64, topK int, cacheDir, serverURL string, start time.Time) error {
	trainGroups := []int{}
	for gi := 0; gi < te.NumConvGroups; gi++ {
		if gi != group {
			trainGroups = append(trainGroups, gi)
		}
	}
	fmt.Printf("training %s predictor for %s on groups %v (%d impls each)...\n",
		predName, arch, trainGroups, implsPerGroup)
	model, err := simtune.TrainScorePredictor(simtune.TrainOptions{
		Arch: arch, Scale: scale, Predictor: predName, Groups: trainGroups,
		ImplsPerGroup: implsPerGroup, NParallel: nPar, Seed: seed, CacheDir: cacheDir,
	})
	if err != nil {
		return err
	}
	if serverURL != "" {
		fmt.Printf("tuning group %d against simulate service %s (target board NOT used)...\n", group, serverURL)
	} else {
		fmt.Printf("tuning group %d on %d parallel simulators (target board NOT used)...\n", group, nPar)
	}
	records, err := model.TuneGroup(simtune.TuneGroupOptions{
		Group: group, Trials: trials, NParallel: nPar, ServerURL: serverURL,
	})
	if err != nil {
		return err
	}
	if serverURL != "" {
		hits, misses, simSec := simtune.CacheStats(records)
		fmt.Printf("service cache: %d hits / %d misses (%.0f%% absorbed), %.3f s simulated\n",
			hits, misses, 100*float64(hits)/float64(max(1, hits+misses)), simSec)
		if ct, ok := model.ServiceStats(); ok {
			fmt.Printf("service client: %d attempts (%d retried, %.1f s backoff), attempt p50=%.1fms p99=%.1fms\n",
				ct.Attempts, ct.Retries, ct.BackoffTotal.Seconds(),
				float64(ct.AttemptLatency.Quantile(0.5))/1e6,
				float64(ct.AttemptLatency.Quantile(0.99))/1e6)
		}
	}
	top := simtune.TopK(records, topK)
	fmt.Printf("top %d of %d candidates by predicted score:\n", len(top), len(records))
	for i, r := range top {
		fmt.Printf("  #%d score=%+.4f\n", i+1, r.Score)
	}
	best, idx, err := model.ValidateOnTarget(group, top)
	if err != nil {
		return err
	}
	fmt.Printf("validated on target: best candidate #%d runs in %.6f s\n", idx+1, best)
	fmt.Printf("(host time %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func printTop(records []searchRecord, k int) {
	// sort by score ascending
	idx := make([]int, len(records))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && records[idx[j]].score < records[idx[j-1]].score; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	if k > len(idx) {
		k = len(idx)
	}
	for i := 0; i < k; i++ {
		r := records[idx[i]]
		fmt.Printf("  #%d tref=%.6fs  %s\n", i+1, r.score, r.desc)
	}
}

type searchRecord struct {
	score float64
	desc  string
}

// searchWith runs the auto-scheduler against an arbitrary runner and adapts
// records for printing.
func searchWith(factory runner.WorkloadFactory, arch isa.Arch, r runner.Runner, trials int, seed uint64) ([]searchRecord, error) {
	opt := ansor.DefaultOptions()
	opt.Trials = trials
	opt.BatchSize = 16
	opt.Builder = runner.LocalBuilder{Arch: arch}
	opt.Runner = r
	recs, err := ansor.Search(factory, opt, num.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	out := make([]searchRecord, 0, len(recs))
	for _, rec := range recs {
		if rec.Err != nil {
			continue
		}
		out = append(out, searchRecord{score: rec.Score, desc: renderSteps(rec.Steps, factory)})
	}
	return out, nil
}

func renderSteps(steps []schedule.Step, factory runner.WorkloadFactory) string {
	wl := factory()
	s, err := schedule.Replay(wl.Op, steps)
	if err != nil {
		return fmt.Sprintf("(unrenderable: %v)", err)
	}
	return s.String()
}
