package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/service"
)

// loadgenCmd runs the seeded multi-tenant traffic generator: against -server
// (a live node or router), or — without it — against an in-process fleet of
// -nodes fresh servers behind an in-process router, which is the
// reproducible saturation-test fixture. With -report it writes the
// BENCH-style saturation artifact cmd/benchreport understands.
func loadgenCmd(args []string) error {
	fs := flag.NewFlagSet("simtune loadgen", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "trace seed; the same seed reproduces the same offered-load trace")
	duration := fs.Duration("duration", 3*time.Second, "offered-load window per sweep step")
	stepsFlag := fs.String("steps", "0.5,1,2", "comma-separated offered-load multipliers to sweep")
	tenantsFlag := fs.String("tenants", "", "tenant mix spec (see ParseTenants doc; empty = built-in 2-tenant batch/burst scenario)")
	isoFlag := fs.String("isolation", "", "compliant:aggressor tenant pair for the isolation verdict (default batch:burst with the built-in scenario)")
	serverURL := fs.String("server", "", "drive this live simulate service URL instead of an in-process fleet")
	nodes := fs.Int("nodes", 3, "in-process fleet size (ignored with -server)")
	workers := fs.Int("workers", 1, "simulator workers per arch on each in-process node")
	maxQueued := fs.Int("max-queued", 6, "per-node admission bound for the in-process fleet (candidates)")
	reportPath := fs.String("report", "", "write the saturation report JSON here")
	pr := fs.Int("pr", 0, "PR number stamped into the report envelope")
	title := fs.String("title", "Multi-tenant saturation sweep", "report envelope title")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := loadgen.Config{Seed: *seed, Duration: *duration}
	for _, s := range strings.Split(*stepsFlag, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		m, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("loadgen: -steps: %v", err)
		}
		cfg.Steps = append(cfg.Steps, m)
	}
	if *tenantsFlag == "" {
		cfg.Tenants = loadgen.DefaultScenario()
		if *isoFlag == "" {
			*isoFlag = "batch:burst"
		}
	} else {
		var err error
		cfg.Tenants, err = loadgen.ParseTenants(*tenantsFlag)
		if err != nil {
			return err
		}
	}
	if *isoFlag != "" {
		c, a, found := strings.Cut(*isoFlag, ":")
		if !found {
			return fmt.Errorf("loadgen: -isolation wants compliant:aggressor, got %q", *isoFlag)
		}
		cfg.Isolation = &loadgen.IsolationSpec{Compliant: c, Aggressor: a}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var backend service.Backend
	if *serverURL != "" {
		backend = service.NewClient(*serverURL)
		fmt.Printf("simtune loadgen: driving %s (seed %d, %d tenants, steps %v)\n",
			*serverURL, *seed, len(cfg.Tenants), cfg.Steps)
	} else {
		rt, cleanup, err := loadgen.LocalFleet(*nodes, service.Config{
			WorkersPerArch:      *workers,
			MaxQueuedCandidates: *maxQueued,
			TenantWeights:       cfg.TenantWeights(),
		})
		if err != nil {
			return err
		}
		defer cleanup()
		backend = rt
		fmt.Printf("simtune loadgen: in-process fleet of %d nodes (%d workers/arch, max-queued %d/node; seed %d, %d tenants, steps %v)\n",
			*nodes, *workers, *maxQueued, *seed, len(cfg.Tenants), cfg.Steps)
	}

	r := &loadgen.Runner{Backend: backend, Cfg: cfg, Log: func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	}}
	rep, err := r.Run(ctx)
	if err != nil {
		return err
	}
	if err := loadgen.ValidateReport(rep); err != nil {
		return err
	}

	fmt.Printf("trace_sha256 %s\n", rep.TraceSHA256)
	for _, s := range rep.Steps {
		fmt.Printf("step %-6s", s.Phase)
		for _, t := range s.Tenants {
			fmt.Printf("  %s: offered %d, p50 %.1fms p99 %.1fms, rejected %d",
				t.Tenant, t.OfferedCandidates, t.P50MS, t.P99MS, t.Rejected)
		}
		fmt.Println()
	}
	if iso := rep.Isolation; iso != nil {
		fmt.Printf("isolation %s vs %s: solo p99 %.1fms, contended p99 %.1fms (%.2fx), aggressor shed %d, compliant shed %d — isolated=%v\n",
			iso.Compliant, iso.Aggressor, iso.SoloP99MS, iso.ContendedP99MS,
			iso.P99Ratio, iso.AggressorRejected, iso.CompliantRejected, iso.Isolated)
	}

	if *reportPath != "" {
		envelope := struct {
			PR         int             `json:"pr"`
			Title      string          `json:"title"`
			Date       string          `json:"date"`
			Machine    string          `json:"machine"`
			Saturation *loadgen.Report `json:"saturation"`
		}{
			PR: *pr, Title: *title,
			Date:       time.Now().UTC().Format("2006-01-02"),
			Machine:    runtime.GOOS + "/" + runtime.GOARCH + " " + strconv.Itoa(runtime.NumCPU()) + " cpu",
			Saturation: rep,
		}
		buf, err := json.MarshalIndent(envelope, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*reportPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
	return nil
}
