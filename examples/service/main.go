// Simulation-as-a-service, scaled out: start three batch simulate servers,
// put a consistent-hash router in front of them, tune a kernel group through
// the router over HTTP, and watch the sharded content-addressed caches
// absorb a second tuning run almost entirely.
//
// In production the nodes run standalone (`simtune serve -addr :8070`) on
// separate machines and the router (`simtune route -nodes=...`) fronts them
// for any number of concurrent tuning clients; here everything is started
// in-process so the example is self-contained. A single node without the
// router works identically — the wire protocol is the same at every tier.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	simtune "repro"
	"repro/internal/service"
)

// listen serves h on a loopback port and returns its base URL.
func listen(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, h) }()
	return "http://" + ln.Addr().String()
}

func main() {
	// Three simulate-server nodes. Each key of the sha256 cache-key space
	// will live on exactly one of them, so concurrent clients dedupe
	// globally: the fleet never simulates the same candidate twice. Each
	// node gets a durable store directory (`simtune serve -cache-dir` in
	// production): a restarted node recovers its computed corpus from the
	// segment log instead of re-simulating it, and when it rejoins the ring
	// the router replays any keys it missed from the other nodes.
	storeRoot, err := os.MkdirTemp("", "simtune-service-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeRoot)
	var nodeURLs []string
	for i := 0; i < 3; i++ {
		node, err := service.NewServer(service.Config{
			WorkersPerArch: 2,
			CacheDir:       filepath.Join(storeRoot, fmt.Sprintf("node-%d", i)),
			// The admission gate (`simtune serve -max-queued` in production):
			// a node holding this many candidates rejects further batches
			// with 429 + Retry-After, and the router sheds them to the ring
			// successors instead of queueing without bound.
			MaxQueuedCandidates: 4096,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodeURLs = append(nodeURLs, listen(node.Handler()))
	}

	// The routing tier: consistent-hashes each candidate's cache key to its
	// owning node, fans sub-batches out, re-assembles results index-aligned,
	// and health-probes the nodes (a down node's keys drain to its ring
	// successors). Clients cannot tell it from a single server.
	rt, err := service.NewRouter(service.RouterConfig{Nodes: nodeURLs})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	routerURL := listen(rt.Handler())
	fmt.Printf("3 simulate nodes behind router %s\n\n", routerURL)

	// Train a predictor as usual (the training phase measures on the
	// modelled board, so it stays local), then tune through the router:
	// candidates travel as step logs, are compiled and simulated on their
	// owning node, and results come back bit-identical to in-process
	// simulation.
	model, err := simtune.TrainScorePredictor(simtune.TrainOptions{
		Arch: simtune.RISCV, Scale: simtune.ScaleTiny, Predictor: "XGBoost",
		Groups: []int{0, 1, 2}, ImplsPerGroup: 32, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	tune := func(label string) {
		records, err := model.TuneGroup(simtune.TuneGroupOptions{
			Group: 3, Trials: 48, BatchSize: 12, ServerURL: routerURL,
		})
		if err != nil {
			log.Fatal(err)
		}
		hits, misses, simSec := simtune.CacheStats(records)
		fmt.Printf("%s: %d candidates, cache %d hits / %d misses, %.3f s simulated server-side\n",
			label, len(records), hits, misses, simSec)
	}
	tune("first tuning run ")
	tune("second tuning run") // identical candidates: the sharded caches absorb it

	// The router's statusz aggregates the fleet: summed cache counters plus
	// a per-node breakdown showing how the key space split.
	st, err := service.NewClient(routerURL).Statusz(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrouter statusz: %d requests, %d candidates, hit rate %.0f%%, %d cached results across the fleet\n",
		st.Requests, st.Candidates, 100*st.HitRate(), st.CacheEntries)
	for _, n := range st.Nodes {
		fmt.Printf("  node %s: up=%v, %d candidates routed\n", n.ID, n.Up, n.Candidates)
	}
	if st.RejectedCandidates > 0 {
		fmt.Printf("  %d candidates were 429-rejected and shed across the ring\n", st.RejectedCandidates)
	}
}
