// Simulation-as-a-service: start a batch simulate server, tune a kernel
// group against it over HTTP, and watch the content-addressed result cache
// absorb a second tuning run almost entirely.
//
// The same server would normally run standalone (`simtune serve -addr
// :8070`) and be shared by many concurrent tuning clients; here it is
// started in-process so the example is self-contained.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	simtune "repro"
	"repro/internal/service"
)

func main() {
	// Start the simulate service on a loopback port. service.Local() is the
	// same server without sockets, for direct in-process use.
	srv := service.NewServer(service.Config{WorkersPerArch: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	url := "http://" + ln.Addr().String()
	fmt.Printf("simulate service listening on %s\n\n", url)

	// Train a predictor as usual (the training phase measures on the
	// modelled board, so it stays local), then tune through the service:
	// candidates travel as step logs, are compiled and simulated
	// server-side, and results come back bit-identical to in-process
	// simulation.
	model, err := simtune.TrainScorePredictor(simtune.TrainOptions{
		Arch: simtune.RISCV, Scale: simtune.ScaleTiny, Predictor: "XGBoost",
		Groups: []int{0, 1, 2}, ImplsPerGroup: 32, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	tune := func(label string) {
		records, err := model.TuneGroup(simtune.TuneGroupOptions{
			Group: 3, Trials: 48, BatchSize: 12, ServerURL: url,
		})
		if err != nil {
			log.Fatal(err)
		}
		hits, misses, simSec := simtune.CacheStats(records)
		fmt.Printf("%s: %d candidates, cache %d hits / %d misses, %.3f s simulated server-side\n",
			label, len(records), hits, misses, simSec)
	}
	tune("first tuning run ")
	tune("second tuning run") // identical candidates: the cache absorbs it

	st, err := service.NewClient(url).Statusz(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver statusz: %d requests, %d candidates, hit rate %.0f%%, %d cached results\n",
		st.Requests, st.Candidates, 100*st.HitRate(), st.CacheEntries)
	for _, sh := range st.Shards {
		if sh.Simulated > 0 {
			fmt.Printf("  shard %s: %d workers, %d simulations\n", sh.Arch, sh.Workers, sh.Simulated)
		}
	}
}
