// custom_hw shows the simulator substrate as a standalone library: define a
// custom cache hierarchy (a hypothetical embedded core with a small L1D),
// run the same scheduled kernel against it and against the stock SiFive
// U74 hierarchy, and compare cache behaviour — the "other metrics besides
// run time" use case of Contribution I, and the pre-silicon design-space
// exploration the paper's future work points at.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/te"
)

func main() {
	// A blocked 64×64×64 matmul for RV64.
	wl := te.MatMul(64, 64, 64)
	s := schedule.New(wl.Op)
	i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
	io, ii, _ := s.Split(i, 8)
	jo, ji, _ := s.Split(j, 8)
	ko, ki, _ := s.Split(k, 8)
	if err := s.Reorder([]*schedule.IterVar{io, jo, ii, ko, ki, ji}); err != nil {
		log.Fatal(err)
	}
	prog, err := lower.Build(s, isa.Lookup(isa.RISCV))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel: %s, schedule: %s\n", wl.Key, s)
	fmt.Printf("static code footprint: %d B, register tile: %d accumulators\n\n",
		prog.CodeBytes(), prog.TileCount())

	// Stock U74 hierarchy vs a cost-reduced variant with a 8 KiB L1D and a
	// 256 KiB L2.
	stock := cache.HierarchyConfig{
		L1D: cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8},
		L1I: cache.Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8},
		L2:  cache.Config{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 16},
	}
	reduced := cache.HierarchyConfig{
		L1D: cache.Config{Name: "L1D", SizeBytes: 8 << 10, LineBytes: 64, Assoc: 2},
		L1I: cache.Config{Name: "L1I", SizeBytes: 16 << 10, LineBytes: 64, Assoc: 2},
		L2:  cache.Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8},
	}
	for _, cand := range []struct {
		name string
		cfg  cache.HierarchyConfig
	}{{"stock U74 (Table I)", stock}, {"cost-reduced variant", reduced}} {
		st, err := sim.Run(prog, cand.cfg)
		if err != nil {
			log.Fatal(err)
		}
		l1d, _ := st.Cache("L1D")
		l2, _ := st.Cache("L2")
		fmt.Printf("%s:\n", cand.name)
		fmt.Printf("  instructions: %d (loads %d, stores %d, branches %d)\n",
			st.Total, st.Loads, st.Stores, st.Branches)
		fmt.Printf("  L1D: %.2f%% read hits (%d misses), L2: %.2f%% read hits\n",
			100*float64(l1d.ReadHits())/float64(l1d.ReadAccesses()), l1d.ReadMisses(),
			100*float64(l2.ReadHits())/float64(max64(1, l2.ReadAccesses())))
	}
	fmt.Println("\nsame instruction stream, different memory system: exactly the")
	fmt.Println("statistics a score predictor needs to rank implementations per target.")
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
