// presilicon_riscv demonstrates Contribution I's headline scenario: the
// RISC-V board is scarce (or does not exist yet — pre-silicon software
// development), so autotuning runs on K parallel instruction-accurate
// simulator instances hosted on an x86 machine instead. The example computes
// the paper's Eq. (4): how many parallel simulators are needed to beat
// sequential native measurement, using the measured native wall-clock cost
// (15 repetitions + 1 s cooldowns per candidate) against modelled
// gem5-class simulation time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	simtune "repro"
	"repro/internal/hw"
	"repro/internal/te"
)

func main() {
	impls := flag.Int("impls", 24, "implementations per group")
	scaleFlag := flag.String("scale", "tiny", "workload scale: tiny|small|paper")
	flag.Parse()
	scale, err := te.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}

	prof := simtune.HardwareProfile(simtune.RISCV)
	fmt.Printf("target: %s @ %.1f GHz (modelled; the 'board' is only used for reference measurements)\n",
		prof.Name, prof.FreqGHz)

	// Training phase: this is the one time the board is needed.
	model, err := simtune.TrainScorePredictor(simtune.TrainOptions{
		Arch: simtune.RISCV, Scale: scale, Predictor: "Bayes",
		Groups: []int{0, 1, 2}, ImplsPerGroup: *impls, Seed: 3,
		CacheDir: os.TempDir() + "/simtune-cache",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Eq. (4) from the collected dataset: native measurement cost per
	// implementation vs gem5-class simulation time.
	opt := hw.DefaultMeasureOptions()
	fmt.Printf("\nEq. (4) with N_exe=%d, t_cooldown=%.0fs (per-group ranges from the dataset):\n",
		opt.Nexe, opt.CooldownSec)
	for _, g := range model.Dataset.Groups {
		kMin, kMax := 1<<30, 0
		for _, impl := range g.Impls {
			tsim := hw.SimSeconds(int64(impl.Stats.Total), prof)
			k := hw.ParallelSimulators(tsim, impl.TrefSec, opt)
			if k < kMin {
				kMin = k
			}
			if k > kMax {
				kMax = k
			}
		}
		fmt.Printf("  group %d: K ∈ [%d, %d]\n", g.Group, kMin, kMax)
	}
	fmt.Println("  (paper, full-size kernels: K_RISC-V ∈ [3, 21] — in the best case")
	fmt.Println("   3 parallel simulations on the x86 host replace one RISC-V board)")

	// Execution phase: tune an unseen group with 8 parallel simulators.
	fmt.Println("\ntuning unseen group 4 on 8 parallel simulators, no board required:")
	records, err := model.TuneGroup(simtune.TuneGroupOptions{
		Group: 4, Trials: 32, NParallel: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	top := simtune.TopK(records, 3)
	best, idx, err := model.ValidateOnTarget(4, top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-3 validated on the board afterwards: best is #%d at %.6f s\n", idx+1, best)
}
