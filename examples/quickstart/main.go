// Quickstart: train a score predictor on instruction-accurate simulator
// statistics and use it to tune a kernel group the predictor has never seen,
// without touching the target hardware — the end-to-end flow of the paper in
// under a minute.
package main

import (
	"fmt"
	"log"

	simtune "repro"
)

func main() {
	// Train an XGBoost score predictor for the SiFive U74-class RISC-V
	// target. The training phase measures auto-scheduler implementations of
	// conv groups 0-2 both "natively" (timing model of the board, median of
	// N_exe noisy repetitions) and on the instruction-accurate simulator.
	fmt.Println("== training phase (Fig. 4-I) ==")
	model, err := simtune.TrainScorePredictor(simtune.TrainOptions{
		Arch:          simtune.RISCV,
		Scale:         simtune.ScaleTiny,
		Predictor:     "XGBoost",
		Groups:        []int{0, 1, 2},
		ImplsPerGroup: 32,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range []int{0, 1, 2} {
		res, err := model.Evaluate(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("group %d held-out: %s\n", g, res)
	}

	// Execution phase: tune group 3 — which was NOT in the training set —
	// purely on parallel simulator instances. The board is not needed.
	fmt.Println("\n== execution phase (Fig. 4-II), group 3 unseen ==")
	records, err := model.TuneGroup(simtune.TuneGroupOptions{
		Group: 3, Trials: 48, BatchSize: 12, Window: "dynamic",
	})
	if err != nil {
		log.Fatal(err)
	}
	top := simtune.TopK(records, 3)
	fmt.Printf("explored %d implementations on simulators; top-3 predicted scores:\n", len(records))
	for i, r := range top {
		fmt.Printf("  #%d score=%+.4f\n", i+1, r.Score)
	}

	// Final validation: re-measure only the top candidates on the target.
	best, idx, err := model.ValidateOnTarget(3, top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidated top-3 on the target: candidate #%d is fastest (%.6f s)\n", idx+1, best)
	fmt.Println("(the paper: the true best is always within the top 3% of predictions)")
}
