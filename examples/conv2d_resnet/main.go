// conv2d_resnet reproduces the paper's flagship scenario end to end: the
// five ResNet Conv2D+Bias+ReLU groups of Table II are autotuned for a chosen
// target; a score predictor is trained with one group left out; the left-out
// group is then tuned simulator-only and the quality of the predicted
// ranking is evaluated against native measurements of the same candidates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	simtune "repro"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/te"
)

func main() {
	archFlag := flag.String("arch", "arm", "target: x86|arm|riscv")
	scaleFlag := flag.String("scale", "tiny", "workload scale: tiny|small|paper")
	holdout := flag.Int("holdout", 3, "group excluded from training and tuned afterwards")
	impls := flag.Int("impls", 32, "training implementations per group")
	trials := flag.Int("trials", 48, "execution-phase candidates")
	flag.Parse()

	arch, err := isa.ParseArch(*archFlag)
	if err != nil {
		log.Fatal(err)
	}
	scale, err := te.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}

	var trainGroups []int
	for g := 0; g < te.NumConvGroups; g++ {
		if g != *holdout {
			trainGroups = append(trainGroups, g)
		}
	}
	fmt.Printf("ResNet conv groups on %s (scale %s); training on %v, holding out group %d\n",
		arch, scale, trainGroups, *holdout)

	model, err := simtune.TrainScorePredictor(simtune.TrainOptions{
		Arch: arch, Scale: scale, Predictor: "XGBoost",
		Groups: trainGroups, ImplsPerGroup: *impls, Seed: 7,
		CacheDir: os.TempDir() + "/simtune-cache",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredictor quality on training groups (held-out samples):")
	for _, g := range trainGroups {
		res, err := model.Evaluate(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  group %d: %s\n", g, res)
	}

	// Tune the held-out group simulator-only.
	records, err := model.TuneGroup(simtune.TuneGroupOptions{
		Group: *holdout, Trials: *trials, Window: "dynamic",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ground-truth every explored candidate natively to grade the ranking
	// (this is evaluation instrumentation, not part of the deployed flow).
	scores := make([]float64, 0, len(records))
	var ok []simtune.Record
	for _, r := range records {
		if r.Err == nil {
			ok = append(ok, r)
			scores = append(scores, r.Score)
		}
	}
	_, idx, err := model.ValidateOnTarget(*holdout, ok)
	if err != nil {
		log.Fatal(err)
	}
	// Measure each candidate once for the ranking comparison.
	tref := make([]float64, len(ok))
	for i := range ok {
		b, _, err := model.ValidateOnTarget(*holdout, ok[i:i+1])
		if err != nil {
			log.Fatal(err)
		}
		tref[i] = b
	}
	res := metrics.Evaluate(tref, scores)
	fmt.Printf("\nheld-out group %d, %d candidates tuned simulator-only:\n", *holdout, len(ok))
	fmt.Printf("  ranking quality vs native ground truth: %s\n", res)
	fmt.Printf("  best-by-prediction candidate index: %d\n", idx)
	fmt.Println("\npaper shape check: R_top1 should be small (best within top few %),")
	fmt.Println("and embedded targets (arm/riscv) should beat x86 in prediction quality.")
}
