package simtune_test

// Golden-stats regression fixture: the complete per-level cache statistics
// of the headline throughput workload (ConvGroup small/1, RISC-V, default
// schedule), pinned to the exact values the seed-tree scalar replay
// produced. The differential tests compare the aggregated encoding against
// the per-instruction one *within* a build — this fixture additionally pins
// both against history, so a silent counter drift that changed the two
// encodings in lockstep (a bug in the shared model, or a "fast path" that
// redefined a counter) fails tier-1 loudly.

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/te"
)

// goldenLevel is one cache level's pinned counters (reads/writes as
// hits+misses pairs, replacements, writebacks).
type goldenLevel struct {
	name                   string
	rdHits, rdMisses       uint64
	wrHits, wrMisses       uint64
	rdRepl, wrRepl, wbacks uint64
}

func TestGoldenStatsConvSmall1RISCV(t *testing.T) {
	wl := te.ConvGroup(te.ScaleSmall, 1)
	prog, err := lower.Build(schedule.New(wl.Op), isa.Lookup(isa.RISCV))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(prog, hw.Lookup(isa.RISCV).Caches)
	if err != nil {
		t.Fatal(err)
	}

	if st.Total != 3585626 {
		t.Errorf("Total = %d, golden 3585626", st.Total)
	}
	wantInstr := map[isa.Class]uint64{
		isa.Load:   888192,
		isa.Store:  6272,
		isa.ALU:    1116657,
		isa.FMA:    464128,
		isa.Branch: 1110377,
	}
	for cl, want := range wantInstr {
		if got := st.Instr[cl]; got != want {
			t.Errorf("Instr[%v] = %d, golden %d", cl, got, want)
		}
	}
	if st.Loads != 888192 || st.Stores != 6272 || st.Branches != 1110377 {
		t.Errorf("aggregates = (%d, %d, %d), golden (888192, 6272, 1110377)",
			st.Loads, st.Stores, st.Branches)
	}
	if st.LoopExits != 207210 {
		t.Errorf("LoopExits = %d, golden 207210", st.LoopExits)
	}

	golden := []goldenLevel{
		{name: "L1D", rdHits: 887687, rdMisses: 505, wrHits: 5880, wrMisses: 392,
			rdRepl: 112, wrRepl: 273, wbacks: 286},
		{name: "L1I", rdHits: 12542, rdMisses: 2},
		{name: "L2", rdHits: 76, rdMisses: 823, wrHits: 286, wrMisses: 0},
	}
	if len(st.Caches) != len(golden) {
		t.Fatalf("levels = %d, golden %d", len(st.Caches), len(golden))
	}
	for i, g := range golden {
		got := st.Caches[i]
		if got.Name != g.name {
			t.Fatalf("level %d = %s, golden %s", i, got.Name, g.name)
		}
		want := cache.Stats{
			Hits:       [2]uint64{cache.KindRead: g.rdHits, cache.KindWrite: g.wrHits},
			Misses:     [2]uint64{cache.KindRead: g.rdMisses, cache.KindWrite: g.wrMisses},
			Repl:       [2]uint64{cache.KindRead: g.rdRepl, cache.KindWrite: g.wrRepl},
			Writebacks: g.wbacks,
		}
		if got.Stats != want {
			t.Errorf("%s stats drifted:\n got    %+v\n golden %+v", g.name, got.Stats, want)
		}
	}

	// The timing model consumes the same stream: its cycle count and
	// mispredicts are pinned too. The comparison allows a hair of relative
	// slack (1e-9) because Go may contract a*b+c into FMA on some
	// architectures, shifting the last float bits — any real drift (one
	// whole cycle out of 4.7M is ~2e-7) still fails by orders of magnitude.
	m, err := hw.NewMachine(hw.Lookup(isa.RISCV))
	if err != nil {
		t.Fatal(err)
	}
	lower.Execute(prog, m, false)
	const goldenCycles = 4.666693100000001e+06
	if got := m.Cycles(); math.Abs(got-goldenCycles) > goldenCycles*1e-9 {
		t.Errorf("hw cycles = %v, golden %v", got, goldenCycles)
	}
	if got := m.Mispredicts(); got != 214266 {
		t.Errorf("hw mispredicts = %d, golden 214266", got)
	}
}
