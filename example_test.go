package simtune_test

import (
	"fmt"
	"log"

	simtune "repro"
)

// ExampleTrainScorePredictor mirrors the README library quickstart: train a
// score predictor on simulator statistics, tune a held-out group on
// simulators only, and keep the top candidates for on-target validation.
// It is compiled (not executed) by go test, so the README snippet cannot
// silently rot.
func ExampleTrainScorePredictor() {
	model, err := simtune.TrainScorePredictor(simtune.TrainOptions{
		Arch: simtune.RISCV, Scale: simtune.ScaleSmall, Predictor: "XGBoost",
	})
	if err != nil {
		log.Fatal(err)
	}
	records, err := model.TuneGroup(simtune.TuneGroupOptions{Group: 3, Trials: 200})
	if err != nil {
		log.Fatal(err)
	}
	top := simtune.TopK(records, 5) // re-validate these on the real board
	fmt.Println(len(top))
}

// ExampleTrainedModel_TuneGroup_service mirrors the README service
// quickstart: the same tuning run pointed at a shared simulate service (a
// `simtune serve` node or a `simtune route` router — the wire protocol is
// identical), with the Eq. (4) cache bookkeeping read back from the
// records.
func ExampleTrainedModel_TuneGroup_service() {
	model, err := simtune.TrainScorePredictor(simtune.TrainOptions{
		Arch: simtune.RISCV, Scale: simtune.ScaleSmall, Predictor: "XGBoost",
	})
	if err != nil {
		log.Fatal(err)
	}
	records, err := model.TuneGroup(simtune.TuneGroupOptions{
		Group: 3, Trials: 200, ServerURL: "http://localhost:8070",
	})
	if err != nil {
		log.Fatal(err)
	}
	hits, misses, simSec := simtune.CacheStats(records) // Eq. (4) bookkeeping
	fmt.Println(hits, misses, simSec)
}
