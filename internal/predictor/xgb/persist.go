package xgb

// NodeState is the serializable form of one tree node.
type NodeState struct {
	Feat        int
	Thresh      float64
	Left, Right int
	Leaf        float64
	IsLeaf      bool
}

// State is the serializable form of a fitted ensemble.
type State struct {
	Config Config
	Base   float64
	Trees  [][]NodeState
}

// Export snapshots the fitted ensemble.
func (m *Model) Export() State {
	s := State{Config: m.cfg, Base: m.base}
	for _, t := range m.trees {
		nodes := make([]NodeState, len(t.nodes))
		for i, n := range t.nodes {
			nodes[i] = NodeState{Feat: n.feat, Thresh: n.thresh,
				Left: n.left, Right: n.right, Leaf: n.leaf, IsLeaf: n.isLeaf}
		}
		s.Trees = append(s.Trees, nodes)
	}
	return s
}

// Restore loads a snapshot into the model.
func (m *Model) Restore(s State) {
	m.cfg = s.Config
	m.base = s.Base
	m.trees = m.trees[:0]
	for _, nodes := range s.Trees {
		t := tree{nodes: make([]node, len(nodes))}
		for i, n := range nodes {
			t.nodes[i] = node{feat: n.Feat, thresh: n.Thresh,
				left: n.Left, right: n.Right, leaf: n.Leaf, isLeaf: n.IsLeaf}
		}
		m.trees = append(m.trees, t)
	}
}
