// Package xgb implements gradient-boosted regression trees in the XGBoost
// formulation (§III-D.4): trees built sequentially on gradient/hessian
// statistics, exact greedy splits with the regularized gain
//
//	gain = ½·(G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)) − γ,
//
// shrinkage (learning rate), column subsampling, row subsampling, L1/L2
// leaf regularization and minimum child weight — the paper's tuned
// configuration is the default (§IV-C).
package xgb

import (
	"errors"
	"math"
	"sort"

	"repro/internal/num"
)

// Config are the XGBoost hyper-parameters.
type Config struct {
	Rounds         int     // number of boosted trees (paper: 300)
	LearningRate   float64 // shrinkage η (paper: 0.05)
	MaxDepth       int     // maximum tree depth (paper: 3)
	ColSample      float64 // column subsample ratio per tree (paper: 0.6)
	SubSample      float64 // row subsample ratio per tree (paper: 0.8)
	Lambda         float64 // L2 leaf regularization (paper: 0.1)
	Alpha          float64 // L1 leaf regularization (paper: 0)
	Gamma          float64 // minimum split gain
	MinChildWeight float64 // minimum hessian sum per child (paper: 1)
}

// DefaultConfig returns the paper's grid-search winner.
func DefaultConfig() Config {
	return Config{
		Rounds: 300, LearningRate: 0.05, MaxDepth: 3, ColSample: 0.6,
		SubSample: 0.8, Lambda: 0.1, Alpha: 0, Gamma: 0, MinChildWeight: 1,
	}
}

type node struct {
	feat        int
	thresh      float64
	left, right int
	leaf        float64
	isLeaf      bool
}

type tree struct {
	nodes []node
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.isLeaf {
			return n.leaf
		}
		if x[n.feat] < n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is the boosted-tree predictor.
type Model struct {
	cfg   Config
	rng   *num.RNG
	base  float64
	trees []tree
}

// New builds an XGBoost predictor; rng drives row/column subsampling.
func New(cfg Config, rng *num.RNG) *Model {
	if cfg.Rounds <= 0 {
		cfg = DefaultConfig()
	}
	return &Model{cfg: cfg, rng: rng}
}

// Name implements predictor.Predictor.
func (m *Model) Name() string { return "XGBoost" }

// Fit boosts MSE gradients: g_i = pred_i − y_i, h_i = 1.
func (m *Model) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("xgb: empty or mismatched training data")
	}
	n := len(x)
	d := len(x[0])
	m.base = num.Mean(y)
	m.trees = m.trees[:0]
	preds := make([]float64, n)
	for i := range preds {
		preds[i] = m.base
	}
	grads := make([]float64, n)

	for round := 0; round < m.cfg.Rounds; round++ {
		for i := range grads {
			grads[i] = preds[i] - y[i]
		}
		rows := m.sampleRows(n)
		cols := m.sampleCols(d)
		tr := m.buildTree(x, grads, rows, cols)
		m.trees = append(m.trees, tr)
		for i := range preds {
			preds[i] += tr.predict(x[i])
		}
	}
	return nil
}

// sampleRows picks SubSample·n rows without replacement.
func (m *Model) sampleRows(n int) []int {
	k := int(math.Ceil(m.cfg.SubSample * float64(n)))
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return m.rng.Perm(n)[:k]
}

// sampleCols picks ColSample·d features without replacement.
func (m *Model) sampleCols(d int) []int {
	k := int(math.Ceil(m.cfg.ColSample * float64(d)))
	if k < 1 {
		k = 1
	}
	if k >= d {
		out := make([]int, d)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return m.rng.Perm(d)[:k]
}

type buildItem struct {
	nodeIdx int
	rows    []int
	depth   int
}

// buildTree grows one regression tree greedily.
func (m *Model) buildTree(x [][]float64, grads []float64, rows, cols []int) tree {
	t := tree{}
	t.nodes = append(t.nodes, node{})
	queue := []buildItem{{nodeIdx: 0, rows: rows, depth: 0}}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		g, h := sums(grads, item.rows)
		if item.depth >= m.cfg.MaxDepth || len(item.rows) < 2 {
			t.nodes[item.nodeIdx] = m.makeLeaf(g, h)
			continue
		}
		feat, thresh, gain, left, right := m.bestSplit(x, grads, item.rows, cols, g, h)
		if gain <= 0 {
			t.nodes[item.nodeIdx] = m.makeLeaf(g, h)
			continue
		}
		li, ri := len(t.nodes), len(t.nodes)+1
		t.nodes = append(t.nodes, node{}, node{})
		t.nodes[item.nodeIdx] = node{feat: feat, thresh: thresh, left: li, right: ri}
		queue = append(queue,
			buildItem{nodeIdx: li, rows: left, depth: item.depth + 1},
			buildItem{nodeIdx: ri, rows: right, depth: item.depth + 1})
	}
	return t
}

// makeLeaf computes the regularized leaf weight with shrinkage applied:
// w = −soft(G, α) / (H + λ) · η.
func (m *Model) makeLeaf(g, h float64) node {
	gSoft := g
	if m.cfg.Alpha > 0 {
		switch {
		case g > m.cfg.Alpha:
			gSoft = g - m.cfg.Alpha
		case g < -m.cfg.Alpha:
			gSoft = g + m.cfg.Alpha
		default:
			gSoft = 0
		}
	}
	return node{isLeaf: true, leaf: -gSoft / (h + m.cfg.Lambda) * m.cfg.LearningRate}
}

// bestSplit scans the sampled features for the maximum-gain split.
func (m *Model) bestSplit(x [][]float64, grads []float64, rows, cols []int, g, h float64) (feat int, thresh, gain float64, left, right []int) {
	gain = 0
	parentScore := g * g / (h + m.cfg.Lambda)
	type fv struct {
		v float64
		r int
	}
	vals := make([]fv, 0, len(rows))
	for _, f := range cols {
		vals = vals[:0]
		for _, r := range rows {
			vals = append(vals, fv{v: x[r][f], r: r})
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		gl, hl := 0.0, 0.0
		for i := 0; i+1 < len(vals); i++ {
			gl += grads[vals[i].r]
			hl += 1
			if vals[i].v == vals[i+1].v {
				continue
			}
			gr, hr := g-gl, h-hl
			if hl < m.cfg.MinChildWeight || hr < m.cfg.MinChildWeight {
				continue
			}
			sc := 0.5*(gl*gl/(hl+m.cfg.Lambda)+gr*gr/(hr+m.cfg.Lambda)-parentScore) - m.cfg.Gamma
			if sc > gain {
				gain = sc
				feat = f
				thresh = (vals[i].v + vals[i+1].v) / 2
			}
		}
	}
	if gain <= 0 {
		return 0, 0, 0, nil, nil
	}
	for _, r := range rows {
		if x[r][feat] < thresh {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return 0, 0, 0, nil, nil
	}
	return feat, thresh, gain, left, right
}

func sums(grads []float64, rows []int) (g, h float64) {
	for _, r := range rows {
		g += grads[r]
		h += 1
	}
	return g, h
}

// Predict implements predictor.Predictor.
func (m *Model) Predict(x []float64) float64 {
	s := m.base
	for i := range m.trees {
		s += m.trees[i].predict(x)
	}
	return s
}

// PredictBatch implements predictor.Predictor.
func (m *Model) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// NumTrees reports the fitted ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }
