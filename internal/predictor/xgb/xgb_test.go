package xgb

import (
	"math"
	"testing"

	"repro/internal/num"
)

func TestLearnsStepFunction(t *testing.T) {
	// Trees excel at steps: y = 1 if x > 0.5 else 0.
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := float64(i) / 100
		x = append(x, []float64{v})
		if v > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m := New(DefaultConfig(), num.NewRNG(1))
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{0.9}); math.Abs(p-1) > 0.1 {
		t.Fatalf("step high = %v want ~1", p)
	}
	if p := m.Predict([]float64{0.1}); math.Abs(p) > 0.1 {
		t.Fatalf("step low = %v want ~0", p)
	}
}

func TestLearnsInteraction(t *testing.T) {
	rng := num.NewRNG(9)
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		y = append(y, a*b) // pure interaction
	}
	m := New(DefaultConfig(), num.NewRNG(2))
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var preds, want []float64
	for i := 0; i < 50; i++ {
		a, b := rng.Float64(), rng.Float64()
		preds = append(preds, m.Predict([]float64{a, b}))
		want = append(want, a*b)
	}
	if rho := num.Spearman(preds, want); rho < 0.85 {
		t.Fatalf("interaction Spearman = %v", rho)
	}
}

func TestPaperDefaults(t *testing.T) {
	c := DefaultConfig()
	if c.Rounds != 300 || c.LearningRate != 0.05 || c.MaxDepth != 3 ||
		c.ColSample != 0.6 || c.SubSample != 0.8 || c.Lambda != 0.1 ||
		c.Alpha != 0 || c.MinChildWeight != 1 {
		t.Fatalf("defaults diverge from the paper: %+v", c)
	}
}

func TestNumTrees(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 17
	m := New(cfg, num.NewRNG(1))
	if err := m.Fit([][]float64{{1}, {2}, {3}, {4}}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 17 {
		t.Fatalf("trees = %d want 17", m.NumTrees())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 5
	cfg.MaxDepth = 2
	cfg.SubSample = 1
	cfg.ColSample = 1
	m := New(cfg, num.NewRNG(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 64; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, float64(i%7))
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Depth 2 ⇒ at most 7 nodes per tree (1 root + 2 + 4).
	for ti, tr := range m.trees {
		if len(tr.nodes) > 7 {
			t.Fatalf("tree %d has %d nodes, exceeds depth-2 budget", ti, len(tr.nodes))
		}
	}
}

func TestConstantTarget(t *testing.T) {
	m := New(DefaultConfig(), num.NewRNG(1))
	if err := m.Fit([][]float64{{1}, {2}, {3}}, []float64{4, 4, 4}); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2}); math.Abs(p-4) > 1e-9 {
		t.Fatalf("constant predict = %v want 4", p)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	x, y := [][]float64{{1}, {2}, {3}, {4}, {5}}, []float64{5, 3, 8, 1, 9}
	mk := func() float64 {
		m := New(DefaultConfig(), num.NewRNG(21))
		_ = m.Fit(x, y)
		return m.Predict([]float64{2.5})
	}
	if mk() != mk() {
		t.Fatal("same seed must reproduce")
	}
}

func TestFitErrors(t *testing.T) {
	m := New(DefaultConfig(), num.NewRNG(1))
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty fit must error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched fit must error")
	}
}

func TestL1RegularizationShrinksLeaves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 1
	cfg.SubSample = 1
	cfg.ColSample = 1
	x := [][]float64{{0}, {1}}
	y := []float64{0, 0.001} // tiny gradient signal
	plain := New(cfg, num.NewRNG(1))
	_ = plain.Fit(x, y)
	cfgA := cfg
	cfgA.Alpha = 10 // huge L1: all leaves zeroed
	reg := New(cfgA, num.NewRNG(1))
	_ = reg.Fit(x, y)
	if math.Abs(reg.Predict([]float64{1})-reg.base) > 1e-12 {
		t.Fatal("large alpha must zero the leaf contributions")
	}
	_ = plain
}
