package dnn

import "repro/internal/num"

// LayerState is the serializable form of one dense layer.
type LayerState struct {
	In, Out int
	W, B    []float64
}

// State is the serializable form of a trained network.
type State struct {
	Config Config
	Layers []LayerState
	XMean  []float64
	XStd   []float64
	YMean  float64
	YStd   float64
}

// Export snapshots the trained network (Adam state is not persisted; a
// restored model predicts but does not resume training).
func (m *Model) Export() State {
	s := State{Config: m.cfg, YMean: m.yMean, YStd: m.yStd}
	if m.xs != nil {
		s.XMean = append([]float64(nil), m.xs.Mean...)
		s.XStd = append([]float64(nil), m.xs.Std...)
	}
	for i := range m.layers {
		l := &m.layers[i]
		s.Layers = append(s.Layers, LayerState{
			In: l.in, Out: l.out,
			W: append([]float64(nil), l.w...),
			B: append([]float64(nil), l.b...),
		})
	}
	return s
}

// Restore loads a snapshot into the model. The receiver must have been
// built with New (the weight-initialization RNG is reused for buffer
// setup before the stored weights overwrite it).
func (m *Model) Restore(s State) {
	m.cfg = s.Config
	m.yMean, m.yStd = s.YMean, s.YStd
	if m.yStd == 0 {
		m.yStd = 1
	}
	m.xs = &num.Standardizer{
		Mean: append([]float64(nil), s.XMean...),
		Std:  append([]float64(nil), s.XStd...),
	}
	if len(s.Layers) == 0 {
		m.layers = nil
		return
	}
	m.initNet(s.Layers[0].In)
	for i := range m.layers {
		copy(m.layers[i].w, s.Layers[i].W)
		copy(m.layers[i].b, s.Layers[i].B)
	}
}
