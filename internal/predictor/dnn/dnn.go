// Package dnn implements the paper's regression DNN predictor (§III-D.2,
// §IV-C): six dense layers (128, 128, 64, 32, 16, 1 neurons), tanh hidden
// activations, a linear output, MAE loss, trained with the Adam optimizer —
// all implemented from scratch on float64 slices.
package dnn

import (
	"errors"
	"math"

	"repro/internal/num"
)

// Config controls architecture and training.
type Config struct {
	// Hidden lists hidden-layer widths (paper: 128,128,64,32,16).
	Hidden []int
	// Epochs is the number of passes over the training set.
	Epochs int
	// Batch is the minibatch size.
	Batch int
	// LR is the Adam learning rate.
	LR float64
}

// DefaultConfig returns the paper's tuned configuration with a training
// budget suited to a few hundred samples.
func DefaultConfig() Config {
	return Config{Hidden: []int{128, 128, 64, 32, 16}, Epochs: 80, Batch: 32, LR: 1e-3}
}

type layer struct {
	in, out int
	w       []float64 // out×in, row-major
	b       []float64
	// Adam state.
	mw, vw []float64
	mb, vb []float64
}

// Model is the DNN predictor.
type Model struct {
	cfg    Config
	rng    *num.RNG
	layers []layer
	xs     *num.Standardizer
	yMean  float64
	yStd   float64
	// scratch
	acts  [][]float64
	zs    [][]float64
	delta [][]float64
	gw    [][]float64
	gb    [][]float64
	step  int
}

// New builds a DNN predictor with the given config; rng seeds the weight
// initialization and minibatch shuffling, making training deterministic.
func New(cfg Config, rng *num.RNG) *Model {
	if len(cfg.Hidden) == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 80
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	return &Model{cfg: cfg, rng: rng}
}

// Name implements predictor.Predictor.
func (m *Model) Name() string { return "DNN" }

func (m *Model) initNet(inDim int) {
	sizes := append([]int{inDim}, m.cfg.Hidden...)
	sizes = append(sizes, 1)
	m.layers = make([]layer, len(sizes)-1)
	m.acts = make([][]float64, len(sizes))
	m.zs = make([][]float64, len(m.layers))
	m.delta = make([][]float64, len(m.layers))
	m.gw = make([][]float64, len(m.layers))
	m.gb = make([][]float64, len(m.layers))
	for i := range m.layers {
		in, out := sizes[i], sizes[i+1]
		l := layer{in: in, out: out,
			w: make([]float64, in*out), b: make([]float64, out),
			mw: make([]float64, in*out), vw: make([]float64, in*out),
			mb: make([]float64, out), vb: make([]float64, out)}
		// Xavier/Glorot uniform initialization.
		limit := math.Sqrt(6.0 / float64(in+out))
		for j := range l.w {
			l.w[j] = m.rng.Uniform(-limit, limit)
		}
		m.layers[i] = l
		m.zs[i] = make([]float64, out)
		m.delta[i] = make([]float64, out)
		m.gw[i] = make([]float64, in*out)
		m.gb[i] = make([]float64, out)
		m.acts[i+1] = make([]float64, out)
	}
	m.step = 0
}

// forward runs the network on a standardized input, filling acts/zs.
func (m *Model) forward(x []float64) float64 {
	m.acts[0] = x
	for li := range m.layers {
		l := &m.layers[li]
		in := m.acts[li]
		for o := 0; o < l.out; o++ {
			s := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range in {
				s += row[i] * v
			}
			m.zs[li][o] = s
			if li == len(m.layers)-1 {
				m.acts[li+1][o] = s // linear output
			} else {
				m.acts[li+1][o] = math.Tanh(s)
			}
		}
	}
	return m.acts[len(m.layers)][0]
}

// Fit trains the network with MAE loss and Adam.
func (m *Model) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("dnn: empty or mismatched training data")
	}
	m.xs = num.FitStandardizer(x)
	xs := m.xs.TransformAll(x)
	m.yMean = num.Mean(y)
	m.yStd = num.Std(y)
	if m.yStd < 1e-12 {
		m.yStd = 1
	}
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - m.yMean) / m.yStd
	}
	m.initNet(len(x[0]))

	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for start := 0; start < len(idx); start += m.cfg.Batch {
			end := start + m.cfg.Batch
			if end > len(idx) {
				end = len(idx)
			}
			m.trainBatch(xs, ys, idx[start:end])
		}
	}
	return nil
}

// trainBatch accumulates MAE gradients over one minibatch and applies Adam.
func (m *Model) trainBatch(xs [][]float64, ys []float64, batch []int) {
	for li := range m.layers {
		clearSlice(m.gw[li])
		clearSlice(m.gb[li])
	}
	inv := 1.0 / float64(len(batch))
	for _, si := range batch {
		pred := m.forward(xs[si])
		// dMAE/dpred = sign(pred − y).
		grad := 0.0
		switch {
		case pred > ys[si]:
			grad = 1
		case pred < ys[si]:
			grad = -1
		}
		// Output layer delta (linear activation).
		lastIdx := len(m.layers) - 1
		m.delta[lastIdx][0] = grad
		// Backpropagate.
		for li := lastIdx; li >= 0; li-- {
			l := &m.layers[li]
			in := m.acts[li]
			for o := 0; o < l.out; o++ {
				d := m.delta[li][o]
				if d == 0 {
					continue
				}
				m.gb[li][o] += d * inv
				row := m.gw[li][o*l.in : (o+1)*l.in]
				for i, v := range in {
					row[i] += d * v * inv
				}
			}
			if li > 0 {
				prev := m.delta[li-1]
				clearSlice(prev)
				for o := 0; o < l.out; o++ {
					d := m.delta[li][o]
					if d == 0 {
						continue
					}
					row := l.w[o*l.in : (o+1)*l.in]
					for i := range prev {
						prev[i] += d * row[i]
					}
				}
				// tanh'(z) = 1 − tanh(z)².
				for i := range prev {
					a := m.acts[li][i]
					prev[i] *= 1 - a*a
				}
			}
		}
	}
	m.adamStep()
}

// adamStep applies one Adam update with bias correction.
func (m *Model) adamStep() {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	m.step++
	bc1 := 1 - math.Pow(beta1, float64(m.step))
	bc2 := 1 - math.Pow(beta2, float64(m.step))
	for li := range m.layers {
		l := &m.layers[li]
		for j := range l.w {
			g := m.gw[li][j]
			l.mw[j] = beta1*l.mw[j] + (1-beta1)*g
			l.vw[j] = beta2*l.vw[j] + (1-beta2)*g*g
			l.w[j] -= m.cfg.LR * (l.mw[j] / bc1) / (math.Sqrt(l.vw[j]/bc2) + eps)
		}
		for j := range l.b {
			g := m.gb[li][j]
			l.mb[j] = beta1*l.mb[j] + (1-beta1)*g
			l.vb[j] = beta2*l.vb[j] + (1-beta2)*g*g
			l.b[j] -= m.cfg.LR * (l.mb[j] / bc1) / (math.Sqrt(l.vb[j]/bc2) + eps)
		}
	}
}

func clearSlice(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// Predict implements predictor.Predictor.
func (m *Model) Predict(x []float64) float64 {
	if m.layers == nil {
		return 0
	}
	out := m.forward(m.xs.Transform(x))
	return out*m.yStd + m.yMean
}

// PredictBatch implements predictor.Predictor.
func (m *Model) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}
