package dnn

import (
	"math"
	"testing"

	"repro/internal/num"
)

func TestLearnsNonlinearFunction(t *testing.T) {
	// y = x² is beyond any linear model; the DNN must fit it.
	rng := num.NewRNG(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := rng.Uniform(-1, 1)
		x = append(x, []float64{v})
		y = append(y, v*v)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 200
	m := New(cfg, num.NewRNG(7))
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mse := 0.0
	for _, v := range []float64{-0.8, -0.4, 0, 0.4, 0.8} {
		d := m.Predict([]float64{v}) - v*v
		mse += d * d
	}
	mse /= 5
	if mse > 0.02 {
		t.Fatalf("DNN failed to learn x²: test MSE %v", mse)
	}
}

func TestDefaultArchitectureMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	want := []int{128, 128, 64, 32, 16}
	if len(cfg.Hidden) != len(want) {
		t.Fatalf("hidden = %v", cfg.Hidden)
	}
	for i, w := range want {
		if cfg.Hidden[i] != w {
			t.Fatalf("hidden = %v want %v", cfg.Hidden, want)
		}
	}
}

func TestNetworkShape(t *testing.T) {
	m := New(Config{Hidden: []int{4, 2}, Epochs: 1, Batch: 2, LR: 1e-3}, num.NewRNG(1))
	if err := m.Fit([][]float64{{1, 2, 3}, {4, 5, 6}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if len(m.layers) != 3 {
		t.Fatalf("layers = %d want 3", len(m.layers))
	}
	if m.layers[0].in != 3 || m.layers[0].out != 4 {
		t.Fatalf("layer0 = %dx%d", m.layers[0].in, m.layers[0].out)
	}
	if m.layers[2].out != 1 {
		t.Fatalf("output layer out = %d", m.layers[2].out)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	x := [][]float64{{0.1}, {0.5}, {0.9}, {0.3}}
	y := []float64{1, 2, 3, 4}
	mk := func(seed uint64) float64 {
		m := New(Config{Hidden: []int{8}, Epochs: 20, Batch: 2, LR: 1e-2}, num.NewRNG(seed))
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return m.Predict([]float64{0.7})
	}
	if mk(5) != mk(5) {
		t.Fatal("same seed must reproduce")
	}
}

func TestUnfittedPredictsZero(t *testing.T) {
	m := New(DefaultConfig(), num.NewRNG(1))
	if m.Predict([]float64{1}) != 0 {
		t.Fatal("unfitted must predict 0")
	}
}

func TestFitErrors(t *testing.T) {
	m := New(DefaultConfig(), num.NewRNG(1))
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty fit must error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched fit must error")
	}
}

func TestConstantTargetsStable(t *testing.T) {
	// Zero-variance targets must not divide by zero.
	m := New(Config{Hidden: []int{4}, Epochs: 5, Batch: 2, LR: 1e-3}, num.NewRNG(2))
	if err := m.Fit([][]float64{{1}, {2}, {3}}, []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{2})
	if math.IsNaN(p) || math.Abs(p-5) > 1 {
		t.Fatalf("constant-target predict = %v", p)
	}
}

func TestConfigSanitized(t *testing.T) {
	m := New(Config{Hidden: []int{4}, Epochs: -1, Batch: -1, LR: -1}, num.NewRNG(1))
	if m.cfg.Epochs <= 0 || m.cfg.Batch <= 0 || m.cfg.LR <= 0 {
		t.Fatalf("config not sanitized: %+v", m.cfg)
	}
}
