// Package predictor defines the common interface of the paper's four score
// predictors (§III-D): multiple linear regression, a regression DNN,
// Gaussian-process regression tuned by Bayesian optimization, and gradient
// boosted trees (XGBoost). A predictor maps an instruction-accurate
// simulator feature vector to a scalar score whose ordering — not its
// absolute value — tracks the run-time ordering of implementations within
// one kernel group.
package predictor

import "math"

// Predictor is one trainable score model.
type Predictor interface {
	// Name identifies the predictor in reports ("LinReg", "DNN", ...).
	Name() string
	// Fit trains on feature rows X and normalized run-time targets y.
	Fit(x [][]float64, y []float64) error
	// Predict scores one feature vector (lower = predicted faster).
	Predict(x []float64) float64
	// PredictBatch scores many vectors.
	PredictBatch(x [][]float64) []float64
}

// Loss is a scalar regression loss over prediction/target vectors.
type Loss func(pred, want []float64) float64

// MSE is the mean squared error.
func MSE(pred, want []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - want[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MAE is the mean absolute error.
func MAE(pred, want []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - want[i])
	}
	return s / float64(len(pred))
}

// RSS is the residual sum of squares (the loss the paper's linear
// regression minimizes).
func RSS(pred, want []float64) float64 {
	s := 0.0
	for i := range pred {
		d := pred[i] - want[i]
		s += d * d
	}
	return s
}

// BatchWith implements PredictBatch on top of a Predict func (helper shared
// by the concrete predictors).
func BatchWith(x [][]float64, f func([]float64) float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = f(row)
	}
	return out
}
