package bayes

import (
	"math"
	"testing"

	"repro/internal/num"
)

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	g := &GP{C: 1, LengthScale: 1, Noise: 1e-8}
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 4, 9}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(g.Predict(x[i])-y[i]) > 1e-3 {
			t.Fatalf("GP must interpolate: f(%v)=%v want %v", x[i], g.Predict(x[i]), y[i])
		}
	}
}

func TestGPSmoothInterpolation(t *testing.T) {
	g := &GP{C: 1, LengthScale: 1, Noise: 1e-6}
	x := [][]float64{{0}, {2}}
	y := []float64{0, 2}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mid := g.Predict([]float64{1})
	if mid < 0.5 || mid > 1.5 {
		t.Fatalf("midpoint = %v, expected smooth interpolation near 1", mid)
	}
}

func TestGPVarianceShrinksAtData(t *testing.T) {
	g := &GP{C: 1, LengthScale: 0.5, Noise: 1e-6}
	if err := g.Fit([][]float64{{0}, {1}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	_, vAt := g.PredictVar([]float64{0})
	_, vFar := g.PredictVar([]float64{10})
	if vAt >= vFar {
		t.Fatalf("variance at data (%v) must be below far-field (%v)", vAt, vFar)
	}
	if vFar < 0.9 { // far away it should recover ~C+noise
		t.Fatalf("far-field variance = %v want ~1", vFar)
	}
}

func TestGPFitErrors(t *testing.T) {
	g := &GP{C: 1, LengthScale: 1, Noise: 0}
	if err := g.Fit(nil, nil); err == nil {
		t.Fatal("empty GP fit must error")
	}
	g2 := &GP{C: 0, LengthScale: 0, Noise: 0}
	if err := g2.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("invalid hyper-parameters must error")
	}
}

func TestModelFitsQuadratic(t *testing.T) {
	rng := num.NewRNG(11)
	var x [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		a := rng.Uniform(-1, 1)
		b := rng.Uniform(-1, 1)
		x = append(x, []float64{a, b})
		y = append(y, a*a+0.5*b)
	}
	m := New(DefaultConfig(), num.NewRNG(3))
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var preds, want []float64
	for i := 0; i < 30; i++ {
		a := rng.Uniform(-1, 1)
		b := rng.Uniform(-1, 1)
		preds = append(preds, m.Predict([]float64{a, b}))
		want = append(want, a*a+0.5*b)
	}
	if rho := num.Spearman(preds, want); rho < 0.9 {
		t.Fatalf("Bayes model ranks poorly: Spearman %v", rho)
	}
	c, l, n := m.BestHyperParams()
	if c <= 0 || l <= 0 || n <= 0 {
		t.Fatalf("hyper-params not tuned: %v %v %v", c, l, n)
	}
}

func TestModelTooFewSamples(t *testing.T) {
	m := New(DefaultConfig(), num.NewRNG(1))
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err == nil {
		t.Fatal("fit with <4 samples must error")
	}
}

func TestModelUnfittedPredictsZero(t *testing.T) {
	m := New(DefaultConfig(), num.NewRNG(1))
	if m.Predict([]float64{1}) != 0 {
		t.Fatal("unfitted must predict 0")
	}
}

func TestPhiPdfSane(t *testing.T) {
	if math.Abs(phi(0)-0.5) > 1e-12 {
		t.Fatalf("phi(0) = %v", phi(0))
	}
	if phi(10) < 0.999 || phi(-10) > 0.001 {
		t.Fatal("phi tails wrong")
	}
	if math.Abs(pdf(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("pdf(0) = %v", pdf(0))
	}
}

func TestUnitMapping(t *testing.T) {
	r := [2]float64{-2, 2}
	if unit(-2, r) != 0 || unit(2, r) != 1 || unit(0, r) != 0.5 {
		t.Fatal("unit mapping wrong")
	}
}
