package bayes

import "repro/internal/num"

// State is the serializable form of a fitted GP predictor: the tuned kernel
// hyper-parameters, the feature standardizer, the training inputs, and the
// precomputed dual weights α = K⁻¹(y−ȳ). Prediction only needs α, so the
// kernel matrix is not refactorized on restore.
type State struct {
	C           float64
	LengthScale float64
	Noise       float64
	X           [][]float64
	Alpha       []float64
	YMean       float64
	XMean       []float64
	XStd        []float64
	BestLog     [3]float64
}

// Export snapshots the fitted predictor.
func (m *Model) Export() State {
	s := State{BestLog: m.best}
	if m.xs != nil {
		s.XMean = append([]float64(nil), m.xs.Mean...)
		s.XStd = append([]float64(nil), m.xs.Std...)
	}
	if m.gp != nil {
		s.C, s.LengthScale, s.Noise = m.gp.C, m.gp.LengthScale, m.gp.Noise
		for _, x := range m.gp.x {
			s.X = append(s.X, append([]float64(nil), x...))
		}
		s.Alpha = append([]float64(nil), m.gp.alpha...)
		s.YMean = m.gp.yMean
	}
	return s
}

// Restore loads a snapshot. Restored models predict posterior means exactly;
// posterior variances fall back to the prior (the Cholesky factor is not
// persisted).
func (m *Model) Restore(s State) {
	m.best = s.BestLog
	m.xs = &num.Standardizer{
		Mean: append([]float64(nil), s.XMean...),
		Std:  append([]float64(nil), s.XStd...),
	}
	m.gp = &GP{C: s.C, LengthScale: s.LengthScale, Noise: s.Noise, yMean: s.YMean}
	m.gp.x = s.X
	m.gp.alpha = append([]float64(nil), s.Alpha...)
}
