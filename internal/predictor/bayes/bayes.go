package bayes

import (
	"errors"
	"math"

	"repro/internal/num"
	"repro/internal/predictor"
)

// Config controls the Bayesian hyper-parameter search.
type Config struct {
	// InitPoints random evaluations seed the surrogate; Iterations further
	// points are chosen by expected improvement.
	InitPoints int
	Iterations int
	// Candidates per acquisition maximization.
	Candidates int
	// ValFrac is the internal validation split used by the objective.
	ValFrac float64
	// Loss scores the validation predictions (paper: MSE).
	Loss predictor.Loss
}

// DefaultConfig matches the paper's setup (MSE loss) with a search budget
// suited to a few hundred samples.
func DefaultConfig() Config {
	return Config{InitPoints: 8, Iterations: 20, Candidates: 256, ValFrac: 0.25, Loss: predictor.MSE}
}

// Hyper-parameter search box in log10 space over standardized features.
var (
	logCRange     = [2]float64{-2, 2}
	logLenRange   = [2]float64{-0.7, 1.7}
	logNoiseRange = [2]float64{-6, -0.5}
)

// Model is the Bayesian-optimization predictor.
type Model struct {
	cfg Config
	rng *num.RNG

	xs *num.Standardizer
	gp *GP
	// Best hyper-parameters found (log10).
	best [3]float64
}

// New builds the predictor; rng drives the random search and splits.
func New(cfg Config, rng *num.RNG) *Model {
	if cfg.Loss == nil {
		cfg = DefaultConfig()
	}
	return &Model{cfg: cfg, rng: rng}
}

// Name implements predictor.Predictor.
func (m *Model) Name() string { return "Bayes" }

// Fit tunes (C, length_scale, noise) by Bayesian optimization of the
// validation loss, then refits the GP on all data with the winner.
func (m *Model) Fit(x [][]float64, y []float64) error {
	if len(x) < 4 || len(x) != len(y) {
		return errors.New("bayes: need at least 4 training samples")
	}
	m.xs = num.FitStandardizer(x)
	xs := m.xs.TransformAll(x)

	// Internal split.
	perm := m.rng.Perm(len(xs))
	nVal := int(float64(len(xs)) * m.cfg.ValFrac)
	if nVal < 1 {
		nVal = 1
	}
	if nVal >= len(xs) {
		nVal = len(xs) - 1
	}
	valIdx, trainIdx := perm[:nVal], perm[nVal:]
	xTr, yTr := gather(xs, y, trainIdx)
	xVal, yVal := gather(xs, y, valIdx)

	// objective_function of Listing 6: fit a GP with the proposed kernel
	// hyper-parameters, predict the held-out samples, return −loss.
	objective := func(p [3]float64) float64 {
		g := &GP{C: math.Pow(10, p[0]), LengthScale: math.Pow(10, p[1]), Noise: math.Pow(10, p[2])}
		if err := g.Fit(xTr, yTr); err != nil {
			return math.Inf(-1)
		}
		preds := make([]float64, len(xVal))
		for i, xv := range xVal {
			preds[i] = g.Predict(xv)
		}
		return -m.cfg.Loss(preds, yVal)
	}

	var points [][]float64
	var values []float64
	bestVal := math.Inf(-1)
	evalPoint := func(p [3]float64) {
		v := objective(p)
		points = append(points, []float64{
			unit(p[0], logCRange), unit(p[1], logLenRange), unit(p[2], logNoiseRange)})
		if math.IsInf(v, -1) {
			v = -1e6
		}
		values = append(values, v)
		if v > bestVal {
			bestVal = v
			m.best = p
		}
	}

	for i := 0; i < m.cfg.InitPoints; i++ {
		evalPoint(m.randPoint())
	}
	for it := 0; it < m.cfg.Iterations; it++ {
		next, ok := m.proposeEI(points, values, bestVal)
		if !ok {
			next = m.randPoint()
		}
		evalPoint(next)
	}

	// Final fit on everything with the tuned kernel.
	m.gp = &GP{
		C:           math.Pow(10, m.best[0]),
		LengthScale: math.Pow(10, m.best[1]),
		Noise:       math.Pow(10, m.best[2]),
	}
	return m.gp.Fit(xs, y)
}

// randPoint samples uniform log-space hyper-parameters.
func (m *Model) randPoint() [3]float64 {
	return [3]float64{
		m.rng.Uniform(logCRange[0], logCRange[1]),
		m.rng.Uniform(logLenRange[0], logLenRange[1]),
		m.rng.Uniform(logNoiseRange[0], logNoiseRange[1]),
	}
}

// proposeEI fits a GP surrogate over the unit-cube hyper-parameter points
// and maximizes expected improvement over random candidates.
func (m *Model) proposeEI(points [][]float64, values []float64, best float64) ([3]float64, bool) {
	sur := &GP{C: 1, LengthScale: 0.3, Noise: 1e-4}
	// Normalize objective values for surrogate stability.
	mean, std := num.Mean(values), num.Std(values)
	if std < 1e-12 {
		return [3]float64{}, false
	}
	norm := make([]float64, len(values))
	for i, v := range values {
		norm[i] = (v - mean) / std
	}
	if err := sur.Fit(points, norm); err != nil {
		return [3]float64{}, false
	}
	bestNorm := (best - mean) / std
	var bestCand [3]float64
	bestEI := -1.0
	for i := 0; i < m.cfg.Candidates; i++ {
		p := m.randPoint()
		u := []float64{unit(p[0], logCRange), unit(p[1], logLenRange), unit(p[2], logNoiseRange)}
		mu, v := sur.PredictVar(u)
		sigma := math.Sqrt(v)
		z := (mu - bestNorm) / sigma
		ei := (mu-bestNorm)*phi(z) + sigma*pdf(z)
		if ei > bestEI {
			bestEI = ei
			bestCand = p
		}
	}
	return bestCand, bestEI > 0
}

// unit maps a value into [0,1] within its range.
func unit(v float64, r [2]float64) float64 { return (v - r[0]) / (r[1] - r[0]) }

// phi is the standard normal CDF.
func phi(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

// pdf is the standard normal density.
func pdf(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }

func gather(x [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	gx := make([][]float64, len(idx))
	gy := make([]float64, len(idx))
	for i, id := range idx {
		gx[i] = x[id]
		gy[i] = y[id]
	}
	return gx, gy
}

// Predict implements predictor.Predictor.
func (m *Model) Predict(x []float64) float64 {
	if m.gp == nil {
		return 0
	}
	return m.gp.Predict(m.xs.Transform(x))
}

// PredictBatch implements predictor.Predictor.
func (m *Model) PredictBatch(x [][]float64) []float64 {
	return predictor.BatchWith(x, m.Predict)
}

// BestHyperParams exposes the tuned (C, length_scale, noise) for reports.
func (m *Model) BestHyperParams() (c, lengthScale, noise float64) {
	return math.Pow(10, m.best[0]), math.Pow(10, m.best[1]), math.Pow(10, m.best[2])
}
