// Package bayes implements the paper's Bayesian-optimization predictor
// (§III-D.3, Listing 6): a Gaussian-process regressor with the kernel
// ConstantKernel(C) · RBF(length_scale) + WhiteKernel(noise), whose three
// hyper-parameters are tuned by Bayesian optimization (expected-improvement
// acquisition over a GP surrogate) maximizing an objective that fits the GP
// on a training split and scores a validation split with a selectable loss.
package bayes

import (
	"errors"
	"math"

	"repro/internal/num"
)

// GP is a Gaussian-process regressor with kernel C·RBF(ℓ) + noise·δ.
type GP struct {
	C           float64
	LengthScale float64
	Noise       float64

	x     [][]float64
	chol  *num.Matrix
	alpha []float64
	yMean float64
}

// kernel evaluates C·exp(−‖a−b‖² / (2ℓ²)).
func (g *GP) kernel(a, b []float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return g.C * math.Exp(-d2/(2*g.LengthScale*g.LengthScale))
}

// Fit factorizes the kernel matrix and precomputes α = K⁻¹(y−ȳ).
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("bayes: empty or mismatched GP training data")
	}
	if g.LengthScale <= 0 || g.C <= 0 {
		return errors.New("bayes: non-positive kernel hyper-parameters")
	}
	n := len(x)
	g.x = x
	g.yMean = num.Mean(y)
	k := num.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernel(x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+g.Noise+1e-10)
	}
	chol, err := num.Cholesky(k)
	if err != nil {
		// Jittered retry for borderline conditioning.
		for i := 0; i < n; i++ {
			k.Set(i, i, k.At(i, i)+1e-6)
		}
		chol, err = num.Cholesky(k)
		if err != nil {
			return err
		}
	}
	g.chol = chol
	centered := make([]float64, n)
	for i, v := range y {
		centered[i] = v - g.yMean
	}
	g.alpha = num.CholSolve(chol, centered)
	return nil
}

// Predict returns the posterior mean at x.
func (g *GP) Predict(x []float64) float64 {
	if g.alpha == nil {
		return 0
	}
	s := 0.0
	for i, xi := range g.x {
		s += g.kernel(x, xi) * g.alpha[i]
	}
	return s + g.yMean
}

// PredictVar returns posterior mean and variance at x (variance is needed by
// the expected-improvement acquisition of the optimizer). Models restored
// from a snapshot have no Cholesky factor and fall back to the prior
// variance.
func (g *GP) PredictVar(x []float64) (mean, variance float64) {
	if g.alpha == nil {
		return 0, g.C
	}
	if g.chol == nil {
		return g.Predict(x), g.C + g.Noise
	}
	n := len(g.x)
	ks := make([]float64, n)
	mean = g.yMean
	for i, xi := range g.x {
		ks[i] = g.kernel(x, xi)
		mean += ks[i] * g.alpha[i]
	}
	v := num.CholSolve(g.chol, ks)
	variance = g.C + g.Noise
	for i := range ks {
		variance -= ks[i] * v[i]
	}
	if variance < 1e-12 {
		variance = 1e-12
	}
	return mean, variance
}
