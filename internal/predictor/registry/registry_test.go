package registry

import (
	"math"
	"testing"

	"repro/internal/num"
)

func TestNamesResolve(t *testing.T) {
	rng := num.NewRNG(1)
	for _, n := range Names() {
		p, err := New(n, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Fatalf("predictor %q reports name %q", n, p.Name())
		}
	}
	aliases := []string{"mlr", "nn", "gp", "xgb", "LINREG"}
	for _, a := range aliases {
		if _, err := New(a, rng.Split()); err != nil {
			t.Fatalf("alias %q failed: %v", a, err)
		}
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := New("forest", num.NewRNG(1)); err == nil {
		t.Fatal("unknown name must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic")
		}
	}()
	MustNew("forest", num.NewRNG(1))
}

func TestAllReturnsFour(t *testing.T) {
	ps := All(num.NewRNG(2))
	if len(ps) != 4 {
		t.Fatalf("want 4 predictors, got %d", len(ps))
	}
}

// synthDataset builds a synthetic "autotuning-like" regression problem:
// features resemble cache ratios, the target is a noisy nonlinear mix.
func synthDataset(rng *num.RNG, n int) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		hit := rng.Float64()               // L1 hit ratio
		miss := 1 - hit                    // miss ratio
		loads := 0.2 + 0.4*rng.Float64()   // load fraction
		branch := 0.05 + 0.2*rng.Float64() // branch fraction
		total := 0.5 + rng.Float64()       // normalized total instructions
		row := []float64{loads, branch, hit, miss, total}
		target := 2.0*miss + 0.8*total + 0.5*loads*miss + 0.2*branch +
			0.02*rng.NormFloat64()
		x = append(x, row)
		y = append(y, target)
	}
	return x, y
}

// Every predictor must learn the synthetic problem well enough to rank a
// held-out set (Spearman > 0.8) — the property the paper relies on.
func TestAllPredictorsRankHeldOut(t *testing.T) {
	rng := num.NewRNG(77)
	xTr, yTr := synthDataset(rng, 240)
	xTe, yTe := synthDataset(rng, 60)
	for _, p := range All(num.NewRNG(5)) {
		if err := p.Fit(xTr, yTr); err != nil {
			t.Fatalf("%s: fit: %v", p.Name(), err)
		}
		preds := p.PredictBatch(xTe)
		rho := num.Spearman(preds, yTe)
		if rho < 0.8 {
			t.Fatalf("%s: held-out Spearman %.3f < 0.8", p.Name(), rho)
		}
	}
}

// Determinism: identical seeds must give identical predictions.
func TestPredictorsDeterministic(t *testing.T) {
	xTr, yTr := synthDataset(num.NewRNG(8), 120)
	probe := []float64{0.3, 0.1, 0.6, 0.4, 1.0}
	for _, name := range Names() {
		a := MustNew(name, num.NewRNG(42))
		b := MustNew(name, num.NewRNG(42))
		if err := a.Fit(xTr, yTr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Fit(xTr, yTr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pa, pb := a.Predict(probe), b.Predict(probe)
		if pa != pb {
			t.Fatalf("%s: predictions differ under same seed: %v vs %v", name, pa, pb)
		}
		if math.IsNaN(pa) {
			t.Fatalf("%s: NaN prediction", name)
		}
	}
}

func TestFitErrorsPropagate(t *testing.T) {
	for _, name := range Names() {
		p := MustNew(name, num.NewRNG(1))
		if err := p.Fit(nil, nil); err == nil {
			t.Fatalf("%s: empty fit must error", name)
		}
	}
}
