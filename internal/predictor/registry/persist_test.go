package registry

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/num"
	"repro/internal/predictor"
)

// Every predictor must survive a save/load round trip with bit-identical
// predictions.
func TestSaveLoadRoundTrip(t *testing.T) {
	xTr, yTr := synthDataset(num.NewRNG(50), 120)
	probes := [][]float64{
		{0.3, 0.1, 0.6, 0.4, 1.0},
		{0.5, 0.2, 0.2, 0.8, 0.7},
		{0.25, 0.15, 0.9, 0.1, 1.2},
	}
	for _, name := range Names() {
		orig := MustNew(name, num.NewRNG(42))
		if err := orig.Fit(xTr, yTr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := Save(orig, &buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if back.Name() != name {
			t.Fatalf("%s: restored name %q", name, back.Name())
		}
		for _, probe := range probes {
			a, b := orig.Predict(probe), back.Predict(probe)
			if a != b {
				t.Fatalf("%s: prediction changed after round trip: %v vs %v", name, a, b)
			}
			if math.IsNaN(a) {
				t.Fatalf("%s: NaN prediction", name)
			}
		}
		// Batch predictions must also survive.
		pa := orig.PredictBatch(probes)
		pb := back.PredictBatch(probes)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: batch prediction diverged", name)
			}
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("garbage input must error")
	}
}

func TestSaveUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(fakePredictor{}, &buf); err == nil {
		t.Fatal("unknown predictor type must error")
	}
}

type fakePredictor struct{}

func (fakePredictor) Name() string                         { return "fake" }
func (fakePredictor) Fit([][]float64, []float64) error     { return nil }
func (fakePredictor) Predict([]float64) float64            { return 0 }
func (fakePredictor) PredictBatch(x [][]float64) []float64 { return make([]float64, len(x)) }

var _ predictor.Predictor = fakePredictor{}
