package registry

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/num"
	"repro/internal/predictor"
	"repro/internal/predictor/bayes"
	"repro/internal/predictor/dnn"
	"repro/internal/predictor/mlr"
	"repro/internal/predictor/xgb"
)

// envelope wraps a predictor snapshot with its type tag.
type envelope struct {
	Kind  string
	MLR   *mlr.State
	DNN   *dnn.State
	Bayes *bayes.State
	XGB   *xgb.State
}

// Save serializes a trained predictor (gob). The paper's execution phase
// runs on machines that never see the target board; persisting the trained
// predictor is what makes that deployment real.
func Save(p predictor.Predictor, w io.Writer) error {
	env := envelope{}
	switch m := p.(type) {
	case *mlr.Model:
		s := m.Export()
		env.Kind, env.MLR = "LinReg", &s
	case *dnn.Model:
		s := m.Export()
		env.Kind, env.DNN = "DNN", &s
	case *bayes.Model:
		s := m.Export()
		env.Kind, env.Bayes = "Bayes", &s
	case *xgb.Model:
		s := m.Export()
		env.Kind, env.XGB = "XGBoost", &s
	default:
		return fmt.Errorf("registry: cannot persist predictor type %T", p)
	}
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("registry: encode: %w", err)
	}
	return nil
}

// Load deserializes a predictor saved with Save.
func Load(r io.Reader) (predictor.Predictor, error) {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("registry: decode: %w", err)
	}
	switch env.Kind {
	case "LinReg":
		if env.MLR == nil {
			return nil, fmt.Errorf("registry: LinReg snapshot missing payload")
		}
		m := mlr.New()
		m.Restore(*env.MLR)
		return m, nil
	case "DNN":
		if env.DNN == nil {
			return nil, fmt.Errorf("registry: DNN snapshot missing payload")
		}
		m := dnn.New(env.DNN.Config, num.NewRNG(0))
		m.Restore(*env.DNN)
		return m, nil
	case "Bayes":
		if env.Bayes == nil {
			return nil, fmt.Errorf("registry: Bayes snapshot missing payload")
		}
		m := bayes.New(bayes.DefaultConfig(), num.NewRNG(0))
		m.Restore(*env.Bayes)
		return m, nil
	case "XGBoost":
		if env.XGB == nil {
			return nil, fmt.Errorf("registry: XGBoost snapshot missing payload")
		}
		m := xgb.New(env.XGB.Config, num.NewRNG(0))
		m.Restore(*env.XGB)
		return m, nil
	}
	return nil, fmt.Errorf("registry: unknown snapshot kind %q", env.Kind)
}
