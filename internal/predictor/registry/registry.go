// Package registry constructs the paper's four predictors by name, with the
// tuned configurations of §IV-C, seeded from an explicit RNG for
// reproducibility.
package registry

import (
	"fmt"
	"strings"

	"repro/internal/num"
	"repro/internal/predictor"
	"repro/internal/predictor/bayes"
	"repro/internal/predictor/dnn"
	"repro/internal/predictor/mlr"
	"repro/internal/predictor/xgb"
)

// Names lists the predictors in the paper's table order.
func Names() []string { return []string{"LinReg", "DNN", "Bayes", "XGBoost"} }

// New builds a fresh predictor by (case-insensitive) name.
func New(name string, rng *num.RNG) (predictor.Predictor, error) {
	switch strings.ToLower(name) {
	case "linreg", "mlr", "linear":
		return mlr.New(), nil
	case "dnn", "nn":
		return dnn.New(dnn.DefaultConfig(), rng), nil
	case "bayes", "gp", "bayesopt":
		return bayes.New(bayes.DefaultConfig(), rng), nil
	case "xgboost", "xgb":
		return xgb.New(xgb.DefaultConfig(), rng), nil
	}
	return nil, fmt.Errorf("registry: unknown predictor %q (want one of %v)", name, Names())
}

// MustNew is New that panics on unknown names (static experiment tables).
func MustNew(name string, rng *num.RNG) predictor.Predictor {
	p, err := New(name, rng)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns one fresh instance of every predictor, each seeded from a
// split of rng.
func All(rng *num.RNG) []predictor.Predictor {
	out := make([]predictor.Predictor, 0, len(Names()))
	for _, n := range Names() {
		out = append(out, MustNew(n, rng.Split()))
	}
	return out
}
