package mlr

// State is the serializable form of a fitted model.
type State struct {
	Ridge   float64
	Weights []float64
}

// Export snapshots the fitted model.
func (m *Model) Export() State {
	return State{Ridge: m.Ridge, Weights: append([]float64(nil), m.weights...)}
}

// Restore loads a snapshot into the model.
func (m *Model) Restore(s State) {
	m.Ridge = s.Ridge
	m.weights = append([]float64(nil), s.Weights...)
}
