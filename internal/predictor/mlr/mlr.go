// Package mlr implements the paper's simplest predictor: multiple linear
// regression y = b0 + b1·x1 + … + bn·xn fit by minimizing the residual sum
// of squares (§III-D.1, "Linear Regression: RSS loss").
package mlr

import (
	"errors"

	"repro/internal/num"
)

// Model is a multiple linear regression predictor.
type Model struct {
	// Ridge is a small L2 stabilizer on the normal equations; 0 keeps the
	// pure RSS solution but a tiny default guards near-collinear features.
	Ridge float64

	weights []float64 // [intercept, b1..bn]
}

// New returns a linear-regression predictor with a numerically safe default
// ridge term.
func New() *Model { return &Model{Ridge: 1e-8} }

// Name implements predictor.Predictor.
func (m *Model) Name() string { return "LinReg" }

// Fit solves the normal equations over X with an intercept column.
func (m *Model) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("mlr: empty or mismatched training data")
	}
	d := len(x[0])
	design := num.NewMatrix(len(x), d+1)
	for i, row := range x {
		if len(row) != d {
			return errors.New("mlr: ragged feature rows")
		}
		design.Set(i, 0, 1)
		copy(design.Row(i)[1:], row)
	}
	w, err := num.LeastSquares(design, y, m.Ridge)
	if err != nil {
		return err
	}
	m.weights = w
	return nil
}

// Predict implements predictor.Predictor.
func (m *Model) Predict(x []float64) float64 {
	if m.weights == nil {
		return 0
	}
	s := m.weights[0]
	for i, v := range x {
		if i+1 >= len(m.weights) {
			break
		}
		s += m.weights[i+1] * v
	}
	return s
}

// PredictBatch implements predictor.Predictor.
func (m *Model) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// Weights exposes the fitted coefficients (intercept first) for diagnostics.
func (m *Model) Weights() []float64 { return append([]float64(nil), m.weights...) }
