package mlr

import (
	"math"
	"testing"
)

func TestRecoversLinearFunction(t *testing.T) {
	// y = 1 + 2a − 3b
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{a, b})
			y = append(y, 1+2*a-3*b)
		}
	}
	m := New()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	if math.Abs(w[0]-1) > 1e-6 || math.Abs(w[1]-2) > 1e-6 || math.Abs(w[2]+3) > 1e-6 {
		t.Fatalf("weights = %v", w)
	}
	if p := m.Predict([]float64{10, 1}); math.Abs(p-18) > 1e-6 {
		t.Fatalf("predict = %v want 18", p)
	}
}

func TestPredictBatch(t *testing.T) {
	m := New()
	_ = m.Fit([][]float64{{0}, {1}, {2}}, []float64{0, 1, 2})
	out := m.PredictBatch([][]float64{{3}, {4}})
	if math.Abs(out[0]-3) > 1e-6 || math.Abs(out[1]-4) > 1e-6 {
		t.Fatalf("batch = %v", out)
	}
}

func TestUnfittedPredictsZero(t *testing.T) {
	if New().Predict([]float64{1, 2}) != 0 {
		t.Fatal("unfitted model must predict 0")
	}
}

func TestFitErrors(t *testing.T) {
	m := New()
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty data must error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths must error")
	}
	if err := m.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows must error")
	}
}

func TestCollinearFeaturesStable(t *testing.T) {
	// Two identical columns: ridge must keep the solve finite.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	m := New()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{5, 5})
	if math.IsNaN(p) || math.Abs(p-10) > 0.1 {
		t.Fatalf("collinear predict = %v want ~10", p)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "LinReg" {
		t.Fatal("name mismatch")
	}
}
