package predictor

import (
	"math"
	"testing"
)

func TestMSE(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{0, 4}); got != 2.5 {
		t.Fatalf("mse = %v want 2.5", got)
	}
	if MSE(nil, nil) != 0 {
		t.Fatal("empty mse must be 0")
	}
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, 2}, []float64{0, 4}); got != 1.5 {
		t.Fatalf("mae = %v want 1.5", got)
	}
	if MAE(nil, nil) != 0 {
		t.Fatal("empty mae must be 0")
	}
}

func TestRSS(t *testing.T) {
	if got := RSS([]float64{1, 2}, []float64{0, 4}); got != 5 {
		t.Fatalf("rss = %v want 5", got)
	}
}

func TestBatchWith(t *testing.T) {
	out := BatchWith([][]float64{{1}, {2}}, func(x []float64) float64 { return x[0] * 2 })
	if out[0] != 2 || out[1] != 4 {
		t.Fatalf("batch = %v", out)
	}
}

func TestLossesNonNegative(t *testing.T) {
	preds := []float64{1.5, -2, 0}
	want := []float64{0, 0, 0}
	for _, l := range []Loss{MSE, MAE, RSS} {
		if v := l(preds, want); v < 0 || math.IsNaN(v) {
			t.Fatalf("loss negative or NaN: %v", v)
		}
	}
}
