package hw

import (
	"math"

	"repro/internal/lower"
	"repro/internal/num"
)

// MeasureOptions replicate the paper's measurement methodology (§IV):
// every implementation is executed N_exe = 15 times with a 1 s cooldown
// between repetitions, and the median is taken as the reference time t_ref.
type MeasureOptions struct {
	// Nexe is the number of repetitions (paper: 15).
	Nexe int
	// CooldownSec is the pause between repetitions (paper: 1 s).
	CooldownSec float64
}

// DefaultMeasureOptions returns the paper's setup.
func DefaultMeasureOptions() MeasureOptions {
	return MeasureOptions{Nexe: 15, CooldownSec: 1.0}
}

// Measurement is the outcome of benchmarking one implementation "natively".
type Measurement struct {
	// TrueSec is the noiseless modelled run time (not observable on real
	// hardware; kept for diagnostics and ablations).
	TrueSec float64
	// Samples are the noisy per-repetition observations.
	Samples []float64
	// TrefSec is the median of Samples — the paper's reference time.
	TrefSec float64
	// ElapsedSec is the wall-clock cost of the whole measurement including
	// cooldowns, Σ(t_cooldown + t_i); the Eq. (4) analysis compares this
	// against simulator throughput.
	ElapsedSec float64
	// Cycles is the modelled cycle count of one run.
	Cycles float64
}

// Measure executes the program once on the timing model and then samples
// Nexe noisy repetitions. Noise is multiplicative log-normal with a
// short-run-dependent sigma — faster platforms (x86) produce noisier
// references, as the paper observes in §IV-A — plus occasional positive
// outliers modelling background system load. All randomness comes from rng.
func Measure(p *lower.Program, prof Profile, opt MeasureOptions, rng *num.RNG) (Measurement, error) {
	m, err := AcquireMachine(prof)
	if err != nil {
		return Measurement{}, err
	}
	defer ReleaseMachine(m)
	lower.Execute(p, m, false)
	return SampleMeasurement(m.Seconds(), m.Cycles(), prof, opt, rng), nil
}

// SampleMeasurement draws the noisy repetitions around a known true time.
// Split out so ablations can re-sample without re-simulating.
func SampleMeasurement(trueSec, cycles float64, prof Profile, opt MeasureOptions, rng *num.RNG) Measurement {
	t := prof.Timing
	res := Measurement{TrueSec: trueSec, Cycles: cycles}
	sigma := t.NoiseBase + t.NoiseShort/(1+trueSec/t.NoiseRefSec)
	res.Samples = make([]float64, opt.Nexe)
	for i := range res.Samples {
		s := trueSec * rng.LogNormal(0, sigma)
		if rng.Float64() < t.OutlierProb {
			s *= 1 + rng.Uniform(0, t.OutlierScale)
		}
		res.Samples[i] = s
		res.ElapsedSec += opt.CooldownSec + s
	}
	res.TrefSec = num.Median(res.Samples)
	return res
}

// ParallelSimulators computes K of Eq. (4): the number of simulator
// instances that must run in parallel for simulation to beat native
// (sequential) measurement of one implementation.
//
//	K = ceil(t_simulator / ((t_cooldown + t_ref) · N_exe))
func ParallelSimulators(simSec, trefSec float64, opt MeasureOptions) int {
	denom := (opt.CooldownSec + trefSec) * float64(opt.Nexe)
	if denom <= 0 {
		return 1
	}
	k := int(math.Ceil(simSec / denom))
	if k < 1 {
		k = 1
	}
	return k
}

// SimSeconds models the wall time a gem5-atomic-class simulator needs for a
// program with the given instruction count on this profile's ISA.
func SimSeconds(instructions int64, prof Profile) float64 {
	return float64(instructions) / (prof.SimMIPS * 1e6)
}
