// Package hw models the three evaluation targets of the paper (§IV): an AMD
// Ryzen 7 5800X-class x86 CPU, a Raspberry Pi 4 Cortex-A72, and a SiFive
// U74-MC — their Table I cache hierarchies plus a cycle-approximate timing
// model and a noisy measurement harness.
//
// In the paper, reference run times t_ref come from executing every
// implementation natively on the physical boards. This package is the
// repository's stand-in for that hardware (see DESIGN.md §1): the timing
// model consumes the same instruction stream as the instruction-accurate
// simulator but additionally models what the IA simulator cannot see —
// per-class issue costs, cache-miss latencies damped by out-of-order
// overlap, a stream prefetcher, branch-mispredict penalties, and
// run-to-run measurement noise.
package hw

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
)

// Profile bundles everything the reproduction knows about one target CPU.
type Profile struct {
	Arch isa.Arch
	// Name is the marketing name of the modelled part.
	Name string
	// FreqGHz is the core clock used to convert cycles to seconds
	// (paper §IV: 2.2, 1.5 and 1.2 GHz).
	FreqGHz float64
	// Caches is the Table I hierarchy.
	Caches cache.HierarchyConfig
	// Timing holds the microarchitectural cost model.
	Timing TimingParams
	// SimMIPS is the modelled simulation rate (million instructions per
	// second) of a gem5-atomic-class simulator for this ISA, used by the
	// Eq. (4) speedup analysis.
	SimMIPS float64
}

// TimingParams is the cycle-approximate cost model of one CPU.
type TimingParams struct {
	// IssueCost is the average issue cost in cycles per instruction class
	// (reciprocal throughput on the modelled pipeline).
	IssueCost [isa.NumClasses]float64
	// Latency maps cache service depth (1=L1, 2=L2, 3=L3/mem, 4=mem) to a
	// load-to-use latency in cycles. Index 0 is unused.
	Latency [6]float64
	// MLPOverlap in [0,1) is the fraction of miss latency hidden by
	// out-of-order execution / memory-level parallelism.
	MLPOverlap float64
	// PrefetchEff in [0,1) is the fraction of a detected streaming miss's
	// latency hidden by the hardware prefetcher.
	PrefetchEff float64
	// MispredictPenalty is the pipeline refill cost of a mispredicted
	// branch in cycles.
	MispredictPenalty float64
	// GuardMispredictEvery makes every Nth guard branch mispredict
	// (deterministic stand-in for data-dependent branch noise; 0 = never).
	GuardMispredictEvery uint64
	// CallOverheadSec is the fixed per-run overhead (process start, timer
	// reads, tvm runtime dispatch).
	CallOverheadSec float64
	// NoiseBase is the relative run-to-run noise floor of the platform.
	NoiseBase float64
	// NoiseShort is additional relative noise for very short runs (timer
	// granularity, transient load), fading with run time.
	NoiseShort float64
	// NoiseRefSec is the run time at which NoiseShort has fallen to half.
	NoiseRefSec float64
	// OutlierProb is the probability of a background-load spike per
	// repetition; OutlierScale is its magnitude.
	OutlierProb  float64
	OutlierScale float64
}

// line64 is the cache-line size shared by all Table I CPUs.
const line64 = 64

// profiles are the three Table I machines.
var profiles = map[isa.Arch]Profile{
	isa.X86: {
		Arch:    isa.X86,
		Name:    "AMD Ryzen 7 5800X (1 core)",
		FreqGHz: 2.2,
		Caches: cache.HierarchyConfig{
			L1D: cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: line64, Assoc: 8},
			L1I: cache.Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: line64, Assoc: 8},
			L2:  cache.Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: line64, Assoc: 8},
			L3:  cache.Config{Name: "L3", SizeBytes: 32 << 20, LineBytes: line64, Assoc: 16},
		},
		Timing: TimingParams{
			IssueCost: perClass(map[isa.Class]float64{
				isa.Load: 0.5, isa.Store: 0.5, isa.VLoad: 0.5, isa.VStore: 0.5,
				isa.ALU: 0.25, isa.FMA: 0.5, isa.VFMA: 0.5, isa.Branch: 0.5,
			}),
			// L1 4 cyc (folded into issue), L2 12, L3 40, DRAM ~170 cycles.
			Latency:              [6]float64{0, 3, 12, 40, 170, 170},
			MLPOverlap:           0.85,
			PrefetchEff:          0.85,
			MispredictPenalty:    14,
			GuardMispredictEvery: 48,
			CallOverheadSec:      40e-6,
			NoiseBase:            0.012,
			NoiseShort:           0.045,
			NoiseRefSec:          4e-3,
			OutlierProb:          0.06,
			OutlierScale:         0.35,
		},
		SimMIPS: 3.0,
	},
	isa.ARM: {
		Arch:    isa.ARM,
		Name:    "Raspberry Pi 4 / Cortex-A72 (1 core)",
		FreqGHz: 1.5,
		Caches: cache.HierarchyConfig{
			L1D: cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: line64, Assoc: 2},
			L1I: cache.Config{Name: "L1I", SizeBytes: 48 << 10, LineBytes: line64, Assoc: 3},
			L2:  cache.Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: line64, Assoc: 16},
		},
		Timing: TimingParams{
			IssueCost: perClass(map[isa.Class]float64{
				isa.Load: 0.7, isa.Store: 0.7, isa.VLoad: 1.0, isa.VStore: 1.0,
				isa.ALU: 0.35, isa.FMA: 1.0, isa.VFMA: 1.0, isa.Branch: 0.6,
			}),
			// A72: L1 4 cyc, L2 ~21, DRAM ~150 ns ≈ 225 cycles @1.5 GHz.
			Latency:              [6]float64{0, 4, 21, 225, 225, 225},
			MLPOverlap:           0.55,
			PrefetchEff:          0.5,
			MispredictPenalty:    15,
			GuardMispredictEvery: 64,
			CallOverheadSec:      120e-6,
			NoiseBase:            0.006,
			NoiseShort:           0.02,
			NoiseRefSec:          4e-3,
			OutlierProb:          0.03,
			OutlierScale:         0.2,
		},
		SimMIPS: 4.0,
	},
	isa.RISCV: {
		Arch:    isa.RISCV,
		Name:    "SiFive U74-MC (1 core)",
		FreqGHz: 1.2,
		Caches: cache.HierarchyConfig{
			L1D: cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: line64, Assoc: 8},
			L1I: cache.Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: line64, Assoc: 8},
			L2:  cache.Config{Name: "L2", SizeBytes: 2 << 20, LineBytes: line64, Assoc: 16},
		},
		Timing: TimingParams{
			IssueCost: perClass(map[isa.Class]float64{
				// Dual-issue in-order; vector classes never occur (no SIMD)
				// but keep scalar-equivalent costs for safety.
				isa.Load: 0.8, isa.Store: 0.8, isa.VLoad: 0.8, isa.VStore: 0.8,
				isa.ALU: 0.5, isa.FMA: 2.0, isa.VFMA: 2.0, isa.Branch: 1.0,
			}),
			// U74: L1 2-3 cyc, L2 ~20, DRAM ~135 ns ≈ 160 cycles @1.2 GHz.
			Latency:              [6]float64{0, 3, 20, 160, 160, 160},
			MLPOverlap:           0.15,
			PrefetchEff:          0.1,
			MispredictPenalty:    6,
			GuardMispredictEvery: 64,
			CallOverheadSec:      150e-6,
			NoiseBase:            0.005,
			NoiseShort:           0.015,
			NoiseRefSec:          4e-3,
			OutlierProb:          0.02,
			OutlierScale:         0.15,
		},
		SimMIPS: 5.0,
	},
}

// perClass expands a class→cost map into the dense array, defaulting to 1.
func perClass(m map[isa.Class]float64) [isa.NumClasses]float64 {
	var out [isa.NumClasses]float64
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if v, ok := m[c]; ok {
			out[c] = v
		} else {
			out[c] = 1
		}
	}
	return out
}

// Lookup returns the profile of one architecture.
func Lookup(a isa.Arch) Profile {
	p, ok := profiles[a]
	if !ok {
		panic(fmt.Sprintf("hw: unknown arch %q", a))
	}
	return p
}

// Profiles returns all three targets in paper order.
func Profiles() []Profile {
	out := make([]Profile, 0, 3)
	for _, a := range isa.Archs() {
		out = append(out, Lookup(a))
	}
	return out
}
