package hw

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/lower"
)

// Machine is the cycle-approximate timing model of one target CPU. It
// implements lower.Sink: feed it a program execution and read Seconds().
//
// It deliberately models effects the instruction-accurate simulator cannot
// see, so that reference times are a richer function of the instruction
// stream than the IA statistics (the learning problem of the paper):
//
//   - per-class issue costs (wide OoO x86 retires more per cycle than the
//     dual-issue in-order U74),
//   - cache-miss latencies damped by an out-of-order/MLP overlap factor,
//   - a stream prefetcher that hides most of the latency of unit-stride
//     misses (aggressive on x86, nearly absent on the U74),
//   - branch-mispredict penalties on loop exits and periodically on guard
//     branches.
//
// Cycle accounting is split by order sensitivity so the block-aggregated
// event encoding stays bit-identical to the per-instruction one: issue costs
// and mispredict penalties are pure functions of instruction/branch counts
// and are summed arithmetically in Cycles(), while cache-miss latencies —
// whose floating-point accumulation order matters — are added in event-
// stream order, which both encodings emit identically.
type Machine struct {
	Prof Profile
	hier *cache.Hierarchy

	// instr counts executed instructions per class (issue cycles are
	// count·IssueCost, computed in Cycles()).
	instr [isa.NumClasses]uint64
	// loopExits and guardBranches count flagged branches; mispredicts and
	// their penalties are derived in mispredicts()/Cycles().
	loopExits     uint64
	guardBranches uint64
	// latencyCycles accumulates cache-miss latencies in stream order.
	latencyCycles float64

	lastLine uint64
	haveLine bool

	// streams maps a 4 KiB page to the last missed line address within it,
	// implementing a unit-stride stream detector.
	streams map[uint64]uint64
}

// NewMachine builds the timing model for a profile.
func NewMachine(prof Profile) (*Machine, error) {
	h, err := cache.NewHierarchy(prof.Caches)
	if err != nil {
		return nil, err
	}
	return &Machine{Prof: prof, hier: h, streams: make(map[uint64]uint64, 64)}, nil
}

// Consume implements lower.Sink. EvFetch/EvData events of the block-
// aggregated encoding carry their cache accesses directly; legacy EvInstr
// events additionally model the line-granular instruction fetch and tally
// their own class/flag counts.
func (m *Machine) Consume(events []lower.Event) {
	t := &m.Prof.Timing
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case lower.EvFetch:
			if depth := m.hier.Fetch(e.PC, 1); depth > 1 {
				m.latencyCycles += t.Latency[depth] * (1 - t.MLPOverlap)
			}
		case lower.EvData:
			m.dataAccess(e, t)
		default: // EvInstr
			m.instr[e.Class]++

			// Front end: instruction fetch at line granularity.
			line := e.PC &^ 63
			if !m.haveLine || line != m.lastLine {
				if depth := m.hier.Fetch(line, 1); depth > 1 {
					m.latencyCycles += t.Latency[depth] * (1 - t.MLPOverlap)
				}
				m.lastLine = line
				m.haveLine = true
			}

			switch {
			case e.Class.IsLoad(), e.Class.IsStore():
				m.dataAccess(e, t)
			case e.Flags&lower.FlagLoopExit != 0:
				m.loopExits++
			case e.Flags&lower.FlagGuard != 0:
				m.guardBranches++
			}
		}
	}
}

// dataAccess replays one load/store through the hierarchy and charges its
// miss latency (damped by prefetch, write buffers and MLP overlap).
func (m *Machine) dataAccess(e *lower.Event, t *TimingParams) {
	m.dataAccessAddr(e.Addr, uint32(e.Size), e.Class.IsStore(), t)
}

func (m *Machine) dataAccessAddr(addr uint64, size uint32, write bool, t *TimingParams) {
	depth := m.hier.Data(addr, size, write)
	if depth > 1 {
		lat := t.Latency[depth]
		if m.streamHit(addr) {
			lat *= 1 - t.PrefetchEff
		}
		// Store misses are mostly hidden by write buffers; charge a quarter
		// of the load penalty.
		if write {
			lat *= 0.25
		}
		m.latencyCycles += lat * (1 - t.MLPOverlap)
	}
}

// ConsumeLoop implements lower.Sink: the span's accesses are replayed in
// interleaved order, so miss latencies accumulate exactly as the per-event
// stream would (issue costs arrive through ConsumeCounts). A span whose
// lines are all resident in L1D takes the cache package's bulk fast path:
// every access hits, so it contributes no miss latency and never touches
// the stream detector (which only observes misses) — bit-identical cycles
// at a fraction of the replay cost.
func (m *Machine) ConsumeLoop(run *lower.LoopRun) {
	t := &m.Prof.Timing
	rows, planes := run.Rows, run.Planes
	if rows < 1 {
		rows = 1
	}
	if planes < 1 {
		planes = 1
	}
	if m.hier.TryDataRunResident(run.Count, rows, planes, run.Sites) {
		return
	}
	for k := 0; k < planes; k++ {
		for j := 0; j < rows; j++ {
			for i := 0; i < run.Count; i++ {
				for s := range run.Sites {
					site := &run.Sites[s]
					addr := site.Addr + uint64(int64(k)*site.PlaneStep+int64(j)*site.RowStep+int64(i)*site.Step)
					m.dataAccessAddr(addr, uint32(site.Size), site.Write, t)
				}
			}
		}
	}
}

// ConsumeCounts implements lower.Sink: bulk instruction and flagged-branch
// counts of the block-aggregated encoding. Issue cycles and mispredict
// penalties are derived from these totals in Cycles(), so adding them in one
// step is exact.
func (m *Machine) ConsumeCounts(counts *lower.Counts) {
	for cl, n := range counts.ByClass {
		m.instr[cl] += n
	}
	m.loopExits += counts.LoopExits
	m.guardBranches += counts.GuardBranches
}

// streamHit updates the unit-stride detector and reports whether the missed
// line continues a detected stream (and would have been prefetched).
func (m *Machine) streamHit(addr uint64) bool {
	page := addr >> 12
	line := addr >> 6
	last, ok := m.streams[page]
	m.streams[page] = line
	if len(m.streams) > 4096 { // bound the table like real prefetchers do
		for k := range m.streams {
			delete(m.streams, k)
			if len(m.streams) <= 64 {
				break
			}
		}
	}
	return ok && (line == last+1 || line == last)
}

// mispredicts derives the modelled mispredict count: every loop exit plus
// every GuardMispredictEvery-th guard branch.
func (m *Machine) mispredicts() uint64 {
	n := m.loopExits
	if every := m.Prof.Timing.GuardMispredictEvery; every > 0 {
		n += m.guardBranches / every
	}
	return n
}

// Cycles returns the accumulated cycle count: per-class issue costs,
// cache-miss latencies and branch-mispredict penalties.
func (m *Machine) Cycles() float64 {
	t := &m.Prof.Timing
	cycles := m.latencyCycles
	for cl, n := range m.instr {
		if n > 0 {
			cycles += float64(n) * t.IssueCost[cl]
		}
	}
	return cycles + float64(m.mispredicts())*t.MispredictPenalty
}

// Mispredicts returns the modelled branch mispredictions.
func (m *Machine) Mispredicts() uint64 { return m.mispredicts() }

// Seconds converts cycles to wall time at the profile's clock and adds the
// fixed per-run call overhead.
func (m *Machine) Seconds() float64 {
	return m.Cycles()/(m.Prof.FreqGHz*1e9) + m.Prof.Timing.CallOverheadSec
}

// Reset clears cycles, caches and predictor state for a fresh run.
func (m *Machine) Reset() {
	m.instr = [isa.NumClasses]uint64{}
	m.loopExits = 0
	m.guardBranches = 0
	m.latencyCycles = 0
	m.haveLine = false
	m.hier.Reset()
	clear(m.streams)
}

// machinePools holds per-profile free lists of reset timing machines, so
// per-candidate measurement re-uses cache hierarchies instead of allocating
// a fresh one per run (Profile is comparable: arrays and flat structs only).
var machinePools sync.Map // Profile -> *sync.Pool

// AcquireMachine returns a reset timing machine for the profile, re-using a
// pooled instance when one is available. ReleaseMachine it after reading
// Cycles()/Seconds().
func AcquireMachine(prof Profile) (*Machine, error) {
	if p, ok := machinePools.Load(prof); ok {
		if m, _ := p.(*sync.Pool).Get().(*Machine); m != nil {
			return m, nil
		}
	}
	return NewMachine(prof)
}

// ReleaseMachine resets a machine and returns it to its profile's pool.
func ReleaseMachine(m *Machine) {
	if m == nil {
		return
	}
	m.Reset()
	p, _ := machinePools.LoadOrStore(m.Prof, &sync.Pool{})
	p.(*sync.Pool).Put(m)
}
