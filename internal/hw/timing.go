package hw

import (
	"repro/internal/cache"
	"repro/internal/lower"
)

// Machine is the cycle-approximate timing model of one target CPU. It
// implements lower.Sink: feed it a program execution and read Seconds().
//
// It deliberately models effects the instruction-accurate simulator cannot
// see, so that reference times are a richer function of the instruction
// stream than the IA statistics (the learning problem of the paper):
//
//   - per-class issue costs (wide OoO x86 retires more per cycle than the
//     dual-issue in-order U74),
//   - cache-miss latencies damped by an out-of-order/MLP overlap factor,
//   - a stream prefetcher that hides most of the latency of unit-stride
//     misses (aggressive on x86, nearly absent on the U74),
//   - branch-mispredict penalties on loop exits and periodically on guard
//     branches.
type Machine struct {
	Prof   Profile
	hier   *cache.Hierarchy
	cycles float64

	lastLine uint64
	haveLine bool

	guardBranches uint64
	mispredicts   uint64

	// streams maps a 4 KiB page to the last missed line address within it,
	// implementing a unit-stride stream detector.
	streams map[uint64]uint64
}

// NewMachine builds the timing model for a profile.
func NewMachine(prof Profile) (*Machine, error) {
	h, err := cache.NewHierarchy(prof.Caches)
	if err != nil {
		return nil, err
	}
	return &Machine{Prof: prof, hier: h, streams: make(map[uint64]uint64, 64)}, nil
}

// Consume implements lower.Sink.
func (m *Machine) Consume(events []lower.Event) {
	t := &m.Prof.Timing
	for i := range events {
		e := &events[i]
		m.cycles += t.IssueCost[e.Class]

		// Front end: instruction fetch at line granularity.
		line := e.PC &^ 63
		if !m.haveLine || line != m.lastLine {
			if depth := m.hier.Fetch(line, 1); depth > 1 {
				m.cycles += t.Latency[depth] * (1 - t.MLPOverlap)
			}
			m.lastLine = line
			m.haveLine = true
		}

		switch {
		case e.Class.IsLoad(), e.Class.IsStore():
			write := e.Class.IsStore()
			depth := m.hier.Data(e.Addr, uint32(e.Size), write)
			if depth > 1 {
				lat := t.Latency[depth]
				if m.streamHit(e.Addr) {
					lat *= 1 - t.PrefetchEff
				}
				// Store misses are mostly hidden by write buffers; charge
				// a quarter of the load penalty.
				if write {
					lat *= 0.25
				}
				m.cycles += lat * (1 - t.MLPOverlap)
			}
		case e.Flags&lower.FlagLoopExit != 0:
			m.cycles += t.MispredictPenalty
			m.mispredicts++
		case e.Flags&lower.FlagGuard != 0:
			m.guardBranches++
			if t.GuardMispredictEvery > 0 && m.guardBranches%t.GuardMispredictEvery == 0 {
				m.cycles += t.MispredictPenalty
				m.mispredicts++
			}
		}
	}
}

// streamHit updates the unit-stride detector and reports whether the missed
// line continues a detected stream (and would have been prefetched).
func (m *Machine) streamHit(addr uint64) bool {
	page := addr >> 12
	line := addr >> 6
	last, ok := m.streams[page]
	m.streams[page] = line
	if len(m.streams) > 4096 { // bound the table like real prefetchers do
		for k := range m.streams {
			delete(m.streams, k)
			if len(m.streams) <= 64 {
				break
			}
		}
	}
	return ok && (line == last+1 || line == last)
}

// Cycles returns the accumulated cycle count.
func (m *Machine) Cycles() float64 { return m.cycles }

// Mispredicts returns the modelled branch mispredictions.
func (m *Machine) Mispredicts() uint64 { return m.mispredicts }

// Seconds converts cycles to wall time at the profile's clock and adds the
// fixed per-run call overhead.
func (m *Machine) Seconds() float64 {
	return m.cycles/(m.Prof.FreqGHz*1e9) + m.Prof.Timing.CallOverheadSec
}

// Reset clears cycles, caches and predictor state for a fresh run.
func (m *Machine) Reset() {
	m.cycles = 0
	m.haveLine = false
	m.guardBranches = 0
	m.mispredicts = 0
	m.hier.Reset()
	m.streams = make(map[uint64]uint64, 64)
}
