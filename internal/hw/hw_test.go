package hw

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/num"
	"repro/internal/schedule"
	"repro/internal/te"
)

func TestProfilesMatchTableI(t *testing.T) {
	x := Lookup(isa.X86)
	if x.Caches.L1D.Sets() != 64 || x.Caches.L1D.Assoc != 8 {
		t.Fatalf("x86 L1D geometry wrong: %+v", x.Caches.L1D)
	}
	if x.Caches.L2.Sets() != 1024 || x.Caches.L3.Sets() != 32768 || x.Caches.L3.Assoc != 16 {
		t.Fatalf("x86 L2/L3 geometry wrong")
	}
	a := Lookup(isa.ARM)
	if a.Caches.L1D.Sets() != 256 || a.Caches.L1D.Assoc != 2 {
		t.Fatalf("arm L1D geometry wrong: %+v", a.Caches.L1D)
	}
	if a.Caches.L1I.SizeBytes != 48<<10 || a.Caches.L1I.Assoc != 3 || a.Caches.L1I.Sets() != 256 {
		t.Fatalf("arm L1I geometry wrong: %+v", a.Caches.L1I)
	}
	if a.Caches.HasL3() {
		t.Fatal("arm must have no L3")
	}
	r := Lookup(isa.RISCV)
	if r.Caches.L2.SizeBytes != 2<<20 || r.Caches.L2.Sets() != 2048 || r.Caches.L2.Assoc != 16 {
		t.Fatalf("riscv L2 geometry wrong: %+v", r.Caches.L2)
	}
	// Paper frequencies: 2.2, 1.5, 1.2 GHz.
	if x.FreqGHz != 2.2 || a.FreqGHz != 1.5 || r.FreqGHz != 1.2 {
		t.Fatal("paper frequencies wrong")
	}
}

func TestProfilesComplete(t *testing.T) {
	if len(Profiles()) != 3 {
		t.Fatal("want 3 profiles")
	}
	for _, p := range Profiles() {
		for c := isa.Class(0); c < isa.NumClasses; c++ {
			if p.Timing.IssueCost[c] <= 0 {
				t.Fatalf("%s: class %s has no issue cost", p.Arch, c)
			}
		}
		if p.SimMIPS <= 0 {
			t.Fatalf("%s: SimMIPS unset", p.Arch)
		}
	}
}

func buildProg(t *testing.T, arch isa.Arch, blocked bool) *lower.Program {
	t.Helper()
	n := 32
	if blocked {
		// Blocking only pays once operands exceed L1D; use 128³ for the
		// comparison tests.
		n = 128
	}
	wl := te.MatMul(n, n, n)
	s := schedule.New(wl.Op)
	if blocked {
		i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
		io, ii, _ := s.Split(i, 8)
		jo, ji, _ := s.Split(j, 8)
		ko, ki, _ := s.Split(k, 8)
		if err := s.Reorder([]*schedule.IterVar{io, jo, ii, ko, ki, ji}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := lower.Build(s, isa.Lookup(arch))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildProgN(t *testing.T, arch isa.Arch, n int, blocked bool) *lower.Program {
	t.Helper()
	wl := te.MatMul(n, n, n)
	s := schedule.New(wl.Op)
	if blocked {
		i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
		io, ii, _ := s.Split(i, 8)
		jo, ji, _ := s.Split(j, 8)
		ko, ki, _ := s.Split(k, 8)
		if err := s.Reorder([]*schedule.IterVar{io, jo, ii, ko, ki, ji}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := lower.Build(s, isa.Lookup(arch))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTimingPositiveAndDeterministic(t *testing.T) {
	for _, prof := range Profiles() {
		p := buildProg(t, prof.Arch, false)
		m1, err := NewMachine(prof)
		if err != nil {
			t.Fatal(err)
		}
		lower.Execute(p, m1, false)
		m2, _ := NewMachine(prof)
		lower.Execute(p, m2, false)
		if m1.Cycles() <= 0 {
			t.Fatalf("%s: zero cycles", prof.Arch)
		}
		if m1.Cycles() != m2.Cycles() {
			t.Fatalf("%s: timing must be deterministic", prof.Arch)
		}
		if m1.Seconds() <= prof.Timing.CallOverheadSec {
			t.Fatalf("%s: seconds missing cycle component", prof.Arch)
		}
	}
}

func TestEmbeddedSlowerThanX86(t *testing.T) {
	secs := map[isa.Arch]float64{}
	for _, prof := range Profiles() {
		p := buildProg(t, prof.Arch, false)
		m, _ := NewMachine(prof)
		lower.Execute(p, m, false)
		secs[prof.Arch] = m.Seconds()
	}
	if !(secs[isa.X86] < secs[isa.ARM] && secs[isa.ARM] < secs[isa.RISCV]) {
		t.Fatalf("expected x86 < arm < riscv run times, got %+v", secs)
	}
}

func TestBlockingFasterThanNaive(t *testing.T) {
	// Cache blocking must pay off on the timing model for a matmul whose
	// working set exceeds L1.
	for _, prof := range Profiles() {
		naive, _ := NewMachine(prof)
		lower.Execute(buildProgN(t, prof.Arch, 128, false), naive, false)
		blocked, _ := NewMachine(prof)
		lower.Execute(buildProgN(t, prof.Arch, 128, true), blocked, false)
		if blocked.Cycles() >= naive.Cycles() {
			t.Fatalf("%s: blocked %f >= naive %f cycles", prof.Arch, blocked.Cycles(), naive.Cycles())
		}
	}
}

func TestMispredictsCounted(t *testing.T) {
	prof := Lookup(isa.RISCV)
	m, _ := NewMachine(prof)
	lower.Execute(buildProg(t, prof.Arch, false), m, false)
	if m.Mispredicts() == 0 {
		t.Fatal("loop exits must produce mispredicts")
	}
}

func TestMachineReset(t *testing.T) {
	prof := Lookup(isa.ARM)
	m, _ := NewMachine(prof)
	lower.Execute(buildProg(t, prof.Arch, false), m, false)
	m.Reset()
	if m.Cycles() != 0 || m.Mispredicts() != 0 {
		t.Fatal("reset must clear state")
	}
}

func TestMeasureMedianAndElapsed(t *testing.T) {
	prof := Lookup(isa.RISCV)
	p := buildProg(t, prof.Arch, false)
	opt := DefaultMeasureOptions()
	res, err := Measure(p, prof, opt, num.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 15 {
		t.Fatalf("want 15 samples, got %d", len(res.Samples))
	}
	if res.TrefSec <= 0 || res.TrueSec <= 0 {
		t.Fatal("non-positive measurement")
	}
	// Median should be within the noise envelope of the true time.
	if math.Abs(res.TrefSec-res.TrueSec)/res.TrueSec > 0.25 {
		t.Fatalf("median %v too far from true %v", res.TrefSec, res.TrueSec)
	}
	// Elapsed includes 15 cooldowns of 1s.
	if res.ElapsedSec < 15*opt.CooldownSec {
		t.Fatalf("elapsed %v must include cooldowns", res.ElapsedSec)
	}
}

func TestMeasureDeterministicUnderSeed(t *testing.T) {
	prof := Lookup(isa.ARM)
	p := buildProg(t, prof.Arch, false)
	a, _ := Measure(p, prof, DefaultMeasureOptions(), num.NewRNG(9))
	b, _ := Measure(p, prof, DefaultMeasureOptions(), num.NewRNG(9))
	if a.TrefSec != b.TrefSec {
		t.Fatal("same seed must reproduce the measurement")
	}
	c, _ := Measure(p, prof, DefaultMeasureOptions(), num.NewRNG(10))
	if a.TrefSec == c.TrefSec {
		t.Fatal("different seeds should differ")
	}
}

func TestShortRunsNoisier(t *testing.T) {
	prof := Lookup(isa.X86)
	opt := DefaultMeasureOptions()
	spread := func(trueSec float64) float64 {
		rng := num.NewRNG(3)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			m := SampleMeasurement(trueSec, 0, prof, opt, rng)
			for _, s := range m.Samples {
				rel := s / trueSec
				lo = math.Min(lo, rel)
				hi = math.Max(hi, rel)
			}
		}
		return hi - lo
	}
	if spread(50e-6) <= spread(50e-3) {
		t.Fatal("short runs must be relatively noisier than long runs")
	}
}

func TestParallelSimulatorsEq4(t *testing.T) {
	opt := DefaultMeasureOptions()
	// t_sim = 100 s, t_ref = 1 s: K = ceil(100 / (2·15)) = 4.
	if k := ParallelSimulators(100, 1, opt); k != 4 {
		t.Fatalf("K = %d want 4", k)
	}
	// Tiny simulation: K = 1.
	if k := ParallelSimulators(0.001, 1, opt); k != 1 {
		t.Fatalf("K = %d want 1", k)
	}
	if k := ParallelSimulators(10, 0, MeasureOptions{Nexe: 0}); k != 1 {
		t.Fatalf("degenerate K = %d want 1", k)
	}
}

func TestSimSeconds(t *testing.T) {
	prof := Lookup(isa.X86)
	if got := SimSeconds(3_000_000, prof); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("3M instr at 3 MIPS should be 1 s, got %v", got)
	}
}

func TestPrefetcherHelpsStreaming(t *testing.T) {
	// Sequential scan vs strided scan over the same footprint: the stream
	// prefetcher must make the sequential one cheaper on x86.
	prof := Lookup(isa.X86)
	run := func(stride int) float64 {
		m, _ := NewMachine(prof)
		var evs []lower.Event
		n := 1 << 14
		for i := 0; i < n; i++ {
			idx := i * stride % n
			evs = append(evs, lower.Event{PC: 4096, Class: isa.Load,
				Addr: uint64(1 << 20 * 8 * stride), Size: 4})
			evs[len(evs)-1].Addr = uint64(1<<24) + uint64(idx)*64
		}
		m.Consume(evs)
		return m.Cycles()
	}
	seq := run(1)
	strided := run(17)
	if seq >= strided {
		t.Fatalf("sequential %f should be cheaper than strided %f", seq, strided)
	}
}

func TestLookupPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Lookup(isa.Arch("sparc"))
}
