// Package features turns instruction-accurate simulator statistics into the
// predictor input vectors of the paper (§III-D):
//
//   - executed load/store/branch instructions divided by total instructions,
//   - per-cache read/write hits, misses and replacements divided by the
//     read/write accesses of that cache (Eq. 1),
//   - every parameter additionally in group-normalized form
//     P_norm = (P − mean(P)) / mean(P) (Eq. 2),
//   - the total instruction count normalized to the group.
//
// Group means are exact during training; at inference the paper approximates
// them with a static window (mean of the first w samples) or a dynamic
// window (running mean), both implemented here (§III-E).
package features

import (
	"fmt"

	"repro/internal/sim"
)

// Sample is the raw parameter vector of one implementation plus its total
// instruction count (kept separate because the total only enters the feature
// vector in group-normalized form).
type Sample struct {
	Raw   []float64
	Total float64
}

// perCacheRatios is the number of Eq. (1) ratios per cache level.
const perCacheRatios = 6

// FromStats extracts the raw parameters from simulator statistics.
func FromStats(st *sim.Stats) Sample {
	total := float64(st.Total)
	if total == 0 {
		total = 1
	}
	raw := make([]float64, 0, 3+perCacheRatios*len(st.Caches))
	raw = append(raw,
		float64(st.Loads)/total,
		float64(st.Stores)/total,
		float64(st.Branches)/total,
	)
	for _, lv := range st.Caches {
		s := lv.Stats
		raw = append(raw,
			ratio(s.ReadHits(), s.ReadAccesses()),
			ratio(s.ReadMisses(), s.ReadAccesses()),
			ratio(s.ReadRepl(), s.ReadAccesses()),
			ratio(s.WriteHits(), s.WriteAccesses()),
			ratio(s.WriteMisses(), s.WriteAccesses()),
			ratio(s.WriteRepl(), s.WriteAccesses()),
		)
	}
	return Sample{Raw: raw, Total: float64(st.Total)}
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Names returns human-readable feature names for the final vector produced
// by a normalizer over stats with the given cache level names.
func Names(cacheLevels []string) []string {
	raw := []string{"load_frac", "store_frac", "branch_frac"}
	for _, lv := range cacheLevels {
		for _, r := range []string{"rd_hit", "rd_miss", "rd_repl", "wr_hit", "wr_miss", "wr_repl"} {
			raw = append(raw, fmt.Sprintf("%s_%s", lv, r))
		}
	}
	out := append([]string{}, raw...)
	for _, n := range raw {
		out = append(out, n+"_norm")
	}
	out = append(out, "total_instr_norm")
	return out
}

// Normalizer provides group means for Eq. (2). Implementations differ in how
// the means are obtained (oracle, static window, dynamic window).
type Normalizer interface {
	// Observe feeds one sample into the mean estimate (no-op for oracle).
	Observe(s Sample)
	// Vector builds the full feature vector: raw ++ normalized ++ total_norm.
	Vector(s Sample) []float64
	// Ready reports whether the normalizer has enough data to normalize.
	Ready() bool
	// Name identifies the strategy (for ablation reports).
	Name() string
}

// vectorWith builds the feature vector given group means.
func vectorWith(s Sample, meanRaw []float64, meanTotal float64) []float64 {
	out := make([]float64, 0, 2*len(s.Raw)+1)
	out = append(out, s.Raw...)
	for i, v := range s.Raw {
		out = append(out, normEq2(v, meanRaw[i]))
	}
	out = append(out, normEq2(s.Total, meanTotal))
	return out
}

// normEq2 is Eq. (2): (P − mean)/mean, 0 when the mean vanishes.
func normEq2(v, mean float64) float64 {
	if mean == 0 {
		return 0
	}
	return (v - mean) / mean
}

// NormalizeTarget applies the paper's output normalization: run times
// normalized to the group mean (same form as Eq. 2).
func NormalizeTarget(t, meanT float64) float64 { return normEq2(t, meanT) }

// meanAccum incrementally tracks per-feature means.
type meanAccum struct {
	sumRaw   []float64
	sumTotal float64
	n        int
}

func (m *meanAccum) add(s Sample) {
	if m.sumRaw == nil {
		m.sumRaw = make([]float64, len(s.Raw))
	}
	for i, v := range s.Raw {
		m.sumRaw[i] += v
	}
	m.sumTotal += s.Total
	m.n++
}

func (m *meanAccum) means() ([]float64, float64) {
	if m.n == 0 {
		return nil, 0
	}
	mr := make([]float64, len(m.sumRaw))
	for i, v := range m.sumRaw {
		mr[i] = v / float64(m.n)
	}
	return mr, m.sumTotal / float64(m.n)
}

// Oracle normalizes with exact group means computed from a full sample set
// (the training-phase setting, where all implementations are known).
type Oracle struct {
	meanRaw   []float64
	meanTotal float64
}

// NewOracle computes exact means over the given samples.
func NewOracle(samples []Sample) *Oracle {
	acc := meanAccum{}
	for _, s := range samples {
		acc.add(s)
	}
	mr, mt := acc.means()
	return &Oracle{meanRaw: mr, meanTotal: mt}
}

// Observe is a no-op: oracle means are fixed.
func (o *Oracle) Observe(Sample) {}

// Vector implements Normalizer.
func (o *Oracle) Vector(s Sample) []float64 { return vectorWith(s, o.meanRaw, o.meanTotal) }

// Ready implements Normalizer.
func (o *Oracle) Ready() bool { return o.meanRaw != nil }

// Name implements Normalizer.
func (o *Oracle) Name() string { return "oracle" }

// StaticWindow estimates group means from the first W observed samples and
// freezes them afterwards (§III-E "static window").
type StaticWindow struct {
	W   int
	acc meanAccum
}

// NewStaticWindow creates a static-window normalizer of width w.
func NewStaticWindow(w int) *StaticWindow { return &StaticWindow{W: w} }

// Observe adds a sample while fewer than W have been seen.
func (sw *StaticWindow) Observe(s Sample) {
	if sw.acc.n < sw.W {
		sw.acc.add(s)
	}
}

// Vector implements Normalizer using the frozen (or growing) window means.
func (sw *StaticWindow) Vector(s Sample) []float64 {
	mr, mt := sw.acc.means()
	if mr == nil {
		mr = make([]float64, len(s.Raw))
	}
	return vectorWith(s, mr, mt)
}

// Ready implements Normalizer.
func (sw *StaticWindow) Ready() bool { return sw.acc.n >= sw.W }

// Name implements Normalizer.
func (sw *StaticWindow) Name() string { return fmt.Sprintf("static_w%d", sw.W) }

// DynamicWindow keeps a running mean over every observed sample, adapting
// over time (§III-E "dynamic window").
type DynamicWindow struct {
	acc meanAccum
}

// NewDynamicWindow creates a dynamic-window normalizer.
func NewDynamicWindow() *DynamicWindow { return &DynamicWindow{} }

// Observe adds a sample to the running mean.
func (dw *DynamicWindow) Observe(s Sample) { dw.acc.add(s) }

// Vector implements Normalizer with the current running means.
func (dw *DynamicWindow) Vector(s Sample) []float64 {
	mr, mt := dw.acc.means()
	if mr == nil {
		mr = make([]float64, len(s.Raw))
	}
	return vectorWith(s, mr, mt)
}

// Ready implements Normalizer.
func (dw *DynamicWindow) Ready() bool { return dw.acc.n > 0 }

// Name implements Normalizer.
func (dw *DynamicWindow) Name() string { return "dynamic" }

// Dim returns the final feature-vector length for a raw parameter count.
func Dim(rawLen int) int { return 2*rawLen + 1 }
