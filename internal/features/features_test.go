package features

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/sim"
)

func fakeStats() *sim.Stats {
	st := &sim.Stats{Arch: isa.X86}
	st.Instr[isa.Load] = 40
	st.Instr[isa.VLoad] = 10
	st.Instr[isa.Store] = 10
	st.Instr[isa.FMA] = 30
	st.Instr[isa.Branch] = 10
	st.Total = 100
	st.Loads = 50
	st.Stores = 10
	st.Branches = 10
	st.Caches = []sim.LevelStats{
		{Name: "L1D", Stats: cache.Stats{
			// reads: 100 accesses = 90 hits + 10 misses, 5 replacements;
			// writes: 50 accesses = 40 hits + 10 misses, 2 replacements.
			Hits:   [2]uint64{cache.KindRead: 90, cache.KindWrite: 40},
			Misses: [2]uint64{cache.KindRead: 10, cache.KindWrite: 10},
			Repl:   [2]uint64{cache.KindRead: 5, cache.KindWrite: 2},
		}},
		{Name: "L2", Stats: cache.Stats{
			Hits:   [2]uint64{cache.KindRead: 8},
			Misses: [2]uint64{cache.KindRead: 2},
		}},
	}
	return st
}

func TestFromStatsRatios(t *testing.T) {
	s := FromStats(fakeStats())
	if len(s.Raw) != 3+2*perCacheRatios {
		t.Fatalf("raw len = %d", len(s.Raw))
	}
	if s.Raw[0] != 0.5 || s.Raw[1] != 0.1 || s.Raw[2] != 0.1 {
		t.Fatalf("instr mix = %v", s.Raw[:3])
	}
	// L1D read hit ratio (Eq. 1): 90/100.
	if s.Raw[3] != 0.9 {
		t.Fatalf("L1D rd_hit = %v", s.Raw[3])
	}
	// L1D write miss ratio: 10/50.
	if s.Raw[7] != 0.2 {
		t.Fatalf("L1D wr_miss = %v", s.Raw[7])
	}
	// L2 has no writes: write ratios must be 0, not NaN.
	for i := 12; i < 15; i++ {
		_ = i
	}
	if s.Raw[12] != 0 && s.Raw[13] != 0 {
		t.Fatalf("L2 write ratios should be 0: %v", s.Raw[9:])
	}
	if s.Total != 100 {
		t.Fatalf("total = %v", s.Total)
	}
}

func TestFromStatsZeroTotal(t *testing.T) {
	st := &sim.Stats{}
	s := FromStats(st)
	for _, v := range s.Raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("zero-instruction stats must not produce NaN")
		}
	}
}

func TestNormEq2(t *testing.T) {
	if normEq2(12, 10) != 0.2 {
		t.Fatalf("eq2 = %v", normEq2(12, 10))
	}
	if normEq2(5, 0) != 0 {
		t.Fatal("zero mean must give 0")
	}
	if NormalizeTarget(8, 10) != -0.2 {
		t.Fatalf("target norm = %v", NormalizeTarget(8, 10))
	}
}

func TestOracleVector(t *testing.T) {
	a := Sample{Raw: []float64{1, 2}, Total: 100}
	b := Sample{Raw: []float64{3, 2}, Total: 300}
	o := NewOracle([]Sample{a, b})
	if !o.Ready() {
		t.Fatal("oracle with samples must be ready")
	}
	v := o.Vector(a)
	if len(v) != Dim(2) {
		t.Fatalf("vector len = %d want %d", len(v), Dim(2))
	}
	// raw part passes through
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("raw part = %v", v[:2])
	}
	// normalized: (1-2)/2 = -0.5 ; (2-2)/2 = 0
	if v[2] != -0.5 || v[3] != 0 {
		t.Fatalf("norm part = %v", v[2:4])
	}
	// total: (100-200)/200 = -0.5
	if v[4] != -0.5 {
		t.Fatalf("total norm = %v", v[4])
	}
}

func TestStaticWindowFreezes(t *testing.T) {
	sw := NewStaticWindow(2)
	if sw.Ready() {
		t.Fatal("empty static window must not be ready")
	}
	sw.Observe(Sample{Raw: []float64{1}, Total: 10})
	sw.Observe(Sample{Raw: []float64{3}, Total: 30})
	if !sw.Ready() {
		t.Fatal("static window must be ready at w samples")
	}
	// Further observations must be ignored.
	sw.Observe(Sample{Raw: []float64{100}, Total: 1000})
	v := sw.Vector(Sample{Raw: []float64{2}, Total: 20})
	// mean stays 2 → norm = 0; total mean stays 20 → 0.
	if v[1] != 0 || v[2] != 0 {
		t.Fatalf("static window drifted: %v", v)
	}
	if sw.Name() != "static_w2" {
		t.Fatalf("name = %s", sw.Name())
	}
}

func TestDynamicWindowAdapts(t *testing.T) {
	dw := NewDynamicWindow()
	dw.Observe(Sample{Raw: []float64{1}, Total: 10})
	v1 := dw.Vector(Sample{Raw: []float64{1}, Total: 10})
	if v1[1] != 0 {
		t.Fatalf("first norm = %v", v1[1])
	}
	dw.Observe(Sample{Raw: []float64{3}, Total: 30})
	v2 := dw.Vector(Sample{Raw: []float64{2}, Total: 20})
	// mean now 2 → norm 0; before second Observe the mean was 1.
	if v2[1] != 0 {
		t.Fatalf("dynamic mean wrong: %v", v2)
	}
	if dw.Name() != "dynamic" {
		t.Fatalf("name = %s", dw.Name())
	}
}

func TestWindowConvergesToOracle(t *testing.T) {
	// With enough observations the dynamic window must match oracle means.
	samples := make([]Sample, 100)
	for i := range samples {
		samples[i] = Sample{Raw: []float64{float64(i % 10)}, Total: float64(100 + i%7)}
	}
	o := NewOracle(samples)
	dw := NewDynamicWindow()
	for _, s := range samples {
		dw.Observe(s)
	}
	probe := Sample{Raw: []float64{5}, Total: 100}
	vo := o.Vector(probe)
	vd := dw.Vector(probe)
	for i := range vo {
		if math.Abs(vo[i]-vd[i]) > 1e-12 {
			t.Fatalf("dynamic window diverges from oracle at %d: %v vs %v", i, vd[i], vo[i])
		}
	}
}

func TestUnreadyNormalizersProduceFiniteVectors(t *testing.T) {
	s := Sample{Raw: []float64{1, 2}, Total: 5}
	for _, n := range []Normalizer{NewStaticWindow(4), NewDynamicWindow()} {
		v := n.Vector(s)
		if len(v) != Dim(2) {
			t.Fatalf("%s: len %d", n.Name(), len(v))
		}
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s: non-finite feature", n.Name())
			}
		}
	}
}

func TestNames(t *testing.T) {
	names := Names([]string{"L1D", "L1I", "L2", "L3"})
	wantRaw := 3 + 4*perCacheRatios
	if len(names) != Dim(wantRaw) {
		t.Fatalf("names = %d want %d", len(names), Dim(wantRaw))
	}
	if names[0] != "load_frac" || names[len(names)-1] != "total_instr_norm" {
		t.Fatalf("name order wrong: %v ... %v", names[0], names[len(names)-1])
	}
	if names[3] != "L1D_rd_hit" {
		t.Fatalf("cache names wrong: %v", names[3])
	}
}

func TestDim(t *testing.T) {
	if Dim(27) != 55 || Dim(21) != 43 {
		t.Fatal("feature dims wrong")
	}
}
