package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/num"
	"repro/internal/predictor/xgb"
	"repro/internal/sim"
)

// Generalize implements the paper's future-work direction (§V): train a
// predictor on a broader range of CPUs and apply it to a previously untested
// CPU. For each target architecture, an XGBoost predictor is trained only on
// the other two architectures' corpora — using architecture-agnostic
// features (instruction mix plus L1D/L1I/L2 ratios, all CPUs share those
// levels, augmented with SIMD width and clock as machine descriptors) — and
// evaluated on the held-out architecture without ever seeing its native run
// times. The same-architecture predictor on identical features is the
// reference point.

// GeneralizeRow is one (target, training-mode) outcome: median metrics over
// the target's groups.
type GeneralizeRow struct {
	Target   isa.Arch
	Mode     string // "same-arch" or "cross-arch"
	Rtop1    float64
	Etop1    float64
	Spearman float64
}

// commonRawLen covers the instruction mix (3) and L1D/L1I/L2 ratios (18),
// present on every Table I CPU.
const commonRawLen = 3 + 3*6

// archSample converts stats to the architecture-agnostic feature sample.
func archSample(st *sim.Stats, prof hw.Profile) features.Sample {
	s := features.FromStats(st)
	raw := append([]float64{}, s.Raw[:commonRawLen]...)
	model := isa.Lookup(prof.Arch)
	raw = append(raw, float64(model.Lanes), prof.FreqGHz, float64(model.FPRegs))
	return features.Sample{Raw: raw, Total: s.Total}
}

// archGroupData builds (vectors, targets, per-group test vectors/times) for
// one architecture with per-group oracle normalization over the common
// features.
type archGroup struct {
	trainX [][]float64
	trainY []float64
	testX  [][]float64
	testT  []float64
}

func buildArchGroups(ds *core.Dataset, prof hw.Profile, split core.SplitIndices) map[int]*archGroup {
	out := map[int]*archGroup{}
	for gi := range ds.Groups {
		g := &ds.Groups[gi]
		trainIdx := split.Train[g.Group]
		samples := make([]features.Sample, 0, len(trainIdx))
		times := make([]float64, 0, len(trainIdx))
		for _, i := range trainIdx {
			samples = append(samples, archSample(g.Impls[i].Stats, prof))
			times = append(times, g.Impls[i].TrefSec)
		}
		norm := features.NewOracle(samples)
		meanT := num.Mean(times)
		ag := &archGroup{}
		for k, i := range trainIdx {
			ag.trainX = append(ag.trainX, norm.Vector(samples[k]))
			ag.trainY = append(ag.trainY, features.NormalizeTarget(g.Impls[i].TrefSec, meanT))
		}
		for _, i := range split.Test[g.Group] {
			s := archSample(g.Impls[i].Stats, prof)
			ag.testX = append(ag.testX, norm.Vector(s))
			ag.testT = append(ag.testT, g.Impls[i].TrefSec)
		}
		out[g.Group] = ag
	}
	return out
}

// Generalize runs the cross-CPU study and renders a comparison table.
func Generalize(cfg Config, w io.Writer) ([]GeneralizeRow, error) {
	rng := num.NewRNG(cfg.Seed + 4000)
	// Pre-build per-arch group data.
	perArch := map[isa.Arch]map[int]*archGroup{}
	for _, arch := range isa.Archs() {
		ds, err := cfg.Dataset(arch)
		if err != nil {
			return nil, err
		}
		split := ds.Split(rng.Split(), cfg.TestPerGroup)
		perArch[arch] = buildArchGroups(ds, hw.Lookup(arch), split)
	}
	var rows []GeneralizeRow
	for _, target := range isa.Archs() {
		for _, mode := range []string{"same-arch", "cross-arch"} {
			var x [][]float64
			var y []float64
			for arch, groups := range perArch {
				include := (mode == "same-arch" && arch == target) ||
					(mode == "cross-arch" && arch != target)
				if !include {
					continue
				}
				for _, ag := range groups {
					x = append(x, ag.trainX...)
					y = append(y, ag.trainY...)
				}
			}
			pred := xgb.New(xgb.DefaultConfig(), rng.Split())
			if err := pred.Fit(x, y); err != nil {
				return nil, fmt.Errorf("experiments: generalize %s/%s: %w", target, mode, err)
			}
			var agg []metrics.Result
			for _, ag := range perArch[target] {
				scores := pred.PredictBatch(ag.testX)
				agg = append(agg, metrics.Evaluate(ag.testT, scores))
			}
			med := metrics.MedianOf(agg)
			rows = append(rows, GeneralizeRow{
				Target: target, Mode: mode,
				Rtop1: med.Rtop1, Etop1: med.Etop1, Spearman: med.Spearman,
			})
		}
	}
	if w != nil {
		line(w, "Extension (§V future work): generalized predictors for untested CPUs")
		line(w, "(cross-arch = trained ONLY on the other two architectures' boards)")
		var trows [][]string
		for _, r := range rows {
			trows = append(trows, []string{string(r.Target), r.Mode,
				fmt.Sprintf("%.1f", r.Etop1), fmt.Sprintf("%.1f", r.Rtop1),
				fmt.Sprintf("%.3f", r.Spearman)})
		}
		renderTable(w, []string{"target", "training", "Etop1%", "Rtop1%", "Spearman"}, trows)
	}
	return rows, nil
}
