package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/num"
	"repro/internal/predictor"
	"repro/internal/predictor/registry"
)

// PredictionTable holds the Tables III–V payload for one architecture:
// per-predictor, per-group median metrics over the random re-splits.
type PredictionTable struct {
	Arch    isa.Arch
	Results map[string]map[int]metrics.Result // predictor → group → metrics
	Groups  []int
}

// PredictionResults reproduces one of Tables III–V: every predictor is
// trained Splits times on random train/test splits (all groups included, as
// in §IV-C) and per-group median metrics are reported.
func PredictionResults(cfg Config, arch isa.Arch) (*PredictionTable, error) {
	ds, err := cfg.Dataset(arch)
	if err != nil {
		return nil, err
	}
	groups := make([]int, 0, len(ds.Groups))
	for _, g := range ds.Groups {
		groups = append(groups, g.Group)
	}
	sort.Ints(groups)
	out := &PredictionTable{Arch: arch, Results: map[string]map[int]metrics.Result{}, Groups: groups}
	rng := num.NewRNG(cfg.Seed + 100)
	for _, name := range registry.Names() {
		predName := name
		predRng := rng.Split()
		res, err := core.MedianPredictionEval(ds, func() predictor.Predictor {
			return registry.MustNew(predName, predRng.Split())
		}, groups, cfg.TestPerGroup, cfg.Splits, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", arch, name, err)
		}
		out.Results[name] = res
	}
	return out, nil
}

// Render prints the table in the paper's layout: one row per group, four
// metric columns per predictor.
func (t *PredictionTable) Render(w io.Writer) {
	line(w, "Prediction results for %s-based CPU (median over splits)", t.Arch)
	headers := []string{"ID"}
	for _, name := range registry.Names() {
		headers = append(headers,
			name+" Etop1%", name+" Qlow%", name+" Qhigh%", name+" Rtop1%")
	}
	var rows [][]string
	for _, g := range t.Groups {
		row := []string{fmt.Sprintf("%d", g)}
		for _, name := range registry.Names() {
			r := t.Results[name][g]
			row = append(row,
				fmt.Sprintf("%.1f", r.Etop1),
				fmt.Sprintf("%.1f", r.Qlow),
				fmt.Sprintf("%.1f", r.Qhigh),
				fmt.Sprintf("%.1f", r.Rtop1),
			)
		}
		rows = append(rows, row)
	}
	renderTable(w, headers, rows)
}

// Summary aggregates a metric across groups for one predictor.
func (t *PredictionTable) Summary(predName string, pick func(metrics.Result) float64) (mean, worst float64) {
	n := 0
	for _, g := range t.Groups {
		v := pick(t.Results[predName][g])
		mean += v
		if v > worst {
			worst = v
		}
		n++
	}
	if n > 0 {
		mean /= float64(n)
	}
	return mean, worst
}

// TableIII runs the x86 prediction table.
func TableIII(cfg Config, w io.Writer) (*PredictionTable, error) {
	t, err := PredictionResults(cfg, isa.X86)
	if err != nil {
		return nil, err
	}
	line(w, "Table III:")
	t.Render(w)
	return t, nil
}

// TableIV runs the ARM prediction table.
func TableIV(cfg Config, w io.Writer) (*PredictionTable, error) {
	t, err := PredictionResults(cfg, isa.ARM)
	if err != nil {
		return nil, err
	}
	line(w, "Table IV:")
	t.Render(w)
	return t, nil
}

// TableV runs the RISC-V prediction table.
func TableV(cfg Config, w io.Writer) (*PredictionTable, error) {
	t, err := PredictionResults(cfg, isa.RISCV)
	if err != nil {
		return nil, err
	}
	line(w, "Table V:")
	t.Render(w)
	return t, nil
}
