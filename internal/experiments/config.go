// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV): Table I (cache hierarchies), Table II (kernel shapes),
// Tables III-V (predictor comparison per architecture), Fig. 5 (sorted
// run-time predictions with/without the evaluated group in training), the
// Eq. (4) parallel-simulator break-even analysis, and the DESIGN.md
// ablations. Output is aligned text plus optional CSV.
package experiments

import (
	"io"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/te"
)

// Config scales an experiment run.
type Config struct {
	// Scale selects workload sizing (tiny/small/paper).
	Scale te.Scale
	// ImplsPerGroup is the auto-scheduler budget per group (paper: 500).
	ImplsPerGroup int
	// TestPerGroup is the held-out count per group (paper: 100).
	TestPerGroup int
	// Splits is the number of random train/test re-splits (paper: 10).
	Splits int
	// BatchSize is the auto-scheduler measurement batch.
	BatchSize int
	// NParallel simulator instances run concurrently.
	NParallel int
	// Seed drives all randomness.
	Seed uint64
	// CacheDir persists generated datasets between runs ("" = no disk
	// cache).
	CacheDir string
}

// DefaultConfig is the small-scale setup used by the benchmark harness and
// EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Scale:         te.ScaleSmall,
		ImplsPerGroup: 80,
		TestPerGroup:  20,
		Splits:        5,
		BatchSize:     16,
		NParallel:     4,
		Seed:          2025,
	}
}

// TinyConfig is the unit-test setup.
func TinyConfig() Config {
	return Config{
		Scale:         te.ScaleTiny,
		ImplsPerGroup: 24,
		TestPerGroup:  6,
		Splits:        2,
		BatchSize:     8,
		NParallel:     2,
		Seed:          7,
	}
}

// PaperConfig is the full-fidelity setup (hours of CPU time on one core).
func PaperConfig() Config {
	return Config{
		Scale:         te.ScalePaper,
		ImplsPerGroup: 500,
		TestPerGroup:  100,
		Splits:        10,
		BatchSize:     64,
		NParallel:     16,
		Seed:          2025,
	}
}

// datasetConfig maps an experiment config to a dataset config for one arch.
func (c Config) datasetConfig(arch isa.Arch) core.DatasetConfig {
	opt := hw.DefaultMeasureOptions()
	if c.Scale == te.ScaleTiny {
		opt = hw.MeasureOptions{Nexe: 5, CooldownSec: 0.1}
	}
	return core.DatasetConfig{
		Arch: arch, Scale: c.Scale,
		Groups:        []int{0, 1, 2, 3, 4},
		ImplsPerGroup: c.ImplsPerGroup,
		BatchSize:     c.BatchSize,
		NParallel:     c.NParallel,
		MeasureOpt:    opt,
		Seed:          c.Seed,
	}
}

// Dataset returns the (cached) corpus for one architecture.
func (c Config) Dataset(arch isa.Arch) (*core.Dataset, error) {
	return core.CachedDataset(c.datasetConfig(arch), c.CacheDir)
}

// line writes a line to w, ignoring write errors (best-effort reporting).
func line(w io.Writer, format string, args ...interface{}) {
	fprintf(w, format+"\n", args...)
}
