package experiments

import (
	"fmt"
	"io"

	"repro/internal/ansor"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/num"
	"repro/internal/te"
)

// SpeedupRow is the Eq. (4) analysis for one (architecture, group) pair: the
// number K of parallel simulator instances needed to beat sequential native
// measurement, over representative candidate implementations.
type SpeedupRow struct {
	Arch    isa.Arch
	Group   int
	KMin    int
	KMax    int
	TrefMin float64
	TrefMax float64
	TsimMin float64
	TsimMax float64
}

// SpeedupSummary aggregates K over groups per architecture: the paper
// reports K_x86 ∈ [7,97], K_ARM ∈ [4,31], K_RISC-V ∈ [3,21].
type SpeedupSummary struct {
	Arch isa.Arch
	KMin int
	KMax int
}

// Speedup reproduces the §IV Eq. (4) analysis. Reference times and
// instruction counts are taken at paper scale: candidate schedules are
// random auto-scheduler sketches of the paper-shaped kernels; instruction
// counts come from the closed-form estimate; reference times extrapolate the
// measured per-instruction rate of the dataset (per architecture and group);
// simulator time uses the modelled gem5-class simulation rate.
func Speedup(cfg Config, w io.Writer) ([]SpeedupRow, []SpeedupSummary, error) {
	opt := hw.DefaultMeasureOptions()
	var rows []SpeedupRow
	var sums []SpeedupSummary
	candPerGroup := 12
	if cfg.Scale == te.ScaleTiny {
		candPerGroup = 4
	}
	rng := num.NewRNG(cfg.Seed + 900)
	for _, prof := range hw.Profiles() {
		ds, err := cfg.Dataset(prof.Arch)
		if err != nil {
			return nil, nil, err
		}
		archK := SpeedupSummary{Arch: prof.Arch, KMin: 1 << 30}
		for _, gd := range ds.Groups {
			group := gd.Group
			// Per-instruction native rate measured on this group's dataset.
			var rates []float64
			for _, impl := range gd.Impls {
				if impl.Stats.Total > 0 {
					rates = append(rates, impl.TrefSec/float64(impl.Stats.Total))
				}
			}
			rate := num.Median(rates)
			// Representative paper-scale candidates.
			factory := func() *te.Workload { return te.ConvGroup(te.ScalePaper, group) }
			sketches, err := ansor.RandomSketches(factory, candPerGroup, rng.Split())
			if err != nil {
				return nil, nil, err
			}
			model := isa.Lookup(prof.Arch)
			row := SpeedupRow{Arch: prof.Arch, Group: group, KMin: 1 << 30}
			for _, s := range sketches {
				prog, err := lower.Build(s, model)
				if err != nil {
					continue
				}
				instr := prog.StaticInstrEstimate()
				tsim := hw.SimSeconds(instr, prof)
				tref := rate * float64(instr)
				k := hw.ParallelSimulators(tsim, tref, opt)
				if k < row.KMin {
					row.KMin, row.TrefMin, row.TsimMin = k, tref, tsim
				}
				if k > row.KMax {
					row.KMax, row.TrefMax, row.TsimMax = k, tref, tsim
				}
			}
			if row.KMin > row.KMax {
				continue
			}
			rows = append(rows, row)
			if row.KMin < archK.KMin {
				archK.KMin = row.KMin
			}
			if row.KMax > archK.KMax {
				archK.KMax = row.KMax
			}
		}
		sums = append(sums, archK)
	}
	if w != nil {
		line(w, "Eq. (4): parallel simulators K needed to beat native measurement")
		line(w, "(N_exe=%d, t_cooldown=%.1fs, paper-scale kernels)", opt.Nexe, opt.CooldownSec)
		headers := []string{"arch", "group", "K min", "K max", "tref[s] min", "tsim[s] min"}
		var trows [][]string
		for _, r := range rows {
			trows = append(trows, []string{
				string(r.Arch), fmt.Sprintf("%d", r.Group),
				fmt.Sprintf("%d", r.KMin), fmt.Sprintf("%d", r.KMax),
				fmt.Sprintf("%.3f", r.TrefMin), fmt.Sprintf("%.1f", r.TsimMin),
			})
		}
		renderTable(w, headers, trows)
		for _, s := range sums {
			line(w, "K_%s ∈ [%d, %d]   (paper: x86 [7,97], ARM [4,31], RISC-V [3,21])",
				s.Arch, s.KMin, s.KMax)
		}
	}
	return rows, sums, nil
}
