package experiments

import (
	"fmt"
	"io"
	"strings"
)

// fprintf is fmt.Fprintf with the error discarded (reports are best-effort).
func fprintf(w io.Writer, format string, args ...interface{}) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// renderTable writes an aligned text table.
func renderTable(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	renderRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	renderRow(headers)
	fprintf(w, "|-%s-|\n", strings.Join(sep, "-|-"))
	for _, row := range rows {
		renderRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// asciiPlot renders two aligned series (reference vs predicted) as a crude
// terminal chart, the stand-in for the Fig. 5 panels.
func asciiPlot(w io.Writer, title string, ref, pred []float64) {
	const width, height = 72, 16
	fprintf(w, "%s\n", title)
	if len(ref) == 0 {
		fprintf(w, "(empty series)\n")
		return
	}
	lo, hi := ref[0], ref[0]
	for _, v := range append(append([]float64{}, ref...), pred...) {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	place := func(series []float64, mark byte) {
		for i, v := range series {
			x := i * (width - 1) / max(1, len(series)-1)
			y := int(float64(height-1) * (v - lo) / (hi - lo))
			row := height - 1 - y
			if grid[row][x] == ' ' || grid[row][x] == mark {
				grid[row][x] = mark
			} else {
				grid[row][x] = '#' // overlap
			}
		}
	}
	place(ref, '.')
	place(pred, '+')
	for _, row := range grid {
		fprintf(w, "  %s\n", string(row))
	}
	fprintf(w, "  [.] t_ref (sorted)   [+] t_pred   [#] overlap   range %.3g..%.3g s\n", lo, hi)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writeCSV dumps aligned columns as CSV.
func writeCSV(w io.Writer, headers []string, cols [][]float64) {
	fprintf(w, "%s\n", strings.Join(headers, ","))
	n := 0
	for _, c := range cols {
		if len(c) > n {
			n = len(c)
		}
	}
	for i := 0; i < n; i++ {
		cells := make([]string, len(cols))
		for j, c := range cols {
			if i < len(c) {
				cells[j] = fmt.Sprintf("%g", c[i])
			}
		}
		fprintf(w, "%s\n", strings.Join(cells, ","))
	}
}
