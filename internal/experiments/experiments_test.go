package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/te"
)

func TestTableI(t *testing.T) {
	var buf bytes.Buffer
	TableI(&buf)
	out := buf.String()
	for _, want := range []string{"x86", "arm", "riscv", "L1D", "L3", "32768"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
	// ARM/RISC-V must show no L3.
	if strings.Count(out, "| -") == 0 {
		t.Fatalf("missing L3 dashes for embedded CPUs:\n%s", out)
	}
}

func TestTableII(t *testing.T) {
	var buf bytes.Buffer
	TableII(&buf, te.ScaleTiny)
	out := buf.String()
	if !strings.Contains(out, "group") || !strings.Contains(out, "MACs") {
		t.Fatalf("Table II malformed:\n%s", out)
	}
	// Paper reference block must include the ResNet stem shape.
	if !strings.Contains(out, "224") {
		t.Fatalf("Table II must show paper shapes:\n%s", out)
	}
}

func TestPredictionResultsTiny(t *testing.T) {
	cfg := TinyConfig()
	tab, err := PredictionResults(cfg, isa.RISCV)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Groups) != 5 {
		t.Fatalf("groups = %d", len(tab.Groups))
	}
	if len(tab.Results) != 4 {
		t.Fatalf("predictors = %d", len(tab.Results))
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "XGBoost") {
		t.Fatalf("render missing predictors:\n%s", buf.String())
	}
	mean, worst := tab.Summary("LinReg", func(r metrics.Result) float64 { return r.Rtop1 })
	if mean <= 0 || worst < mean {
		t.Fatalf("summary wrong: mean=%v worst=%v", mean, worst)
	}
}

func TestFig5Tiny(t *testing.T) {
	cfg := TinyConfig()
	var buf, csv bytes.Buffer
	panels, err := Fig5(cfg, 2, &buf, &csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 { // 3 archs × {included, excluded}
		t.Fatalf("panels = %d want 6", len(panels))
	}
	for _, p := range panels {
		if len(p.RefSorted) != len(p.PredOrder) || len(p.RefSorted) == 0 {
			t.Fatalf("panel series mismatch: %d vs %d", len(p.RefSorted), len(p.PredOrder))
		}
		// RefSorted must be ascending.
		for i := 1; i < len(p.RefSorted); i++ {
			if p.RefSorted[i] < p.RefSorted[i-1] {
				t.Fatal("RefSorted not sorted")
			}
		}
	}
	if !strings.Contains(buf.String(), "t_ref") {
		t.Fatal("plot legend missing")
	}
	if !strings.Contains(csv.String(), "tref_x86_incltrue") {
		t.Fatalf("csv headers missing:\n%s", csv.String()[:120])
	}
}

func TestSpeedupTiny(t *testing.T) {
	cfg := TinyConfig()
	var buf bytes.Buffer
	rows, sums, err := Speedup(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if len(rows) == 0 {
		t.Fatal("no speedup rows")
	}
	for _, s := range sums {
		if s.KMin < 1 || s.KMax < s.KMin {
			t.Fatalf("bad K range: %+v", s)
		}
	}
	if !strings.Contains(buf.String(), "K_x86") {
		t.Fatal("summary lines missing")
	}
}

func TestWindowAblationTiny(t *testing.T) {
	cfg := TinyConfig()
	var buf bytes.Buffer
	rows, err := WindowAblation(cfg, isa.RISCV, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("window rows = %d", len(rows))
	}
	names := rows[0].Window + rows[1].Window + rows[2].Window
	if !strings.Contains(names, "oracle") || !strings.Contains(names, "dynamic") {
		t.Fatalf("window names wrong: %v", names)
	}
}

func TestFeatureAblationTiny(t *testing.T) {
	cfg := TinyConfig()
	rows, err := FeatureAblation(cfg, isa.RISCV, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("feature rows = %d", len(rows))
	}
}

func TestNoiseAblationTiny(t *testing.T) {
	cfg := TinyConfig()
	rows, err := NoiseAblation(cfg, isa.RISCV, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("noise rows = %d", len(rows))
	}
	// Noiseless references should rank the truth at least as well as 4x
	// noise with a single repetition.
	var clean, noisy float64
	for _, r := range rows {
		if r.NoiseScale == 0 {
			clean = r.Spearman
		}
		if r.NoiseScale == 4 && r.Nexe == 1 {
			noisy = r.Spearman
		}
	}
	if clean < noisy-0.15 {
		t.Fatalf("noise ablation implausible: clean %.3f vs noisy %.3f", clean, noisy)
	}
}

func TestTrainSizeAblationTiny(t *testing.T) {
	cfg := TinyConfig()
	rows, err := TrainSizeAblation(cfg, isa.RISCV, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("train-size rows = %d", len(rows))
	}
	if rows[len(rows)-1].PerGroup <= rows[0].PerGroup {
		t.Fatal("sizes not increasing")
	}
}

func TestTunerComparisonTiny(t *testing.T) {
	cfg := TinyConfig()
	var buf bytes.Buffer
	rows, err := TunerComparison(cfg, isa.RISCV, 1, 24, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("tuner rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BestTref <= 0 {
			t.Fatalf("tuner %s found nothing", r.Tuner)
		}
	}
}

func TestRenderHelpers(t *testing.T) {
	var buf bytes.Buffer
	renderTable(&buf, []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := buf.String()
	if !strings.Contains(out, "333") || !strings.Contains(out, "|") {
		t.Fatalf("table render broken:\n%s", out)
	}
	buf.Reset()
	asciiPlot(&buf, "t", []float64{1, 2, 3}, []float64{1, 3, 2})
	if !strings.Contains(buf.String(), "t_ref") {
		t.Fatal("plot render broken")
	}
	buf.Reset()
	asciiPlot(&buf, "empty", nil, nil)
	if !strings.Contains(buf.String(), "empty series") {
		t.Fatal("empty plot case broken")
	}
	buf.Reset()
	writeCSV(&buf, []string{"x", "y"}, [][]float64{{1, 2}, {3}})
	if !strings.HasPrefix(buf.String(), "x,y\n1,3\n2,\n") {
		t.Fatalf("csv broken:\n%q", buf.String())
	}
}

func TestGeneralizeTiny(t *testing.T) {
	cfg := TinyConfig()
	var buf bytes.Buffer
	rows, err := Generalize(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 targets × {same, cross}
		t.Fatalf("rows = %d want 6", len(rows))
	}
	modes := map[string]int{}
	for _, r := range rows {
		modes[r.Mode]++
		if r.Spearman < -1 || r.Spearman > 1 {
			t.Fatalf("bad spearman: %+v", r)
		}
	}
	if modes["same-arch"] != 3 || modes["cross-arch"] != 3 {
		t.Fatalf("mode counts: %v", modes)
	}
	if !strings.Contains(buf.String(), "cross-arch") {
		t.Fatal("render missing")
	}
}

func TestTableWrappersTiny(t *testing.T) {
	cfg := TinyConfig()
	cfg.Splits = 1
	var buf bytes.Buffer
	if _, err := TableIII(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := TableIV(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := TableV(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table III", "Table IV", "Table V", "x86", "arm", "riscv"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in rendered tables", want)
		}
	}
}
