package experiments

import (
	"fmt"
	"io"

	"repro/internal/autotvm"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/num"
	"repro/internal/predictor/xgb"
	"repro/internal/runner"
	"repro/internal/te"
)

// WindowAblationRow compares §III-E group-mean approximations on one group.
type WindowAblationRow struct {
	Window string
	Result metrics.Result
}

// WindowAblation trains an XGBoost predictor on all groups and scores one
// group's test set with oracle means, a static window and a dynamic window.
// The paper's claim (§III-E): the window size is typically large enough that
// no accuracy loss was observed.
func WindowAblation(cfg Config, arch isa.Arch, group int, w io.Writer) ([]WindowAblationRow, error) {
	ds, err := cfg.Dataset(arch)
	if err != nil {
		return nil, err
	}
	rng := num.NewRNG(cfg.Seed + 41)
	split := ds.Split(rng.Split(), cfg.TestPerGroup)
	var groups []int
	for _, g := range ds.Groups {
		groups = append(groups, g.Group)
	}
	x, y, norms, err := core.TrainingMatrix(ds, split, groups)
	if err != nil {
		return nil, err
	}
	pred := xgb.New(xgb.DefaultConfig(), rng.Split())
	if err := pred.Fit(x, y); err != nil {
		return nil, err
	}
	staticW := cfg.BatchSize
	normalizers := []features.Normalizer{
		norms[group].Norm,
		features.NewStaticWindow(staticW),
		features.NewDynamicWindow(),
	}
	var rows []WindowAblationRow
	for _, n := range normalizers {
		res, err := core.EvalGroup(ds, split, group, pred, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WindowAblationRow{Window: n.Name(), Result: res})
	}
	if w != nil {
		line(w, "Ablation: window normalization (%s, group %d, XGBoost)", arch, group)
		var trows [][]string
		for _, r := range rows {
			trows = append(trows, []string{r.Window,
				fmt.Sprintf("%.1f", r.Result.Etop1), fmt.Sprintf("%.1f", r.Result.Qlow),
				fmt.Sprintf("%.1f", r.Result.Qhigh), fmt.Sprintf("%.1f", r.Result.Rtop1)})
		}
		renderTable(w, []string{"window", "Etop1%", "Qlow%", "Qhigh%", "Rtop1%"}, trows)
	}
	return rows, nil
}

// FeatureAblationRow compares feature subsets (§III-D: "the most promising
// approach is to use these parameters in both their original form and their
// normalized form").
type FeatureAblationRow struct {
	Features string
	Result   metrics.Result
}

// FeatureAblation retrains with masked feature subsets.
func FeatureAblation(cfg Config, arch isa.Arch, group int, w io.Writer) ([]FeatureAblationRow, error) {
	ds, err := cfg.Dataset(arch)
	if err != nil {
		return nil, err
	}
	rng := num.NewRNG(cfg.Seed + 42)
	split := ds.Split(rng.Split(), cfg.TestPerGroup)
	var groups []int
	for _, g := range ds.Groups {
		groups = append(groups, g.Group)
	}
	x, y, norms, err := core.TrainingMatrix(ds, split, groups)
	if err != nil {
		return nil, err
	}
	rawLen := (len(x[0]) - 1) / 2
	variants := []struct {
		name string
		keep func(col int) bool
	}{
		{"full (raw+norm+total)", func(int) bool { return true }},
		{"raw only", func(c int) bool { return c < rawLen }},
		{"normalized only", func(c int) bool { return c >= rawLen }},
		{"cache ratios only", func(c int) bool { return c >= 3 && c < rawLen }},
		{"instr mix only", func(c int) bool { return c < 3 }},
	}
	var rows []FeatureAblationRow
	for _, v := range variants {
		var cols []int
		for cIdx := 0; cIdx < len(x[0]); cIdx++ {
			if v.keep(cIdx) {
				cols = append(cols, cIdx)
			}
		}
		xm := maskColumns(x, cols)
		pred := xgb.New(xgb.DefaultConfig(), rng.Split())
		if err := pred.Fit(xm, y); err != nil {
			return nil, err
		}
		g, _ := ds.GroupByIndex(group)
		var scores, tref []float64
		for _, i := range split.Test[group] {
			impl := &g.Impls[i]
			s := features.FromStats(impl.Stats)
			vec := norms[group].Norm.Vector(s)
			scores = append(scores, pred.Predict(maskRow(vec, cols)))
			tref = append(tref, impl.TrefSec)
		}
		rows = append(rows, FeatureAblationRow{Features: v.name, Result: metrics.Evaluate(tref, scores)})
	}
	if w != nil {
		line(w, "Ablation: feature sets (%s, group %d, XGBoost)", arch, group)
		var trows [][]string
		for _, r := range rows {
			trows = append(trows, []string{r.Features,
				fmt.Sprintf("%.1f", r.Result.Etop1), fmt.Sprintf("%.1f", r.Result.Rtop1),
				fmt.Sprintf("%.2f", r.Result.Spearman)})
		}
		renderTable(w, []string{"features", "Etop1%", "Rtop1%", "Spearman"}, trows)
	}
	return rows, nil
}

func maskColumns(x [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = maskRow(row, cols)
	}
	return out
}

func maskRow(row []float64, cols []int) []float64 {
	out := make([]float64, len(cols))
	for j, c := range cols {
		out[j] = row[c]
	}
	return out
}

// NoiseAblationRow shows predictor quality versus measurement-noise scale.
type NoiseAblationRow struct {
	NoiseScale float64
	Nexe       int
	Spearman   float64
	Rtop1      float64
}

// NoiseAblation re-samples the reference measurements from the stored
// noiseless run times at different noise scales and N_exe, then retrains —
// quantifying why the paper repeats every measurement 15 times and uses
// medians.
func NoiseAblation(cfg Config, arch isa.Arch, w io.Writer) ([]NoiseAblationRow, error) {
	ds, err := cfg.Dataset(arch)
	if err != nil {
		return nil, err
	}
	prof := hw.Lookup(arch)
	rng := num.NewRNG(cfg.Seed + 43)
	var rows []NoiseAblationRow
	cases := []struct {
		scale float64
		nexe  int
	}{{0, 15}, {1, 15}, {1, 3}, {1, 1}, {4, 15}, {4, 1}}
	for _, cse := range cases {
		// Re-sample reference times.
		noisy := resampleDataset(ds, prof, cse.scale, cse.nexe, rng.Split())
		split := noisy.Split(rng.Split(), cfg.TestPerGroup)
		var groups []int
		for _, g := range noisy.Groups {
			groups = append(groups, g.Group)
		}
		x, y, norms, err := core.TrainingMatrix(noisy, split, groups)
		if err != nil {
			return nil, err
		}
		pred := xgb.New(xgb.DefaultConfig(), rng.Split())
		if err := pred.Fit(x, y); err != nil {
			return nil, err
		}
		// Evaluate ranking against the NOISELESS truth on every group.
		var agg []metrics.Result
		for _, gi := range groups {
			g, _ := noisy.GroupByIndex(gi)
			var scores, truth []float64
			for _, i := range split.Test[gi] {
				impl := &g.Impls[i]
				s := features.FromStats(impl.Stats)
				scores = append(scores, pred.Predict(norms[gi].Norm.Vector(s)))
				truth = append(truth, impl.TrueSec)
			}
			agg = append(agg, metrics.Evaluate(truth, scores))
		}
		med := metrics.MedianOf(agg)
		rows = append(rows, NoiseAblationRow{
			NoiseScale: cse.scale, Nexe: cse.nexe,
			Spearman: med.Spearman, Rtop1: med.Rtop1,
		})
	}
	if w != nil {
		line(w, "Ablation: measurement noise vs predictor quality (%s, XGBoost)", arch)
		var trows [][]string
		for _, r := range rows {
			trows = append(trows, []string{
				fmt.Sprintf("%.1fx", r.NoiseScale), fmt.Sprintf("%d", r.Nexe),
				fmt.Sprintf("%.3f", r.Spearman), fmt.Sprintf("%.1f", r.Rtop1)})
		}
		renderTable(w, []string{"noise", "Nexe", "Spearman(truth)", "Rtop1%"}, trows)
	}
	return rows, nil
}

// resampleDataset redraws t_ref from stored noiseless times with scaled
// noise parameters.
func resampleDataset(ds *core.Dataset, prof hw.Profile, noiseScale float64, nexe int, rng *num.RNG) *core.Dataset {
	scaled := prof
	scaled.Timing.NoiseBase *= noiseScale
	scaled.Timing.NoiseShort *= noiseScale
	scaled.Timing.OutlierProb *= noiseScale
	opt := hw.MeasureOptions{Nexe: nexe, CooldownSec: 1}
	out := &core.Dataset{Arch: ds.Arch, Scale: ds.Scale, Kernel: ds.Kernel}
	for _, g := range ds.Groups {
		ng := core.GroupData{Group: g.Group, WorkloadKey: g.WorkloadKey}
		for _, impl := range g.Impls {
			ni := impl
			if noiseScale == 0 {
				ni.TrefSec = impl.TrueSec
			} else {
				m := hw.SampleMeasurement(impl.TrueSec, 0, scaled, opt, rng.Split())
				ni.TrefSec = m.TrefSec
			}
			ng.Impls = append(ng.Impls, ni)
		}
		out.Groups = append(out.Groups, ng)
	}
	return out
}

// TrainSizeRow shows metrics versus implementations per group.
type TrainSizeRow struct {
	PerGroup int
	Rtop1    float64
	Spearman float64
}

// TrainSizeAblation subsamples the training portion (the paper trains with
// 400 per group; this quantifies the budget sensitivity).
func TrainSizeAblation(cfg Config, arch isa.Arch, w io.Writer) ([]TrainSizeRow, error) {
	ds, err := cfg.Dataset(arch)
	if err != nil {
		return nil, err
	}
	rng := num.NewRNG(cfg.Seed + 44)
	split := ds.Split(rng.Split(), cfg.TestPerGroup)
	var groups []int
	for _, g := range ds.Groups {
		groups = append(groups, g.Group)
	}
	full := len(split.Train[groups[0]])
	sizes := []int{full / 8, full / 4, full / 2, full}
	var rows []TrainSizeRow
	for _, sz := range sizes {
		if sz < 4 {
			continue
		}
		sub := core.SplitIndices{Train: map[int][]int{}, Test: split.Test}
		for _, gi := range groups {
			tr := split.Train[gi]
			if sz < len(tr) {
				sub.Train[gi] = tr[:sz]
			} else {
				sub.Train[gi] = tr
			}
		}
		x, y, norms, err := core.TrainingMatrix(ds, sub, groups)
		if err != nil {
			return nil, err
		}
		pred := xgb.New(xgb.DefaultConfig(), rng.Split())
		if err := pred.Fit(x, y); err != nil {
			return nil, err
		}
		var agg []metrics.Result
		for _, gi := range groups {
			res, err := core.EvalGroup(ds, sub, gi, pred, norms[gi].Norm)
			if err != nil {
				return nil, err
			}
			agg = append(agg, res)
		}
		med := metrics.MedianOf(agg)
		rows = append(rows, TrainSizeRow{PerGroup: sz, Rtop1: med.Rtop1, Spearman: med.Spearman})
	}
	if w != nil {
		line(w, "Ablation: training set size (%s, XGBoost)", arch)
		var trows [][]string
		for _, r := range rows {
			trows = append(trows, []string{fmt.Sprintf("%d", r.PerGroup),
				fmt.Sprintf("%.1f", r.Rtop1), fmt.Sprintf("%.3f", r.Spearman)})
		}
		renderTable(w, []string{"train impls/group", "Rtop1%", "Spearman"}, trows)
	}
	return rows, nil
}

// TunerRow compares AutoTVM tuners on simulator scores.
type TunerRow struct {
	Tuner    string
	BestTref float64
}

// TunerComparison runs the AutoTVM tuners on one conv group with native
// (timing-model) measurement and reports the best reference time found
// within the trial budget.
func TunerComparison(cfg Config, arch isa.Arch, group, trials int, w io.Writer) ([]TunerRow, error) {
	prof := hw.Lookup(arch)
	factory := func() *te.Workload { return te.ConvGroup(cfg.Scale, group) }
	tmpl := autotvm.ConvTemplate{}
	space, err := tmpl.Space(factory())
	if err != nil {
		return nil, err
	}
	opt := hw.MeasureOptions{Nexe: 3, CooldownSec: 0.1}
	rng := num.NewRNG(cfg.Seed + 45)
	mk := map[string]func() autotvm.Tuner{
		"random":    func() autotvm.Tuner { return autotvm.NewRandomTuner(space, rng.Split()) },
		"ga":        func() autotvm.Tuner { return autotvm.NewGATuner(space, rng.Split()) },
		"xgb-model": func() autotvm.Tuner { return autotvm.NewModelTuner(space, rng.Split()) },
	}
	var rows []TunerRow
	for _, name := range []string{"random", "ga", "xgb-model"} {
		tOpt := autotvm.Options{
			Trials: trials, BatchSize: 16,
			Builder: runner.LocalBuilder{Arch: arch},
			Runner:  runner.NewLocalRunner(prof, opt, rng.Split()),
		}
		records, err := autotvm.Tune(factory, tmpl, mk[name](), tOpt)
		if err != nil {
			return nil, err
		}
		best := autotvm.Best(records)
		if best == nil {
			return nil, fmt.Errorf("experiments: tuner %s found nothing", name)
		}
		rows = append(rows, TunerRow{Tuner: name, BestTref: best.TimeSec})
	}
	if w != nil {
		line(w, "Ablation: AutoTVM tuner comparison (%s, group %d, %d trials)", arch, group, trials)
		var trows [][]string
		for _, r := range rows {
			trows = append(trows, []string{r.Tuner, fmt.Sprintf("%.6f s", r.BestTref)})
		}
		renderTable(w, []string{"tuner", "best tref"}, trows)
	}
	return rows, nil
}
