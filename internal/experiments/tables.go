package experiments

import (
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/te"
)

// TableI prints the cache sizes and hierarchy of the modelled CPUs
// (paper Table I). The data comes straight from the hw profiles that the
// simulators instantiate, so the printed table is the configuration actually
// used by every experiment.
func TableI(w io.Writer) {
	line(w, "Table I: Cache sizes and hierarchy of the used CPUs")
	headers := []string{"CPU", "level", "size", "sets", "assoc", "line"}
	var rows [][]string
	for _, prof := range hw.Profiles() {
		cfgs := []struct {
			name string
			has  bool
		}{{"L1D", true}, {"L1I", true}, {"L2", true}, {"L3", prof.Caches.HasL3()}}
		for _, lv := range cfgs {
			if !lv.has {
				rows = append(rows, []string{string(prof.Arch), lv.name, "-", "-", "-", "-"})
				continue
			}
			var c = prof.Caches.L1D
			switch lv.name {
			case "L1I":
				c = prof.Caches.L1I
			case "L2":
				c = prof.Caches.L2
			case "L3":
				c = prof.Caches.L3
			}
			rows = append(rows, []string{
				string(prof.Arch), lv.name,
				fmt.Sprintf("%dK", c.SizeBytes/1024),
				fmt.Sprintf("%d", c.Sets()),
				fmt.Sprintf("%d", c.Assoc),
				fmt.Sprintf("%dB", c.LineBytes),
			})
		}
	}
	renderTable(w, headers, rows)
}

// TableII prints the Conv2D+Bias+ReLU group shapes (paper Table II) at the
// requested scale, alongside the exact paper shapes for reference.
func TableII(w io.Writer, scale te.Scale) {
	line(w, "Table II: Shapes of the used Conv2D+Bias+ReLU kernels (scale=%s)", scale)
	headers := []string{"group", "N", "H", "W", "CO", "CI", "KH", "KW", "stride", "pad", "MACs"}
	var rows [][]string
	for g, p := range te.ConvGroupParams(scale) {
		wl := te.ConvGroup(scale, g)
		rows = append(rows, []string{
			fmt.Sprintf("%d", g),
			fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.H), fmt.Sprintf("%d", p.W),
			fmt.Sprintf("%d", p.CO), fmt.Sprintf("%d", p.CI),
			fmt.Sprintf("%d", p.KH), fmt.Sprintf("%d", p.KW),
			fmt.Sprintf("(%d,%d)", p.StrideH, p.StrideW),
			fmt.Sprintf("(%d,%d)", p.PadH, p.PadW),
			fmt.Sprintf("%d", wl.Op.MACs()),
		})
	}
	renderTable(w, headers, rows)
	if scale != te.ScalePaper {
		line(w, "(paper scale for reference)")
		TableII(w, te.ScalePaper)
	}
}
