package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/num"
	"repro/internal/predictor/bayes"
)

// Fig5Panel is one panel of Figure 5: the test samples of the evaluated
// group with reference times sorted ascending, and the same samples' times
// ordered by the Bayesian predictor's scores.
type Fig5Panel struct {
	Arch isa.Arch
	// Included reports whether the evaluated group was in the training set
	// (panels a–c) or not (panels d–f).
	Included bool
	// RefSorted is t_ref sorted ascending.
	RefSorted []float64
	// PredOrder is the measured run time of each sample in predicted-score
	// order (t_pred in the paper's plots).
	PredOrder []float64
	// Metrics are the paper metrics of the panel.
	Metrics metrics.Result
}

// Fig5 reproduces Figure 5 for the given group (paper: group 3): Bayesian
// predictors are trained per architecture once with all groups and once with
// the evaluated group excluded from training; the same test samples are then
// scored. Excluded-group scoring uses a dynamic window for the group means,
// since the means of an unseen group are unknown at inference (§III-E).
func Fig5(cfg Config, group int, w io.Writer, csvW io.Writer) ([]Fig5Panel, error) {
	var panels []Fig5Panel
	for _, arch := range isa.Archs() {
		ds, err := cfg.Dataset(arch)
		if err != nil {
			return nil, err
		}
		gd, ok := ds.GroupByIndex(group)
		if !ok {
			return nil, fmt.Errorf("experiments: fig5 group %d missing from dataset", group)
		}
		_ = gd
		var all, others []int
		for _, g := range ds.Groups {
			all = append(all, g.Group)
			if g.Group != group {
				others = append(others, g.Group)
			}
		}
		rng := num.NewRNG(cfg.Seed + 500)
		split := ds.Split(rng.Split(), cfg.TestPerGroup)

		for _, included := range []bool{true, false} {
			groups := all
			if !included {
				groups = others
			}
			x, y, norms, err := core.TrainingMatrix(ds, split, groups)
			if err != nil {
				return nil, err
			}
			pred := bayes.New(bayes.DefaultConfig(), rng.Split())
			if err := pred.Fit(x, y); err != nil {
				return nil, err
			}
			var norm features.Normalizer
			if included {
				norm = norms[group].Norm
			} else {
				norm = features.NewDynamicWindow()
			}
			g, _ := ds.GroupByIndex(group)
			scores, tref := core.PredictGroup(g, split.Test[group], pred, norm)
			res := metrics.Evaluate(tref, scores)

			refSorted := append([]float64(nil), tref...)
			order := num.ArgSort(scores)
			predOrder := make([]float64, len(order))
			for i, idx := range order {
				predOrder[i] = tref[idx]
			}
			sortFloats(refSorted)
			panels = append(panels, Fig5Panel{
				Arch: arch, Included: included,
				RefSorted: refSorted, PredOrder: predOrder, Metrics: res,
			})
		}
	}
	if w != nil {
		line(w, "Fig. 5: sorted run-time predictions for the test set of group %d (Bayes)", group)
		for _, p := range panels {
			label := "included in training"
			if !p.Included {
				label = "NOT included in training"
			}
			asciiPlot(w, fmt.Sprintf("%s — group %d %s (%s)", p.Arch, group, label, p.Metrics), p.RefSorted, p.PredOrder)
		}
	}
	if csvW != nil {
		var headers []string
		var cols [][]float64
		for _, p := range panels {
			tag := fmt.Sprintf("%s_incl%v", p.Arch, p.Included)
			headers = append(headers, "tref_"+tag, "tpred_"+tag)
			cols = append(cols, p.RefSorted, p.PredOrder)
		}
		writeCSV(csvW, headers, cols)
	}
	return panels, nil
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
