package core

import (
	"fmt"
	"sort"

	"repro/internal/ansor"
	"repro/internal/features"
	"repro/internal/hw"
	"repro/internal/num"
	"repro/internal/predictor"
	"repro/internal/runner"
	"repro/internal/te"
)

// ExecutionOptions configure ExecutionPhase — the Fig. 4-II setting:
// simulator-only tuning of a (possibly unseen) group with a pre-trained
// predictor. The target CPU is not required anymore, "which enables the
// simulation of architectures such as RISC-V on x86 platforms" (§III-C).
type ExecutionOptions struct {
	Scale te.Scale
	// Group is the Table II group to tune.
	Group int
	// Trials and BatchSize drive the auto-scheduler.
	Trials    int
	BatchSize int
	// NParallel simulator instances run concurrently.
	NParallel int
	// Window selects the §III-E group-mean approximation: "static" or
	// "dynamic". StaticW is the static-window width (defaults to
	// BatchSize, the paper's natural choice).
	Window  string
	StaticW int
	// Seed drives the search.
	Seed uint64
	// Runner overrides the default in-process SimulatorRunner — the
	// multi-backend hook a service.ServiceRunner plugs into so tuning runs
	// against a shared simulate server. When the runner implements
	// runner.ScorerSetter the execution phase injects its windowed
	// predictor scorer (both backends do).
	Runner runner.Runner
	// Builder overrides the default LocalBuilder; service backends compile
	// server-side and pair with service.NopBuilder.
	Builder runner.Builder
}

// ExecutionPhase tunes one group on simulators only, scoring candidates with
// the trained predictor through a windowed normalizer. It returns the search
// records ordered as generated.
func ExecutionPhase(prof hw.Profile, pred predictor.Predictor, opt ExecutionOptions) ([]ansor.Record, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: execution phase needs positive Trials")
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 16
	}
	var norm features.Normalizer
	switch opt.Window {
	case "", "dynamic":
		norm = features.NewDynamicWindow()
	case "static":
		w := opt.StaticW
		if w <= 0 {
			w = opt.BatchSize
		}
		norm = features.NewStaticWindow(w)
	default:
		return nil, fmt.Errorf("core: unknown window %q (want static|dynamic)", opt.Window)
	}
	group := opt.Group
	factory := func() *te.Workload { return te.ConvGroup(opt.Scale, group) }
	scorer := &runner.PredictorScorer{Pred: pred, Norm: norm}
	aOpt := ansor.DefaultOptions()
	aOpt.Trials = opt.Trials
	aOpt.BatchSize = opt.BatchSize
	aOpt.Builder = runner.LocalBuilder{Arch: prof.Arch}
	if opt.Builder != nil {
		aOpt.Builder = opt.Builder
	}
	if opt.Runner != nil {
		aOpt.Runner = opt.Runner
		if ss, ok := opt.Runner.(runner.ScorerSetter); ok {
			ss.SetScorer(scorer)
		}
	} else {
		aOpt.Runner = runner.NewSimulatorRunner(prof.Caches, opt.NParallel, scorer)
	}
	return ansor.Search(factory, aOpt, num.NewRNG(opt.Seed))
}

// CacheStats aggregates the simulate-service cache bookkeeping of an
// execution-phase run: how many candidates the result cache absorbed and the
// simulation wall seconds actually spent (cache hits return the original
// run's SimWallSeconds, which must not be double-counted). SimSec is the
// honest T_sim numerator for the Eq. (4) break-even K once a cache absorbs
// work; with the in-process backend every record is a miss and SimSec
// degenerates to the plain sum.
func CacheStats(records []ansor.Record) (hits, misses int, simSec float64) {
	for _, r := range records {
		if r.Err != nil || r.Stats == nil {
			continue
		}
		if r.CacheHit {
			hits++
			continue
		}
		misses++
		simSec += r.Stats.SimWallSeconds
	}
	return hits, misses, simSec
}

// TopK returns the k best-scored successful records (the candidates the
// paper re-executes on the real architecture, §IV: "it is sufficient to
// re-execute the top 2-3% of the predictions later on a real architecture").
func TopK(records []ansor.Record, k int) []ansor.Record {
	ok := make([]ansor.Record, 0, len(records))
	for _, r := range records {
		if r.Err == nil {
			ok = append(ok, r)
		}
	}
	sort.SliceStable(ok, func(a, b int) bool { return ok[a].Score < ok[b].Score })
	if k > len(ok) {
		k = len(ok)
	}
	return ok[:k]
}

// ValidateOnTarget measures the given records natively (the final
// re-execution step) and returns the best measured time.
func ValidateOnTarget(prof hw.Profile, scale te.Scale, group int, records []ansor.Record, opt hw.MeasureOptions, rng *num.RNG) (best float64, idx int, err error) {
	factory := func() *te.Workload { return te.ConvGroup(scale, group) }
	b := runner.LocalBuilder{Arch: prof.Arch}
	lr := runner.NewLocalRunner(prof, opt, rng)
	inputs := make([]runner.MeasureInput, len(records))
	for i, r := range records {
		inputs[i] = runner.MeasureInput{Factory: factory, Steps: r.Steps}
	}
	results := lr.Run(inputs, b.Build(inputs))
	best, idx = 0, -1
	for i, res := range results {
		if res.Err != nil {
			continue
		}
		if idx < 0 || res.TimeSec < best {
			best, idx = res.TimeSec, i
		}
	}
	if idx < 0 {
		return 0, -1, fmt.Errorf("core: no candidate validated successfully")
	}
	return best, idx, nil
}
