// Package core implements Contribution II of the paper: the score-predictor
// workflow of Fig. 4. In the training phase (I), the auto-scheduler
// generates implementations per kernel group; each is executed natively on
// the target (here: the hw timing model with the paper's N_exe/cooldown
// measurement methodology) and on the instruction-accurate simulator; the
// resulting (statistics, reference-time) pairs train one predictor per
// architecture and kernel type. In the execution phase (II), the target CPU
// is no longer required: candidates run only on simulators and the trained
// predictor converts statistics to scores through windowed group
// normalization (§III-E).
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ansor"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/num"
	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/te"
)

// Implementation is one measured schedule of a group: its transform steps,
// the native reference measurement, and the IA-simulator statistics.
type Implementation struct {
	Steps []schedule.Step
	// TrefSec is the median-of-N_exe reference time (paper methodology).
	TrefSec float64
	// TrueSec is the noiseless modelled time (diagnostics/ablations only).
	TrueSec float64
	// NativeElapsedSec is the wall-clock cost of the native measurement
	// including cooldowns (Eq. 4 bookkeeping).
	NativeElapsedSec float64
	// Stats are the instruction-accurate simulator statistics.
	Stats *sim.Stats
	// SimWallSec is the measured wall time of our own simulator run.
	SimWallSec float64
}

// GroupData holds every implementation generated for one kernel group.
type GroupData struct {
	Group       int
	WorkloadKey string
	Impls       []Implementation
}

// Dataset is the full training corpus of one (architecture, kernel type)
// pair across groups.
type Dataset struct {
	Arch   isa.Arch
	Scale  te.Scale
	Kernel string
	Groups []GroupData
}

// DatasetConfig controls dataset generation.
type DatasetConfig struct {
	Arch  isa.Arch
	Scale te.Scale
	// Groups lists the Table II group indices to include.
	Groups []int
	// ImplsPerGroup is the number of auto-scheduler candidates per group
	// (paper: 500).
	ImplsPerGroup int
	// BatchSize is the auto-scheduler measurement batch.
	BatchSize int
	// NParallel is the simulator parallelism.
	NParallel int
	// MeasureOpt is the native measurement methodology.
	MeasureOpt hw.MeasureOptions
	// Seed drives every stochastic component.
	Seed uint64
	// FactoryFor optionally overrides the workload built per group index,
	// enabling datasets for other kernel types (matmul, dense, depthwise) —
	// the paper trains one predictor per kernel type (§III-C). The default
	// (nil) builds the Table II conv groups at Scale. Datasets with a custom
	// factory cannot be disk-cached (code is not fingerprintable).
	FactoryFor func(group int) runner.WorkloadFactory `json:"-"`
}

// DefaultDatasetConfig returns a small-scale configuration.
func DefaultDatasetConfig(arch isa.Arch) DatasetConfig {
	return DatasetConfig{
		Arch: arch, Scale: te.ScaleSmall,
		Groups:        []int{0, 1, 2, 3, 4},
		ImplsPerGroup: 80, BatchSize: 16, NParallel: 4,
		MeasureOpt: hw.DefaultMeasureOptions(), Seed: 1,
	}
}

// DualRunner measures each candidate on the timing model ("native") and the
// instruction-accurate simulator in one program execution via event fanout —
// the training-phase setup of Fig. 4-I where workloads run in both worlds.
// The search score is the native reference time, so dataset generation
// behaves like ordinary hardware autotuning.
type DualRunner struct {
	Prof hw.Profile
	Opt  hw.MeasureOptions
	NPar int
	rng  *num.RNG
}

// NewDualRunner builds the training-phase runner.
func NewDualRunner(prof hw.Profile, opt hw.MeasureOptions, nParallel int, rng *num.RNG) *DualRunner {
	if nParallel < 1 {
		nParallel = 1
	}
	return &DualRunner{Prof: prof, Opt: opt, NPar: nParallel, rng: rng}
}

// Name implements runner.Runner.
func (d *DualRunner) Name() string { return "dual[" + string(d.Prof.Arch) + "]" }

// NParallel implements runner.Runner.
func (d *DualRunner) NParallel() int { return d.NPar }

// Run implements runner.Runner.
func (d *DualRunner) Run(inputs []runner.MeasureInput, builds []runner.BuildResult) []runner.MeasureResult {
	out := make([]runner.MeasureResult, len(builds))
	// Pre-draw measurement-noise seeds so parallel execution stays
	// deterministic.
	seeds := make([]uint64, len(builds))
	for i := range seeds {
		seeds[i] = d.rng.Uint64()
	}
	runner.Parallel(d.NPar, len(builds), func(i int) {
		if builds[i].Err != nil {
			out[i] = runner.MeasureResult{Err: builds[i].Err, Score: math.Inf(1)}
			return
		}
		prog := builds[i].Prog
		// Pooled machines: dataset generation simulates thousands of
		// candidates, so cache hierarchies are re-used via Reset() instead
		// of being rebuilt per candidate.
		hwM, err := hw.AcquireMachine(d.Prof)
		if err != nil {
			out[i] = runner.MeasureResult{Err: err, Score: math.Inf(1)}
			return
		}
		defer hw.ReleaseMachine(hwM)
		simM, err := sim.Acquire(d.Prof.Arch, d.Prof.Caches)
		if err != nil {
			out[i] = runner.MeasureResult{Err: err, Score: math.Inf(1)}
			return
		}
		defer sim.Release(simM)
		start := time.Now()
		lower.Execute(prog, lower.Fanout{hwM, simM}, false)
		simWall := time.Since(start).Seconds()
		meas := hw.SampleMeasurement(hwM.Seconds(), hwM.Cycles(), d.Prof, d.Opt, num.NewRNG(seeds[i]))
		st := simM.Stats()
		st.SimWallSeconds = simWall
		out[i] = runner.MeasureResult{
			Score: meas.TrefSec, TimeSec: meas.TrefSec, Stats: st,
			TrueTimeSec: meas.TrueSec, ElapsedSec: meas.ElapsedSec,
		}
	})
	return out
}

// GenerateDataset runs the training-phase data collection of Fig. 4-I: the
// auto-scheduler explores ImplsPerGroup implementations per group, each
// measured natively and simulated.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("core: no groups configured")
	}
	prof := hw.Lookup(cfg.Arch)
	rng := num.NewRNG(cfg.Seed)
	ds := &Dataset{Arch: cfg.Arch, Scale: cfg.Scale, Kernel: "conv2d_bias_relu"}
	for _, g := range cfg.Groups {
		group := g
		var factory runner.WorkloadFactory
		if cfg.FactoryFor != nil {
			factory = cfg.FactoryFor(group)
			ds.Kernel = factory().Kernel
		} else {
			factory = func() *te.Workload { return te.ConvGroup(cfg.Scale, group) }
		}
		opt := ansor.DefaultOptions()
		opt.Trials = cfg.ImplsPerGroup
		opt.BatchSize = cfg.BatchSize
		opt.Builder = runner.LocalBuilder{Arch: cfg.Arch}
		opt.Runner = NewDualRunner(prof, cfg.MeasureOpt, cfg.NParallel, rng.Split())
		records, err := ansor.Search(factory, opt, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("core: group %d: %w", group, err)
		}
		gd := GroupData{Group: group, WorkloadKey: factory().Key}
		for _, r := range records {
			if r.Err != nil || r.Stats == nil {
				continue
			}
			gd.Impls = append(gd.Impls, Implementation{
				Steps: r.Steps, TrefSec: r.TimeSec, TrueSec: r.TrueTimeSec,
				NativeElapsedSec: r.ElapsedSec, Stats: r.Stats,
				SimWallSec: r.Stats.SimWallSeconds,
			})
		}
		if len(gd.Impls) < 4 {
			return nil, fmt.Errorf("core: group %d produced only %d valid impls", group, len(gd.Impls))
		}
		ds.Groups = append(ds.Groups, gd)
	}
	return ds, nil
}

// GroupByIndex returns the group data with the given Table II index.
func (ds *Dataset) GroupByIndex(group int) (*GroupData, bool) {
	for i := range ds.Groups {
		if ds.Groups[i].Group == group {
			return &ds.Groups[i], true
		}
	}
	return nil, false
}
