package core

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/num"
	"repro/internal/predictor"
)

// SplitIndices draws a random train/test split per group (the paper: 500
// implementations per group, 100 in the test set, 10 random re-splits).
type SplitIndices struct {
	Train map[int][]int
	Test  map[int][]int
}

// Split samples testPerGroup test indices per group.
func (ds *Dataset) Split(rng *num.RNG, testPerGroup int) SplitIndices {
	out := SplitIndices{Train: map[int][]int{}, Test: map[int][]int{}}
	for _, g := range ds.Groups {
		n := len(g.Impls)
		nTest := testPerGroup
		if nTest >= n {
			nTest = n / 4
		}
		if nTest < 1 {
			nTest = 1
		}
		perm := rng.Perm(n)
		out.Test[g.Group] = append([]int(nil), perm[:nTest]...)
		out.Train[g.Group] = append([]int(nil), perm[nTest:]...)
	}
	return out
}

// GroupNorm carries the oracle group statistics computed on the training
// portion of one group: the Eq. (2) feature normalizer and the mean
// reference time used for target normalization.
type GroupNorm struct {
	Norm     *features.Oracle
	MeanTref float64
}

// groupNorm computes oracle statistics over the given implementation
// indices.
func groupNorm(g *GroupData, idx []int) GroupNorm {
	samples := make([]features.Sample, 0, len(idx))
	times := make([]float64, 0, len(idx))
	for _, i := range idx {
		samples = append(samples, features.FromStats(g.Impls[i].Stats))
		times = append(times, g.Impls[i].TrefSec)
	}
	return GroupNorm{Norm: features.NewOracle(samples), MeanTref: num.Mean(times)}
}

// TrainingMatrix assembles (X, y) over the training indices of the listed
// groups, with per-group oracle normalization of features (Eq. 2) and
// targets (run times normalized to the group, §III-D). It returns the
// per-group statistics for test-time reuse.
func TrainingMatrix(ds *Dataset, split SplitIndices, groups []int) (x [][]float64, y []float64, norms map[int]GroupNorm, err error) {
	norms = map[int]GroupNorm{}
	for _, gi := range groups {
		g, ok := ds.GroupByIndex(gi)
		if !ok {
			return nil, nil, nil, fmt.Errorf("core: group %d not in dataset", gi)
		}
		idx := split.Train[gi]
		gn := groupNorm(g, idx)
		norms[gi] = gn
		for _, i := range idx {
			impl := &g.Impls[i]
			s := features.FromStats(impl.Stats)
			x = append(x, gn.Norm.Vector(s))
			y = append(y, features.NormalizeTarget(impl.TrefSec, gn.MeanTref))
		}
	}
	if len(x) == 0 {
		return nil, nil, nil, fmt.Errorf("core: empty training matrix")
	}
	return x, y, norms, nil
}

// PredictGroup scores the given implementations of one group with a trained
// predictor using the provided feature normalizer (oracle statistics for
// groups seen in training; a static/dynamic window for unseen groups).
// It returns (scores, reference times) index-aligned.
func PredictGroup(g *GroupData, idx []int, pred predictor.Predictor, norm features.Normalizer) (scores, tref []float64) {
	for _, i := range idx {
		impl := &g.Impls[i]
		s := features.FromStats(impl.Stats)
		norm.Observe(s)
		scores = append(scores, pred.Predict(norm.Vector(s)))
		tref = append(tref, impl.TrefSec)
	}
	return scores, tref
}

// EvalGroup computes the paper metrics for one group's test split.
func EvalGroup(ds *Dataset, split SplitIndices, group int, pred predictor.Predictor, norm features.Normalizer) (metrics.Result, error) {
	g, ok := ds.GroupByIndex(group)
	if !ok {
		return metrics.Result{}, fmt.Errorf("core: group %d not in dataset", group)
	}
	scores, tref := PredictGroup(g, split.Test[group], pred, norm)
	return metrics.Evaluate(tref, scores), nil
}

// MedianPredictionEval reproduces the paper's evaluation protocol for
// Tables III–V: nSplits random train/test splits; the predictor is retrained
// per split; per-group metrics are computed on each split's test set and the
// per-metric median across splits is reported.
func MedianPredictionEval(ds *Dataset, makePred func() predictor.Predictor, groups []int, testPerGroup, nSplits int, rng *num.RNG) (map[int]metrics.Result, error) {
	perGroup := map[int][]metrics.Result{}
	for s := 0; s < nSplits; s++ {
		split := ds.Split(rng.Split(), testPerGroup)
		x, y, norms, err := TrainingMatrix(ds, split, groups)
		if err != nil {
			return nil, err
		}
		pred := makePred()
		if err := pred.Fit(x, y); err != nil {
			return nil, err
		}
		for _, gi := range groups {
			res, err := EvalGroup(ds, split, gi, pred, norms[gi].Norm)
			if err != nil {
				return nil, err
			}
			perGroup[gi] = append(perGroup[gi], res)
		}
	}
	out := map[int]metrics.Result{}
	for gi, rs := range perGroup {
		out[gi] = metrics.MedianOf(rs)
	}
	return out, nil
}
