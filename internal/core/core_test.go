package core

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/features"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/num"
	"repro/internal/predictor"
	"repro/internal/predictor/mlr"
	"repro/internal/predictor/xgb"
	"repro/internal/runner"
	"repro/internal/te"
)

// tinyConfig generates a small but non-trivial dataset quickly.
func tinyConfig(arch isa.Arch, seed uint64) DatasetConfig {
	return DatasetConfig{
		Arch: arch, Scale: te.ScaleTiny,
		Groups:        []int{0, 1, 2},
		ImplsPerGroup: 24, BatchSize: 8, NParallel: 2,
		MeasureOpt: hw.MeasureOptions{Nexe: 5, CooldownSec: 0.1},
		Seed:       seed,
	}
}

// sharedDataset memoizes the test dataset across test functions.
var sharedDS *Dataset

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	if sharedDS != nil {
		return sharedDS
	}
	ds, err := GenerateDataset(tinyConfig(isa.RISCV, 3))
	if err != nil {
		t.Fatal(err)
	}
	sharedDS = ds
	return ds
}

func TestGenerateDatasetShape(t *testing.T) {
	ds := testDataset(t)
	if len(ds.Groups) != 3 {
		t.Fatalf("groups = %d", len(ds.Groups))
	}
	for _, g := range ds.Groups {
		if len(g.Impls) < 16 {
			t.Fatalf("group %d: only %d impls", g.Group, len(g.Impls))
		}
		for _, impl := range g.Impls {
			if impl.TrefSec <= 0 || impl.Stats == nil || impl.Stats.Total == 0 {
				t.Fatalf("group %d: incomplete implementation %+v", g.Group, impl)
			}
			if len(impl.Steps) == 0 {
				t.Fatalf("group %d: missing steps", g.Group)
			}
			if impl.NativeElapsedSec <= 0 || impl.TrueSec <= 0 {
				t.Fatalf("group %d: missing measurement bookkeeping", g.Group)
			}
		}
	}
}

func TestDatasetRunTimesVary(t *testing.T) {
	ds := testDataset(t)
	for _, g := range ds.Groups {
		var times []float64
		for _, impl := range g.Impls {
			times = append(times, impl.TrefSec)
		}
		if num.Std(times)/num.Mean(times) < 0.01 {
			t.Fatalf("group %d: run times suspiciously uniform", g.Group)
		}
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	ds := testDataset(t)
	split := ds.Split(num.NewRNG(1), 6)
	for _, g := range ds.Groups {
		tr, te := split.Train[g.Group], split.Test[g.Group]
		if len(te) != 6 {
			t.Fatalf("test size = %d", len(te))
		}
		if len(tr)+len(te) != len(g.Impls) {
			t.Fatal("split loses implementations")
		}
		seen := map[int]bool{}
		for _, i := range append(append([]int{}, tr...), te...) {
			if seen[i] {
				t.Fatal("split overlaps")
			}
			seen[i] = true
		}
	}
}

func TestTrainingMatrixAndEval(t *testing.T) {
	ds := testDataset(t)
	split := ds.Split(num.NewRNG(2), 6)
	groups := []int{0, 1, 2}
	x, y, norms, err := TrainingMatrix(ds, split, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != len(y) || len(x) == 0 {
		t.Fatalf("matrix %d x %d", len(x), len(y))
	}
	wantDim := features.Dim(3 + 6*3) // riscv: 3 cache levels
	if len(x[0]) != wantDim {
		t.Fatalf("feature dim = %d want %d", len(x[0]), wantDim)
	}
	pred := xgb.New(xgb.DefaultConfig(), num.NewRNG(4))
	if err := pred.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	res, err := EvalGroup(ds, split, 1, pred, norms[1].Norm)
	if err != nil {
		t.Fatal(err)
	}
	// On tiny data we only demand sanity: the metrics exist and the
	// predictor is far better than anti-correlated.
	if math.IsNaN(res.Etop1) || res.Rtop1 <= 0 {
		t.Fatalf("bad metrics: %+v", res)
	}
	if res.Spearman < 0 {
		t.Fatalf("predictor anti-correlated: %+v", res)
	}
}

func TestMedianPredictionEval(t *testing.T) {
	ds := testDataset(t)
	groups := []int{0, 1, 2}
	rng := num.NewRNG(5)
	out, err := MedianPredictionEval(ds,
		func() predictor.Predictor { return mlr.New() },
		groups, 6, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("groups evaluated = %d", len(out))
	}
	for gi, res := range out {
		if math.IsNaN(res.Etop1) || math.IsNaN(res.Qlow) {
			t.Fatalf("group %d: NaN metrics %+v", gi, res)
		}
	}
}

func TestUnseenGroupEvalWithDynamicWindow(t *testing.T) {
	// Train on groups 0,1 — evaluate group 2 with a dynamic window
	// (Fig. 5 d-f setting).
	ds := testDataset(t)
	split := ds.Split(num.NewRNG(7), 6)
	x, y, _, err := TrainingMatrix(ds, split, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	pred := xgb.New(xgb.DefaultConfig(), num.NewRNG(8))
	if err := pred.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	res, err := EvalGroup(ds, split, 2, pred, features.NewDynamicWindow())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Qlow) || math.IsNaN(res.Qhigh) {
		t.Fatalf("NaN metrics: %+v", res)
	}
}

func TestSaveLoadDatasetRoundTrip(t *testing.T) {
	ds := testDataset(t)
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := SaveDataset(ds, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Arch != ds.Arch || len(back.Groups) != len(ds.Groups) {
		t.Fatal("round trip lost structure")
	}
	if back.Groups[0].Impls[0].TrefSec != ds.Groups[0].Impls[0].TrefSec {
		t.Fatal("round trip lost values")
	}
	if back.Groups[0].Impls[0].Stats.Total != ds.Groups[0].Impls[0].Stats.Total {
		t.Fatal("round trip lost stats")
	}
}

func TestCachedDataset(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(isa.RISCV, 99)
	cfg.Groups = []int{0}
	cfg.ImplsPerGroup = 8
	a, err := CachedDataset(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedDataset(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("in-memory cache must return the same pointer")
	}
	// Different seed → different key.
	cfg2 := cfg
	cfg2.Seed = 100
	if configKey(cfg) == configKey(cfg2) {
		t.Fatal("config key must depend on seed")
	}
}

func TestGroupByIndex(t *testing.T) {
	ds := testDataset(t)
	if _, ok := ds.GroupByIndex(1); !ok {
		t.Fatal("group 1 missing")
	}
	if _, ok := ds.GroupByIndex(99); ok {
		t.Fatal("phantom group found")
	}
}

func TestExecutionPhaseAndValidate(t *testing.T) {
	ds := testDataset(t)
	split := ds.Split(num.NewRNG(11), 6)
	x, y, _, err := TrainingMatrix(ds, split, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	pred := xgb.New(xgb.DefaultConfig(), num.NewRNG(12))
	if err := pred.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	prof := hw.Lookup(isa.RISCV)
	records, err := ExecutionPhase(prof, pred, ExecutionOptions{
		Scale: te.ScaleTiny, Group: 1, Trials: 16, BatchSize: 8,
		NParallel: 2, Window: "dynamic", Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 16 {
		t.Fatalf("records = %d", len(records))
	}
	top := TopK(records, 3)
	if len(top) != 3 {
		t.Fatalf("topk = %d", len(top))
	}
	if top[0].Score > top[1].Score || top[1].Score > top[2].Score {
		t.Fatal("TopK not sorted")
	}
	best, idx, err := ValidateOnTarget(prof, te.ScaleTiny, 1, top,
		hw.MeasureOptions{Nexe: 3, CooldownSec: 0.1}, num.NewRNG(14))
	if err != nil {
		t.Fatal(err)
	}
	if best <= 0 || idx < 0 {
		t.Fatalf("validation failed: %v %d", best, idx)
	}
}

func TestExecutionPhaseStaticWindow(t *testing.T) {
	ds := testDataset(t)
	split := ds.Split(num.NewRNG(21), 6)
	x, y, _, err := TrainingMatrix(ds, split, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	pred := mlr.New()
	if err := pred.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	prof := hw.Lookup(isa.RISCV)
	if _, err := ExecutionPhase(prof, pred, ExecutionOptions{
		Scale: te.ScaleTiny, Group: 2, Trials: 8, BatchSize: 4,
		NParallel: 1, Window: "static", StaticW: 4, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecutionPhase(prof, pred, ExecutionOptions{
		Scale: te.ScaleTiny, Group: 2, Trials: 8, Window: "bogus", Seed: 1,
	}); err == nil {
		t.Fatal("bogus window must error")
	}
	if _, err := ExecutionPhase(prof, pred, ExecutionOptions{}); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestDualRunnerDeterministic(t *testing.T) {
	cfg := tinyConfig(isa.ARM, 55)
	cfg.Groups = []int{1}
	cfg.ImplsPerGroup = 8
	a, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := a.Groups[0], b.Groups[0]
	if len(ga.Impls) != len(gb.Impls) {
		t.Fatal("dataset generation not deterministic in size")
	}
	for i := range ga.Impls {
		if ga.Impls[i].TrefSec != gb.Impls[i].TrefSec {
			t.Fatal("dataset generation not deterministic in times")
		}
		if ga.Impls[i].Stats.Total != gb.Impls[i].Stats.Total {
			t.Fatal("dataset generation not deterministic in stats")
		}
	}
}

func TestMatmulKernelTypeDataset(t *testing.T) {
	// The pipeline must work for other kernel types (one predictor per
	// kernel type, §III-C): matmul groups of different shapes.
	sizes := [][3]int{{16, 12, 16}, {12, 16, 12}, {20, 8, 16}}
	cfg := DatasetConfig{
		Arch: isa.ARM, Scale: te.ScaleTiny,
		Groups:        []int{0, 1, 2},
		ImplsPerGroup: 16, BatchSize: 8, NParallel: 2,
		MeasureOpt: hw.MeasureOptions{Nexe: 3, CooldownSec: 0.1},
		Seed:       5,
		FactoryFor: func(group int) runner.WorkloadFactory {
			sz := sizes[group]
			return func() *te.Workload { return te.MatMul(sz[0], sz[1], sz[2]) }
		},
	}
	ds, err := CachedDataset(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Kernel != "matmul" {
		t.Fatalf("kernel = %s", ds.Kernel)
	}
	split := ds.Split(num.NewRNG(1), 4)
	x, y, norms, err := TrainingMatrix(ds, split, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	pred := xgb.New(xgb.DefaultConfig(), num.NewRNG(2))
	if err := pred.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	res, err := EvalGroup(ds, split, 1, pred, norms[1].Norm)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Etop1) {
		t.Fatalf("bad metrics %+v", res)
	}
}
