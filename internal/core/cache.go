package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

// SaveDataset writes a dataset as JSON (datasets are expensive to generate;
// the experiment drivers cache them on disk).
func SaveDataset(ds *Dataset, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(ds); err != nil {
		return fmt.Errorf("core: encode dataset: %w", err)
	}
	return nil
}

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	var ds Dataset
	if err := json.NewDecoder(f).Decode(&ds); err != nil {
		return nil, fmt.Errorf("core: decode dataset: %w", err)
	}
	return &ds, nil
}

// configKey fingerprints a dataset configuration for caching.
func configKey(cfg DatasetConfig) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%v|%d|%d|%d|%+v|%d",
		cfg.Arch, cfg.Scale, cfg.Groups, cfg.ImplsPerGroup, cfg.BatchSize,
		cfg.NParallel, cfg.MeasureOpt, cfg.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}

var (
	memCacheMu sync.Mutex
	memCache   = map[string]*Dataset{}
)

// CachedDataset returns the dataset for cfg, generating it at most once per
// process (in-memory cache) and, when cacheDir is non-empty, persisting it
// to disk across runs. The benchmark harness relies on this so that every
// table/figure bench shares one corpus.
func CachedDataset(cfg DatasetConfig, cacheDir string) (*Dataset, error) {
	if cfg.FactoryFor != nil {
		// Custom workload factories cannot be fingerprinted; generate fresh.
		return GenerateDataset(cfg)
	}
	key := configKey(cfg)
	memCacheMu.Lock()
	if ds, ok := memCache[key]; ok {
		memCacheMu.Unlock()
		return ds, nil
	}
	memCacheMu.Unlock()

	var path string
	if cacheDir != "" {
		path = filepath.Join(cacheDir, "dataset-"+key+".json")
		if ds, err := LoadDataset(path); err == nil {
			memCacheMu.Lock()
			memCache[key] = ds
			memCacheMu.Unlock()
			return ds, nil
		}
	}
	ds, err := GenerateDataset(cfg)
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := SaveDataset(ds, path); err != nil {
			return nil, err
		}
	}
	memCacheMu.Lock()
	memCache[key] = ds
	memCacheMu.Unlock()
	return ds, nil
}
