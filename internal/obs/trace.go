package obs

import (
	"sync"
	"time"
)

// maxSpansPerTrace bounds one trace's span list: a 10k-candidate cold batch
// would otherwise record tens of thousands of spans. Past the cap, spans
// are counted in Trace.DroppedSpans instead of stored — the histograms
// still see every one of them.
const maxSpansPerTrace = 64

// Span is one timed stage inside a trace. Aggregated spans (N > 1) fold
// many same-stage events into one entry — e.g. every RAM cache hit of a
// batch becomes a single cache_lookup span whose DurNS is the summed lookup
// time across candidates.
type Span struct {
	// Stage names the pipeline stage (the taxonomy in ARCHITECTURE.md):
	// admission, queue_wait, cache_lookup, disk_hit, singleflight_wait,
	// simulate, store_write, encode on a node; split, dispatch, reroute on
	// a router.
	Stage string `json:"stage"`
	// StartNS is the span start as Unix nanoseconds.
	StartNS int64 `json:"start_unix_ns"`
	// DurNS is the span duration (summed across events when N > 1).
	DurNS int64 `json:"dur_ns"`
	// N is how many events the span aggregates (0 or 1: a single event).
	N int `json:"n,omitempty"`
	// Note carries stage-specific detail: the outcome, a node id, an error.
	Note string `json:"note,omitempty"`
}

// Trace is the recorded timeline of one batch at one tier.
type Trace struct {
	// ID is the batch's trace identity, minted by the client (TraceHeader)
	// or by the first tier that saw the batch.
	ID string `json:"id"`
	// Tier is "node" or "router" — the same ID appears once per tier the
	// batch crossed.
	Tier       string `json:"tier"`
	Arch       string `json:"arch,omitempty"`
	Workload   string `json:"workload,omitempty"`
	Candidates int    `json:"candidates,omitempty"`
	StartNS    int64  `json:"start_unix_ns"`
	DurNS      int64  `json:"dur_ns"`
	// Err is the batch-level failure, "" on success.
	Err          string `json:"err,omitempty"`
	Spans        []Span `json:"spans,omitempty"`
	DroppedSpans int    `json:"dropped_spans,omitempty"`
}

// ActiveTrace accumulates spans for one in-flight batch. Span is safe for
// concurrent workers; Finish seals the trace into the ring. A nil
// *ActiveTrace discards everything, so tracing disables without branching.
type ActiveTrace struct {
	mu    sync.Mutex
	t     Trace
	start time.Time
	ring  *TraceRing
}

// StartTrace opens a trace destined for ring (nil ring → nil trace, i.e.
// tracing off).
func StartTrace(ring *TraceRing, id, tier string) *ActiveTrace {
	if ring == nil {
		return nil
	}
	now := time.Now()
	return &ActiveTrace{
		t:     Trace{ID: id, Tier: tier, StartNS: now.UnixNano()},
		start: now,
		ring:  ring,
	}
}

// Describe attaches the batch shape (arch, workload, candidate count).
func (a *ActiveTrace) Describe(arch, workload string, candidates int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.t.Arch, a.t.Workload, a.t.Candidates = arch, workload, candidates
	a.mu.Unlock()
}

// Span records one timed stage (see Span). start is the stage's own start
// time; n aggregates same-stage events (pass 1 for a single event).
func (a *ActiveTrace) Span(stage string, start time.Time, dur time.Duration, n int, note string) {
	if a == nil || (n == 0 && dur == 0) {
		return
	}
	a.mu.Lock()
	if len(a.t.Spans) >= maxSpansPerTrace {
		a.t.DroppedSpans++
	} else {
		a.t.Spans = append(a.t.Spans, Span{
			Stage: stage, StartNS: start.UnixNano(), DurNS: int64(dur), N: n, Note: note,
		})
	}
	a.mu.Unlock()
}

// Finish seals the trace with the batch outcome and publishes it to the
// ring, returning the total batch duration.
func (a *ActiveTrace) Finish(err error) time.Duration {
	if a == nil {
		return 0
	}
	dur := time.Since(a.start)
	a.mu.Lock()
	a.t.DurNS = int64(dur)
	if err != nil {
		a.t.Err = err.Error()
	}
	t := a.t
	a.mu.Unlock()
	a.ring.Add(t)
	return dur
}

// ID returns the trace identity ("" on a nil trace).
func (a *ActiveTrace) ID() string {
	if a == nil {
		return ""
	}
	return a.t.ID
}

// TraceRing is a bounded ring of the most recent traces — the GET
// /v1/traces backing store. A nil ring discards adds and snapshots empty.
type TraceRing struct {
	mu    sync.Mutex
	buf   []Trace
	next  int
	total uint64
}

// NewTraceRing builds a ring holding the last n traces (n <= 0 → nil:
// tracing disabled).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		return nil
	}
	return &TraceRing{buf: make([]Trace, 0, n)}
}

// Add appends a sealed trace, evicting the oldest past capacity.
func (r *TraceRing) Add(t Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Amend appends a span to the most recently added trace with the given ID —
// the hook the HTTP layer uses to attach the response-encode span after the
// batch trace was sealed. A miss (trace already evicted) is a no-op.
func (r *TraceRing) Amend(id string, s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return
	}
	for i := 0; i < len(r.buf); i++ {
		// Walk newest to oldest (when the ring is not yet full, next is 0
		// and the newest entry is len-1 ≡ -1 mod len, so the same index
		// arithmetic covers both regimes).
		j := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		if r.buf[j].ID == id {
			if len(r.buf[j].Spans) < maxSpansPerTrace {
				r.buf[j].Spans = append(r.buf[j].Spans, s)
			} else {
				r.buf[j].DroppedSpans++
			}
			return
		}
	}
}

// Snapshot returns the retained traces, newest first, plus the total number
// of traces ever recorded (so a reader can tell how many scrolled past).
func (r *TraceRing) Snapshot() (traces []Trace, total uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	traces = make([]Trace, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		j := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		t := r.buf[j]
		t.Spans = append([]Span(nil), t.Spans...)
		traces = append(traces, t)
	}
	return traces, r.total
}

// Find returns the retained traces with the given ID, newest first.
func (r *TraceRing) Find(id string) []Trace {
	traces, _ := r.Snapshot()
	out := traces[:0]
	for _, t := range traces {
		if t.ID == id {
			out = append(out, t)
		}
	}
	return out
}
