package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the histogram resolution: bucket b counts values (in
// nanoseconds) whose bit length is b+1, i.e. v in [2^b, 2^(b+1)) — except
// bucket 0, which holds 0 and 1, and the last bucket, which absorbs
// everything at or above 2^(NumBuckets-1) ns (~9 minutes; no span latency
// this system measures legitimately exceeds it).
const NumBuckets = 40

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Observe is wait-free (three atomic adds plus a bounded CAS for the max)
// and safe for any number of concurrent writers and snapshotting readers. A
// nil *Histogram discards observations, so disabled telemetry needs no
// branches at call sites.
//
// The pow2 bucketing is what makes fleet aggregation exact: two histograms
// recorded on different nodes merge by adding their buckets, and any
// quantile of the merged snapshot is the quantile of the combined sample to
// within one bucket's width (a factor of two) — see Snapshot.Quantile for
// the precise bound.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64 // total nanoseconds observed
	max     atomic.Int64 // largest single observation, ns
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns < 2 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketBound returns the exclusive upper bound of bucket b in nanoseconds
// (2^(b+1)); the last bucket is unbounded and reports its inclusive lower
// bound's double like the rest — render it as +Inf when presenting.
func BucketBound(b int) int64 { return int64(1) << uint(b+1) }

// Observe records one duration. Negative durations clamp to zero (the clock
// went backwards; losing the sample would skew counts more than flooring
// it).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot captures a mergeable copy of the histogram. Readers never block
// writers: each counter is read atomically, so a snapshot taken while
// recording is a valid histogram of some interleaving — Count is derived
// from the buckets (never torn against them), while Sum and Max may lag or
// lead the buckets by in-flight observations.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()
	return s
}

// Snapshot is an immutable, mergeable histogram state. The JSON form is the
// /v1/metricsz wire unit routers merge for exact fleet quantiles.
type Snapshot struct {
	Buckets [NumBuckets]uint64 `json:"buckets"`
	Count   uint64             `json:"count"`
	SumNS   int64              `json:"sum_ns"`
	MaxNS   int64              `json:"max_ns"`
}

// Merge folds o into s (element-wise bucket addition — associative and
// commutative, so any fan-in order yields the same fleet histogram).
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// holding the rank-⌈q·Count⌉ sample and interpolating linearly inside it.
// The estimate lands in the same pow2 bucket as the true sample quantile,
// so for true values ≥ 2 ns the estimate is within a factor of two:
// est/true ∈ (1/2, 2] — the bound HistogramQuantileErrorBounds pins.
// Returns 0 on an empty snapshot.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := int64(0)
			if b > 0 {
				lo = int64(1) << uint(b)
			}
			hi := BucketBound(b)
			within := float64(rank-cum) / float64(n)
			est := time.Duration(float64(lo) + float64(hi-lo)*within)
			// The interpolated estimate can overshoot the exactly-tracked max
			// when the top bucket is sparsely filled; no sample exceeds max,
			// so neither should any quantile (this keeps p99 ≤ max in every
			// statusz row and only ever tightens the factor-of-two bound).
			if s.MaxNS > 0 && est > time.Duration(s.MaxNS) {
				est = time.Duration(s.MaxNS)
			}
			return est
		}
		cum += n
	}
	return time.Duration(s.MaxNS)
}

// Mean returns the average observation, 0 when empty.
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}

// Max returns the largest single observation.
func (s Snapshot) Max() time.Duration { return time.Duration(s.MaxNS) }
