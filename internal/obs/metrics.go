package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metrics is a registry of named histograms. Registration (Histogram) takes
// a lock and is meant for setup time — hot paths hold the returned
// *Histogram directly. A nil *Metrics hands out nil histograms, which
// discard observations, so telemetry can be disabled wholesale.
type Metrics struct {
	mu    sync.Mutex
	hists map[string]*Histogram
	order []string
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{hists: make(map[string]*Histogram)}
}

// Histogram returns the histogram registered under (name, labels), creating
// it on first use. name must be a valid Prometheus metric name; labels is
// the pre-rendered label body without braces, e.g.
// `stage="simulate",arch="riscv"` (empty for none) — see Labels.
func (m *Metrics) Histogram(name, labels string) *Histogram {
	if m == nil {
		return nil
	}
	key := name + "{" + labels + "}"
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[key]
	if !ok {
		h = &Histogram{}
		m.hists[key] = h
		m.order = append(m.order, key)
	}
	return h
}

// Labels renders alternating key/value pairs as a Prometheus label body:
// Labels("stage", "simulate", "arch", "riscv") → `stage="simulate",arch="riscv"`.
func Labels(kv ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteString(`"`)
	}
	return b.String()
}

// HistSnapshot is one named histogram state in a MetricsSnapshot.
type HistSnapshot struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Snapshot
}

// Snapshot captures every registered histogram. Registration order is
// preserved so repeated scrapes render stably.
func (m *Metrics) Snapshot() []HistSnapshot {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	keys := append([]string(nil), m.order...)
	hists := make([]*Histogram, len(keys))
	for i, k := range keys {
		hists[i] = m.hists[k]
	}
	m.mu.Unlock()
	out := make([]HistSnapshot, len(keys))
	for i, k := range keys {
		brace := strings.IndexByte(k, '{')
		out[i] = HistSnapshot{
			Name:     k[:brace],
			Labels:   strings.TrimSuffix(k[brace+1:], "}"),
			Snapshot: hists[i].Snapshot(),
		}
	}
	return out
}

// ScalarMetric is one counter or gauge sample.
type ScalarMetric struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// MetricsSnapshot is the complete mergeable telemetry state of one tier —
// the JSON body of GET /v1/metricsz and the unit a router merges across its
// nodes before rendering GET /v1/metrics, which is what makes fleet
// quantiles exact instead of averaged.
type MetricsSnapshot struct {
	Hists    []HistSnapshot `json:"hists,omitempty"`
	Counters []ScalarMetric `json:"counters,omitempty"`
	Gauges   []ScalarMetric `json:"gauges,omitempty"`
}

// Merge folds o into s: histograms and counters with the same (name,
// labels) add (histograms bucket-wise — the exact-quantile merge), gauges
// add too (fleet totals: queue depths, heap bytes), and unmatched series
// append. Merge is associative and commutative over snapshot sets.
func (s *MetricsSnapshot) Merge(o *MetricsSnapshot) {
	if o == nil {
		return
	}
	hidx := make(map[string]int, len(s.Hists))
	for i, h := range s.Hists {
		hidx[h.Name+"{"+h.Labels+"}"] = i
	}
	for _, h := range o.Hists {
		if i, ok := hidx[h.Name+"{"+h.Labels+"}"]; ok {
			s.Hists[i].Snapshot.Merge(h.Snapshot)
		} else {
			hidx[h.Name+"{"+h.Labels+"}"] = len(s.Hists)
			s.Hists = append(s.Hists, h)
		}
	}
	s.Counters = mergeScalars(s.Counters, o.Counters)
	s.Gauges = mergeScalars(s.Gauges, o.Gauges)
}

func mergeScalars(dst, src []ScalarMetric) []ScalarMetric {
	idx := make(map[string]int, len(dst))
	for i, c := range dst {
		idx[c.Name+"{"+c.Labels+"}"] = i
	}
	for _, c := range src {
		if i, ok := idx[c.Name+"{"+c.Labels+"}"]; ok {
			dst[i].Value += c.Value
		} else {
			idx[c.Name+"{"+c.Labels+"}"] = len(dst)
			dst = append(dst, c)
		}
	}
	return dst
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format: counters (…_total convention), gauges, then histograms as
// cumulative le-bucketed series with _sum and _count. Series are sorted by
// (name, labels) within each family so scrapes diff cleanly.
func (s *MetricsSnapshot) WritePrometheus(w io.Writer) {
	writeScalarFamily(w, s.Counters, "counter")
	writeScalarFamily(w, s.Gauges, "gauge")

	hists := append([]HistSnapshot(nil), s.Hists...)
	sort.SliceStable(hists, func(i, j int) bool {
		if hists[i].Name != hists[j].Name {
			return hists[i].Name < hists[j].Name
		}
		return hists[i].Labels < hists[j].Labels
	})
	lastName := ""
	for _, h := range hists {
		if h.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name)
			lastName = h.Name
		}
		var cum uint64
		for b, n := range h.Buckets {
			if n == 0 {
				continue
			}
			cum += n
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n",
				h.Name, labelPrefix(h.Labels), formatSeconds(BucketBound(b)), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.Name, labelPrefix(h.Labels), h.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, braced(h.Labels), formatSeconds(h.SumNS))
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, braced(h.Labels), h.Count)
	}
}

func writeScalarFamily(w io.Writer, series []ScalarMetric, typ string) {
	series = append([]ScalarMetric(nil), series...)
	sort.SliceStable(series, func(i, j int) bool {
		if series[i].Name != series[j].Name {
			return series[i].Name < series[j].Name
		}
		return series[i].Labels < series[j].Labels
	})
	lastName := ""
	for _, c := range series {
		if c.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s %s\n", c.Name, typ)
			lastName = c.Name
		}
		fmt.Fprintf(w, "%s%s %s\n", c.Name, braced(c.Labels), strconv.FormatFloat(c.Value, 'g', -1, 64))
	}
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// braced wraps a non-empty label body in braces (empty label sets render as
// bare metric names — `{}` is not part of the exposition grammar).
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatSeconds renders nanoseconds as seconds with full precision.
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// RuntimeGauges samples process-level gauges (goroutines, heap) for a
// metrics snapshot.
func RuntimeGauges() []ScalarMetric {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []ScalarMetric{
		{Name: "simtune_goroutines", Value: float64(runtime.NumGoroutine())},
		{Name: "simtune_heap_alloc_bytes", Value: float64(ms.HeapAlloc)},
		{Name: "simtune_heap_sys_bytes", Value: float64(ms.HeapSys)},
	}
}
