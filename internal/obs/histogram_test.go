package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketOf pins the bucket boundaries the merge/quantile math
// depends on.
func TestHistogramBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {int64(1) << 45, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many goroutines
// (run under -race in CI): no observation may be lost and the counters must
// reconcile exactly once the writers stop.
func TestHistogramConcurrentRecord(t *testing.T) {
	const writers, perWriter = 8, 5000
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(rng.Int63n(1 << 30)))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count %d, want %d", s.Count, writers*perWriter)
	}
	var bucketSum uint64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if s.MaxNS <= 0 || s.SumNS < s.MaxNS {
		t.Fatalf("implausible sum=%d max=%d", s.SumNS, s.MaxNS)
	}
}

// TestHistogramMergeAssociativity: merging snapshots must be associative
// and commutative — the property that lets a router fold node snapshots in
// any fan-in order and still report exact fleet quantiles.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() Snapshot {
		h := &Histogram{}
		for i := 0; i < 500; i++ {
			h.Observe(time.Duration(rng.Int63n(1 << 35)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()

	ab := a
	ab.Merge(b)
	abc1 := ab
	abc1.Merge(c)

	bc := b
	bc.Merge(c)
	abc2 := a
	abc2.Merge(bc)

	cb := c
	cb.Merge(b)
	abc3 := cb
	abc3.Merge(a)

	for name, got := range map[string]Snapshot{"a(bc)": abc2, "(cb)a": abc3} {
		if got != abc1 {
			t.Fatalf("merge not associative/commutative: (ab)c=%+v %s=%+v", abc1, name, got)
		}
	}
	if abc1.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d, want %d", abc1.Count, a.Count+b.Count+c.Count)
	}
}

// TestHistogramQuantileErrorBounds checks the documented factor-of-two
// bound against a sorted reference on adversarial distributions: constant,
// bimodal with extreme separation, geometric (every bucket hit), heavy
// tail, and bucket-boundary values.
func TestHistogramQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dists := map[string][]int64{
		"constant":  repeat(4096, 10000),
		"boundary":  repeat(1<<20, 777), // exact pow2: lands on a bucket edge
		"two-point": append(repeat(3, 5000), repeat(int64(1)<<33, 5000)...),
		"geometric": func() []int64 {
			var v []int64
			for b := 1; b < 36; b++ {
				for i := 0; i < 64; i++ {
					v = append(v, (int64(1)<<b)+rng.Int63n(int64(1)<<b))
				}
			}
			return v
		}(),
		"heavy-tail": func() []int64 {
			var v []int64
			for i := 0; i < 9990; i++ {
				v = append(v, 100+rng.Int63n(900))
			}
			for i := 0; i < 10; i++ {
				v = append(v, int64(1)<<30)
			}
			return v
		}(),
	}
	for name, vals := range dists {
		h := &Histogram{}
		for _, v := range vals {
			h.Observe(time.Duration(v))
		}
		s := h.Snapshot()
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
			rank := int(q * float64(len(sorted)))
			if rank < 1 {
				rank = 1
			}
			truth := sorted[rank-1]
			est := int64(s.Quantile(q))
			if truth >= 2 {
				ratio := float64(est) / float64(truth)
				if ratio <= 0.5 || ratio > 2.0 {
					t.Errorf("%s q=%v: est %d vs true %d (ratio %.3f outside (1/2, 2])",
						name, q, est, truth, ratio)
				}
			} else if est > 2 {
				t.Errorf("%s q=%v: est %d for true %d (sub-2ns bucket)", name, q, est, truth)
			}
		}
		if got := int64(s.Max()); got != sorted[len(sorted)-1] {
			t.Errorf("%s: max %d, want %d (max is tracked exactly)", name, got, sorted[len(sorted)-1])
		}
	}
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestHistogramSnapshotWhileRecording: snapshots taken under concurrent
// writes must be internally consistent (Count equals the bucket sum — never
// torn against the buckets) and monotone between reads.
func TestHistogramSnapshotWhileRecording(t *testing.T) {
	h := &Histogram{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(time.Duration(rng.Int63n(1 << 25)))
				}
			}
		}(int64(w))
	}
	var prev Snapshot
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var bucketSum uint64
		for _, n := range s.Buckets {
			bucketSum += n
		}
		if bucketSum != s.Count {
			t.Fatalf("snapshot %d torn: bucket sum %d != count %d", i, bucketSum, s.Count)
		}
		if s.Count < prev.Count {
			t.Fatalf("snapshot %d count went backwards: %d -> %d", i, prev.Count, s.Count)
		}
		for b := range s.Buckets {
			if s.Buckets[b] < prev.Buckets[b] {
				t.Fatalf("snapshot %d bucket %d went backwards: %d -> %d",
					i, b, prev.Buckets[b], s.Buckets[b])
			}
		}
		if s.Count > 0 {
			if q := s.Quantile(0.99); q <= 0 || int64(q) > BucketBound(NumBuckets-1) {
				t.Fatalf("snapshot %d: implausible p99 %v", i, q)
			}
		}
		prev = s
	}
	close(stop)
	wg.Wait()
}

// TestNilHistogramIsDisabled: the nil receivers must be safe — they are the
// telemetry-off mode.
func TestNilHistogramIsDisabled(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot %+v", s)
	}
	var m *Metrics
	if got := m.Histogram("x", ""); got != nil {
		t.Fatalf("nil metrics handed out %v", got)
	}
	if got := m.Snapshot(); got != nil {
		t.Fatalf("nil metrics snapshot %v", got)
	}
}

// TestQuantileEdgeCases covers empty and single-sample snapshots.
func TestQuantileEdgeCases(t *testing.T) {
	var s Snapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
	h := &Histogram{}
	h.Observe(1500)
	one := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := int64(one.Quantile(q))
		if got < 1024 || got > 2048 {
			t.Fatalf("q=%v: %d outside the sample's bucket [1024,2048]", q, got)
		}
	}
}
