package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRingBoundedNewestFirst(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Trace{ID: string(rune('a' + i))})
	}
	traces, total := r.Snapshot()
	if total != 5 {
		t.Fatalf("total %d, want 5", total)
	}
	var ids []string
	for _, tr := range traces {
		ids = append(ids, tr.ID)
	}
	if got := strings.Join(ids, ""); got != "edc" {
		t.Fatalf("snapshot order %q, want newest-first edc", got)
	}
	if found := r.Find("a"); len(found) != 0 {
		t.Fatalf("evicted trace still findable: %v", found)
	}
	if found := r.Find("d"); len(found) != 1 {
		t.Fatalf("retained trace not found: %v", found)
	}
}

func TestActiveTraceSpansAndCap(t *testing.T) {
	ring := NewTraceRing(4)
	at := StartTrace(ring, "t1", "node")
	at.Describe("riscv", "conv_group/tiny/1", 9)
	start := time.Now()
	for i := 0; i < maxSpansPerTrace+10; i++ {
		at.Span("simulate", start, time.Millisecond, 1, "")
	}
	at.Span("skipped", start, 0, 0, "") // zero span: dropped silently
	if d := at.Finish(errors.New("boom")); d <= 0 {
		t.Fatalf("finish duration %v", d)
	}
	got := ring.Find("t1")
	if len(got) != 1 {
		t.Fatalf("want 1 trace, got %d", len(got))
	}
	tr := got[0]
	if tr.Err != "boom" || tr.Arch != "riscv" || tr.Candidates != 9 || tr.Tier != "node" {
		t.Fatalf("trace fields wrong: %+v", tr)
	}
	if len(tr.Spans) != maxSpansPerTrace || tr.DroppedSpans != 10 {
		t.Fatalf("span cap: %d spans, %d dropped", len(tr.Spans), tr.DroppedSpans)
	}

	// Amend attaches a post-seal span (the encode stage) to the newest
	// trace with the ID; the cap still applies.
	ring.Add(Trace{ID: "t2"})
	ring.Amend("t2", Span{Stage: "encode", DurNS: 42})
	t2 := ring.Find("t2")[0]
	if len(t2.Spans) != 1 || t2.Spans[0].Stage != "encode" {
		t.Fatalf("amend failed: %+v", t2)
	}
	ring.Amend("gone", Span{Stage: "encode"}) // miss: no-op, no panic
}

func TestNilTraceRingAndActiveTrace(t *testing.T) {
	var r *TraceRing
	r.Add(Trace{ID: "x"})
	r.Amend("x", Span{})
	if traces, total := r.Snapshot(); traces != nil || total != 0 {
		t.Fatal("nil ring must snapshot empty")
	}
	at := StartTrace(nil, "x", "node") // nil ring → nil trace
	if at != nil {
		t.Fatal("StartTrace(nil ring) must return nil")
	}
	at.Describe("a", "b", 1)
	at.Span("s", time.Now(), time.Second, 1, "")
	if at.Finish(nil) != 0 || at.ID() != "" {
		t.Fatal("nil ActiveTrace must be inert")
	}
}

func TestActiveTraceConcurrentSpans(t *testing.T) {
	ring := NewTraceRing(1)
	at := StartTrace(ring, "conc", "node")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				at.Span("simulate", time.Now(), time.Microsecond, 1, "")
			}
		}()
	}
	wg.Wait()
	at.Finish(nil)
	tr := ring.Find("conc")[0]
	if len(tr.Spans)+tr.DroppedSpans != 800 {
		t.Fatalf("spans %d + dropped %d != 800", len(tr.Spans), tr.DroppedSpans)
	}
}

func TestTraceContextPropagation(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("fresh context must carry no trace")
	}
	ctx2, id := EnsureTrace(ctx)
	if id == "" || TraceID(ctx2) != id {
		t.Fatalf("EnsureTrace minted %q", id)
	}
	ctx3, id2 := EnsureTrace(ctx2)
	if id2 != id || ctx3 != ctx2 {
		t.Fatal("EnsureTrace must be idempotent")
	}
	if a, b := NewTraceID(), NewTraceID(); a == b || len(a) != 16 {
		t.Fatalf("trace ids not unique/16-hex: %q %q", a, b)
	}
}

func TestGoroutineSentinel(t *testing.T) {
	g := NewGoroutineSentinel()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); <-stop }()
	}
	if g.Excess() < 5 {
		t.Fatalf("excess %d, want >= 5", g.Excess())
	}
	if err := g.WaitSettled(0, 50*time.Millisecond); err == nil {
		t.Fatal("WaitSettled must fail while the goroutines run")
	} else if !strings.Contains(err.Error(), "goroutine leak") {
		t.Fatalf("error %v lacks the stack dump framing", err)
	}
	close(stop)
	wg.Wait()
	if err := g.WaitSettled(0, 5*time.Second); err != nil {
		t.Fatalf("settled sentinel still failing: %v", err)
	}
}
