package obs

import (
	"fmt"
	"runtime"
	"time"
)

// NumGoroutine reports the current goroutine count — re-exported so
// telemetry consumers (gauges, tests) need no direct runtime import.
func NumGoroutine() int { return runtime.NumGoroutine() }

// GoroutineSentinel is the shared leak check: record a baseline before
// starting work, then assert the count settled back afterwards. It replaces
// the ad-hoc NumGoroutine polling loops the chaos and drain suites grew
// independently.
type GoroutineSentinel struct {
	base int
}

// NewGoroutineSentinel snapshots the current goroutine count as baseline.
func NewGoroutineSentinel() *GoroutineSentinel {
	return &GoroutineSentinel{base: runtime.NumGoroutine()}
}

// Base returns the baseline count.
func (g *GoroutineSentinel) Base() int { return g.base }

// Excess returns how many goroutines run above baseline (can be negative).
func (g *GoroutineSentinel) Excess() int { return runtime.NumGoroutine() - g.base }

// WaitSettled polls until the goroutine count is within tolerance of the
// baseline or timeout elapses; on timeout it returns an error carrying a
// full stack dump of every goroutine, so the leaked one is named in the
// failure instead of needing a re-run under a debugger.
func (g *GoroutineSentinel) WaitSettled(tolerance int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= g.base+tolerance {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			return fmt.Errorf("goroutine leak: %d running, baseline %d (tolerance %d)\n%s",
				n, g.base, tolerance, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
