// Package obs is the telemetry layer of the simulate service: lock-free
// latency histograms with exactly-mergeable snapshots, per-batch trace
// recording with a bounded in-memory ring, Prometheus text rendering, and
// small operational helpers (goroutine-leak sentinel).
//
// Design constraints, in order:
//
//   - The hot path may not take locks or allocate. Histogram.Observe is a
//     handful of atomic adds; trace spans are recorded per batch (and per
//     cold event), never per cache hit.
//   - Fleet quantiles must be exact, not averaged. Histograms bucket by
//     powers of two, so two nodes' snapshots merge by element-wise addition
//     and the merged p99 is the p99 of the combined sample — averaging
//     per-node p99s (the common mistake) can be wrong by the full spread of
//     the fleet.
//   - Everything is nil-safe: a nil *Histogram, *Metrics or *TraceRing is a
//     disabled one, so telemetry can be switched off without branching at
//     every call site.
//
// Trace identity travels in a context value (WithTrace / TraceID) inside a
// process and as the TraceHeader HTTP header across it, so one batch keeps
// one identity from the tuning client through a router hop (including
// retry/reroute hops) to the node that simulates it.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceHeader is the HTTP header that carries a batch's trace ID across
// process boundaries: the client stamps it on /v1/simulate requests, the
// router forwards it to the owning nodes, and every tier records its spans
// under the same ID.
const TraceHeader = "X-Simtune-Trace"

type traceKey struct{}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the context's trace ID, or "" when none was attached.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// EnsureTrace returns the context unchanged when it already carries a trace
// ID, and otherwise attaches a fresh one — the client-side entry point that
// mints a batch's identity exactly once.
func EnsureTrace(ctx context.Context) (context.Context, string) {
	if id := TraceID(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTrace(ctx, id), id
}

// NewTraceID mints a 16-hex-char random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a constant
		// here only degrades trace grouping, never correctness.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
