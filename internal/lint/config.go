package lint

// DefaultAnalyzers returns the suite configured for this repository: the
// invariants below were each introduced by a specific PR (see
// ARCHITECTURE.md "Static analysis & enforced invariants") and are now
// compile-time facts every future PR inherits.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		AtomicMix(),
		HotPath(HotPathConfig{
			Roots: []HotRoot{
				// Simulator inner loops (PR 1/PR 4): single-goroutine by
				// design, so locks are banned along with clocks and
				// formatting. Execute covers the whole block-aggregated
				// replay; the Hierarchy methods are the per-event entry
				// points the sim/hw sinks drive.
				{Name: "repro/internal/lower.Execute", NoLock: true},
				{Name: "repro/internal/lower.ExecutePerInstruction", NoLock: true},
				{Name: "repro/internal/cache.Hierarchy.DataRun", NoLock: true},
				{Name: "repro/internal/cache.Hierarchy.TryDataRunResident", NoLock: true},
				{Name: "repro/internal/cache.Hierarchy.Data", NoLock: true},
				{Name: "repro/internal/cache.Hierarchy.Fetch", NoLock: true},
				// Cache-hit serve path (PR 2/PR 7): ~490k cand/s; one
				// batched mutex is the design, so locks are allowed, but
				// clock reads must stay behind nil telemetry guards and
				// formatting/JSON stay off the path entirely. The ARC
				// eviction bookkeeping (PR 9) rides the same mutex and
				// times itself behind the same nil guard — a compound
				// `tm != nil && evicted > 0` condition still waives the
				// clock read (pinned by the hotmod want-corpus).
				{Name: "repro/internal/service.resultCache.do"},
				{Name: "repro/internal/service.resultCache.doTimed"},
				// Load-generator schedule path (PR 10): the offered-load
				// trace must be a pure function of the seed, so the plan
				// builder and the pacing loop ban clocks, formatting and
				// JSON outright. pace's clock/sleep/dispatch seams are
				// injected function values — outside the provable call
				// graph by construction, which is the point: nothing the
				// loop itself does can read a clock.
				{Name: "repro/internal/loadgen.BuildPlan", NoLock: true},
				{Name: "repro/internal/loadgen.pace", NoLock: true},
			},
			Stops: []string{
				// The durable store is the disk tier: a RAM miss that
				// falls through to Store.Get pays disk+JSON by contract
				// (PR 5), so the RAM-hit invariant stops at its boundary.
				"repro/internal/service.Store.Get",
			},
		}),
		ErrTaxonomy(ErrTaxonomyConfig{
			WirePackages: []string{"repro/internal/service"},
		}),
		SleepSeam(SleepSeamConfig{
			Packages:     []string{"repro/internal/service"},
			AllowInTests: true,
		}),
		LockOrder(LockOrderConfig{
			OrderPairs: []OrderPair{
				// PR 6 drain gate: Server.Simulate takes drainMu.RLock,
				// checks draining, then inflight.Add — in that order, or
				// Shutdown can miss the batch.
				{Mutex: "drainMu", Add: "inflight"},
			},
			Blocking: []string{
				"time.Sleep",
				"net/http.Client.Do",
				"net/http.Client.Get",
				"net/http.Client.Post",
				"net/http.Client.PostForm",
				"net/http.Client.Head",
				"net/http.RoundTripper.RoundTrip",
				"os.File.Sync",
				"os/exec.Cmd.Run",
				"os/exec.Cmd.Wait",
				"os/exec.Cmd.Output",
				"os/exec.Cmd.CombinedOutput",
				// Module-local blocking surfaces: fsync/close on the
				// store's file seam, and the store barriers themselves.
				"repro/internal/service.StoreFile.Sync",
				"repro/internal/service.StoreFile.Close",
				"repro/internal/service.Store.Flush",
				"repro/internal/service.Store.Compact",
			},
		}),
	}
}
