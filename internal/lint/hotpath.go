package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathConfig names the hot-path roots and the seams where reachability
// stops. Function IDs are "pkgpath.Func" or "pkgpath.Recv.Method" (pointer
// receivers stripped).
type HotPathConfig struct {
	// Roots are the entry points of hot regions. Everything statically
	// reachable from a root (direct calls and concrete method calls; calls
	// through function values and interfaces are invisible, which is what
	// makes seams like runner.Runner cheap escape hatches) inherits the
	// root's purity class.
	Roots []HotRoot
	// Stops are treated as opaque: not descended into and not checked.
	// They mark deliberate tier boundaries — e.g. the durable store's Get
	// is disk-side, not part of the RAM hit path.
	Stops []string
}

// HotRoot is one hot-path entry point. NoLock additionally bans mutex
// acquisition (the simulator inner loops are single-goroutine by design;
// the serve hit path batches exactly one lock, so it opts out).
type HotRoot struct {
	Name   string
	NoLock bool
}

// bannedCalls maps callee IDs to the invariant they break on a hot path.
var bannedCalls = map[string]string{
	"time.Now":   "clock read",
	"time.Since": "clock read",
	"time.After": "clock read (and timer allocation)",
	"time.Tick":  "clock read (and leaked ticker)",

	"fmt.Sprintf":  "string formatting",
	"fmt.Sprint":   "string formatting",
	"fmt.Sprintln": "string formatting",
	"fmt.Errorf":   "error formatting",
	"fmt.Fprintf":  "formatted I/O",
	"fmt.Fprint":   "formatted I/O",
	"fmt.Fprintln": "formatted I/O",
	"fmt.Printf":   "formatted I/O",
	"fmt.Println":  "formatted I/O",
}

var lockCalls = map[string]bool{
	"sync.Mutex.Lock":    true,
	"sync.RWMutex.Lock":  true,
	"sync.RWMutex.RLock": true,
}

// hotViolation is one banned call recorded during Collect, adjudicated in
// Finish once reachability is known.
type hotViolation struct {
	pos      token.Pos
	fset     int // index into pkgs, to recover the right Pass for reporting
	callee   string
	kind     string
	isLock   bool
	nilGuard bool // enclosed in an `if x != nil` arm: the telemetry pattern
}

// HotPath reports impurities in functions reachable from the configured hot
// roots: clock reads, string/error formatting, anything in encoding/json,
// and (for NoLock roots) mutex acquisition. The simulator inner loops and
// the cache-hit serve path are the money paths — at 498M instr/s and 490k
// cand/s respectively, one stray time.Now or Sprintf per candidate is a
// measurable regression, and runtime benchmarks only catch it after the
// fact.
//
// Clock reads guarded by a nil check (`if tm != nil { tm.x = time.Since(t0) }`)
// are deliberate non-findings: that is the telemetry-handle pattern from
// PR 7 — the telemetry-off path takes zero clock reads, which is exactly
// what the invariant protects.
func HotPath(cfg HotPathConfig) *Analyzer {
	stops := map[string]bool{}
	for _, s := range cfg.Stops {
		stops[s] = true
	}

	edges := map[string][]string{}       // funcID -> static callees
	viols := map[string][]hotViolation{} // funcID -> banned calls inside it
	passes := map[string]*Pass{}         // funcID -> pass that owns it (for reporting)
	defPos := map[string]token.Pos{}     // funcID -> decl position

	a := &Analyzer{
		Name: "hotpath",
		Doc:  "hot-path functions must not read the clock, format, touch json, or lock",
	}
	a.Collect = func(p *Pass) {
		info := p.Pkg.Info
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				id := declFuncID(p, fd)
				if id == "" {
					continue
				}
				if _, seen := defPos[id]; seen {
					continue // augmented + xtest flavors can both see a decl
				}
				defPos[id] = fd.Pos()
				passes[id] = p
				inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn, callee := calleeOf(info, call)
					if fn == nil {
						return true
					}
					edges[id] = append(edges[id], callee)
					kind, banned := bannedCalls[callee]
					if !banned && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/json" {
						kind, banned = "JSON encode/decode", true
					}
					isLock := lockCalls[callee]
					if !banned && !isLock {
						return true
					}
					if underPanic(stack) {
						// panic(fmt.Sprintf(...)) is a terminal path: the
						// formatting happens once, right before the process
						// (or test) dies — not per-instruction.
						return true
					}
					viols[id] = append(viols[id], hotViolation{
						pos:      call.Pos(),
						callee:   callee,
						kind:     kind,
						isLock:   isLock,
						nilGuard: underNilGuard(stack),
					})
					return true
				})
			}
		}
	}
	a.Finish = func(p *Pass) {
		for _, root := range cfg.Roots {
			// BFS from the root, keeping one shortest call chain for the
			// diagnostic.
			parent := map[string]string{root.Name: ""}
			queue := []string{root.Name}
			for len(queue) > 0 {
				id := queue[0]
				queue = queue[1:]
				for _, v := range viols[id] {
					if v.isLock && !root.NoLock {
						continue
					}
					if !v.isLock && v.nilGuard && strings.HasPrefix(v.kind, "clock") {
						continue // telemetry-handle pattern
					}
					kind := v.kind
					if v.isLock {
						kind = "lock acquisition"
					}
					op := passes[id]
					op.report(Diagnostic{
						Pos: op.Pkg.Fset.Position(v.pos),
						Message: v.callee + ": " + kind + " on the hot path (reachable from " +
							root.Name + chainSuffix(parent, id) + ")",
					})
				}
				for _, callee := range edges[id] {
					if stops[callee] {
						continue
					}
					if _, seen := parent[callee]; seen {
						continue
					}
					if _, inModule := edges[callee]; !inModule && len(viols[callee]) == 0 {
						continue // opaque: stdlib or undeclared
					}
					parent[callee] = id
					queue = append(queue, callee)
				}
			}
		}
	}
	return a
}

// declFuncID is funcID for a declaration site.
func declFuncID(p *Pass, fd *ast.FuncDecl) string {
	if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return funcID(fn)
	}
	return ""
}

// underNilGuard reports whether the node stack passes through the body of
// an if whose condition contains an `x != nil` comparison — the nil-safe
// telemetry-handle idiom.
func underNilGuard(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		hasNilCheck := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if b, ok := n.(*ast.BinaryExpr); ok && b.Op.String() == "!=" {
				if isNilIdent(b.X) || isNilIdent(b.Y) {
					hasNilCheck = true
				}
			}
			return true
		})
		if hasNilCheck {
			return true
		}
	}
	return false
}

// underPanic reports whether the node stack passes through the argument
// list of a builtin panic call.
func underPanic(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// chainSuffix renders " via a -> b" for the BFS parent chain ending at id
// (empty when id is the root itself).
func chainSuffix(parent map[string]string, id string) string {
	var hops []string
	for cur := id; parent[cur] != ""; cur = parent[cur] {
		hops = append(hops, shortFuncID(cur))
	}
	if len(hops) == 0 {
		return ""
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return " via " + strings.Join(hops, " -> ")
}

// shortFuncID trims the package path to its last element.
func shortFuncID(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}
