module hotmod

go 1.21
