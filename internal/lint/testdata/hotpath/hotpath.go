// Package hotmod is the want-corpus for the hotpath analyzer. The test
// config declares Inner a NoLock hot root, Serve a lock-tolerant hot root,
// and Disk a stop (an opaque tier boundary).
package hotmod

import (
	"fmt"
	"sync"
	"time"
)

var mu sync.Mutex

// Inner is the simulator-inner-loop stand-in: NoLock root.
func Inner(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += step(i)
	}
	_ = time.Now() // want "clock read"
	lockStep()
	return s
}

func step(i int) int {
	if i < 0 {
		// Terminal path: the formatting happens once, right before the
		// process dies — deliberate non-finding.
		panic(fmt.Sprintf("negative index %d", i))
	}
	return helper(i)
}

func helper(i int) int {
	_ = fmt.Sprintf("%d", i) // want "string formatting"
	return i
}

func lockStep() {
	mu.Lock() // want "lock acquisition"
	mu.Unlock()
}

// timings is the nil-safe telemetry handle from the serve path: a nil
// handle means telemetry off, and the off path takes zero clock reads.
type timings struct{ d, evict time.Duration }

// Serve is the cache-hit serve-path stand-in: hot, but its one batched
// lock is sanctioned (NoLock=false). The eviction branch mirrors the ARC
// bookkeeping on the real serve path: the clock read is waived because the
// enclosing condition carries the nil guard, even compounded with the
// did-anything-evict check.
func Serve(tm *timings) int {
	var t0 time.Time
	if tm != nil {
		t0 = time.Now() // nil-guarded telemetry read: no finding
	}
	v := lookup()
	if ev := evictExcess(); tm != nil && ev > 0 {
		tm.evict = time.Since(t0) // nil-guarded eviction bookkeeping: no finding
	}
	if tm != nil {
		tm.d = time.Since(t0) // nil-guarded telemetry read: no finding
	}
	return v
}

// evictExcess is the eviction stand-in: pointer surgery only — no clocks,
// no formatting — so it contributes nothing the analyzer should flag.
func evictExcess() int {
	return 0
}

func lookup() int {
	mu.Lock() // the serve path batches exactly one lock: no finding
	defer mu.Unlock()
	return Disk()
}

// Disk is configured as a stop: disk-side code is a different tier, so its
// clock read is not a hot-path finding.
func Disk() int {
	_ = time.Now()
	return 1
}
