module lockmod

go 1.21
