// Package lockmod is the want-corpus for the lockorder analyzer. The test
// config pairs gateMu with inflight (the drain-gate ordering) and lists
// time.Sleep as blocking.
package lockmod

import (
	"sync"
	"time"
)

type server struct {
	gateMu   sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	mu sync.Mutex
}

// admitBad joins the in-flight set without consulting the drain gate: the
// gate can flip between the caller's check and this Add.
func (s *server) admitBad() {
	s.inflight.Add(1) // want "without holding"
}

// admitGood is the admit shape from the service tier: the early-exit
// RUnlock inside the draining branch releases only that path, so the Add
// below still runs under the read lock — a deliberate non-finding.
func (s *server) admitGood() bool {
	s.gateMu.RLock()
	if s.draining {
		s.gateMu.RUnlock()
		return false
	}
	s.inflight.Add(1) // gate held on the fall-through path: no finding
	s.gateMu.RUnlock()
	return true
}

// admitReleased releases the gate before the Add — held-then-released is
// exactly as racy as never-held.
func (s *server) admitReleased() {
	s.gateMu.RLock()
	s.gateMu.RUnlock()
	s.inflight.Add(1) // want "without holding"
}

func (s *server) slowUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking"
	s.mu.Unlock()
}

func (s *server) slowUnderDeferredLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "blocking"
}

func (s *server) slowOutsideLock() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // lock already released: no finding
}
