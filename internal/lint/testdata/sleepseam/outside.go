// Package sleepmod sits outside the configured scope (sleepmod/svc), so a
// direct sleep here is not a finding — the ban is a service-tier invariant,
// not a module-wide style rule.
package sleepmod

import "time"

func warmup() {
	time.Sleep(time.Millisecond)
}
