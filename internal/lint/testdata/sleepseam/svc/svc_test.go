package svc

import (
	"testing"
	"time"
)

// Test polling helpers sleep on purpose; AllowInTests exempts _test.go
// files, so this is a deliberate non-finding.
func TestSleepAllowed(t *testing.T) {
	time.Sleep(time.Millisecond)
}
