// Package svc is the want-corpus for the sleepseam analyzer: the test
// config scopes the time.Sleep ban to sleepmod/svc with AllowInTests set.
package svc

import "time"

func backoff() {
	time.Sleep(10 * time.Millisecond) // want "injectable sleep seam"
}

// pause is the sanctioned shape: a context-free wait threaded through a
// seam the caller injects. Calling the seam is fine; time.Sleep is not.
func pause(sleep func(time.Duration)) {
	sleep(10 * time.Millisecond) // seam call, not time.Sleep: no finding
}
