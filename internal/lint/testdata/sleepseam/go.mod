module sleepmod

go 1.21
