// Package wire is the wire-boundary half of the errtaxonomy corpus: the
// test config lists errmod/wire as a wire package, so http.Error and
// non-nil sentinel comparisons are findings here.
package wire

import (
	"errors"
	"io"
	"net/http"
)

func handle(w http.ResponseWriter, err error) {
	if err == io.EOF { // want "errors.Is"
		http.Error(w, "eof", http.StatusInternalServerError) // want "writeError"
		return
	}
	if errors.Is(err, io.ErrUnexpectedEOF) { // classification via errors.Is: no finding
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	if err != nil { // nil comparison is the one sanctioned equality: no finding
		w.WriteHeader(http.StatusTeapot)
	}
}
