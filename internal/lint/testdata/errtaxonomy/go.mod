module errmod

go 1.21
