// Package errmod is the want-corpus for the errtaxonomy analyzer. The
// module-wide rule (no type assertions on errors) applies here; the wire
// rules apply in the wire subpackage only.
package errmod

import "io"

type myErr struct{ msg string }

func (e *myErr) Error() string { return e.msg }

// Is implements the errors.Is protocol: asserting on target is the point,
// so this shape is the sanctioned exemption — no finding.
func (e *myErr) Is(target error) bool {
	_, ok := target.(*myErr)
	return ok
}

func classify(err error) bool {
	_, ok := err.(*myErr) // want "errors.As"
	return ok
}

func classifySwitch(err error) string {
	switch err.(type) { // want "errors.As"
	case *myErr:
		return "mine"
	default:
		return "other"
	}
}

// Outside a wire package, sentinel comparison is merely discouraged, not a
// finding — the wire rule is scoped to packages that classify for the wire.
func sentinelOutsideWire(err error) bool {
	return err == io.EOF
}
