// Package atomicmix is the want-corpus for the atomicmix analyzer: variables
// accessed through sync/atomic must never be accessed plainly.
package atomicmix

import "sync/atomic"

// counters mirrors the statusz ledger shape: hits is atomic everywhere,
// plain is never atomic, and torn mixes the two (the bug).
type counters struct {
	hits  int64
	plain int64
	torn  int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.torn, 1)
}

func (c *counters) loadOK() int64 {
	return atomic.LoadInt64(&c.hits) // sanctioned: through sync/atomic
}

func (c *counters) snapshot() int64 {
	return c.torn // want "plain access"
}

func (c *counters) reset() {
	c.torn = 0 // want "plain access"
}

func (c *counters) plainOnly() int64 {
	c.plain++ // never atomic anywhere: no finding
	return c.plain
}

// gate mirrors the liveness-exception admit from the service queue: a CAS
// loop over a typed atomic admits an oversized batch when nothing else is
// running. Typed atomics are safe by construction — zero findings here.
type gate struct {
	max int64
	cur atomic.Int64
}

func (g *gate) tryAcquire(n int) bool {
	for {
		cur := g.cur.Load()
		if cur > 0 && cur+int64(n) > g.max {
			return false
		}
		if g.cur.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

func (g *gate) release(n int) { g.cur.Add(int64(-n)) }
