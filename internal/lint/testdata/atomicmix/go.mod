module atomicmix

go 1.21
