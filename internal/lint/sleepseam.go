package lint

import (
	"go/ast"
	"strings"
)

// SleepSeamConfig scopes the time.Sleep ban.
type SleepSeamConfig struct {
	// Packages are import-path prefixes where direct time.Sleep calls are
	// banned (internal/service).
	Packages []string
	// AllowInTests exempts _test.go files: test polling helpers (waitFor)
	// sleep on purpose, and a test sleeping cannot stall production
	// backoff. Production code must use the injectable seam.
	AllowInTests bool
}

// SleepSeam bans direct time.Sleep in the service tier. PR 6 added the
// injectable sleep seam (ServiceRunner.sleep / the pause method) exactly so
// retry pacing is assertable without wall-clock waits and so a server-side
// Retry-After can floor the delay; a raw time.Sleep bypasses both, cannot
// be canceled by the batch context, and turns every new wait into a flaky
// multi-second test. New waiting code must either take a context-aware
// select on time.After behind the seam, or thread the seam through.
func SleepSeam(cfg SleepSeamConfig) *Analyzer {
	inScope := func(path string) bool {
		path = strings.TrimSuffix(path, "_test")
		for _, p := range cfg.Packages {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
	a := &Analyzer{
		Name: "sleepseam",
		Doc:  "direct time.Sleep is banned in internal/service; use the injectable sleep seam",
	}
	a.Run = func(p *Pass) {
		if !inScope(p.Pkg.Path) {
			return
		}
		for _, f := range p.Pkg.Files {
			if cfg.AllowInTests && p.Pkg.TestFile[f] {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, id := calleeOf(p.Pkg.Info, call); id == "time.Sleep" {
					p.Reportf(call.Pos(), "direct time.Sleep in the service tier; use the injectable sleep seam (ServiceRunner.pause) so waits are testable and context-cancelable")
				}
				return true
			})
		}
	}
	return a
}
