package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AtomicMix reports mixed atomic/plain access: any variable (struct field,
// package-level var or local) whose address is ever passed to a sync/atomic
// function must be accessed through sync/atomic everywhere. A plain read
// races with the atomic writers — even in tests, where it "usually works"
// until the scheduler disagrees — and a plain write silently discards the
// atomicity the rest of the code pays for. The statusz counter ledgers
// (hits+misses+canceled == candidates) are the motivating corpus: one plain
// snapshot read can report a torn total that no runtime test reliably
// catches.
//
// The typed atomics (atomic.Uint64 and friends) enforce this by
// construction, which is why the service tier uses them; this analyzer
// closes the gap for the function-based API. Collect runs over every
// package first, so a field made atomic in one package is protected in all
// of them.
func AtomicMix() *Analyzer {
	type siteInfo struct {
		pos  token.Position // one atomic-access site, for the message
		name string
	}
	atomicVars := map[string]siteInfo{} // varID -> first atomic site

	// varID identifies a variable stably across the per-flavor type checks:
	// the file position of its declaring identifier.
	varID := func(fset *token.FileSet, v *types.Var) string {
		p := fset.Position(v.Pos())
		return p.Filename + ":" + strconv.Itoa(p.Offset)
	}

	// atomicArg returns the variable whose address is taken by the first
	// argument of a sync/atomic call, if the call is one.
	atomicArg := func(info *types.Info, call *ast.CallExpr) *types.Var {
		fn, _ := calleeOf(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return nil
		}
		if len(call.Args) == 0 {
			return nil
		}
		u, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return nil
		}
		switch x := unparen(u.X).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
		case *ast.SelectorExpr:
			if v, ok := info.Uses[x.Sel].(*types.Var); ok {
				return v
			}
		}
		return nil
	}

	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "variables accessed with sync/atomic must never be accessed plainly",
	}
	a.Collect = func(p *Pass) {
		info := p.Pkg.Info
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if v := atomicArg(info, call); v != nil {
					id := varID(p.Pkg.Fset, v)
					if _, seen := atomicVars[id]; !seen {
						atomicVars[id] = siteInfo{pos: p.Pkg.Fset.Position(call.Pos()), name: v.Name()}
					}
				}
				return true
			})
		}
	}
	a.Run = func(p *Pass) {
		info := p.Pkg.Info
		for _, f := range p.Pkg.Files {
			// sanctioned marks the &x operands of sync/atomic calls in this
			// file, so those uses are not re-flagged.
			sanctioned := map[ast.Node]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if atomicArg(info, call) != nil {
						u := unparen(call.Args[0]).(*ast.UnaryExpr)
						sanctioned[unparen(u.X)] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				if sanctioned[n] {
					return false // the &x inside an atomic call
				}
				var v *types.Var
				var at token.Pos
				switch x := n.(type) {
				case *ast.Ident:
					if obj, ok := info.Uses[x].(*types.Var); ok {
						v, at = obj, x.Pos()
					}
				case *ast.SelectorExpr:
					if obj, ok := info.Uses[x.Sel].(*types.Var); ok {
						v, at = obj, x.Sel.Pos()
					}
					// Keep descending: x.X may itself be an atomic var.
				}
				if v == nil {
					return true
				}
				site, isAtomic := atomicVars[varID(p.Pkg.Fset, v)]
				if !isAtomic {
					return true
				}
				p.Reportf(at, "plain access of %q, which is accessed atomically (e.g. at %s); use sync/atomic consistently",
					site.name, shortPos(site.pos))
				return false
			})
		}
	}
	return a
}

// shortPos renders file:line with the directory stripped.
func shortPos(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
