package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrderConfig names the ordered mutex/WaitGroup pairs and the calls
// considered blocking.
type LockOrderConfig struct {
	// OrderPairs requires that WaitGroup.Add on the named field happens
	// while the named mutex is held: {Mutex: "drainMu", Add: "inflight"}
	// encodes the drain-gate ordering from PR 6 — Shutdown flips the
	// draining flag under the write lock, so an Add outside the read lock
	// can slip past a drain and lose its batch.
	OrderPairs []OrderPair
	// Blocking lists callee IDs (funcID form) that can block indefinitely:
	// HTTP round-trips, fsync, sleeps. Holding any mutex across one stalls
	// every other path serialized on that mutex.
	Blocking []string
}

// OrderPair is one lock-before-Add requirement, matched by field name and
// type (sync.RWMutex/Mutex and sync.WaitGroup).
type OrderPair struct {
	Mutex string
	Add   string
}

// LockOrder enforces the two lock disciplines runtime tests are worst at
// catching: the drainMu-before-inflight.Add ordering (a violation is a
// once-per-thousand-drains lost batch, invisible to any bounded test run)
// and "no mutex held across a blocking call" (a violation turns one slow
// disk or peer into a full node stall — every statusz scrape, every serve
// path queues behind the held lock).
//
// The analysis is lexical within one function body: events (Lock/Unlock/
// RLock/RUnlock, WaitGroup.Add, blocking calls) are ordered by source
// position, deferred unlocks extend to function end, and function literals
// are separate scopes. That approximation is exact for the straight-line
// lock regions this codebase uses.
func LockOrder(cfg LockOrderConfig) *Analyzer {
	blocking := map[string]bool{}
	for _, b := range cfg.Blocking {
		blocking[b] = true
	}

	a := &Analyzer{
		Name: "lockorder",
		Doc:  "drain-gate ordering and no-mutex-across-blocking-call",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					return true
				}
				checkLockBody(p, cfg, blocking, fd.Body)
				return true
			})
		}
	}
	return a
}

type lockEvent struct {
	pos      token.Pos
	kind     string     // "lock", "unlock", "add", "block"
	obj      *types.Var // mutex or waitgroup field/var (lock/unlock/add)
	name     string     // field name for add/lock, callee for block
	deferred bool
	// earlyExit marks an unlock immediately followed by return/break/
	// continue/panic in its block: an early-exit path whose release does
	// not apply to the code that falls through the enclosing branch
	// (`if draining { mu.RUnlock(); return }` leaves the lock held below).
	earlyExit bool
	callee    string
}

// checkLockBody analyzes one function (or function literal) body.
func checkLockBody(p *Pass, cfg LockOrderConfig, blocking map[string]bool, body *ast.BlockStmt) {
	info := p.Pkg.Info
	var events []lockEvent

	var walk func(n ast.Node, deferred bool)
	walk = func(root ast.Node, deferred bool) {
		inspectWithStack(root, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				checkLockBody(p, cfg, blocking, x.Body)
				return false
			case *ast.DeferStmt:
				walk(x.Call, true)
				return false
			case *ast.CallExpr:
				ev, ok := classifyLockCall(info, x, blocking)
				if ok {
					ev.deferred = deferred
					if ev.kind == "unlock" {
						ev.earlyExit = beforeExit(x, stack)
					}
					events = append(events, ev)
				}
				return true
			}
			return true
		})
	}
	walk(body, false)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// Rule A: WaitGroup.Add on a configured field must happen under its
	// paired mutex.
	for _, pair := range cfg.OrderPairs {
		for _, ev := range events {
			if ev.kind != "add" || ev.name != pair.Add {
				continue
			}
			held := false
			for _, prior := range events {
				if prior.pos >= ev.pos || prior.obj == nil || prior.obj.Name() != pair.Mutex {
					continue
				}
				switch prior.kind {
				case "lock":
					held = true
				case "unlock":
					if !prior.deferred && !prior.earlyExit {
						held = false
					}
				}
			}
			if !held {
				p.Reportf(ev.pos, "%s.Add without holding %s: the drain gate can flip between the check and the Add, losing the batch from the in-flight set", pair.Add, pair.Mutex)
			}
		}
	}

	// Rule B: no blocking call inside a held region. Deferred unlocks keep
	// the region open to function end.
	type region struct {
		obj   *types.Var
		start token.Pos
		end   token.Pos // NoPos: still open
	}
	var regions []region
	for _, ev := range events {
		switch ev.kind {
		case "lock":
			regions = append(regions, region{obj: ev.obj, start: ev.pos})
		case "unlock":
			if ev.deferred {
				continue // holds until return: leave the region open
			}
			for i := len(regions) - 1; i >= 0; i-- {
				if regions[i].obj == ev.obj && regions[i].end == token.NoPos {
					regions[i].end = ev.pos
					break
				}
			}
		}
	}
	for _, ev := range events {
		if ev.kind != "block" {
			continue
		}
		for _, r := range regions {
			if ev.pos > r.start && (r.end == token.NoPos || ev.pos < r.end) {
				p.Reportf(ev.pos, "%s (blocking) called while holding %s (locked at %s); release the lock first — everything serialized on it stalls behind this call",
					ev.callee, r.obj.Name(), shortPos(p.Pkg.Fset.Position(r.start)))
			}
		}
	}
}

// beforeExit reports whether the statement containing call is immediately
// followed, in its enclosing block, by a return, branch or panic — the
// early-exit unlock shape.
func beforeExit(call *ast.CallExpr, stack []ast.Node) bool {
	// Find the innermost block and the index of the statement holding call.
	for i := len(stack) - 1; i >= 0; i-- {
		blk, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for j, stmt := range blk.List {
			if stmt.Pos() <= call.Pos() && call.End() <= stmt.End() {
				if j+1 >= len(blk.List) {
					return false
				}
				switch next := blk.List[j+1].(type) {
				case *ast.ReturnStmt, *ast.BranchStmt:
					return true
				case *ast.ExprStmt:
					if c, ok := next.X.(*ast.CallExpr); ok {
						if id, ok := unparen(c.Fun).(*ast.Ident); ok && id.Name == "panic" {
							return true
						}
					}
				}
				return false
			}
		}
		return false
	}
	return false
}

// classifyLockCall decides whether a call is a lock/unlock on a sync mutex,
// a WaitGroup.Add, or a configured blocking call.
func classifyLockCall(info *types.Info, call *ast.CallExpr, blocking map[string]bool) (lockEvent, bool) {
	fn, id := calleeOf(info, call)
	if fn == nil {
		return lockEvent{}, false
	}
	if blocking[id] {
		return lockEvent{pos: call.Pos(), kind: "block", callee: shortFuncID(id)}, true
	}
	var kind string
	switch id {
	case "sync.Mutex.Lock", "sync.RWMutex.Lock", "sync.RWMutex.RLock":
		kind = "lock"
	case "sync.Mutex.Unlock", "sync.RWMutex.Unlock", "sync.RWMutex.RUnlock":
		kind = "unlock"
	case "sync.WaitGroup.Add":
		kind = "add"
	default:
		return lockEvent{}, false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	obj := receiverVar(info, sel.X)
	if obj == nil {
		return lockEvent{}, false
	}
	return lockEvent{pos: call.Pos(), kind: kind, obj: obj, name: obj.Name()}, true
}

// receiverVar resolves the receiver expression of a method call (s.mu,
// mu, c.state.mu) to the variable naming the lock.
func receiverVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return receiverVar(info, x.X)
		}
	}
	return nil
}
