package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// testdataCases binds each want-corpus module under testdata/ to the
// analyzer configuration its comments were written against. Function and
// package IDs refer to the corpus module (hotmod, errmod, ...), not to
// repro — each corpus is its own module so the analyzers see it exactly
// the way simtunelint sees the real tree.
var testdataCases = []struct {
	dir       string
	analyzers func() []*Analyzer
}{
	{"atomicmix", func() []*Analyzer { return []*Analyzer{AtomicMix()} }},
	{"hotpath", func() []*Analyzer {
		return []*Analyzer{HotPath(HotPathConfig{
			Roots: []HotRoot{
				{Name: "hotmod.Inner", NoLock: true},
				{Name: "hotmod.Serve"},
			},
			Stops: []string{"hotmod.Disk"},
		})}
	}},
	{"errtaxonomy", func() []*Analyzer {
		return []*Analyzer{ErrTaxonomy(ErrTaxonomyConfig{
			WirePackages: []string{"errmod/wire"},
		})}
	}},
	{"sleepseam", func() []*Analyzer {
		return []*Analyzer{SleepSeam(SleepSeamConfig{
			Packages:     []string{"sleepmod/svc"},
			AllowInTests: true,
		})}
	}},
	{"lockorder", func() []*Analyzer {
		return []*Analyzer{LockOrder(LockOrderConfig{
			OrderPairs: []OrderPair{{Mutex: "gateMu", Add: "inflight"}},
			Blocking:   []string{"time.Sleep"},
		})}
	}},
}

// TestWantCorpus checks every testdata module against its `// want "..."`
// comments: each want must be matched by a diagnostic on that line, and
// every diagnostic must be claimed by a want — the negative cases (the
// liveness-exception admit, the nil-guarded telemetry reads, test sleeps)
// are asserted by their absence.
func TestWantCorpus(t *testing.T) {
	for _, tc := range testdataCases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			pkgs, err := Load(dir, "./...")
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			diags := Run(pkgs, tc.analyzers())
			wants := parseWants(t, dir)

			matched := make([]bool, len(diags))
			for _, w := range wants {
				found := false
				for i, d := range diags {
					if matched[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
						continue
					}
					if !strings.Contains(d.Message, w.substr) {
						continue
					}
					matched[i] = true
					found = true
					break
				}
				if !found {
					t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.substr)
				}
			}
			for i, d := range diags {
				if !matched[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

type wantComment struct {
	file   string // base name
	line   int
	substr string
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// parseWants scans every .go file under dir for `// want "substr"` markers.
func parseWants(t *testing.T, dir string) []wantComment {
	t.Helper()
	var wants []wantComment
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, wantComment{
					file:   filepath.Base(path),
					line:   i + 1,
					substr: m[1],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan wants in %s: %v", dir, err)
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments found under %s", dir)
	}
	return wants
}

// TestRepoTreeClean is the enforcement test: the default suite over the
// whole module must produce zero diagnostics. A failure here is either a
// real invariant violation (fix the code) or a new sanctioned pattern
// (teach the analyzer the waiver, with a corpus case proving it).
func TestRepoTreeClean(t *testing.T) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	root := strings.TrimSpace(string(out))
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	diags := Run(pkgs, DefaultAnalyzers())
	for _, d := range diags {
		t.Errorf("tree not clean: %s", d)
	}
	if len(diags) > 0 {
		t.Logf("%s diagnostics — run `go run ./cmd/simtunelint ./...` locally", strconv.Itoa(len(diags)))
	}
}
