// Package lint is simtunelint: a suite of project-specific static
// analyzers that enforce the concurrency and hot-path invariants this
// codebase has accumulated PR by PR — invariants that runtime tests only
// catch when they happen to exercise the buggy interleaving.
//
// The suite loads the whole module (every package, test files included)
// via `go list` + go/parser + go/types — deliberately self-contained, no
// golang.org/x/tools dependency — and runs five analyzers:
//
//   - atomicmix: a variable accessed through sync/atomic anywhere must
//     never be read or written plainly elsewhere (the statusz counter
//     ledgers are the motivating corpus).
//   - hotpath: functions reachable from the simulator inner loops and the
//     cache-hit serve path must not read the clock, format strings,
//     touch encoding/json, or (on the simulator side) take a lock.
//     Clock reads behind a nil-guard (the telemetry-handle pattern) are
//     deliberate non-findings.
//   - errtaxonomy: retryability and classification checks on errors must
//     use errors.Is/errors.As, never type assertions; wire packages must
//     route error responses through the typed writeError path.
//   - sleepseam: direct time.Sleep is banned in internal/service — the
//     injectable sleep seam (ServiceRunner.sleep) exists so pacing is
//     testable without wall-clock waits.
//   - lockorder: inflight.Add must happen under drainMu (the drain-gate
//     ordering), and no mutex may be held across a blocking call
//     (HTTP round-trip, fsync, sleep).
//
// Each analyzer ships a want-diagnostics corpus under testdata/, and the
// suite runs clean over the current tree: `go run ./cmd/simtunelint ./...`
// exits 0, and CI fails on any new diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it and
// a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked package ready for analysis. Test files of
// the package (both in-package _test.go files and the external _test
// package) are loaded as their own Package values so analyzers see the
// whole tree the race detector sees.
type Package struct {
	// Path is the import path; external test packages carry the
	// "<path>_test" suffix go list reports.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TestFile reports, per file, whether it came from TestGoFiles or
	// XTestGoFiles (analyzers that exempt tests consult this).
	TestFile map[*ast.File]bool
}

// Pass is the per-package view handed to an analyzer phase.
type Pass struct {
	Pkg *Package
	// All is every package in the run, for analyzers that need the global
	// picture during Finish.
	All    []*Package
	report func(d Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker. Collect (optional) runs over every
// package before any Run, so cross-package facts (which fields are atomic,
// the call graph) are complete before reporting starts. Run reports
// per-package findings. Finish (optional) runs once at the end for
// analyzers whose findings are only decidable globally.
type Analyzer struct {
	Name    string
	Doc     string
	Collect func(p *Pass)
	Run     func(p *Pass)
	Finish  func(p *Pass)
}

// Run executes the suite over pkgs and returns every diagnostic, sorted by
// file, line, column, analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		sink := func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		if a.Collect != nil {
			for _, pkg := range pkgs {
				a.Collect(&Pass{Pkg: pkg, All: pkgs, report: sink})
			}
		}
		if a.Run != nil {
			for _, pkg := range pkgs {
				a.Run(&Pass{Pkg: pkg, All: pkgs, report: sink})
			}
		}
		if a.Finish != nil && len(pkgs) > 0 {
			a.Finish(&Pass{Pkg: pkgs[0], All: pkgs, report: sink})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// funcID names a function or method in the stable form analyzers use for
// configuration: "pkgpath.Func" or "pkgpath.Recv.Method" (pointer receivers
// stripped, so *Hierarchy and Hierarchy methods share an ID). Interface
// methods resolve to "pkgpath.Iface.Method". Universe names (error.Error)
// come back bare.
func funcID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			obj := n.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
			}
			return obj.Name() + "." + fn.Name()
		}
		// Unnamed receiver (embedded interface literal): fall through to
		// the package-qualified form.
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// calleeOf resolves the static callee of a call expression: direct calls to
// package functions, method calls on concrete or interface receivers, and
// qualified calls through package selectors. Calls through function values
// or unresolvable expressions return "".
func calleeOf(info *types.Info, call *ast.CallExpr) (*types.Func, string) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, funcID(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn, funcID(fn)
		}
	}
	return nil, ""
}

// unparen strips any parenthesis wrapping from e.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// enclosingFunc walks the per-file path stack maintained by inspectWithStack
// and returns the innermost FuncDecl, or nil inside func literals at file
// scope (init expressions).
func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// inspectWithStack is ast.Inspect with the ancestor stack (outermost first,
// not including n itself) passed to f. Return false to prune.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := f(n, stack)
		stack = append(stack, n)
		if !ok {
			// Still pushed; pop happens on the nil visit only if we
			// descend, so pop immediately when pruning.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
