package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader builds the whole-module package set without golang.org/x/tools:
// `go list -deps -test -export -json` names every package, its files and —
// for standard-library dependencies — the compiled export data the running
// toolchain just produced (always readable by the same toolchain's
// go/importer). Module packages are then type-checked from source, in three
// flavors mirroring how `go test` compiles them:
//
//   - pure: GoFiles only — what importers of the package see;
//   - augmented: GoFiles + TestGoFiles — the package under test, with its
//     in-package test files (this is the flavor analyzers run on, so test
//     code is held to the same invariants);
//   - xtest: XTestGoFiles as the separate "<path>_test" package, importing
//     the augmented flavor.

// To keep every reference to a module type resolving to one types.Package
// identity (an xtest package may see its subject augmented while a sibling
// dependency references the same subject through its own imports), the
// augmented flavor IS the import universe: importers of a module package
// get the augmented types.Package. That is a superset of the pure flavor,
// so compilation semantics are unchanged; the one cost is that a test-file
// import cycle (package A's tests import B, B imports A) would be reported
// as a load error — the module has none.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	Export       string
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	Module       *struct {
		Path string
		Dir  string
	}
}

// Loader loads and type-checks every package of one module.
type Loader struct {
	Dir string // module root (or any directory inside it)

	fset    *token.FileSet
	exports map[string]string   // import path -> export data file (non-module deps)
	base    map[string]*listPkg // module packages by import path
	order   []string            // module package paths in go list order
	modPath string

	gcImp   types.Importer
	checked map[string]*Package
	loading map[string]bool
}

// Load lists patterns (e.g. "./...") in dir and type-checks every module
// package it names, returning the analysis set: augmented packages first,
// then xtest packages, in deterministic order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld := &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
		base:    map[string]*listPkg{},
		checked: map[string]*Package{},
		loading: map[string]bool{},
	}
	ld.gcImp = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)
	if err := ld.list(patterns); err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range ld.order {
		lp := ld.base[path]
		var subject *Package
		if len(lp.GoFiles)+len(lp.CgoFiles)+len(lp.TestGoFiles) > 0 {
			pkg, err := ld.modPkg(lp)
			if err != nil {
				return nil, err
			}
			subject = pkg
			out = append(out, pkg)
		}
		if len(lp.XTestGoFiles) > 0 && subject != nil {
			// The xtest package imports the augmented flavor of its
			// subject, like `go test` compiles it.
			imp := func(path string) (*types.Package, error) {
				if path == lp.ImportPath {
					return subject.Types, nil
				}
				return ld.importPath(path)
			}
			pkg, err := ld.check(lp, lp.XTestGoFiles, lp.ImportPath+"_test", imp)
			if err != nil {
				return nil, err
			}
			for _, f := range pkg.Files {
				pkg.TestFile[f] = true
			}
			out = append(out, pkg)
		}
	}
	return out, nil
}

// list runs `go list -deps -test -export -json` and partitions the output
// into module packages (type-checked from source) and dependency export
// data (everything else — in this module, the standard library).
func (ld *Loader) list(patterns []string) error {
	args := append([]string{"list", "-deps", "-test", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	dec := json.NewDecoder(out)
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return fmt.Errorf("lint: go list decode: %v\n%s", err, stderr.String())
		}
		switch {
		case strings.Contains(lp.ImportPath, " ["), lp.ForTest != "",
			strings.HasSuffix(lp.ImportPath, ".test"):
			// Test-binary variants ("pkg [pkg.test]", "pkg.test"): only
			// listed so -deps pulls export data for test-only imports.
		case lp.Module != nil:
			if ld.modPath == "" {
				// The first module entry in a single-module run names the
				// module being analyzed.
				ld.modPath = lp.Module.Path
			}
			if _, dup := ld.base[lp.ImportPath]; !dup {
				ld.base[lp.ImportPath] = &lp
				ld.order = append(ld.order, lp.ImportPath)
			}
		default:
			if lp.Export != "" {
				ld.exports[lp.ImportPath] = lp.Export
			}
		}
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	sort.Strings(ld.order)
	return nil
}

// lookupExport feeds the gc importer the export data file go list reported.
func (ld *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// Import implements types.Importer: module packages resolve to their pure
// source-checked flavor, everything else through export data.
func (ld *Loader) Import(path string) (*types.Package, error) {
	return ld.importPath(path)
}

func (ld *Loader) importPath(path string) (*types.Package, error) {
	if lp, ok := ld.base[path]; ok {
		pkg, err := ld.modPkg(lp)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.gcImp.Import(path)
}

// modPkg type-checks the augmented flavor of a module package on demand,
// memoized — every importer shares the one types.Package identity.
func (ld *Loader) modPkg(lp *listPkg) (*Package, error) {
	if pkg, ok := ld.checked[lp.ImportPath]; ok {
		return pkg, nil
	}
	if ld.loading[lp.ImportPath] {
		return nil, fmt.Errorf("lint: import cycle through %q (a test-file import loop?)", lp.ImportPath)
	}
	ld.loading[lp.ImportPath] = true
	defer delete(ld.loading, lp.ImportPath)
	pkg, err := ld.check(lp, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...), lp.ImportPath, nil)
	if err != nil {
		return nil, err
	}
	ld.checked[lp.ImportPath] = pkg
	return pkg, nil
}

// check type-checks one analysis flavor of a package.
func (ld *Loader) check(lp *listPkg, fileNames []string, path string, imp func(string) (*types.Package, error)) (*Package, error) {
	files, err := ld.parse(lp.Dir, fileNames)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var importer types.Importer = ld
	if imp != nil {
		importer = importerFunc(imp)
	}
	conf := types.Config{Importer: importer}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", path, err)
	}
	testFile := map[*ast.File]bool{}
	for i, f := range files {
		testFile[f] = strings.HasSuffix(fileNames[i], "_test.go")
	}
	return &Package{
		Path:     path,
		Dir:      lp.Dir,
		Fset:     ld.fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		TestFile: testFile,
	}, nil
}

func (ld *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
