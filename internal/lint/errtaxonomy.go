package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrTaxonomyConfig scopes the wire-boundary checks.
type ErrTaxonomyConfig struct {
	// WirePackages are import-path prefixes whose packages put errors on
	// the wire (internal/service): inside them, http.Error is banned in
	// favor of the typed writeError path, and error equality against
	// non-nil values must go through errors.Is.
	WirePackages []string
}

// ErrTaxonomy enforces the typed service.Error taxonomy on every wire
// path. The router's failover, the client's retry loop and the 4xx/5xx
// split all hang off error *classification*; classification that
// type-asserts breaks the moment an error is wrapped (fmt.Errorf("%w")
// is pervasive here), and a raw http.Error loses Status/RetryAfter on the
// wire. Three checks:
//
//  1. no type assertion or type switch on an error-typed operand, module
//     wide — use errors.As/errors.Is. The one sanctioned shape is the
//     target assertion inside an Is/As method, which is how the errors.Is
//     protocol itself is implemented (service.Error.Is does this).
//  2. no http.Error calls inside wire packages — writeError carries the
//     classification (status + Retry-After + structured body).
//  3. no ==/!= comparison of an error against anything but nil inside
//     wire packages — sentinel comparison that ignores wrapping.
func ErrTaxonomy(cfg ErrTaxonomyConfig) *Analyzer {
	inWirePkg := func(path string) bool {
		path = strings.TrimSuffix(path, "_test")
		for _, p := range cfg.WirePackages {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}

	isErrorType := func(t types.Type) bool {
		if t == nil {
			return false
		}
		return types.Identical(t, types.Universe.Lookup("error").Type())
	}

	// insideIsOrAs reports whether the stack passes through a method named
	// Is or As with an error-typed first parameter — the errors.Is/As
	// protocol implementation, where asserting on target is the point.
	insideIsOrAs := func(stack []ast.Node) bool {
		fd := enclosingFunc(stack)
		if fd == nil || fd.Recv == nil || (fd.Name.Name != "Is" && fd.Name.Name != "As") {
			return false
		}
		return true
	}

	a := &Analyzer{
		Name: "errtaxonomy",
		Doc:  "wire errors must be typed service.Error; classification via errors.Is/As only",
	}
	a.Run = func(p *Pass) {
		info := p.Pkg.Info
		wire := inWirePkg(p.Pkg.Path)
		for _, f := range p.Pkg.Files {
			inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
				switch x := n.(type) {
				case *ast.TypeAssertExpr:
					if x.Type == nil {
						return true // x.(type) inside a type switch: handled below
					}
					if tv, ok := info.Types[x.X]; ok && isErrorType(tv.Type) && !insideIsOrAs(stack) {
						p.Reportf(x.Pos(), "type assertion on an error value; use errors.As so wrapped errors (fmt.Errorf %%w) still classify")
					}
				case *ast.TypeSwitchStmt:
					var operand ast.Expr
					switch s := x.Assign.(type) {
					case *ast.ExprStmt:
						operand = s.X.(*ast.TypeAssertExpr).X
					case *ast.AssignStmt:
						operand = s.Rhs[0].(*ast.TypeAssertExpr).X
					}
					if tv, ok := info.Types[operand]; ok && isErrorType(tv.Type) && !insideIsOrAs(stack) {
						p.Reportf(x.Pos(), "type switch on an error value; use errors.As/errors.Is so wrapped errors still classify")
					}
				case *ast.CallExpr:
					if !wire {
						return true
					}
					if _, id := calleeOf(info, x); id == "net/http.Error" {
						p.Reportf(x.Pos(), "http.Error drops the typed taxonomy; use writeError so Status and Retry-After reach the wire")
					}
				case *ast.BinaryExpr:
					if !wire || (x.Op != token.EQL && x.Op != token.NEQ) {
						return true
					}
					xt, xok := info.Types[x.X]
					yt, yok := info.Types[x.Y]
					if !xok || !yok {
						return true
					}
					// Comparing an error against anything but nil is a
					// sentinel comparison that ignores wrapping.
					if isErrorType(xt.Type) && !yt.IsNil() || isErrorType(yt.Type) && !xt.IsNil() {
						p.Reportf(x.Pos(), "error compared with %s; use errors.Is so wrapped errors still match", x.Op)
					}
				}
				return true
			})
		}
	}
	return a
}
