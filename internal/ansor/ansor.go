// Package ansor reproduces the Auto-Scheduler (Ansor) flow of §II-A: unlike
// AutoTVM's hand-written templates, schedules are generated automatically
// from the kernel's structure. A sketch applies multi-level tiling
// (spatial axes split three ways, reduce axes two ways, interleaved in an
// S-R-S-R-S structure); the annotation phase fills tile sizes and marks
// loops for unrolling or vectorization; and a batch-wise evolutionary search
// breeds new candidates from the best measured ones — the batch-wise
// generation that motivates the paper's static/dynamic window normalization
// at inference (§III-E).
package ansor

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/num"
	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/te"
)

// genome is the annotated-sketch genotype of one candidate implementation.
type genome struct {
	// spatialMid/spatialInner are tile factors per spatial axis (3-level
	// tiling: outer × mid × inner).
	spatialMid   []int
	spatialInner []int
	// reduceInner are tile factors per reduce axis (2-level tiling).
	reduceInner []int
	// orderVariant selects the S/R interleaving.
	orderVariant int
	// unrollChoice: 0 = none, 1 = innermost reduce, 2 = innermost reduce
	// pair.
	unrollChoice int
	// vectorize marks the innermost spatial tile for SIMD.
	vectorize bool
}

const numOrderVariants = 3

// Record is one measured candidate of the search.
type Record struct {
	Steps   []schedule.Step
	Score   float64
	TimeSec float64
	Stats   *sim.Stats
	Err     error
	// TrueTimeSec/ElapsedSec carry native-measurement bookkeeping when the
	// runner provides it (see runner.MeasureResult).
	TrueTimeSec float64
	ElapsedSec  float64
	// CacheHit marks candidates a simulate-service result cache absorbed:
	// their Stats cost no simulation time (Eq. 4 bookkeeping).
	CacheHit bool
}

// Options configure the search.
type Options struct {
	// Trials is the number of measured candidates.
	Trials int
	// BatchSize is the measurement batch (Ansor generates implementations
	// batch-wise based on prior scores).
	BatchSize int
	// EliteFrac of measured candidates breed the next batch.
	EliteFrac float64
	// MutationProb mutates each genome field independently.
	MutationProb float64
	// RandomFrac of every batch stays purely random (exploration).
	RandomFrac float64
	Builder    runner.Builder
	Runner     runner.Runner
}

// DefaultOptions returns a search setup suited to the paper's per-group
// candidate counts.
func DefaultOptions() Options {
	return Options{BatchSize: 32, EliteFrac: 0.25, MutationProb: 0.2, RandomFrac: 0.2}
}

// Policy is the search state.
type Policy struct {
	opt     Options
	rng     *num.RNG
	factory runner.WorkloadFactory

	nSpatial, nReduce int
	spatialExt        []int
	reduceExt         []int

	seen    map[string]bool
	scored  []scoredGenome
	records []Record
}

type scoredGenome struct {
	g     genome
	score float64
}

// NewPolicy builds a search policy for one workload.
func NewPolicy(factory runner.WorkloadFactory, opt Options, rng *num.RNG) (*Policy, error) {
	if opt.Builder == nil || opt.Runner == nil {
		return nil, errors.New("ansor: options need Builder and Runner")
	}
	if opt.Trials <= 0 {
		return nil, errors.New("ansor: Trials must be positive")
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 32
	}
	wl := factory()
	p := &Policy{opt: opt, rng: rng, factory: factory, seen: map[string]bool{}}
	for _, ax := range wl.Op.Spatial {
		p.spatialExt = append(p.spatialExt, ax.Extent)
	}
	for _, ax := range wl.Op.Reduce {
		p.reduceExt = append(p.reduceExt, ax.Extent)
	}
	p.nSpatial, p.nReduce = len(p.spatialExt), len(p.reduceExt)
	return p, nil
}

// randomGenome samples an annotated sketch uniformly.
func (p *Policy) randomGenome() genome {
	g := genome{
		spatialMid:   make([]int, p.nSpatial),
		spatialInner: make([]int, p.nSpatial),
		reduceInner:  make([]int, p.nReduce),
		orderVariant: p.rng.Intn(numOrderVariants),
		unrollChoice: p.rng.Intn(3),
		vectorize:    p.rng.Float64() < 0.5,
	}
	for i, e := range p.spatialExt {
		inner := pick(p.rng, divisorsCapped(e, 32))
		rest := (e + inner - 1) / inner
		g.spatialInner[i] = inner
		g.spatialMid[i] = pick(p.rng, divisorsCapped(rest, 8))
	}
	for i, e := range p.reduceExt {
		g.reduceInner[i] = pick(p.rng, divisorsCapped(e, 16))
	}
	return g
}

// mutate flips random fields of a copy of g.
func (p *Policy) mutate(g genome) genome {
	out := cloneGenome(g)
	for i := range out.spatialInner {
		if p.rng.Float64() < p.opt.MutationProb {
			e := p.spatialExt[i]
			out.spatialInner[i] = pick(p.rng, divisorsCapped(e, 32))
			rest := (e + out.spatialInner[i] - 1) / out.spatialInner[i]
			out.spatialMid[i] = pick(p.rng, divisorsCapped(rest, 8))
		}
	}
	for i := range out.reduceInner {
		if p.rng.Float64() < p.opt.MutationProb {
			out.reduceInner[i] = pick(p.rng, divisorsCapped(p.reduceExt[i], 16))
		}
	}
	if p.rng.Float64() < p.opt.MutationProb {
		out.orderVariant = p.rng.Intn(numOrderVariants)
	}
	if p.rng.Float64() < p.opt.MutationProb {
		out.unrollChoice = p.rng.Intn(3)
	}
	if p.rng.Float64() < p.opt.MutationProb {
		out.vectorize = !out.vectorize
	}
	return out
}

// crossover mixes two genomes field-wise.
func (p *Policy) crossover(a, b genome) genome {
	out := cloneGenome(a)
	for i := range out.spatialInner {
		if p.rng.Float64() < 0.5 {
			out.spatialInner[i] = b.spatialInner[i]
			out.spatialMid[i] = b.spatialMid[i]
		}
	}
	for i := range out.reduceInner {
		if p.rng.Float64() < 0.5 {
			out.reduceInner[i] = b.reduceInner[i]
		}
	}
	if p.rng.Float64() < 0.5 {
		out.orderVariant = b.orderVariant
	}
	if p.rng.Float64() < 0.5 {
		out.unrollChoice = b.unrollChoice
	}
	if p.rng.Float64() < 0.5 {
		out.vectorize = b.vectorize
	}
	return out
}

func cloneGenome(g genome) genome {
	return genome{
		spatialMid:   append([]int(nil), g.spatialMid...),
		spatialInner: append([]int(nil), g.spatialInner...),
		reduceInner:  append([]int(nil), g.reduceInner...),
		orderVariant: g.orderVariant,
		unrollChoice: g.unrollChoice,
		vectorize:    g.vectorize,
	}
}

func (g genome) key() string {
	return fmt.Sprintf("%v|%v|%v|%d|%d|%v",
		g.spatialMid, g.spatialInner, g.reduceInner, g.orderVariant, g.unrollChoice, g.vectorize)
}

// materialize turns a genome into a schedule on a fresh workload: the sketch
// (multi-level tiling + interleaving) plus the annotations.
func (p *Policy) materialize(wl *te.Workload, g genome) (*schedule.Schedule, error) {
	s := schedule.New(wl.Op)
	var s0, s1, s2, r0, r1 []*schedule.IterVar
	// The default leaf order is spatial axes then reduce axes.
	spatial := append([]*schedule.IterVar{}, s.Leaves[:p.nSpatial]...)
	reduce := append([]*schedule.IterVar{}, s.Leaves[p.nSpatial:]...)
	for i, iv := range spatial {
		factorInner := g.spatialInner[i]
		factorMid := g.spatialMid[i]
		outer, rest, err := s.Split(iv, factorMid*factorInner)
		if err != nil {
			return nil, err
		}
		mid, inner, err := s.Split(rest, factorInner)
		if err != nil {
			return nil, err
		}
		s0 = append(s0, outer)
		s1 = append(s1, mid)
		s2 = append(s2, inner)
	}
	for i, iv := range reduce {
		outer, inner, err := s.Split(iv, g.reduceInner[i])
		if err != nil {
			return nil, err
		}
		r0 = append(r0, outer)
		r1 = append(r1, inner)
	}
	var order []*schedule.IterVar
	switch g.orderVariant {
	case 0: // S0 R0 S1 R1 S2 — classic multi-level tiling
		order = concat(s0, r0, s1, r1, s2)
	case 1: // S0 S1 R0 R1 S2 — reduction close to the register tile
		order = concat(s0, s1, r0, r1, s2)
	default: // S0 R0 R1 S1 S2 — whole reduction outside a bigger tile
		order = concat(s0, r0, r1, s1, s2)
	}
	if err := s.Reorder(order); err != nil {
		return nil, err
	}
	switch g.unrollChoice {
	case 1:
		if len(r1) > 0 {
			if err := s.Unroll(r1[len(r1)-1]); err != nil {
				return nil, err
			}
		}
	case 2:
		if len(r1) > 1 {
			if err := s.Unroll(r1[len(r1)-1]); err != nil {
				return nil, err
			}
			if err := s.Unroll(r1[len(r1)-2]); err != nil {
				return nil, err
			}
		} else if len(r1) == 1 {
			if err := s.Unroll(r1[0]); err != nil {
				return nil, err
			}
		}
	}
	if g.vectorize && len(s2) > 0 {
		if err := s.Vectorize(s2[len(s2)-1]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func concat(groups ...[]*schedule.IterVar) []*schedule.IterVar {
	var out []*schedule.IterVar
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func pick(rng *num.RNG, options []int) int { return options[rng.Intn(len(options))] }

func divisorsCapped(n, cap int) []int {
	var out []int
	for d := 1; d <= n && d <= cap; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// nextBatch breeds a measurement batch: elites crossover+mutate, plus a
// random exploration fraction; all candidates are deduplicated.
func (p *Policy) nextBatch(n int) []genome {
	var out []genome
	misses := 0
	for len(out) < n && misses < 256*n {
		var g genome
		switch {
		case len(p.scored) < 4, p.rng.Float64() < p.opt.RandomFrac:
			g = p.randomGenome()
		default:
			a := p.tournament()
			b := p.tournament()
			g = p.mutate(p.crossover(a, b))
		}
		k := g.key()
		if p.seen[k] {
			misses++
			continue
		}
		p.seen[k] = true
		out = append(out, g)
	}
	return out
}

// tournament samples two elites and returns the better genome.
func (p *Policy) tournament() genome {
	nElite := int(float64(len(p.scored)) * p.opt.EliteFrac)
	if nElite < 2 {
		nElite = len(p.scored)
	}
	a := p.scored[p.rng.Intn(nElite)]
	b := p.scored[p.rng.Intn(nElite)]
	if a.score <= b.score {
		return a.g
	}
	return b.g
}

// RandomSketches materializes n random annotated sketches for the workload
// without measuring them — used by analyses (e.g. the Eq. 4 speedup
// extrapolation) that need representative candidate schedules only.
func RandomSketches(factory runner.WorkloadFactory, n int, rng *num.RNG) ([]*schedule.Schedule, error) {
	wl := factory()
	p := &Policy{opt: DefaultOptions(), rng: rng, factory: factory, seen: map[string]bool{}}
	for _, ax := range wl.Op.Spatial {
		p.spatialExt = append(p.spatialExt, ax.Extent)
	}
	for _, ax := range wl.Op.Reduce {
		p.reduceExt = append(p.reduceExt, ax.Extent)
	}
	p.nSpatial, p.nReduce = len(p.spatialExt), len(p.reduceExt)
	out := make([]*schedule.Schedule, 0, n)
	for len(out) < n {
		s, err := p.materialize(factory(), p.randomGenome())
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Search runs the evolutionary loop until Trials candidates are measured.
func Search(factory runner.WorkloadFactory, opt Options, rng *num.RNG) ([]Record, error) {
	p, err := NewPolicy(factory, opt, rng)
	if err != nil {
		return nil, err
	}
	for len(p.records) < p.opt.Trials {
		want := p.opt.Trials - len(p.records)
		if want > p.opt.BatchSize {
			want = p.opt.BatchSize
		}
		batch := p.nextBatch(want)
		if len(batch) == 0 {
			break
		}
		p.measure(batch)
	}
	if len(p.records) == 0 {
		return nil, errors.New("ansor: no candidates were measured")
	}
	return p.records, nil
}

// measure builds and runs one batch, recording scores and refreshing the
// elite ranking.
func (p *Policy) measure(batch []genome) {
	inputs := make([]runner.MeasureInput, len(batch))
	stepsPer := make([][]schedule.Step, len(batch))
	applyErrs := make([]error, len(batch))
	for i, g := range batch {
		wl := p.factory()
		s, err := p.materialize(wl, g)
		if err != nil {
			applyErrs[i] = err
			inputs[i] = runner.MeasureInput{Factory: p.factory}
			continue
		}
		stepsPer[i] = s.Steps
		inputs[i] = runner.MeasureInput{Factory: p.factory, Steps: s.Steps}
	}
	builds := p.opt.Builder.Build(inputs)
	for i := range builds {
		if applyErrs[i] != nil {
			builds[i] = runner.BuildResult{Err: applyErrs[i]}
		}
	}
	results := p.opt.Runner.Run(inputs, builds)
	for i, res := range results {
		score := res.Score
		if res.Err != nil {
			score = math.Inf(1)
		}
		p.records = append(p.records, Record{
			Steps: stepsPer[i], Score: score, TimeSec: res.TimeSec,
			Stats: res.Stats, Err: res.Err,
			TrueTimeSec: res.TrueTimeSec, ElapsedSec: res.ElapsedSec,
			CacheHit: res.CacheHit,
		})
		if !math.IsInf(score, 1) && !math.IsNaN(score) {
			p.scored = append(p.scored, scoredGenome{g: batch[i], score: score})
		}
	}
	// Keep elites sorted ascending by score (insertion sort; batches are
	// small).
	for i := 1; i < len(p.scored); i++ {
		for j := i; j > 0 && p.scored[j].score < p.scored[j-1].score; j-- {
			p.scored[j], p.scored[j-1] = p.scored[j-1], p.scored[j]
		}
	}
}

// BestRecord returns the lowest-score successful record (nil if none).
func BestRecord(records []Record) *Record {
	var best *Record
	for i := range records {
		r := &records[i]
		if r.Err != nil || math.IsInf(r.Score, 1) {
			continue
		}
		if best == nil || r.Score < best.Score {
			best = r
		}
	}
	return best
}
