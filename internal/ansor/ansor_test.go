package ansor

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/num"
	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/te"
)

func convFactory() *te.Workload { return te.ConvGroup(te.ScaleTiny, 1) }

func simOptions(trials int) Options {
	opt := DefaultOptions()
	opt.Trials = trials
	opt.BatchSize = 8
	opt.Builder = runner.LocalBuilder{Arch: isa.X86}
	opt.Runner = runner.NewSimulatorRunner(hw.Lookup(isa.X86).Caches, 2, nil)
	return opt
}

func TestRandomGenomesMaterializeAndBuild(t *testing.T) {
	p, err := NewPolicy(convFactory, simOptions(1), num.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	model := isa.Lookup(isa.ARM)
	for trial := 0; trial < 40; trial++ {
		g := p.randomGenome()
		wl := convFactory()
		s, err := p.materialize(wl, g)
		if err != nil {
			t.Fatalf("materialize: %v (genome %s)", err, g.key())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid schedule: %v", err)
		}
		if _, err := lower.Build(s, model); err != nil {
			t.Fatalf("build: %v (genome %s)", err, g.key())
		}
	}
}

func TestMaterializedSchedulesComputeCorrectly(t *testing.T) {
	p, err := NewPolicy(convFactory, simOptions(1), num.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := num.NewRNG(3)
	for trial := 0; trial < 5; trial++ {
		g := p.randomGenome()
		wl := convFactory()
		for _, in := range wl.Op.Inputs {
			in.Alloc()
			for i := range in.Data {
				in.Data[i] = float32(rng.Uniform(-1, 1))
			}
		}
		s, err := p.materialize(wl, g)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lower.Build(s, isa.Lookup(isa.X86))
		if err != nil {
			t.Fatal(err)
		}
		sink := &lower.CountingSink{}
		lower.Execute(prog, sink, true)
		got := append([]float32(nil), wl.Op.Out.Data...)
		wl.Op.ReferenceEval()
		for i := range got {
			d := float64(got[i] - wl.Op.Out.Data[i])
			if math.Abs(d) > 1e-3 {
				t.Fatalf("genome %s: output[%d] = %v want %v", g.key(), i, got[i], wl.Op.Out.Data[i])
			}
		}
	}
}

func TestSketchStructureVariants(t *testing.T) {
	p, _ := NewPolicy(convFactory, simOptions(1), num.NewRNG(2))
	g := p.randomGenome()
	for variant := 0; variant < numOrderVariants; variant++ {
		g.orderVariant = variant
		wl := convFactory()
		s, err := p.materialize(wl, g)
		if err != nil {
			t.Fatalf("variant %d: %v", variant, err)
		}
		// 3-level spatial tiling: each spatial axis contributes 3 loops;
		// reduce axes contribute 2 each.
		want := 3*len(wl.Op.Spatial) + 2*len(wl.Op.Reduce)
		if len(s.Leaves) != want {
			t.Fatalf("variant %d: %d loops want %d", variant, len(s.Leaves), want)
		}
	}
}

func TestGenomeKeyDistinguishes(t *testing.T) {
	p, _ := NewPolicy(convFactory, simOptions(1), num.NewRNG(4))
	a := p.randomGenome()
	b := cloneGenome(a)
	if a.key() != b.key() {
		t.Fatal("clone must share key")
	}
	b.vectorize = !b.vectorize
	if a.key() == b.key() {
		t.Fatal("different genomes must differ in key")
	}
}

func TestMutationKeepsValidity(t *testing.T) {
	p, _ := NewPolicy(convFactory, simOptions(1), num.NewRNG(5))
	g := p.randomGenome()
	for i := 0; i < 30; i++ {
		g = p.mutate(g)
		wl := convFactory()
		if _, err := p.materialize(wl, g); err != nil {
			t.Fatalf("mutated genome invalid: %v", err)
		}
	}
}

func TestCrossoverFieldsFromParents(t *testing.T) {
	p, _ := NewPolicy(convFactory, simOptions(1), num.NewRNG(6))
	a, b := p.randomGenome(), p.randomGenome()
	child := p.crossover(a, b)
	for i := range child.spatialInner {
		if child.spatialInner[i] != a.spatialInner[i] && child.spatialInner[i] != b.spatialInner[i] {
			t.Fatal("crossover invented a tile factor")
		}
	}
}

func TestSearchEndToEnd(t *testing.T) {
	records, err := Search(convFactory, simOptions(24), num.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 24 {
		t.Fatalf("records = %d want 24", len(records))
	}
	okCount := 0
	for _, r := range records {
		if r.Err == nil {
			okCount++
			if r.Stats == nil {
				t.Fatal("simulator search must attach stats")
			}
			if len(r.Steps) == 0 {
				t.Fatal("record without steps")
			}
		}
	}
	if okCount < 20 {
		t.Fatalf("too many failed candidates: %d/24 ok", okCount)
	}
}

func TestSearchDeduplicates(t *testing.T) {
	records, err := Search(convFactory, simOptions(30), num.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range records {
		if r.Err != nil {
			continue
		}
		fp := schedule.Fingerprint(r.Steps)
		if seen[fp] {
			t.Fatalf("duplicate candidate measured: %s", fp)
		}
		seen[fp] = true
	}
}

func TestSearchImprovesOverBatches(t *testing.T) {
	// Evolution should find something at least as good as the first batch's
	// best (weak but deterministic sanity check on guided search).
	records, err := Search(convFactory, simOptions(48), num.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	firstBatchBest := math.Inf(1)
	for _, r := range records[:8] {
		if r.Err == nil && r.Score < firstBatchBest {
			firstBatchBest = r.Score
		}
	}
	best := BestRecord(records)
	if best == nil {
		t.Fatal("no best record")
	}
	if best.Score > firstBatchBest {
		t.Fatalf("search regressed: best %v vs first-batch %v", best.Score, firstBatchBest)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := Search(convFactory, Options{Trials: 5}, num.NewRNG(1)); err == nil {
		t.Fatal("missing builder/runner must error")
	}
	opt := simOptions(0)
	if _, err := Search(convFactory, opt, num.NewRNG(1)); err == nil {
		t.Fatal("zero trials must error")
	}
}

func TestBestRecordSkipsFailures(t *testing.T) {
	records := []Record{
		{Score: math.Inf(1)},
		{Score: 2},
		{Score: 1, Err: errMark},
	}
	if b := BestRecord(records); b == nil || b.Score != 2 {
		t.Fatalf("best = %+v", b)
	}
}

var errMark = errType{}

type errType struct{}

func (errType) Error() string { return "x" }

func TestRandomSketches(t *testing.T) {
	sketches, err := RandomSketches(convFactory, 10, num.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sketches) != 10 {
		t.Fatalf("sketches = %d", len(sketches))
	}
	for _, s := range sketches {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if _, err := lower.Build(s, isa.Lookup(isa.RISCV)); err != nil {
			t.Fatal(err)
		}
	}
}
