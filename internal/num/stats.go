package num

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// Quantile returns the q-quantile (0≤q≤1) of xs using linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// ArgMin returns the index of the smallest element (-1 for empty input).
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element (-1 for empty input).
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// ArgSort returns indices that sort xs ascending (stable).
func ArgSort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// Ranks returns the 0-based rank of each element in ascending order
// (ties broken by original index, matching ArgSort).
func Ranks(xs []float64) []int {
	order := ArgSort(xs)
	ranks := make([]int, len(xs))
	for r, i := range order {
		ranks[i] = r
	}
	return ranks
}

// Spearman returns the Spearman rank-correlation coefficient of (a, b).
// It returns 0 when either input is constant or the lengths differ.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := Ranks(a), Ranks(b)
	fa := make([]float64, len(ra))
	fb := make([]float64, len(rb))
	for i := range ra {
		fa[i] = float64(ra[i])
		fb[i] = float64(rb[i])
	}
	return Pearson(fa, fb)
}

// Pearson returns the Pearson correlation of (a, b); 0 if degenerate.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// Standardizer stores per-column mean/std for z-score feature scaling.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-column mean and std over rows.
// Columns with zero variance get Std 1 so transforms stay finite.
func FitStandardizer(rows [][]float64) *Standardizer {
	if len(rows) == 0 {
		return &Standardizer{}
	}
	d := len(rows[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, r := range rows {
		for j, v := range r {
			s.Mean[j] += v
		}
	}
	n := float64(len(rows))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns the z-scored copy of row.
func (s *Standardizer) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll z-scores every row.
func (s *Standardizer) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Transform(r)
	}
	return out
}

// NthPerm returns the i-th permutation of [0,l) in the factorial number
// system's lexicographic order, so distinct i in [0, l!) give distinct
// permutations (i wraps modulo l! beyond that). Tests and benchmarks use it
// to enumerate arbitrarily many distinct loop orders deterministically.
func NthPerm(i, l int) []int {
	avail := make([]int, l)
	fact := 1
	for j := range avail {
		avail[j] = j
		if j > 0 {
			fact *= j
		}
	}
	perm := make([]int, 0, l)
	for j := l - 1; j >= 1; j-- {
		k := (i / fact) % (j + 1)
		perm = append(perm, avail[k])
		avail = append(avail[:k], avail[k+1:]...)
		fact /= j
	}
	return append(perm, avail[0])
}
