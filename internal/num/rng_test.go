package num

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds collide too often: %d/64", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children should start differently")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) did not cover range: %v", seen)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(21)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(77)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 0.5) <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(17)
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestChoiceWeighted(t *testing.T) {
	r := NewRNG(23)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		idx := r.Choice([]float64{1, 0, 3})
		counts[idx]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weighted ratio = %v want ~3", ratio)
	}
}

func TestChoiceDegenerate(t *testing.T) {
	r := NewRNG(29)
	if r.Choice(nil) != -1 {
		t.Fatal("empty weights should return -1")
	}
	if r.Choice([]float64{0, 0}) != -1 {
		t.Fatal("all-zero weights should return -1")
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(31)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}
