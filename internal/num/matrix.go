// Package num provides the dense linear-algebra and statistics substrate used
// by the score predictors (MLR normal equations, Gaussian-process Cholesky
// solves, DNN weight math) and by the experiment drivers, plus the
// deterministic randomness the whole reproduction is seeded from: NewRNG
// (splitmix64-seeded xoshiro256**) makes every search, dataset and test
// reproducible from a single uint64 seed, and combinatoric helpers like
// NthPerm enumerate schedule spaces without materializing them.
//
// Everything is float64, row-major, and allocation-explicit; no external
// dependencies.
package num

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("num: invalid matrix dims %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must share one length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("num: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// MatMul returns a*b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("num: matmul dim mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				orow[j] += aik * brow[j]
			}
		}
	}
	return out
}

// MatVec returns a*x.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("num: matvec dim mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// ErrNotPD is returned when a Cholesky factorization encounters a
// non-positive-definite matrix.
var ErrNotPD = errors.New("num: matrix is not positive definite")

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite A. A is not modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("num: cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPD
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholSolve solves A·x = b given the Cholesky factor L of A.
func CholSolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("num: cholsolve dim mismatch")
	}
	// Forward: L·y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ·x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A·x = b for symmetric positive-definite A, adding jitter to
// the diagonal if the factorization fails (up to a small cap).
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		work := a
		if jitter > 0 {
			work = a.Clone()
			for i := 0; i < work.Rows; i++ {
				work.Data[i*work.Cols+i] += jitter
			}
		}
		l, err := Cholesky(work)
		if err == nil {
			return CholSolve(l, b), nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return nil, ErrNotPD
}

// LeastSquares solves min‖X·w − y‖² + ridge·‖w‖² via the normal equations.
// X is n×d; the returned w has length d.
func LeastSquares(x *Matrix, y []float64, ridge float64) ([]float64, error) {
	if x.Rows != len(y) {
		panic("num: least squares dim mismatch")
	}
	d := x.Cols
	xtx := NewMatrix(d, d)
	xty := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for a := 0; a < d; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			xty[a] += ra * y[i]
			base := a * d
			for b := 0; b < d; b++ {
				xtx.Data[base+b] += ra * row[b]
			}
		}
	}
	for i := 0; i < d; i++ {
		xtx.Data[i*d+i] += ridge
	}
	return SolveSPD(xtx, xty)
}

// LogDetFromChol returns log|A| = 2·Σ log L[i][i] given the Cholesky factor.
func LogDetFromChol(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
