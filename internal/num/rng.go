package num

import "math"

// RNG is a small, fast, deterministic random-number generator
// (splitmix64-seeded xoshiro256**). Every stochastic component in the
// reproduction (tuners, predictors, noise models) takes an explicit *RNG so
// experiments are reproducible bit-for-bit across runs.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to fill the state; avoids the all-zero state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child generator; the parent advances once.
// Useful for handing isolated streams to parallel workers.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("num: RNG.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }

// NormFloat64 returns a standard-normal sample (Box–Muller, polar-free form).
func (r *RNG) NormFloat64() float64 {
	// Box–Muller; u1 in (0,1] to avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(mu + sigma·N(0,1)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random index weighted by w (all weights ≥ 0;
// returns -1 if the total weight is 0 or w is empty).
func (r *RNG) Choice(w []float64) int {
	total := 0.0
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return -1
	}
	t := r.Float64() * total
	acc := 0.0
	for i, v := range w {
		if v <= 0 {
			continue
		}
		acc += v
		if t < acc {
			return i
		}
	}
	return len(w) - 1
}
