package num

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatalf("At/Set mismatch: %+v", m)
	}
}

func TestFromRowsAndRow(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("row 1 = %v", r)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", mt.Rows, mt.Cols)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %+v", mt)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %v want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := MatVec(a, []float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("matvec = %v", y)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.At(0, 0), 2, 1e-12) || !almostEq(l.At(1, 0), 1, 1e-12) ||
		!almostEq(l.At(1, 1), math.Sqrt(2), 1e-12) {
		t.Fatalf("cholesky = %+v", l)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPD {
		t.Fatalf("err = %v, want ErrNotPD", err)
	}
}

// Property: for random L (lower triangular, positive diagonal), Cholesky(L·Lᵀ)
// recovers L.
func TestCholeskyRoundTripProperty(t *testing.T) {
	rng := NewRNG(7)
	f := func() bool {
		n := 1 + rng.Intn(8)
		l := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				l.Set(i, j, rng.Uniform(-1, 1))
			}
			l.Set(i, i, rng.Uniform(0.5, 2.0))
		}
		a := MatMul(l, l.T())
		got, err := Cholesky(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if !almostEq(got.At(i, j), l.At(i, j), 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholSolve(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholSolve(l, []float64{10, 9})
	// A·x should equal b.
	b := MatVec(a, x)
	if !almostEq(b[0], 10, 1e-10) || !almostEq(b[1], 9, 1e-10) {
		t.Fatalf("A·x = %v", b)
	}
}

func TestSolveSPDWithJitter(t *testing.T) {
	// Singular matrix: jitter should rescue the solve.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	x, err := SolveSPD(a, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(x[0]) || math.IsNaN(x[1]) {
		t.Fatalf("solution has NaN: %v", x)
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	// y = 3 + 2·x ; X includes an intercept column.
	n := 50
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := float64(i) / 10
		x.Set(i, 0, 1)
		x.Set(i, 1, xi)
		y[i] = 3 + 2*xi
	}
	w, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(w[0], 3, 1e-8) || !almostEq(w[1], 2, 1e-8) {
		t.Fatalf("w = %v, want [3 2]", w)
	}
}

func TestLeastSquaresRidgeShrinks(t *testing.T) {
	x := FromRows([][]float64{{1}, {2}, {3}})
	y := []float64{2, 4, 6}
	w0, _ := LeastSquares(x, y, 0)
	wR, _ := LeastSquares(x, y, 100)
	if math.Abs(wR[0]) >= math.Abs(w0[0]) {
		t.Fatalf("ridge did not shrink: |%v| >= |%v|", wR[0], w0[0])
	}
}

func TestLogDetFromChol(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	l, _ := Cholesky(a)
	if !almostEq(LogDetFromChol(l), math.Log(36), 1e-12) {
		t.Fatalf("logdet = %v want %v", LogDetFromChol(l), math.Log(36))
	}
}
