package num

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("var = %v", Variance(xs))
	}
	if Std(xs) != 2 {
		t.Fatalf("std = %v", Std(xs))
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty-input stats should be 0")
	}
}

func TestMedianOddEven(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatalf("odd median wrong")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatalf("even median wrong")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("median mutated input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("q=%v got %v want %v", c.q, got, c.want)
		}
	}
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if ArgMin(xs) != 1 {
		t.Fatalf("argmin = %d", ArgMin(xs))
	}
	if ArgMax(xs) != 4 {
		t.Fatalf("argmax = %d", ArgMax(xs))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty argmin/argmax should be -1")
	}
}

func TestArgSortAndRanks(t *testing.T) {
	xs := []float64{30, 10, 20}
	order := ArgSort(xs)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("argsort = %v", order)
	}
	ranks := Ranks(xs)
	if ranks[0] != 2 || ranks[1] != 0 || ranks[2] != 1 {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestSpearmanPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	if !almostEq(Spearman(a, b), 1, 1e-12) {
		t.Fatalf("spearman = %v", Spearman(a, b))
	}
	c := []float64{40, 30, 20, 10}
	if !almostEq(Spearman(a, c), -1, 1e-12) {
		t.Fatalf("anti spearman = %v", Spearman(a, c))
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant input should give 0")
	}
	if Pearson([]float64{1}, []float64{1}) != 0 {
		t.Fatal("length-1 input should give 0")
	}
}

func TestStandardizer(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 10}}
	s := FitStandardizer(rows)
	if s.Mean[0] != 2 || s.Mean[1] != 10 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Std[1] != 1 { // zero-variance column gets Std 1
		t.Fatalf("zero-variance std = %v", s.Std[1])
	}
	z := s.Transform([]float64{3, 10})
	if !almostEq(z[0], 1, 1e-12) || z[1] != 0 {
		t.Fatalf("transform = %v", z)
	}
	all := s.TransformAll(rows)
	if len(all) != 2 {
		t.Fatalf("transformAll len = %d", len(all))
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := NewRNG(11)
	f := func() bool {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Uniform(-10, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return Quantile(xs, 0) <= Quantile(xs, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNthPermDistinctAndValid(t *testing.T) {
	const l = 4 // 4! = 24 permutations
	seen := map[string]bool{}
	for i := 0; i < 24; i++ {
		p := NthPerm(i, l)
		if len(p) != l {
			t.Fatalf("perm %d has length %d", i, len(p))
		}
		mask := make([]bool, l)
		for _, v := range p {
			if v < 0 || v >= l || mask[v] {
				t.Fatalf("perm %d = %v is not a permutation", i, p)
			}
			mask[v] = true
		}
		key := fmt.Sprint(p)
		if seen[key] {
			t.Fatalf("perm %d = %v duplicates an earlier index", i, p)
		}
		seen[key] = true
	}
	// Beyond l! the sequence wraps.
	if got, want := fmt.Sprint(NthPerm(24, l)), fmt.Sprint(NthPerm(0, l)); got != want {
		t.Fatalf("NthPerm(24) = %s, want wrap to %s", got, want)
	}
}
