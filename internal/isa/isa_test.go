package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                   Class
		load, store, vector bool
	}{
		{Load, true, false, false},
		{VLoad, true, false, true},
		{Store, false, true, false},
		{VStore, false, true, true},
		{ALU, false, false, false},
		{FMA, false, false, false},
		{VFMA, false, false, true},
		{Branch, false, false, false},
	}
	for _, c := range cases {
		if c.c.IsLoad() != c.load || c.c.IsStore() != c.store || c.c.IsVector() != c.vector {
			t.Fatalf("%s predicates wrong", c.c)
		}
	}
}

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		s := c.String()
		if s == "" || len(s) >= 5 && s[:5] == "class" {
			t.Fatalf("class %d has placeholder name %q", c, s)
		}
		if seen[s] {
			t.Fatalf("duplicate class name %q", s)
		}
		seen[s] = true
	}
	if Class(200).String() != "class200" {
		t.Fatalf("unknown class string = %q", Class(200).String())
	}
}

func TestParseArch(t *testing.T) {
	for _, a := range Archs() {
		got, err := ParseArch(string(a))
		if err != nil || got != a {
			t.Fatalf("ParseArch(%s) = %v, %v", a, got, err)
		}
	}
	if _, err := ParseArch("sparc"); err == nil {
		t.Fatal("unknown arch must error")
	}
}

func TestLookupModels(t *testing.T) {
	x := Lookup(X86)
	if x.Lanes != 8 || x.GPRegs != 16 || x.FPRegs != 16 {
		t.Fatalf("x86 model wrong: %+v", x)
	}
	a := Lookup(ARM)
	if a.Lanes != 4 || a.GPRegs != 31 || a.FPRegs != 32 {
		t.Fatalf("arm model wrong: %+v", a)
	}
	r := Lookup(RISCV)
	if r.Lanes != 1 {
		t.Fatalf("U74 must have no SIMD: %+v", r)
	}
	if r.InstBytes >= a.InstBytes {
		t.Fatal("RVC compressed code must be denser than fixed-width AArch64")
	}
}

func TestLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Lookup(Arch("mips"))
}

func TestArchsOrder(t *testing.T) {
	a := Archs()
	if len(a) != 3 || a[0] != X86 || a[1] != ARM || a[2] != RISCV {
		t.Fatalf("paper order violated: %v", a)
	}
}
