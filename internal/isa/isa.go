// Package isa models the three instruction-set architectures of the paper's
// evaluation (x86, ARM, RISC-V) at the level the instruction-accurate
// simulator needs: instruction classes, SIMD width, architectural register
// counts (driving the register-tile spill model), and code density for the
// L1I footprint of generated loop bodies.
package isa

import "fmt"

// Class is an abstract instruction class emitted by the code generator.
type Class uint8

// Instruction classes.
const (
	// Load is a scalar data load.
	Load Class = iota
	// Store is a scalar data store.
	Store
	// VLoad is a SIMD data load (one instruction, Lanes elements).
	VLoad
	// VStore is a SIMD data store.
	VStore
	// ALU is scalar integer/address arithmetic.
	ALU
	// FMA is a scalar floating multiply-accumulate (or mul/add pair slot).
	FMA
	// VFMA is a SIMD floating multiply-accumulate.
	VFMA
	// Branch is a conditional or unconditional branch.
	Branch
	// NumClasses is the class count (for stat arrays).
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Load:
		return "load"
	case Store:
		return "store"
	case VLoad:
		return "vload"
	case VStore:
		return "vstore"
	case ALU:
		return "alu"
	case FMA:
		return "fma"
	case VFMA:
		return "vfma"
	case Branch:
		return "branch"
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// IsLoad reports whether the class reads data memory.
func (c Class) IsLoad() bool { return c == Load || c == VLoad }

// IsStore reports whether the class writes data memory.
func (c Class) IsStore() bool { return c == Store || c == VStore }

// IsVector reports whether the class is a SIMD operation.
func (c Class) IsVector() bool { return c == VLoad || c == VStore || c == VFMA }

// Arch identifies a target instruction-set architecture.
type Arch string

// The three evaluated architectures (§IV).
const (
	X86   Arch = "x86"
	ARM   Arch = "arm"
	RISCV Arch = "riscv"
)

// Archs lists all targets in paper order.
func Archs() []Arch { return []Arch{X86, ARM, RISCV} }

// ParseArch converts a flag string to an Arch.
func ParseArch(s string) (Arch, error) {
	switch Arch(s) {
	case X86, ARM, RISCV:
		return Arch(s), nil
	}
	return "", fmt.Errorf("isa: unknown arch %q (want x86|arm|riscv)", s)
}

// Model describes one ISA for code generation and simulation.
type Model struct {
	Arch Arch
	// Lanes is the number of float32 SIMD lanes (1 = no vectors).
	Lanes int
	// GPRegs is the number of allocatable general-purpose registers
	// (addresses, scalar ints).
	GPRegs int
	// FPRegs is the number of allocatable FP/vector registers.
	FPRegs int
	// InstBytes is the average encoded instruction size, which sets the L1I
	// footprint of generated code.
	InstBytes int
}

// Lookup returns the ISA model for an architecture.
//
// x86-64: AVX2 (8×f32), 16 GP + 16 YMM registers, ~4 B average instruction
// length (variable-length encoding).
// AArch64 (Cortex-A72): NEON (4×f32), 31 GP + 32 SIMD registers, 4 B fixed.
// RV64GC (SiFive U74): no vector unit, 32 GP + 32 FP registers, ~3 B average
// (compressed extension mixes 2 B and 4 B encodings).
func Lookup(a Arch) Model {
	switch a {
	case X86:
		return Model{Arch: X86, Lanes: 8, GPRegs: 16, FPRegs: 16, InstBytes: 4}
	case ARM:
		return Model{Arch: ARM, Lanes: 4, GPRegs: 31, FPRegs: 32, InstBytes: 4}
	case RISCV:
		return Model{Arch: RISCV, Lanes: 1, GPRegs: 32, FPRegs: 32, InstBytes: 3}
	}
	panic(fmt.Sprintf("isa: unknown arch %q", a))
}
