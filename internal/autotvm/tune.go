package autotvm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Options configure a tuning session (TVM's measure_option + n_trial).
type Options struct {
	// Trials is the total number of measured candidates.
	Trials int
	// BatchSize candidates are built and measured together (the batch-wise
	// generation the paper's §III-E windows depend on).
	BatchSize int
	// Builder compiles candidates; Runner measures them (Contribution I).
	Builder runner.Builder
	Runner  runner.Runner
}

// TrialRecord is one measured candidate.
type TrialRecord struct {
	Config  ConfigEntity
	Steps   []schedule.Step
	Score   float64
	TimeSec float64
	Stats   *sim.Stats
	Err     error
}

// Tune runs the AutoTVM loop: the tuner proposes configuration batches, the
// template materializes them as schedules, the builder compiles and the
// runner measures, and the scores flow back into the tuner.
func Tune(factory runner.WorkloadFactory, tmpl Template, tuner Tuner, opt Options) ([]TrialRecord, error) {
	if opt.Builder == nil || opt.Runner == nil {
		return nil, errors.New("autotvm: options need Builder and Runner")
	}
	if opt.Trials <= 0 {
		return nil, errors.New("autotvm: Trials must be positive")
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 16
	}
	probe := factory()
	space, err := tmpl.Space(probe)
	if err != nil {
		return nil, err
	}

	var records []TrialRecord
	for len(records) < opt.Trials && tuner.HasNext() {
		want := opt.Trials - len(records)
		if want > opt.BatchSize {
			want = opt.BatchSize
		}
		batch := tuner.NextBatch(want)
		if len(batch) == 0 {
			break
		}
		inputs := make([]runner.MeasureInput, len(batch))
		stepsPer := make([][]schedule.Step, len(batch))
		applyErrs := make([]error, len(batch))
		for i, cfg := range batch {
			wl := factory()
			s, err := tmpl.Apply(wl, space, cfg)
			if err != nil {
				applyErrs[i] = fmt.Errorf("autotvm: apply %s: %w", space.String(cfg), err)
				inputs[i] = runner.MeasureInput{Factory: factory}
				continue
			}
			stepsPer[i] = s.Steps
			inputs[i] = runner.MeasureInput{Factory: factory, Steps: s.Steps}
		}
		builds := opt.Builder.Build(inputs)
		for i := range builds {
			if applyErrs[i] != nil {
				builds[i] = runner.BuildResult{Err: applyErrs[i]}
			}
		}
		results := opt.Runner.Run(inputs, builds)
		scores := make([]float64, len(results))
		for i, res := range results {
			scores[i] = res.Score
			if res.Err != nil {
				scores[i] = math.Inf(1)
			}
			records = append(records, TrialRecord{
				Config:  batch[i],
				Steps:   stepsPer[i],
				Score:   scores[i],
				TimeSec: res.TimeSec,
				Stats:   res.Stats,
				Err:     res.Err,
			})
		}
		tuner.Update(batch, scores)
	}
	if len(records) == 0 {
		return nil, errors.New("autotvm: no candidates were measured")
	}
	return records, nil
}

// Best returns the record with the lowest score (nil if all failed).
func Best(records []TrialRecord) *TrialRecord {
	var best *TrialRecord
	for i := range records {
		r := &records[i]
		if r.Err != nil || math.IsInf(r.Score, 1) {
			continue
		}
		if best == nil || r.Score < best.Score {
			best = r
		}
	}
	return best
}
