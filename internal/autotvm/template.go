package autotvm

import (
	"fmt"

	"repro/internal/schedule"
	"repro/internal/te"
)

// Template is a schedule template with tunable knobs, the AutoTVM concept of
// Listing 2: Space declares the knobs for a workload and Apply materializes
// one configuration as a schedule on a fresh workload instance.
type Template interface {
	Name() string
	Space(wl *te.Workload) (*ConfigSpace, error)
	Apply(wl *te.Workload, cs *ConfigSpace, c ConfigEntity) (*schedule.Schedule, error)
}

// TemplateFor returns the pre-designed template for a workload's kernel
// type, like the operator templates shipped in the TVM repository.
func TemplateFor(wl *te.Workload) (Template, error) {
	switch wl.Kernel {
	case "conv2d_bias_relu", "depthwise_conv2d":
		return ConvTemplate{}, nil
	case "matmul", "dense_bias_relu":
		return MatmulTemplate{}, nil
	}
	return nil, fmt.Errorf("autotvm: no template for kernel %q", wl.Kernel)
}

// ConvTemplate tunes NCHW convolutions: output-channel/height/width tiling,
// reduction-loop order, register-tile order, kw unrolling and innermost
// vectorization.
type ConvTemplate struct{}

// Name implements Template.
func (ConvTemplate) Name() string { return "conv2d_template" }

// Space implements Template.
func (ConvTemplate) Space(wl *te.Workload) (*ConfigSpace, error) {
	sp := wl.Op.Spatial
	if len(sp) != 4 {
		return nil, fmt.Errorf("autotvm: conv template wants 4 spatial axes, got %d", len(sp))
	}
	co, oh, ow := sp[1], sp[2], sp[3]
	cs := &ConfigSpace{}
	if err := cs.AddKnob("tile_co", divisors(co.Extent, 32)); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("tile_oh", divisors(oh.Extent, 8)); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("tile_ow", divisors(ow.Extent, 32)); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("reduce_order", []int{0, 1}); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("tile_order", []int{0, 1, 2}); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("unroll_kw", []int{0, 1}); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("vec", []int{0, 1}); err != nil {
		return nil, err
	}
	return cs, nil
}

// Apply implements Template.
func (ConvTemplate) Apply(wl *te.Workload, cs *ConfigSpace, c ConfigEntity) (*schedule.Schedule, error) {
	s := schedule.New(wl.Op)
	// Leaves: n, co, oh, ow, then reduce axes (ci,kh,kw or kh,kw for
	// depthwise).
	n := s.Leaves[0]
	co, oh, ow := s.Leaves[1], s.Leaves[2], s.Leaves[3]
	reduce := append([]*schedule.IterVar{}, s.Leaves[4:]...)

	coO, coI, err := s.Split(co, cs.Value(c, "tile_co"))
	if err != nil {
		return nil, err
	}
	ohO, ohI, err := s.Split(oh, cs.Value(c, "tile_oh"))
	if err != nil {
		return nil, err
	}
	owO, owI, err := s.Split(ow, cs.Value(c, "tile_ow"))
	if err != nil {
		return nil, err
	}

	red := append([]*schedule.IterVar{}, reduce...)
	if cs.Value(c, "reduce_order") == 1 && len(red) >= 2 {
		// Rotate: put the channel axis last (kh,kw,ci for full conv).
		red = append(red[1:], red[0])
	}
	var tile []*schedule.IterVar
	switch cs.Value(c, "tile_order") {
	case 0:
		tile = []*schedule.IterVar{coI, ohI, owI}
	case 1:
		tile = []*schedule.IterVar{ohI, coI, owI}
	default:
		tile = []*schedule.IterVar{ohI, owI, coI}
	}

	order := []*schedule.IterVar{n, coO, ohO, owO}
	order = append(order, red...)
	order = append(order, tile...)
	if err := s.Reorder(order); err != nil {
		return nil, err
	}
	if cs.Value(c, "unroll_kw") == 1 {
		// Unroll the innermost reduce axis of the chosen order.
		if err := s.Unroll(red[len(red)-1]); err != nil {
			return nil, err
		}
	}
	if cs.Value(c, "vec") == 1 {
		if err := s.Vectorize(tile[len(tile)-1]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MatmulTemplate tunes MMM/dense kernels: i/j/k tiling, loop order and
// innermost vectorization (the Listing 1/2 example of the paper).
type MatmulTemplate struct{}

// Name implements Template.
func (MatmulTemplate) Name() string { return "matmul_template" }

// Space implements Template.
func (MatmulTemplate) Space(wl *te.Workload) (*ConfigSpace, error) {
	sp := wl.Op.Spatial
	if len(sp) != 2 || len(wl.Op.Reduce) != 1 {
		return nil, fmt.Errorf("autotvm: matmul template wants 2 spatial + 1 reduce axes")
	}
	cs := &ConfigSpace{}
	if err := cs.AddKnob("tile_i", divisors(sp[0].Extent, 32)); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("tile_j", divisors(sp[1].Extent, 64)); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("tile_k", divisors(wl.Op.Reduce[0].Extent, 16)); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("order", []int{0, 1, 2}); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("unroll_k", []int{0, 1}); err != nil {
		return nil, err
	}
	if err := cs.AddKnob("vec", []int{0, 1}); err != nil {
		return nil, err
	}
	return cs, nil
}

// Apply implements Template.
func (MatmulTemplate) Apply(wl *te.Workload, cs *ConfigSpace, c ConfigEntity) (*schedule.Schedule, error) {
	s := schedule.New(wl.Op)
	i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
	iO, iI, err := s.Split(i, cs.Value(c, "tile_i"))
	if err != nil {
		return nil, err
	}
	jO, jI, err := s.Split(j, cs.Value(c, "tile_j"))
	if err != nil {
		return nil, err
	}
	kO, kI, err := s.Split(k, cs.Value(c, "tile_k"))
	if err != nil {
		return nil, err
	}
	var order []*schedule.IterVar
	switch cs.Value(c, "order") {
	case 0:
		order = []*schedule.IterVar{iO, jO, kO, iI, kI, jI}
	case 1:
		order = []*schedule.IterVar{iO, jO, iI, kO, kI, jI}
	default:
		order = []*schedule.IterVar{iO, jO, kO, kI, iI, jI}
	}
	if err := s.Reorder(order); err != nil {
		return nil, err
	}
	if cs.Value(c, "unroll_k") == 1 {
		if err := s.Unroll(kI); err != nil {
			return nil, err
		}
	}
	if cs.Value(c, "vec") == 1 {
		if err := s.Vectorize(jI); err != nil {
			return nil, err
		}
	}
	return s, nil
}
