// Package autotvm reproduces TVM's template-based autotuning (§II-A,
// Listing 2): a schedule template declares tunable knobs (split factors,
// loop-order choices, unroll/vectorize annotations) spanning a ConfigSpace;
// tuners (random, grid, genetic, model-guided) walk that space, and each
// chosen ConfigEntity is applied to a fresh schedule and measured through
// the runner interface of Contribution I.
package autotvm

import (
	"fmt"
	"strings"

	"repro/internal/num"
)

// Knob is one tunable dimension of a template's configuration space.
type Knob struct {
	// Name identifies the knob ("tile_co", "reorder", "vec", ...).
	Name string
	// Options are the selectable values (split factors, choice indices...).
	Options []int
}

// ConfigSpace is the cross product of all knob options.
type ConfigSpace struct {
	Knobs []Knob
}

// AddKnob appends a knob; empty option lists are rejected.
func (cs *ConfigSpace) AddKnob(name string, options []int) error {
	if len(options) == 0 {
		return fmt.Errorf("autotvm: knob %s has no options", name)
	}
	cs.Knobs = append(cs.Knobs, Knob{Name: name, Options: options})
	return nil
}

// Size is the total number of configurations.
func (cs *ConfigSpace) Size() int {
	n := 1
	for _, k := range cs.Knobs {
		n *= len(k.Options)
	}
	return n
}

// ConfigEntity selects one option index per knob.
type ConfigEntity struct {
	Choices []int
}

// Value returns the chosen option value of knob k.
func (cs *ConfigSpace) Value(c ConfigEntity, name string) int {
	for i, k := range cs.Knobs {
		if k.Name == name {
			return k.Options[c.Choices[i]]
		}
	}
	panic(fmt.Sprintf("autotvm: unknown knob %q", name))
}

// FromIndex decodes a flat index into a configuration (mixed radix).
func (cs *ConfigSpace) FromIndex(idx int) ConfigEntity {
	c := ConfigEntity{Choices: make([]int, len(cs.Knobs))}
	for i := len(cs.Knobs) - 1; i >= 0; i-- {
		n := len(cs.Knobs[i].Options)
		c.Choices[i] = idx % n
		idx /= n
	}
	return c
}

// Index encodes a configuration back to its flat index.
func (cs *ConfigSpace) Index(c ConfigEntity) int {
	idx := 0
	for i, k := range cs.Knobs {
		idx = idx*len(k.Options) + c.Choices[i]
	}
	return idx
}

// Sample draws a uniform random configuration.
func (cs *ConfigSpace) Sample(rng *num.RNG) ConfigEntity {
	c := ConfigEntity{Choices: make([]int, len(cs.Knobs))}
	for i, k := range cs.Knobs {
		c.Choices[i] = rng.Intn(len(k.Options))
	}
	return c
}

// Features turns a configuration into a numeric vector (knob option values)
// for the model-guided tuner.
func (cs *ConfigSpace) Features(c ConfigEntity) []float64 {
	out := make([]float64, len(cs.Knobs))
	for i, k := range cs.Knobs {
		out[i] = float64(k.Options[c.Choices[i]])
	}
	return out
}

// String renders a configuration with knob names.
func (cs *ConfigSpace) String(c ConfigEntity) string {
	var b strings.Builder
	for i, k := range cs.Knobs {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%s=%d", k.Name, k.Options[c.Choices[i]])
	}
	return b.String()
}

// divisors returns the sorted divisors of n (including 1 and n), capped.
func divisors(n, cap int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 && d <= cap {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
