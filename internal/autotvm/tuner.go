package autotvm

import (
	"math"

	"repro/internal/num"
	"repro/internal/predictor/xgb"
)

// Tuner proposes configurations and learns from measured scores (AutoTVM's
// tuner concept, §II-A: "AutoTVM relies on tuners responsible for selecting
// subsequent programs based on selectable tuning algorithms").
type Tuner interface {
	Name() string
	// NextBatch proposes up to n configurations (fewer when the space is
	// nearly exhausted).
	NextBatch(n int) []ConfigEntity
	// Update feeds back measured scores (lower = faster; +Inf = failed).
	Update(cfgs []ConfigEntity, scores []float64)
	// HasNext reports whether unexplored configurations remain.
	HasNext() bool
}

// visitTracker deduplicates visited flat indices.
type visitTracker struct {
	space   *ConfigSpace
	visited map[int]bool
}

func newVisitTracker(space *ConfigSpace) *visitTracker {
	return &visitTracker{space: space, visited: map[int]bool{}}
}

func (v *visitTracker) seen(c ConfigEntity) bool { return v.visited[v.space.Index(c)] }
func (v *visitTracker) mark(c ConfigEntity)      { v.visited[v.space.Index(c)] = true }
func (v *visitTracker) exhausted() bool          { return len(v.visited) >= v.space.Size() }

// RandomTuner samples uniformly without replacement.
type RandomTuner struct {
	space *ConfigSpace
	rng   *num.RNG
	track *visitTracker
}

// NewRandomTuner builds a random tuner over the space.
func NewRandomTuner(space *ConfigSpace, rng *num.RNG) *RandomTuner {
	return &RandomTuner{space: space, rng: rng, track: newVisitTracker(space)}
}

// Name implements Tuner.
func (t *RandomTuner) Name() string { return "random" }

// NextBatch implements Tuner.
func (t *RandomTuner) NextBatch(n int) []ConfigEntity {
	var out []ConfigEntity
	misses := 0
	for len(out) < n && !t.track.exhausted() && misses < 64*n {
		c := t.space.Sample(t.rng)
		if t.track.seen(c) {
			misses++
			continue
		}
		t.track.mark(c)
		out = append(out, c)
	}
	return out
}

// Update implements Tuner (random search learns nothing).
func (t *RandomTuner) Update([]ConfigEntity, []float64) {}

// HasNext implements Tuner.
func (t *RandomTuner) HasNext() bool { return !t.track.exhausted() }

// GridTuner enumerates the space in index order.
type GridTuner struct {
	space *ConfigSpace
	next  int
}

// NewGridTuner builds a grid-search tuner.
func NewGridTuner(space *ConfigSpace) *GridTuner { return &GridTuner{space: space} }

// Name implements Tuner.
func (t *GridTuner) Name() string { return "gridsearch" }

// NextBatch implements Tuner.
func (t *GridTuner) NextBatch(n int) []ConfigEntity {
	var out []ConfigEntity
	for len(out) < n && t.next < t.space.Size() {
		out = append(out, t.space.FromIndex(t.next))
		t.next++
	}
	return out
}

// Update implements Tuner.
func (t *GridTuner) Update([]ConfigEntity, []float64) {}

// HasNext implements Tuner.
func (t *GridTuner) HasNext() bool { return t.next < t.space.Size() }

// GATuner is a genetic-algorithm tuner: tournament selection over measured
// configurations, knob-wise crossover, point mutation.
type GATuner struct {
	space  *ConfigSpace
	rng    *num.RNG
	track  *visitTracker
	elites []scoredConfig
	// EliteSize bounds the breeding population; MutationProb mutates each
	// knob independently.
	EliteSize    int
	MutationProb float64
}

type scoredConfig struct {
	cfg   ConfigEntity
	score float64
}

// NewGATuner builds a genetic tuner.
func NewGATuner(space *ConfigSpace, rng *num.RNG) *GATuner {
	return &GATuner{space: space, rng: rng, track: newVisitTracker(space),
		EliteSize: 32, MutationProb: 0.15}
}

// Name implements Tuner.
func (t *GATuner) Name() string { return "ga" }

// NextBatch implements Tuner: random until enough elites exist, then breed.
func (t *GATuner) NextBatch(n int) []ConfigEntity {
	var out []ConfigEntity
	misses := 0
	for len(out) < n && !t.track.exhausted() && misses < 128*n {
		var c ConfigEntity
		if len(t.elites) < 4 {
			c = t.space.Sample(t.rng)
		} else {
			c = t.breed()
		}
		if t.track.seen(c) {
			misses++
			continue
		}
		t.track.mark(c)
		out = append(out, c)
	}
	return out
}

// breed produces a child via tournament selection + crossover + mutation.
func (t *GATuner) breed() ConfigEntity {
	a := t.tournament()
	b := t.tournament()
	child := ConfigEntity{Choices: make([]int, len(t.space.Knobs))}
	for i := range child.Choices {
		if t.rng.Float64() < 0.5 {
			child.Choices[i] = a.Choices[i]
		} else {
			child.Choices[i] = b.Choices[i]
		}
		if t.rng.Float64() < t.MutationProb {
			child.Choices[i] = t.rng.Intn(len(t.space.Knobs[i].Options))
		}
	}
	return child
}

// tournament picks the better of two random elites.
func (t *GATuner) tournament() ConfigEntity {
	a := t.elites[t.rng.Intn(len(t.elites))]
	b := t.elites[t.rng.Intn(len(t.elites))]
	if a.score <= b.score {
		return a.cfg
	}
	return b.cfg
}

// Update implements Tuner: keep the EliteSize best configurations.
func (t *GATuner) Update(cfgs []ConfigEntity, scores []float64) {
	for i, c := range cfgs {
		if math.IsInf(scores[i], 1) || math.IsNaN(scores[i]) {
			continue
		}
		t.elites = append(t.elites, scoredConfig{cfg: c, score: scores[i]})
	}
	// Partial selection: keep best EliteSize.
	for i := 0; i < len(t.elites); i++ {
		for j := i + 1; j < len(t.elites); j++ {
			if t.elites[j].score < t.elites[i].score {
				t.elites[i], t.elites[j] = t.elites[j], t.elites[i]
			}
		}
	}
	if len(t.elites) > t.EliteSize {
		t.elites = t.elites[:t.EliteSize]
	}
}

// HasNext implements Tuner.
func (t *GATuner) HasNext() bool { return !t.track.exhausted() }

// ModelTuner is the XGBoost-cost-model tuner (AutoTVM's XGBTuner): it fits
// boosted trees on knob features → measured scores and proposes the best
// predicted configurations from a random candidate pool (ε-greedy).
type ModelTuner struct {
	space *ConfigSpace
	rng   *num.RNG
	track *visitTracker
	xs    [][]float64
	ys    []float64
	// PoolSize candidates are scored per batch; Epsilon of each batch stays
	// random for exploration.
	PoolSize int
	Epsilon  float64
}

// NewModelTuner builds the cost-model tuner.
func NewModelTuner(space *ConfigSpace, rng *num.RNG) *ModelTuner {
	return &ModelTuner{space: space, rng: rng, track: newVisitTracker(space),
		PoolSize: 256, Epsilon: 0.2}
}

// Name implements Tuner.
func (t *ModelTuner) Name() string { return "xgb-model" }

// NextBatch implements Tuner.
func (t *ModelTuner) NextBatch(n int) []ConfigEntity {
	var out []ConfigEntity
	nRandom := n
	if len(t.ys) >= 16 {
		nRandom = int(float64(n) * t.Epsilon)
		model := xgb.New(xgb.Config{Rounds: 60, LearningRate: 0.1, MaxDepth: 4,
			ColSample: 1, SubSample: 1, Lambda: 1, MinChildWeight: 1}, t.rng.Split())
		if err := model.Fit(t.xs, t.ys); err == nil {
			type cand struct {
				cfg  ConfigEntity
				pred float64
			}
			var pool []cand
			for i := 0; i < t.PoolSize; i++ {
				c := t.space.Sample(t.rng)
				if t.track.seen(c) {
					continue
				}
				pool = append(pool, cand{cfg: c, pred: model.Predict(t.space.Features(c))})
			}
			// Selection sort of the pool by predicted score.
			for i := 0; i < len(pool) && len(out) < n-nRandom; i++ {
				best := i
				for j := i + 1; j < len(pool); j++ {
					if pool[j].pred < pool[best].pred {
						best = j
					}
				}
				pool[i], pool[best] = pool[best], pool[i]
				if !t.track.seen(pool[i].cfg) {
					t.track.mark(pool[i].cfg)
					out = append(out, pool[i].cfg)
				}
			}
		}
	}
	misses := 0
	for len(out) < n && !t.track.exhausted() && misses < 128*n {
		c := t.space.Sample(t.rng)
		if t.track.seen(c) {
			misses++
			continue
		}
		t.track.mark(c)
		out = append(out, c)
	}
	return out
}

// Update implements Tuner.
func (t *ModelTuner) Update(cfgs []ConfigEntity, scores []float64) {
	for i, c := range cfgs {
		if math.IsInf(scores[i], 1) || math.IsNaN(scores[i]) {
			continue
		}
		t.xs = append(t.xs, t.space.Features(c))
		t.ys = append(t.ys, scores[i])
	}
}

// HasNext implements Tuner.
func (t *ModelTuner) HasNext() bool { return !t.track.exhausted() }
