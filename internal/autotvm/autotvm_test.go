package autotvm

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/num"
	"repro/internal/runner"
	"repro/internal/te"
)

func TestConfigSpaceIndexRoundTrip(t *testing.T) {
	cs := &ConfigSpace{}
	_ = cs.AddKnob("a", []int{1, 2, 3})
	_ = cs.AddKnob("b", []int{10, 20})
	_ = cs.AddKnob("c", []int{5})
	if cs.Size() != 6 {
		t.Fatalf("size = %d want 6", cs.Size())
	}
	for i := 0; i < cs.Size(); i++ {
		c := cs.FromIndex(i)
		if cs.Index(c) != i {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestConfigSpaceValueAndFeatures(t *testing.T) {
	cs := &ConfigSpace{}
	_ = cs.AddKnob("tile", []int{1, 4, 8})
	c := ConfigEntity{Choices: []int{2}}
	if cs.Value(c, "tile") != 8 {
		t.Fatalf("value = %d", cs.Value(c, "tile"))
	}
	if f := cs.Features(c); f[0] != 8 {
		t.Fatalf("features = %v", f)
	}
	if cs.String(c) != "tile=8" {
		t.Fatalf("string = %s", cs.String(c))
	}
}

func TestConfigSpaceRejectsEmptyKnob(t *testing.T) {
	cs := &ConfigSpace{}
	if err := cs.AddKnob("x", nil); err == nil {
		t.Fatal("empty knob must error")
	}
}

func TestDivisors(t *testing.T) {
	got := divisors(12, 100)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("divisors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors = %v", got)
		}
	}
	if capped := divisors(12, 4); capped[len(capped)-1] != 4 {
		t.Fatalf("cap ignored: %v", capped)
	}
	if d := divisors(7, 3); len(d) != 1 || d[0] != 1 {
		t.Fatalf("prime with low cap = %v", d)
	}
}

func TestTemplateFor(t *testing.T) {
	if _, err := TemplateFor(te.MatMul(4, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := TemplateFor(te.ConvGroup(te.ScaleTiny, 0)); err != nil {
		t.Fatal(err)
	}
	bad := &te.Workload{Kernel: "softmax"}
	if _, err := TemplateFor(bad); err == nil {
		t.Fatal("unknown kernel must error")
	}
}

func TestConvTemplateAllConfigsBuild(t *testing.T) {
	factory := func() *te.Workload { return te.ConvGroup(te.ScaleTiny, 0) }
	tmpl := ConvTemplate{}
	space, err := tmpl.Space(factory())
	if err != nil {
		t.Fatal(err)
	}
	if space.Size() < 50 {
		t.Fatalf("conv space suspiciously small: %d", space.Size())
	}
	rng := num.NewRNG(3)
	b := runner.LocalBuilder{Arch: isa.X86}
	for trial := 0; trial < 25; trial++ {
		cfg := space.Sample(rng)
		wl := factory()
		s, err := tmpl.Apply(wl, space, cfg)
		if err != nil {
			t.Fatalf("apply %s: %v", space.String(cfg), err)
		}
		res := b.Build([]runner.MeasureInput{{Factory: factory, Steps: s.Steps}})
		if res[0].Err != nil {
			t.Fatalf("config %s failed to build: %v", space.String(cfg), res[0].Err)
		}
	}
}

func TestMatmulTemplateAllConfigsBuild(t *testing.T) {
	factory := func() *te.Workload { return te.MatMul(16, 12, 24) }
	tmpl := MatmulTemplate{}
	space, err := tmpl.Space(factory())
	if err != nil {
		t.Fatal(err)
	}
	rng := num.NewRNG(5)
	b := runner.LocalBuilder{Arch: isa.ARM}
	for trial := 0; trial < 25; trial++ {
		cfg := space.Sample(rng)
		wl := factory()
		s, err := tmpl.Apply(wl, space, cfg)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		res := b.Build([]runner.MeasureInput{{Factory: factory, Steps: s.Steps}})
		if res[0].Err != nil {
			t.Fatalf("config %s failed to build: %v", space.String(cfg), res[0].Err)
		}
	}
}

func smallSpace() *ConfigSpace {
	cs := &ConfigSpace{}
	_ = cs.AddKnob("a", []int{0, 1, 2, 3})
	_ = cs.AddKnob("b", []int{0, 1, 2, 3})
	return cs
}

func TestRandomTunerNoRepeats(t *testing.T) {
	cs := smallSpace()
	tn := NewRandomTuner(cs, num.NewRNG(1))
	seen := map[int]bool{}
	total := 0
	for tn.HasNext() {
		batch := tn.NextBatch(5)
		if len(batch) == 0 {
			break
		}
		for _, c := range batch {
			idx := cs.Index(c)
			if seen[idx] {
				t.Fatalf("config %d proposed twice", idx)
			}
			seen[idx] = true
			total++
		}
	}
	if total != cs.Size() {
		t.Fatalf("random tuner visited %d of %d", total, cs.Size())
	}
}

func TestGridTunerEnumeratesAll(t *testing.T) {
	cs := smallSpace()
	tn := NewGridTuner(cs)
	var all []ConfigEntity
	for tn.HasNext() {
		all = append(all, tn.NextBatch(3)...)
	}
	if len(all) != cs.Size() {
		t.Fatalf("grid visited %d of %d", len(all), cs.Size())
	}
	if cs.Index(all[0]) != 0 || cs.Index(all[len(all)-1]) != cs.Size()-1 {
		t.Fatal("grid order wrong")
	}
}

// syntheticObjective is a deterministic function over configs with a known
// optimum, used to test that learning tuners beat random on average.
func syntheticObjective(cs *ConfigSpace, c ConfigEntity) float64 {
	f := cs.Features(c)
	s := 0.0
	for _, v := range f {
		s += (v - 2) * (v - 2)
	}
	return s
}

func bigSpace() *ConfigSpace {
	cs := &ConfigSpace{}
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		_ = cs.AddKnob(n, []int{0, 1, 2, 3, 4, 5, 6, 7})
	}
	return cs
}

func runTuner(tn Tuner, cs *ConfigSpace, trials int) float64 {
	best := math.Inf(1)
	for measured := 0; measured < trials && tn.HasNext(); {
		batch := tn.NextBatch(16)
		if len(batch) == 0 {
			break
		}
		scores := make([]float64, len(batch))
		for i, c := range batch {
			scores[i] = syntheticObjective(cs, c)
			if scores[i] < best {
				best = scores[i]
			}
		}
		tn.Update(batch, scores)
		measured += len(batch)
	}
	return best
}

func TestGATunerBeatsRandomOnAverage(t *testing.T) {
	wins := 0
	for seed := uint64(0); seed < 7; seed++ {
		cs := bigSpace()
		ga := runTuner(NewGATuner(cs, num.NewRNG(seed)), cs, 160)
		rd := runTuner(NewRandomTuner(cs, num.NewRNG(seed)), cs, 160)
		if ga <= rd {
			wins++
		}
	}
	if wins < 4 {
		t.Fatalf("GA won only %d/7 runs against random", wins)
	}
}

func TestModelTunerBeatsRandomOnAverage(t *testing.T) {
	wins := 0
	for seed := uint64(0); seed < 7; seed++ {
		cs := bigSpace()
		md := runTuner(NewModelTuner(cs, num.NewRNG(seed)), cs, 160)
		rd := runTuner(NewRandomTuner(cs, num.NewRNG(seed)), cs, 160)
		if md <= rd {
			wins++
		}
	}
	if wins < 4 {
		t.Fatalf("model tuner won only %d/7 runs against random", wins)
	}
}

func TestTuneEndToEndSimulator(t *testing.T) {
	factory := func() *te.Workload { return te.MatMul(16, 16, 16) }
	tmpl := MatmulTemplate{}
	space, _ := tmpl.Space(factory())
	opt := Options{
		Trials:    24,
		BatchSize: 8,
		Builder:   runner.LocalBuilder{Arch: isa.X86},
		Runner:    runner.NewSimulatorRunner(hw.Lookup(isa.X86).Caches, 2, nil),
	}
	records, err := Tune(factory, tmpl, NewRandomTuner(space, num.NewRNG(2)), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 24 {
		t.Fatalf("records = %d want 24", len(records))
	}
	for _, r := range records {
		if r.Err == nil && r.Stats == nil {
			t.Fatal("simulator runner must attach stats")
		}
	}
}

func TestTuneEndToEndNative(t *testing.T) {
	factory := func() *te.Workload { return te.MatMul(16, 16, 16) }
	tmpl := MatmulTemplate{}
	space, _ := tmpl.Space(factory())
	opt := Options{
		Trials:    8,
		BatchSize: 4,
		Builder:   runner.LocalBuilder{Arch: isa.RISCV},
		Runner: runner.NewLocalRunner(hw.Lookup(isa.RISCV),
			hw.DefaultMeasureOptions(), num.NewRNG(3)),
	}
	records, err := Tune(factory, tmpl, NewRandomTuner(space, num.NewRNG(4)), opt)
	if err != nil {
		t.Fatal(err)
	}
	best := Best(records)
	if best == nil || best.TimeSec <= 0 {
		t.Fatalf("no valid best record: %+v", best)
	}
	// Best must be no worse than the first record.
	if best.Score > records[0].Score {
		t.Fatal("Best returned a non-minimal record")
	}
}

func TestTuneOptionValidation(t *testing.T) {
	factory := func() *te.Workload { return te.MatMul(4, 4, 4) }
	tmpl := MatmulTemplate{}
	space, _ := tmpl.Space(factory())
	if _, err := Tune(factory, tmpl, NewRandomTuner(space, num.NewRNG(1)), Options{}); err == nil {
		t.Fatal("missing builder/runner must error")
	}
	opt := Options{Trials: -1, Builder: runner.LocalBuilder{Arch: isa.X86},
		Runner: runner.NewSimulatorRunner(hw.Lookup(isa.X86).Caches, 1, nil)}
	if _, err := Tune(factory, tmpl, NewRandomTuner(space, num.NewRNG(1)), opt); err == nil {
		t.Fatal("non-positive trials must error")
	}
}

func TestBestSkipsFailures(t *testing.T) {
	records := []TrialRecord{
		{Score: math.Inf(1)},
		{Score: 5},
		{Score: 3},
		{Score: 1, Err: errTest},
	}
	b := Best(records)
	if b == nil || b.Score != 3 {
		t.Fatalf("best = %+v", b)
	}
	if Best([]TrialRecord{{Score: math.Inf(1)}}) != nil {
		t.Fatal("all-failed must return nil")
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test" }
