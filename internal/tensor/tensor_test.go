package tensor

import (
	"testing"
	"testing/quick"
)

func TestShapeSize(t *testing.T) {
	if (Shape{2, 3, 4}).Size() != 24 {
		t.Fatal("size wrong")
	}
	if (Shape{}).Size() != 1 {
		t.Fatal("rank-0 size must be 1")
	}
	if (Shape{5, 0}).Size() != 0 {
		t.Fatal("zero dim size must be 0")
	}
}

func TestShapeStrides(t *testing.T) {
	st := (Shape{2, 3, 4}).Strides()
	if st[0] != 12 || st[1] != 4 || st[2] != 1 {
		t.Fatalf("strides = %v", st)
	}
}

func TestShapeEqualClone(t *testing.T) {
	a := Shape{1, 2}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = 9
	if a[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if a.Equal(Shape{1}) || a.Equal(Shape{1, 3}) {
		t.Fatal("equal false positives")
	}
}

func TestLinearIndexMatchesStrides(t *testing.T) {
	tt := New("x", Shape{2, 3, 4})
	if tt.LinearIndex([]int{1, 2, 3}) != 1*12+2*4+3 {
		t.Fatal("linear index wrong")
	}
	if tt.LinearIndex([]int{0, 0, 0}) != 0 {
		t.Fatal("zero index wrong")
	}
}

func TestLinearIndexRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("x", Shape{2, 2}).LinearIndex([]int{1})
}

func TestInBounds(t *testing.T) {
	tt := New("x", Shape{2, 3})
	if !tt.InBounds([]int{1, 2}) {
		t.Fatal("in-bounds reported out")
	}
	for _, idx := range [][]int{{-1, 0}, {2, 0}, {0, 3}, {0}} {
		if tt.InBounds(idx) {
			t.Fatalf("out-of-bounds %v reported in", idx)
		}
	}
}

func TestAllocIdempotent(t *testing.T) {
	tt := New("x", Shape{4}).Alloc()
	tt.Data[2] = 7
	tt.Alloc()
	if tt.Data[2] != 7 {
		t.Fatal("re-Alloc must not clear data")
	}
	if len(tt.Data) != 4 {
		t.Fatalf("data len = %d", len(tt.Data))
	}
}

func TestAddressSpacePlacement(t *testing.T) {
	as := NewAddressSpace()
	a := New("a", Shape{100})
	b := New("b", Shape{100})
	as.Place(a)
	as.Place(b)
	if a.Base == 0 {
		t.Fatal("base address 0 must be reserved")
	}
	if a.Base%PageAlign != 0 || b.Base%PageAlign != 0 {
		t.Fatal("bases must be page aligned")
	}
	aEnd := a.Base + a.Bytes()
	if b.Base < aEnd {
		t.Fatalf("tensors overlap: a=[%d,%d) b starts %d", a.Base, aEnd, b.Base)
	}
}

func TestAddressSpaceReserve(t *testing.T) {
	as := NewAddressSpace()
	r1 := as.Reserve(10)
	r2 := as.Reserve(10)
	if r2 <= r1 || r1%PageAlign != 0 {
		t.Fatalf("reserve regions overlap or misaligned: %d %d", r1, r2)
	}
}

func TestAddrOf(t *testing.T) {
	tt := New("x", Shape{8})
	tt.Base = 4096
	if tt.AddrOf(3) != 4096+3*ElemSize {
		t.Fatalf("addr = %d", tt.AddrOf(3))
	}
}

// Property: LinearIndex is a bijection over the index space (no collisions).
func TestLinearIndexBijectionProperty(t *testing.T) {
	f := func(d1, d2 uint8) bool {
		a := int(d1%5) + 1
		b := int(d2%5) + 1
		tt := New("x", Shape{a, b})
		seen := map[int]bool{}
		for i := 0; i < a; i++ {
			for j := 0; j < b; j++ {
				li := tt.LinearIndex([]int{i, j})
				if li < 0 || li >= a*b || seen[li] {
					return false
				}
				seen[li] = true
			}
		}
		return len(seen) == a*b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
