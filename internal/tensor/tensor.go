// Package tensor provides shapes, row-major strides, and buffers for the
// tensor-expression layer, plus the virtual-address layout used by the
// instruction-accurate simulator: every tensor is placed at a page-aligned
// base address in a flat virtual address space so that the lowered program
// can emit concrete load/store addresses for the cache hierarchy.
package tensor

import "fmt"

// ElemSize is the element width in bytes (float32 workloads, as in the
// paper's TVM ML kernels).
const ElemSize = 4

// PageAlign is the base-address alignment for tensor allocations.
const PageAlign = 4096

// Shape is the extent of each tensor dimension.
type Shape []int

// Size returns the number of elements (1 for a rank-0 shape).
func (s Shape) Size() int {
	n := 1
	for _, d := range s {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dim in shape %v", s))
		}
		n *= d
	}
	return n
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// Equal reports whether two shapes match exactly.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Strides returns row-major element strides for the shape.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// Tensor is a named, row-major float32 buffer with a virtual base address.
type Tensor struct {
	Name   string
	Shape  Shape
	Stride []int // element strides, row-major
	Base   uint64
	Data   []float32 // nil until Alloc (address-only simulation needs no data)
}

// New creates a tensor descriptor without allocating data.
func New(name string, shape Shape) *Tensor {
	return &Tensor{Name: name, Shape: shape.Clone(), Stride: shape.Strides()}
}

// Alloc materializes the data buffer (zeroed).
func (t *Tensor) Alloc() *Tensor {
	if t.Data == nil {
		t.Data = make([]float32, t.Shape.Size())
	}
	return t
}

// NumElems returns the element count.
func (t *Tensor) NumElems() int { return t.Shape.Size() }

// Bytes returns the buffer size in bytes.
func (t *Tensor) Bytes() uint64 { return uint64(t.Shape.Size()) * ElemSize }

// LinearIndex converts a multi-index to a flat element offset.
// It panics on rank mismatch; bounds are the caller's responsibility
// (the lowering layer guards out-of-range accesses before indexing).
func (t *Tensor) LinearIndex(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor %s: index rank %d vs shape rank %d", t.Name, len(idx), len(t.Shape)))
	}
	off := 0
	for i, v := range idx {
		off += v * t.Stride[i]
	}
	return off
}

// AddrOf returns the virtual byte address of the element at flat offset.
func (t *Tensor) AddrOf(flat int) uint64 { return t.Base + uint64(flat)*ElemSize }

// InBounds reports whether a multi-index is inside the shape.
func (t *Tensor) InBounds(idx []int) bool {
	if len(idx) != len(t.Shape) {
		return false
	}
	for i, v := range idx {
		if v < 0 || v >= t.Shape[i] {
			return false
		}
	}
	return true
}

// AddressSpace hands out page-aligned, non-overlapping base addresses.
// Region zero is reserved so that address 0 never aliases a tensor.
type AddressSpace struct {
	next uint64
}

// NewAddressSpace starts allocation at one page to keep address 0 unused.
func NewAddressSpace() *AddressSpace { return &AddressSpace{next: PageAlign} }

// Place assigns the tensor a base address and advances the allocator with a
// one-page guard gap between tensors.
func (a *AddressSpace) Place(t *Tensor) {
	t.Base = a.next
	sz := t.Bytes()
	sz = (sz + PageAlign - 1) / PageAlign * PageAlign
	a.next += sz + PageAlign
}

// Reserve returns a base address for a raw region of the given byte size
// (used for the spill stack and the code segment).
func (a *AddressSpace) Reserve(size uint64) uint64 {
	base := a.next
	size = (size + PageAlign - 1) / PageAlign * PageAlign
	a.next += size + PageAlign
	return base
}
