package metrics

import (
	"math"
	"testing"

	"repro/internal/num"
)

func TestPerfectPrediction(t *testing.T) {
	tref := []float64{5, 1, 3, 2, 4, 6, 8, 7}
	scores := []float64{50, 10, 30, 20, 40, 60, 80, 70} // same order
	r := Evaluate(tref, scores)
	if r.Etop1 != 0 {
		t.Fatalf("Etop1 = %v want 0", r.Etop1)
	}
	// Best sample ranked first: R = 100/8 · 1 = 12.5.
	if r.Rtop1 != 12.5 {
		t.Fatalf("Rtop1 = %v want 12.5", r.Rtop1)
	}
	if r.Qlow != 0 || r.Qhigh != 0 {
		t.Fatalf("Q = %v/%v want 0", r.Qlow, r.Qhigh)
	}
	if math.Abs(r.Spearman-1) > 1e-9 {
		t.Fatalf("spearman = %v", r.Spearman)
	}
}

func TestEtop1KnownValue(t *testing.T) {
	// Predictor picks sample with t=2 first; true best is 1:
	// E = |1 - 1/2|·100 = 50%.
	tref := []float64{2, 1}
	scores := []float64{0, 1}
	r := Evaluate(tref, scores)
	if r.Etop1 != 50 {
		t.Fatalf("Etop1 = %v want 50", r.Etop1)
	}
	// True best ranked second of two: R = 100/2·2 = 100.
	if r.Rtop1 != 100 {
		t.Fatalf("Rtop1 = %v want 100", r.Rtop1)
	}
}

func TestRtop1Position(t *testing.T) {
	// 10 samples; predictor puts true best at position 3 (index 2).
	tref := []float64{10, 11, 1, 12, 13, 14, 15, 16, 17, 18}
	scores := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // prediction order = index order
	r := Evaluate(tref, scores)
	if r.Rtop1 != 30 {
		t.Fatalf("Rtop1 = %v want 30 (position 3 of 10)", r.Rtop1)
	}
}

func TestQualityScoreKnown(t *testing.T) {
	// Sequence 2,1: dip = (2-1)/2 = 0.5 → Q = 100/2·0.5 = 25.
	if q := qualityScore([]float64{2, 1}); q != 25 {
		t.Fatalf("q = %v want 25", q)
	}
	// Monotone sequence → 0.
	if q := qualityScore([]float64{1, 2, 3}); q != 0 {
		t.Fatalf("q = %v want 0", q)
	}
	if q := qualityScore([]float64{5}); q != 0 {
		t.Fatal("single sample must score 0")
	}
}

func TestQlowQhighSplit(t *testing.T) {
	// First half perfectly sorted, second half reversed: Qlow = 0, Qhigh > 0.
	tref := []float64{1, 2, 3, 4, 8, 7, 6, 5}
	scores := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	r := Evaluate(tref, scores)
	if r.Qlow != 0 {
		t.Fatalf("Qlow = %v want 0", r.Qlow)
	}
	if r.Qhigh <= 0 {
		t.Fatalf("Qhigh = %v want > 0", r.Qhigh)
	}
}

func TestEvaluateMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate([]float64{1}, []float64{1, 2})
}

func TestEvaluateEmpty(t *testing.T) {
	r := Evaluate(nil, nil)
	if r.Etop1 != 0 || r.Rtop1 != 0 {
		t.Fatal("empty evaluation must be zero")
	}
}

func TestRandomPredictionWorseThanPerfect(t *testing.T) {
	rng := num.NewRNG(4)
	n := 100
	tref := make([]float64, n)
	perfect := make([]float64, n)
	random := make([]float64, n)
	for i := range tref {
		tref[i] = 1 + rng.Float64()*9
		perfect[i] = tref[i]
		random[i] = rng.Float64()
	}
	rp := Evaluate(tref, perfect)
	rr := Evaluate(tref, random)
	if rr.Qlow <= rp.Qlow || rr.Rtop1 < rp.Rtop1 {
		t.Fatalf("random prediction should be worse: %v vs %v", rr, rp)
	}
}

func TestAggregateAndMedian(t *testing.T) {
	rs := []Result{
		{Etop1: 1, Qlow: 2, Qhigh: 3, Rtop1: 4, Spearman: 0.5},
		{Etop1: 3, Qlow: 4, Qhigh: 5, Rtop1: 6, Spearman: 0.7},
		{Etop1: 5, Qlow: 6, Qhigh: 7, Rtop1: 8, Spearman: 0.9},
	}
	avg := Aggregate(rs)
	if avg.Etop1 != 3 || avg.Rtop1 != 6 {
		t.Fatalf("aggregate = %+v", avg)
	}
	med := MedianOf(rs)
	if med.Etop1 != 3 || med.Qhigh != 5 {
		t.Fatalf("median = %+v", med)
	}
	if (Aggregate(nil) != Result{}) || (MedianOf(nil) != Result{}) {
		t.Fatal("empty aggregate must be zero")
	}
}

func TestResultString(t *testing.T) {
	s := Result{Etop1: 1.23, Qlow: 2, Qhigh: 3, Rtop1: 4}.String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func TestTiedBestTimes(t *testing.T) {
	// Two samples share the minimum; rank should use the first match in
	// prediction order.
	tref := []float64{1, 1, 2, 3}
	scores := []float64{4, 1, 2, 3} // prediction order: idx1, idx2, idx3, idx0
	r := Evaluate(tref, scores)
	if r.Rtop1 != 25 {
		t.Fatalf("Rtop1 = %v want 25 (tie found at position 1)", r.Rtop1)
	}
	if r.Etop1 != 0 {
		t.Fatalf("Etop1 = %v want 0 (tied best picked first)", r.Etop1)
	}
}
