// Package metrics implements the paper's predictor-evaluation metrics
// (§IV-B): the top-1 relative error E_top1 (Eq. 5), the top-1 rank R_top1
// (Eq. 6), and the sorting-quality score Q (Eq. 7) evaluated separately on
// the lower and upper half of the prediction-sorted run times (Q_low,
// Q_high). Smaller is better for all of them.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/num"
)

// Result bundles the four paper metrics for one (predictor, group) pair,
// plus the Spearman rank correlation as an auxiliary diagnostic.
type Result struct {
	Etop1    float64 // % relative error between best-predicted and true best
	Qlow     float64 // % sorting penalty, faster half
	Qhigh    float64 // % sorting penalty, slower half
	Rtop1    float64 // % rank position of the true best in the prediction order
	Spearman float64 // rank correlation between scores and run times (extra)
}

func (r Result) String() string {
	return fmt.Sprintf("Etop1=%.1f%% Qlow=%.1f%% Qhigh=%.1f%% Rtop1=%.1f%%",
		r.Etop1, r.Qlow, r.Qhigh, r.Rtop1)
}

// Evaluate computes the metrics from measured reference run times tref and
// predicted scores (same index space; lower score = predicted faster).
func Evaluate(tref, scores []float64) Result {
	if len(tref) != len(scores) {
		panic(fmt.Sprintf("metrics: %d run times vs %d scores", len(tref), len(scores)))
	}
	n := len(tref)
	if n == 0 {
		return Result{}
	}
	// tpred: measured run times ordered by predicted score (§IV-A).
	order := num.ArgSort(scores)
	tpred := make([]float64, n)
	for i, idx := range order {
		tpred[i] = tref[idx]
	}
	best := num.ArgMin(tref)

	res := Result{Spearman: num.Spearman(scores, tref)}

	// Eq. (5): E_top1 = |1 − tref[0]/tpred[0]| · 100%.
	if tpred[0] != 0 {
		res.Etop1 = math.Abs(1-tref[best]/tpred[0]) * 100
	}

	// Eq. (6): R_top1 = 100%/|tref| · (argmin_x(tpred[x] == tref[0]) + 1).
	for pos, idx := range order {
		if tref[idx] == tref[best] {
			res.Rtop1 = 100 / float64(n) * float64(pos+1)
			break
		}
	}

	// Eq. (7) on the faster and slower half of the prediction-sorted times.
	half := n / 2
	if half < 2 {
		half = n
	}
	res.Qlow = qualityScore(tpred[:half])
	if half < n {
		res.Qhigh = qualityScore(tpred[half:])
	} else {
		res.Qhigh = res.Qlow
	}
	return res
}

// qualityScore is Eq. (7): consecutive non-monotonically increasing samples
// are penalized proportionally to their relative dip.
func qualityScore(t []float64) float64 {
	if len(t) < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i+1 < len(t); i++ {
		if t[i] <= 0 {
			continue
		}
		m := math.Min(t[i], t[i+1])
		sum += (t[i] - m) / t[i]
	}
	return 100 / float64(len(t)) * sum
}

// Aggregate averages a set of results (used for cross-split medians the
// paper reports after 10 random train/test splits — see MedianOf for the
// median variant).
func Aggregate(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	var out Result
	for _, r := range rs {
		out.Etop1 += r.Etop1
		out.Qlow += r.Qlow
		out.Qhigh += r.Qhigh
		out.Rtop1 += r.Rtop1
		out.Spearman += r.Spearman
	}
	n := float64(len(rs))
	out.Etop1 /= n
	out.Qlow /= n
	out.Qhigh /= n
	out.Rtop1 /= n
	out.Spearman /= n
	return out
}

// MedianOf takes the per-metric median over results.
func MedianOf(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	pick := func(f func(Result) float64) float64 {
		xs := make([]float64, len(rs))
		for i, r := range rs {
			xs[i] = f(r)
		}
		return num.Median(xs)
	}
	return Result{
		Etop1:    pick(func(r Result) float64 { return r.Etop1 }),
		Qlow:     pick(func(r Result) float64 { return r.Qlow }),
		Qhigh:    pick(func(r Result) float64 { return r.Qhigh }),
		Rtop1:    pick(func(r Result) float64 { return r.Rtop1 }),
		Spearman: pick(func(r Result) float64 { return r.Spearman }),
	}
}
