package te

import "testing"

func TestReluReference(t *testing.T) {
	wl := Relu(6)
	x := wl.Op.Inputs[0]
	x.Alloc()
	copy(x.Data, []float32{-3, -1, 0, 1, 2, -5})
	wl.Op.ReferenceEval()
	want := []float32{0, 0, 0, 1, 2, 0}
	for i, v := range want {
		if wl.Op.Out.Data[i] != v {
			t.Fatalf("relu[%d] = %v want %v", i, wl.Op.Out.Data[i], v)
		}
	}
	if len(wl.Op.Reduce) != 0 {
		t.Fatal("relu must have no reduce axes")
	}
}

func TestAddTensorsReference(t *testing.T) {
	wl := AddTensors(3)
	a, b := wl.Op.Inputs[0], wl.Op.Inputs[1]
	a.Alloc()
	b.Alloc()
	copy(a.Data, []float32{1, 2, 3})
	copy(b.Data, []float32{10, 20, 30})
	wl.Op.ReferenceEval()
	for i, want := range []float32{11, 22, 33} {
		if wl.Op.Out.Data[i] != want {
			t.Fatalf("add[%d] = %v", i, wl.Op.Out.Data[i])
		}
	}
}

func TestMaxPoolReference(t *testing.T) {
	wl := MaxPool2d(1, 1, 4, 4, 2, 2)
	ifm := wl.Op.Inputs[0]
	ifm.Alloc()
	copy(ifm.Data, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		-1, -2, -3, -4,
		-5, -6, -7, -8,
	})
	wl.Op.ReferenceEval()
	want := []float32{6, 8, -1, -3}
	for i, v := range want {
		if wl.Op.Out.Data[i] != v {
			t.Fatalf("pool[%d] = %v want %v", i, wl.Op.Out.Data[i], v)
		}
	}
	if wl.Op.Combine != CombineMax {
		t.Fatal("pooling must combine with max")
	}
}

func TestMaxPoolNegativeInputs(t *testing.T) {
	// All-negative windows must still return the window max (Init is the
	// most negative float, not zero).
	wl := MaxPool2d(1, 1, 2, 2, 2, 2)
	ifm := wl.Op.Inputs[0]
	ifm.Alloc()
	copy(ifm.Data, []float32{-7, -9, -8, -6})
	wl.Op.ReferenceEval()
	if wl.Op.Out.Data[0] != -6 {
		t.Fatalf("pool = %v want -6", wl.Op.Out.Data[0])
	}
}

func TestCombineValues(t *testing.T) {
	sum := &ComputeOp{Combine: CombineSum}
	if sum.CombineValues(2, 3) != 5 {
		t.Fatal("sum combine wrong")
	}
	max := &ComputeOp{Combine: CombineMax}
	if max.CombineValues(2, 3) != 3 || max.CombineValues(4, 3) != 4 {
		t.Fatal("max combine wrong")
	}
}
