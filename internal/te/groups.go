package te

import "fmt"

// Scale selects the workload sizing of the reproduction (DESIGN.md §6).
type Scale string

// Available scales.
const (
	// ScaleTiny is for unit tests (~10⁴ MACs per kernel).
	ScaleTiny Scale = "tiny"
	// ScaleSmall is the benchmark default (~10⁵–10⁶ MACs).
	ScaleSmall Scale = "small"
	// ScalePaper is the exact Table II sizing.
	ScalePaper Scale = "paper"
)

// ParseScale converts a string flag into a Scale.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case ScaleTiny, ScaleSmall, ScalePaper:
		return Scale(s), nil
	}
	return "", fmt.Errorf("te: unknown scale %q (want tiny|small|paper)", s)
}

// paperGroups are the five ResNet Conv2D+Bias+ReLU groups of Table II.
// Group 4 keeps the paper's W=24 (a likely typo for 14) for fidelity.
var paperGroups = []ConvParams{
	{N: 1, H: 224, W: 224, CO: 64, CI: 3, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3},
	{N: 1, H: 56, W: 56, CO: 64, CI: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	{N: 1, H: 56, W: 56, CO: 128, CI: 64, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	{N: 1, H: 28, W: 28, CO: 256, CI: 128, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	{N: 1, H: 14, W: 24, CO: 512, CI: 256, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
}

// smallGroups shrink the paper shapes (spatial ÷2–÷4, channels ÷8) while
// keeping kernel sizes, strides and pads, so blocking/locality trade-offs
// survive at single-core benchmark cost.
var smallGroups = []ConvParams{
	{N: 1, H: 56, W: 56, CO: 8, CI: 3, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3},
	{N: 1, H: 28, W: 28, CO: 8, CI: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	{N: 1, H: 28, W: 28, CO: 16, CI: 8, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	{N: 1, H: 14, W: 14, CO: 32, CI: 16, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	{N: 1, H: 7, W: 12, CO: 64, CI: 32, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
}

// tinyGroups are minimal shapes that still exercise stride/pad variety.
var tinyGroups = []ConvParams{
	{N: 1, H: 12, W: 12, CO: 4, CI: 3, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	{N: 1, H: 8, W: 8, CO: 4, CI: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	{N: 1, H: 8, W: 8, CO: 8, CI: 4, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	{N: 1, H: 6, W: 6, CO: 8, CI: 8, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	{N: 1, H: 4, W: 6, CO: 16, CI: 8, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
}

// ConvGroupParams returns the Table II parameter set at the given scale.
func ConvGroupParams(scale Scale) []ConvParams {
	switch scale {
	case ScalePaper:
		return append([]ConvParams(nil), paperGroups...)
	case ScaleSmall:
		return append([]ConvParams(nil), smallGroups...)
	case ScaleTiny:
		return append([]ConvParams(nil), tinyGroups...)
	}
	panic(fmt.Sprintf("te: unknown scale %q", scale))
}

// ConvGroup builds the Conv2D+Bias+ReLU workload of one Table II group.
// Each call returns fresh tensors, so concurrent simulations of the same
// group never share state.
func ConvGroup(scale Scale, group int) *Workload {
	params := ConvGroupParams(scale)
	if group < 0 || group >= len(params) {
		panic(fmt.Sprintf("te: group %d out of range [0,%d)", group, len(params)))
	}
	return Conv2dBiasRelu(params[group])
}

// NumConvGroups is the number of Table II groups.
const NumConvGroups = 5
