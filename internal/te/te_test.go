package te

import (
	"testing"

	"repro/internal/tensor"
)

func TestAffineEval(t *testing.T) {
	a := &Axis{Name: "a", Extent: 10, ID: 0}
	b := &Axis{Name: "b", Extent: 10, ID: 1}
	e := AddIdx(ScaledIdx(a, 2, -1), AxisIdx(b)) // 2a - 1 + b
	if got := e.Eval([]int{3, 4}); got != 9 {
		t.Fatalf("affine eval = %d want 9", got)
	}
	if !e.DependsOn(a) || !e.DependsOn(b) {
		t.Fatal("DependsOn false negative")
	}
	c := &Axis{Name: "c", ID: 2}
	if e.DependsOn(c) {
		t.Fatal("DependsOn false positive")
	}
	if e.Coef(a) != 2 || e.Coef(b) != 1 || e.Coef(c) != 0 {
		t.Fatal("Coef wrong")
	}
}

func TestConstIdx(t *testing.T) {
	if ConstIdx(5).Eval(nil) != 5 {
		t.Fatal("const idx wrong")
	}
}

func TestEvalExprOps(t *testing.T) {
	cases := []struct {
		e    Expr
		want float32
	}{
		{Add(ConstF{2}, ConstF{3}), 5},
		{&Bin{Op: OpSub, A: ConstF{2}, B: ConstF{3}}, -1},
		{Mul(ConstF{2}, ConstF{3}), 6},
		{&Bin{Op: OpDiv, A: ConstF{6}, B: ConstF{3}}, 2},
		{Max(ConstF{-2}, ConstF{3}), 3},
		{&Bin{Op: OpMin, A: ConstF{-2}, B: ConstF{3}}, -2},
	}
	for i, c := range cases {
		if got := EvalExpr(c.e, nil, 0); got != c.want {
			t.Fatalf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestEvalExprAccOutOfBounds(t *testing.T) {
	tt := tensor.New("x", tensor.Shape{2}).Alloc()
	tt.Data[1] = 7
	ax := &Axis{Name: "i", Extent: 4, ID: 0}
	acc := &Access{Tensor: tt, Index: []Affine{AxisIdx(ax)}}
	if EvalExpr(acc, []int{1}, 0) != 7 {
		t.Fatal("in-bounds access wrong")
	}
	if EvalExpr(acc, []int{3}, 0) != 0 {
		t.Fatal("out-of-bounds access must read 0 (virtual padding)")
	}
	if EvalExpr(AccRef{}, nil, 42) != 42 {
		t.Fatal("AccRef must return accumulator")
	}
}

func TestAccessesAndFLOPs(t *testing.T) {
	tt := tensor.New("x", tensor.Shape{2})
	ax := &Axis{Name: "i", ID: 0}
	e := Add(Mul(&Access{Tensor: tt, Index: []Affine{AxisIdx(ax)}}, ConstF{2}),
		&Access{Tensor: tt, Index: []Affine{AxisIdx(ax)}})
	if len(Accesses(e)) != 2 {
		t.Fatalf("accesses = %d", len(Accesses(e)))
	}
	if CountFLOPs(e) != 2 {
		t.Fatalf("flops = %d", CountFLOPs(e))
	}
}

func fillSeq(tt *tensor.Tensor) {
	tt.Alloc()
	for i := range tt.Data {
		tt.Data[i] = float32(i%7) - 3
	}
}

func TestMatMulReference(t *testing.T) {
	wl := MatMul(2, 3, 2)
	a, b := wl.Op.Inputs[0], wl.Op.Inputs[1]
	a.Alloc()
	b.Alloc()
	// A = [[1,2,3],[4,5,6]], B = [[1,0],[0,1],[1,1]]
	copy(a.Data, []float32{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float32{1, 0, 0, 1, 1, 1})
	wl.Op.ReferenceEval()
	want := []float32{4, 5, 10, 11}
	for i, w := range want {
		if wl.Op.Out.Data[i] != w {
			t.Fatalf("C[%d] = %v want %v", i, wl.Op.Out.Data[i], w)
		}
	}
}

func TestConvReferenceIdentityKernel(t *testing.T) {
	// 1x1 kernel, unit weight, zero bias: output == relu(input).
	wl := Conv2dBiasRelu(ConvParams{N: 1, H: 3, W: 3, CO: 1, CI: 1, KH: 1, KW: 1,
		StrideH: 1, StrideW: 1, PadH: 0, PadW: 0})
	ifm, wgt, bias := wl.Op.Inputs[0], wl.Op.Inputs[1], wl.Op.Inputs[2]
	ifm.Alloc()
	wgt.Alloc()
	bias.Alloc()
	copy(ifm.Data, []float32{-1, 2, -3, 4, -5, 6, -7, 8, -9})
	wgt.Data[0] = 1
	wl.Op.ReferenceEval()
	want := []float32{0, 2, 0, 4, 0, 6, 0, 8, 0} // relu
	for i, w := range want {
		if wl.Op.Out.Data[i] != w {
			t.Fatalf("ofm[%d] = %v want %v", i, wl.Op.Out.Data[i], w)
		}
	}
}

func TestConvReferencePaddingSum(t *testing.T) {
	// 3x3 all-ones kernel on all-ones 3x3 input with pad 1: center output
	// sums 9 elements, corners sum 4.
	wl := Conv2dBiasRelu(ConvParams{N: 1, H: 3, W: 3, CO: 1, CI: 1, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1})
	ifm, wgt, bias := wl.Op.Inputs[0], wl.Op.Inputs[1], wl.Op.Inputs[2]
	ifm.Alloc()
	wgt.Alloc()
	bias.Alloc()
	for i := range ifm.Data {
		ifm.Data[i] = 1
	}
	for i := range wgt.Data {
		wgt.Data[i] = 1
	}
	wl.Op.ReferenceEval()
	out := wl.Op.Out.Data
	if out[4] != 9 { // center
		t.Fatalf("center = %v want 9", out[4])
	}
	if out[0] != 4 || out[2] != 4 || out[6] != 4 || out[8] != 4 {
		t.Fatalf("corners = %v,%v,%v,%v want 4", out[0], out[2], out[6], out[8])
	}
	if out[1] != 6 {
		t.Fatalf("edge = %v want 6", out[1])
	}
}

func TestConvBiasApplied(t *testing.T) {
	wl := Conv2dBiasRelu(ConvParams{N: 1, H: 2, W: 2, CO: 2, CI: 1, KH: 1, KW: 1,
		StrideH: 1, StrideW: 1})
	ifm, wgt, bias := wl.Op.Inputs[0], wl.Op.Inputs[1], wl.Op.Inputs[2]
	fillSeq(ifm)
	wgt.Alloc()
	wgt.Data[0], wgt.Data[1] = 1, 1
	bias.Alloc()
	bias.Data[0], bias.Data[1] = 100, 200
	wl.Op.ReferenceEval()
	// channel 0 uses bias 100, channel 1 uses bias 200
	if wl.Op.Out.Data[0] != ifm.Data[0]+100 {
		t.Fatalf("bias[0] not applied: %v", wl.Op.Out.Data[0])
	}
	if wl.Op.Out.Data[4] != ifm.Data[0]+200 {
		t.Fatalf("bias[1] not applied: %v", wl.Op.Out.Data[4])
	}
}

func TestDepthwiseReference(t *testing.T) {
	wl := DepthwiseConv2d(1, 3, 3, 2, 3, 3, 1, 1)
	ifm, wgt := wl.Op.Inputs[0], wl.Op.Inputs[1]
	ifm.Alloc()
	wgt.Alloc()
	for i := range ifm.Data {
		ifm.Data[i] = 1
	}
	for i := range wgt.Data {
		wgt.Data[i] = 1
	}
	wl.Op.ReferenceEval()
	// center of each channel = 9
	ohw := 9
	if wl.Op.Out.Data[4] != 9 || wl.Op.Out.Data[ohw+4] != 9 {
		t.Fatalf("depthwise centers = %v, %v", wl.Op.Out.Data[4], wl.Op.Out.Data[ohw+4])
	}
}

func TestDenseReference(t *testing.T) {
	wl := DenseBiasRelu(1, 3, 2)
	x, w, b := wl.Op.Inputs[0], wl.Op.Inputs[1], wl.Op.Inputs[2]
	x.Alloc()
	w.Alloc()
	b.Alloc()
	copy(x.Data, []float32{1, 2, 3})
	copy(w.Data, []float32{1, 1, 1, -1, -1, -1})
	copy(b.Data, []float32{0, 1})
	wl.Op.ReferenceEval()
	if wl.Op.Out.Data[0] != 6 {
		t.Fatalf("dense[0] = %v want 6", wl.Op.Out.Data[0])
	}
	if wl.Op.Out.Data[1] != 0 { // relu(-6+1) = 0
		t.Fatalf("dense[1] = %v want 0 (relu)", wl.Op.Out.Data[1])
	}
}

func TestComputeOpCounts(t *testing.T) {
	wl := Conv2dBiasRelu(ConvParams{N: 1, H: 4, W: 4, CO: 2, CI: 3, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1})
	op := wl.Op
	if op.SpatialSize() != 1*2*4*4 {
		t.Fatalf("spatial size = %d", op.SpatialSize())
	}
	if op.ReduceSize() != 27 {
		t.Fatalf("reduce size = %d", op.ReduceSize())
	}
	if op.MACs() != int64(32*27) {
		t.Fatalf("MACs = %d", op.MACs())
	}
}

func TestAxisIDsAssigned(t *testing.T) {
	wl := MatMul(2, 3, 4)
	ids := map[int]bool{}
	for _, a := range wl.Op.AllAxes() {
		if ids[a.ID] {
			t.Fatalf("duplicate axis ID %d", a.ID)
		}
		ids[a.ID] = true
	}
	if len(ids) != 3 {
		t.Fatalf("axis count = %d", len(ids))
	}
	if wl.Op.Reduce[0].Kind != Reduce || wl.Op.Spatial[0].Kind != Spatial {
		t.Fatal("axis kinds not assigned")
	}
}

func TestConvOutputShape(t *testing.T) {
	p := ConvParams{N: 1, H: 224, W: 224, CO: 64, CI: 3, KH: 7, KW: 7,
		StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}
	if p.OutH() != 112 || p.OutW() != 112 {
		t.Fatalf("resnet stem out = %dx%d want 112x112", p.OutH(), p.OutW())
	}
}

func TestConvGroupScales(t *testing.T) {
	for _, scale := range []Scale{ScaleTiny, ScaleSmall, ScalePaper} {
		params := ConvGroupParams(scale)
		if len(params) != NumConvGroups {
			t.Fatalf("%s: %d groups", scale, len(params))
		}
		for g := range params {
			wl := ConvGroup(scale, g)
			if wl.Op.MACs() <= 0 {
				t.Fatalf("%s group %d has no work", scale, g)
			}
		}
	}
	// paper group 0 must be the exact ResNet stem
	p := ConvGroupParams(ScalePaper)[0]
	if p.H != 224 || p.CO != 64 || p.KH != 7 {
		t.Fatalf("paper group 0 = %+v", p)
	}
	// group 4 keeps the paper's W=24
	if ConvGroupParams(ScalePaper)[4].W != 24 {
		t.Fatal("paper group 4 must keep W=24")
	}
}

func TestConvGroupFreshTensors(t *testing.T) {
	a := ConvGroup(ScaleTiny, 0)
	b := ConvGroup(ScaleTiny, 0)
	if a.Op.Out == b.Op.Out || a.Op.Inputs[0] == b.Op.Inputs[0] {
		t.Fatal("ConvGroup must return fresh tensors per call")
	}
	if a.Key != b.Key {
		t.Fatal("same group must share one key")
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("small"); err != nil || s != ScaleSmall {
		t.Fatalf("ParseScale small: %v %v", s, err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("ParseScale must reject unknown scale")
	}
}

func TestValidateRejectsReduceEpilogue(t *testing.T) {
	out := tensor.New("o", tensor.Shape{2})
	in := tensor.New("i", tensor.Shape{2})
	s := &Axis{Name: "s", Extent: 2}
	r := &Axis{Name: "r", Extent: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: epilogue referencing reduce axis")
		}
	}()
	NewComputeOp("bad", out, []*Axis{s}, []*Axis{r},
		[]Affine{AxisIdx(s)}, 0,
		&Access{Tensor: in, Index: []Affine{AxisIdx(r)}},
		&Access{Tensor: in, Index: []Affine{AxisIdx(r)}}, // epilogue uses reduce axis
		[]*tensor.Tensor{in})
}

func TestPlaceTensors(t *testing.T) {
	wl := MatMul(4, 4, 4)
	wl.Op.PlaceTensors()
	seen := map[uint64]bool{}
	for _, tt := range append(wl.Op.Inputs, wl.Op.Out) {
		if tt.Base == 0 {
			t.Fatalf("tensor %s unplaced", tt.Name)
		}
		if seen[tt.Base] {
			t.Fatalf("base collision at %d", tt.Base)
		}
		seen[tt.Base] = true
	}
}
