package te

import (
	"fmt"

	"repro/internal/tensor"
)

// Relu builds the elementwise kernel Y[i] = max(X[i], 0) over a flattened
// buffer — the simplest kernel with no reduction axes, exercising the
// direct-store lowering path.
func Relu(n int) *Workload {
	x := tensor.New("X", tensor.Shape{n})
	y := tensor.New("Y", tensor.Shape{n})
	i := &Axis{Name: "i", Extent: n}
	// No reduce axes: the "reduce body" is evaluated exactly once per point.
	body := Max(&Access{Tensor: x, Index: []Affine{AxisIdx(i)}}, ConstF{Val: 0})
	op := NewComputeOp("relu", y,
		[]*Axis{i}, nil,
		[]Affine{AxisIdx(i)},
		0, body, nil,
		[]*tensor.Tensor{x})
	return &Workload{
		Kernel: "relu",
		Key:    fmt.Sprintf("relu_n%d", n),
		Params: []int{n},
		Op:     op,
	}
}

// AddTensors builds the elementwise kernel C[i] = A[i] + B[i].
func AddTensors(n int) *Workload {
	a := tensor.New("A", tensor.Shape{n})
	b := tensor.New("B", tensor.Shape{n})
	c := tensor.New("C", tensor.Shape{n})
	i := &Axis{Name: "i", Extent: n}
	body := Add(
		&Access{Tensor: a, Index: []Affine{AxisIdx(i)}},
		&Access{Tensor: b, Index: []Affine{AxisIdx(i)}},
	)
	op := NewComputeOp("add", c,
		[]*Axis{i}, nil,
		[]Affine{AxisIdx(i)},
		0, body, nil,
		[]*tensor.Tensor{a, b})
	return &Workload{
		Kernel: "add",
		Key:    fmt.Sprintf("add_n%d", n),
		Params: []int{n},
		Op:     op,
	}
}

// MaxPool2d builds max pooling over NCHW input with a k×k window:
// ofm[n,c,oh,ow] = max_{kh,kw} ifm[n,c,oh·s+kh,ow·s+kw].
// The reduction folds with CombineMax instead of the default sum and starts
// from the most negative float32.
func MaxPool2d(n, c, h, w, k, stride int) *Workload {
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	ifm := tensor.New("ifm", tensor.Shape{n, c, h, w})
	ofm := tensor.New("ofm", tensor.Shape{n, c, oh, ow})
	nA := &Axis{Name: "n", Extent: n}
	cA := &Axis{Name: "c", Extent: c}
	ohA := &Axis{Name: "oh", Extent: oh}
	owA := &Axis{Name: "ow", Extent: ow}
	khA := &Axis{Name: "kh", Extent: k}
	kwA := &Axis{Name: "kw", Extent: k}
	body := &Access{Tensor: ifm, Index: []Affine{
		AxisIdx(nA), AxisIdx(cA),
		AddIdx(ScaledIdx(ohA, stride, 0), AxisIdx(khA)),
		AddIdx(ScaledIdx(owA, stride, 0), AxisIdx(kwA)),
	}}
	op := NewComputeOp("maxpool2d", ofm,
		[]*Axis{nA, cA, ohA, owA}, []*Axis{khA, kwA},
		[]Affine{AxisIdx(nA), AxisIdx(cA), AxisIdx(ohA), AxisIdx(owA)},
		negInf, body, nil,
		[]*tensor.Tensor{ifm})
	op.Combine = CombineMax
	return &Workload{
		Kernel: "maxpool2d",
		Key:    fmt.Sprintf("maxpool_n%d_c%d_h%d_w%d_k%d_s%d", n, c, h, w, k, stride),
		Params: []int{n, c, h, w, k, stride},
		Op:     op,
	}
}

// negInf is the max-reduction identity.
const negInf = float32(-3.4e38)
