// Package te implements the tensor-expression layer of the reproduction: the
// analogue of TVM's TE (compute + reduce definitions, Listing 1/5 of the
// paper). A ComputeOp describes one kernel as spatial axes, reduce axes, a
// reduce body that is sum-accumulated, and an optional epilogue applied to
// the accumulator (which is how Conv2D+Bias+ReLU is expressed as a single
// fused kernel, matching the paper's kernel type).
package te

import (
	"fmt"

	"repro/internal/tensor"
)

// AxisKind distinguishes spatial (output) axes from reduction axes.
type AxisKind int

const (
	// Spatial axes enumerate output coordinates.
	Spatial AxisKind = iota
	// Reduce axes are sum-accumulated.
	Reduce
)

func (k AxisKind) String() string {
	if k == Reduce {
		return "reduce"
	}
	return "spatial"
}

// Axis is one iteration axis of a compute definition. ID indexes the axis in
// evaluation contexts; it is assigned by NewComputeOp (spatial axes first,
// then reduce axes).
type Axis struct {
	Name   string
	Extent int
	Kind   AxisKind
	ID     int
}

func (a *Axis) String() string { return fmt.Sprintf("%s[%d]", a.Name, a.Extent) }

// Term is one axis contribution coef·axis inside an affine index expression.
type Term struct {
	Axis *Axis
	Coef int
}

// Affine is an affine index expression Σ coef·axis + Const, the only index
// form the DSL supports (sufficient for matmul, conv, pooling, dense — conv
// input indexing is oh·stride − pad + kh).
type Affine struct {
	Terms []Term
	Const int
}

// AxisIdx is the affine expression consisting of a single axis.
func AxisIdx(a *Axis) Affine { return Affine{Terms: []Term{{Axis: a, Coef: 1}}} }

// ScaledIdx returns coef·a + c.
func ScaledIdx(a *Axis, coef, c int) Affine {
	return Affine{Terms: []Term{{Axis: a, Coef: coef}}, Const: c}
}

// ConstIdx is a constant index expression.
func ConstIdx(c int) Affine { return Affine{Const: c} }

// AddIdx returns the sum of two affine expressions.
func AddIdx(a, b Affine) Affine {
	out := Affine{Const: a.Const + b.Const}
	out.Terms = append(out.Terms, a.Terms...)
	out.Terms = append(out.Terms, b.Terms...)
	return out
}

// Eval computes the index value under the axis-value binding vals[axis.ID].
func (a Affine) Eval(vals []int) int {
	v := a.Const
	for _, t := range a.Terms {
		v += t.Coef * vals[t.Axis.ID]
	}
	return v
}

// DependsOn reports whether the expression references the given axis with a
// non-zero coefficient.
func (a Affine) DependsOn(ax *Axis) bool {
	for _, t := range a.Terms {
		if t.Axis == ax && t.Coef != 0 {
			return true
		}
	}
	return false
}

// Coef returns the coefficient of ax (0 if absent).
func (a Affine) Coef(ax *Axis) int {
	c := 0
	for _, t := range a.Terms {
		if t.Axis == ax {
			c += t.Coef
		}
	}
	return c
}

// BinOpKind enumerates the scalar operators of the expression language.
type BinOpKind int

// Scalar operators.
const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpMax
	OpMin
)

func (o BinOpKind) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	}
	return "?"
}

// Expr is a scalar expression tree node.
type Expr interface{ exprNode() }

// Access reads one element of an input tensor at affine indices.
// Out-of-bounds reads evaluate to 0 (virtual padding): the lowered code emits
// a guard instead of a load, mirroring TVM's boundary handling.
type Access struct {
	Tensor *tensor.Tensor
	Index  []Affine
}

// ConstF is a float constant.
type ConstF struct{ Val float32 }

// AccRef references the running accumulator inside an epilogue expression.
type AccRef struct{}

// Bin is a binary operator node.
type Bin struct {
	Op   BinOpKind
	A, B Expr
}

func (*Access) exprNode() {}
func (ConstF) exprNode()  {}
func (AccRef) exprNode()  {}
func (*Bin) exprNode()    {}

// Convenience constructors.

// Add returns a+b.
func Add(a, b Expr) Expr { return &Bin{Op: OpAdd, A: a, B: b} }

// Mul returns a*b.
func Mul(a, b Expr) Expr { return &Bin{Op: OpMul, A: a, B: b} }

// Max returns max(a,b).
func Max(a, b Expr) Expr { return &Bin{Op: OpMax, A: a, B: b} }

// EvalExpr evaluates e under axis bindings vals with accumulator value acc.
func EvalExpr(e Expr, vals []int, acc float32) float32 {
	switch n := e.(type) {
	case *Access:
		idx := make([]int, len(n.Index))
		for i, a := range n.Index {
			idx[i] = a.Eval(vals)
		}
		if !n.Tensor.InBounds(idx) {
			return 0
		}
		if n.Tensor.Data == nil {
			return 0
		}
		return n.Tensor.Data[n.Tensor.LinearIndex(idx)]
	case ConstF:
		return n.Val
	case AccRef:
		return acc
	case *Bin:
		a := EvalExpr(n.A, vals, acc)
		b := EvalExpr(n.B, vals, acc)
		switch n.Op {
		case OpAdd:
			return a + b
		case OpSub:
			return a - b
		case OpMul:
			return a * b
		case OpDiv:
			return a / b
		case OpMax:
			if a > b {
				return a
			}
			return b
		case OpMin:
			if a < b {
				return a
			}
			return b
		}
	}
	panic(fmt.Sprintf("te: unknown expr node %T", e))
}

// Accesses collects every tensor Access in an expression tree, in evaluation
// order.
func Accesses(e Expr) []*Access {
	var out []*Access
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case *Access:
			out = append(out, n)
		case *Bin:
			walk(n.A)
			walk(n.B)
		}
	}
	walk(e)
	return out
}

// CountFLOPs returns the number of arithmetic ops in one evaluation of e.
func CountFLOPs(e Expr) int {
	switch n := e.(type) {
	case *Bin:
		return 1 + CountFLOPs(n.A) + CountFLOPs(n.B)
	default:
		return 0
	}
}
