package te

import (
	"fmt"

	"repro/internal/tensor"
)

// CombineKind selects the reduction combinator.
type CombineKind int

// Reduction combinators.
const (
	// CombineSum accumulates with + (matmul, convolution).
	CombineSum CombineKind = iota
	// CombineMax accumulates with max (pooling).
	CombineMax
)

// ComputeOp is one kernel definition: for every point of the spatial
// iteration domain, the reduce body is accumulated over the reduce domain
// with the Combine operator (sum by default), the epilogue maps the
// accumulator to the stored value, and the result is written to Out at the
// spatial coordinates given by OutIndex.
type ComputeOp struct {
	Name    string
	Out     *tensor.Tensor
	Spatial []*Axis
	Reduce  []*Axis
	// OutIndex maps spatial axes to output-tensor coordinates (one affine per
	// output dim). For the common case it is the identity over Spatial.
	OutIndex []Affine
	// Init is the accumulator start value (0 for sum reductions, the most
	// negative float for max reductions).
	Init float32
	// Combine is the reduction combinator (sum by default).
	Combine CombineKind
	// ReduceBody is evaluated once per reduce-domain point and folded into
	// the accumulator with Combine. For ops with no reduce axes it is
	// evaluated exactly once.
	ReduceBody Expr
	// Epilogue maps the final accumulator to the stored value; nil means
	// identity. It may reference additional input tensors (e.g. bias) but
	// only through spatial axes.
	Epilogue Expr
	// Inputs lists every distinct input tensor (for placement/reporting).
	Inputs []*tensor.Tensor
}

// NewComputeOp wires up axis IDs (spatial first, then reduce) and validates
// the definition.
func NewComputeOp(name string, out *tensor.Tensor, spatial, reduce []*Axis, outIndex []Affine, init float32, body, epilogue Expr, inputs []*tensor.Tensor) *ComputeOp {
	id := 0
	for _, a := range spatial {
		a.Kind = Spatial
		a.ID = id
		id++
	}
	for _, a := range reduce {
		a.Kind = Reduce
		a.ID = id
		id++
	}
	op := &ComputeOp{
		Name: name, Out: out, Spatial: spatial, Reduce: reduce,
		OutIndex: outIndex, Init: init, ReduceBody: body, Epilogue: epilogue,
		Inputs: inputs,
	}
	if err := op.Validate(); err != nil {
		panic(err)
	}
	return op
}

// Validate checks structural invariants of the definition.
func (op *ComputeOp) Validate() error {
	if op.Out == nil {
		return fmt.Errorf("te: op %s has no output tensor", op.Name)
	}
	if len(op.OutIndex) != len(op.Out.Shape) {
		return fmt.Errorf("te: op %s output index rank %d vs tensor rank %d",
			op.Name, len(op.OutIndex), len(op.Out.Shape))
	}
	for _, idx := range op.OutIndex {
		for _, t := range idx.Terms {
			if t.Axis.Kind != Spatial {
				return fmt.Errorf("te: op %s output indexed by reduce axis %s", op.Name, t.Axis.Name)
			}
		}
	}
	if op.Epilogue != nil {
		for _, acc := range Accesses(op.Epilogue) {
			for _, idx := range acc.Index {
				for _, t := range idx.Terms {
					if t.Axis.Kind != Spatial {
						return fmt.Errorf("te: op %s epilogue access %s uses reduce axis %s",
							op.Name, acc.Tensor.Name, t.Axis.Name)
					}
				}
			}
		}
	}
	for _, a := range append(append([]*Axis{}, op.Spatial...), op.Reduce...) {
		if a.Extent <= 0 {
			return fmt.Errorf("te: op %s axis %s has non-positive extent %d", op.Name, a.Name, a.Extent)
		}
	}
	return nil
}

// AllAxes returns spatial axes followed by reduce axes (ID order).
func (op *ComputeOp) AllAxes() []*Axis {
	out := make([]*Axis, 0, len(op.Spatial)+len(op.Reduce))
	out = append(out, op.Spatial...)
	out = append(out, op.Reduce...)
	return out
}

// SpatialSize is the number of output points.
func (op *ComputeOp) SpatialSize() int {
	n := 1
	for _, a := range op.Spatial {
		n *= a.Extent
	}
	return n
}

// ReduceSize is the number of reduce-domain points per output point.
func (op *ComputeOp) ReduceSize() int {
	n := 1
	for _, a := range op.Reduce {
		n *= a.Extent
	}
	return n
}

// MACs returns the total multiply-accumulate count (spatial × reduce).
func (op *ComputeOp) MACs() int64 {
	return int64(op.SpatialSize()) * int64(op.ReduceSize())
}

// ReferenceEval computes the kernel naively into Out.Data (allocating it if
// needed). It is the ground truth that every scheduled program must match.
func (op *ComputeOp) ReferenceEval() {
	op.Out.Alloc()
	nAxes := len(op.Spatial) + len(op.Reduce)
	vals := make([]int, nAxes)
	outIdx := make([]int, len(op.OutIndex))

	var spatialLoop func(d int)
	spatialLoop = func(d int) {
		if d == len(op.Spatial) {
			acc := op.Init
			var reduceLoop func(rd int)
			reduceLoop = func(rd int) {
				if rd == len(op.Reduce) {
					acc = op.CombineValues(acc, EvalExpr(op.ReduceBody, vals, 0))
					return
				}
				ax := op.Reduce[rd]
				for v := 0; v < ax.Extent; v++ {
					vals[ax.ID] = v
					reduceLoop(rd + 1)
				}
			}
			reduceLoop(0)
			if op.Epilogue != nil {
				acc = EvalExpr(op.Epilogue, vals, acc)
			}
			for i, a := range op.OutIndex {
				outIdx[i] = a.Eval(vals)
			}
			op.Out.Data[op.Out.LinearIndex(outIdx)] = acc
			return
		}
		ax := op.Spatial[d]
		for v := 0; v < ax.Extent; v++ {
			vals[ax.ID] = v
			spatialLoop(d + 1)
		}
	}
	spatialLoop(0)
}

// CombineValues folds one body value into the accumulator.
func (op *ComputeOp) CombineValues(acc, v float32) float32 {
	if op.Combine == CombineMax {
		if v > acc {
			return v
		}
		return acc
	}
	return acc + v
}

// PlaceTensors assigns base addresses to all inputs and the output in a fresh
// address space and returns it (the lowering layer reserves stack/code
// regions from the same space).
func (op *ComputeOp) PlaceTensors() *tensor.AddressSpace {
	as := tensor.NewAddressSpace()
	for _, in := range op.Inputs {
		as.Place(in)
	}
	as.Place(op.Out)
	return as
}
