package te

import (
	"fmt"

	"repro/internal/tensor"
)

// Workload is one kernel instance: a kernel type plus a fixed combination of
// shapes and parameters. In the paper's terminology a Workload is a "group"
// of one kernel type; the autotuner generates many implementations
// (schedules) of it.
type Workload struct {
	// Kernel is the kernel-type name (one predictor is trained per kernel
	// type and architecture, §III-C).
	Kernel string
	// Key uniquely identifies kernel type + parameters.
	Key string
	// Params records the raw shape parameters for serialization.
	Params []int
	// Op is the compute definition.
	Op *ComputeOp
}

// ConvParams are the Conv2D+Bias+ReLU shape parameters, matching Table II.
type ConvParams struct {
	N, H, W, CO, CI, KH, KW int
	StrideH, StrideW        int
	PadH, PadW              int
}

// OutH returns the output height.
func (p ConvParams) OutH() int { return (p.H+2*p.PadH-p.KH)/p.StrideH + 1 }

// OutW returns the output width.
func (p ConvParams) OutW() int { return (p.W+2*p.PadW-p.KW)/p.StrideW + 1 }

// Conv2dBiasRelu builds the fused Conv2D+Bias+ReLU kernel of Listing 5:
// ofm[n,co,oh,ow] = relu(bias[co] + Σ_{ci,kh,kw} ifm[n,ci,oh·s−p+kh,ow·s−p+kw] · w[co,ci,kh,kw]).
// Layout is NCHW with OIHW weights, as in the paper's TVM definition.
func Conv2dBiasRelu(p ConvParams) *Workload {
	oh, ow := p.OutH(), p.OutW()
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("te: conv2d output is empty for %+v", p))
	}
	ifm := tensor.New("ifm", tensor.Shape{p.N, p.CI, p.H, p.W})
	wgt := tensor.New("weights", tensor.Shape{p.CO, p.CI, p.KH, p.KW})
	bias := tensor.New("bias", tensor.Shape{p.CO})
	ofm := tensor.New("ofm", tensor.Shape{p.N, p.CO, oh, ow})

	n := &Axis{Name: "n", Extent: p.N}
	co := &Axis{Name: "co", Extent: p.CO}
	ohA := &Axis{Name: "oh", Extent: oh}
	owA := &Axis{Name: "ow", Extent: ow}
	ci := &Axis{Name: "ci", Extent: p.CI}
	kh := &Axis{Name: "kh", Extent: p.KH}
	kw := &Axis{Name: "kw", Extent: p.KW}

	body := Mul(
		&Access{Tensor: ifm, Index: []Affine{
			AxisIdx(n),
			AxisIdx(ci),
			AddIdx(ScaledIdx(ohA, p.StrideH, -p.PadH), AxisIdx(kh)),
			AddIdx(ScaledIdx(owA, p.StrideW, -p.PadW), AxisIdx(kw)),
		}},
		&Access{Tensor: wgt, Index: []Affine{
			AxisIdx(co), AxisIdx(ci), AxisIdx(kh), AxisIdx(kw),
		}},
	)
	epilogue := Max(
		Add(AccRef{}, &Access{Tensor: bias, Index: []Affine{AxisIdx(co)}}),
		ConstF{Val: 0},
	)
	op := NewComputeOp("conv2d_bias_relu", ofm,
		[]*Axis{n, co, ohA, owA}, []*Axis{ci, kh, kw},
		[]Affine{AxisIdx(n), AxisIdx(co), AxisIdx(ohA), AxisIdx(owA)},
		0, body, epilogue,
		[]*tensor.Tensor{ifm, wgt, bias})
	return &Workload{
		Kernel: "conv2d_bias_relu",
		Key: fmt.Sprintf("conv2d_bias_relu_n%d_h%d_w%d_co%d_ci%d_k%dx%d_s%d%d_p%d%d",
			p.N, p.H, p.W, p.CO, p.CI, p.KH, p.KW, p.StrideH, p.StrideW, p.PadH, p.PadW),
		Params: []int{p.N, p.H, p.W, p.CO, p.CI, p.KH, p.KW, p.StrideH, p.StrideW, p.PadH, p.PadW},
		Op:     op,
	}
}

// MatMul builds C[i,j] = Σ_k A[i,k]·B[k,j] (the Listing 1 MMM kernel).
func MatMul(n, l, m int) *Workload {
	a := tensor.New("A", tensor.Shape{n, l})
	b := tensor.New("B", tensor.Shape{l, m})
	c := tensor.New("C", tensor.Shape{n, m})
	i := &Axis{Name: "i", Extent: n}
	j := &Axis{Name: "j", Extent: m}
	k := &Axis{Name: "k", Extent: l}
	body := Mul(
		&Access{Tensor: a, Index: []Affine{AxisIdx(i), AxisIdx(k)}},
		&Access{Tensor: b, Index: []Affine{AxisIdx(k), AxisIdx(j)}},
	)
	op := NewComputeOp("matmul", c,
		[]*Axis{i, j}, []*Axis{k},
		[]Affine{AxisIdx(i), AxisIdx(j)},
		0, body, nil,
		[]*tensor.Tensor{a, b})
	return &Workload{
		Kernel: "matmul",
		Key:    fmt.Sprintf("matmul_n%d_l%d_m%d", n, l, m),
		Params: []int{n, l, m},
		Op:     op,
	}
}

// DepthwiseConv2d builds a depthwise convolution with per-channel filters:
// ofm[n,c,oh,ow] = Σ_{kh,kw} ifm[n,c,oh·s−p+kh,ow·s−p+kw] · w[c,kh,kw].
func DepthwiseConv2d(n, h, w, c, kh, kw, stride, pad int) *Workload {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	ifm := tensor.New("ifm", tensor.Shape{n, c, h, w})
	wgt := tensor.New("weights", tensor.Shape{c, kh, kw})
	ofm := tensor.New("ofm", tensor.Shape{n, c, oh, ow})
	nA := &Axis{Name: "n", Extent: n}
	cA := &Axis{Name: "c", Extent: c}
	ohA := &Axis{Name: "oh", Extent: oh}
	owA := &Axis{Name: "ow", Extent: ow}
	khA := &Axis{Name: "kh", Extent: kh}
	kwA := &Axis{Name: "kw", Extent: kw}
	body := Mul(
		&Access{Tensor: ifm, Index: []Affine{
			AxisIdx(nA), AxisIdx(cA),
			AddIdx(ScaledIdx(ohA, stride, -pad), AxisIdx(khA)),
			AddIdx(ScaledIdx(owA, stride, -pad), AxisIdx(kwA)),
		}},
		&Access{Tensor: wgt, Index: []Affine{AxisIdx(cA), AxisIdx(khA), AxisIdx(kwA)}},
	)
	op := NewComputeOp("depthwise_conv2d", ofm,
		[]*Axis{nA, cA, ohA, owA}, []*Axis{khA, kwA},
		[]Affine{AxisIdx(nA), AxisIdx(cA), AxisIdx(ohA), AxisIdx(owA)},
		0, body, nil,
		[]*tensor.Tensor{ifm, wgt})
	return &Workload{
		Kernel: "depthwise_conv2d",
		Key:    fmt.Sprintf("depthwise_n%d_h%d_w%d_c%d_k%dx%d_s%d_p%d", n, h, w, c, kh, kw, stride, pad),
		Params: []int{n, h, w, c, kh, kw, stride, pad},
		Op:     op,
	}
}

// DenseBiasRelu builds Y[b,o] = relu(bias[o] + Σ_i X[b,i]·W[o,i]),
// the fully-connected layer kernel.
func DenseBiasRelu(batch, in, out int) *Workload {
	x := tensor.New("X", tensor.Shape{batch, in})
	w := tensor.New("W", tensor.Shape{out, in})
	bias := tensor.New("bias", tensor.Shape{out})
	y := tensor.New("Y", tensor.Shape{batch, out})
	b := &Axis{Name: "b", Extent: batch}
	o := &Axis{Name: "o", Extent: out}
	i := &Axis{Name: "i", Extent: in}
	body := Mul(
		&Access{Tensor: x, Index: []Affine{AxisIdx(b), AxisIdx(i)}},
		&Access{Tensor: w, Index: []Affine{AxisIdx(o), AxisIdx(i)}},
	)
	epi := Max(Add(AccRef{}, &Access{Tensor: bias, Index: []Affine{AxisIdx(o)}}), ConstF{Val: 0})
	op := NewComputeOp("dense_bias_relu", y,
		[]*Axis{b, o}, []*Axis{i},
		[]Affine{AxisIdx(b), AxisIdx(o)},
		0, body, epi,
		[]*tensor.Tensor{x, w, bias})
	return &Workload{
		Kernel: "dense_bias_relu",
		Key:    fmt.Sprintf("dense_b%d_i%d_o%d", batch, in, out),
		Params: []int{batch, in, out},
		Op:     op,
	}
}
