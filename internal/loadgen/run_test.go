package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/service"
)

// TestAggressorIsolationE2E is the end-to-end fairness experiment on a
// 3-node in-process fleet: the compliant "batch" tenant offers steady
// cache-hit traffic while the "burst" aggressor offers ~10× its fair share
// of fresh simulation keys. Weighted-fair admission must shed the aggressor
// (client-visible 429s), never the compliant tenant, and the compliant
// tenant's tail latency must stay near its solo baseline. The report's
// ledger reconciliation — per tenant and fleet-wide — is asserted via
// ValidateReport.
func TestAggressorIsolationE2E(t *testing.T) {
	cfg := Config{
		Seed:      1,
		Duration:  800 * time.Millisecond,
		Steps:     []float64{2},
		Tenants:   DefaultScenario(),
		Isolation: &IsolationSpec{Compliant: "batch", Aggressor: "burst"},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rt, cleanup, err := LocalFleet(3, service.Config{
		WorkersPerArch:      1,
		MaxQueuedCandidates: 6,
		TenantWeights:       cfg.TenantWeights(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	r := &Runner{Backend: rt, Cfg: cfg, Log: t.Logf}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Reconciliation per tenant and fleet-wide, outcome partitioning, and
	// percentile ordering all live in the report validator.
	if err := ValidateReport(rep); err != nil {
		t.Fatal(err)
	}

	iso := rep.Isolation
	if iso == nil {
		t.Fatal("report has no isolation verdict")
	}
	// The timing-sensitive assertions hold only when service time is not
	// inflated by the race detector: under -race the compliant tenant's
	// in-flight load (rate × slowed latency) genuinely exceeds its fair
	// share, so the under-share guarantees below no longer apply. The
	// structural assertions (reconciliation, aggressor shedding) run in
	// every build.
	if !raceEnabled {
		// The compliant tenant is always under its fair share, and
		// under-share tenants are admitted unconditionally — so zero 429s
		// is a guarantee, not a statistical outcome.
		if iso.CompliantRejected != 0 {
			t.Errorf("compliant tenant was shed %d candidates; fair-share admission must never reject an under-share tenant", iso.CompliantRejected)
		}
		// Tail-latency isolation: the compliant tenant's contended p99
		// stays near its solo baseline. The absolute slack absorbs
		// single-core scheduler noise; the multiplicative term is the
		// real bound on a quiet machine.
		bound := math.Max(4*iso.SoloP99MS, iso.SoloP99MS+250)
		if iso.ContendedP99MS > bound {
			t.Errorf("compliant contended p99 %.1fms exceeds bound %.1fms (solo %.1fms)",
				iso.ContendedP99MS, bound, iso.SoloP99MS)
		}
	}
	// The aggressor offers far past fleet capacity: client-visible
	// shedding must occur (429s that survive router rerouting).
	if iso.AggressorRejected == 0 {
		t.Error("aggressor was never shed a client-visible 429 despite offering ~10x its fair share")
	}

	contended := rep.Steps[len(rep.Steps)-1]
	cRow := tenantRow(&contended, "batch")
	aRow := tenantRow(&contended, "burst")
	if cRow == nil || aRow == nil {
		t.Fatal("contended step missing tenant rows")
	}
	// The compliant tenant's traffic is pooled and warmed: cache hits must
	// dominate (the hit path is what keeps its latency flat while the
	// aggressor's cold keys queue behind the gate). Not every candidate —
	// a batch arriving while the tenant's own fair-share slots are full is
	// rerouted to a ring successor that serves the key cold, which is the
	// gate working as designed, not a cache defect.
	if !raceEnabled && cRow.CacheHits*4 < cRow.Completed*3 {
		t.Errorf("compliant tenant: %d hits of %d completed — pooled traffic must be ≥75%% cache hits after warmup",
			cRow.CacheHits, cRow.Completed)
	}
	// Server-side shed counters can only exceed the client-visible count
	// (rerouted batches are counted at every node that rejected them).
	if contended.Fleet.Rejected < aRow.Rejected {
		t.Errorf("fleet rejected %d < aggressor client-visible rejected %d", contended.Fleet.Rejected, aRow.Rejected)
	}
	t.Logf("isolation: solo p99 %.1fms, contended p99 %.1fms (%.2fx), aggressor shed %d (fleet %d)",
		iso.SoloP99MS, iso.ContendedP99MS, iso.P99Ratio, iso.AggressorRejected, contended.Fleet.Rejected)
}

// TestRunnerReportSmoke runs a small single-tenant Poisson config against a
// 1-node fleet and checks the artifact survives a JSON round trip with its
// validation intact — the schema contract cmd/benchreport and the CI smoke
// job rely on.
func TestRunnerReportSmoke(t *testing.T) {
	cfg := Config{
		Seed:     5,
		Duration: 300 * time.Millisecond,
		Steps:    []float64{1},
		Tenants: []TenantSpec{{
			Name: "solo-smoke", Rate: 30, BatchMin: 1, BatchMax: 2, Pool: 8,
		}},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rt, cleanup, err := LocalFleet(1, service.Config{
		WorkersPerArch: 1,
		TenantWeights:  cfg.TenantWeights(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	rep, err := (&Runner{Backend: rt, Cfg: cfg}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(rep); err != nil {
		t.Fatal(err)
	}

	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(&back); err != nil {
		t.Fatalf("report does not survive a JSON round trip: %v", err)
	}
	if back.TraceSHA256 != rep.TraceSHA256 {
		t.Fatal("trace hash lost in round trip")
	}
}

// TestRunnerCancellation checks a canceled context aborts the run with an
// error instead of emitting a partial report.
func TestRunnerCancellation(t *testing.T) {
	cfg := Config{
		Seed:     9,
		Duration: 10 * time.Second, // far longer than the test will allow
		Steps:    []float64{1},
		Tenants:  []TenantSpec{{Name: "c", Rate: 50, BatchMin: 1, BatchMax: 1, Pool: 4}},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rt, cleanup, err := LocalFleet(1, service.Config{WorkersPerArch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := (&Runner{Backend: rt, Cfg: cfg}).Run(ctx); err == nil {
		t.Fatal("canceled run returned a report instead of an error")
	}
}
