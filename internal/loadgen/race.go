//go:build race

package loadgen

// raceEnabled reports whether the race detector is compiled in. The e2e
// isolation test keeps its structural assertions (reconciliation, aggressor
// shedding) under the detector but drops the latency-bound ones: the
// detector's order-of-magnitude slowdown on small machines inflates service
// time enough that even the compliant tenant's in-flight load exceeds its
// fair share, which voids the under-share premise those bounds rest on.
const raceEnabled = true
