package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
)

// Report is the saturation artifact `simtune loadgen -report` emits (the
// BENCH-style JSON cmd/benchreport understands): per-tenant latency
// percentiles vs offered load, reject rates, and the fleet-ledger
// reconciliation for every phase, plus the aggressor-isolation verdict when
// the config names a tenant pair.
type Report struct {
	// Seed reproduces the run; TraceSHA256 is the deterministic witness —
	// a hash over every phase's offered-load trace, identical across runs
	// of the same seed and config on any host.
	Seed        uint64  `json:"seed"`
	TraceSHA256 string  `json:"trace_sha256"`
	DurationSec float64 `json:"duration_sec"`
	// Tenants echoes the (normalized) mix the run offered.
	Tenants []TenantSpec `json:"tenants"`
	// Steps are the measured phases in execution order: the optional solo
	// baseline first, then one step per offered-load multiplier.
	Steps []StepReport `json:"steps"`
	// Isolation is the aggressor-isolation verdict (nil when the config
	// names no tenant pair).
	Isolation *IsolationReport `json:"isolation,omitempty"`
}

// StepReport is one measured phase.
type StepReport struct {
	// Phase names the step: "solo" or "x<multiplier>".
	Phase string `json:"phase"`
	// Multiplier scales every tenant's configured rate in this phase.
	Multiplier  float64 `json:"multiplier"`
	DurationSec float64 `json:"duration_sec"`
	// TraceHash is this phase's offered-load trace hash (Plan.Hash).
	TraceHash string `json:"trace_hash"`
	// Tenants is the client-side per-tenant view (offered vs outcome and
	// batch latency percentiles).
	Tenants []TenantStepReport `json:"tenants"`
	// Fleet is the server-side statusz movement across the phase.
	Fleet FleetReport `json:"fleet"`
}

// TenantStepReport is one tenant's client-side measurements in one phase.
// Completed+Rejected+Errored == OfferedCandidates (every offered candidate
// has exactly one outcome; the run waits for all in-flight batches).
type TenantStepReport struct {
	Tenant            string `json:"tenant"`
	OfferedBatches    uint64 `json:"offered_batches"`
	OfferedCandidates uint64 `json:"offered_candidates"`
	// Completed candidates came back with results; CacheHits/CacheMisses
	// partition them by Result.CacheHit.
	Completed uint64 `json:"completed"`
	// Rejected candidates were shed by the admission gate (429).
	Rejected uint64 `json:"rejected"`
	// Errored candidates failed for any other reason.
	Errored     uint64  `json:"errored"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

// FleetReport is the server-side statusz delta across one phase, with the
// ledger invariants evaluated: Reconciled is the fleet-wide
// hits+misses+canceled == candidates check, TenantsReconciled the same per
// tenant row. Candidates counts admitted work (the sum of the per-tenant
// ledgers, which on a router is the node-side view); Offered counts what the
// backend received before shedding — on a single node the two coincide minus
// rejections, on a router Offered also excludes reroute retries while
// Rejected (a node-counter sum) includes every per-node shed, so it can
// exceed the client-visible 429s.
type FleetReport struct {
	Offered           uint64              `json:"offered"`
	Candidates        uint64              `json:"candidates"`
	CacheHits         uint64              `json:"cache_hits"`
	CacheMisses       uint64              `json:"cache_misses"`
	CacheCanceled     uint64              `json:"cache_canceled"`
	Rejected          uint64              `json:"rejected"`
	Reconciled        bool                `json:"reconciled"`
	TenantsReconciled bool                `json:"tenants_reconciled"`
	Tenants           []TenantFleetReport `json:"tenants,omitempty"`
}

// TenantFleetReport is one tenant's server-side ledger movement in a phase.
type TenantFleetReport struct {
	Tenant        string `json:"tenant"`
	Candidates    uint64 `json:"candidates"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheCanceled uint64 `json:"cache_canceled"`
	Rejected      uint64 `json:"rejected"`
}

// IsolationReport compares the compliant tenant's contended tail latency
// against its solo baseline while the aggressor overdrives its share.
type IsolationReport struct {
	Compliant string `json:"compliant"`
	Aggressor string `json:"aggressor"`
	// SoloP99MS is the compliant tenant's p99 running alone;
	// ContendedP99MS its p99 in the sweep step whose multiplier is closest
	// to 1 (the nominal mix); P99Ratio the quotient.
	SoloP99MS      float64 `json:"solo_p99_ms"`
	ContendedP99MS float64 `json:"contended_p99_ms"`
	P99Ratio       float64 `json:"p99_ratio"`
	// CompliantRejected / AggressorRejected count 429-shed candidates in
	// the contended step: fairness means the former stays 0 while the
	// latter absorbs the shedding.
	CompliantRejected uint64 `json:"compliant_rejected"`
	AggressorRejected uint64 `json:"aggressor_rejected"`
	// Isolated is the verdict: the compliant tenant lost no work and its
	// contended p99 stayed within 2× of solo (with a 25ms absolute floor
	// so near-zero baselines don't fail on scheduler jitter).
	Isolated bool `json:"isolated"`
}

// isolationBoundMS is the absolute slack added to the 2×-of-solo bound.
const isolationBoundMS = 25

// finish derives the run-level fields that need the whole step list: the
// combined trace hash and the isolation verdict.
func (r *Report) finish(cfg *Config) {
	h := sha256.New()
	for _, s := range r.Steps {
		h.Write([]byte(s.Phase))
		h.Write([]byte(s.TraceHash))
	}
	r.TraceSHA256 = hex.EncodeToString(h.Sum(nil))

	iso := cfg.Isolation
	if iso == nil {
		return
	}
	var solo, contended *StepReport
	bestDist := math.Inf(1)
	for i := range r.Steps {
		s := &r.Steps[i]
		if s.Phase == "solo" {
			solo = s
			continue
		}
		if d := math.Abs(s.Multiplier - 1); d < bestDist {
			bestDist, contended = d, s
		}
	}
	if solo == nil || contended == nil {
		return
	}
	s := tenantRow(solo, iso.Compliant)
	c := tenantRow(contended, iso.Compliant)
	a := tenantRow(contended, iso.Aggressor)
	if s == nil || c == nil || a == nil {
		return
	}
	rep := &IsolationReport{Compliant: iso.Compliant, Aggressor: iso.Aggressor}
	rep.SoloP99MS = s.P99MS
	rep.ContendedP99MS = c.P99MS
	rep.CompliantRejected = c.Rejected
	rep.AggressorRejected = a.Rejected
	if rep.SoloP99MS > 0 {
		rep.P99Ratio = rep.ContendedP99MS / rep.SoloP99MS
	}
	bound := math.Max(2*rep.SoloP99MS, rep.SoloP99MS+isolationBoundMS)
	rep.Isolated = rep.CompliantRejected == 0 && rep.ContendedP99MS <= bound
	r.Isolation = rep
}

// tenantRow finds a tenant's row in a step (nil if absent).
func tenantRow(s *StepReport, name string) *TenantStepReport {
	for i := range s.Tenants {
		if s.Tenants[i].Tenant == name {
			return &s.Tenants[i]
		}
	}
	return nil
}

// ValidateReport checks a report's internal consistency — what the CI smoke
// job (and the e2e suite) asserts about an artifact regardless of the
// numbers inside: the trace hash is present, every phase reconciles, every
// tenant's outcomes partition its offered load, and percentile ordering
// holds.
func ValidateReport(r *Report) error {
	if len(r.TraceSHA256) != 64 {
		return fmt.Errorf("loadgen: report: bad trace_sha256 %q", r.TraceSHA256)
	}
	if len(r.Steps) == 0 {
		return fmt.Errorf("loadgen: report: no steps")
	}
	for _, s := range r.Steps {
		if len(s.TraceHash) != 64 {
			return fmt.Errorf("loadgen: report: step %s: bad trace_hash %q", s.Phase, s.TraceHash)
		}
		if !s.Fleet.Reconciled {
			return fmt.Errorf("loadgen: report: step %s: fleet ledger does not reconcile (hits %d + misses %d + canceled %d != candidates %d)",
				s.Phase, s.Fleet.CacheHits, s.Fleet.CacheMisses, s.Fleet.CacheCanceled, s.Fleet.Candidates)
		}
		if !s.Fleet.TenantsReconciled {
			return fmt.Errorf("loadgen: report: step %s: per-tenant ledgers do not reconcile", s.Phase)
		}
		for _, t := range s.Tenants {
			if t.Completed+t.Rejected+t.Errored != t.OfferedCandidates {
				return fmt.Errorf("loadgen: report: step %s tenant %s: completed %d + rejected %d + errored %d != offered %d",
					s.Phase, t.Tenant, t.Completed, t.Rejected, t.Errored, t.OfferedCandidates)
			}
			if t.CacheHits+t.CacheMisses != t.Completed {
				return fmt.Errorf("loadgen: report: step %s tenant %s: hits %d + misses %d != completed %d",
					s.Phase, t.Tenant, t.CacheHits, t.CacheMisses, t.Completed)
			}
			if t.P50MS > t.P99MS || t.P99MS > t.MaxMS {
				return fmt.Errorf("loadgen: report: step %s tenant %s: percentile ordering violated (p50 %.3f, p99 %.3f, max %.3f)",
					s.Phase, t.Tenant, t.P50MS, t.P99MS, t.MaxMS)
			}
		}
	}
	return nil
}
