// Package loadgen is the seeded, deterministic traffic generator behind
// `simtune loadgen`: it drives a simulate fleet (an in-process router, a
// remote `simtune serve` node or a `simtune route` router — anything
// implementing service.Backend) with a configurable multi-tenant mix and
// measures how the service tier holds up under contention.
//
// The generator is open-loop: every phase's arrival schedule — which tenant
// fires when, with how many candidates of which workload — is computed up
// front as a pure function of the seed (BuildPlan, a hotpath lint root, so
// no clock read can ever leak into the schedule), and the pacing loop then
// dispatches each arrival at its precomputed offset regardless of how slowly
// the service answers. Offered load is therefore independent of service
// latency, which is what makes saturation measurable at all: a closed-loop
// client slows down with the server and can never push it past the knee.
//
// Two arrival processes are built in: Poisson (exponential inter-arrival
// times at a mean rate) and bursty on-off (exponential on/off phases with
// Poisson arrivals during on — the aggressor's shape). Tenants draw batch
// sizes uniformly from a range and workloads from a weighted family mix over
// the existing arch/workload corpus; a tenant with Pool > 0 re-offers a
// bounded set of candidate schedules (cache-hit traffic after warmup), while
// Pool == 0 tenants offer fresh candidates every time (cold simulation
// traffic). The identical seed reproduces the identical offered-load trace,
// byte for byte — Plan.Hash is the checkable witness.
//
// Run sweeps the mix over a series of offered-load multipliers, optionally
// measuring a compliant tenant's solo run first (the aggressor-isolation
// baseline), and emits a Report: per-tenant latency percentiles vs offered
// load, reject rates, and the per-tenant + fleet-wide
// hits+misses+canceled == candidates reconciliation, all from the same
// mergeable obs histograms and statusz ledgers the service itself exports.
package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/isa"
	"repro/internal/service"
	"repro/internal/te"
)

// WorkloadChoice is one entry of a tenant's workload-family mix.
type WorkloadChoice struct {
	// Weight is the relative draw probability within the tenant's mix.
	Weight float64 `json:"weight"`
	// Spec is the workload identity offered. For matmul specs with
	// DimLo/DimHi set, Spec.Dims is ignored and each arrival draws its
	// three extents uniformly from [DimLo, DimHi] instead — every batch
	// then carries a fresh cache key, which is how an aggressor generates
	// unbounded cold simulation work.
	Spec service.WorkloadSpec `json:"spec"`
	// DimLo/DimHi enable the per-arrival matmul dimension draw (matmul
	// specs only; 0 disables).
	DimLo int `json:"dim_lo,omitempty"`
	DimHi int `json:"dim_hi,omitempty"`
}

// Arrival process kinds.
const (
	ArrivalPoisson = "poisson"
	ArrivalOnOff   = "onoff"
)

// TenantSpec describes one tenant's traffic.
type TenantSpec struct {
	// Name is the tenant identity sent as X-Simtune-Tenant.
	Name string `json:"name"`
	// Weight is the tenant's fair-share weight in the service admission
	// gate (informational here; the fleet is configured with the same map).
	// Default 1.
	Weight float64 `json:"weight,omitempty"`
	// Arrival selects the arrival process: ArrivalPoisson (default) or
	// ArrivalOnOff.
	Arrival string `json:"arrival,omitempty"`
	// Rate is the mean batch arrival rate in batches/second — the
	// steady-state rate for Poisson, the during-burst rate for on-off.
	Rate float64 `json:"rate"`
	// OnSec/OffSec are the mean burst and silence lengths in seconds for
	// ArrivalOnOff (both exponential; defaults 1 and 1).
	OnSec  float64 `json:"on_sec,omitempty"`
	OffSec float64 `json:"off_sec,omitempty"`
	// BatchMin/BatchMax bound the uniform batch-size draw (candidates per
	// batch). Defaults 1 and 8.
	BatchMin int `json:"batch_min,omitempty"`
	BatchMax int `json:"batch_max,omitempty"`
	// Pool, when > 0, re-offers candidates from a pool of this many
	// distinct schedules per workload (warmup primes them, after which the
	// tenant's traffic is cache-hit traffic). 0 offers fresh candidates.
	Pool int `json:"pool,omitempty"`
	// Arch is the simulated target (default riscv).
	Arch string `json:"arch,omitempty"`
	// Workloads is the weighted workload-family mix (default: conv_group
	// tiny group 1).
	Workloads []WorkloadChoice `json:"workloads,omitempty"`
}

// IsolationSpec names the tenant pair of the aggressor-isolation experiment:
// Compliant is measured solo before the sweep, and the report compares its
// contended p99 against that baseline while Aggressor absorbs the 429s.
type IsolationSpec struct {
	Compliant string `json:"compliant"`
	Aggressor string `json:"aggressor"`
}

// Config is one loadgen run.
type Config struct {
	// Seed derives every arrival schedule; the identical seed reproduces
	// the identical offered-load trace (Report.TraceSHA256 is the witness).
	Seed uint64 `json:"seed"`
	// Duration is the offered-load window per phase.
	Duration time.Duration `json:"duration_ns"`
	// Steps are the offered-load multipliers swept over the tenant mix
	// (each tenant's Rate scales by the step). Default {1}.
	Steps []float64 `json:"steps,omitempty"`
	// Tenants is the mix.
	Tenants []TenantSpec `json:"tenants"`
	// Isolation, when non-nil, adds the solo baseline phase and the
	// isolation verdict to the report.
	Isolation *IsolationSpec `json:"isolation,omitempty"`
}

// defaults normalizes a spec in place.
func (t *TenantSpec) defaults() {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Arrival == "" {
		t.Arrival = ArrivalPoisson
	}
	if t.OnSec <= 0 {
		t.OnSec = 1
	}
	if t.OffSec <= 0 {
		t.OffSec = 1
	}
	if t.BatchMin <= 0 {
		t.BatchMin = 1
	}
	if t.BatchMax < t.BatchMin {
		t.BatchMax = t.BatchMin + 7
	}
	if t.Arch == "" {
		t.Arch = string(isa.RISCV)
	}
	if len(t.Workloads) == 0 {
		t.Workloads = []WorkloadChoice{{Weight: 1, Spec: service.ConvGroupSpec(te.ScaleTiny, 1)}}
	}
	for i := range t.Workloads {
		if t.Workloads[i].Weight <= 0 {
			t.Workloads[i].Weight = 1
		}
	}
}

// Validate normalizes and fully checks the config, so BuildPlan (which must
// stay formatting-free — it is a hotpath lint root) can assume well-formed
// inputs and the pacing loop never discovers a bad workload mid-run.
func (c *Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be positive, got %v", c.Duration)
	}
	if len(c.Steps) == 0 {
		c.Steps = []float64{1}
	}
	for _, m := range c.Steps {
		if m <= 0 {
			return fmt.Errorf("loadgen: step multiplier must be positive, got %v", m)
		}
	}
	if len(c.Tenants) == 0 {
		return fmt.Errorf("loadgen: at least one tenant required")
	}
	seen := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		t.defaults()
		if t.Name == "" || t.Name == service.DefaultTenant {
			return fmt.Errorf("loadgen: tenant %d: name required (and %q is reserved)", i, service.DefaultTenant)
		}
		if seen[t.Name] {
			return fmt.Errorf("loadgen: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Rate <= 0 {
			return fmt.Errorf("loadgen: tenant %q: rate must be positive, got %v", t.Name, t.Rate)
		}
		if t.Arrival != ArrivalPoisson && t.Arrival != ArrivalOnOff {
			return fmt.Errorf("loadgen: tenant %q: arrival %q (want %s|%s)", t.Name, t.Arrival, ArrivalPoisson, ArrivalOnOff)
		}
		if _, err := isa.ParseArch(t.Arch); err != nil {
			return fmt.Errorf("loadgen: tenant %q: %v", t.Name, err)
		}
		for j, w := range t.Workloads {
			if w.DimLo != 0 || w.DimHi != 0 {
				if w.Spec.Kind != "matmul" {
					return fmt.Errorf("loadgen: tenant %q workload %d: dim range needs a matmul spec", t.Name, j)
				}
				if w.DimLo < 1 || w.DimHi < w.DimLo {
					return fmt.Errorf("loadgen: tenant %q workload %d: bad dim range [%d,%d]", t.Name, j, w.DimLo, w.DimHi)
				}
				continue // Dims are drawn per arrival; the spec template needs no dims.
			}
			if _, err := w.Spec.Factory(); err != nil {
				return fmt.Errorf("loadgen: tenant %q workload %d: %v", t.Name, j, err)
			}
		}
	}
	if c.Isolation != nil {
		if !seen[c.Isolation.Compliant] || !seen[c.Isolation.Aggressor] {
			return fmt.Errorf("loadgen: isolation pair %q/%q must both be configured tenants",
				c.Isolation.Compliant, c.Isolation.Aggressor)
		}
		if c.Isolation.Compliant == c.Isolation.Aggressor {
			return fmt.Errorf("loadgen: isolation pair must be two distinct tenants")
		}
	}
	return nil
}

// TenantWeights renders the mix's fair-share weights in the shape
// service.Config.TenantWeights wants — what an in-process fleet (and any
// operator configuring real nodes for this mix) feeds the admission gate.
func (c *Config) TenantWeights() map[string]float64 {
	w := make(map[string]float64, len(c.Tenants))
	for _, t := range c.Tenants {
		w[t.Name] = t.Weight
	}
	return w
}

// Archs lists the distinct architectures the mix targets.
func (c *Config) Archs() []isa.Arch {
	var out []isa.Arch
	seen := make(map[isa.Arch]bool)
	for _, t := range c.Tenants {
		a, err := isa.ParseArch(t.Arch)
		if err != nil {
			continue // Validate already rejected it
		}
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// ParseTenants parses the compact CLI tenant-mix syntax: tenants separated
// by ';', fields by ',', each field 'key=value' (a bare first field is the
// name). Example:
//
//	batch,weight=3,arrival=poisson,rate=40,batch=1-4,pool=32,workload=conv_group:tiny:1;
//	burst,arrival=onoff,rate=400,on=0.05,off=0.15,batch=4-6,workload=matmul:16-48
//
// workload forms: conv_group:<scale>:<group>, matmul:<n>:<l>:<m>, and
// matmul:<lo>-<hi> (per-arrival dimension draw). Repeat workload= for a
// weighted mix; prefix a weight as workload=2x<form> (defaults 1).
func ParseTenants(spec string) ([]TenantSpec, error) {
	var out []TenantSpec
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		var t TenantSpec
		for i, f := range strings.Split(raw, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			k, v, found := strings.Cut(f, "=")
			if !found {
				if i == 0 {
					t.Name = f
					continue
				}
				return nil, fmt.Errorf("loadgen: tenant %q: field %q is not key=value", t.Name, f)
			}
			var err error
			switch k {
			case "name":
				t.Name = v
			case "weight":
				t.Weight, err = strconv.ParseFloat(v, 64)
			case "arrival":
				t.Arrival = v
			case "rate":
				t.Rate, err = strconv.ParseFloat(v, 64)
			case "on":
				t.OnSec, err = strconv.ParseFloat(v, 64)
			case "off":
				t.OffSec, err = strconv.ParseFloat(v, 64)
			case "batch":
				t.BatchMin, t.BatchMax, err = parseRange(v)
			case "pool":
				t.Pool, err = strconv.Atoi(v)
			case "arch":
				t.Arch = v
			case "workload":
				var wc WorkloadChoice
				wc, err = parseWorkload(v)
				if err == nil {
					t.Workloads = append(t.Workloads, wc)
				}
			default:
				return nil, fmt.Errorf("loadgen: tenant %q: unknown field %q", t.Name, k)
			}
			if err != nil {
				return nil, fmt.Errorf("loadgen: tenant %q: field %q: %v", t.Name, f, err)
			}
		}
		if t.Name == "" {
			return nil, fmt.Errorf("loadgen: tenant spec %q: name required", raw)
		}
		out = append(out, t)
	}
	return out, nil
}

// parseRange parses "lo-hi" (or a single "n" meaning n-n).
func parseRange(s string) (lo, hi int, err error) {
	los, his, found := strings.Cut(s, "-")
	if !found {
		his = los
	}
	if lo, err = strconv.Atoi(los); err != nil {
		return 0, 0, err
	}
	if hi, err = strconv.Atoi(his); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// parseWorkload parses one workload= value (see ParseTenants).
func parseWorkload(s string) (WorkloadChoice, error) {
	wc := WorkloadChoice{Weight: 1}
	if x := strings.Index(s, "x"); x > 0 {
		if w, err := strconv.ParseFloat(s[:x], 64); err == nil && w > 0 {
			wc.Weight = w
			s = s[x+1:]
		}
	}
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "conv_group":
		if len(parts) != 3 {
			return wc, fmt.Errorf("want conv_group:<scale>:<group>, got %q", s)
		}
		group, err := strconv.Atoi(parts[2])
		if err != nil {
			return wc, err
		}
		wc.Spec = service.WorkloadSpec{Kind: "conv_group", Scale: parts[1], Group: group}
		return wc, nil
	case "matmul":
		if len(parts) == 2 { // matmul:<lo>-<hi> — per-arrival dim draw
			lo, hi, err := parseRange(parts[1])
			if err != nil {
				return wc, err
			}
			wc.Spec = service.WorkloadSpec{Kind: "matmul"}
			wc.DimLo, wc.DimHi = lo, hi
			return wc, nil
		}
		if len(parts) != 4 {
			return wc, fmt.Errorf("want matmul:<n>:<l>:<m> or matmul:<lo>-<hi>, got %q", s)
		}
		dims := make([]int, 3)
		for i := 0; i < 3; i++ {
			d, err := strconv.Atoi(parts[i+1])
			if err != nil {
				return wc, err
			}
			dims[i] = d
		}
		wc.Spec = service.WorkloadSpec{Kind: "matmul", Dims: dims}
		return wc, nil
	}
	return wc, fmt.Errorf("unknown workload kind %q", parts[0])
}

// DefaultScenario is the built-in 2-tenant aggressor mix `simtune loadgen`
// runs without -tenants: "batch" is the compliant tenant — steady Poisson
// arrivals over a bounded candidate pool (cache-hit traffic after warmup) —
// and "burst" is the aggressor: on-off bursts of fresh matmul keys, every
// one a cold simulation, offered far past its fair share.
func DefaultScenario() []TenantSpec {
	return []TenantSpec{
		{
			Name: "batch", Weight: 3, Arrival: ArrivalPoisson, Rate: 40,
			BatchMin: 1, BatchMax: 2, Pool: 32,
			Workloads: []WorkloadChoice{{Weight: 1, Spec: service.ConvGroupSpec(te.ScaleTiny, 1)}},
		},
		{
			Name: "burst", Arrival: ArrivalOnOff, Rate: 600,
			OnSec: 0.1, OffSec: 0.1, BatchMin: 4, BatchMax: 6,
			Workloads: []WorkloadChoice{{Weight: 1, Spec: service.WorkloadSpec{Kind: "matmul"}, DimLo: 12, DimHi: 24}},
		},
	}
}
