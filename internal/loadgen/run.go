package loadgen

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/isa"
	"repro/internal/num"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/service"
)

// pace is the open-loop dispatch loop: it walks the precomputed arrival
// schedule and fires each arrival at its offset, never waiting on the
// service — a slow backend makes batches pile up in flight, it does not slow
// the offered load down. The loop is a hotpath lint root: the clock, the
// sleeper and the dispatcher are injected as opaque function values, so the
// analyzer proves the loop body itself cannot read a clock, format a string
// or touch JSON — every scheduling decision was already made in BuildPlan.
// Returns how many arrivals were dispatched (short on cancellation, signaled
// by done closing or sleep returning false).
func pace(done <-chan struct{}, arrivals []Arrival, elapsed func() int64, sleep func(int64) bool, dispatch func(Arrival)) int {
	for i := range arrivals {
		for {
			wait := arrivals[i].AtNS - elapsed()
			if wait <= 0 {
				break
			}
			if !sleep(wait) {
				return i
			}
		}
		select {
		case <-done:
			return i
		default:
		}
		dispatch(arrivals[i])
	}
	return len(arrivals)
}

// materialize builds the wire request for one arrival. Candidates are
// constructed here, at dispatch time, not in the plan — the plan stays a
// small hashable schedule while the schedules themselves are derived
// deterministically from it: candidate j of the arrival reorders the
// workload's loop nest into permutation index (First+j) for fresh tenants,
// or a pool slot drawn from the arrival's own seed for pooled tenants.
func materialize(t *TenantSpec, a Arrival) (*service.SimulateRequest, error) {
	wc := t.Workloads[a.Workload]
	spec := wc.Spec
	if a.Dims[0] > 0 {
		spec = service.MatMulSpec(a.Dims[0], a.Dims[1], a.Dims[2])
	}
	factory, err := spec.Factory()
	if err != nil {
		return nil, fmt.Errorf("loadgen: tenant %q: %w", t.Name, err)
	}
	rng := num.NewRNG(a.Seed)
	cands := make([]service.Candidate, a.Batch)
	for j := range cands {
		idx := a.First + j
		if t.Pool > 0 {
			idx = rng.Intn(t.Pool)
		}
		s := schedule.New(factory().Op)
		perm := num.NthPerm(idx, len(s.Leaves))
		order := make([]*schedule.IterVar, len(perm))
		for k, p := range perm {
			order[k] = s.Leaves[p]
		}
		if err := s.Reorder(order); err != nil {
			return nil, fmt.Errorf("loadgen: tenant %q: %w", t.Name, err)
		}
		cands[j] = service.Candidate{Steps: s.Steps}
	}
	return &service.SimulateRequest{Arch: t.Arch, Workload: spec, Candidates: cands}, nil
}

// poolRequests enumerates a pooled tenant's entire candidate set for one
// workload choice, chunked into batches — the warmup phase offers these so
// the sweep measures steady-state (cache-hit) traffic for pooled tenants.
func poolRequests(t *TenantSpec, wi, chunk int) ([]*service.SimulateRequest, error) {
	wc := t.Workloads[wi]
	if wc.DimLo > 0 {
		return nil, nil // per-arrival dims: keys are fresh by design, nothing to prime
	}
	var out []*service.SimulateRequest
	for lo := 0; lo < t.Pool; lo += chunk {
		n := chunk
		if lo+n > t.Pool {
			n = t.Pool - lo
		}
		req, err := materialize(t, Arrival{Tenant: 0, Batch: n, Workload: wi, First: lo})
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
	return out, nil
}

// Runner drives one loadgen Config against a Backend (an in-process fleet, a
// single node client, or a router client).
type Runner struct {
	Backend service.Backend
	Cfg     Config
	// Log, when non-nil, receives one progress line per phase.
	Log func(format string, args ...any)
}

// tenantPhase accumulates one tenant's client-side view of a phase.
type tenantPhase struct {
	completed atomic.Uint64
	rejected  atomic.Uint64
	errored   atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	hist      obs.Histogram
}

// Run executes warmup, the optional solo baseline, and the offered-load
// sweep, and assembles the Report. The config must already Validate.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	cfg := &r.Cfg
	rep := &Report{
		Seed:        cfg.Seed,
		DurationSec: cfg.Duration.Seconds(),
		Tenants:     cfg.Tenants,
	}

	// Warmup: prime every pooled tenant's candidate set so the sweep
	// measures steady-state cache behavior, not first-touch simulation.
	for ti := range cfg.Tenants {
		t := &cfg.Tenants[ti]
		if t.Pool <= 0 {
			continue
		}
		for wi := range t.Workloads {
			reqs, err := poolRequests(t, wi, 16)
			if err != nil {
				return nil, err
			}
			tctx := service.WithTenant(ctx, t.Name)
			for _, req := range reqs {
				if _, err := r.Backend.Simulate(tctx, req); err != nil {
					return nil, fmt.Errorf("loadgen: warmup for tenant %q: %w", t.Name, err)
				}
			}
		}
	}
	r.logf("warmup done: pools primed")

	// Solo baseline: the compliant tenant alone at multiplier 1. Its p99
	// here is what the contended run is judged against.
	if iso := cfg.Isolation; iso != nil {
		var solo []TenantSpec
		for _, t := range cfg.Tenants {
			if t.Name == iso.Compliant {
				solo = append(solo, t)
			}
		}
		step, err := r.runPhase(ctx, "solo", solo, 1)
		if err != nil {
			return nil, err
		}
		rep.Steps = append(rep.Steps, step)
		r.logf("solo baseline: %s p99 %.1fms", iso.Compliant, step.Tenants[0].P99MS)
	}

	// The sweep: full mix at each offered-load multiplier.
	for _, mult := range cfg.Steps {
		phase := "x" + strconv.FormatFloat(mult, 'g', -1, 64)
		step, err := r.runPhase(ctx, phase, cfg.Tenants, mult)
		if err != nil {
			return nil, err
		}
		rep.Steps = append(rep.Steps, step)
		r.logf("%s: offered %d candidates, fleet rejected %d", phase, offeredTotal(step), step.Fleet.Rejected)
	}

	rep.finish(cfg)
	return rep, nil
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		r.Log(format, args...)
	}
}

func offeredTotal(s StepReport) (n uint64) {
	for _, t := range s.Tenants {
		n += t.OfferedCandidates
	}
	return n
}

// runPhase offers one phase's plan open-loop and measures it: client-side
// per-tenant latency/outcome counters plus the fleet's statusz delta across
// the phase (all in-flight batches settle before the closing snapshot, so
// the delta reconciles).
func (r *Runner) runPhase(ctx context.Context, phase string, tenants []TenantSpec, mult float64) (StepReport, error) {
	plan := BuildPlan(r.Cfg.Seed^fnv64(phase), tenants, int64(r.Cfg.Duration), mult)

	before, err := r.Backend.Statusz(ctx)
	if err != nil {
		return StepReport{}, fmt.Errorf("loadgen: statusz before phase %s: %w", phase, err)
	}

	col := make([]tenantPhase, len(tenants))
	var wg sync.WaitGroup
	start := time.Now()
	elapsed := func() int64 { return int64(time.Since(start)) }
	sleep := func(ns int64) bool {
		t := time.NewTimer(time.Duration(ns))
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			return true
		}
	}
	dispatch := func(a Arrival) {
		t := &tenants[a.Tenant]
		c := &col[a.Tenant]
		req, merr := materialize(t, a)
		if merr != nil {
			c.errored.Add(uint64(a.Batch))
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tctx := service.WithTenant(ctx, t.Name)
			t0 := time.Now()
			resp, serr := r.Backend.Simulate(tctx, req)
			lat := time.Since(t0)
			switch {
			case serr == nil:
				c.completed.Add(uint64(a.Batch))
				c.hist.Observe(lat)
				for _, res := range resp.Results {
					if res.CacheHit {
						c.hits.Add(1)
					} else {
						c.misses.Add(1)
					}
				}
			case errors.Is(serr, service.ErrOverloaded):
				c.rejected.Add(uint64(a.Batch))
				c.hist.Observe(lat)
			default:
				c.errored.Add(uint64(a.Batch))
			}
		}()
	}
	pace(ctx.Done(), plan.Arrivals, elapsed, sleep, dispatch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return StepReport{}, fmt.Errorf("loadgen: phase %s: %w", phase, err)
	}

	after, err := r.Backend.Statusz(ctx)
	if err != nil {
		return StepReport{}, fmt.Errorf("loadgen: statusz after phase %s: %w", phase, err)
	}

	step := StepReport{
		Phase:       phase,
		Multiplier:  mult,
		DurationSec: r.Cfg.Duration.Seconds(),
		TraceHash:   plan.Hash(),
		Fleet:       fleetDelta(before, after),
	}
	for ti := range tenants {
		c := &col[ti]
		snap := c.hist.Snapshot()
		step.Tenants = append(step.Tenants, TenantStepReport{
			Tenant:            tenants[ti].Name,
			OfferedBatches:    uint64(plan.PerTenant[ti].Batches),
			OfferedCandidates: uint64(plan.PerTenant[ti].Candidates),
			Completed:         c.completed.Load(),
			Rejected:          c.rejected.Load(),
			Errored:           c.errored.Load(),
			CacheHits:         c.hits.Load(),
			CacheMisses:       c.misses.Load(),
			P50MS:             ms(snap.Quantile(0.5)),
			P99MS:             ms(snap.Quantile(0.99)),
			MaxMS:             ms(snap.Max()),
		})
	}
	return step, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// fleetDelta subtracts two statusz snapshots into the phase's fleet ledger
// movement, including the per-tenant rows, and evaluates the invariants.
func fleetDelta(before, after *service.Statusz) FleetReport {
	f := FleetReport{
		Offered:       after.Candidates - before.Candidates,
		CacheHits:     after.CacheHits - before.CacheHits,
		CacheMisses:   after.CacheMisses - before.CacheMisses,
		CacheCanceled: after.CacheCanceled - before.CacheCanceled,
		Rejected:      after.RejectedCandidates - before.RejectedCandidates,
	}

	prev := make(map[string]service.TenantStatus, len(before.Tenants))
	for _, ts := range before.Tenants {
		prev[ts.Tenant] = ts
	}
	f.TenantsReconciled = true
	for _, ts := range after.Tenants {
		p := prev[ts.Tenant] // zero value when the tenant is new this phase
		d := TenantFleetReport{
			Tenant:        ts.Tenant,
			Candidates:    ts.Candidates - p.Candidates,
			CacheHits:     ts.CacheHits - p.CacheHits,
			CacheMisses:   ts.CacheMisses - p.CacheMisses,
			CacheCanceled: ts.CacheCanceled - p.CacheCanceled,
			Rejected:      ts.RejectedCandidates - p.RejectedCandidates,
		}
		if d.Candidates == 0 && d.Rejected == 0 {
			continue // tenant idle this phase
		}
		if d.CacheHits+d.CacheMisses+d.CacheCanceled != d.Candidates {
			f.TenantsReconciled = false
		}
		f.Candidates += d.Candidates
		f.Tenants = append(f.Tenants, d)
	}
	// Cross-ledger check: the per-tenant candidate ledgers must agree with
	// the globally-counted cache outcomes (both are node-side sums, counted
	// by independent code paths).
	f.Reconciled = f.CacheHits+f.CacheMisses+f.CacheCanceled == f.Candidates
	return f
}

// LocalFleet builds an in-process router over n fresh nodes sharing one
// service config — the fixture the e2e suite and `simtune loadgen` (without
// -server) drive. The cleanup shuts the nodes down.
func LocalFleet(n int, scfg service.Config) (*service.Router, func(), error) {
	if len(scfg.Archs) == 0 {
		scfg.Archs = []isa.Arch{isa.RISCV}
	}
	nodes := make([]*service.Server, n)
	ids := make([]string, n)
	backends := make([]service.Backend, n)
	for i := range nodes {
		srv, err := service.NewServer(scfg)
		if err != nil {
			for _, s := range nodes[:i] {
				s.Shutdown(context.Background())
			}
			return nil, nil, err
		}
		nodes[i] = srv
		ids[i] = "node-" + strconv.Itoa(i)
		backends[i] = srv
	}
	rt, err := service.NewRouterBackends(ids, backends, service.RouterConfig{
		ProbeInterval:  -1,
		DisableHandoff: true,
	})
	if err != nil {
		for _, s := range nodes {
			s.Shutdown(context.Background())
		}
		return nil, nil, err
	}
	cleanup := func() {
		rt.Close()
		for _, s := range nodes {
			s.Shutdown(context.Background())
		}
	}
	return rt, cleanup, nil
}
