//go:build !race

package loadgen

// raceEnabled reports whether the race detector is compiled in; see race.go.
const raceEnabled = false
