package loadgen

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/schedule"
	"repro/internal/te"
)

// poissonTenant is the reference Poisson spec the statistical tests draw
// from: high rate over a long horizon so sample noise is small.
func poissonTenant() TenantSpec {
	t := TenantSpec{Name: "p", Arrival: ArrivalPoisson, Rate: 200, BatchMin: 1, BatchMax: 4}
	t.defaults()
	return t
}

// TestPoissonInterArrivalStatistics checks the generator against the two
// defining properties of a Poisson process: exponential inter-arrival times
// with mean 1/rate, and coefficient of variation 1 (variance == mean², the
// memoryless signature a fixed-interval or uniform generator would fail).
func TestPoissonInterArrivalStatistics(t *testing.T) {
	const horizon = 60 * int64(1e9)
	tn := poissonTenant()
	p := BuildPlan(11, []TenantSpec{tn}, horizon, 1)
	if len(p.Arrivals) < 1000 {
		t.Fatalf("only %d arrivals over %ds at rate %v", len(p.Arrivals), horizon/1e9, tn.Rate)
	}

	var gaps []float64
	prev := int64(0)
	for _, a := range p.Arrivals {
		gaps = append(gaps, float64(a.AtNS-prev)/1e9)
		prev = a.AtNS
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	wantMean := 1 / tn.Rate
	if math.Abs(mean-wantMean)/wantMean > 0.05 {
		t.Errorf("inter-arrival mean %.6fs, want %.6fs ± 5%%", mean, wantMean)
	}

	var sq float64
	for _, g := range gaps {
		sq += (g - mean) * (g - mean)
	}
	variance := sq / float64(len(gaps))
	cv := math.Sqrt(variance) / mean
	if math.Abs(cv-1) > 0.1 {
		t.Errorf("inter-arrival coefficient of variation %.3f, want 1 ± 0.1 (exponential)", cv)
	}
}

// TestBatchSizeUniform checks the batch draw covers [BatchMin, BatchMax]
// with roughly equal mass.
func TestBatchSizeUniform(t *testing.T) {
	tn := poissonTenant()
	p := BuildPlan(11, []TenantSpec{tn}, 60*int64(1e9), 1)
	counts := map[int]int{}
	for _, a := range p.Arrivals {
		if a.Batch < tn.BatchMin || a.Batch > tn.BatchMax {
			t.Fatalf("batch %d outside [%d,%d]", a.Batch, tn.BatchMin, tn.BatchMax)
		}
		counts[a.Batch]++
	}
	want := float64(len(p.Arrivals)) / float64(tn.BatchMax-tn.BatchMin+1)
	for b := tn.BatchMin; b <= tn.BatchMax; b++ {
		if got := float64(counts[b]); math.Abs(got-want)/want > 0.15 {
			t.Errorf("batch size %d drawn %v times, want ~%.0f ± 15%%", b, counts[b], want)
		}
	}
}

// TestOnOffDutyCycle checks the bursty process: the fraction of arrivals
// landing inside on-windows must track OnSec/(OnSec+OffSec), and the
// arrivals must actually be bursty — long silences (≫ the Poisson
// inter-arrival) must appear, which a plain Poisson process at the same
// average rate would essentially never produce.
func TestOnOffDutyCycle(t *testing.T) {
	const horizon = 120 * int64(1e9)
	tn := TenantSpec{Name: "b", Arrival: ArrivalOnOff, Rate: 400, OnSec: 0.05, OffSec: 0.15, BatchMin: 1, BatchMax: 1}
	tn.defaults()
	p := BuildPlan(13, []TenantSpec{tn}, horizon, 1)

	// Duty cycle via the offered total: E[arrivals] = rate · duty · horizon.
	duty := tn.OnSec / (tn.OnSec + tn.OffSec)
	want := tn.Rate * duty * float64(horizon) / 1e9
	got := float64(p.PerTenant[0].Batches)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("on-off offered %v batches, want ~%.0f ± 15%% (rate %v, duty %.2f)", got, want, tn.Rate, duty)
	}

	// Burstiness: count silences longer than 10× the in-burst mean gap.
	// Expect roughly one per on/off cycle; a Poisson process of the same
	// average rate would produce ~zero.
	meanGap := 1 / tn.Rate
	var silences int
	prev := int64(0)
	for _, a := range p.Arrivals {
		if float64(a.AtNS-prev)/1e9 > 10*meanGap {
			silences++
		}
		prev = a.AtNS
	}
	cycles := float64(horizon) / 1e9 / (tn.OnSec + tn.OffSec)
	if float64(silences) < 0.5*cycles {
		t.Errorf("only %d long silences over ~%.0f on/off cycles — arrivals are not bursty", silences, cycles)
	}
}

// TestIdenticalSeedIdenticalTrace is the determinism contract: the same
// (seed, config, horizon, multiplier) must reproduce the identical arrival
// trace — structurally and by hash — while any other seed must not.
func TestIdenticalSeedIdenticalTrace(t *testing.T) {
	tenants := DefaultScenario()
	for i := range tenants {
		tenants[i].defaults()
	}
	horizon := int64(5e9)
	a := BuildPlan(42, tenants, horizon, 1.5)
	b := BuildPlan(42, tenants, horizon, 1.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different plans")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("identical plans produced different hashes")
	}
	c := BuildPlan(43, tenants, horizon, 1.5)
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds produced the same trace hash")
	}
}

// TestMultiplierScalesOfferedLoad checks open-loop scaling: doubling the
// multiplier must roughly double every tenant's offered candidates.
func TestMultiplierScalesOfferedLoad(t *testing.T) {
	tn := poissonTenant()
	horizon := 60 * int64(1e9)
	one := BuildPlan(11, []TenantSpec{tn}, horizon, 1)
	two := BuildPlan(11, []TenantSpec{tn}, horizon, 2)
	ratio := float64(two.PerTenant[0].Candidates) / float64(one.PerTenant[0].Candidates)
	if math.Abs(ratio-2) > 0.15 {
		t.Errorf("2x multiplier scaled offered candidates by %.3f, want ~2", ratio)
	}
}

// TestPlanArrivalsSorted checks the k-way merge: arrivals must come out in
// nondecreasing time order with intact per-tenant candidate numbering.
func TestPlanArrivalsSorted(t *testing.T) {
	tenants := DefaultScenario()
	for i := range tenants {
		tenants[i].defaults()
	}
	p := BuildPlan(7, tenants, int64(10e9), 1)
	next := map[[2]int]int{} // (tenant, workload) -> expected First
	var prev int64
	for i, a := range p.Arrivals {
		if a.AtNS < prev {
			t.Fatalf("arrival %d at %dns before predecessor at %dns", i, a.AtNS, prev)
		}
		prev = a.AtNS
		k := [2]int{a.Tenant, a.Workload}
		if a.First != next[k] {
			t.Fatalf("arrival %d (tenant %d workload %d): First=%d, want %d", i, a.Tenant, a.Workload, a.First, next[k])
		}
		next[k] += a.Batch
	}
}

// TestMaterializeDeterministicAndValid materializes arrivals from both
// tenant styles and checks the products: step logs replay into valid
// schedules, pooled tenants stay inside their bounded candidate set, and
// materialization is itself deterministic.
func TestMaterializeDeterministicAndValid(t *testing.T) {
	tenants := DefaultScenario()
	for i := range tenants {
		tenants[i].defaults()
	}
	p := BuildPlan(3, tenants, int64(1e9), 1)
	if len(p.Arrivals) == 0 {
		t.Fatal("empty plan")
	}
	poolKeys := map[string]bool{}
	for _, a := range p.Arrivals[:min(len(p.Arrivals), 40)] {
		tn := &tenants[a.Tenant]
		req, err := materialize(tn, a)
		if err != nil {
			t.Fatal(err)
		}
		req2, err := materialize(tn, a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatal("materialize is not deterministic")
		}
		if len(req.Candidates) != a.Batch {
			t.Fatalf("materialized %d candidates for batch %d", len(req.Candidates), a.Batch)
		}
		factory, err := req.Workload.Factory()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range req.Candidates {
			if _, err := schedule.Replay(factory().Op, c.Steps); err != nil {
				t.Fatalf("tenant %s: unreplayable steps: %v", tn.Name, err)
			}
			if tn.Pool > 0 {
				poolKeys[stepsKey(c.Steps)] = true
			}
		}
	}
	if pool := tenants[0].Pool; len(poolKeys) > pool {
		t.Errorf("pooled tenant produced %d distinct candidates, want ≤ pool %d", len(poolKeys), pool)
	}
}

func stepsKey(steps []schedule.Step) string { return fmt.Sprintf("%+v", steps) }

// TestValidateRejectsBadConfigs spot-checks the validation gate that keeps
// the lint-rooted BuildPlan free of error formatting.
func TestValidateRejectsBadConfigs(t *testing.T) {
	base := func() Config {
		return Config{Seed: 1, Duration: time.Second, Tenants: DefaultScenario()}
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("default scenario must validate: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no tenants", func(c *Config) { c.Tenants = nil }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative step", func(c *Config) { c.Steps = []float64{-1} }},
		{"duplicate tenant", func(c *Config) { c.Tenants = append(c.Tenants, c.Tenants[0]) }},
		{"reserved name", func(c *Config) { c.Tenants[0].Name = "default" }},
		{"zero rate", func(c *Config) { c.Tenants[0].Rate = 0 }},
		{"bad arrival", func(c *Config) { c.Tenants[0].Arrival = "lognormal" }},
		{"bad arch", func(c *Config) { c.Tenants[0].Arch = "sparc" }},
		{"dim range on conv", func(c *Config) { c.Tenants[0].Workloads[0].DimLo, c.Tenants[0].Workloads[0].DimHi = 4, 8 }},
		{"inverted dims", func(c *Config) { c.Tenants[1].Workloads[0].DimLo, c.Tenants[1].Workloads[0].DimHi = 9, 3 }},
		{"unknown isolation tenant", func(c *Config) { c.Isolation = &IsolationSpec{Compliant: "batch", Aggressor: "ghost"} }},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad config", tc.name)
		}
	}
}

// TestParseTenants round-trips the CLI mix syntax.
func TestParseTenants(t *testing.T) {
	got, err := ParseTenants(
		"batch,weight=3,rate=40,batch=1-4,pool=32,workload=conv_group:tiny:1;" +
			"burst,arrival=onoff,rate=400,on=0.05,off=0.15,batch=4-6,workload=matmul:12-24")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d tenants, want 2", len(got))
	}
	b := got[0]
	if b.Name != "batch" || b.Weight != 3 || b.Rate != 40 || b.BatchMin != 1 || b.BatchMax != 4 || b.Pool != 32 {
		t.Errorf("batch tenant parsed wrong: %+v", b)
	}
	if len(b.Workloads) != 1 || b.Workloads[0].Spec.Kind != "conv_group" ||
		b.Workloads[0].Spec.Scale != string(te.ScaleTiny) || b.Workloads[0].Spec.Group != 1 {
		t.Errorf("batch workload parsed wrong: %+v", b.Workloads)
	}
	u := got[1]
	if u.Arrival != ArrivalOnOff || u.OnSec != 0.05 || u.OffSec != 0.15 {
		t.Errorf("burst arrival parsed wrong: %+v", u)
	}
	if len(u.Workloads) != 1 || u.Workloads[0].DimLo != 12 || u.Workloads[0].DimHi != 24 {
		t.Errorf("burst workload parsed wrong: %+v", u.Workloads)
	}

	for _, bad := range []string{
		"x,rate=abc",
		"x,unknownfield=1",
		"x,workload=fft:8",
		",rate=4",
		"x,batch=4-z",
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted a bad spec", bad)
		}
	}
}

// TestPaceIsOpenLoop drives pace with a fake clock and a recording
// dispatcher: every arrival must fire at (or after) its scheduled offset,
// and a dispatcher that lags must not delay later arrivals' scheduled times
// (offered load independent of service latency).
func TestPaceIsOpenLoop(t *testing.T) {
	arrivals := []Arrival{{AtNS: 10}, {AtNS: 20}, {AtNS: 30}, {AtNS: 40}}
	var now int64
	var fired []int64
	done := make(chan struct{})
	n := pace(done, arrivals,
		func() int64 { return now },
		func(ns int64) bool { now += ns; return true },
		func(a Arrival) { fired = append(fired, now) },
	)
	if n != len(arrivals) {
		t.Fatalf("paced %d arrivals, want %d", n, len(arrivals))
	}
	for i, at := range fired {
		if at != arrivals[i].AtNS {
			t.Errorf("arrival %d fired at %dns, want %dns", i, at, arrivals[i].AtNS)
		}
	}

	// Cancellation: a closed done channel stops the loop between arrivals.
	close(done)
	now = 0
	n = pace(done, arrivals, func() int64 { return 1000 }, func(int64) bool { return true }, func(Arrival) {})
	if n != 0 {
		t.Errorf("canceled pace dispatched %d arrivals, want 0", n)
	}
}
