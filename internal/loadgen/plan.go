package loadgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/num"
)

// Arrival is one scheduled batch: tenant index, offset from phase start, and
// everything needed to materialize the candidates later (the plan itself
// stays small and hashable; schedules are only built at dispatch time).
type Arrival struct {
	// Tenant indexes into the Config's tenant slice.
	Tenant int
	// AtNS is the offset from phase start, in nanoseconds.
	AtNS int64
	// Batch is the candidate count.
	Batch int
	// Workload indexes the tenant's workload mix.
	Workload int
	// First numbers this arrival's candidates within the tenant×workload
	// stream: candidate j of the batch is index First+j. Pooled tenants
	// reduce the index mod Pool (bounded key set); fresh tenants use it
	// raw (every candidate a new key).
	First int
	// Seed is a per-arrival RNG seed for materialization-time draws
	// (pool slot selection).
	Seed uint64
	// Dims are per-arrival matmul extents when the workload choice draws
	// dimensions (DimLo > 0); zero otherwise.
	Dims [3]int
}

// TenantOffered is one tenant's offered totals in a plan.
type TenantOffered struct {
	Batches    int
	Candidates int
}

// Plan is a fully materialized offered-load schedule for one phase: the
// deterministic output of BuildPlan, merged across tenants in time order.
type Plan struct {
	Arrivals  []Arrival
	PerTenant []TenantOffered
}

// fnv64 hashes a tenant name into its per-tenant seed perturbation, so each
// tenant's stream is independent and stable under reordering of the mix.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// expNS draws an exponential interval with the given mean rate (events per
// second), in nanoseconds, always at least 1ns so schedules advance.
func expNS(rng *num.RNG, ratePerSec float64) int64 {
	d := int64(-math.Log(1-rng.Float64()) / ratePerSec * 1e9)
	if d < 1 {
		return 1
	}
	return d
}

// BuildPlan computes the offered-load schedule for one phase: every tenant's
// arrival stream (Poisson or on-off at Rate×mult batches/sec over horizonNS)
// merged into one time-ordered slice. It is a pure function of its
// arguments — the hotpath lint proves no clock read, formatter, or JSON
// codec is reachable from here, which is what makes the offered load
// reproducible: the same seed yields the same trace regardless of host,
// wall-clock, or service latency. Tenants must already be validated
// (Config.Validate) and normalized.
func BuildPlan(seed uint64, tenants []TenantSpec, horizonNS int64, mult float64) Plan {
	streams := make([][]Arrival, len(tenants))
	offered := make([]TenantOffered, len(tenants))
	for ti := range tenants {
		t := &tenants[ti]
		rng := num.NewRNG(seed ^ fnv64(t.Name))
		rate := t.Rate * mult
		weights := make([]float64, len(t.Workloads))
		for i, w := range t.Workloads {
			weights[i] = w.Weight
		}
		next := make([]int, len(t.Workloads)) // next candidate index per workload stream

		var at int64
		// On-off state: Poisson tenants are always "on".
		on := true
		var windowEnd int64 = horizonNS
		if t.Arrival == ArrivalOnOff {
			windowEnd = expNS(rng, 1/t.OnSec)
		}
		for {
			at += expNS(rng, rate)
			// Skip off-windows: the arrival clock only runs while on.
			for t.Arrival == ArrivalOnOff && at >= windowEnd {
				over := at - windowEnd
				if on {
					windowEnd += expNS(rng, 1/t.OffSec)
				} else {
					windowEnd += expNS(rng, 1/t.OnSec)
				}
				on = !on
				if !on {
					at = windowEnd + over // shift the residual into the next window
				}
			}
			if at >= horizonNS {
				break
			}
			batch := t.BatchMin + rng.Intn(t.BatchMax-t.BatchMin+1)
			wi := 0
			if len(weights) > 1 {
				wi = rng.Choice(weights)
			}
			a := Arrival{
				Tenant:   ti,
				AtNS:     at,
				Batch:    batch,
				Workload: wi,
				First:    next[wi],
				Seed:     rng.Uint64(),
			}
			next[wi] += batch
			if wc := t.Workloads[wi]; wc.DimLo > 0 {
				span := wc.DimHi - wc.DimLo + 1
				a.Dims = [3]int{
					wc.DimLo + rng.Intn(span),
					wc.DimLo + rng.Intn(span),
					wc.DimLo + rng.Intn(span),
				}
			}
			streams[ti] = append(streams[ti], a)
			offered[ti].Batches++
			offered[ti].Candidates += batch
		}
	}

	// k-way merge by (AtNS, tenant index). Manual rather than sort.Slice so
	// the whole builder stays inside the hotpath lint's provable call graph.
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	merged := make([]Arrival, 0, total)
	heads := make([]int, len(streams))
	for len(merged) < total {
		best := -1
		for ti, s := range streams {
			if heads[ti] >= len(s) {
				continue
			}
			if best < 0 || s[heads[ti]].AtNS < streams[best][heads[best]].AtNS {
				best = ti
			}
		}
		merged = append(merged, streams[best][heads[best]])
		heads[best]++
	}
	return Plan{Arrivals: merged, PerTenant: offered}
}

// Hash is the deterministic witness of the offered-load trace: a sha256 over
// the binary encoding of every arrival. Two runs with the same seed and
// config produce the same hash on any host.
func (p Plan) Hash() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(len(p.Arrivals)))
	for _, a := range p.Arrivals {
		put(int64(a.Tenant))
		put(a.AtNS)
		put(int64(a.Batch))
		put(int64(a.Workload))
		put(int64(a.First))
		put(int64(a.Seed))
		put(int64(a.Dims[0]))
		put(int64(a.Dims[1]))
		put(int64(a.Dims[2]))
	}
	return hex.EncodeToString(h.Sum(nil))
}
