package lower

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/schedule"
	"repro/internal/te"
	"repro/internal/tensor"
)

// maxUnroll caps full unrolling, like a real compiler's unroll budget: loops
// longer than this fall back to normal loops.
const maxUnroll = 64

// operandRegCap bounds how many distinct operand registers the unroll
// estimate charges (compilers re-use operand registers beyond this).
const operandRegCap = 8

// Build lowers a validated schedule to an executable Program for the ISA.
// It returns an error for schedules the code generator cannot realize
// (e.g. vectorized reduction loops), which tuners treat as failed builds.
func Build(s *schedule.Schedule, model isa.Model) (*Program, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("lower: invalid schedule: %w", err)
	}
	op := s.Op
	p := &Program{Model: model, Op: op, Sched: s}

	// --- Levels from schedule leaves. ---
	last := len(s.Leaves) - 1
	for i, iv := range s.Leaves {
		lv := &level{IV: iv, Extent: iv.Extent, Reduce: iv.Kind() == te.Reduce, Lanes: 1}
		switch iv.Ann {
		case schedule.AnnUnroll:
			if iv.Extent <= maxUnroll {
				lv.Unrolled = true
			}
		case schedule.AnnVectorize:
			if iv.Kind() == te.Reduce {
				return nil, fmt.Errorf("lower: vectorized reduction loop %s is not supported", iv.Name)
			}
			if i != last {
				return nil, fmt.Errorf("lower: vectorized loop %s is not innermost", iv.Name)
			}
			if model.Lanes > 1 {
				lv.Vector = true
				lv.Lanes = model.Lanes
			} // lanes==1 (RISC-V U74): degrade to a plain loop
		}
		p.levels = append(p.levels, lv)
	}

	// --- Reduce subtree and register tile. ---
	p.reduceStart = len(p.levels)
	for i, lv := range p.levels {
		if lv.Reduce {
			p.reduceStart = i
			break
		}
	}
	p.tileStride = map[int]int{}
	p.tileCount = 1
	for i := len(p.levels) - 1; i > p.reduceStart; i-- {
		if !p.levels[i].Reduce {
			p.tileLevels = append([]int{i}, p.tileLevels...)
			p.tileStride[i] = p.tileCount
			p.tileCount *= p.levels[i].Extent
		}
	}
	p.tileStrideList = make([]int, len(p.tileLevels))
	for k, li := range p.tileLevels {
		p.tileStrideList[k] = p.tileStride[li]
	}

	// --- Axis reconstruction affines and split-tail guards. ---
	p.numAxes = len(op.AllAxes())
	p.axisTerms = make([][]coefTerm, p.numAxes)
	deepest := make([]int, p.numAxes)
	maxVal := make([]int, p.numAxes)
	for i := range deepest {
		deepest[i] = -1
	}
	for li, lv := range p.levels {
		ax := lv.IV.Src
		p.axisTerms[ax.ID] = append(p.axisTerms[ax.ID], coefTerm{Level: li, Coef: lv.IV.Weight})
		if li > deepest[ax.ID] {
			deepest[ax.ID] = li
		}
		maxVal[ax.ID] += (lv.Extent - 1) * lv.IV.Weight
	}
	for _, ax := range op.AllAxes() {
		if maxVal[ax.ID] >= ax.Extent {
			g := axisGuard{Axis: ax, Extent: ax.Extent,
				Value: levelAffine{Terms: p.axisTerms[ax.ID]}}
			d := deepest[ax.ID]
			p.levels[d].Guards = append(p.levels[d].Guards, g)
		}
	}

	// --- Access sites. ---
	for _, acc := range te.Accesses(op.ReduceBody) {
		site := p.resolveAccess(acc)
		switch {
		case site.HoistLevel == len(p.levels)-1:
			p.bodyLoads = append(p.bodyLoads, site)
		case site.HoistLevel < 0:
			p.preheader = append(p.preheader, site)
		default:
			p.levels[site.HoistLevel].Hoisted = append(p.levels[site.HoistLevel].Hoisted, site)
		}
	}
	p.bodyFLOPs = te.CountFLOPs(op.ReduceBody)
	if p.bodyFLOPs == 0 {
		p.bodyFLOPs = 1 // pure copy still costs the accumulate slot
	}
	if op.Epilogue != nil {
		for _, acc := range te.Accesses(op.Epilogue) {
			p.epiLoads = append(p.epiLoads, p.resolveAccess(acc))
		}
		p.epiFLOPs = te.CountFLOPs(op.Epilogue)
	}

	// --- Inner-loop strength-reduction strides. ---
	if nl := len(p.levels); nl > 0 {
		d := nl - 1
		for _, g := range p.levels[d].Guards {
			p.innerGuardStep = append(p.innerGuardStep, g.Value.coefOf(d))
		}
		dimOff := 0
		for _, site := range p.bodyLoads {
			p.innerElemStep = append(p.innerElemStep, site.Elem.coefOf(d))
			p.innerDimOff = append(p.innerDimOff, dimOff)
			ds := make([]int, len(site.Dims))
			for k := range site.Dims {
				ds[k] = site.Dims[k].coefOf(d)
			}
			p.innerDimStep = append(p.innerDimStep, ds)
			if site.CanOOB {
				dimOff += len(site.Dims)
			}
		}
		p.innerDimOff = append(p.innerDimOff, dimOff)
		p.innerTileStep = p.tileStride[d]
		if nl >= 2 {
			dp := nl - 2
			for _, g := range p.levels[d].Guards {
				p.parentGuardStep = append(p.parentGuardStep, g.Value.coefOf(dp))
			}
			for _, site := range p.bodyLoads {
				p.parentElemStep = append(p.parentElemStep, site.Elem.coefOf(dp))
				if site.CanOOB {
					for k := range site.Dims {
						p.parentDimStep = append(p.parentDimStep, site.Dims[k].coefOf(dp))
					}
				}
			}
			p.parentTileStep = p.tileStride[dp]
		}
		if nl >= 3 {
			dg := nl - 3
			for _, g := range p.levels[d].Guards {
				p.grandGuardStep = append(p.grandGuardStep, g.Value.coefOf(dg))
			}
			for _, site := range p.bodyLoads {
				p.grandElemStep = append(p.grandElemStep, site.Elem.coefOf(dg))
				if site.CanOOB {
					for k := range site.Dims {
						p.grandDimStep = append(p.grandDimStep, site.Dims[k].coefOf(dg))
					}
				}
			}
			p.grandTileStep = p.tileStride[dg]
		}
	}
	for _, lv := range p.levels {
		if len(lv.Guards) > p.maxGuards {
			p.maxGuards = len(lv.Guards)
		}
	}

	// --- Store site. ---
	p.store = storeSite{
		Tensor: op.Out,
		Dims:   p.resolveDims(op.OutIndex),
	}
	p.store.Elem = flattenDims(p.store.Dims, op.Out.Stride)

	// --- Register allocation and spill model. ---
	innermost := p.levels[len(p.levels)-1]
	vecTile := innermost.Vector && len(p.tileLevels) > 0 &&
		p.tileLevels[len(p.tileLevels)-1] == len(p.levels)-1
	p.accRegs = p.tileCount
	if vecTile {
		p.accRegs = (p.tileCount + innermost.Lanes - 1) / innermost.Lanes
	}
	if p.accRegs == 0 {
		p.accRegs = 1
	}
	unrollCopies := 1
	for _, lv := range p.levels {
		if lv.Unrolled {
			unrollCopies *= lv.Extent
		}
	}
	if unrollCopies > operandRegCap {
		unrollCopies = operandRegCap
	}
	operandRegs := len(p.bodyLoads) * unrollCopies
	demand := p.accRegs + operandRegs + 4
	if demand > model.FPRegs {
		p.spillRegs = demand - model.FPRegs
		if p.spillRegs > p.accRegs {
			p.spillRegs = p.accRegs
		}
	}
	p.spillFrom = p.accRegs - p.spillRegs
	p.vecTile = vecTile

	// --- Memory layout: tensors, spill stack, code. ---
	as := op.PlaceTensors()
	stackBytes := uint64(p.tileCount) * tensor.ElemSize
	if stackBytes < 64 {
		stackBytes = 64
	}
	p.stackBase = as.Reserve(stackBytes)
	p.layoutCode()
	p.codeBase = as.Reserve(p.codeSize)
	return p, nil
}

// resolveAccess lowers a TE access to loop levels: per-dimension affines,
// the flattened element offset, the padding-guard flag, and the hoist level.
func (p *Program) resolveAccess(acc *te.Access) *accessSite {
	site := &accessSite{Tensor: acc.Tensor, HoistLevel: -1}
	site.Dims = p.resolveDims(acc.Index)
	for d, aff := range acc.Index {
		lo, hi := dimRangeFromAxes(aff)
		if lo < 0 || hi >= acc.Tensor.Shape[d] {
			site.CanOOB = true
		}
	}
	site.Elem = flattenDims(site.Dims, acc.Tensor.Stride)
	for _, t := range site.Elem.Terms {
		if t.Coef != 0 && t.Level > site.HoistLevel {
			site.HoistLevel = t.Level
		}
	}
	return site
}

// resolveDims maps axis-affine indices onto loop-level affines.
func (p *Program) resolveDims(index []te.Affine) []levelAffine {
	dims := make([]levelAffine, len(index))
	for d, aff := range index {
		la := levelAffine{Const: aff.Const}
		for _, t := range aff.Terms {
			for _, lt := range p.axisTerms[t.Axis.ID] {
				la.Terms = append(la.Terms, coefTerm{Level: lt.Level, Coef: t.Coef * lt.Coef})
			}
		}
		dims[d] = mergeTerms(la)
	}
	return dims
}

// flattenDims combines per-dimension affines into one element-offset affine
// using the tensor's element strides.
func flattenDims(dims []levelAffine, strides []int) levelAffine {
	el := levelAffine{}
	for d, la := range dims {
		el.Const += strides[d] * la.Const
		for _, t := range la.Terms {
			el.Terms = append(el.Terms, coefTerm{Level: t.Level, Coef: strides[d] * t.Coef})
		}
	}
	return mergeTerms(el)
}

// dimRangeFromAxes bounds one access-dimension index using post-guard axis
// values (0..extent-1) plus the affine constant; padding constants can still
// push the index outside the tensor.
func dimRangeFromAxes(aff te.Affine) (lo, hi int) {
	lo, hi = aff.Const, aff.Const
	for _, term := range aff.Terms {
		span := term.Coef * (term.Axis.Extent - 1)
		if span < 0 {
			lo += span
		} else {
			hi += span
		}
	}
	return lo, hi
}

// mergeTerms combines duplicate levels and drops zero coefficients,
// producing a deterministic ascending-level term order.
func mergeTerms(a levelAffine) levelAffine {
	byLevel := map[int]int{}
	for _, t := range a.Terms {
		byLevel[t.Level] += t.Coef
	}
	levels := make([]int, 0, len(byLevel))
	for lvl, c := range byLevel {
		if c != 0 {
			levels = append(levels, lvl)
		}
	}
	sort.Ints(levels)
	out := levelAffine{Const: a.Const}
	for _, lvl := range levels {
		out.Terms = append(out.Terms, coefTerm{Level: lvl, Coef: byLevel[lvl]})
	}
	return out
}

// layoutCode computes static code sizes and block offsets for I-fetch PCs.
//
// Model: each loop level owns a code block inside its parent's iteration
// block. Non-unrolled loops re-execute one iteration block; unrolled loops
// lay out Extent copies back to back. The init and store blocks of the
// reduction live immediately before/after the outermost reduce level's
// block. Sizes are upper bounds over every emission path of the executor
// (guarded loads, spill reloads, vector bodies plus their scalar-remainder
// loops, nested store-loop overhead), so PCs never leave the code segment.
func (p *Program) layoutCode() {
	ib := uint64(p.Model.InstBytes)
	nl := len(p.levels)
	p.initSize = uint64(p.accRegs) * ib

	// loadInsts bounds the instructions of scalar loads (guard + branch for
	// OOB-able sites).
	loadInsts := func(sites []*accessSite) int {
		n := 0
		for _, s := range sites {
			n++
			if s.CanOOB {
				n += 2
			}
		}
		return n
	}
	spillBody := 0
	if p.spillRegs > 0 {
		spillBody = 2
	}
	// One store-phase point: epilogue loads, spill reload, epilogue flops,
	// the store itself.
	storePoint := loadInsts(p.epiLoads) + p.epiFLOPs + 1
	if p.spillRegs > 0 {
		storePoint++
	}
	// Store loop: per-point code plus loop overhead of every tile level and
	// re-checked guards.
	storeInsts := 2*len(storeGuards(p)) + storePoint + 2*(len(p.tileLevels)+1)
	p.storeBodySize = uint64(storeInsts) * ib

	// Innermost body: scalar path (+ inline store when there is no
	// reduction); vectorized loops additionally carry the SIMD path and a
	// scalar remainder loop, like real codegen.
	scalarBody := loadInsts(p.bodyLoads) + p.bodyFLOPs + spillBody
	if p.reduceStart == nl {
		scalarBody += storePoint
	}
	bodyInsts := scalarBody
	if inner := p.levels[nl-1]; inner.Vector {
		vecPath := 0
		for _, site := range p.bodyLoads {
			switch {
			case site.CanOOB:
				vecPath += 3 + 3*inner.Lanes + 1
			case site.Elem.coefOf(nl-1) == 1:
				vecPath++
			default:
				vecPath += inner.Lanes + 1
			}
		}
		vecPath += p.bodyFLOPs + spillBody
		if p.reduceStart == nl {
			vecPath += inner.Lanes * storePoint
		}
		bodyInsts = scalarBody*inner.Lanes + vecPath
	}

	pre := make([]uint64, nl)
	var childBlock uint64
	for d := nl - 1; d >= 0; d-- {
		lv := p.levels[d]
		pre[d] = uint64(2*len(lv.Guards)+loadInsts(lv.Hoisted)) * ib
		var body uint64
		if d == nl-1 {
			body = uint64(bodyInsts) * ib
		} else {
			body = childBlock
			if d+1 == p.reduceStart {
				body += p.initSize + p.storeBodySize
			}
		}
		overhead := uint64(0)
		if !lv.Unrolled {
			overhead = 2 * ib
		}
		lv.PerIterSize = pre[d] + body + overhead
		copies := uint64(1)
		if lv.Unrolled {
			copies = uint64(lv.Extent)
		}
		childBlock = lv.PerIterSize * copies
	}
	// Block offsets within the parent iteration block.
	p.preheaderSize = uint64(8+loadInsts(p.preheader)) * ib
	for d := 0; d < nl; d++ {
		if d == 0 {
			off := p.preheaderSize
			if p.reduceStart == 0 {
				off += p.initSize
			}
			p.levels[d].BlockOff = off
			continue
		}
		off := pre[d-1]
		if d == p.reduceStart {
			off += p.initSize
		}
		p.levels[d].BlockOff = off
	}
	p.codeSize = p.preheaderSize + childBlock
	if p.reduceStart == 0 {
		p.codeSize += p.initSize + p.storeBodySize
	}
	if p.codeSize < 64 {
		p.codeSize = 64
	}
}

// storeGuards returns the axis guards that must be re-checked inside the
// store loop (guards whose deepest level lies in the register tile).
func storeGuards(p *Program) []axisGuard {
	var out []axisGuard
	for _, li := range p.tileLevels {
		out = append(out, p.levels[li].Guards...)
	}
	return out
}
