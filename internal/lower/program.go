package lower

import (
	"repro/internal/isa"
	"repro/internal/schedule"
	"repro/internal/te"
	"repro/internal/tensor"
)

// coefTerm is one sparse affine term coef·vals[Level] over loop levels.
type coefTerm struct {
	Level int
	Coef  int
}

// levelAffine is a sparse affine expression over loop-level values.
type levelAffine struct {
	Terms []coefTerm
	Const int
}

func (a levelAffine) eval(vals []int) int {
	v := a.Const
	for _, t := range a.Terms {
		v += t.Coef * vals[t.Level]
	}
	return v
}

// coefOf returns the coefficient of the given level (0 if absent).
func (a levelAffine) coefOf(level int) int {
	c := 0
	for _, t := range a.Terms {
		if t.Level == level {
			c += t.Coef
		}
	}
	return c
}

// axisGuard is a split-tail bounds check: the reconstructed axis value must
// stay below Extent. It is checked at the deepest loop level of the axis.
type axisGuard struct {
	Axis   *te.Axis
	Extent int
	Value  levelAffine
}

// accessSite is one tensor access of the kernel, resolved to loop levels.
type accessSite struct {
	Tensor *tensor.Tensor
	// Dims are per-tensor-dimension index affines (needed for padding
	// guards and value computation).
	Dims []levelAffine
	// Elem is the flattened element-offset affine (Σ stride·dim).
	Elem levelAffine
	// CanOOB is true when some in-domain iteration indexes outside the
	// tensor (conv padding); such loads are guarded and read 0.
	CanOOB bool
	// HoistLevel is the deepest loop level the access depends on; the load
	// is emitted once per iteration of that level. -1 = program preheader.
	HoistLevel int
}

// storeSite describes the output write.
type storeSite struct {
	Tensor *tensor.Tensor
	Dims   []levelAffine
	Elem   levelAffine
}

// level is one compiled loop.
type level struct {
	IV     *schedule.IterVar
	Extent int
	// Unrolled loops replicate code instead of branching.
	Unrolled bool
	// Vector is set on the innermost SIMD loop.
	Vector bool
	// Lanes is the SIMD width of this loop (1 for scalar loops).
	Lanes int
	// Reduce reports whether the underlying axis is a reduction axis.
	Reduce bool
	// Guards checked at the start of each iteration of this level.
	Guards []axisGuard
	// Hoisted loads emitted once per iteration of this level (after guards).
	Hoisted []*accessSite

	// BlockOff is the code offset of this level's block within the parent
	// iteration block; PerIterSize is one iteration's code size (unrolled
	// copies each occupy PerIterSize bytes).
	BlockOff    uint64
	PerIterSize uint64
}

// Program is an executable lowered kernel for one ISA.
type Program struct {
	Model isa.Model
	Op    *te.ComputeOp
	Sched *schedule.Schedule

	levels []*level
	// reduceStart is the index of the outermost reduce level
	// (len(levels) if the kernel has no reduction axes).
	reduceStart int
	// tileLevels are the spatial levels inside the reduction subtree; their
	// cross product is the register tile of accumulators.
	tileLevels []int
	tileCount  int
	// tileStride maps a tile level to its stride in accumulator indexing;
	// tileStrideList holds the same strides parallel to tileLevels for the
	// executor's hot path.
	tileStride     map[int]int
	tileStrideList []int
	// vecTile is true when the innermost level is a vectorized member of the
	// register tile (accumulators become vector registers).
	vecTile bool

	// body describes the innermost reduction body.
	bodyLoads []*accessSite
	bodyFLOPs int

	// epilogue data (store phase).
	epiLoads []*accessSite
	epiFLOPs int
	store    storeSite

	// Register/spill model.
	accRegs   int // accumulator registers required (vector-adjusted)
	spillRegs int // accumulators beyond the register file, spilled to stack
	spillFrom int // register index at which spilling starts
	stackBase uint64

	// Code layout.
	codeBase      uint64
	codeSize      uint64
	preheaderSize uint64
	initSize      uint64
	storeBodySize uint64
	preheader     []*accessSite // loads invariant to all loops

	// axisTerms give, per compute axis ID, the (level, weight) pairs that
	// reconstruct the axis value from loop-level values.
	axisTerms [][]coefTerm
	numAxes   int

	// Strength-reduction strides of the innermost level: per-iteration
	// deltas of the inner guards' affines, each body load's element offset
	// and tensor-dimension indices, and the tile index. The executor's fast
	// inner loop advances these instead of re-evaluating affines per point.
	innerGuardStep []int
	innerElemStep  []int
	innerDimStep   [][]int
	// innerDimOff is the start of each body load's dims in the executor's
	// flattened dim-base scratch; the last entry is the total dim count.
	innerDimOff   []int
	innerTileStep int
	// The same strides w.r.t. the parent of the innermost level: the
	// executor hoists the inner loop's affine bases out of the parent loop
	// and advances them by these deltas per parent iteration.
	parentGuardStep []int
	parentElemStep  []int
	parentDimStep   []int // flattened like innerDimOff
	parentTileStep  int
	// And w.r.t. the grandparent of the innermost level, for the 3D
	// nest-box aggregation (bases hoisted out of the grandparent loop,
	// advanced per plane).
	grandGuardStep []int
	grandElemStep  []int
	grandDimStep   []int // flattened like innerDimOff
	grandTileStep  int
	// maxGuards is the largest per-level guard count (scratch sizing).
	maxGuards int
}

// CodeBytes reports the static code footprint of the generated kernel, the
// quantity that pressures the L1I cache.
func (p *Program) CodeBytes() uint64 { return p.codeSize }

// SpillRegisters reports how many accumulator registers the register
// allocator had to spill to the stack.
func (p *Program) SpillRegisters() int { return p.spillRegs }

// TileCount reports the register-tile accumulator count (scalar elements).
func (p *Program) TileCount() int { return p.tileCount }

// StaticInstrEstimate returns a closed-form estimate of the dynamic
// instruction count without executing the program. The Eq. (4) speedup
// analysis uses it to extrapolate paper-scale instruction counts cheaply.
func (p *Program) StaticInstrEstimate() int64 {
	iters := int64(1)
	var total int64
	perLevelIters := make([]int64, len(p.levels))
	for d, lv := range p.levels {
		n := int64(lv.Extent)
		if lv.Vector && lv.Lanes > 1 {
			n = int64((lv.Extent + lv.Lanes - 1) / lv.Lanes)
		}
		iters *= n
		perLevelIters[d] = iters
		perIter := int64(len(lv.Guards))*2 + int64(len(lv.Hoisted))
		if !lv.Unrolled {
			perIter += 2 // loop add+branch
		}
		total += perLevelIters[d] * perIter
	}
	if len(p.levels) > 0 {
		inner := perLevelIters[len(p.levels)-1]
		perBody := int64(len(p.bodyLoads) + p.bodyFLOPs)
		if p.spillRegs > 0 && p.accRegs > 0 {
			perBody += 2 * int64(p.spillRegs) / int64(p.accRegs)
		}
		total += inner * perBody
	}
	// Store phase: one store per output point plus epilogue.
	outs := int64(p.Op.SpatialSize())
	total += outs * int64(1+p.epiFLOPs+len(p.epiLoads)+2)
	return total
}
