package lower

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/num"
	"repro/internal/schedule"
	"repro/internal/te"
)

// The no-reduction lowering path: elementwise kernels store directly from
// the innermost body.

func TestReluLowersAndMatchesReference(t *testing.T) {
	for _, arch := range isa.Archs() {
		wl := te.Relu(37) // odd size: vector tail on x86/arm
		fillInputs(wl.Op, 5)
		s := schedule.New(wl.Op)
		_ = s.Vectorize(s.Leaves[0])
		sink := runAndCompare(t, wl, s, isa.Lookup(arch))
		if sink.Stores != 37 {
			t.Fatalf("%s: stores = %d want 37", arch, sink.Stores)
		}
	}
}

func TestAddTensorsTiledMatchesReference(t *testing.T) {
	wl := te.AddTensors(40)
	s := schedule.New(wl.Op)
	_, inner, err := s.Split(s.Leaves[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Unroll(inner)
	runAndCompare(t, wl, s, isa.Lookup(isa.RISCV))
}

func TestMaxPoolLowersAndMatchesReference(t *testing.T) {
	wl := te.MaxPool2d(1, 2, 8, 8, 2, 2)
	s := schedule.New(wl.Op)
	runAndCompare(t, wl, s, isa.Lookup(isa.ARM))
}

func TestMaxPoolRandomSchedulesMatchReference(t *testing.T) {
	rng := num.NewRNG(31)
	for trial := 0; trial < 8; trial++ {
		wl := te.MaxPool2d(1, 2, 6, 6, 3, 1)
		s := randomSchedule(rng, wl.Op)
		runAndCompare(t, wl, s, isa.Lookup(isa.X86))
	}
}

func TestElementwiseInstructionShape(t *testing.T) {
	// relu(n): per element one guarded-free load, one FMA-class max, one
	// store, plus loop overhead — no reduction init/store blocks.
	wl := te.Relu(64)
	p, err := Build(schedule.New(wl.Op), isa.Lookup(isa.RISCV))
	if err != nil {
		t.Fatal(err)
	}
	if p.TileCount() != 1 {
		t.Fatalf("elementwise tile = %d", p.TileCount())
	}
	sink := &CountingSink{}
	Execute(p, sink, false)
	if sink.Loads != 64 || sink.Stores != 64 {
		t.Fatalf("loads/stores = %d/%d want 64/64", sink.Loads, sink.Stores)
	}
}

func TestNoReduceVectorizedStoresScalar(t *testing.T) {
	// The current code generator emits scalar stores in the no-reduce
	// vector path (documented simplification); totals must stay exact.
	wl := te.Relu(32)
	s := schedule.New(wl.Op)
	_ = s.Vectorize(s.Leaves[0])
	p, err := Build(s, isa.Lookup(isa.X86))
	if err != nil {
		t.Fatal(err)
	}
	sink := &CountingSink{}
	Execute(p, sink, true)
	if sink.Stores != 32 {
		t.Fatalf("stores = %d want 32", sink.Stores)
	}
	if sink.ByClass[isa.VLoad] == 0 {
		t.Fatal("vector loads expected")
	}
}

func TestMaxPoolSpilledTileStillCorrect(t *testing.T) {
	// Force a large register tile on a max-reduction kernel.
	wl := te.MaxPool2d(1, 1, 8, 8, 2, 2)
	s := schedule.New(wl.Op)
	leaves := s.Leaves
	// Order: kh, kw (reduce) outermost, all spatial inside.
	order := []*schedule.IterVar{leaves[4], leaves[5], leaves[0], leaves[1], leaves[2], leaves[3]}
	if err := s.Reorder(order); err != nil {
		t.Fatal(err)
	}
	fillInputs(wl.Op, 77)
	p, err := Build(s, isa.Lookup(isa.X86))
	if err != nil {
		t.Fatal(err)
	}
	Execute(p, &CountingSink{}, true)
	got := append([]float32(nil), wl.Op.Out.Data...)
	wl.Op.ReferenceEval()
	for i := range got {
		if math.Abs(float64(got[i]-wl.Op.Out.Data[i])) > 1e-4 {
			t.Fatalf("pool[%d] = %v want %v", i, got[i], wl.Op.Out.Data[i])
		}
	}
}
