// Package lower compiles a scheduled tensor kernel into an executable
// loop-nest Program for one target ISA — the analogue of TVM's lowering plus
// LLVM code generation in the paper's flow. Executing a Program produces the
// instruction/memory event stream that both back-ends consume:
//
//   - the instruction-accurate simulator (internal/sim), which counts
//     instruction classes and drives the Table I cache hierarchy and plays
//     the role of gem5 in atomic mode, and
//   - the timing model (internal/hw), which additionally accumulates cycles
//     and plays the role of the real target hardware.
//
// The lowering reproduces the mechanisms that make different schedules of
// one kernel behave differently on hardware: loop tiling changes locality,
// unrolling removes branch overhead but grows the code footprint (L1I),
// vectorization turns contiguous scalar loads/FMAs into SIMD ones, invariant
// loads are hoisted out of inner loops, register-tile accumulators that
// exceed the architectural register file spill to the stack, and split tails
// or padding emit guard instructions.
package lower

import "repro/internal/isa"

// Event flags.
const (
	// FlagLoopExit marks the final (fall-through) branch of a loop, the
	// natural branch-misprediction point of counted loops.
	FlagLoopExit uint8 = 1 << iota
	// FlagGuard marks a guard-check branch (split tails, padding).
	FlagGuard
)

// Event is one executed instruction. Every instruction (including ALU and
// branch) is an event; loads/stores additionally carry a data address.
type Event struct {
	// PC is the instruction address (drives L1I behaviour).
	PC uint64
	// Addr is the data address for loads/stores (0 otherwise).
	Addr uint64
	// Size is the data-access width in bytes (0 for non-memory ops).
	Size uint16
	// Class is the instruction class.
	Class isa.Class
	// Flags carries branch metadata.
	Flags uint8
}

// Sink consumes batches of events. Batches are only valid during the call;
// implementations must not retain the slice.
type Sink interface {
	Consume(events []Event)
}

// Fanout duplicates an event stream to several sinks, letting one program
// execution feed the instruction-accurate simulator and the timing model
// simultaneously (they model the same binary running on different machines).
type Fanout []Sink

// Consume forwards the batch to every sink.
func (f Fanout) Consume(events []Event) {
	for _, s := range f {
		s.Consume(events)
	}
}

// CountingSink tallies events by class; used in tests and quick estimates.
type CountingSink struct {
	ByClass [isa.NumClasses]uint64
	Total   uint64
	Loads   uint64
	Stores  uint64
}

// Consume implements Sink.
func (c *CountingSink) Consume(events []Event) {
	for i := range events {
		e := &events[i]
		c.ByClass[e.Class]++
		c.Total++
		if e.Class.IsLoad() {
			c.Loads++
		}
		if e.Class.IsStore() {
			c.Stores++
		}
	}
}

// batchSize is the executor's event-buffer length.
const batchSize = 4096

// emitter buffers events and flushes them to a sink in batches.
type emitter struct {
	sink Sink
	buf  []Event
}

func newEmitter(sink Sink) *emitter {
	return &emitter{sink: sink, buf: make([]Event, 0, batchSize)}
}

func (e *emitter) emit(ev Event) {
	e.buf = append(e.buf, ev)
	if len(e.buf) == batchSize {
		e.flush()
	}
}

func (e *emitter) flush() {
	if len(e.buf) > 0 {
		e.sink.Consume(e.buf)
		e.buf = e.buf[:0]
	}
}
