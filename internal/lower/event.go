// Package lower compiles a scheduled tensor kernel into an executable
// loop-nest Program for one target ISA — the analogue of TVM's lowering plus
// LLVM code generation in the paper's flow. Executing a Program produces the
// instruction/memory event stream that both back-ends consume:
//
//   - the instruction-accurate simulator (internal/sim), which counts
//     instruction classes and drives the Table I cache hierarchy and plays
//     the role of gem5 in atomic mode, and
//   - the timing model (internal/hw), which additionally accumulates cycles
//     and plays the role of the real target hardware.
//
// The lowering reproduces the mechanisms that make different schedules of
// one kernel behave differently on hardware: loop tiling changes locality,
// unrolling removes branch overhead but grows the code footprint (L1I),
// vectorization turns contiguous scalar loads/FMAs into SIMD ones, invariant
// loads are hoisted out of inner loops, register-tile accumulators that
// exceed the architectural register file spill to the stack, and split tails
// or padding emit guard instructions.
//
// # Event protocol
//
// The executor→sink protocol is block-aggregated: instead of materializing
// one event per executed instruction, Execute streams only the events that
// carry per-event state, and delivers everything else as arithmetic
// aggregates. A Sink receives three channels:
//
//   - Consume(events): the ordered event stream. It contains EvData events
//     (one per load/store, with the data address and width) and EvFetch
//     events (one per instruction-fetch line crossing, emitted exactly where
//     a per-instruction walk would have fetched a new L1I line). Order is
//     significant — data accesses and fetch misses share the L2 — and is
//     bit-identical to the per-instruction stream's cache access order.
//   - ConsumeLoop(run): a uniform loop span — Planes × Rows × Count
//     iterations whose guard outcomes, padding checks and spill status the
//     executor has proven constant — shipped as one message of strided
//     access sites. Plain inner-loop spans have Rows = Planes = 1; a
//     uniform parent×inner nest rectangle raises Rows, and a uniform
//     grandparent×parent×inner nest box raises Planes, so whole 3D loop
//     nests arrive as a single protocol event. The sink replays the
//     accesses in interleaved iteration order, which is exactly the order
//     the span's per-event stream would have had. ConsumeLoop calls are
//     ordered relative to Consume batches.
//   - ConsumeCounts(counts): bulk per-class instruction counts plus flagged-
//     branch tallies (loop exits, guard branches) aggregated over the whole
//     execution. These quantities are order-independent: they feed pure
//     counters (sim) or end-of-run arithmetic (hw issue cycles, mispredict
//     penalties), so aggregating them loses no information.
//
// Uniform non-memory instruction bursts (the bodyFLOPs FMA runs, accumulator
// init blocks, preheader ALU padding) are folded by the executor into single
// count updates with fetch line crossings computed from the PC span in
// O(lines) instead of O(instructions).
//
// ExecutePerInstruction emits the legacy encoding — one EvInstr event per
// executed instruction, with sinks modelling the I-fetch themselves and no
// ConsumeCounts call. Both encodings produce bit-identical statistics (see
// TestBlockAggregationBitIdentical); the aggregated one is several times
// faster and is what every production path uses.
package lower

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// Event flags.
const (
	// FlagLoopExit marks the final (fall-through) branch of a loop, the
	// natural branch-misprediction point of counted loops.
	FlagLoopExit uint8 = 1 << iota
	// FlagGuard marks a guard-check branch (split tails, padding).
	FlagGuard
)

// Kind discriminates the event stream entries of the protocol.
type Kind uint8

const (
	// EvInstr is one executed instruction in the legacy per-instruction
	// encoding: sinks count its class, model its fetch at line granularity,
	// perform its data access (loads/stores) and inspect its flags. The zero
	// value, so hand-built event slices default to it.
	EvInstr Kind = iota
	// EvFetch is an instruction-fetch line crossing: PC holds the 64 B line
	// address to fetch. The executor tracks the current fetch line itself and
	// emits EvFetch exactly where the per-instruction walk would have changed
	// lines, so sinks just perform the access.
	EvFetch
	// EvData is a data access (Class, Addr, Size) whose instruction fetch and
	// class count have already been delivered through EvFetch/ConsumeCounts.
	EvData
)

// Event is one entry of the ordered event stream. In the legacy encoding
// every executed instruction is an EvInstr event; in the block-aggregated
// encoding only fetch line crossings and data accesses appear.
type Event struct {
	// PC is the instruction address (EvInstr, EvData) or the fetched line
	// address (EvFetch).
	PC uint64
	// Addr is the data address for loads/stores (0 otherwise).
	Addr uint64
	// Size is the data-access width in bytes (0 for non-memory ops).
	Size uint16
	// Class is the instruction class.
	Class isa.Class
	// Flags carries branch metadata (EvInstr only).
	Flags uint8
	// Kind discriminates the protocol entry.
	Kind Kind
}

// Counts aggregates the order-independent quantities of one execution:
// per-class instruction counts and flagged-branch tallies.
type Counts struct {
	// ByClass counts executed instructions per class (memory classes
	// included — their EvData events carry only the cache access).
	ByClass [isa.NumClasses]uint64
	// LoopExits counts branches flagged FlagLoopExit.
	LoopExits uint64
	// GuardBranches counts branches flagged FlagGuard.
	GuardBranches uint64
}

// LoopSite is one strided data access of a LoopRun: the address at the
// first iteration plus per-iteration, per-row and per-plane deltas. It is
// the cache package's RunSite so sinks can hand the sites straight to
// cache.Hierarchy.DataRun without copying.
type LoopSite = cache.RunSite

// LoopRun describes a uniform loop span: Planes × Rows × Count iterations
// that each access the Sites in order, with every site's address advancing
// by Step per inner iteration, RowStep per row and PlaneStep per plane.
// Replaying `for k in [0,Planes): for j in [0,Rows): for i in [0,Count):
// for s in Sites: access(s.Addr + k*s.PlaneStep + j*s.RowStep + i*s.Step)`
// is bit-identical to the interleaved per-event stream the span would
// otherwise emit — the executor proves uniformity (guards, padding checks
// and spill status constant across the span) before emitting one. Rows and
// Planes are 1 for plain inner-loop spans; Rows > 1 covers a uniform
// parent×inner nest rectangle and Planes > 1 a uniform three-level
// grandparent×parent×inner nest box. The struct is only valid during the
// ConsumeLoop call.
type LoopRun struct {
	Count  int
	Rows   int
	Planes int
	Sites  []LoopSite
}

// Sink consumes one program execution: the ordered event stream through
// Consume (batches are only valid during the call; implementations must not
// retain the slice), uniform inner-loop spans through ConsumeLoop (ordered
// relative to Consume batches), and the bulk aggregates through
// ConsumeCounts (called once per Execute, at the end; never called by
// ExecutePerInstruction).
type Sink interface {
	Consume(events []Event)
	ConsumeLoop(run *LoopRun)
	ConsumeCounts(counts *Counts)
}

// Fanout duplicates an event stream to several sinks, letting one program
// execution feed the instruction-accurate simulator and the timing model
// simultaneously (they model the same binary running on different machines).
type Fanout []Sink

// Consume forwards the batch to every sink.
func (f Fanout) Consume(events []Event) {
	for _, s := range f {
		s.Consume(events)
	}
}

// ConsumeLoop forwards the span to every sink.
func (f Fanout) ConsumeLoop(run *LoopRun) {
	for _, s := range f {
		s.ConsumeLoop(run)
	}
}

// ConsumeCounts forwards the aggregates to every sink.
func (f Fanout) ConsumeCounts(counts *Counts) {
	for _, s := range f {
		s.ConsumeCounts(counts)
	}
}

// CountingSink tallies events by class; used in tests and quick estimates.
type CountingSink struct {
	ByClass [isa.NumClasses]uint64
	Total   uint64
	Loads   uint64
	Stores  uint64
	// LoopExits/GuardBranches tally flagged branches (aggregated encoding
	// and legacy EvInstr events alike).
	LoopExits     uint64
	GuardBranches uint64
	// Events counts protocol events received, a diagnostic for the
	// aggregation ratio (events per instruction).
	Events uint64
}

// Consume implements Sink.
func (c *CountingSink) Consume(events []Event) {
	c.Events += uint64(len(events))
	for i := range events {
		e := &events[i]
		if e.Kind != EvInstr {
			continue // counted through ConsumeCounts
		}
		c.ByClass[e.Class]++
		c.Total++
		if e.Class.IsLoad() {
			c.Loads++
		}
		if e.Class.IsStore() {
			c.Stores++
		}
		if e.Flags&FlagLoopExit != 0 {
			c.LoopExits++
		}
		if e.Flags&FlagGuard != 0 {
			c.GuardBranches++
		}
	}
}

// ConsumeLoop implements Sink (instruction classes of a span arrive through
// ConsumeCounts; the span itself counts as one protocol event).
func (c *CountingSink) ConsumeLoop(run *LoopRun) {
	c.Events++
}

// ConsumeCounts implements Sink.
func (c *CountingSink) ConsumeCounts(counts *Counts) {
	for cl, n := range counts.ByClass {
		c.ByClass[cl] += n
		c.Total += n
		if isa.Class(cl).IsLoad() {
			c.Loads += n
		}
		if isa.Class(cl).IsStore() {
			c.Stores += n
		}
	}
	c.LoopExits += counts.LoopExits
	c.GuardBranches += counts.GuardBranches
}

// batchSize is the executor's event-buffer length. 1024 events (24 KiB)
// keep the producer/consumer hand-off within the host L1/L2 while still
// amortizing the sink's interface dispatch.
const batchSize = 1024

// emitter buffers events and flushes them to a sink in batches.
type emitter struct {
	sink Sink
	buf  []Event
}

func newEmitter(sink Sink) *emitter {
	return &emitter{sink: sink, buf: make([]Event, 0, batchSize)}
}

func (e *emitter) emit(ev Event) {
	e.buf = append(e.buf, ev)
	if len(e.buf) == batchSize {
		e.flush()
	}
}

//go:noinline
func (e *emitter) flush() {
	if len(e.buf) > 0 {
		e.sink.Consume(e.buf)
		e.buf = e.buf[:0]
	}
}
