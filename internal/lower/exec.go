package lower

import (
	"repro/internal/isa"
	"repro/internal/te"
	"repro/internal/tensor"
)

// Execute runs the lowered program once, streaming the block-aggregated
// event encoding to sink: EvData events for loads/stores, EvFetch events for
// instruction-line crossings, and one ConsumeCounts call with the bulk
// per-class instruction counts (see the package comment for the protocol).
// When computeValues is set the program also performs the real float32
// arithmetic (allocating tensors as needed) so the result can be validated
// against te.ComputeOp.ReferenceEval; with it off, only addresses and
// instruction classes are produced, which is what the simulators need and is
// considerably faster.
func Execute(p *Program, sink Sink, computeValues bool) {
	execute(p, sink, computeValues, false)
}

// ExecutePerInstruction runs the lowered program once in the legacy
// per-instruction encoding: one EvInstr event per executed instruction and
// no ConsumeCounts call. It is the reference encoding the block-aggregated
// one is differentially tested against; production paths use Execute.
func ExecutePerInstruction(p *Program, sink Sink, computeValues bool) {
	execute(p, sink, computeValues, true)
}

func execute(p *Program, sink Sink, computeValues, perInstr bool) {
	c := &execCtx{
		p:        p,
		em:       newEmitter(sink),
		vals:     make([]int, len(p.levels)),
		compute:  computeValues,
		perInstr: perInstr,
		lastLine: noLine,
		ib:       uint64(p.Model.InstBytes),
	}
	if !computeValues && !perInstr && len(p.levels) > 0 && p.reduceStart < len(p.levels) {
		// Scratch of the fast inner loop, one backing array: guard bases and
		// intervals, site bases and intervals, flattened dim bases, cuts.
		ns := len(p.bodyLoads)
		nd := p.innerDimOff[ns]
		ncuts := 2 + 2*p.maxGuards + 2*ns + 2
		back := make([]int, 3*p.maxGuards+3*ns+nd+ncuts)
		c.innerGuardBase, back = back[:p.maxGuards], back[p.maxGuards:]
		c.innerGuardLo, back = back[:p.maxGuards], back[p.maxGuards:]
		c.innerGuardHi, back = back[:p.maxGuards], back[p.maxGuards:]
		c.innerElemBase, back = back[:ns], back[ns:]
		c.innerSiteLo, back = back[:ns], back[ns:]
		c.innerSiteHi, back = back[:ns], back[ns:]
		c.innerDimBase, back = back[:nd], back[nd:]
		c.innerCuts = back[:0:ncuts]
	}
	if computeValues {
		p.Op.Out.Alloc()
		for _, in := range p.Op.Inputs {
			in.Alloc()
		}
		c.acc = make([]float32, p.tileCount)
		c.axisVals = make([]int, p.numAxes)
	}

	// Preheader: argument/address setup plus fully loop-invariant loads.
	c.pc = p.codeBase
	c.run(isa.ALU, 8)
	for _, site := range p.preheader {
		c.scalarLoad(site)
	}

	switch {
	case len(p.levels) == 0:
		// Degenerate rank-0 kernel: single body+store.
		c.scalarBody()
	case p.reduceStart == 0:
		c.initBlock(p.codeBase + p.preheaderSize)
		c.runLevel(0, p.codeBase+p.levels[0].BlockOff)
		c.storeLoop(p.codeBase + p.preheaderSize + p.initSize + c.blockSize(0))
	default:
		c.runLevel(0, p.codeBase+p.levels[0].BlockOff)
	}
	c.em.flush()
	if !perInstr {
		sink.ConsumeCounts(&c.counts)
	}
}

// noLine is the "no fetch line yet" sentinel; real line addresses are 64 B
// aligned, so it never collides.
const noLine = ^uint64(0)

type execCtx struct {
	p        *Program
	em       *emitter
	vals     []int
	axisVals []int
	acc      []float32
	compute  bool
	perInstr bool
	counts   Counts
	lastLine uint64
	pc       uint64
	ib       uint64

	// Scratch of the strength-reduced inner loop: affine base values at
	// iteration 0 and the uniform-span machinery, re-used across inner-loop
	// invocations.
	innerGuardBase []int
	innerElemBase  []int
	innerDimBase   []int
	innerCuts      []int
	innerGuardLo   []int
	innerGuardHi   []int
	innerSiteLo    []int
	innerSiteHi    []int
	loopRun        LoopRun
}

// fetchLine emits an EvFetch event when the current PC has crossed onto a
// new instruction line (aggregated encoding only).
func (c *execCtx) fetchLine() {
	if line := c.pc &^ 63; line != c.lastLine {
		c.em.emit(Event{Kind: EvFetch, PC: line})
		c.lastLine = line
	}
}

// inst emits one non-memory instruction at the current PC.
func (c *execCtx) inst(class isa.Class, flags uint8) {
	if c.perInstr {
		c.em.emit(Event{PC: c.pc, Class: class, Flags: flags})
		c.pc += c.ib
		return
	}
	c.counts.ByClass[class]++
	if flags != 0 {
		if flags&FlagLoopExit != 0 {
			c.counts.LoopExits++
		}
		if flags&FlagGuard != 0 {
			c.counts.GuardBranches++
		}
	}
	c.fetchLine()
	c.pc += c.ib
}

// run emits a uniform burst of n non-memory instructions of one class
// starting at the current PC — one bulk count update plus the fetch-line
// crossings of the PC span in O(lines) instead of O(n). Instruction strides
// are below the 64 B line size (InstBytes is 3–4), so stepping the line by
// 64 visits every crossed line.
func (c *execCtx) run(class isa.Class, n int) {
	if n <= 0 {
		return
	}
	if c.perInstr {
		for i := 0; i < n; i++ {
			c.inst(class, 0)
		}
		return
	}
	c.counts.ByClass[class] += uint64(n)
	c.fetchSpan(n)
	c.pc += uint64(n) * c.ib
}

// mem emits one memory instruction at the current PC.
func (c *execCtx) mem(class isa.Class, addr uint64, size uint16) {
	if c.perInstr {
		c.em.emit(Event{PC: c.pc, Class: class, Addr: addr, Size: size})
		c.pc += c.ib
		return
	}
	c.counts.ByClass[class]++
	c.fetchLine()
	c.em.emit(Event{Kind: EvData, PC: c.pc, Addr: addr, Size: size, Class: class})
	c.pc += c.ib
}

// instFast emits one unflagged non-memory instruction in the aggregated
// encoding (fast-path helper; branch-flag tallies are handled by the
// caller).
func (c *execCtx) instFast(class isa.Class) {
	c.counts.ByClass[class]++
	c.fetchLine()
	c.pc += c.ib
}

// runInnerScalarFast executes the innermost non-vector loop of a reduction
// body in statistics-only mode. Instead of re-evaluating guard, element and
// dimension affines at every point, it evaluates them once at iteration 0
// and advances the precomputed per-iteration strides (Program.inner*Step) —
// classic strength reduction. Loops whose iteration block stays on one
// I-line additionally run segment-wise: affine guard/padding/spill
// conditions partition the iteration space into uniform spans, and each
// span's data accesses ship as a single LoopRun. Both variants emit streams
// bit-identical to the generic path.
func (c *execCtx) runInnerScalarFast(d int, lv *level, blockBase uint64) {
	p := c.p
	c.vals[d] = 0
	gb := c.innerGuardBase[:len(lv.Guards)]
	for gi := range lv.Guards {
		gb[gi] = lv.Guards[gi].Value.eval(c.vals)
	}
	eb := c.innerElemBase
	db := c.innerDimBase
	di := 0
	for si, site := range p.bodyLoads {
		eb[si] = site.Elem.eval(c.vals)
		if site.CanOOB {
			for k := range site.Dims {
				db[di+k] = site.Dims[k].eval(c.vals)
			}
			di += len(site.Dims)
		}
	}
	tile := 0
	if len(p.tileLevels) > 0 {
		tile = c.tileIdx() // vals[d] is 0: the base of the tile index
	}
	if !lv.Unrolled && blockBase&^63 == (blockBase+lv.PerIterSize-1)&^63 {
		c.runInnerSegments(d, lv, blockBase, gb, eb, db, tile)
		return
	}
	c.runInnerIter(d, lv, blockBase, gb, eb, db, tile)
}

// runParentOfInner executes the parent of the innermost scalar loop,
// keeping the child's affine bases (guards, element offsets, padding dims,
// tile index) hoisted: they are evaluated once at the first parent
// iteration and advanced by the Program.parent*Step deltas afterwards, so
// the per-parent-iteration base evaluation of runInnerScalarFast vanishes.
func (c *execCtx) runParentOfInner(d int, lv *level, blockBase uint64) {
	p := c.p
	child := p.levels[d+1]
	c.vals[d] = 0
	// Bases at (parent 0, child 0): evaluate at the current child value and
	// subtract its contribution instead of clobbering vals[d+1] — the
	// generic path leaves the child's last value visible to the parent's
	// guard/hoisted evaluations, and bit-identity includes that.
	cv := c.vals[d+1]
	gb := c.innerGuardBase[:len(child.Guards)]
	for gi := range child.Guards {
		gb[gi] = child.Guards[gi].Value.eval(c.vals) - cv*p.innerGuardStep[gi]
	}
	eb := c.innerElemBase
	db := c.innerDimBase
	di := 0
	for si, site := range p.bodyLoads {
		eb[si] = site.Elem.eval(c.vals) - cv*p.innerElemStep[si]
		if site.CanOOB {
			steps := p.innerDimStep[si]
			for k := range site.Dims {
				db[di+k] = site.Dims[k].eval(c.vals) - cv*steps[k]
			}
			di += len(site.Dims)
		}
	}
	tile := 0
	if len(p.tileLevels) > 0 {
		tile = c.tileIdx() - cv*p.innerTileStep
	}
	c.runParentRows(d, lv, child, blockBase, gb, eb, db, tile)
}

// runParentRows is the row loop of runParentOfInner: it executes all
// parent iterations given child affine bases positioned at (parent 0,
// inner 0), advancing the bases by the parent strides as it goes (they end
// up advanced by Extent×parent-step). Factored out so the grandparent path
// can drive it per plane with bases it has hoisted one level further.
func (c *execCtx) runParentRows(d int, lv, child *level, blockBase uint64, gb, eb, db []int, tile int) {
	p := c.p
	nd := p.innerDimOff[len(p.bodyLoads)]
	// 2D aggregation: when the parent is plain (no guards/hoisted loads, not
	// unrolled, single I-line, no spill traffic) and every affine condition
	// depends on at most one of the two levels, the pass region of the
	// parent×inner nest is a rectangle of rows with an identical inner
	// pattern — those rows ship as one two-dimensional LoopRun.
	j2lo, j2hi := 0, 0
	if len(lv.Guards) == 0 && len(lv.Hoisted) == 0 && !lv.Unrolled &&
		!child.Unrolled && p.spillRegs == 0 &&
		blockBase&^63 == (blockBase+lv.PerIterSize-1)&^63 {
		j2lo, j2hi = c.nest2DRows(lv, child, gb, db)
	}
	for i := 0; i < lv.Extent; i++ {
		if i == j2lo && j2hi > j2lo {
			rows := j2hi - j2lo
			if c.runNestBlock(lv, child, blockBase, gb, eb, db, rows, 1, j2hi == lv.Extent, false, false) {
				for gi := range gb {
					gb[gi] += rows * p.parentGuardStep[gi]
				}
				for si := range eb {
					eb[si] += rows * p.parentElemStep[si]
				}
				for j := 0; j < nd; j++ {
					db[j] += rows * p.parentDimStep[j]
				}
				tile += rows * p.parentTileStep
				c.vals[d] = j2hi - 1
				c.vals[d+1] = child.Extent - 1
				i = j2hi - 1
				continue
			}
			j2hi = j2lo // ineligible nest shape: stay on the per-row path
		}
		c.vals[d] = i
		iterBase := blockBase
		if lv.Unrolled {
			iterBase += uint64(i) * lv.PerIterSize
		}
		c.pc = iterBase
		if c.passGuards(lv) {
			for _, site := range lv.Hoisted {
				c.scalarLoad(site)
			}
			childBase := iterBase + child.BlockOff
			if !child.Unrolled && childBase&^63 == (childBase+child.PerIterSize-1)&^63 {
				c.runInnerSegments(d+1, child, childBase, gb, eb, db, tile)
			} else {
				c.runInnerIter(d+1, child, childBase, gb, eb, db, tile)
			}
		}
		if !lv.Unrolled {
			c.instFast(isa.ALU)
			c.instFast(isa.Branch)
			if i == lv.Extent-1 {
				c.counts.LoopExits++
			}
		}
		// Advance the hoisted child bases to the next parent iteration
		// (also when guards failed: the affines advance regardless).
		for gi := range gb {
			gb[gi] += p.parentGuardStep[gi]
		}
		for si := range eb {
			eb[si] += p.parentElemStep[si]
		}
		for j := 0; j < nd; j++ {
			db[j] += p.parentDimStep[j]
		}
		tile += p.parentTileStep
	}
}

// nest2DRows returns the parent-iteration range over which the parent×inner
// nest is rectangle-uniform: every condition that varies with the parent
// level must not also vary with the inner level (no diagonal boundaries)
// and must pass throughout the returned rows. An empty range means no 2D
// aggregation.
func (c *execCtx) nest2DRows(lv, child *level, gb, db []int) (int, int) {
	p := c.p
	pExt := lv.Extent
	jLo, jHi := 0, pExt
	for gi := range gb {
		pd := p.parentGuardStep[gi]
		if pd == 0 {
			continue // row-constant; the block check handles it
		}
		if p.innerGuardStep[gi] != 0 {
			return 0, 0
		}
		lo, hi := linearBelow(gb[gi], pd, child.Guards[gi].Extent, pExt)
		if lo > jLo {
			jLo = lo
		}
		if hi < jHi {
			jHi = hi
		}
	}
	di := 0
	for si, site := range p.bodyLoads {
		if !site.CanOOB {
			continue
		}
		cds := p.innerDimStep[si]
		for k := range cds {
			pd := p.parentDimStep[di+k]
			if pd == 0 {
				continue
			}
			if cds[k] != 0 {
				return 0, 0
			}
			lo, hi := linearAtLeast(db[di+k], pd, 0, pExt)
			if lo > jLo {
				jLo = lo
			}
			if hi < jHi {
				jHi = hi
			}
			lo, hi = linearBelow(db[di+k], pd, site.Tensor.Shape[k], pExt)
			if lo > jLo {
				jLo = lo
			}
			if hi < jHi {
				jHi = hi
			}
		}
		di += len(cds)
	}
	return jLo, jHi
}

// runGrandParentOfInner executes the grandparent of the innermost scalar
// loop with the inner affine bases hoisted two levels: evaluated once at
// the first plane and advanced by the Program.grand*Step deltas per
// grandparent iteration, so the per-plane base evaluation of
// runParentOfInner vanishes too. When the whole grandparent×parent×inner
// nest box is uniform over a range of planes, those planes ship as one 3D
// LoopRun (the third loop level of the rectangle aggregation); other
// planes fall back to the 2D row machinery via runParentRows.
func (c *execCtx) runGrandParentOfInner(d int, lv *level, blockBase uint64) {
	p := c.p
	parent := p.levels[d+1]
	child := p.levels[d+2]
	c.vals[d] = 0
	// Bases at (grand 0, parent 0, inner 0): subtract the stale
	// contributions of both descendant levels — their last values stay
	// visible to guard/hoisted evaluations, as the generic path leaves them.
	pv, cv := c.vals[d+1], c.vals[d+2]
	gb := c.innerGuardBase[:len(child.Guards)]
	for gi := range child.Guards {
		gb[gi] = child.Guards[gi].Value.eval(c.vals) - pv*p.parentGuardStep[gi] - cv*p.innerGuardStep[gi]
	}
	eb := c.innerElemBase
	db := c.innerDimBase
	di := 0
	for si, site := range p.bodyLoads {
		eb[si] = site.Elem.eval(c.vals) - pv*p.parentElemStep[si] - cv*p.innerElemStep[si]
		if site.CanOOB {
			isteps := p.innerDimStep[si]
			for k := range site.Dims {
				db[di+k] = site.Dims[k].eval(c.vals) - pv*p.parentDimStep[di+k] - cv*isteps[k]
			}
			di += len(site.Dims)
		}
	}
	tile := 0
	if len(p.tileLevels) > 0 {
		tile = c.tileIdx() - pv*p.parentTileStep - cv*p.innerTileStep
	}
	nd := p.innerDimOff[len(p.bodyLoads)]
	pExt := parent.Extent
	// 3D aggregation: both enclosing levels must be plain and the whole
	// grandparent iteration block single-I-line; nest3DPlanes then bounds
	// the plane range over which the full parent×inner rectangle repeats.
	k3lo, k3hi := 0, 0
	if len(lv.Guards) == 0 && len(lv.Hoisted) == 0 && !lv.Unrolled &&
		len(parent.Guards) == 0 && len(parent.Hoisted) == 0 && !parent.Unrolled &&
		!child.Unrolled && p.spillRegs == 0 &&
		blockBase&^63 == (blockBase+lv.PerIterSize-1)&^63 {
		k3lo, k3hi = c.nest3DPlanes(lv, parent, child, gb, db)
	}
	for k := 0; k < lv.Extent; k++ {
		if k == k3lo && k3hi > k3lo {
			planes := k3hi - k3lo
			if c.runNestBlock(parent, child, blockBase+parent.BlockOff, gb, eb, db,
				pExt, planes, true, true, k3hi == lv.Extent) {
				for gi := range gb {
					gb[gi] += planes * p.grandGuardStep[gi]
				}
				for si := range eb {
					eb[si] += planes * p.grandElemStep[si]
				}
				for j := 0; j < nd; j++ {
					db[j] += planes * p.grandDimStep[j]
				}
				tile += planes * p.grandTileStep
				c.vals[d] = k3hi - 1
				c.vals[d+1] = pExt - 1
				c.vals[d+2] = child.Extent - 1
				k = k3hi - 1
				continue
			}
			k3hi = k3lo // ineligible nest shape: stay on the per-plane path
		}
		c.vals[d] = k
		iterBase := blockBase
		if lv.Unrolled {
			iterBase += uint64(k) * lv.PerIterSize
		}
		c.pc = iterBase
		if c.passGuards(lv) {
			for _, site := range lv.Hoisted {
				c.scalarLoad(site)
			}
			c.runParentRows(d+1, parent, child, iterBase+parent.BlockOff, gb, eb, db, tile)
			// runParentRows advanced the bases across all parent rows;
			// rewind to this plane's base before stepping to the next plane.
			for gi := range gb {
				gb[gi] -= pExt * p.parentGuardStep[gi]
			}
			for si := range eb {
				eb[si] -= pExt * p.parentElemStep[si]
			}
			for j := 0; j < nd; j++ {
				db[j] -= pExt * p.parentDimStep[j]
			}
		}
		if !lv.Unrolled {
			c.instFast(isa.ALU)
			c.instFast(isa.Branch)
			if k == lv.Extent-1 {
				c.counts.LoopExits++
			}
		}
		// Advance the hoisted bases to the next plane (also when guards
		// failed: the affines advance regardless).
		for gi := range gb {
			gb[gi] += p.grandGuardStep[gi]
		}
		for si := range eb {
			eb[si] += p.grandElemStep[si]
		}
		for j := 0; j < nd; j++ {
			db[j] += p.grandDimStep[j]
		}
		tile += p.grandTileStep
	}
}

// nest3DPlanes returns the grandparent-iteration range over which the
// whole grandparent×parent×inner nest box is uniform: every affine
// condition must vary with at most one of the three levels (no diagonal
// boundaries), plane-varying conditions must pass throughout the returned
// planes, and parent-varying conditions must pass for every row (a
// partial-row rectangle cannot be plane-aggregated). An empty range means
// no 3D aggregation.
func (c *execCtx) nest3DPlanes(lv, parent, child *level, gb, db []int) (int, int) {
	p := c.p
	gExt := lv.Extent
	pExt := parent.Extent
	kLo, kHi := 0, gExt
	for gi := range gb {
		gd := p.grandGuardStep[gi]
		pd := p.parentGuardStep[gi]
		switch {
		case gd != 0:
			if pd != 0 || p.innerGuardStep[gi] != 0 {
				return 0, 0
			}
			lo, hi := linearBelow(gb[gi], gd, child.Guards[gi].Extent, gExt)
			if lo > kLo {
				kLo = lo
			}
			if hi < kHi {
				kHi = hi
			}
		case pd != 0:
			if p.innerGuardStep[gi] != 0 {
				return 0, 0
			}
			if lo, hi := linearBelow(gb[gi], pd, child.Guards[gi].Extent, pExt); lo != 0 || hi != pExt {
				return 0, 0
			}
		default:
			// inner-varying or constant; the block check handles it
		}
	}
	di := 0
	for si, site := range p.bodyLoads {
		if !site.CanOOB {
			continue
		}
		isteps := p.innerDimStep[si]
		for k := range isteps {
			gd := p.grandDimStep[di+k]
			pd := p.parentDimStep[di+k]
			switch {
			case gd != 0:
				if pd != 0 || isteps[k] != 0 {
					return 0, 0
				}
				lo, hi := linearAtLeast(db[di+k], gd, 0, gExt)
				if lo > kLo {
					kLo = lo
				}
				if hi < kHi {
					kHi = hi
				}
				lo, hi = linearBelow(db[di+k], gd, site.Tensor.Shape[k], gExt)
				if lo > kLo {
					kLo = lo
				}
				if hi < kHi {
					kHi = hi
				}
			case pd != 0:
				if isteps[k] != 0 {
					return 0, 0
				}
				if lo, hi := linearAtLeast(db[di+k], pd, 0, pExt); lo != 0 || hi != pExt {
					return 0, 0
				}
				if lo, hi := linearBelow(db[di+k], pd, site.Tensor.Shape[k], pExt); lo != 0 || hi != pExt {
					return 0, 0
				}
			}
		}
		di += len(isteps)
	}
	return kLo, kHi
}

// runNestBlock executes planes×rows consecutive nest iterations whose
// whole (grandparent×)parent×inner box is uniform, as bulk counts plus one
// LoopRun. Bases must be positioned at the first block plane/row. With
// grand=false it is the 2D rectangle path (planes must be 1): rows
// consecutive parent iterations, parent overhead included, lastRows adding
// the parent's own loop exit. With grand=true it covers planes whole
// grandparent iterations (full parent extent per plane, so rows ==
// parent.Extent): the per-plane parent loop exit and grandparent overhead
// are counted here, and lastPlanes adds the grandparent's own loop exit.
// Returns false when the inner range is not a single uniform segment
// (per-row/per-plane execution handles those shapes).
func (c *execCtx) runNestBlock(lv, child *level, blockBase uint64, gb, eb, db []int, rows, planes int, lastRows, grand, lastPlanes bool) bool {
	p := c.p
	cExt := child.Extent
	// Inner guards must pass across the whole inner range.
	for gi := range gb {
		lo, hi := linearBelow(gb[gi], p.innerGuardStep[gi], child.Guards[gi].Extent, cExt)
		if lo != 0 || hi != cExt {
			return false
		}
	}
	// Each site must be wholly loaded or wholly padding-skipped.
	sites := c.loopRun.Sites[:0]
	var canOOB, loaded uint64
	di := 0
	for si, site := range p.bodyLoads {
		lo, hi := 0, cExt
		if site.CanOOB {
			canOOB++
			steps := p.innerDimStep[si]
			for k := range steps {
				klo, khi := linearAtLeast(db[di+k], steps[k], 0, cExt)
				if klo > lo {
					lo = klo
				}
				if khi < hi {
					hi = khi
				}
				klo, khi = linearBelow(db[di+k], steps[k], site.Tensor.Shape[k], cExt)
				if klo > lo {
					lo = klo
				}
				if khi < hi {
					hi = khi
				}
			}
			di += len(steps)
		}
		switch {
		case lo <= 0 && hi >= cExt:
			loaded++
			planeStep := int64(0)
			if grand {
				planeStep = int64(p.grandElemStep[si]) * tensor.ElemSize
			}
			sites = append(sites, LoopSite{
				Addr:      site.Tensor.AddrOf(eb[si]),
				Step:      int64(p.innerElemStep[si]) * tensor.ElemSize,
				RowStep:   int64(p.parentElemStep[si]) * tensor.ElemSize,
				PlaneStep: planeStep,
				Size:      tensor.ElemSize,
			})
		case lo >= hi:
			// padding: skipped across the whole box
		default:
			c.loopRun.Sites = sites
			return false
		}
	}
	// One fetch covers the box: every PC lies on blockBase's line.
	c.pc = blockBase
	c.fetchLine()
	ng := uint64(len(gb))
	flops := uint64(p.bodyFLOPs)
	// Per inner iteration: guard pairs, padding-check pairs, loads, the FMA
	// burst and the inner loop overhead; plus parent overhead per row and —
	// for 3D boxes — grandparent overhead per plane.
	aluCI := ng + canOOB + 1
	brCI := ng + canOOB + 1
	nInstrIter := 2*ng + 2*canOOB + loaded + flops + 2
	rowsU := uint64(rows)
	cExtU := uint64(cExt)
	planesU := uint64(planes)
	aluPlane := rowsU * (cExtU*aluCI + 1)
	brPlane := rowsU * (cExtU*brCI + 1)
	if grand {
		aluPlane++ // grandparent loop overhead, once per plane
		brPlane++
	}
	c.counts.ByClass[isa.ALU] += planesU * aluPlane
	c.counts.ByClass[isa.Branch] += planesU * brPlane
	c.counts.ByClass[isa.FMA] += planesU * rowsU * cExtU * flops
	c.counts.ByClass[isa.Load] += planesU * rowsU * cExtU * loaded
	c.counts.GuardBranches += planesU * rowsU * cExtU * (ng + canOOB)
	c.counts.LoopExits += planesU * rowsU // the inner loop exits once per row
	if grand {
		c.counts.LoopExits += planesU // the parent loop exits once per plane
		if lastPlanes {
			c.counts.LoopExits++ // the grandparent loop exits on its last plane
		}
	} else if lastRows {
		c.counts.LoopExits++ // the parent loop exits on its last row
	}
	if len(sites) > 0 {
		c.loopRun.Count = cExt
		c.loopRun.Rows = rows
		c.loopRun.Planes = planes
		c.loopRun.Sites = sites
		if len(c.em.buf) > 0 {
			c.em.flush() // keep event/loop-run ordering
		}
		c.em.sink.ConsumeLoop(&c.loopRun)
	} else {
		c.loopRun.Sites = sites
	}
	// As after the last row: inner loop done, then the parent overhead pair
	// (and the grandparent pair when the block covers whole planes).
	c.pc = blockBase + child.BlockOff + (nInstrIter+2)*c.ib
	if grand {
		c.pc += 2 * c.ib
	}
	return true
}

// runInnerIter is the per-iteration strength-reduced inner loop (general
// case: unrolled bodies and blocks spanning several I-lines).
func (c *execCtx) runInnerIter(d int, lv *level, blockBase uint64, gb, eb, db []int, tile int) {
	p := c.p
	spill := p.spillRegs > 0
	flops := uint64(p.bodyFLOPs)
	var alu, branch, fma, loads, stores, guardBr, exits uint64
	for i := 0; i < lv.Extent; i++ {
		c.vals[d] = i
		iterBase := blockBase
		if lv.Unrolled {
			iterBase += uint64(i) * lv.PerIterSize
		}
		c.pc = iterBase
		// When the whole iteration block lies on one I-line (PerIterSize is
		// an upper bound on its emitted span), a single up-front check
		// replaces every per-instruction line-crossing test.
		sameLine := iterBase&^63 == (iterBase+lv.PerIterSize-1)&^63
		if sameLine {
			c.fetchLine() // pc is at iterBase
		}
		pass := true
		for gi := range gb {
			alu++
			branch++
			guardBr++
			if !sameLine {
				c.fetchLine()
				c.pc += c.ib
				c.fetchLine()
				c.pc += c.ib
			} else {
				c.pc += 2 * c.ib
			}
			if gb[gi]+i*p.innerGuardStep[gi] >= lv.Guards[gi].Extent {
				pass = false
				break
			}
		}
		if pass {
			di := 0
			for si, site := range p.bodyLoads {
				if site.CanOOB {
					alu++
					branch++
					guardBr++
					if !sameLine {
						c.fetchLine()
						c.pc += c.ib
						c.fetchLine()
						c.pc += c.ib
					} else {
						c.pc += 2 * c.ib
					}
					in := true
					steps := p.innerDimStep[si]
					for k := range steps {
						v := db[di+k] + i*steps[k]
						if v < 0 || v >= site.Tensor.Shape[k] {
							in = false
							break
						}
					}
					di += len(steps)
					if !in {
						continue
					}
				}
				loads++
				if !sameLine {
					c.fetchLine()
				}
				off := eb[si] + i*p.innerElemStep[si]
				c.em.emit(Event{Kind: EvData, PC: c.pc,
					Addr: site.Tensor.AddrOf(off), Size: tensor.ElemSize, Class: isa.Load})
				c.pc += c.ib
			}
			ti := tile + i*p.innerTileStep
			spilled := spill && ti >= p.spillFrom
			if spilled {
				loads++
				if !sameLine {
					c.fetchLine()
				}
				c.em.emit(Event{Kind: EvData, PC: c.pc,
					Addr: p.stackBase + uint64(ti)*tensor.ElemSize, Size: tensor.ElemSize, Class: isa.Load})
				c.pc += c.ib
			}
			fma += flops
			if !sameLine {
				c.fetchSpan(p.bodyFLOPs)
			}
			c.pc += flops * c.ib
			if spilled {
				stores++
				if !sameLine {
					c.fetchLine()
				}
				c.em.emit(Event{Kind: EvData, PC: c.pc,
					Addr: p.stackBase + uint64(ti)*tensor.ElemSize, Size: tensor.ElemSize, Class: isa.Store})
				c.pc += c.ib
			}
		}
		if !lv.Unrolled {
			alu++
			branch++
			if !sameLine {
				c.fetchLine()
				c.pc += c.ib
				c.fetchLine()
				c.pc += c.ib
			} else {
				c.pc += 2 * c.ib
			}
			if i == lv.Extent-1 {
				exits++
			}
		}
	}
	c.counts.ByClass[isa.ALU] += alu
	c.counts.ByClass[isa.Branch] += branch
	c.counts.ByClass[isa.FMA] += fma
	c.counts.ByClass[isa.Load] += loads
	c.counts.ByClass[isa.Store] += stores
	c.counts.GuardBranches += guardBr
	c.counts.LoopExits += exits
}

// runInnerSegments executes a non-unrolled, single-I-line inner loop
// segment-wise. Every emission decision of an iteration — guard outcomes,
// padding checks, spill status — is an affine condition of the iteration
// index, so its truth set is an interval. Cutting [0,Extent) at every
// interval endpoint yields spans with a constant event pattern: counts are
// added arithmetically per span, and the span's interleaved data accesses
// ship as one LoopRun instead of per-iteration events.
func (c *execCtx) runInnerSegments(d int, lv *level, blockBase uint64, gb, eb, db []int, tile int) {
	p := c.p
	ext := lv.Extent
	// One fetch covers the whole loop: every PC lies on blockBase's line.
	c.pc = blockBase
	c.fetchLine()
	// Cut [0,ext) at every interior truth-change point of the affine
	// conditions. Full and empty truth sets add no cuts, so the common
	// uniform case runs as a single sort-free segment.
	cuts := append(c.innerCuts[:0], 0, ext)
	gLo := c.innerGuardLo
	gHi := c.innerGuardHi
	for gi := range gb {
		lo, hi := linearBelow(gb[gi], p.innerGuardStep[gi], lv.Guards[gi].Extent, ext)
		gLo[gi], gHi[gi] = lo, hi
		if lo > 0 && lo < ext {
			cuts = append(cuts, lo)
		}
		if hi > 0 && hi < ext && hi > lo {
			cuts = append(cuts, hi)
		}
	}
	sLo := c.innerSiteLo
	sHi := c.innerSiteHi
	di := 0
	for si, site := range p.bodyLoads {
		lo, hi := 0, ext
		if site.CanOOB {
			steps := p.innerDimStep[si]
			for k := range steps {
				klo, khi := linearAtLeast(db[di+k], steps[k], 0, ext)
				if klo > lo {
					lo = klo
				}
				if khi < hi {
					hi = khi
				}
				klo, khi = linearBelow(db[di+k], steps[k], site.Tensor.Shape[k], ext)
				if klo > lo {
					lo = klo
				}
				if khi < hi {
					hi = khi
				}
			}
			di += len(steps)
			if lo > 0 && lo < ext {
				cuts = append(cuts, lo)
			}
			if hi > 0 && hi < ext && hi > lo {
				cuts = append(cuts, hi)
			}
		}
		sLo[si], sHi[si] = lo, hi
	}
	spLo, spHi := 0, 0
	if p.spillRegs > 0 {
		spLo, spHi = linearAtLeast(tile, p.innerTileStep, p.spillFrom, ext)
		if spLo > 0 && spLo < ext {
			cuts = append(cuts, spLo)
		}
		if spHi > 0 && spHi < ext && spHi > spLo {
			cuts = append(cuts, spHi)
		}
	}
	if len(cuts) > 2 {
		// Insertion sort: the cut list is tiny and mostly sorted.
		for i := 1; i < len(cuts); i++ {
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
	}
	flops := uint64(p.bodyFLOPs)
	var alu, branch, fma, loads, stores, guardBr, exits uint64
	for ci := 0; ci+1 < len(cuts); ci++ {
		a, b := cuts[ci], cuts[ci+1]
		if a >= b || a < 0 || b > ext {
			continue
		}
		n := uint64(b - a)
		// Guard outcomes are constant across the span; a failing guard cuts
		// the iteration after its own ALU+branch pair.
		firstFail := -1
		for gi := range gb {
			if a < gLo[gi] || a >= gHi[gi] {
				firstFail = gi
				break
			}
		}
		if firstFail >= 0 {
			k := uint64(firstFail + 1)
			alu += n * k
			branch += n * k
			guardBr += n * k
			nInstr := 2 * k
			alu += n // loop overhead (never unrolled here)
			branch += n
			nInstr += 2
			c.pc = blockBase + nInstr*c.ib
			if b == ext {
				exits++
			}
			continue
		}
		ng := uint64(len(gb))
		alu += n * ng
		branch += n * ng
		guardBr += n * ng
		nInstr := 2 * ng
		sites := c.loopRun.Sites[:0]
		for si, site := range p.bodyLoads {
			if site.CanOOB {
				alu += n
				branch += n
				guardBr += n
				nInstr += 2
				if a < sLo[si] || a >= sHi[si] {
					continue // padding: the load is skipped across the span
				}
			}
			loads += n
			nInstr++
			sites = append(sites, LoopSite{
				Addr: site.Tensor.AddrOf(eb[si] + a*p.innerElemStep[si]),
				Step: int64(p.innerElemStep[si]) * tensor.ElemSize,
				Size: tensor.ElemSize,
			})
		}
		if p.spillRegs > 0 && a >= spLo && a < spHi {
			slot := p.stackBase + uint64(tile+a*p.innerTileStep)*tensor.ElemSize
			step := int64(p.innerTileStep) * tensor.ElemSize
			loads += n
			stores += n
			nInstr += 2
			// Stream order within an iteration: body loads, spill reload,
			// FMA burst (no data), spill writeback.
			sites = append(sites,
				LoopSite{Addr: slot, Step: step, Size: tensor.ElemSize},
				LoopSite{Addr: slot, Step: step, Size: tensor.ElemSize, Write: true})
		}
		fma += n * flops
		nInstr += flops
		alu += n // loop overhead
		branch += n
		nInstr += 2
		if b == ext {
			exits++
		}
		if len(sites) > 0 {
			c.loopRun.Count = b - a
			c.loopRun.Rows = 1
			c.loopRun.Planes = 1
			c.loopRun.Sites = sites
			if len(c.em.buf) > 0 {
				c.em.flush() // keep event/loop-run ordering
			}
			c.em.sink.ConsumeLoop(&c.loopRun)
		} else {
			c.loopRun.Sites = sites
		}
		c.pc = blockBase + nInstr*c.ib
	}
	c.vals[d] = ext - 1 // as the per-iteration loop leaves it
	c.counts.ByClass[isa.ALU] += alu
	c.counts.ByClass[isa.Branch] += branch
	c.counts.ByClass[isa.FMA] += fma
	c.counts.ByClass[isa.Load] += loads
	c.counts.ByClass[isa.Store] += stores
	c.counts.GuardBranches += guardBr
	c.counts.LoopExits += exits
}

// linearBelow returns the sub-interval of [0,n) where base+i*step < bound.
// Steps 0 and ±1 (the overwhelmingly common strides) avoid the division.
func linearBelow(base, step, bound, n int) (int, int) {
	switch {
	case step == 0:
		if base < bound {
			return 0, n
		}
		return 0, 0
	case step > 0:
		if base >= bound {
			return 0, 0
		}
		hi := bound - base
		if step != 1 {
			hi = (bound-1-base)/step + 1
		}
		if hi > n {
			hi = n
		}
		return 0, hi
	default:
		if base < bound {
			return 0, n
		}
		lo := base - bound + 1
		if step != -1 {
			lo = (base-bound)/(-step) + 1
		}
		if lo > n {
			lo = n
		}
		return lo, n
	}
}

// linearAtLeast returns the sub-interval of [0,n) where base+i*step >= bound.
func linearAtLeast(base, step, bound, n int) (int, int) {
	switch {
	case step == 0:
		if base >= bound {
			return 0, n
		}
		return 0, 0
	case step > 0:
		if base >= bound {
			return 0, n
		}
		lo := bound - base
		if step != 1 {
			lo = (bound - base + step - 1) / step
		}
		if lo > n {
			lo = n
		}
		return lo, n
	default:
		if base < bound {
			return 0, 0
		}
		hi := base - bound + 1
		if step != -1 {
			hi = (base-bound)/(-step) + 1
		}
		if hi > n {
			hi = n
		}
		return 0, hi
	}
}

// fetchSpan walks the fetch-line crossings of an n-instruction burst
// starting at the current PC (without advancing it or counting classes).
func (c *execCtx) fetchSpan(n int) {
	if n <= 0 {
		return
	}
	last := (c.pc + uint64(n-1)*c.ib) &^ 63
	line := c.pc &^ 63
	if line != c.lastLine {
		c.em.emit(Event{Kind: EvFetch, PC: line})
	}
	for line < last {
		line += 64
		c.em.emit(Event{Kind: EvFetch, PC: line})
	}
	c.lastLine = line
}

// blockSize returns the total code size of level d's block (all copies).
func (c *execCtx) blockSize(d int) uint64 {
	lv := c.p.levels[d]
	if lv.Unrolled {
		return lv.PerIterSize * uint64(lv.Extent)
	}
	return lv.PerIterSize
}

// runLevel executes all iterations of level d; blockBase is the code address
// of the level's block.
func (c *execCtx) runLevel(d int, blockBase uint64) {
	p := c.p
	lv := p.levels[d]
	if lv.Vector {
		c.runVectorLevel(d, blockBase)
		return
	}
	inner := d == len(p.levels)-1
	if !c.compute && !c.perInstr && p.reduceStart < len(p.levels) {
		// Hot paths: statistics-only execution of a reduction body. The
		// strength-reduced loops emit a bit-identical stream (checked by
		// TestBlockAggregationBitIdentical against the generic path below,
		// which the per-instruction encoding always takes).
		if inner {
			c.runInnerScalarFast(d, lv, blockBase)
			return
		}
		if d == len(p.levels)-2 && !p.levels[d+1].Vector && d+1 != p.reduceStart {
			// Parent of the inner loop: hoist the inner affine bases out of
			// this loop and advance them by the parent strides instead of
			// re-evaluating them per iteration.
			c.runParentOfInner(d, lv, blockBase)
			return
		}
		if d == len(p.levels)-3 && !p.levels[d+1].Vector && !p.levels[d+2].Vector &&
			d+1 != p.reduceStart && d+2 != p.reduceStart {
			// Grandparent of the inner loop: hoist the bases one level
			// further and aggregate uniform 3D nest boxes.
			c.runGrandParentOfInner(d, lv, blockBase)
			return
		}
	}
	for i := 0; i < lv.Extent; i++ {
		c.vals[d] = i
		iterBase := blockBase
		if lv.Unrolled {
			iterBase += uint64(i) * lv.PerIterSize
		}
		c.pc = iterBase
		if c.passGuards(lv) {
			for _, site := range lv.Hoisted {
				c.scalarLoad(site)
			}
			if inner {
				c.scalarBody()
			} else {
				childBase := iterBase + p.levels[d+1].BlockOff
				if d+1 == p.reduceStart {
					c.initBlock(childBase - p.initSize)
				}
				c.runLevel(d+1, childBase)
				if d+1 == p.reduceStart {
					c.storeLoop(childBase + c.blockSize(d+1))
				}
			}
		}
		if !lv.Unrolled {
			c.inst(isa.ALU, 0)
			fl := uint8(0)
			if i == lv.Extent-1 {
				fl = FlagLoopExit
			}
			c.inst(isa.Branch, fl)
		}
	}
}

// passGuards emits the guard checks of a level and reports whether the
// current iteration is inside the axis bounds.
func (c *execCtx) passGuards(lv *level) bool {
	for _, g := range lv.Guards {
		c.inst(isa.ALU, 0)
		c.inst(isa.Branch, FlagGuard)
		if g.Value.eval(c.vals) >= g.Extent {
			return false
		}
	}
	return true
}

// runVectorLevel executes the innermost SIMD loop in chunks of Lanes,
// falling back to scalar code for split tails and guard-cut chunks.
func (c *execCtx) runVectorLevel(d int, blockBase uint64) {
	p := c.p
	lv := p.levels[d]
	lanes := lv.Lanes
	for i := 0; i < lv.Extent; i += lanes {
		c.vals[d] = i
		c.pc = blockBase
		n := lanes
		if lv.Extent-i < n {
			n = lv.Extent - i
		}
		for _, g := range lv.Guards {
			c.inst(isa.ALU, 0)
			c.inst(isa.Branch, FlagGuard)
			v0 := g.Value.eval(c.vals)
			if v0 >= g.Extent {
				n = 0
				break
			}
			if step := g.Value.coefOf(d); step > 0 {
				if maxN := (g.Extent - v0 + step - 1) / step; maxN < n {
					n = maxN
				}
			}
		}
		switch {
		case n == lanes:
			c.vectorBody(d, lanes)
		case n > 0:
			for k := 0; k < n; k++ {
				c.vals[d] = i + k
				c.scalarBody()
			}
			c.vals[d] = i
		}
		c.inst(isa.ALU, 0)
		fl := uint8(0)
		if i+lanes >= lv.Extent {
			fl = FlagLoopExit
		}
		c.inst(isa.Branch, fl)
	}
}

// scalarLoad emits one scalar load of an access site (with a padding guard
// when the site can go out of bounds; out-of-bounds reads emit no load).
func (c *execCtx) scalarLoad(site *accessSite) {
	if site.CanOOB {
		c.inst(isa.ALU, 0)
		c.inst(isa.Branch, FlagGuard)
		if !c.siteInBounds(site) {
			return
		}
	}
	off := site.Elem.eval(c.vals)
	c.mem(isa.Load, site.Tensor.AddrOf(off), tensor.ElemSize)
}

// siteInBounds checks every tensor dimension of the site at the current
// loop values.
func (c *execCtx) siteInBounds(site *accessSite) bool {
	for d, la := range site.Dims {
		v := la.eval(c.vals)
		if v < 0 || v >= site.Tensor.Shape[d] {
			return false
		}
	}
	return true
}

// tileIdx computes the accumulator index of the current register-tile point.
func (c *execCtx) tileIdx() int {
	idx := 0
	for k, li := range c.p.tileLevels {
		idx += c.p.tileStrideList[k] * c.vals[li]
	}
	return idx
}

// syncAxisVals reconstructs compute-axis values from loop-level values
// (value-computation mode only).
func (c *execCtx) syncAxisVals() {
	for id := 0; id < c.p.numAxes; id++ {
		v := 0
		for _, t := range c.p.axisTerms[id] {
			v += t.Coef * c.vals[t.Level]
		}
		c.axisVals[id] = v
	}
}

// scalarBody executes one scalar point of the reduction body.
func (c *execCtx) scalarBody() {
	p := c.p
	for _, site := range p.bodyLoads {
		c.scalarLoad(site)
	}
	tileIdx := 0
	if len(p.tileLevels) > 0 {
		tileIdx = c.tileIdx()
	}
	regIdx := tileIdx
	if p.vecTile {
		regIdx = tileIdx / p.levels[len(p.levels)-1].Lanes
	}
	spilled := p.spillRegs > 0 && regIdx >= p.spillFrom
	slot := p.stackBase + uint64(tileIdx)*tensor.ElemSize
	if spilled {
		c.mem(isa.Load, slot, tensor.ElemSize)
	}
	c.run(isa.FMA, p.bodyFLOPs)
	if spilled {
		c.mem(isa.Store, slot, tensor.ElemSize)
	}
	noReduce := p.reduceStart == len(p.levels)
	if c.compute {
		c.syncAxisVals()
		if noReduce {
			c.acc[tileIdx] = p.Op.Init
		}
		c.acc[tileIdx] = p.Op.CombineValues(c.acc[tileIdx], te.EvalExpr(p.Op.ReduceBody, c.axisVals, 0))
	}
	if noReduce {
		c.storePoint(tileIdx)
	}
}

// vectorBody executes one full-width SIMD point of the reduction body.
func (c *execCtx) vectorBody(d, lanes int) {
	p := c.p
	vbytes := uint16(lanes * tensor.ElemSize)
	for _, site := range p.bodyLoads {
		coef := site.Elem.coefOf(d)
		switch {
		case site.CanOOB:
			if coef == 1 && c.vectorSpanInBounds(site, d, lanes) {
				c.inst(isa.ALU, 0)
				c.inst(isa.Branch, FlagGuard)
				off := site.Elem.eval(c.vals)
				c.mem(isa.VLoad, site.Tensor.AddrOf(off), vbytes)
			} else {
				base := c.vals[d]
				for k := 0; k < lanes; k++ {
					c.vals[d] = base + k
					c.scalarLoad(site)
				}
				c.vals[d] = base
				c.inst(isa.ALU, 0) // lane combine
			}
		case coef == 1:
			off := site.Elem.eval(c.vals)
			c.mem(isa.VLoad, site.Tensor.AddrOf(off), vbytes)
		default:
			// Gather: strided lanes load scalar and pack.
			base := c.vals[d]
			for k := 0; k < lanes; k++ {
				c.vals[d] = base + k
				off := site.Elem.eval(c.vals)
				c.mem(isa.Load, site.Tensor.AddrOf(off), tensor.ElemSize)
			}
			c.vals[d] = base
			c.inst(isa.ALU, 0)
		}
	}
	tileIdx := 0
	if len(p.tileLevels) > 0 {
		tileIdx = c.tileIdx()
	}
	regIdx := tileIdx
	if p.vecTile {
		regIdx = tileIdx / lanes
	}
	spilled := p.spillRegs > 0 && regIdx >= p.spillFrom
	slot := p.stackBase + uint64(tileIdx)*tensor.ElemSize
	if spilled {
		c.mem(isa.VLoad, slot, vbytes)
	}
	c.run(isa.VFMA, p.bodyFLOPs)
	if spilled {
		c.mem(isa.VStore, slot, vbytes)
	}
	noReduce := p.reduceStart == len(p.levels)
	if c.compute || noReduce {
		base := c.vals[d]
		for k := 0; k < lanes; k++ {
			c.vals[d] = base + k
			ti := tileIdx
			if len(p.tileLevels) > 0 {
				ti = c.tileIdx()
			}
			if c.compute {
				c.syncAxisVals()
				if noReduce {
					c.acc[ti] = p.Op.Init
				}
				c.acc[ti] = p.Op.CombineValues(c.acc[ti], te.EvalExpr(p.Op.ReduceBody, c.axisVals, 0))
			}
			if noReduce {
				c.storePoint(ti)
			}
		}
		c.vals[d] = base
	}
}

// vectorSpanInBounds checks the first and last lane of a unit-stride span.
func (c *execCtx) vectorSpanInBounds(site *accessSite, d, lanes int) bool {
	if !c.siteInBounds(site) {
		return false
	}
	c.vals[d] += lanes - 1
	ok := c.siteInBounds(site)
	c.vals[d] -= lanes - 1
	return ok
}

// initBlock zeroes the accumulator registers at the entry of the reduction.
func (c *execCtx) initBlock(basePC uint64) {
	c.pc = basePC
	c.run(isa.ALU, c.p.accRegs)
	if c.compute {
		for i := range c.acc {
			c.acc[i] = c.p.Op.Init
		}
	}
}

// storeLoop writes the register tile back to the output tensor, applying the
// epilogue and re-checking split-tail guards of tile axes.
func (c *execCtx) storeLoop(basePC uint64) {
	if len(c.p.tileLevels) == 0 {
		c.pc = basePC
		c.storePoint(0)
		return
	}
	c.storeLoopLevel(0, basePC)
}

func (c *execCtx) storeLoopLevel(k int, basePC uint64) {
	p := c.p
	li := p.tileLevels[k]
	lv := p.levels[li]
	for i := 0; i < lv.Extent; i++ {
		c.vals[li] = i
		c.pc = basePC
		if c.passGuards(lv) {
			if k == len(p.tileLevels)-1 {
				c.storePoint(c.tileIdx())
			} else {
				c.storeLoopLevel(k+1, basePC)
			}
		}
		c.inst(isa.ALU, 0)
		fl := uint8(0)
		if i == lv.Extent-1 {
			fl = FlagLoopExit
		}
		c.inst(isa.Branch, fl)
	}
}

// storePoint applies the epilogue to one accumulator and stores the result.
func (c *execCtx) storePoint(tileIdx int) {
	p := c.p
	for _, site := range p.epiLoads {
		c.scalarLoad(site)
	}
	regIdx := tileIdx
	if p.vecTile {
		regIdx = tileIdx / p.levels[len(p.levels)-1].Lanes
	}
	if p.spillRegs > 0 && regIdx >= p.spillFrom {
		c.mem(isa.Load, p.stackBase+uint64(tileIdx)*tensor.ElemSize, tensor.ElemSize)
	}
	c.run(isa.FMA, p.epiFLOPs)
	off := p.store.Elem.eval(c.vals)
	c.mem(isa.Store, p.store.Tensor.AddrOf(off), tensor.ElemSize)
	if c.compute {
		c.syncAxisVals()
		v := c.acc[tileIdx]
		if p.Op.Epilogue != nil {
			v = te.EvalExpr(p.Op.Epilogue, c.axisVals, v)
		}
		p.store.Tensor.Data[off] = v
	}
}
