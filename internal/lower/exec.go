package lower

import (
	"repro/internal/isa"
	"repro/internal/te"
	"repro/internal/tensor"
)

// Execute runs the lowered program once, streaming one Event per executed
// instruction to sink. When computeValues is set the program also performs
// the real float32 arithmetic (allocating tensors as needed) so the result
// can be validated against te.ComputeOp.ReferenceEval; with it off, only
// addresses and instruction classes are produced, which is what the
// simulators need and is considerably faster.
func Execute(p *Program, sink Sink, computeValues bool) {
	c := &execCtx{
		p:       p,
		em:      newEmitter(sink),
		vals:    make([]int, len(p.levels)),
		compute: computeValues,
		ib:      uint64(p.Model.InstBytes),
	}
	if computeValues {
		p.Op.Out.Alloc()
		for _, in := range p.Op.Inputs {
			in.Alloc()
		}
		c.acc = make([]float32, p.tileCount)
		c.axisVals = make([]int, p.numAxes)
	}

	// Preheader: argument/address setup plus fully loop-invariant loads.
	c.pc = p.codeBase
	for i := 0; i < 8; i++ {
		c.inst(isa.ALU, 0)
	}
	for _, site := range p.preheader {
		c.scalarLoad(site)
	}

	switch {
	case len(p.levels) == 0:
		// Degenerate rank-0 kernel: single body+store.
		c.scalarBody()
	case p.reduceStart == 0:
		c.initBlock(p.codeBase + p.preheaderSize)
		c.runLevel(0, p.codeBase+p.levels[0].BlockOff)
		c.storeLoop(p.codeBase + p.preheaderSize + p.initSize + c.blockSize(0))
	default:
		c.runLevel(0, p.codeBase+p.levels[0].BlockOff)
	}
	c.em.flush()
}

type execCtx struct {
	p        *Program
	em       *emitter
	vals     []int
	axisVals []int
	acc      []float32
	compute  bool
	pc       uint64
	ib       uint64
}

// inst emits one non-memory instruction at the current PC.
func (c *execCtx) inst(class isa.Class, flags uint8) {
	c.em.emit(Event{PC: c.pc, Class: class, Flags: flags})
	c.pc += c.ib
}

// mem emits one memory instruction at the current PC.
func (c *execCtx) mem(class isa.Class, addr uint64, size uint16) {
	c.em.emit(Event{PC: c.pc, Class: class, Addr: addr, Size: size})
	c.pc += c.ib
}

// blockSize returns the total code size of level d's block (all copies).
func (c *execCtx) blockSize(d int) uint64 {
	lv := c.p.levels[d]
	if lv.Unrolled {
		return lv.PerIterSize * uint64(lv.Extent)
	}
	return lv.PerIterSize
}

// runLevel executes all iterations of level d; blockBase is the code address
// of the level's block.
func (c *execCtx) runLevel(d int, blockBase uint64) {
	p := c.p
	lv := p.levels[d]
	if lv.Vector {
		c.runVectorLevel(d, blockBase)
		return
	}
	inner := d == len(p.levels)-1
	for i := 0; i < lv.Extent; i++ {
		c.vals[d] = i
		iterBase := blockBase
		if lv.Unrolled {
			iterBase += uint64(i) * lv.PerIterSize
		}
		c.pc = iterBase
		if c.passGuards(lv) {
			for _, site := range lv.Hoisted {
				c.scalarLoad(site)
			}
			if inner {
				c.scalarBody()
			} else {
				childBase := iterBase + p.levels[d+1].BlockOff
				if d+1 == p.reduceStart {
					c.initBlock(childBase - p.initSize)
				}
				c.runLevel(d+1, childBase)
				if d+1 == p.reduceStart {
					c.storeLoop(childBase + c.blockSize(d+1))
				}
			}
		}
		if !lv.Unrolled {
			c.inst(isa.ALU, 0)
			fl := uint8(0)
			if i == lv.Extent-1 {
				fl = FlagLoopExit
			}
			c.inst(isa.Branch, fl)
		}
	}
}

// passGuards emits the guard checks of a level and reports whether the
// current iteration is inside the axis bounds.
func (c *execCtx) passGuards(lv *level) bool {
	for _, g := range lv.Guards {
		c.inst(isa.ALU, 0)
		c.inst(isa.Branch, FlagGuard)
		if g.Value.eval(c.vals) >= g.Extent {
			return false
		}
	}
	return true
}

// runVectorLevel executes the innermost SIMD loop in chunks of Lanes,
// falling back to scalar code for split tails and guard-cut chunks.
func (c *execCtx) runVectorLevel(d int, blockBase uint64) {
	p := c.p
	lv := p.levels[d]
	lanes := lv.Lanes
	for i := 0; i < lv.Extent; i += lanes {
		c.vals[d] = i
		c.pc = blockBase
		n := lanes
		if lv.Extent-i < n {
			n = lv.Extent - i
		}
		for _, g := range lv.Guards {
			c.inst(isa.ALU, 0)
			c.inst(isa.Branch, FlagGuard)
			v0 := g.Value.eval(c.vals)
			if v0 >= g.Extent {
				n = 0
				break
			}
			if step := g.Value.coefOf(d); step > 0 {
				if maxN := (g.Extent - v0 + step - 1) / step; maxN < n {
					n = maxN
				}
			}
		}
		switch {
		case n == lanes:
			c.vectorBody(d, lanes)
		case n > 0:
			for k := 0; k < n; k++ {
				c.vals[d] = i + k
				c.scalarBody()
			}
			c.vals[d] = i
		}
		c.inst(isa.ALU, 0)
		fl := uint8(0)
		if i+lanes >= lv.Extent {
			fl = FlagLoopExit
		}
		c.inst(isa.Branch, fl)
	}
}

// scalarLoad emits one scalar load of an access site (with a padding guard
// when the site can go out of bounds; out-of-bounds reads emit no load).
func (c *execCtx) scalarLoad(site *accessSite) {
	if site.CanOOB {
		c.inst(isa.ALU, 0)
		c.inst(isa.Branch, FlagGuard)
		if !c.siteInBounds(site) {
			return
		}
	}
	off := site.Elem.eval(c.vals)
	c.mem(isa.Load, site.Tensor.AddrOf(off), tensor.ElemSize)
}

// siteInBounds checks every tensor dimension of the site at the current
// loop values.
func (c *execCtx) siteInBounds(site *accessSite) bool {
	for d, la := range site.Dims {
		v := la.eval(c.vals)
		if v < 0 || v >= site.Tensor.Shape[d] {
			return false
		}
	}
	return true
}

// tileIdx computes the accumulator index of the current register-tile point.
func (c *execCtx) tileIdx() int {
	idx := 0
	for k, li := range c.p.tileLevels {
		idx += c.p.tileStrideList[k] * c.vals[li]
	}
	return idx
}

// syncAxisVals reconstructs compute-axis values from loop-level values
// (value-computation mode only).
func (c *execCtx) syncAxisVals() {
	for id := 0; id < c.p.numAxes; id++ {
		v := 0
		for _, t := range c.p.axisTerms[id] {
			v += t.Coef * c.vals[t.Level]
		}
		c.axisVals[id] = v
	}
}

// scalarBody executes one scalar point of the reduction body.
func (c *execCtx) scalarBody() {
	p := c.p
	for _, site := range p.bodyLoads {
		c.scalarLoad(site)
	}
	tileIdx := 0
	if len(p.tileLevels) > 0 {
		tileIdx = c.tileIdx()
	}
	regIdx := tileIdx
	if p.vecTile {
		regIdx = tileIdx / p.levels[len(p.levels)-1].Lanes
	}
	spilled := p.spillRegs > 0 && regIdx >= p.spillFrom
	slot := p.stackBase + uint64(tileIdx)*tensor.ElemSize
	if spilled {
		c.mem(isa.Load, slot, tensor.ElemSize)
	}
	for f := 0; f < p.bodyFLOPs; f++ {
		c.inst(isa.FMA, 0)
	}
	if spilled {
		c.mem(isa.Store, slot, tensor.ElemSize)
	}
	noReduce := p.reduceStart == len(p.levels)
	if c.compute {
		c.syncAxisVals()
		if noReduce {
			c.acc[tileIdx] = p.Op.Init
		}
		c.acc[tileIdx] = p.Op.CombineValues(c.acc[tileIdx], te.EvalExpr(p.Op.ReduceBody, c.axisVals, 0))
	}
	if noReduce {
		c.storePoint(tileIdx)
	}
}

// vectorBody executes one full-width SIMD point of the reduction body.
func (c *execCtx) vectorBody(d, lanes int) {
	p := c.p
	vbytes := uint16(lanes * tensor.ElemSize)
	for _, site := range p.bodyLoads {
		coef := site.Elem.coefOf(d)
		switch {
		case site.CanOOB:
			if coef == 1 && c.vectorSpanInBounds(site, d, lanes) {
				c.inst(isa.ALU, 0)
				c.inst(isa.Branch, FlagGuard)
				off := site.Elem.eval(c.vals)
				c.mem(isa.VLoad, site.Tensor.AddrOf(off), vbytes)
			} else {
				base := c.vals[d]
				for k := 0; k < lanes; k++ {
					c.vals[d] = base + k
					c.scalarLoad(site)
				}
				c.vals[d] = base
				c.inst(isa.ALU, 0) // lane combine
			}
		case coef == 1:
			off := site.Elem.eval(c.vals)
			c.mem(isa.VLoad, site.Tensor.AddrOf(off), vbytes)
		default:
			// Gather: strided lanes load scalar and pack.
			base := c.vals[d]
			for k := 0; k < lanes; k++ {
				c.vals[d] = base + k
				off := site.Elem.eval(c.vals)
				c.mem(isa.Load, site.Tensor.AddrOf(off), tensor.ElemSize)
			}
			c.vals[d] = base
			c.inst(isa.ALU, 0)
		}
	}
	tileIdx := 0
	if len(p.tileLevels) > 0 {
		tileIdx = c.tileIdx()
	}
	regIdx := tileIdx
	if p.vecTile {
		regIdx = tileIdx / lanes
	}
	spilled := p.spillRegs > 0 && regIdx >= p.spillFrom
	slot := p.stackBase + uint64(tileIdx)*tensor.ElemSize
	if spilled {
		c.mem(isa.VLoad, slot, vbytes)
	}
	for f := 0; f < p.bodyFLOPs; f++ {
		c.inst(isa.VFMA, 0)
	}
	if spilled {
		c.mem(isa.VStore, slot, vbytes)
	}
	noReduce := p.reduceStart == len(p.levels)
	if c.compute || noReduce {
		base := c.vals[d]
		for k := 0; k < lanes; k++ {
			c.vals[d] = base + k
			ti := tileIdx
			if len(p.tileLevels) > 0 {
				ti = c.tileIdx()
			}
			if c.compute {
				c.syncAxisVals()
				if noReduce {
					c.acc[ti] = p.Op.Init
				}
				c.acc[ti] = p.Op.CombineValues(c.acc[ti], te.EvalExpr(p.Op.ReduceBody, c.axisVals, 0))
			}
			if noReduce {
				c.storePoint(ti)
			}
		}
		c.vals[d] = base
	}
}

// vectorSpanInBounds checks the first and last lane of a unit-stride span.
func (c *execCtx) vectorSpanInBounds(site *accessSite, d, lanes int) bool {
	if !c.siteInBounds(site) {
		return false
	}
	c.vals[d] += lanes - 1
	ok := c.siteInBounds(site)
	c.vals[d] -= lanes - 1
	return ok
}

// initBlock zeroes the accumulator registers at the entry of the reduction.
func (c *execCtx) initBlock(basePC uint64) {
	c.pc = basePC
	for i := 0; i < c.p.accRegs; i++ {
		c.inst(isa.ALU, 0)
	}
	if c.compute {
		for i := range c.acc {
			c.acc[i] = c.p.Op.Init
		}
	}
}

// storeLoop writes the register tile back to the output tensor, applying the
// epilogue and re-checking split-tail guards of tile axes.
func (c *execCtx) storeLoop(basePC uint64) {
	if len(c.p.tileLevels) == 0 {
		c.pc = basePC
		c.storePoint(0)
		return
	}
	c.storeLoopLevel(0, basePC)
}

func (c *execCtx) storeLoopLevel(k int, basePC uint64) {
	p := c.p
	li := p.tileLevels[k]
	lv := p.levels[li]
	for i := 0; i < lv.Extent; i++ {
		c.vals[li] = i
		c.pc = basePC
		if c.passGuards(lv) {
			if k == len(p.tileLevels)-1 {
				c.storePoint(c.tileIdx())
			} else {
				c.storeLoopLevel(k+1, basePC)
			}
		}
		c.inst(isa.ALU, 0)
		fl := uint8(0)
		if i == lv.Extent-1 {
			fl = FlagLoopExit
		}
		c.inst(isa.Branch, fl)
	}
}

// storePoint applies the epilogue to one accumulator and stores the result.
func (c *execCtx) storePoint(tileIdx int) {
	p := c.p
	for _, site := range p.epiLoads {
		c.scalarLoad(site)
	}
	regIdx := tileIdx
	if p.vecTile {
		regIdx = tileIdx / p.levels[len(p.levels)-1].Lanes
	}
	if p.spillRegs > 0 && regIdx >= p.spillFrom {
		c.mem(isa.Load, p.stackBase+uint64(tileIdx)*tensor.ElemSize, tensor.ElemSize)
	}
	for f := 0; f < p.epiFLOPs; f++ {
		c.inst(isa.FMA, 0)
	}
	off := p.store.Elem.eval(c.vals)
	c.mem(isa.Store, p.store.Tensor.AddrOf(off), tensor.ElemSize)
	if c.compute {
		c.syncAxisVals()
		v := c.acc[tileIdx]
		if p.Op.Epilogue != nil {
			v = te.EvalExpr(p.Op.Epilogue, c.axisVals, v)
		}
		p.store.Tensor.Data[off] = v
	}
}
