package lower_test

// Differential test of the block-aggregated event encoding: Execute (run
// events + bulk counts) must produce bit-identical simulator statistics and
// timing-model cycles to ExecutePerInstruction (one event per executed
// instruction) — the aggregation is an encoding change, not a model change.

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/num"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/te"
)

// diffCase builds one workload+schedule pair; a fresh workload per build
// keeps tensor placement independent across encodings.
type diffCase struct {
	name  string
	build func(t *testing.T) (*te.Workload, *schedule.Schedule)
}

func diffCases() []diffCase {
	return []diffCase{
		{"matmul-default", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			wl := te.MatMul(12, 9, 11)
			return wl, schedule.New(wl.Op)
		}},
		{"matmul-tiled-vectorized", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			wl := te.MatMul(16, 12, 16)
			s := schedule.New(wl.Op)
			i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
			_, ii, _ := s.Split(i, 4)
			jo, ji, _ := s.Split(j, 8)
			ko, ki, _ := s.Split(k, 3)
			if err := s.Reorder([]*schedule.IterVar{s.Leaves[0], jo, ko, ii, ki, ji}); err != nil {
				t.Fatal(err)
			}
			_ = s.Vectorize(ji)
			return wl, s
		}},
		{"matmul-unrolled", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			wl := te.MatMul(8, 6, 8)
			s := schedule.New(wl.Op)
			_, ki, _ := s.Split(s.Leaves[2], 3)
			_ = s.Unroll(ki)
			return wl, s
		}},
		{"matmul-split-tail", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			// 10 split by 3 and 7 split by 4 both leave guarded tails.
			wl := te.MatMul(10, 7, 9)
			s := schedule.New(wl.Op)
			_, _, _ = s.Split(s.Leaves[0], 3)
			_, _, _ = s.Split(s.Leaves[2], 4)
			return wl, s
		}},
		{"matmul-spilled", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			wl := te.MatMul(16, 8, 16)
			s := schedule.New(wl.Op)
			i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
			if err := s.Reorder([]*schedule.IterVar{k, i, j}); err != nil {
				t.Fatal(err)
			}
			return wl, s
		}},
		{"conv-padded-default", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			wl := te.ConvGroup(te.ScaleTiny, 1) // stride 1, pad 1
			return wl, schedule.New(wl.Op)
		}},
		{"conv-padded-vectorized", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			wl := te.ConvGroup(te.ScaleTiny, 1)
			s := schedule.New(wl.Op)
			leaves := s.Leaves
			ow := leaves[3]
			order := []*schedule.IterVar{leaves[0], leaves[1], leaves[2], leaves[4], leaves[5], leaves[6], ow}
			if err := s.Reorder(order); err != nil {
				t.Fatal(err)
			}
			_ = s.Vectorize(ow)
			return wl, s
		}},
		{"matmul-reduce-3deep", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			// k split twice gives a 3-deep all-reduce tail (ko, ki, kii):
			// the grandparent-of-inner path with its 3D nest-box
			// aggregation, including guarded split tails (10 % 4 != 0).
			wl := te.MatMul(9, 7, 10)
			s := schedule.New(wl.Op)
			_, ki, err := s.Split(s.Leaves[2], 4)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Split(ki, 2); err != nil {
				t.Fatal(err)
			}
			return wl, s
		}},
		{"conv-strided-3deep", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			// Stride-2 padded conv: boundary rows clip kh/kw asymmetrically,
			// so 3D boxes, 2D rectangles and per-row segment fallbacks all
			// fire within one execution.
			wl := te.ConvGroup(te.ScaleTiny, 2)
			return wl, schedule.New(wl.Op)
		}},
		{"dense-split-reduce-3deep", func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			// DenseBiasRelu with the reduction split: reduce levels carry a
			// guard on the split tail while spatial guards sit above.
			wl := te.DenseBiasRelu(3, 17, 5)
			s := schedule.New(wl.Op)
			if _, _, err := s.Split(s.Leaves[2], 5); err != nil {
				t.Fatal(err)
			}
			return wl, s
		}},
	}
}

// TestBlockAggregationTinyCacheBitIdentical re-runs every differential case
// against a deliberately tiny L1D (8 sets × 1 way): working sets overflow
// sets constantly, so the resident fast path rejects most spans
// mid-execution and the scalar replay evicts — the mixed fast/slow
// interleaving must still be bit-identical to the per-instruction stream.
func TestBlockAggregationTinyCacheBitIdentical(t *testing.T) {
	tiny := cache.HierarchyConfig{
		L1D: cache.Config{Name: "L1D", SizeBytes: 8 * 64, LineBytes: 64, Assoc: 1},
		L1I: cache.Config{Name: "L1I", SizeBytes: 1024, LineBytes: 64, Assoc: 2},
		L2:  cache.Config{Name: "L2", SizeBytes: 8 * 1024, LineBytes: 64, Assoc: 2},
	}
	runOne := func(t *testing.T, tc diffCase, exec func(*lower.Program, lower.Sink, bool)) *sim.Stats {
		_, s := tc.build(t)
		prog, err := lower.Build(s, isa.Lookup(isa.RISCV))
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		m, err := sim.New(isa.RISCV, tiny)
		if err != nil {
			t.Fatal(err)
		}
		exec(prog, m, false)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("cache invariants: %v", err)
		}
		return m.Stats()
	}
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref := runOne(t, tc, lower.ExecutePerInstruction)
			agg := runOne(t, tc, lower.Execute)
			ref.SimWallSeconds, agg.SimWallSeconds = 0, 0
			ref.SinkEvents, agg.SinkEvents = 0, 0
			if !reflect.DeepEqual(ref, agg) {
				t.Errorf("sim stats differ:\nper-instr: %+v\naggregated: %+v", ref, agg)
			}
		})
	}
}

// runBoth executes one case under both encodings on fresh machines and
// returns (per-instruction, aggregated) results.
func runBoth(t *testing.T, tc diffCase, arch isa.Arch, compute bool,
	exec func(*lower.Program, lower.Sink, bool)) (*sim.Stats, *hw.Machine) {
	t.Helper()
	_, s := tc.build(t)
	prog, err := lower.Build(s, isa.Lookup(arch))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	prof := hw.Lookup(arch)
	simM, err := sim.New(arch, prof.Caches)
	if err != nil {
		t.Fatal(err)
	}
	hwM, err := hw.NewMachine(prof)
	if err != nil {
		t.Fatal(err)
	}
	exec(prog, lower.Fanout{simM, hwM}, compute)
	if err := simM.CheckInvariants(); err != nil {
		t.Fatalf("cache invariants: %v", err)
	}
	return simM.Stats(), hwM
}

// TestBlockAggregationRandomSchedules fuzzes the same bit-identity property
// over random split/reorder/annotation mixes: the executor's fast paths
// (segmented spans, parent hoisting, per-iteration strength reduction) are
// gated on schedule shape, so random schedules exercise gate combinations
// the hand-picked cases miss.
func TestBlockAggregationRandomSchedules(t *testing.T) {
	rng := num.NewRNG(404)
	for trial := 0; trial < 60; trial++ {
		var wl func() *te.Workload
		switch trial % 3 {
		case 0:
			m, n, k := 5+rng.Intn(12), 3+rng.Intn(10), 5+rng.Intn(12)
			wl = func() *te.Workload { return te.MatMul(m, n, k) }
		case 1:
			g := rng.Intn(te.NumConvGroups)
			wl = func() *te.Workload { return te.ConvGroup(te.ScaleTiny, g) }
		default:
			b, in, out := 1+rng.Intn(4), 4+rng.Intn(12), 4+rng.Intn(12)
			wl = func() *te.Workload { return te.DenseBiasRelu(b, in, out) }
		}
		steps := randomScheduleSteps(rng, wl())
		arch := isa.Archs()[trial%3]
		tc := diffCase{name: "random", build: func(t *testing.T) (*te.Workload, *schedule.Schedule) {
			w := wl()
			s := schedule.New(w.Op)
			steps(s)
			return w, s
		}}
		refStats, refHW := runBoth(t, tc, arch, false, lower.ExecutePerInstruction)
		aggStats, aggHW := runBoth(t, tc, arch, false, lower.Execute)
		refStats.SimWallSeconds, aggStats.SimWallSeconds = 0, 0
		refStats.SinkEvents, aggStats.SinkEvents = 0, 0
		if !reflect.DeepEqual(refStats, aggStats) {
			t.Fatalf("trial %d (%s): sim stats differ:\nper-instr: %+v\naggregated: %+v",
				trial, arch, refStats, aggStats)
		}
		if refHW.Cycles() != aggHW.Cycles() || refHW.Mispredicts() != aggHW.Mispredicts() {
			t.Fatalf("trial %d (%s): hw cycles/mispredicts differ", trial, arch)
		}
	}
}

// randomScheduleSteps draws a random schedule transformation once and
// returns a closure replaying it on a fresh schedule (both encodings must
// build the identical schedule).
func randomScheduleSteps(rng *num.RNG, wl *te.Workload) func(*schedule.Schedule) {
	type splitStep struct{ leaf, factor int }
	var splits []splitStep
	probe := schedule.New(wl.Op)
	nSplits := rng.Intn(3)
	for i := 0; i < nSplits; i++ {
		li := rng.Intn(len(probe.Leaves))
		leaf := probe.Leaves[li]
		if leaf.Extent < 2 {
			continue
		}
		factor := 1 + rng.Intn(leaf.Extent)
		if _, _, err := probe.Split(leaf, factor); err == nil {
			splits = append(splits, splitStep{li, factor})
		}
	}
	perm := rng.Perm(len(probe.Leaves))
	unrollIdx := -1
	if rng.Float64() < 0.5 {
		unrollIdx = rng.Intn(len(perm))
	}
	vectorize := rng.Float64() < 0.5
	return func(s *schedule.Schedule) {
		for _, sp := range splits {
			_, _, _ = s.Split(s.Leaves[sp.leaf], sp.factor)
		}
		order := make([]*schedule.IterVar, len(perm))
		for i, p := range perm {
			order[i] = s.Leaves[p]
		}
		_ = s.Reorder(order)
		if unrollIdx >= 0 {
			if leaf := s.Leaves[unrollIdx]; leaf.Ann == schedule.AnnNone {
				_ = s.Unroll(leaf)
			}
		}
		last := s.Leaves[len(s.Leaves)-1]
		if vectorize && last.Kind() == te.Spatial && last.Ann == schedule.AnnNone {
			_ = s.Vectorize(last)
		}
	}
}

func TestBlockAggregationBitIdentical(t *testing.T) {
	for _, arch := range isa.Archs() {
		for _, tc := range diffCases() {
			for _, compute := range []bool{false, true} {
				name := string(arch) + "/" + tc.name
				if compute {
					name += "/computeValues"
				}
				t.Run(name, func(t *testing.T) {
					refStats, refHW := runBoth(t, tc, arch, compute, lower.ExecutePerInstruction)
					aggStats, aggHW := runBoth(t, tc, arch, compute, lower.Execute)

					// The aggregated encoding must deliver strictly fewer
					// protocol events; the statistics themselves are compared
					// with the diagnostics blanked.
					if aggStats.SinkEvents >= refStats.SinkEvents {
						t.Errorf("aggregation did not reduce events: %d vs %d",
							aggStats.SinkEvents, refStats.SinkEvents)
					}
					refStats.SimWallSeconds, aggStats.SimWallSeconds = 0, 0
					refStats.SinkEvents, aggStats.SinkEvents = 0, 0
					if !reflect.DeepEqual(refStats, aggStats) {
						t.Errorf("sim stats differ:\nper-instr: %+v\naggregated: %+v", refStats, aggStats)
					}
					if rc, ac := refHW.Cycles(), aggHW.Cycles(); rc != ac {
						t.Errorf("hw cycles differ: per-instr %v vs aggregated %v", rc, ac)
					}
					if rm, am := refHW.Mispredicts(), aggHW.Mispredicts(); rm != am {
						t.Errorf("hw mispredicts differ: %d vs %d", rm, am)
					}
				})
			}
		}
	}
}
