package lower

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/num"
	"repro/internal/schedule"
	"repro/internal/te"
	"repro/internal/tensor"
)

// regionSink validates that every data access lands inside a known region
// (an input tensor, the output tensor, or the spill stack) and every fetch
// lands inside the code segment.
type regionSink struct {
	t       *testing.T
	data    []region
	code    region
	checked uint64
}

type region struct {
	name   string
	lo, hi uint64 // [lo, hi)
}

func newRegionSink(t *testing.T, p *Program) *regionSink {
	rs := &regionSink{t: t}
	for _, in := range p.Op.Inputs {
		rs.data = append(rs.data, region{in.Name, in.Base, in.Base + in.Bytes()})
	}
	out := p.Op.Out
	rs.data = append(rs.data, region{out.Name, out.Base, out.Base + out.Bytes()})
	stackBytes := uint64(p.TileCount()) * tensor.ElemSize
	if stackBytes < 64 {
		stackBytes = 64
	}
	rs.data = append(rs.data, region{"stack", p.stackBase, p.stackBase + stackBytes})
	rs.code = region{"code", p.codeBase, p.codeBase + p.CodeBytes()}
	return rs
}

func (rs *regionSink) Consume(events []Event) {
	for i := range events {
		e := &events[i]
		if e.Kind == EvFetch {
			// Fetch events carry 64 B line addresses; the first line of the
			// segment may start below codeBase.
			if e.PC < rs.code.lo&^63 || e.PC >= rs.code.hi {
				rs.t.Errorf("fetch line %#x outside code segment [%#x,%#x)", e.PC, rs.code.lo, rs.code.hi)
				return
			}
			continue
		}
		if e.PC < rs.code.lo || e.PC >= rs.code.hi {
			rs.t.Errorf("PC %#x outside code segment [%#x,%#x)", e.PC, rs.code.lo, rs.code.hi)
			return
		}
		if !e.Class.IsLoad() && !e.Class.IsStore() {
			continue
		}
		rs.checked++
		lo, hi := e.Addr, e.Addr+uint64(e.Size)
		ok := false
		for _, r := range rs.data {
			if lo >= r.lo && hi <= r.hi {
				ok = true
				break
			}
		}
		if !ok {
			rs.t.Errorf("data access [%#x,%#x) (%s) outside all tensor/stack regions",
				lo, hi, e.Class)
			return
		}
	}
}

func (rs *regionSink) ConsumeCounts(_ *Counts) {}

// ConsumeLoop validates a uniform span by its corners: strided access
// addresses are affine in the row and iteration indices, so the extreme
// (row, iteration) pairs bound every access of the run.
func (rs *regionSink) ConsumeLoop(run *LoopRun) {
	rows := run.Rows
	if rows < 1 {
		rows = 1
	}
	for s := range run.Sites {
		site := &run.Sites[s]
		for _, j := range []int{0, rows - 1} {
			for _, i := range []int{0, run.Count - 1} {
				addr := site.Addr + uint64(int64(j)*site.RowStep+int64(i)*site.Step)
				lo, hi := addr, addr+uint64(site.Size)
				ok := false
				for _, r := range rs.data {
					if lo >= r.lo && hi <= r.hi {
						ok = true
						break
					}
				}
				if !ok {
					rs.t.Errorf("loop-run access [%#x,%#x) outside all tensor/stack regions", lo, hi)
					return
				}
				rs.checked++
			}
		}
	}
}

// Every address emitted by any random schedule must stay within its declared
// regions — the memory-safety invariant of the virtual address space.
func TestAllAddressesWithinRegions(t *testing.T) {
	rng := num.NewRNG(909)
	for trial := 0; trial < 20; trial++ {
		var wl *te.Workload
		switch trial % 4 {
		case 0:
			wl = te.ConvGroup(te.ScaleTiny, trial%te.NumConvGroups)
		case 1:
			wl = te.MatMul(6+rng.Intn(10), 4+rng.Intn(8), 6+rng.Intn(10))
		case 2:
			wl = te.MaxPool2d(1, 2, 8, 8, 2, 2)
		default:
			wl = te.DenseBiasRelu(2, 12, 8)
		}
		s := randomSchedule(rng, wl.Op)
		model := isa.Lookup(isa.Archs()[trial%3])
		p, err := Build(s, model)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rs := newRegionSink(t, p)
		Execute(p, rs, false)
		ExecutePerInstruction(p, rs, false)
		if t.Failed() {
			t.Fatalf("trial %d failed (schedule %s)", trial, s)
		}
		if rs.checked == 0 {
			t.Fatalf("trial %d: no data accesses checked", trial)
		}
	}
}

// Spilled schedules must confine their spill traffic to the stack region and
// never corrupt tensor data.
func TestSpillTrafficStaysOnStack(t *testing.T) {
	wl := te.MatMul(16, 8, 16)
	s := scheduleWithHugeTile(t, wl)
	p, err := Build(s, isa.Lookup(isa.X86))
	if err != nil {
		t.Fatal(err)
	}
	if p.SpillRegisters() == 0 {
		t.Fatal("test requires a spilling schedule")
	}
	rs := newRegionSink(t, p)
	Execute(p, rs, false)
	if t.Failed() {
		t.Fatal("spill traffic escaped its regions")
	}
}

func scheduleWithHugeTile(t *testing.T, wl *te.Workload) *schedule.Schedule {
	t.Helper()
	s := schedule.New(wl.Op)
	i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
	if err := s.Reorder([]*schedule.IterVar{k, i, j}); err != nil {
		t.Fatal(err)
	}
	return s
}
