package lower

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/num"
	"repro/internal/schedule"
	"repro/internal/te"
)

// fillInputs gives every input tensor deterministic non-trivial data.
func fillInputs(op *te.ComputeOp, seed uint64) {
	rng := num.NewRNG(seed)
	for _, in := range op.Inputs {
		in.Alloc()
		for i := range in.Data {
			in.Data[i] = float32(rng.Uniform(-2, 2))
		}
	}
}

// runAndCompare executes the program with value computation and checks the
// output against the reference evaluation.
func runAndCompare(t *testing.T, wl *te.Workload, s *schedule.Schedule, model isa.Model) *CountingSink {
	t.Helper()
	fillInputs(wl.Op, 42)
	p, err := Build(s, model)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sink := &CountingSink{}
	Execute(p, sink, true)
	got := append([]float32(nil), wl.Op.Out.Data...)
	wl.Op.ReferenceEval()
	want := wl.Op.Out.Data
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-3*(1+math.Abs(float64(want[i]))) {
			t.Fatalf("output[%d] = %v want %v (schedule %s)", i, got[i], want[i], s)
		}
	}
	return sink
}

func TestDefaultScheduleMatchesReference(t *testing.T) {
	for _, arch := range isa.Archs() {
		wl := te.MatMul(7, 5, 6)
		s := schedule.New(wl.Op)
		runAndCompare(t, wl, s, isa.Lookup(arch))
	}
}

func TestConvDefaultScheduleMatchesReference(t *testing.T) {
	for _, arch := range isa.Archs() {
		wl := te.ConvGroup(te.ScaleTiny, 0)
		s := schedule.New(wl.Op)
		runAndCompare(t, wl, s, isa.Lookup(arch))
	}
}

func TestTiledScheduleMatchesReference(t *testing.T) {
	wl := te.MatMul(16, 12, 16)
	s := schedule.New(wl.Op)
	i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
	_, ii, _ := s.Split(i, 4)
	jo, ji, _ := s.Split(j, 8)
	ko, ki, _ := s.Split(k, 3)
	if err := s.Reorder([]*schedule.IterVar{s.Leaves[0], jo, ko, ii, ki, ji}); err != nil {
		t.Fatal(err)
	}
	_ = s.Vectorize(ji)
	runAndCompare(t, wl, s, isa.Lookup(isa.X86))
}

func TestNonDivisibleSplitMatchesReference(t *testing.T) {
	// 10 split by 3 and 7 split by 4 both leave tails.
	wl := te.MatMul(10, 7, 9)
	s := schedule.New(wl.Op)
	_, _, _ = s.Split(s.Leaves[0], 3)
	_, _, _ = s.Split(s.Leaves[2], 4) // j
	runAndCompare(t, wl, s, isa.Lookup(isa.ARM))
}

func TestUnrolledScheduleMatchesReference(t *testing.T) {
	wl := te.MatMul(8, 6, 8)
	s := schedule.New(wl.Op)
	_, ki, _ := s.Split(s.Leaves[2], 3)
	_ = s.Unroll(ki)
	runAndCompare(t, wl, s, isa.Lookup(isa.RISCV))
}

func TestVectorTailMatchesReference(t *testing.T) {
	// j extent 13 vectorized on 8-lane x86: one full vector + 5-lane tail.
	wl := te.MatMul(4, 5, 13)
	s := schedule.New(wl.Op)
	_ = s.Vectorize(s.Leaves[1])
	// Reorder so j is innermost.
	i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
	_ = s.Reorder([]*schedule.IterVar{i, k, j})
	_ = s.Vectorize(j)
	runAndCompare(t, wl, s, isa.Lookup(isa.X86))
}

func TestConvPaddedVectorizedMatchesReference(t *testing.T) {
	wl := te.ConvGroup(te.ScaleTiny, 1) // stride 1, pad 1
	s := schedule.New(wl.Op)
	// vectorize ow (innermost already), reduce loops before it
	leaves := s.Leaves
	ow := leaves[3]
	order := []*schedule.IterVar{leaves[0], leaves[1], leaves[2], leaves[4], leaves[5], leaves[6], ow}
	if err := s.Reorder(order); err != nil {
		t.Fatal(err)
	}
	_ = s.Vectorize(ow)
	runAndCompare(t, wl, s, isa.Lookup(isa.X86))
}

func TestRegisterTileSpillsMatchReference(t *testing.T) {
	// Put a huge spatial tile inside the reduction: forces spills everywhere.
	wl := te.MatMul(16, 8, 16)
	s := schedule.New(wl.Op)
	i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
	if err := s.Reorder([]*schedule.IterVar{k, i, j}); err != nil {
		t.Fatal(err)
	}
	_ = i
	fillInputs(wl.Op, 7)
	p, err := Build(s, isa.Lookup(isa.X86))
	if err != nil {
		t.Fatal(err)
	}
	if p.TileCount() != 256 {
		t.Fatalf("tile count = %d want 256", p.TileCount())
	}
	if p.SpillRegisters() == 0 {
		t.Fatal("256 accumulators must spill on 16-register x86")
	}
	sink := &CountingSink{}
	Execute(p, sink, true)
	got := append([]float32(nil), wl.Op.Out.Data...)
	wl.Op.ReferenceEval()
	for i2 := range got {
		if math.Abs(float64(got[i2]-wl.Op.Out.Data[i2])) > 1e-3 {
			t.Fatalf("spilled output[%d] = %v want %v", i2, got[i2], wl.Op.Out.Data[i2])
		}
	}
	// Spilled FMAs produce extra loads+stores beyond the pure stream.
	if sink.Stores < uint64(p.TileCount()) {
		t.Fatalf("stores = %d, want at least one per output point", sink.Stores)
	}
}

// The central property: ANY random valid schedule computes the reference
// result, on every ISA.
func TestRandomSchedulesMatchReferenceProperty(t *testing.T) {
	rng := num.NewRNG(2024)
	models := []isa.Model{isa.Lookup(isa.X86), isa.Lookup(isa.ARM), isa.Lookup(isa.RISCV)}
	for trial := 0; trial < 30; trial++ {
		var wl *te.Workload
		switch trial % 3 {
		case 0:
			wl = te.MatMul(5+rng.Intn(12), 3+rng.Intn(10), 5+rng.Intn(12))
		case 1:
			wl = te.ConvGroup(te.ScaleTiny, rng.Intn(te.NumConvGroups))
		case 2:
			wl = te.DenseBiasRelu(1+rng.Intn(4), 4+rng.Intn(12), 4+rng.Intn(12))
		}
		s := randomSchedule(rng, wl.Op)
		model := models[trial%len(models)]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v (schedule %s)", trial, r, s)
				}
			}()
			runAndCompare(t, wl, s, model)
		}()
	}
}

// randomSchedule applies a random mix of splits, a random reorder, and
// random annotations, always producing a valid schedule.
func randomSchedule(rng *num.RNG, op *te.ComputeOp) *schedule.Schedule {
	s := schedule.New(op)
	// Random splits.
	nSplits := rng.Intn(3)
	for i := 0; i < nSplits; i++ {
		leaf := s.Leaves[rng.Intn(len(s.Leaves))]
		if leaf.Extent < 2 {
			continue
		}
		factor := 1 + rng.Intn(leaf.Extent)
		_, _, _ = s.Split(leaf, factor)
	}
	// Random permutation.
	perm := rng.Perm(len(s.Leaves))
	order := make([]*schedule.IterVar, len(perm))
	for i, p := range perm {
		order[i] = s.Leaves[p]
	}
	_ = s.Reorder(order)
	// Random annotations: maybe unroll a random loop, maybe vectorize the
	// innermost if spatial.
	if rng.Float64() < 0.5 {
		leaf := s.Leaves[rng.Intn(len(s.Leaves))]
		if leaf.Ann == schedule.AnnNone {
			_ = s.Unroll(leaf)
		}
	}
	lastLeaf := s.Leaves[len(s.Leaves)-1]
	if lastLeaf.Kind() == te.Spatial && lastLeaf.Ann == schedule.AnnNone && rng.Float64() < 0.5 {
		_ = s.Vectorize(lastLeaf)
	}
	return s
}

func TestBuildRejectsVectorizedReduce(t *testing.T) {
	wl := te.MatMul(8, 8, 8)
	s := schedule.New(wl.Op)
	_ = s.Vectorize(s.Leaves[2]) // k is reduce and innermost
	if _, err := Build(s, isa.Lookup(isa.X86)); err == nil {
		t.Fatal("vectorized reduction must be rejected")
	}
}

func TestRiscvDegradesVectorize(t *testing.T) {
	wl := te.MatMul(8, 8, 16)
	s := schedule.New(wl.Op)
	i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
	_ = s.Reorder([]*schedule.IterVar{i, k, j})
	_ = s.Vectorize(j)
	p, err := Build(s, isa.Lookup(isa.RISCV))
	if err != nil {
		t.Fatal(err)
	}
	sink := &CountingSink{}
	Execute(p, sink, false)
	if sink.ByClass[isa.VLoad] != 0 || sink.ByClass[isa.VFMA] != 0 {
		t.Fatal("RISC-V must not emit vector instructions")
	}
}

func TestVectorizationReducesInstructionCount(t *testing.T) {
	build := func(vec bool) *CountingSink {
		wl := te.MatMul(8, 8, 32)
		s := schedule.New(wl.Op)
		i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
		_ = s.Reorder([]*schedule.IterVar{i, k, j})
		if vec {
			_ = s.Vectorize(j)
		}
		p, err := Build(s, isa.Lookup(isa.X86))
		if err != nil {
			t.Fatal(err)
		}
		sink := &CountingSink{}
		Execute(p, sink, false)
		return sink
	}
	scalar := build(false)
	vector := build(true)
	if vector.Total >= scalar.Total {
		t.Fatalf("vectorized total %d not below scalar %d", vector.Total, scalar.Total)
	}
	if vector.ByClass[isa.VFMA] == 0 {
		t.Fatal("vectorized build emitted no VFMA")
	}
}

func TestUnrollEliminatesBranches(t *testing.T) {
	build := func(unroll bool) *CountingSink {
		wl := te.MatMul(8, 16, 8)
		s := schedule.New(wl.Op)
		k := s.Leaves[2]
		if unroll {
			_ = s.Unroll(k)
		}
		p, err := Build(s, isa.Lookup(isa.RISCV))
		if err != nil {
			t.Fatal(err)
		}
		sink := &CountingSink{}
		Execute(p, sink, false)
		return sink
	}
	rolled := build(false)
	unrolled := build(true)
	if unrolled.ByClass[isa.Branch] >= rolled.ByClass[isa.Branch] {
		t.Fatalf("unroll did not reduce branches: %d vs %d",
			unrolled.ByClass[isa.Branch], rolled.ByClass[isa.Branch])
	}
}

func TestUnrollGrowsCodeFootprint(t *testing.T) {
	build := func(unroll bool) *Program {
		wl := te.MatMul(8, 16, 8)
		s := schedule.New(wl.Op)
		if unroll {
			_ = s.Unroll(s.Leaves[2])
		}
		p, err := Build(s, isa.Lookup(isa.X86))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if build(true).CodeBytes() <= build(false).CodeBytes() {
		t.Fatal("unrolling must grow the code footprint")
	}
}

func TestHoistingReducesLoads(t *testing.T) {
	// In i,j,k order, A[i,k] and B[k,j] both depend on k (innermost): 2 loads
	// per MAC. In i,k,j order, A[i,k] hoists out of j: ~1 load per MAC.
	build := func(kInner bool) *CountingSink {
		wl := te.MatMul(8, 8, 8)
		s := schedule.New(wl.Op)
		i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
		if !kInner {
			_ = s.Reorder([]*schedule.IterVar{i, k, j})
		}
		p, err := Build(s, isa.Lookup(isa.RISCV))
		if err != nil {
			t.Fatal(err)
		}
		sink := &CountingSink{}
		Execute(p, sink, false)
		return sink
	}
	withK := build(true)
	withJ := build(false)
	if withJ.Loads >= withK.Loads {
		t.Fatalf("hoisting did not reduce loads: %d vs %d", withJ.Loads, withK.Loads)
	}
}

func TestInstructionCountClosedForm(t *testing.T) {
	// Plain 4x4x4 matmul on RISC-V, i,j,k order, no annotations:
	// preheader 8; per (i,j): guards 0; k loop: 2 loads+1 FMA+2 overhead ×4;
	// j level hoists nothing (both accesses depend on k).
	wl := te.MatMul(4, 4, 4)
	s := schedule.New(wl.Op)
	p, err := Build(s, isa.Lookup(isa.RISCV))
	if err != nil {
		t.Fatal(err)
	}
	sink := &CountingSink{}
	Execute(p, sink, false)
	// loads: 2 per MAC = 128; stores: 16; FMA: 64.
	if sink.Loads != 128 {
		t.Fatalf("loads = %d want 128", sink.Loads)
	}
	if sink.Stores != 16 {
		t.Fatalf("stores = %d want 16", sink.Stores)
	}
	if sink.ByClass[isa.FMA] != 64 {
		t.Fatalf("FMA = %d want 64", sink.ByClass[isa.FMA])
	}
	// Branches: k loop 4 per (i,j)=64, j loop 4 per i=16, i loop 4,
	// store loop: 16 total (one per j per i... store loop of tile {k? no}).
	// The tile is empty (no spatial inside reduce), so stores happen in the
	// per-(i,j) store phase: no extra loop branches.
	wantBranches := uint64(64 + 16 + 4)
	if sink.ByClass[isa.Branch] != wantBranches {
		t.Fatalf("branches = %d want %d", sink.ByClass[isa.Branch], wantBranches)
	}
}

func TestLoopExitFlags(t *testing.T) {
	wl := te.MatMul(4, 4, 4)
	s := schedule.New(wl.Op)
	p, err := Build(s, isa.Lookup(isa.RISCV))
	if err != nil {
		t.Fatal(err)
	}
	var exits uint64
	sink := sinkFunc(func(events []Event) {
		for _, e := range events {
			if e.Class == isa.Branch && e.Flags&FlagLoopExit != 0 {
				exits++
			}
		}
	})
	ExecutePerInstruction(p, sink, false)
	// k exits: 16; j exits: 4; i exits: 1.
	if exits != 21 {
		t.Fatalf("loop exits = %d want 21", exits)
	}
	// The aggregated encoding reports the same tally through bulk counts.
	agg := &CountingSink{}
	Execute(p, agg, false)
	if agg.LoopExits != 21 {
		t.Fatalf("aggregated loop exits = %d want 21", agg.LoopExits)
	}
}

type sinkFunc func([]Event)

func (f sinkFunc) Consume(events []Event)  { f(events) }
func (f sinkFunc) ConsumeLoop(_ *LoopRun)  {}
func (f sinkFunc) ConsumeCounts(_ *Counts) {}

func TestFanoutDuplicates(t *testing.T) {
	a, b := &CountingSink{}, &CountingSink{}
	wl := te.MatMul(4, 4, 4)
	p, err := Build(schedule.New(wl.Op), isa.Lookup(isa.X86))
	if err != nil {
		t.Fatal(err)
	}
	Execute(p, Fanout{a, b}, false)
	if a.Total == 0 || a.Total != b.Total {
		t.Fatalf("fanout mismatch: %d vs %d", a.Total, b.Total)
	}
}

func TestExecutionDeterminism(t *testing.T) {
	wl := te.ConvGroup(te.ScaleTiny, 2)
	s := schedule.New(wl.Op)
	p, err := Build(s, isa.Lookup(isa.ARM))
	if err != nil {
		t.Fatal(err)
	}
	a, b := &CountingSink{}, &CountingSink{}
	Execute(p, a, false)
	Execute(p, b, false)
	if a.Total != b.Total || a.Loads != b.Loads || a.Stores != b.Stores {
		t.Fatal("re-execution must be deterministic")
	}
}

func TestStaticInstrEstimateOrder(t *testing.T) {
	wl := te.ConvGroup(te.ScaleTiny, 1)
	s := schedule.New(wl.Op)
	p, err := Build(s, isa.Lookup(isa.RISCV))
	if err != nil {
		t.Fatal(err)
	}
	sink := &CountingSink{}
	Execute(p, sink, false)
	est := p.StaticInstrEstimate()
	actual := int64(sink.Total)
	ratio := float64(est) / float64(actual)
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("static estimate %d vs actual %d (ratio %.2f) out of range", est, actual, ratio)
	}
}

func TestPaddedLoadsAreGuarded(t *testing.T) {
	// Padding must produce guard branches and skip OOB loads: the load count
	// must be below the unguarded bound.
	wl := te.ConvGroup(te.ScaleTiny, 1) // pad 1
	s := schedule.New(wl.Op)
	p, err := Build(s, isa.Lookup(isa.RISCV))
	if err != nil {
		t.Fatal(err)
	}
	sink := &CountingSink{}
	Execute(p, sink, false)
	macs := uint64(wl.Op.MACs())
	if sink.Loads >= 2*macs {
		t.Fatalf("loads = %d, expected < %d because padded loads are skipped", sink.Loads, 2*macs)
	}
	if sink.ByClass[isa.Branch] == 0 {
		t.Fatal("no branches recorded")
	}
}

func TestProgramAccessorsSane(t *testing.T) {
	wl := te.MatMul(8, 8, 8)
	p, err := Build(schedule.New(wl.Op), isa.Lookup(isa.X86))
	if err != nil {
		t.Fatal(err)
	}
	if p.CodeBytes() == 0 {
		t.Fatal("code size must be positive")
	}
	if p.TileCount() != 1 {
		t.Fatalf("default matmul tile = %d want 1", p.TileCount())
	}
	if p.SpillRegisters() != 0 {
		t.Fatal("default matmul must not spill")
	}
}
