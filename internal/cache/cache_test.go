package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/num"
)

func smallCache(t *testing.T, size, lineB, assoc int, next *Cache) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", SizeBytes: size, LineBytes: lineB, Assoc: assoc}, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigSets(t *testing.T) {
	// Table I x86 L1D: 32K, 64 B lines, 8-way → 64 sets.
	c := Config{Name: "L1D", SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 8}
	if c.Sets() != 64 {
		t.Fatalf("sets = %d want 64", c.Sets())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, LineBytes: 64, Assoc: 1},
		{Name: "b", SizeBytes: 1000, LineBytes: 64, Assoc: 1},        // not divisible
		{Name: "c", SizeBytes: 3 * 64 * 2, LineBytes: 64, Assoc: 2},  // 3 sets
		{Name: "d", SizeBytes: 48 * 2 * 64, LineBytes: 48, Assoc: 2}, // line not pow2
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v must be invalid", cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache(t, 1024, 64, 2, nil)
	c.Access(0, 4, false)
	if c.Stats.ReadMisses() != 1 || c.Stats.ReadHits() != 0 {
		t.Fatalf("cold access: %+v", c.Stats)
	}
	c.Access(60, 4, false) // same line
	if c.Stats.ReadHits() != 1 {
		t.Fatalf("same-line access must hit: %+v", c.Stats)
	}
	if c.MemAccesses != 1 {
		t.Fatalf("memory accesses = %d want 1", c.MemAccesses)
	}
}

func TestLineSpanningAccess(t *testing.T) {
	c := smallCache(t, 1024, 64, 2, nil)
	c.Access(60, 8, false) // spans lines 0 and 1
	if c.Stats.ReadAccesses() != 2 || c.Stats.ReadMisses() != 2 {
		t.Fatalf("spanning access: %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 sets × 2 ways, 64 B lines = 256 B.
	c := smallCache(t, 256, 64, 2, nil)
	// All to set 0: line addresses 0, 2, 4 (even line index → set 0).
	a0, a2, a4 := uint64(0), uint64(2*64), uint64(4*64)
	c.Access(a0, 4, false)
	c.Access(a2, 4, false)
	c.Access(a0, 4, false) // a0 now MRU
	c.Access(a4, 4, false) // evicts a2 (LRU)
	if c.Stats.ReadRepl() != 1 {
		t.Fatalf("replacements = %d want 1", c.Stats.ReadRepl())
	}
	c.Access(a0, 4, false)
	if c.Stats.ReadHits() != 2 { // a0 hit twice total
		t.Fatalf("a0 must still be resident: %+v", c.Stats)
	}
	c.Access(a2, 4, false)
	if c.Stats.ReadMisses() != 4 { // a0,a2,a4 cold + a2 again
		t.Fatalf("a2 must have been evicted: %+v", c.Stats)
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	l2 := smallCache(t, 4096, 64, 4, nil)
	l1 := smallCache(t, 128, 64, 1, l2) // 2 sets, direct mapped
	// Write to line 0 (set 0): write-allocate reads from L2.
	l1.Access(0, 4, true)
	if l1.Stats.WriteMisses() != 1 {
		t.Fatalf("write miss expected: %+v", l1.Stats)
	}
	if l2.Stats.ReadAccesses() != 1 {
		t.Fatalf("write-allocate must fetch from next level: %+v", l2.Stats)
	}
	// Conflict: line 2 maps to set 0 as well; dirty line 0 must write back.
	l1.Access(2*64, 4, false)
	if l1.Stats.Writebacks != 1 {
		t.Fatalf("writeback expected: %+v", l1.Stats)
	}
	if l2.Stats.WriteAccesses() != 1 {
		t.Fatalf("writeback must reach L2 as a write: %+v", l2.Stats)
	}
}

func TestAssociativityHoldsWorkingSet(t *testing.T) {
	// 8-way 1-set cache holds 8 distinct lines without eviction.
	c := smallCache(t, 8*64, 64, 8, nil)
	for i := 0; i < 8; i++ {
		c.Access(uint64(i*64), 4, false)
	}
	for i := 0; i < 8; i++ {
		c.Access(uint64(i*64), 4, false)
	}
	if c.Stats.ReadHits() != 8 || c.Stats.ReadMisses() != 8 {
		t.Fatalf("8-line working set must fit: %+v", c.Stats)
	}
	if c.Stats.ReadRepl() != 0 {
		t.Fatalf("no replacements expected: %+v", c.Stats)
	}
}

func TestThrashingSet(t *testing.T) {
	// 9 lines cycling through an 8-way set thrash with LRU.
	c := smallCache(t, 8*64, 64, 8, nil)
	for round := 0; round < 3; round++ {
		for i := 0; i < 9; i++ {
			c.Access(uint64(i*64), 4, false)
		}
	}
	if c.Stats.ReadHits() != 0 {
		t.Fatalf("LRU must thrash on 9-line cycle: %+v", c.Stats)
	}
}

func TestResetClears(t *testing.T) {
	c := smallCache(t, 1024, 64, 2, nil)
	c.Access(0, 4, true)
	c.Reset()
	if c.Stats.Accesses() != 0 || c.MemAccesses != 0 {
		t.Fatal("reset must clear stats")
	}
	c.Access(0, 4, false)
	if c.Stats.ReadMisses() != 1 {
		t.Fatal("reset must clear contents")
	}
}

func TestZeroSizeAccessCountsOnce(t *testing.T) {
	c := smallCache(t, 1024, 64, 2, nil)
	c.Access(10, 0, false)
	if c.Stats.ReadAccesses() != 1 {
		t.Fatalf("zero-size access should count one line: %+v", c.Stats)
	}
}

func TestStatsCheckDetectsCorruption(t *testing.T) {
	// Accesses = hits + misses holds structurally (accesses are derived), so
	// the remaining invariant is replacements never exceeding misses.
	s := Stats{Hits: [2]uint64{1}, Misses: [2]uint64{1}, Repl: [2]uint64{5}}
	if err := s.Check(); err == nil {
		t.Fatal("read repl > misses must fail Check")
	}
	s = Stats{Hits: [2]uint64{0, 1}, Misses: [2]uint64{0, 1}, Repl: [2]uint64{0, 5}}
	if err := s.Check(); err == nil {
		t.Fatal("write repl > misses must fail Check")
	}
	s = Stats{Hits: [2]uint64{4, 2}, Misses: [2]uint64{3, 1}, Repl: [2]uint64{2, 1}}
	if err := s.Check(); err != nil {
		t.Fatalf("consistent stats must pass Check: %v", err)
	}
	if s.ReadAccesses() != 7 || s.WriteAccesses() != 3 || s.Accesses() != 10 {
		t.Fatalf("derived accesses wrong: %+v", s)
	}
}

// Property: counters stay consistent under random access streams, and a
// fully-covered working set re-read gives 100% hits.
func TestCacheInvariantsProperty(t *testing.T) {
	rng := num.NewRNG(5)
	f := func() bool {
		assoc := 1 << rng.Intn(3)
		sets := 1 << rng.Intn(4)
		c, err := New(Config{Name: "p", SizeBytes: sets * assoc * 64, LineBytes: 64, Assoc: assoc}, nil)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			c.Access(uint64(rng.Intn(64*1024)), uint32(1+rng.Intn(8)), rng.Float64() < 0.3)
		}
		return c.Stats.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyTableIX86(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		L1D: Config{Name: "L1D", SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 8},
		L1I: Config{Name: "L1I", SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 8},
		L2:  Config{Name: "L2", SizeBytes: 512 * 1024, LineBytes: 64, Assoc: 8},
		L3:  Config{Name: "L3", SizeBytes: 32 * 1024 * 1024, LineBytes: 64, Assoc: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels()) != 4 {
		t.Fatalf("levels = %d want 4", len(h.Levels()))
	}
	if h.L2.Config().Sets() != 1024 || h.L3.Config().Sets() != 32768 {
		t.Fatalf("Table I set counts wrong: L2=%d L3=%d", h.L2.Config().Sets(), h.L3.Config().Sets())
	}
	// A data miss must propagate L1D → L2 → L3 → memory.
	h.Data(4096, 4, false)
	if h.L1D.Stats.ReadMisses() != 1 || h.L2.Stats.ReadMisses() != 1 || h.L3.Stats.ReadMisses() != 1 {
		t.Fatal("miss did not propagate through hierarchy")
	}
	if h.L3.MemAccesses != 1 {
		t.Fatalf("memory accesses = %d", h.L3.MemAccesses)
	}
	if err := h.CheckStats(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyNoL3(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		L1D: Config{Name: "L1D", SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 8},
		L1I: Config{Name: "L1I", SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 8},
		L2:  Config{Name: "L2", SizeBytes: 2048 * 1024, LineBytes: 64, Assoc: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.L3 != nil || len(h.Levels()) != 3 {
		t.Fatal("RISC-V hierarchy must have no L3")
	}
	h.Data(0, 4, false)
	if h.L2.MemAccesses != 1 {
		t.Fatal("L2 must talk to memory directly without L3")
	}
}

func TestInstructionPathSharesL2(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		L1D: Config{Name: "L1D", SizeBytes: 1024, LineBytes: 64, Assoc: 2},
		L1I: Config{Name: "L1I", SizeBytes: 1024, LineBytes: 64, Assoc: 2},
		L2:  Config{Name: "L2", SizeBytes: 8192, LineBytes: 64, Assoc: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Fetch(0, 4)
	h.Data(0, 4, false)
	// L1I miss then L1D miss both go to L2; second one hits in L2.
	if h.L2.Stats.ReadAccesses() != 2 || h.L2.Stats.ReadHits() != 1 {
		t.Fatalf("shared L2 stats: %+v", h.L2.Stats)
	}
}

func TestHierarchyReset(t *testing.T) {
	h, _ := NewHierarchy(HierarchyConfig{
		L1D: Config{Name: "L1D", SizeBytes: 1024, LineBytes: 64, Assoc: 2},
		L1I: Config{Name: "L1I", SizeBytes: 1024, LineBytes: 64, Assoc: 2},
		L2:  Config{Name: "L2", SizeBytes: 8192, LineBytes: 64, Assoc: 2},
	})
	h.Data(0, 4, true)
	h.Fetch(64, 4)
	h.Reset()
	if h.L1D.Stats.Accesses() != 0 || h.L1I.Stats.Accesses() != 0 || h.L2.Stats.Accesses() != 0 {
		t.Fatal("reset must clear all levels")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{Name: "bad", SizeBytes: 7}, nil)
}
