package cache

import "fmt"

// HierarchyConfig describes a full CPU cache hierarchy in the shape of
// Figure 3/Table I: split L1 (data + instruction), a unified L2, and an
// optional last-level L3 (only the x86 CPU of the paper has one).
type HierarchyConfig struct {
	L1D Config
	L1I Config
	L2  Config
	// L3 is optional; a zero SizeBytes means no L3.
	L3 Config
}

// HasL3 reports whether the hierarchy includes a last-level cache.
func (h HierarchyConfig) HasL3() bool { return h.L3.SizeBytes > 0 }

// Hierarchy is an instantiated cache hierarchy: L1D and L1I both miss into
// the unified L2, which misses into L3 (if present) and then memory.
type Hierarchy struct {
	Cfg HierarchyConfig
	L1D *Cache
	L1I *Cache
	L2  *Cache
	L3  *Cache // nil when absent
}

// NewHierarchy builds the hierarchy from a configuration.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	var l3 *Cache
	var err error
	if cfg.HasL3() {
		l3, err = New(cfg.L3, nil)
		if err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	l2, err := New(cfg.L2, l3)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	l1d, err := New(cfg.L1D, l2)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	l1i, err := New(cfg.L1I, l2)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Hierarchy{Cfg: cfg, L1D: l1d, L1I: l1i, L2: l2, L3: l3}, nil
}

// Data performs a data access of size bytes and returns the service depth
// (1 = L1D, 2 = L2, 3 = L3 or memory, ...).
func (h *Hierarchy) Data(addr uint64, size uint32, write bool) int {
	return h.L1D.Access(addr, size, write)
}

// Fetch performs an instruction fetch (read) of size bytes and returns the
// service depth.
func (h *Hierarchy) Fetch(addr uint64, size uint32) int {
	return h.L1I.Access(addr, size, false)
}

// RunSite is one strided data access of a uniform loop span (the cache-side
// mirror of the executor protocol's loop-run site).
type RunSite struct {
	Addr    uint64
	Step    int64
	RowStep int64
	Size    uint16
	Write   bool
}

// DataRun replays rows×count iterations of interleaved strided accesses
// through the data hierarchy, in exactly the order per-access Data calls
// would take. Living inside the cache package lets it reach accessLine
// directly, which removes the per-access wrapper cost of the hottest
// simulator loop.
func (h *Hierarchy) DataRun(count, rows int, sites []RunSite) {
	l1d := h.L1D
	if rows < 1 {
		rows = 1
	}
	for j := 0; j < rows; j++ {
		for i := 0; i < count; i++ {
			for s := range sites {
				st := &sites[s]
				addr := st.Addr + uint64(int64(j)*st.RowStep+int64(i)*st.Step)
				first := addr >> l1d.lineShift
				if st.Size <= 1 || (addr+uint64(st.Size)-1)>>l1d.lineShift == first {
					l1d.accessLine(first, st.Write)
				} else {
					l1d.accessSpan(first, (addr+uint64(st.Size)-1)>>l1d.lineShift, st.Write)
				}
			}
		}
	}
}

// Levels returns the instantiated levels with names, in L1D, L1I, L2[, L3]
// order (the fixed feature ordering used by the predictor).
func (h *Hierarchy) Levels() []*Cache {
	out := []*Cache{h.L1D, h.L1I, h.L2}
	if h.L3 != nil {
		out = append(out, h.L3)
	}
	return out
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels() {
		c.Reset()
	}
}

// CheckStats validates counter invariants on every level.
func (h *Hierarchy) CheckStats() error {
	for _, c := range h.Levels() {
		if err := c.Stats.Check(); err != nil {
			return fmt.Errorf("%s: %w", c.Config().Name, err)
		}
	}
	return nil
}
