package cache

import (
	"fmt"
	"math/bits"
)

// HierarchyConfig describes a full CPU cache hierarchy in the shape of
// Figure 3/Table I: split L1 (data + instruction), a unified L2, and an
// optional last-level L3 (only the x86 CPU of the paper has one).
type HierarchyConfig struct {
	L1D Config
	L1I Config
	L2  Config
	// L3 is optional; a zero SizeBytes means no L3.
	L3 Config
}

// HasL3 reports whether the hierarchy includes a last-level cache.
func (h HierarchyConfig) HasL3() bool { return h.L3.SizeBytes > 0 }

// Hierarchy is an instantiated cache hierarchy: L1D and L1I both miss into
// the unified L2, which misses into L3 (if present) and then memory.
type Hierarchy struct {
	Cfg HierarchyConfig
	L1D *Cache
	L1I *Cache
	L2  *Cache
	L3  *Cache // nil when absent

	// touches is the reusable classification journal of the resident-span
	// fast path (Hierarchies are single-goroutine, like sim machines).
	touches []touch
}

// NewHierarchy builds the hierarchy from a configuration.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	var l3 *Cache
	var err error
	if cfg.HasL3() {
		l3, err = New(cfg.L3, nil)
		if err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	l2, err := New(cfg.L2, l3)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	l1d, err := New(cfg.L1D, l2)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	l1i, err := New(cfg.L1I, l2)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Hierarchy{Cfg: cfg, L1D: l1d, L1I: l1i, L2: l2, L3: l3}, nil
}

// Data performs a data access of size bytes and returns the service depth
// (1 = L1D, 2 = L2, 3 = L3 or memory, ...).
func (h *Hierarchy) Data(addr uint64, size uint32, write bool) int {
	return h.L1D.Access(addr, size, write)
}

// Fetch performs an instruction fetch (read) of size bytes and returns the
// service depth.
func (h *Hierarchy) Fetch(addr uint64, size uint32) int {
	return h.L1I.Access(addr, size, false)
}

// RunSite is one strided data access of a uniform loop span (the cache-side
// mirror of the executor protocol's loop-run site): the address at the
// first iteration plus per-iteration (Step), per-row (RowStep) and per-plane
// (PlaneStep) deltas.
type RunSite struct {
	Addr      uint64
	Step      int64
	RowStep   int64
	PlaneStep int64
	Size      uint16
	Write     bool
}

// DataRun replays planes×rows×count iterations of interleaved strided
// accesses through the data hierarchy, in exactly the order per-access Data
// calls would take. Living inside the cache package lets it reach accessLine
// directly, which removes the per-access wrapper cost of the hottest
// simulator loop. Spans whose lines are all resident in L1D take the bulk
// resident fast path (see TryDataRunResident); the result is bit-identical
// either way.
func (h *Hierarchy) DataRun(count, rows, planes int, sites []RunSite) {
	if rows < 1 {
		rows = 1
	}
	if planes < 1 {
		planes = 1
	}
	if h.TryDataRunResident(count, rows, planes, sites) {
		return
	}
	l1d := h.L1D
	for k := 0; k < planes; k++ {
		for j := 0; j < rows; j++ {
			for i := 0; i < count; i++ {
				for s := range sites {
					st := &sites[s]
					addr := st.Addr + uint64(int64(k)*st.PlaneStep+int64(j)*st.RowStep+int64(i)*st.Step)
					w := b2i(st.Write)
					first := addr >> l1d.lineShift
					if st.Size <= 1 || (addr+uint64(st.Size)-1)>>l1d.lineShift == first {
						l1d.accessLine(first, w)
					} else {
						l1d.accessSpan(first, (addr+uint64(st.Size)-1)>>l1d.lineShift, w)
					}
				}
			}
		}
	}
}

// touch is one distinct line visit recorded by the resident-span
// classification pass: the line's flat way-storage index, its set, the LRU
// stamp the line holds after the span (the stamp of its last access within
// the span), and the dirty bit contributed by write sites.
type touch struct {
	stamp uint64
	dirty uint64
	idx   int32
	set   int32
}

const (
	// residentMinAccesses gates the fast path: spans with fewer accesses
	// replay scalar — the classification pass would cost more than it saves.
	residentMinAccesses = 8
	// maxResidentTouches bounds the classification journal (pathologically
	// line-dense spans fall back to the scalar replay).
	maxResidentTouches = 4096
)

// TryDataRunResident attempts the resident-span fast path: when every line
// the span touches is already resident in L1D, no access can miss — hits
// never evict — so the span's only effects are hit counters, LRU stamps,
// MRU slots and dirty bits. Those are computed in O(distinct line visits)
// instead of O(accesses): a read-only probe pass walks each site's strided
// line segments, records the final stamp each line would carry (the stamp
// of its last access, derived arithmetically from the interleaved iteration
// order), and bails without side effects on the first non-resident line.
// The commit pass then applies stamps max-wise (a line revisited across
// rows/planes/sites keeps its latest stamp) and maintains the per-set MRU
// invariant, leaving cache state bit-identical to the scalar replay.
//
// The probe pass enumerates per site, not in access order — the journal is
// order-independent — which lets a site whose rows (and planes) continue
// each other in memory (RowStep == Count*Step, PlaneStep == Rows*RowStep)
// collapse into one linear walk over its whole address range. The stamp of
// a line's last access needs only that access's iteration ordinal, which
// the linear walk preserves.
//
// Sites whose accesses could straddle a line boundary (size not a
// power-of-two divisor of the line size, or misaligned address/steps) and
// negative inner steps fall back. It reports whether the span was applied.
func (h *Hierarchy) TryDataRunResident(count, rows, planes int, sites []RunSite) bool {
	l1 := h.L1D
	ns := len(sites)
	if ns == 0 || count < 1 || rows < 1 || planes < 1 {
		return false
	}
	perSite := planes * rows * count
	if perSite*ns < residentMinAccesses {
		return false
	}
	shift := l1.lineShift
	lineBytes := uint64(1) << shift
	tr := h.touches[:0]
	stamp0 := l1.stamp
	nsU := uint64(ns)
	ordRow := uint64(count)           // iteration ordinals per row
	ordPlane := uint64(rows) * ordRow // and per plane
	for s := range sites {
		st := &sites[s]
		sz := uint64(st.Size)
		if sz == 0 {
			sz = 1
		}
		// Alignment test: a power-of-two size that divides the line size,
		// with address and live steps all size-aligned, can never cross a
		// line boundary (two's complement keeps the low bits of negative
		// steps, so the OR works for them too).
		or := st.Addr | uint64(st.Step)
		if rows > 1 {
			or |= uint64(st.RowStep)
		}
		if planes > 1 {
			or |= uint64(st.PlaneStep)
		}
		if st.Step < 0 || sz&(sz-1) != 0 || sz > lineBytes || or&(sz-1) != 0 {
			h.touches = tr
			return false
		}
		step := uint64(st.Step)
		// Power-of-two steps (the overwhelmingly common strides) replace the
		// per-line division below by a shift; stepLog < 0 marks the rest.
		stepLog := -1
		if step&(step-1) == 0 {
			stepLog = bits.TrailingZeros64(step)
		}
		dirty := uint64(b2i(st.Write)) << dirtyShift
		stampOff := uint64(s) + 1
		// Fold rows (then planes) into the inner walk when they continue
		// each other in memory: the access ordinal stays the segment-local
		// index, so stamps are unchanged and line visits collapse.
		cEff := uint64(count)
		rEff, pEff := rows, planes
		rowStep, planeStep := st.RowStep, st.PlaneStep
		if rEff > 1 && uint64(rowStep) == cEff*step {
			cEff *= uint64(rEff)
			rEff = 1
		}
		if rEff == 1 && pEff > 1 && uint64(planeStep) == cEff*step {
			cEff *= uint64(pEff)
			pEff = 1
		}
		cm1 := cEff - 1
		for k := 0; k < pEff; k++ {
			segBase := st.Addr + uint64(int64(k)*planeStep)
			ordK := uint64(k) * ordPlane
			for j := 0; j < rEff; j++ {
				base := segBase + uint64(int64(j)*rowStep)
				ordBase := ordK + uint64(j)*ordRow
				line := base >> shift
				last := (base + cm1*step) >> shift
				if line == last {
					// Whole segment on one line (always for Step == 0).
					idx, set := l1.findLine(line)
					if idx < 0 || len(tr) >= maxResidentTouches {
						h.touches = tr
						return false
					}
					tr = append(tr, touch{
						stamp: stamp0 + (ordBase+cm1)*nsU + stampOff,
						dirty: dirty, idx: idx, set: set})
					continue
				}
				for i := uint64(0); ; {
					iLast := cm1
					if line != last {
						span := ((line + 1) << shift) - 1 - base
						if stepLog >= 0 {
							iLast = span >> stepLog
						} else {
							iLast = span / step
						}
					}
					idx, set := l1.findLine(line)
					if idx < 0 || len(tr) >= maxResidentTouches {
						h.touches = tr
						return false
					}
					tr = append(tr, touch{
						stamp: stamp0 + (ordBase+iLast)*nsU + stampOff,
						dirty: dirty, idx: idx, set: set})
					if iLast == cm1 {
						break
					}
					i = iLast + 1
					line = (base + i*step) >> shift
				}
			}
		}
	}
	// Commit: every access is an L1D hit. Stamps apply max-wise — within
	// one (plane,row) a line shared by two sites gets its later stamp even
	// when the earlier-indexed site touched it at a later iteration — and
	// the MRU slot follows the running per-set maximum (pre-span MRU always
	// holds the set's max LRU, and every span stamp exceeds pre-span ones).
	assoc := int32(l1.assoc)
	for t := range tr {
		e := &tr[t]
		ln := &l1.lines[e.idx]
		ln.tag |= e.dirty
		if e.stamp > ln.lru {
			ln.lru = e.stamp
			if e.stamp >= l1.lines[e.set*assoc+l1.mru[e.set]].lru {
				l1.mru[e.set] = e.idx - e.set*assoc
			}
		}
	}
	for s := range sites {
		l1.Stats.Hits[b2i(sites[s].Write)] += uint64(perSite)
	}
	l1.stamp = stamp0 + uint64(perSite)*nsU
	h.touches = tr[:0]
	return true
}

// Levels returns the instantiated levels with names, in L1D, L1I, L2[, L3]
// order (the fixed feature ordering used by the predictor).
func (h *Hierarchy) Levels() []*Cache {
	out := []*Cache{h.L1D, h.L1I, h.L2}
	if h.L3 != nil {
		out = append(out, h.L3)
	}
	return out
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels() {
		c.Reset()
	}
}

// CheckStats validates counter invariants on every level.
func (h *Hierarchy) CheckStats() error {
	for _, c := range h.Levels() {
		if err := c.Stats.Check(); err != nil {
			return fmt.Errorf("%s: %w", c.Config().Name, err)
		}
	}
	return nil
}
