// Package cache implements the parameterizable N-way set-associative cache
// hierarchy of the paper (§II-B, Table I): per-level LRU caches with
// write-back/write-allocate policy, chained so that misses propagate to the
// next level, and full per-level statistics (read/write accesses, hits,
// misses, and replacements) — the quantities the score predictor consumes
// (§III-D).
package cache

import "fmt"

// Config describes one cache level's geometry.
type Config struct {
	// Name labels the level (e.g. "L1D").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the cache-line size (64 B for all Table I CPUs).
	LineBytes int
	// Assoc is the number of ways per set.
	Assoc int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Validate checks that the geometry is consistent and power-of-two indexed.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// Stats are the per-level counters the predictor features are built from.
type Stats struct {
	ReadAccesses  uint64
	ReadHits      uint64
	ReadMisses    uint64
	WriteAccesses uint64
	WriteHits     uint64
	WriteMisses   uint64
	// ReadRepl/WriteRepl count valid-line evictions caused by read/write
	// allocations.
	ReadRepl  uint64
	WriteRepl uint64
	// Writebacks counts dirty evictions forwarded to the next level.
	Writebacks uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.ReadAccesses + s.WriteAccesses }

// Check verifies counter consistency invariants.
func (s Stats) Check() error {
	if s.ReadHits+s.ReadMisses != s.ReadAccesses {
		return fmt.Errorf("cache: read hits %d + misses %d != accesses %d", s.ReadHits, s.ReadMisses, s.ReadAccesses)
	}
	if s.WriteHits+s.WriteMisses != s.WriteAccesses {
		return fmt.Errorf("cache: write hits %d + misses %d != accesses %d", s.WriteHits, s.WriteMisses, s.WriteAccesses)
	}
	if s.ReadRepl > s.ReadMisses {
		return fmt.Errorf("cache: read replacements %d > read misses %d", s.ReadRepl, s.ReadMisses)
	}
	if s.WriteRepl > s.WriteMisses {
		return fmt.Errorf("cache: write replacements %d > write misses %d", s.WriteRepl, s.WriteMisses)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-use stamp; larger = more recent
}

// Cache is one level of a set-associative write-back/write-allocate cache.
// A nil next level means misses are serviced by memory (counted by the
// owning Hierarchy).
type Cache struct {
	cfg       Config
	sets      [][]line
	next      *Cache
	stamp     uint64
	lineShift uint
	setMask   uint64
	// Stats for this level.
	Stats Stats
	// MemAccesses counts accesses this level forwarded to memory (only
	// meaningful for the last level).
	MemAccesses uint64
}

// New builds a cache level; next may be nil for the last level.
func New(cfg Config, next *Cache) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, next: next}
	sets := cfg.Sets()
	c.sets = make([][]line, sets)
	backing := make([]line, sets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	for shift := uint(0); ; shift++ {
		if 1<<shift == cfg.LineBytes {
			c.lineShift = shift
			break
		}
	}
	c.setMask = uint64(sets - 1)
	return c, nil
}

// MustNew is New that panics on invalid geometry (for static tables).
func MustNew(cfg Config, next *Cache) *Cache {
	c, err := New(cfg, next)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the level's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access performs one access covering [addr, addr+size); accesses spanning
// multiple lines touch each line once. write selects the write path.
// It returns the deepest service depth across the touched lines: 1 means
// this level hit, 2 the next level, and so on; a miss in the last level
// returns one beyond the level count (memory).
func (c *Cache) Access(addr uint64, size uint32, write bool) int {
	if size == 0 {
		size = 1
	}
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	depth := 0
	for ln := first; ln <= last; ln++ {
		if d := c.accessLine(ln, write); d > depth {
			depth = d
		}
	}
	return depth
}

// accessLine handles one line-granular access and returns the service depth.
func (c *Cache) accessLine(lineAddr uint64, write bool) int {
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr // full line address as tag keeps the mapping injective
	c.stamp++
	if write {
		c.Stats.WriteAccesses++
	} else {
		c.Stats.ReadAccesses++
	}
	// Hit?
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
				c.Stats.WriteHits++
			} else {
				c.Stats.ReadHits++
			}
			return 1
		}
	}
	// Miss.
	if write {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	// Fetch from next level (write-allocate: the line is read first).
	depth := 2
	if c.next != nil {
		depth = 1 + c.next.accessLine(lineAddr, false)
	} else {
		c.MemAccesses++
	}
	// Choose victim: invalid way first, else LRU.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if victim < 0 || set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		// Valid line evicted: replacement.
		if write {
			c.Stats.WriteRepl++
		} else {
			c.Stats.ReadRepl++
		}
		if set[victim].dirty {
			c.Stats.Writebacks++
			if c.next != nil {
				c.next.accessLine(set[victim].tag, true)
			} else {
				c.MemAccesses++
			}
		}
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return depth
}

// Reset clears contents and statistics (cold caches, as the paper flushes
// caches before each benchmark repetition).
func (c *Cache) Reset() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			c.sets[si][wi] = line{}
		}
	}
	c.Stats = Stats{}
	c.MemAccesses = 0
	c.stamp = 0
}
