// Package cache implements the parameterizable N-way set-associative cache
// hierarchy of the paper (§II-B, Table I): per-level LRU caches with
// write-back/write-allocate policy, chained so that misses propagate to the
// next level, and full per-level statistics (read/write accesses, hits,
// misses, and replacements) — the quantities the score predictor consumes
// (§III-D).
//
// # Hierarchy overview
//
// Config describes one level's geometry (size, line, associativity) and
// HierarchyConfig composes the levels: split L1D/L1I, a unified L2, and an
// optional L3, as the Table I targets have. Hierarchy instantiates them
// chained — Data and Fetch are the two entry points, routing demand
// accesses through L1D or L1I and letting each miss recurse into the next
// level, so one simulated access updates every level it touches exactly as
// the modelled inclusive hierarchy would. Each level's Stats (reachable
// through Levels) holds the per-level counters; they are stored as
// write-indexed arrays so the simulator hot path is branch-free, with the
// read/write split recovered by accessor methods (ReadAccesses,
// WriteMisses, ...).
//
// Replay entry points, fastest first:
//
//   - DataRun replays a whole uniform loop span (a lower.LoopRun) of
//     strided access sites in interleaved iteration order.
//   - TryDataRunResident is the resident-span fast path: if every line a
//     span touches is already resident in L1D, the span provably cannot
//     miss or evict, so hit counters, LRU stamps, dirty bits and MRU slots
//     are bulk-applied in O(distinct lines) — it probes side-effect-free
//     and reports false (leaving state untouched) the moment a
//     non-resident line appears, falling back to DataRun.
//   - Data/Fetch are the scalar per-access path, used for cold and
//     conflicting accesses and as the bit-identity reference in tests.
//
// All paths produce bit-identical statistics; the fuzz suites in
// datarun_test.go compare full internal state (lines, LRU order, MRU
// slots, stamps) against the scalar reference.
package cache

import "fmt"

// Config describes one cache level's geometry.
type Config struct {
	// Name labels the level (e.g. "L1D").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the cache-line size (64 B for all Table I CPUs).
	LineBytes int
	// Assoc is the number of ways per set.
	Assoc int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Validate checks that the geometry is consistent and power-of-two indexed.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// Counter indices of the Stats arrays: every per-kind counter is a [2]
// array indexed by KindRead/KindWrite, so the access hot path computes the
// index once (w := b2i(write)) instead of branching on the kind at every
// counter update.
const (
	KindRead  = 0
	KindWrite = 1
)

// b2i maps an access's write flag to its Stats counter index.
func b2i(write bool) int {
	if write {
		return KindWrite
	}
	return KindRead
}

// Stats are the per-level counters the predictor features are built from.
// Accesses are not stored: hits + misses is an invariant of the model, so
// the totals are derived by the accessor methods, which preserve the
// previous field-based API surface (ReadAccesses, WriteHits, ...) for the
// metrics/features consumers.
type Stats struct {
	// Hits/Misses count line accesses served by / missing this level,
	// indexed by KindRead/KindWrite.
	Hits   [2]uint64
	Misses [2]uint64
	// Repl counts valid-line evictions caused by read/write allocations,
	// indexed by KindRead/KindWrite.
	Repl [2]uint64
	// Writebacks counts dirty evictions forwarded to the next level.
	Writebacks uint64
}

// ReadAccesses returns total read accesses (hits + misses).
func (s Stats) ReadAccesses() uint64 { return s.Hits[KindRead] + s.Misses[KindRead] }

// WriteAccesses returns total write accesses (hits + misses).
func (s Stats) WriteAccesses() uint64 { return s.Hits[KindWrite] + s.Misses[KindWrite] }

// ReadHits returns read accesses that hit this level.
func (s Stats) ReadHits() uint64 { return s.Hits[KindRead] }

// WriteHits returns write accesses that hit this level.
func (s Stats) WriteHits() uint64 { return s.Hits[KindWrite] }

// ReadMisses returns read accesses that missed this level.
func (s Stats) ReadMisses() uint64 { return s.Misses[KindRead] }

// WriteMisses returns write accesses that missed this level.
func (s Stats) WriteMisses() uint64 { return s.Misses[KindWrite] }

// ReadRepl returns valid-line evictions caused by read allocations.
func (s Stats) ReadRepl() uint64 { return s.Repl[KindRead] }

// WriteRepl returns valid-line evictions caused by write allocations.
func (s Stats) WriteRepl() uint64 { return s.Repl[KindWrite] }

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 {
	return s.Hits[KindRead] + s.Misses[KindRead] + s.Hits[KindWrite] + s.Misses[KindWrite]
}

// Check verifies counter consistency invariants. (Hits + misses = accesses
// holds structurally now that accesses are derived.)
func (s Stats) Check() error {
	if s.Repl[KindRead] > s.Misses[KindRead] {
		return fmt.Errorf("cache: read replacements %d > read misses %d", s.Repl[KindRead], s.Misses[KindRead])
	}
	if s.Repl[KindWrite] > s.Misses[KindWrite] {
		return fmt.Errorf("cache: write replacements %d > write misses %d", s.Repl[KindWrite], s.Misses[KindWrite])
	}
	return nil
}

// line is one cache way. The valid and dirty flags are packed into the top
// bits of the tag word, keeping the struct at 16 bytes so a set scan
// touches half the memory of a bool-padded layout; line addresses never
// reach bit 62 (the virtual address space is tiny).
type line struct {
	tag uint64 // lineAddr | lineValid | lineDirty (0 = invalid)
	lru uint64 // last-use stamp; larger = more recent
}

const (
	dirtyShift  = 62
	lineValid   = uint64(1) << 63
	lineDirty   = uint64(1) << dirtyShift
	lineTagMask = lineDirty - 1
)

// Cache is one level of a set-associative write-back/write-allocate cache.
// A nil next level means misses are serviced by memory (counted by the
// owning Hierarchy).
type Cache struct {
	cfg Config
	// lines is the flat way storage: set s occupies lines[s*assoc:(s+1)*assoc].
	lines     []line
	assoc     int
	next      *Cache
	stamp     uint64
	lineShift uint
	setMask   uint64
	// mru holds the most-recently-used way per set; cache-friendly access
	// streams hit it on the first probe, skipping the way scan.
	mru []int32
	// Stats for this level.
	Stats Stats
	// MemAccesses counts accesses this level forwarded to memory (only
	// meaningful for the last level).
	MemAccesses uint64
}

// New builds a cache level; next may be nil for the last level.
func New(cfg Config, next *Cache) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, next: next, assoc: cfg.Assoc}
	sets := cfg.Sets()
	c.mru = make([]int32, sets)
	c.lines = make([]line, sets*cfg.Assoc)
	for shift := uint(0); ; shift++ {
		if 1<<shift == cfg.LineBytes {
			c.lineShift = shift
			break
		}
	}
	c.setMask = uint64(sets - 1)
	return c, nil
}

// MustNew is New that panics on invalid geometry (for static tables).
func MustNew(cfg Config, next *Cache) *Cache {
	c, err := New(cfg, next)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the level's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access performs one access covering [addr, addr+size); accesses spanning
// multiple lines touch each line once. write selects the write path.
// It returns the deepest service depth across the touched lines: 1 means
// this level hit, 2 the next level, and so on; a miss in the last level
// returns one beyond the level count (memory).
func (c *Cache) Access(addr uint64, size uint32, write bool) int {
	w := b2i(write)
	first := addr >> c.lineShift
	if size <= 1 || (addr+uint64(size)-1)>>c.lineShift == first {
		// Common case: the access stays within one line (kept small so the
		// whole call inlines into the simulator hot loops).
		return c.accessLine(first, w)
	}
	return c.accessSpan(first, (addr+uint64(size)-1)>>c.lineShift, w)
}

func (c *Cache) accessSpan(first, last uint64, w int) int {
	depth := 0
	for ln := first; ln <= last; ln++ {
		if d := c.accessLine(ln, w); d > depth {
			depth = d
		}
	}
	return depth
}

// accessLine handles one line-granular access and returns the service depth.
// w is the Stats counter index (KindRead/KindWrite); passing the index
// instead of a bool keeps the whole function branch-free on the access kind
// — counters index by w and the dirty bit is computed as w<<dirtyShift.
func (c *Cache) accessLine(lineAddr uint64, w int) int {
	si := lineAddr & c.setMask
	base := int(si) * c.assoc
	// Full line address as tag keeps the mapping injective; the valid bit
	// is part of the match word, so one compare tests validity and tag.
	tag := lineAddr | lineValid
	dirty := uint64(w) << dirtyShift
	c.stamp++
	// Hit? Probe the most-recently-used way first: temporally local streams
	// resolve there without scanning the set.
	if ln := &c.lines[base+int(c.mru[si])]; ln.tag&^lineDirty == tag {
		ln.lru = c.stamp
		ln.tag |= dirty
		c.Stats.Hits[w]++
		return 1
	}
	for i := 0; i < c.assoc; i++ {
		if ln := &c.lines[base+i]; ln.tag&^lineDirty == tag {
			ln.lru = c.stamp
			ln.tag |= dirty
			c.mru[si] = int32(i)
			c.Stats.Hits[w]++
			return 1
		}
	}
	// Miss.
	c.Stats.Misses[w]++
	// Fetch from next level (write-allocate: the line is read first).
	depth := 2
	if c.next != nil {
		depth = 1 + c.next.accessLine(lineAddr, KindRead)
	} else {
		c.MemAccesses++
	}
	// Choose victim: invalid way first, else LRU.
	victim := -1
	for i := 0; i < c.assoc; i++ {
		if c.lines[base+i].tag&lineValid == 0 {
			victim = i
			break
		}
		if victim < 0 || c.lines[base+i].lru < c.lines[base+victim].lru {
			victim = i
		}
	}
	v := &c.lines[base+victim]
	if v.tag&lineValid != 0 {
		// Valid line evicted: replacement.
		c.Stats.Repl[w]++
		if v.tag&lineDirty != 0 {
			c.Stats.Writebacks++
			if c.next != nil {
				c.next.accessLine(v.tag&lineTagMask, KindWrite)
			} else {
				c.MemAccesses++
			}
		}
	}
	*v = line{tag: tag | dirty, lru: c.stamp}
	c.mru[si] = int32(victim)
	return depth
}

// findLine probes for a resident line and returns its flat way-storage
// index and set (-1 when absent), with no side effects on stats or LRU
// state — the read-only probe of the resident-span fast path.
func (c *Cache) findLine(lineAddr uint64) (int32, int32) {
	si := int32(lineAddr & c.setMask)
	base := si * int32(c.assoc)
	tag := lineAddr | lineValid
	if idx := base + c.mru[si]; c.lines[idx].tag&^lineDirty == tag {
		return idx, si
	}
	for i := int32(0); i < int32(c.assoc); i++ {
		if c.lines[base+i].tag&^lineDirty == tag {
			return base + i, si
		}
	}
	return -1, si
}

// Reset clears contents and statistics (cold caches, as the paper flushes
// caches before each benchmark repetition).
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.Stats = Stats{}
	c.MemAccesses = 0
	c.stamp = 0
}
