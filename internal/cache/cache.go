// Package cache implements the parameterizable N-way set-associative cache
// hierarchy of the paper (§II-B, Table I): per-level LRU caches with
// write-back/write-allocate policy, chained so that misses propagate to the
// next level, and full per-level statistics (read/write accesses, hits,
// misses, and replacements) — the quantities the score predictor consumes
// (§III-D).
package cache

import "fmt"

// Config describes one cache level's geometry.
type Config struct {
	// Name labels the level (e.g. "L1D").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the cache-line size (64 B for all Table I CPUs).
	LineBytes int
	// Assoc is the number of ways per set.
	Assoc int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Validate checks that the geometry is consistent and power-of-two indexed.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// Stats are the per-level counters the predictor features are built from.
type Stats struct {
	ReadAccesses  uint64
	ReadHits      uint64
	ReadMisses    uint64
	WriteAccesses uint64
	WriteHits     uint64
	WriteMisses   uint64
	// ReadRepl/WriteRepl count valid-line evictions caused by read/write
	// allocations.
	ReadRepl  uint64
	WriteRepl uint64
	// Writebacks counts dirty evictions forwarded to the next level.
	Writebacks uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.ReadAccesses + s.WriteAccesses }

// Check verifies counter consistency invariants.
func (s Stats) Check() error {
	if s.ReadHits+s.ReadMisses != s.ReadAccesses {
		return fmt.Errorf("cache: read hits %d + misses %d != accesses %d", s.ReadHits, s.ReadMisses, s.ReadAccesses)
	}
	if s.WriteHits+s.WriteMisses != s.WriteAccesses {
		return fmt.Errorf("cache: write hits %d + misses %d != accesses %d", s.WriteHits, s.WriteMisses, s.WriteAccesses)
	}
	if s.ReadRepl > s.ReadMisses {
		return fmt.Errorf("cache: read replacements %d > read misses %d", s.ReadRepl, s.ReadMisses)
	}
	if s.WriteRepl > s.WriteMisses {
		return fmt.Errorf("cache: write replacements %d > write misses %d", s.WriteRepl, s.WriteMisses)
	}
	return nil
}

// line is one cache way. The valid and dirty flags are packed into the top
// bits of the tag word, keeping the struct at 16 bytes so a set scan
// touches half the memory of a bool-padded layout; line addresses never
// reach bit 62 (the virtual address space is tiny).
type line struct {
	tag uint64 // lineAddr | lineValid | lineDirty (0 = invalid)
	lru uint64 // last-use stamp; larger = more recent
}

const (
	lineValid   = uint64(1) << 63
	lineDirty   = uint64(1) << 62
	lineTagMask = lineDirty - 1
)

// Cache is one level of a set-associative write-back/write-allocate cache.
// A nil next level means misses are serviced by memory (counted by the
// owning Hierarchy).
type Cache struct {
	cfg Config
	// lines is the flat way storage: set s occupies lines[s*assoc:(s+1)*assoc].
	lines     []line
	assoc     int
	next      *Cache
	stamp     uint64
	lineShift uint
	setMask   uint64
	// mru holds the most-recently-used way per set; cache-friendly access
	// streams hit it on the first probe, skipping the way scan.
	mru []int32
	// Stats for this level.
	Stats Stats
	// MemAccesses counts accesses this level forwarded to memory (only
	// meaningful for the last level).
	MemAccesses uint64
}

// New builds a cache level; next may be nil for the last level.
func New(cfg Config, next *Cache) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, next: next, assoc: cfg.Assoc}
	sets := cfg.Sets()
	c.mru = make([]int32, sets)
	c.lines = make([]line, sets*cfg.Assoc)
	for shift := uint(0); ; shift++ {
		if 1<<shift == cfg.LineBytes {
			c.lineShift = shift
			break
		}
	}
	c.setMask = uint64(sets - 1)
	return c, nil
}

// MustNew is New that panics on invalid geometry (for static tables).
func MustNew(cfg Config, next *Cache) *Cache {
	c, err := New(cfg, next)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the level's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access performs one access covering [addr, addr+size); accesses spanning
// multiple lines touch each line once. write selects the write path.
// It returns the deepest service depth across the touched lines: 1 means
// this level hit, 2 the next level, and so on; a miss in the last level
// returns one beyond the level count (memory).
func (c *Cache) Access(addr uint64, size uint32, write bool) int {
	first := addr >> c.lineShift
	if size <= 1 || (addr+uint64(size)-1)>>c.lineShift == first {
		// Common case: the access stays within one line (kept small so the
		// whole call inlines into the simulator hot loops).
		return c.accessLine(first, write)
	}
	return c.accessSpan(first, (addr+uint64(size)-1)>>c.lineShift, write)
}

func (c *Cache) accessSpan(first, last uint64, write bool) int {
	depth := 0
	for ln := first; ln <= last; ln++ {
		if d := c.accessLine(ln, write); d > depth {
			depth = d
		}
	}
	return depth
}

// accessLine handles one line-granular access and returns the service depth.
func (c *Cache) accessLine(lineAddr uint64, write bool) int {
	si := lineAddr & c.setMask
	base := int(si) * c.assoc
	// Full line address as tag keeps the mapping injective; the valid bit
	// is part of the match word, so one compare tests validity and tag.
	tag := lineAddr | lineValid
	c.stamp++
	if write {
		c.Stats.WriteAccesses++
	} else {
		c.Stats.ReadAccesses++
	}
	// Hit? Probe the most-recently-used way first: temporally local streams
	// resolve there without scanning the set.
	if ln := &c.lines[base+int(c.mru[si])]; ln.tag&^lineDirty == tag {
		ln.lru = c.stamp
		if write {
			ln.tag |= lineDirty
			c.Stats.WriteHits++
		} else {
			c.Stats.ReadHits++
		}
		return 1
	}
	for i := 0; i < c.assoc; i++ {
		if ln := &c.lines[base+i]; ln.tag&^lineDirty == tag {
			ln.lru = c.stamp
			c.mru[si] = int32(i)
			if write {
				ln.tag |= lineDirty
				c.Stats.WriteHits++
			} else {
				c.Stats.ReadHits++
			}
			return 1
		}
	}
	// Miss.
	if write {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	// Fetch from next level (write-allocate: the line is read first).
	depth := 2
	if c.next != nil {
		depth = 1 + c.next.accessLine(lineAddr, false)
	} else {
		c.MemAccesses++
	}
	// Choose victim: invalid way first, else LRU.
	victim := -1
	for i := 0; i < c.assoc; i++ {
		if c.lines[base+i].tag&lineValid == 0 {
			victim = i
			break
		}
		if victim < 0 || c.lines[base+i].lru < c.lines[base+victim].lru {
			victim = i
		}
	}
	v := &c.lines[base+victim]
	if v.tag&lineValid != 0 {
		// Valid line evicted: replacement.
		if write {
			c.Stats.WriteRepl++
		} else {
			c.Stats.ReadRepl++
		}
		if v.tag&lineDirty != 0 {
			c.Stats.Writebacks++
			if c.next != nil {
				c.next.accessLine(v.tag&lineTagMask, true)
			} else {
				c.MemAccesses++
			}
		}
	}
	newTag := tag
	if write {
		newTag |= lineDirty
	}
	*v = line{tag: newTag, lru: c.stamp}
	c.mru[si] = int32(victim)
	return depth
}

// Reset clears contents and statistics (cold caches, as the paper flushes
// caches before each benchmark repetition).
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.Stats = Stats{}
	c.MemAccesses = 0
	c.stamp = 0
}
