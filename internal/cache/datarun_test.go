package cache

import (
	"fmt"
	"testing"

	"repro/internal/num"
)

// testHierarchy builds a small hierarchy whose L1D is tight enough that
// random spans regularly overflow sets (distinct lines per set > assoc),
// forcing evictions mid-span and rejections of the resident fast path.
func testHierarchy(t *testing.T, l1Sets, l1Assoc int) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyConfig{
		L1D: Config{Name: "L1D", SizeBytes: l1Sets * l1Assoc * 64, LineBytes: 64, Assoc: l1Assoc},
		L1I: Config{Name: "L1I", SizeBytes: 1024, LineBytes: 64, Assoc: 2},
		L2:  Config{Name: "L2", SizeBytes: 16 * 1024, LineBytes: 64, Assoc: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// referenceDataRun is the per-access replay the fast path must be
// bit-identical to: every access goes through the public Data path in
// interleaved iteration order.
func referenceDataRun(h *Hierarchy, count, rows, planes int, sites []RunSite) {
	if rows < 1 {
		rows = 1
	}
	if planes < 1 {
		planes = 1
	}
	for k := 0; k < planes; k++ {
		for j := 0; j < rows; j++ {
			for i := 0; i < count; i++ {
				for s := range sites {
					st := &sites[s]
					addr := st.Addr + uint64(int64(k)*st.PlaneStep+int64(j)*st.RowStep+int64(i)*st.Step)
					h.Data(addr, uint32(st.Size), st.Write)
				}
			}
		}
	}
}

// equalCacheState compares the complete internal state of two caches:
// every way's tag/dirty/LRU stamp, the MRU slots, the global stamp and all
// counters. This is what "bit-identical" means for the model — a stats-only
// comparison would miss LRU divergence that only shows up accesses later.
func equalCacheState(a, b *Cache) error {
	if a.stamp != b.stamp {
		return fmt.Errorf("stamp %d != %d", a.stamp, b.stamp)
	}
	if a.Stats != b.Stats {
		return fmt.Errorf("stats %+v != %+v", a.Stats, b.Stats)
	}
	if a.MemAccesses != b.MemAccesses {
		return fmt.Errorf("mem accesses %d != %d", a.MemAccesses, b.MemAccesses)
	}
	for i := range a.lines {
		if a.lines[i] != b.lines[i] {
			return fmt.Errorf("line %d: %+v != %+v", i, a.lines[i], b.lines[i])
		}
	}
	for i := range a.mru {
		if a.mru[i] != b.mru[i] {
			return fmt.Errorf("mru[%d]: %d != %d", i, a.mru[i], b.mru[i])
		}
	}
	return nil
}

func equalHierarchyState(a, b *Hierarchy) error {
	for i, lv := range a.Levels() {
		if err := equalCacheState(lv, b.Levels()[i]); err != nil {
			return fmt.Errorf("%s: %w", lv.Config().Name, err)
		}
	}
	return nil
}

// randomSpan draws one LoopRun-shaped span. Steps, sizes and addresses are
// biased to cover the fast path's edge cases: zero and negative steps,
// non-power-of-two steps and sizes, misaligned bases (multi-line accessSpan
// crossings), row/plane strides that fold into contiguous walks, and
// strides that slam every row into the same set.
func randomSpan(rng *num.RNG, setSpan int64, compact bool) (count, rows, planes int, sites []RunSite) {
	count = 1 + rng.Intn(40)
	rows = 1 + rng.Intn(4)
	planes = 1 + rng.Intn(3)
	steps := []int64{0, 4, 4, 4, 8, 12, 64, 100, -4, -8}
	sizes := []uint16{1, 4, 4, 4, 8, 16, 12}
	addrRange := 1 << 14
	if compact {
		// Footprint small enough to sit fully in a 4 KiB L1D once warmed.
		count = 2 + rng.Intn(10)
		steps = []int64{0, 4, 4, 8}
		sizes = []uint16{4, 4, 4, 8}
		addrRange = 2048
	}
	ns := 1 + rng.Intn(3)
	for s := 0; s < ns; s++ {
		step := steps[rng.Intn(len(steps))]
		rowStep := []int64{0, 4, int64(count) * step, 112, setSpan, -64}[rng.Intn(6)]
		planeStep := []int64{0, int64(rows) * rowStep, 3136, setSpan * 2}[rng.Intn(4)]
		if compact {
			rowStep = []int64{0, int64(count) * step, 112}[rng.Intn(3)]
			planeStep = []int64{0, int64(rows) * rowStep, 256}[rng.Intn(3)]
		}
		addr := uint64(rng.Intn(addrRange))
		if rng.Float64() < 0.7 {
			addr &^= 3 // mostly element-aligned, sometimes not
		}
		sites = append(sites, RunSite{
			Addr:      addr,
			Step:      step,
			RowStep:   rowStep,
			PlaneStep: planeStep,
			Size:      sizes[rng.Intn(len(sizes))],
			Write:     rng.Float64() < 0.25,
		})
	}
	return count, rows, planes, sites
}

// TestDataRunBitIdenticalFuzz replays random spans through DataRun (which
// takes the resident fast path whenever it can) and through the per-access
// reference on twin hierarchies, requiring the complete cache state to stay
// equal after every span. Pre-warm accesses and tight L1D geometries make
// both outcomes common: spans fully resident (fast path applies) and spans
// that miss or conflict (fast path must reject without side effects).
func TestDataRunBitIdenticalFuzz(t *testing.T) {
	rng := num.NewRNG(77)
	fastTaken, fallback := 0, 0
	for trial := 0; trial < 400; trial++ {
		// Even trials use tight geometries that force conflicts; odd trials
		// use a roomy L1D and compact spans so warmed replays go resident.
		sets, assoc := 1<<(1+rng.Intn(4)), 1<<rng.Intn(3)
		compact := trial%2 == 1
		if compact {
			sets, assoc = 16, 4
		}
		fast := testHierarchy(t, sets, assoc)
		ref := testHierarchy(t, sets, assoc)
		// Pre-warm both with an identical random access stream so residency
		// state at span entry varies per trial.
		for i := 0; i < rng.Intn(300); i++ {
			addr := uint64(rng.Intn(1 << 13))
			size := uint32(1 + rng.Intn(8))
			write := rng.Float64() < 0.3
			fast.Data(addr, size, write)
			ref.Data(addr, size, write)
		}
		setSpan := int64(sets * 64) // row stride hitting one set every row
		for span := 0; span < 4; span++ {
			count, rows, planes, sites := randomSpan(rng, setSpan, compact)
			// Replaying the same span twice makes the second pass hit warm
			// lines — the resident fast path's home turf — while the first
			// pass covers cold and mixed residency.
			for rep := 0; rep < 2; rep++ {
				// Tally which path DataRun will take (probe on a throwaway
				// clone so the tally itself cannot perturb the comparison).
				probe := testHierarchy(t, sets, assoc)
				copyHierarchyState(probe, fast)
				if probe.TryDataRunResident(count, rows, planes, sites) {
					fastTaken++
				} else {
					fallback++
				}
				fast.DataRun(count, rows, planes, sites)
				referenceDataRun(ref, count, rows, planes, sites)
				if err := equalHierarchyState(fast, ref); err != nil {
					t.Fatalf("trial %d span %d rep %d (count=%d rows=%d planes=%d sites=%+v): %v",
						trial, span, rep, count, rows, planes, sites, err)
				}
			}
		}
	}
	if fastTaken == 0 || fallback == 0 {
		t.Fatalf("fuzz must exercise both paths: fast=%d fallback=%d", fastTaken, fallback)
	}
	t.Logf("spans via fast path: %d, via scalar fallback: %d", fastTaken, fallback)
}

// copyHierarchyState clones the complete mutable state of src into dst
// (same geometry assumed).
func copyHierarchyState(dst, src *Hierarchy) {
	for i, lv := range src.Levels() {
		d := dst.Levels()[i]
		copy(d.lines, lv.lines)
		copy(d.mru, lv.mru)
		d.stamp = lv.stamp
		d.Stats = lv.Stats
		d.MemAccesses = lv.MemAccesses
	}
}

// TestDataRunResidentRejectsWithoutSideEffects pins the fast path's abort
// contract: a span that probes some resident lines before hitting a
// non-resident one must leave the hierarchy untouched.
func TestDataRunResidentRejectsWithoutSideEffects(t *testing.T) {
	h := testHierarchy(t, 4, 2)
	// Make lines 0 and 1 resident; line 100 is not.
	h.Data(0, 4, false)
	h.Data(64, 4, false)
	before := testHierarchy(t, 4, 2)
	copyHierarchyState(before, h)
	sites := []RunSite{
		{Addr: 0, Step: 4, Size: 4},        // resident
		{Addr: 100 * 64, Step: 4, Size: 4}, // not resident
	}
	if h.TryDataRunResident(16, 1, 1, sites) {
		t.Fatal("span with a non-resident line must be rejected")
	}
	if err := equalHierarchyState(h, before); err != nil {
		t.Fatalf("rejected span mutated state: %v", err)
	}
}

// TestDataRunResidentSetConflictFallsBack forces more distinct lines into
// one set than it has ways: they cannot all be resident, so the fast path
// must reject and the scalar replay must evict — and both must agree.
func TestDataRunResidentSetConflictFallsBack(t *testing.T) {
	const sets, assoc = 4, 2
	fast := testHierarchy(t, sets, assoc)
	ref := testHierarchy(t, sets, assoc)
	setSpan := int64(sets * 64)
	// rows alias to the same set: 3 distinct lines for 2 ways.
	sites := []RunSite{{Addr: 0, Step: 4, RowStep: setSpan, Size: 4}}
	fast.DataRun(16, 3, 1, sites)
	referenceDataRun(ref, 16, 3, 1, sites)
	if err := equalHierarchyState(fast, ref); err != nil {
		t.Fatal(err)
	}
	if got := fast.L1D.Stats.ReadRepl(); got == 0 {
		t.Fatal("set-conflict span must evict in a 2-way set")
	}
}

// TestDataRunCrossingSpansFallBack drives accesses that straddle line
// boundaries (accessSpan path) through DataRun: the fast path must refuse
// them (misaligned size/address) and the fallback must count one access
// per touched line, exactly like the reference.
func TestDataRunCrossingSpansFallBack(t *testing.T) {
	fast := testHierarchy(t, 8, 2)
	ref := testHierarchy(t, 8, 2)
	// 8-byte accesses at 60 mod 64: every access covers two lines.
	sites := []RunSite{{Addr: 60, Step: 64, Size: 8}}
	fast.DataRun(12, 1, 1, sites)
	referenceDataRun(ref, 12, 1, 1, sites)
	if err := equalHierarchyState(fast, ref); err != nil {
		t.Fatal(err)
	}
	if got := fast.L1D.Stats.ReadAccesses(); got != 24 {
		t.Fatalf("12 crossing accesses must touch 24 lines, got %d", got)
	}
}

// TestDataRunResidentAppliesBulk pins the happy path: a fully-resident 3D
// span must be applied (all hits, no misses) and leave state identical to
// the reference replay.
func TestDataRunResidentAppliesBulk(t *testing.T) {
	fast := testHierarchy(t, 8, 4)
	ref := testHierarchy(t, 8, 4)
	sites := []RunSite{
		{Addr: 0, Step: 4, RowStep: 48, PlaneStep: 192, Size: 4},
		{Addr: 1024, Step: 4, RowStep: 12, PlaneStep: 36, Size: 4, Write: true},
	}
	// Warm every line the span will touch.
	referenceDataRun(fast, 3, 4, 2, sites)
	referenceDataRun(ref, 3, 4, 2, sites)
	misses := fast.L1D.Stats.ReadMisses() + fast.L1D.Stats.WriteMisses()
	if !fast.TryDataRunResident(3, 4, 2, sites) {
		t.Fatal("warmed span must take the fast path")
	}
	referenceDataRun(ref, 3, 4, 2, sites)
	if err := equalHierarchyState(fast, ref); err != nil {
		t.Fatal(err)
	}
	if got := fast.L1D.Stats.ReadMisses() + fast.L1D.Stats.WriteMisses(); got != misses {
		t.Fatalf("resident span must not miss: %d -> %d", misses, got)
	}
}
