package service

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/ansor"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/schedule"
	"repro/internal/te"
)

// stubPredictor is a deterministic stand-in for a trained score model: the
// e2e test compares backends, not prediction quality, and training a real
// predictor would only add minutes and noise sources.
type stubPredictor struct{}

func (stubPredictor) Name() string                     { return "stub" }
func (stubPredictor) Fit([][]float64, []float64) error { return nil }
func (stubPredictor) Predict(x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * float64(i%7+1)
	}
	return s
}
func (stubPredictor) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = stubPredictor{}.Predict(x[i])
	}
	return out
}

// TestEndToEndTuneThroughService is the acceptance path of the subsystem: a
// full execution-phase tuning run through ServiceRunner against a live HTTP
// server must produce records bit-identical to the in-process
// SimulatorRunner — same schedules explored, same sim.Stats (modulo the
// measured host wall time), same predictor scores — and re-running the same
// tune against the same server must be served ≥ 99% from the result cache.
func TestEndToEndTuneThroughService(t *testing.T) {
	const (
		group  = 1
		trials = 24
		seed   = 5
	)
	prof := hw.Lookup(isa.RISCV)
	baseOpt := core.ExecutionOptions{
		Scale: te.ScaleTiny, Group: group, Trials: trials, BatchSize: 8,
		NParallel: 4, Seed: seed,
	}

	inproc, err := core.ExecutionPhase(prof, stubPredictor{}, baseOpt)
	if err != nil {
		t.Fatal(err)
	}

	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 4})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	tuneViaService := func() []ansor.Record {
		opt := baseOpt
		opt.Runner = &ServiceRunner{
			Backend:  NewClient(hs.URL),
			Arch:     isa.RISCV,
			Workload: ConvGroupSpec(te.ScaleTiny, group),
			NPar:     4,
		}
		opt.Builder = NopBuilder{}
		recs, err := core.ExecutionPhase(prof, stubPredictor{}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	remote := tuneViaService()
	if len(remote) != len(inproc) {
		t.Fatalf("service run measured %d records, in-process %d", len(remote), len(inproc))
	}
	for i, r := range inproc {
		if r.Err != nil {
			t.Fatalf("in-process record %d failed: %v", i, r.Err)
		}
		if remote[i].Err != nil {
			t.Fatalf("service record %d failed: %v", i, remote[i].Err)
		}
		if schedule.Fingerprint(r.Steps) != schedule.Fingerprint(remote[i].Steps) {
			t.Fatalf("record %d: search diverged (schedules differ)", i)
		}
		got, want := normalized(remote[i].Stats), normalized(r.Stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: stats not bit-identical:\n got %+v\nwant %+v", i, got, want)
		}
		if remote[i].Score != r.Score {
			t.Fatalf("record %d: score %v != in-process %v", i, remote[i].Score, r.Score)
		}
	}

	// Same tune, same server: the cache must absorb (essentially) all of it.
	rerun := tuneViaService()
	hits, misses, _ := core.CacheStats(rerun)
	for i := range rerun {
		if rerun[i].Score != remote[i].Score ||
			schedule.Fingerprint(rerun[i].Steps) != schedule.Fingerprint(remote[i].Steps) {
			t.Fatalf("record %d: cached re-run diverged", i)
		}
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.99 {
		t.Fatalf("re-run hit rate %.2f, want >= 0.99 (%d hits / %d misses)", rate, hits, misses)
	}

	// The client-side runner view and the server's statusz must agree that
	// the second run cost (essentially) no simulations.
	st, err := NewClient(hs.URL).Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits == 0 || st.HitRate() == 0 {
		t.Fatalf("server statusz saw no cache hits: %+v", st)
	}
}

// TestEndToEndTuneThroughRouter is the acceptance path of the routing tier:
// the identical tune through a 3-node consistent-hash router (live HTTP at
// both tiers) must be bit-identical to the in-process run — same schedules,
// same stats, same scores — and re-running it must be ≥ 99% cache-absorbed,
// with the fleet's statusz reconciling candidate for candidate.
func TestEndToEndTuneThroughRouter(t *testing.T) {
	const (
		group  = 1
		trials = 24
		seed   = 5
	)
	prof := hw.Lookup(isa.RISCV)
	baseOpt := core.ExecutionOptions{
		Scale: te.ScaleTiny, Group: group, Trials: trials, BatchSize: 8,
		NParallel: 4, Seed: seed,
	}
	inproc, err := core.ExecutionPhase(prof, stubPredictor{}, baseOpt)
	if err != nil {
		t.Fatal(err)
	}

	nodes := make([]*Server, 3)
	urls := make([]string, 3)
	for i := range nodes {
		nodes[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		hs := httptest.NewServer(nodes[i].Handler())
		defer hs.Close()
		urls[i] = hs.URL
	}
	rt, err := NewRouter(RouterConfig{Nodes: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rs := httptest.NewServer(rt.Handler())
	defer rs.Close()

	tuneViaRouter := func() []ansor.Record {
		opt := baseOpt
		opt.Runner = &ServiceRunner{
			Backend:  NewClient(rs.URL), // the router is indistinguishable from a server
			Arch:     isa.RISCV,
			Workload: ConvGroupSpec(te.ScaleTiny, group),
			NPar:     4,
		}
		opt.Builder = NopBuilder{}
		recs, err := core.ExecutionPhase(prof, stubPredictor{}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	routed := tuneViaRouter()
	if len(routed) != len(inproc) {
		t.Fatalf("router run measured %d records, in-process %d", len(routed), len(inproc))
	}
	for i, r := range inproc {
		if routed[i].Err != nil {
			t.Fatalf("router record %d failed: %v", i, routed[i].Err)
		}
		if schedule.Fingerprint(r.Steps) != schedule.Fingerprint(routed[i].Steps) {
			t.Fatalf("record %d: search diverged through the router", i)
		}
		got, want := normalized(routed[i].Stats), normalized(r.Stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: stats not bit-identical through the router:\n got %+v\nwant %+v", i, got, want)
		}
		if routed[i].Score != r.Score {
			t.Fatalf("record %d: score %v != in-process %v", i, routed[i].Score, r.Score)
		}
	}

	// Re-run: the sharded fleet must absorb it like a single node would.
	rerun := tuneViaRouter()
	hits, misses, _ := core.CacheStats(rerun)
	if rate := float64(hits) / float64(hits+misses); rate < 0.99 {
		t.Fatalf("router re-run hit rate %.2f, want >= 0.99 (%d hits / %d misses)", rate, hits, misses)
	}
	for i := range rerun {
		if rerun[i].Score != routed[i].Score {
			t.Fatalf("record %d: routed re-run diverged", i)
		}
	}

	// Fleet accounting: the router's aggregate equals the per-node sums and
	// nothing was simulated twice anywhere (each unique key on one node).
	agg, err := NewClient(rs.URL).Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var nodeHits, nodeMisses, nodeSim uint64
	for _, n := range nodes {
		st, _ := n.Statusz(context.Background())
		nodeHits += st.CacheHits
		nodeMisses += st.CacheMisses
		for _, sh := range st.Shards {
			nodeSim += sh.Simulated
		}
	}
	if agg.CacheHits != nodeHits || agg.CacheMisses != nodeMisses {
		t.Fatalf("router statusz (%d/%d) disagrees with node sums (%d/%d)",
			agg.CacheHits, agg.CacheMisses, nodeHits, nodeMisses)
	}
	if nodeSim != nodeMisses {
		t.Fatalf("fleet simulated %d candidates for %d misses — duplicate simulation across nodes",
			nodeSim, nodeMisses)
	}
}
