package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/isa"
	"repro/internal/te"
)

// threeNodeRouter builds a router over n in-process servers (no HTTP, no
// background probe — tests drive probeOnce explicitly).
func threeNodeRouter(t testing.TB, n int) (*Router, []*Server) {
	servers := make([]*Server, n)
	ids := make([]string, n)
	backends := make([]Backend, n)
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		ids[i] = "node-" + string(rune('a'+i))
		backends[i] = servers[i]
	}
	// ReplicationFactor 1: these tests pin the single-copy sharding contract
	// (each key on exactly its ring owner); replication has its own tests.
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1, ReplicationFactor: 1})
	if err != nil {
		panic(err)
	}
	return rt, servers
}

// TestRouterSplitsAndReassembles is the core routing contract: a batch fans
// out by ring owner and comes back index-aligned and bit-identical to
// in-process simulation; every key lives on exactly one node; re-submitting
// hits every node's cache.
func TestRouterSplitsAndReassembles(t *testing.T) {
	rt, servers := threeNodeRouter(t, 3)
	const group, n = 1, 12
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}
	cold, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Results) != n {
		t.Fatalf("router returned %d results for %d candidates", len(cold.Results), n)
	}
	for i, res := range cold.Results {
		if res.Err != "" || res.CacheHit {
			t.Fatalf("candidate %d: cold result %+v", i, res)
		}
		want := referenceStats(t, isa.RISCV, group, req.Candidates[i].Steps)
		if got, ref := normalized(res.Stats), normalized(want); !reflect.DeepEqual(got, ref) {
			t.Fatalf("candidate %d: routed stats diverge from in-process:\n got %+v\nwant %+v", i, got, ref)
		}
	}

	// Exactly-one-owner: the n distinct keys partition across node caches.
	var entries, simulated int
	nodesUsed := 0
	for _, s := range servers {
		entries += s.cache.len()
		simulated += int(s.shards[isa.RISCV].simulated.Load())
		if s.cache.len() > 0 {
			nodesUsed++
		}
	}
	if entries != n || simulated != n {
		t.Fatalf("fleet holds %d entries / %d simulations for %d unique candidates", entries, simulated, n)
	}
	if nodesUsed < 2 {
		t.Fatalf("only %d of 3 nodes own keys — ring split is degenerate", nodesUsed)
	}

	// Re-submission: every candidate must hit its owning node's cache.
	warm, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d: warm run missed through the router", i)
		}
		if !reflect.DeepEqual(res.Stats, cold.Results[i].Stats) {
			t.Fatalf("candidate %d: cached stats diverge through the router", i)
		}
	}
}

// TestRouterDedupesGloballyAcrossClients checks the point of one-owner
// sharding: the same candidate submitted by different clients lands on the
// same node, so the fleet simulates it once — not once per node.
func TestRouterDedupesGloballyAcrossClients(t *testing.T) {
	rt, servers := threeNodeRouter(t, 3)
	one := tinyCandidates(t, 2, 1)[0]
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, 2),
		Candidates: []Candidate{one},
	}
	for client := 0; client < 5; client++ {
		if _, err := rt.Simulate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	var simulated uint64
	for _, s := range servers {
		simulated += s.shards[isa.RISCV].simulated.Load()
	}
	if simulated != 1 {
		t.Fatalf("fleet simulated %d times for one candidate across 5 clients", simulated)
	}
}

// TestRouterBadRequestFailsFastWithoutFailover checks the 4xx/5xx split the
// router's failover rests on: malformed requests are rejected at the routing
// tier (or by a node) as non-retryable and must never knock nodes out of
// rotation.
func TestRouterBadRequestFailsFastWithoutFailover(t *testing.T) {
	rt, _ := threeNodeRouter(t, 2)
	bad := []*SimulateRequest{
		{Arch: "sparc", Workload: ConvGroupSpec(te.ScaleTiny, 0)},
		{Arch: "riscv", Workload: WorkloadSpec{Kind: "winograd"}},
		{Arch: "riscv", Workload: ConvGroupSpec(te.ScaleTiny, -1)},
	}
	for i, req := range bad {
		_, err := rt.Simulate(context.Background(), req)
		if err == nil {
			t.Fatalf("request %d must fail", i)
		}
		if IsRetryable(err) {
			t.Fatalf("request %d: defect classified retryable: %v", i, err)
		}
		var se *Error
		if !errors.As(err, &se) || se.Status < 400 || se.Status >= 500 {
			t.Fatalf("request %d: want 4xx classification, got %v", i, err)
		}
	}
	for _, n := range rt.nodes {
		if !n.up.Load() {
			t.Fatalf("bad requests took node %s out of rotation", n.id)
		}
	}
	if rr := rt.rerouted.Load(); rr != 0 {
		t.Fatalf("bad requests caused %d re-routes", rr)
	}
}

// TestRouterFailoverDrainsDownNode kills one HTTP node of three and checks
// its key range drains to ring successors: the batch still completes with
// every result intact, nothing is simulated twice on the survivors, and the
// re-routed keys' cache entries live on the successors afterwards.
func TestRouterFailoverDrainsDownNode(t *testing.T) {
	const group, n = 1, 12
	servers := make([]*Server, 3)
	https := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		https[i] = httptest.NewServer(servers[i].Handler())
		defer https[i].Close()
		urls[i] = https[i].URL
	}
	rt, err := NewRouter(RouterConfig{Nodes: urls, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}

	https[1].Close() // node 1 dies before the batch arrives

	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}
	resp, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("failover batch failed: %v", err)
	}
	for i, res := range resp.Results {
		if res.Err != "" {
			t.Fatalf("candidate %d surfaced a per-candidate error through failover: %s", i, res.Err)
		}
		want := referenceStats(t, isa.RISCV, group, req.Candidates[i].Steps)
		if got, ref := normalized(res.Stats), normalized(want); !reflect.DeepEqual(got, ref) {
			t.Fatalf("candidate %d: failover stats diverge", i)
		}
	}
	if rt.nodes[1].up.Load() {
		t.Fatal("dead node still in rotation after failing a sub-batch")
	}
	var simulated int
	for i, s := range servers {
		if i == 1 {
			continue
		}
		simulated += int(s.shards[isa.RISCV].simulated.Load())
	}
	if simulated != n {
		t.Fatalf("survivors simulated %d times for %d unique candidates — duplicate work under failover",
			simulated, n)
	}

	// The drained keys stay owned by the successors while node 1 is down:
	// re-submission is served fully from the survivors' caches.
	warm, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d: re-submission missed after failover", i)
		}
	}
}

// flakyBackend wraps a Backend and fails Simulate while tripped — the
// controllable node fault for recovery tests. handoffTripped fails only
// the replication surface (see handoff_test.go).
type flakyBackend struct {
	Backend
	tripped        atomic.Bool
	handoffTripped atomic.Bool
}

func (f *flakyBackend) Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	if f.tripped.Load() {
		return nil, &Error{Status: 503, Msg: "injected node fault"}
	}
	return f.Backend.Simulate(ctx, req)
}

func (f *flakyBackend) Statusz(ctx context.Context) (*Statusz, error) {
	if f.tripped.Load() {
		return nil, &Error{Status: 503, Msg: "injected node fault"}
	}
	return f.Backend.Statusz(ctx)
}

// TestRouterProbeRestoresRecoveredNode checks the health-probe half of
// failover: a node that starts answering statusz again re-enters rotation
// and gets its key range back.
func TestRouterProbeRestoresRecoveredNode(t *testing.T) {
	const group, n = 3, 12
	servers := make([]*Server, 3)
	ids := make([]string, 3)
	flaky := make([]*flakyBackend, 3)
	backends := make([]Backend, 3)
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		ids[i] = "node-" + string(rune('a'+i))
		flaky[i] = &flakyBackend{Backend: servers[i]}
		backends[i] = flaky[i]
	}
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}

	flaky[0].tripped.Store(true)
	if _, err := rt.Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if rt.nodes[0].up.Load() {
		t.Fatal("tripped node still in rotation")
	}

	// Probe while still tripped: must stay down.
	rt.probeOnce(context.Background())
	if rt.nodes[0].up.Load() {
		t.Fatal("probe restored a node that still fails statusz")
	}

	flaky[0].tripped.Store(false)
	rt.probeOnce(context.Background())
	if !rt.nodes[0].up.Load() {
		t.Fatal("probe did not restore the recovered node")
	}

	// Recovered node owns its range again: fresh keys route to it too.
	fresh := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, 3*n)[n:],
	}
	if _, err := rt.Simulate(context.Background(), fresh); err != nil {
		t.Fatal(err)
	}
	if servers[0].cache.len() == 0 {
		t.Fatal("recovered node received no keys")
	}
}

// TestRouterUnservedArchRoutesAroundWithoutEjecting checks the 501 path of
// a heterogeneous fleet: a node whose operator config does not serve the
// requested arch is routed around for that batch only — it stays in rotation
// (its key ranges for other archs remain warm) — and a fleet where no node
// serves the arch fails the batch with the stable 501, not a node-health
// error.
func TestRouterUnservedArchRoutesAroundWithoutEjecting(t *testing.T) {
	riscvOnly := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
	both := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV, isa.X86}, WorkersPerArch: 2})
	rt, err := NewRouterBackends([]string{"riscv-only", "both"},
		[]Backend{riscvOnly, both}, RouterConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}

	// x86 batch: only "both" can serve it; "riscv-only" may own some keys
	// and answer 501, which must re-route without ejecting it.
	x86 := &SimulateRequest{
		Arch:     "x86",
		Workload: ConvGroupSpec(te.ScaleTiny, 1),
	}
	for _, c := range tinyCandidates(t, 1, 8) {
		x86.Candidates = append(x86.Candidates, c)
	}
	resp, err := rt.Simulate(context.Background(), x86)
	if err != nil {
		t.Fatalf("heterogeneous fleet failed a servable batch: %v", err)
	}
	for i, res := range resp.Results {
		if res.Err != "" || res.Stats == nil {
			t.Fatalf("candidate %d: %+v", i, res)
		}
	}
	for _, n := range rt.nodes {
		if !n.up.Load() {
			t.Fatalf("unserved arch ejected healthy node %s from rotation", n.id)
		}
	}
	// The riscv key space is untouched: a riscv batch still spreads across
	// both nodes afterwards.
	riscv := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, 1),
		Candidates: tinyCandidates(t, 1, 12),
	}
	if _, err := rt.Simulate(context.Background(), riscv); err != nil {
		t.Fatal(err)
	}
	if riscvOnly.cache.len() == 0 {
		t.Fatal("riscv-only node no longer receives its riscv keys")
	}

	// Nobody serves arm: the batch fails with the node's stable 501 and
	// both nodes stay in rotation.
	arm := &SimulateRequest{
		Arch:       "arm",
		Workload:   ConvGroupSpec(te.ScaleTiny, 1),
		Candidates: tinyCandidates(t, 1, 2),
	}
	_, err = rt.Simulate(context.Background(), arm)
	if err == nil {
		t.Fatal("unservable batch must fail")
	}
	var se *Error
	if !errors.As(err, &se) || se.Status != 501 {
		t.Fatalf("want 501 for fleet-wide unserved arch, got %v", err)
	}
	for _, n := range rt.nodes {
		if !n.up.Load() {
			t.Fatalf("fleet-wide unserved arch ejected node %s", n.id)
		}
	}
}

// TestNewRouterBackendsValidates checks misuse fails at construction, not
// with an index panic inside a request handler.
func TestNewRouterBackendsValidates(t *testing.T) {
	if _, err := NewRouterBackends(nil, nil, RouterConfig{ProbeInterval: -1}); err == nil {
		t.Fatal("zero nodes must be rejected")
	}
	if _, err := NewRouterBackends([]string{"a", "b"}, []Backend{Local()},
		RouterConfig{ProbeInterval: -1}); err == nil {
		t.Fatal("ids/backends length mismatch must be rejected")
	}
}

// TestRouterCancellationIsNotANodeFault checks the caller's own cancellation
// fails the batch without knocking nodes out of rotation — cancellation says
// nothing about node health.
func TestRouterCancellationIsNotANodeFault(t *testing.T) {
	rt, _ := threeNodeRouter(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rt.Simulate(ctx, &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, 1),
		Candidates: tinyCandidates(t, 1, 6),
	})
	if err == nil {
		t.Fatal("canceled batch must fail")
	}
	for _, n := range rt.nodes {
		if !n.up.Load() {
			t.Fatalf("cancellation took node %s out of rotation", n.id)
		}
	}
}

// TestRouterSmoke is the CI smoke path: three in-process nodes behind a
// router, one tuned batch through the unchanged wire protocol, and the
// statusz totals must reconcile — router-aggregated counters equal the sum
// over the per-node statusz, hits+misses equal the candidates routed.
func TestRouterSmoke(t *testing.T) {
	rt, servers := threeNodeRouter(t, 3)
	const group = 1
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, 16),
	}
	for run := 0; run < 2; run++ { // cold then cache-absorbed
		if _, err := rt.Simulate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := rt.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses, canceled, served uint64
	var entries int
	for _, s := range servers {
		st, _ := s.Statusz(context.Background())
		hits += st.CacheHits
		misses += st.CacheMisses
		canceled += st.CacheCanceled
		served += st.Candidates
		entries += st.CacheEntries
	}
	if agg.CacheHits != hits || agg.CacheMisses != misses || agg.CacheCanceled != canceled ||
		agg.CacheEntries != entries {
		t.Fatalf("router statusz does not reconcile with nodes:\nrouter %+v\nnodes hits=%d misses=%d canceled=%d entries=%d",
			agg, hits, misses, canceled, entries)
	}
	if want := uint64(2 * 16); agg.Candidates != want || served != want {
		t.Fatalf("candidates routed %d / served %d, want %d", agg.Candidates, served, want)
	}
	if hits+misses != agg.Candidates {
		t.Fatalf("hits(%d)+misses(%d) != candidates(%d)", hits, misses, agg.Candidates)
	}
	if misses != 16 || hits != 16 {
		t.Fatalf("cold/warm split off: %d misses / %d hits, want 16/16", misses, hits)
	}
	if len(agg.Nodes) != 3 {
		t.Fatalf("router statusz reports %d nodes, want 3", len(agg.Nodes))
	}
	var perNode uint64
	for _, ns := range agg.Nodes {
		if !ns.Up {
			t.Fatalf("healthy node %s reported down", ns.ID)
		}
		perNode += ns.Candidates
	}
	if perNode != agg.Candidates {
		t.Fatalf("per-node routed counts sum to %d, want %d", perNode, agg.Candidates)
	}
	for _, sh := range agg.Shards {
		if sh.Arch == "riscv" && sh.Workers != 3*2 {
			t.Fatalf("aggregated shard workers = %d, want 6", sh.Workers)
		}
	}
}
