package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/te"
)

// TestCanceledBatchIsBatchLevelNotPerCandidate is the regression test for
// the canceled≠failed bug: a context that dies mid-batch (after ParallelCtx
// has dispatched work) must fail the batch as a whole with a retryable
// error — never return a response whose Result.Err marks viable candidates
// as deterministic failures, which clients score +Inf and tuners permanently
// discard.
func TestCanceledBatchIsBatchLevelNotPerCandidate(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 1})
	const group, n = 1, 8
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel as soon as the single worker finishes its first simulation:
	// work has been dispatched, so this lands after ParallelCtx's dispatch
	// loop may already have completed — exactly the window where the old
	// code wrote "canceled: ..." into per-candidate results.
	go func() {
		for srv.shards[isa.RISCV].simulated.Load() == 0 {
			runtime.Gosched()
		}
		cancel()
	}()
	resp, err := srv.Simulate(ctx, req)
	if err == nil {
		// The whole batch may legitimately finish before the cancel lands
		// on a fast machine; then there is nothing to assert here, but the
		// per-candidate invariant below must still hold on the response.
		for i, res := range resp.Results {
			if strings.Contains(res.Err, "cancel") {
				t.Fatalf("candidate %d carries a cancellation as Result.Err: %q", i, res.Err)
			}
		}
	} else {
		if resp != nil {
			t.Fatal("a failed batch must not also return results")
		}
		if !IsRetryable(err) {
			t.Fatalf("batch cancellation must classify retryable, got %v", err)
		}
		var se *Error
		if !errors.As(err, &se) || se.Status != 503 {
			t.Fatalf("want 503 classification for canceled batch, got %v", err)
		}
	}

	// Re-submitting the identical batch must re-simulate everything that was
	// canceled — no canceled placeholder may have been cached.
	resp2, err := srv.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range resp2.Results {
		if res.Err != "" {
			t.Fatalf("candidate %d failed on re-submission: %s", i, res.Err)
		}
		if res.Stats == nil {
			t.Fatalf("candidate %d: no stats on re-submission", i)
		}
	}
	if got := srv.cache.len(); got != n {
		t.Fatalf("cache holds %d entries after full re-run, want %d", got, n)
	}
}

// TestClientDisconnectMidBatchOverHTTP drives the same invariant over the
// wire: the HTTP request context dies with the client connection, the server
// logs a canceled batch (503-classified, not 400), and a second client
// re-running the batch gets clean results.
func TestClientDisconnectMidBatchOverHTTP(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	const group, n = 2, 8
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for srv.shards[isa.RISCV].simulated.Load() == 0 {
			runtime.Gosched()
		}
		cancel() // tears the client connection down mid-batch
	}()
	_, err := NewClient(hs.URL).Simulate(ctx, req)
	if err == nil {
		t.Skip("batch finished before the disconnect landed") // timing-dependent fast path
	}

	// A fresh client re-runs the identical batch: every candidate must
	// come back with stats — never a cached "canceled" placeholder, and
	// never a per-candidate error inherited from the disconnected run.
	resp, err := NewClient(hs.URL).Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range resp.Results {
		if res.Err != "" || res.Stats == nil {
			t.Fatalf("candidate %d after disconnect+retry: %+v", i, res)
		}
	}
	// Accounting reconciles exactly: every accepted candidate either hit,
	// missed, or was explicitly canceled (including the ones ParallelCtx
	// never dispatched) — nothing is silently dropped. The disconnected
	// handler may still be draining server-side, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := srv.Statusz(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Candidates == 2*n && st.CacheHits+st.CacheMisses+st.CacheCanceled == st.Candidates {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting does not reconcile: hits=%d misses=%d canceled=%d != candidates=%d",
				st.CacheHits, st.CacheMisses, st.CacheCanceled, st.Candidates)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCacheDoCanceledAccounting pins the canceled counter at the cache
// layer, where the timing is controllable: a waiter canceled mid-flight and
// a leader whose compute is canceled both count as canceled (not hit, not
// miss), nothing canceled is ever stored, and the next caller re-computes.
func TestCacheDoCanceledAccounting(t *testing.T) {
	c := newResultCache(16, nil)
	var k Key
	k[0] = 7

	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := c.do(context.Background(), k, func() (Result, error) {
			<-release
			return Result{Err: "deterministic"}, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()

	// Wait until the leader's flight is registered, then join as a waiter
	// with a cancelable context.
	for {
		c.mu.Lock()
		_, inflight := c.inflight[k]
		c.mu.Unlock()
		if inflight {
			break
		}
		runtime.Gosched()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.do(ctx, k, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v", err)
	}
	close(release)
	<-leaderDone

	if h, m, cc := c.hits.Load(), c.misses.Load(), c.canceled.Load(); h != 0 || m != 1 || cc != 1 {
		t.Fatalf("hits/misses/canceled = %d/%d/%d, want 0/1/1", h, m, cc)
	}

	// Leader-canceled compute: counts canceled, stores nothing.
	var k2 Key
	k2[0] = 9
	_, _, err := c.do(context.Background(), k2, func() (Result, error) {
		return Result{}, context.Canceled
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader returned %v", err)
	}
	if cc := c.canceled.Load(); cc != 2 {
		t.Fatalf("canceled = %d, want 2", cc)
	}
	// The canceled key was never cached: the next caller computes fresh.
	r, hit, err := c.do(context.Background(), k2, func() (Result, error) {
		return Result{Err: "recomputed"}, nil
	})
	if err != nil || hit || r.Err != "recomputed" {
		t.Fatalf("re-submission after canceled compute: r=%+v hit=%v err=%v", r, hit, err)
	}
	if h, m, cc := c.hits.Load(), c.misses.Load(), c.canceled.Load(); h != 0 || m != 2 || cc != 2 {
		t.Fatalf("final hits/misses/canceled = %d/%d/%d, want 0/2/2", h, m, cc)
	}
}

// countingDialer counts TCP dials so tests can prove connection reuse.
type countingDialer struct {
	dials atomic.Int64
}

func (d *countingDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.dials.Add(1)
	var std net.Dialer
	return std.DialContext(ctx, network, addr)
}

// TestClientDrainsErrorBodyForConnReuse is the regression test for the
// connection-churn bug: error responses larger than the 4096-byte message
// window (and responses whose decode fails partway) must be drained before
// close, or net/http tears down the pooled connection and every error costs
// a fresh dial under the router's fan-out.
func TestClientDrainsErrorBodyForConnReuse(t *testing.T) {
	bigMsg := strings.Repeat("x", 32<<10)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(len(bigMsg)))
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, bigMsg)
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	dialer := &countingDialer{}
	cl := NewClient(hs.URL)
	cl.HTTPClient = &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{DialContext: dialer.DialContext},
	}
	for i := 0; i < 3; i++ {
		_, err := cl.Statusz(context.Background())
		if err == nil {
			t.Fatal("statusz must surface the 500")
		}
		var se *Error
		if !errors.As(err, &se) || se.Status != http.StatusInternalServerError {
			t.Fatalf("want typed 500, got %v", err)
		}
	}
	if n := dialer.dials.Load(); n != 1 {
		t.Fatalf("%d dials for 3 sequential error responses — error bodies are not drained", n)
	}
}
