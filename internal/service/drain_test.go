package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownDrainsInflight pins the drain ordering: a batch admitted
// before Shutdown finishes normally (its results are not lost), batches
// arriving after Shutdown get the retryable draining 503, statusz raises the
// draining flag, and Shutdown returns only once the in-flight work is done.
func TestShutdownDrainsInflight(t *testing.T) {
	sentinel := obs.NewGoroutineSentinel()
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 1})
	sh := srv.shards[isa.RISCV]
	// Occupy the only worker slot so the in-flight batch stays in flight
	// until the test releases it.
	sh.slots <- struct{}{}

	req := &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 1),
	}
	batchErr := make(chan error, 1)
	var resp *SimulateResponse
	go func() {
		var err error
		resp, err = srv.Simulate(context.Background(), req)
		batchErr <- err
	}()
	waitFor(t, "the batch to queue on the worker", func() bool { return sh.queued.Load() == 1 })

	shutErr := make(chan error, 1)
	go func() { shutErr <- srv.Shutdown(context.Background()) }()
	waitFor(t, "the draining flag", srv.Draining)

	// New work is refused with the retryable draining signal.
	_, err := srv.Simulate(context.Background(), req)
	var se *Error
	if !errors.As(err, &se) || se.Status != 503 || !strings.Contains(se.Msg, "draining") {
		t.Fatalf("post-shutdown Simulate returned %v, want a 503 draining error", err)
	}
	if !IsRetryable(err) {
		t.Fatal("the draining rejection must be retryable (routers fail over on it)")
	}
	st, _ := srv.Statusz(context.Background())
	if !st.Draining {
		t.Fatal("statusz must report draining")
	}

	// Shutdown must still be waiting on the in-flight batch.
	select {
	case err := <-shutErr:
		t.Fatalf("Shutdown returned %v with a batch still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	<-sh.slots // release the worker; the batch completes
	if err := <-batchErr; err != nil {
		t.Fatalf("in-flight batch failed during drain: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Stats == nil {
		t.Fatalf("drained batch lost its results: %+v", resp)
	}
	if err := <-shutErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// A second Shutdown (and Close) are safe no-ops.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("repeat Shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}
	// Drain must unwind everything the server started: store writer,
	// admission bookkeeping, worker goroutines.
	if err := sentinel.WaitSettled(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDeadlineStillClosesStore: a drain whose context expires first
// reports the deadline but never skips the store flush/close.
func TestShutdownDeadlineStillClosesStore(t *testing.T) {
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 1, CacheDir: t.TempDir(),
	})
	sh := srv.shards[isa.RISCV]
	sh.slots <- struct{}{}
	go srv.Simulate(context.Background(), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 1),
	})
	waitFor(t, "the batch to queue on the worker", func() bool { return sh.queued.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired drain returned %v, want DeadlineExceeded", err)
	}
	// The store was closed despite the timeout: Put is now a no-op and a
	// second Close stays the recorded (nil) result.
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after timed-out Shutdown: %v", err)
	}
	<-sh.slots // unblock the straggler so the test does not leak it
}

// TestCloseReturnsFirstStoreError pins the satellite contract: Close is
// idempotent and every call reports the first flush/close error instead of
// later calls swallowing it behind a no-op.
func TestCloseReturnsFirstStoreError(t *testing.T) {
	faults := NewStoreFaults(7, 0, 1) // every fsync fails
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 1,
		CacheDir: t.TempDir(), StoreWrapFile: faults.WrapFile,
	})
	first := srv.Close()
	if first == nil || !strings.Contains(first.Error(), "injected") {
		t.Fatalf("Close swallowed the injected fsync error: %v", first)
	}
	if second := srv.Close(); !errors.Is(second, first) {
		t.Fatalf("second Close returned %v, want the first error %v", second, first)
	}
}

// TestRouterRotatesOutDrainingNode: a node that still answers statusz but
// reports draining must leave rotation like a planned down→up cycle, with
// its traffic flowing to ring successors, and its NodeStatus showing why.
func TestRouterRotatesOutDrainingNode(t *testing.T) {
	servers := make([]*Server, 2)
	ids := make([]string, 2)
	backends := make([]Backend, 2)
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		ids[i] = "node-" + string(rune('a'+i))
		backends[i] = servers[i]
	}
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1, DisableHandoff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if err := servers[0].Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rt.probeOnce(context.Background())
	if rt.nodes[0].up.Load() {
		t.Fatal("draining node must leave rotation")
	}
	if ns := rt.nodes[0].status(); !strings.Contains(ns.LastErr, "draining") {
		t.Fatalf("node status %+v does not say draining", ns)
	}

	// The fleet keeps serving: everything lands on the surviving node.
	resp, err := rt.Simulate(context.Background(), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 3),
		Candidates: tinyCandidates(t, 3, 6),
	})
	if err != nil {
		t.Fatalf("batch during a rolling restart: %v", err)
	}
	for i, r := range resp.Results {
		if r.Stats == nil {
			t.Fatalf("candidate %d unserved during drain: %+v", i, r)
		}
	}
	st, err := rt.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ns := range st.Nodes {
		if ns.ID == ids[0] {
			found = true
			if ns.Up {
				t.Fatal("router statusz reports the draining node as up")
			}
			if !ns.Draining {
				t.Fatal("router statusz lost the node's draining flag")
			}
		}
	}
	if !found {
		t.Fatal("draining node missing from router statusz")
	}
}
