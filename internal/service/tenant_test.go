package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/isa"
)

// findTenant returns the named row of a statusz tenant table, nil if absent.
func findTenant(rows []TenantStatus, name string) *TenantStatus {
	for i := range rows {
		if rows[i].Tenant == name {
			return &rows[i]
		}
	}
	return nil
}

// TestWeightedFairAdmissionGate exercises the admission gate's fair-share
// arithmetic directly: weighted limits under contention, work conservation
// when alone, the idle-server liveness exception, and re-admission as a
// tenant drains back under its share.
func TestWeightedFairAdmissionGate(t *testing.T) {
	var a admission
	a.init(8, map[string]float64{"gold": 3})

	// Liveness: an idle gate admits even an oversized batch.
	if !a.tryAcquire("bronze", 12) {
		t.Fatal("idle gate refused an oversized batch")
	}
	a.release("bronze", 12)
	if a.cur.Load() != 0 {
		t.Fatalf("gate leaked %d after release", a.cur.Load())
	}

	// Work conservation: a tenant alone (after the first admission) sees
	// the whole gate, not a pre-divided share.
	if !a.tryAcquire("bronze", 3) || !a.tryAcquire("bronze", 5) {
		t.Fatal("lone tenant refused within the full gate")
	}
	if a.tryAcquire("bronze", 1) {
		t.Fatal("gate admitted past max")
	}

	// gold (weight 3) arrives against bronze (weight 1, holding 8):
	// W = 4, gold's limit = 8·3/4 = 6 — admitted despite the full gate
	// (the bounded transient overshoot that buys the fairness guarantee).
	if !a.tryAcquire("gold", 6) {
		t.Fatal("under-share weighted tenant was refused")
	}
	if a.tryAcquire("gold", 1) {
		t.Fatal("gold admitted past its 6-candidate share")
	}
	// bronze's limit under contention is 8·1/4 = 2; it holds 8.
	if a.tryAcquire("bronze", 1) {
		t.Fatal("over-share tenant admitted while contended")
	}
	// Draining to 1 puts bronze back under its share: admitted again,
	// then capped exactly at the share boundary.
	a.release("bronze", 7)
	if !a.tryAcquire("bronze", 1) {
		t.Fatal("tenant back under its share was refused")
	}
	if a.tryAcquire("bronze", 1) {
		t.Fatal("bronze admitted past its contended share of 2")
	}

	if got := a.admitted("gold"); got != 6 {
		t.Fatalf("gold occupancy %d, want 6", got)
	}
	if got := a.admitted("bronze"); got != 2 {
		t.Fatalf("bronze occupancy %d, want 2", got)
	}
	if a.weightOf("gold") != 3 || a.weightOf("bronze") != 1 {
		t.Fatalf("weights %v/%v, want 3/1", a.weightOf("gold"), a.weightOf("bronze"))
	}
}

// TestFairShareProtectsUnderShareTenant pins the server-level guarantee the
// loadgen isolation suite builds on: with one tenant hogging the whole gate,
// a second tenant's batch within its share is admitted and served, while the
// hog's next batch is 429d — and both outcomes land in the right per-tenant
// statusz ledgers, each reconciling independently.
func TestFairShareProtectsUnderShareTenant(t *testing.T) {
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2, MaxQueuedCandidates: 8,
	})
	// The hog holds the entire gate, the way 8 admitted candidates would.
	if !srv.admit.tryAcquire("hog", 8) {
		t.Fatal("gate refused the first acquisition")
	}
	req := func(n int) *SimulateRequest {
		return &SimulateRequest{
			Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
			Candidates: tinyCandidates(t, 1, n),
		}
	}

	// guest's share with two active equal-weight tenants is 8/2 = 4: a
	// 3-candidate batch is under it and must be served despite the gate
	// being globally full.
	resp, err := srv.Simulate(WithTenant(context.Background(), "guest"), req(3))
	if err != nil || len(resp.Results) != 3 {
		t.Fatalf("under-share guest was refused: %v", err)
	}
	// The hog is past its share: rejected, not queued.
	if _, err := srv.Simulate(WithTenant(context.Background(), "hog"), req(1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-share hog got %v, want ErrOverloaded", err)
	}
	// An untagged batch lands in the default ledger — and the default
	// tenant is under its share too, so it is served.
	if _, err := srv.Simulate(context.Background(), req(2)); err != nil {
		t.Fatalf("untagged batch refused: %v", err)
	}
	srv.admit.release("hog", 8)

	st, err := srv.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	guest, hog, def := findTenant(st.Tenants, "guest"), findTenant(st.Tenants, "hog"), findTenant(st.Tenants, DefaultTenant)
	if guest == nil || hog == nil || def == nil {
		t.Fatalf("missing tenant rows in %+v", st.Tenants)
	}
	if guest.Candidates != 3 || guest.RejectedCandidates != 0 {
		t.Fatalf("guest ledger %+v, want 3 accepted / 0 rejected", guest)
	}
	if hog.Candidates != 0 || hog.RejectedCandidates != 1 {
		t.Fatalf("hog ledger %+v, want 0 accepted / 1 rejected", hog)
	}
	if def.Candidates != 2 {
		t.Fatalf("default ledger %+v, want the 2 untagged candidates", def)
	}
	// Every row reconciles on its own, and the rows sum to the global
	// ledgers — the property fleetDelta in internal/loadgen depends on.
	var sum uint64
	for _, row := range st.Tenants {
		if row.CacheHits+row.CacheMisses+row.CacheCanceled != row.Candidates {
			t.Fatalf("tenant %s does not reconcile: %+v", row.Tenant, row)
		}
		sum += row.Candidates
	}
	if sum != st.Candidates {
		t.Fatalf("tenant rows sum to %d candidates, global ledger has %d", sum, st.Candidates)
	}
}

// TestTenantHeaderTravelsWire pins the wire contract: a context tenant
// becomes the X-Simtune-Tenant header, the server accounts the batch under
// it, and identities that fail validation (malformed or oversized) fall back
// to the default ledger instead of minting new label values.
func TestTenantHeaderTravelsWire(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := NewClient(hs.URL)
	req := &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 2),
	}

	if _, err := cl.Simulate(WithTenant(context.Background(), "acme-prod"), req); err != nil {
		t.Fatal(err)
	}
	// A header value with characters unsafe for a Prometheus label, and one
	// past the length bound: both must resolve to the default tenant.
	for _, bad := range []string{"bad tenant!", strings.Repeat("x", maxTenantLen+1)} {
		if _, err := cl.Simulate(WithTenant(context.Background(), bad), req); err != nil {
			t.Fatal(err)
		}
	}

	st, err := srv.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if row := findTenant(st.Tenants, "acme-prod"); row == nil || row.Candidates != 2 {
		t.Fatalf("acme-prod row %+v, want 2 candidates accounted over the wire", row)
	}
	if row := findTenant(st.Tenants, DefaultTenant); row == nil || row.Candidates != 4 {
		t.Fatalf("default row %+v, want both invalid-identity batches (4 candidates)", row)
	}
	for _, row := range st.Tenants {
		if row.Tenant != "acme-prod" && row.Tenant != DefaultTenant {
			t.Fatalf("invalid identity minted ledger %q", row.Tenant)
		}
	}

	// The tenant label must reach the Prometheus exposition — as a quoted,
	// parseable label value, which is what validTenant guarantees.
	mresp, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	names := validatePrometheus(t, string(body))
	if !names[metricTenant+"_count"] {
		t.Fatalf("exposition lacks %s:\n%s", metricTenant, body)
	}
	if !strings.Contains(string(body), `tenant="acme-prod"`) {
		t.Fatal("exposition lacks the tenant label value")
	}
	if strings.Contains(string(body), "bad tenant!") {
		t.Fatal("invalid identity leaked into the exposition")
	}
}

// TestRouterTenantStatuszMerge pins the router aggregate: per-node tenant
// rows merge by name with counters summed, occupancy summed, and the weight
// reported as the max seen — so one fleet-wide row per tenant regardless of
// which nodes its batches landed on.
func TestRouterTenantStatuszMerge(t *testing.T) {
	weights := map[string]float64{"acme": 2}
	servers := make([]*Server, 2)
	backends := make([]Backend, 2)
	for i := range servers {
		servers[i] = mustServer(t, Config{
			Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2, TenantWeights: weights,
		})
		backends[i] = servers[i]
	}
	rt, err := NewRouterBackends([]string{"node-a", "node-b"}, backends,
		RouterConfig{ProbeInterval: -1, DisableHandoff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Land acme batches on both nodes directly (bypassing ring placement so
	// the split is known), then read the merged view through the router.
	ctx := WithTenant(context.Background(), "acme")
	for i, n := range []int{3, 2} {
		if _, err := servers[i].Simulate(ctx, &SimulateRequest{
			Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
			Candidates: tinyCandidates(t, 1, n),
		}); err != nil {
			t.Fatal(err)
		}
	}

	st, err := rt.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	row := findTenant(st.Tenants, "acme")
	if row == nil {
		t.Fatalf("router statusz lacks the acme row: %+v", st.Tenants)
	}
	if row.Candidates != 5 {
		t.Fatalf("merged candidates %d, want 3+2 across nodes", row.Candidates)
	}
	if row.CacheHits+row.CacheMisses+row.CacheCanceled != row.Candidates {
		t.Fatalf("merged row does not reconcile: %+v", row)
	}
	if row.Weight != 2 {
		t.Fatalf("merged weight %v, want the configured 2", row.Weight)
	}
	if row.Admitted != 0 {
		t.Fatalf("merged occupancy %d after both batches drained", row.Admitted)
	}
}
