package service

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TenantHeader is the wire header carrying the client's tenant identity.
// Like the trace header it travels client→router→node: Client.post sets it
// from the context, backendHandler reads it back into the context, and a
// router forwards the same context to its node clients — so one tenant ID
// survives retries, reroutes and the replication fan-out untouched.
const TenantHeader = "X-Simtune-Tenant"

// DefaultTenant is the ledger every unidentified batch lands in: no header,
// no context tag, or an identity that fails validTenant. Existing
// single-tenant clients therefore keep working unchanged — they are simply
// all the "default" tenant, sharing one fair-share gate exactly as before.
const DefaultTenant = "default"

type tenantCtxKey struct{}

// WithTenant tags ctx with a tenant identity. Batches simulated under the
// returned context are admitted, accounted and histogrammed under that
// tenant at every tier the context (or the wire header it becomes) reaches.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFrom returns the context's tenant identity, "" when untagged.
func TenantFrom(ctx context.Context) string {
	id, _ := ctx.Value(tenantCtxKey{}).(string)
	return id
}

// maxTenantLen bounds tenant identities; anything longer is treated as
// unidentified rather than letting one client mint unbounded label values.
const maxTenantLen = 64

// validTenant accepts identities safe to use verbatim as a Prometheus label
// value and a statusz key: 1..64 chars of [a-zA-Z0-9_.:/-]. Quotes,
// backslashes and control characters would corrupt the text exposition, so
// anything else falls back to DefaultTenant instead of being escaped — a
// malformed header should not be able to grow the label cardinality.
func validTenant(s string) bool {
	if len(s) == 0 || len(s) > maxTenantLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '_' || c == '.' || c == ':' || c == '/' || c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantOf resolves the context's identity to the ledger it is accounted
// under: the tagged tenant when present and valid, DefaultTenant otherwise.
func tenantOf(ctx context.Context) string {
	if id := TenantFrom(ctx); validTenant(id) {
		return id
	}
	return DefaultTenant
}

// tenantLedger is one tenant's slice of the server's candidate accounting:
// the same counters the server keeps globally, partitioned by tenant, plus a
// per-tenant serve-latency histogram. The per-tenant invariant mirrors the
// global one — hits+misses+canceled == candidates — and rejected stays a
// parallel ledger outside it, so fairness bookkeeping can never unbalance
// the reconciliation operators already watch.
type tenantLedger struct {
	name       string
	candidates atomic.Uint64
	rejected   atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64
	canceled   atomic.Uint64
	serve      *obs.Histogram // nil when telemetry is off
}

// tenantSet is the server's ledger registry: get-or-create once per batch
// (one RLock in the steady state), so per-candidate accounting inside the
// workers is pure atomics on the ledger the batch already holds.
type tenantSet struct {
	mu      sync.RWMutex
	ledgers map[string]*tenantLedger
}

func newTenantSet() *tenantSet {
	return &tenantSet{ledgers: make(map[string]*tenantLedger)}
}

// get returns the tenant's ledger, creating it on first sight. tel supplies
// the serve histogram (nil telemetry hands out a nil histogram, which
// discards observations).
func (ts *tenantSet) get(tenant string, tel *telemetry) *tenantLedger {
	ts.mu.RLock()
	l := ts.ledgers[tenant]
	ts.mu.RUnlock()
	if l != nil {
		return l
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if l = ts.ledgers[tenant]; l == nil {
		l = &tenantLedger{name: tenant, serve: tel.tenantServe(tenant)}
		ts.ledgers[tenant] = l
	}
	return l
}

// snapshot returns the ledgers sorted by tenant name for stable rendering.
func (ts *tenantSet) snapshot() []*tenantLedger {
	ts.mu.RLock()
	out := make([]*tenantLedger, 0, len(ts.ledgers))
	for _, l := range ts.ledgers {
		out = append(out, l)
	}
	ts.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// TenantStatus is one tenant's row in statusz: its fair-share weight, the
// candidates it currently holds admitted, and its slice of the candidate
// ledgers. Per tenant, CacheHits+CacheMisses+CacheCanceled == Candidates
// reconciles exactly like the fleet-wide invariant; RejectedCandidates is
// the parallel ledger of work the fairness gate refused. On a router, the
// sums over reachable nodes, merged by tenant name.
type TenantStatus struct {
	Tenant string `json:"tenant"`
	// Weight is the configured fair-share weight (1 unless
	// Config.TenantWeights says otherwise; 0 on router aggregates when
	// nodes disagree is impossible — weights are per-node config, the
	// router reports the max it saw).
	Weight float64 `json:"weight,omitempty"`
	// Admitted is the candidates this tenant currently holds in the
	// admission gate (queued or running).
	Admitted           int64  `json:"admitted"`
	Candidates         uint64 `json:"candidates"`
	RejectedCandidates uint64 `json:"rejected_candidates"`
	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheCanceled      uint64 `json:"cache_canceled"`
}

// tenantStatuses renders the server's per-tenant rows.
func (s *Server) tenantStatuses() []TenantStatus {
	ledgers := s.tenants.snapshot()
	if len(ledgers) == 0 {
		return nil
	}
	out := make([]TenantStatus, 0, len(ledgers))
	for _, l := range ledgers {
		out = append(out, TenantStatus{
			Tenant:             l.name,
			Weight:             s.admit.weightOf(l.name),
			Admitted:           s.admit.admitted(l.name),
			Candidates:         l.candidates.Load(),
			RejectedCandidates: l.rejected.Load(),
			CacheHits:          l.hits.Load(),
			CacheMisses:        l.misses.Load(),
			CacheCanceled:      l.canceled.Load(),
		})
	}
	return out
}

// mergeTenantStatus folds per-node tenant rows into a router aggregate,
// keyed by tenant name. Counters sum; Admitted sums (total held across the
// fleet); Weight reports the max seen — weights are per-node configuration
// and homogeneous fleets agree.
func mergeTenantStatus(agg map[string]*TenantStatus, rows []TenantStatus) {
	for _, ts := range rows {
		m := agg[ts.Tenant]
		if m == nil {
			m = &TenantStatus{Tenant: ts.Tenant}
			agg[ts.Tenant] = m
		}
		if ts.Weight > m.Weight {
			m.Weight = ts.Weight
		}
		m.Admitted += ts.Admitted
		m.Candidates += ts.Candidates
		m.RejectedCandidates += ts.RejectedCandidates
		m.CacheHits += ts.CacheHits
		m.CacheMisses += ts.CacheMisses
		m.CacheCanceled += ts.CacheCanceled
	}
}

// sortedTenantStatus renders a merge map as a name-sorted slice.
func sortedTenantStatus(agg map[string]*TenantStatus) []TenantStatus {
	if len(agg) == 0 {
		return nil
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TenantStatus, 0, len(names))
	for _, n := range names {
		out = append(out, *agg[n])
	}
	return out
}

// recordServe folds one served candidate into the tenant's ledger: the
// hit/miss/canceled partition plus the serve-latency histogram (nil when
// telemetry is off — then only the counters move).
func (l *tenantLedger) recordServe(total time.Duration, hit bool, err error) {
	switch {
	case err != nil:
		l.canceled.Add(1)
	case hit:
		l.hits.Add(1)
	default:
		l.misses.Add(1)
	}
	if l.serve != nil {
		l.serve.Observe(total)
	}
}
