package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/runner"
)

// maxRequestBytes bounds a simulate request body (a 10k-candidate batch of
// long step logs stays well under 1 MB; 64 MB leaves headroom without
// letting one client exhaust server memory).
const maxRequestBytes = 64 << 20

// Server is the batch simulation service: per-arch worker shards behind one
// content-addressed result cache (optionally disk-backed, Config.CacheDir).
// It implements Backend directly, which is the Local() in-process mode;
// Handler exposes the same operations over HTTP.
type Server struct {
	cfg    Config
	shards map[isa.Arch]*shard
	cache  *resultCache
	disk   *Store // nil without CacheDir; also reachable as cache.disk
	start  time.Time
	admit  admission
	tel    *telemetry // nil when Config.DisableTelemetry
	// tenants partitions the candidate ledgers by tenant identity — the
	// per-tenant view of the same accounting the fields below keep globally.
	tenants *tenantSet

	requests   atomic.Uint64
	candidates atomic.Uint64
	// rejected counts candidates refused by the admission gate (429). They
	// were never accepted, so they stay outside the candidates counter and
	// the hits+misses+canceled == candidates invariant — like handoff, a
	// parallel ledger.
	rejected atomic.Uint64

	// drainMu orders the draining flag against inflight.Add: Shutdown flips
	// the flag under the write lock, so once it holds the lock no new batch
	// can join the WaitGroup it is about to Wait on.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// NewServer builds a server from the configuration. With Config.CacheDir
// set it opens (or recovers) the durable result store first — scanning the
// segment log rebuilds the key index, so a restarted server serves its
// previously computed corpus as cache hits; the only error paths are
// store-related (unwritable directory, unopenable segments).
func NewServer(cfg Config) (*Server, error) {
	if cfg.MaxResidentResults < 0 {
		return nil, fmt.Errorf("service: MaxResidentResults must be >= 0, got %d", cfg.MaxResidentResults)
	}
	cfg.defaults()
	tel := newTelemetry(cfg.DisableTelemetry, cfg.TraceRingSize, cfg.SlowBatchThreshold, cfg.Archs)
	var disk *Store
	if cfg.CacheDir != "" {
		var err error
		disk, err = OpenStore(cfg.CacheDir, StoreOptions{
			MaxSegmentBytes: cfg.CacheSegmentBytes, WrapFile: cfg.StoreWrapFile,
			WriteHist:   tel.storeWriteHist(),
			CompactHist: tel.storeCompactHist(),
		})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:     cfg,
		shards:  make(map[isa.Arch]*shard, len(cfg.Archs)),
		cache:   newResultCache(cfg.MaxResidentResults, disk),
		disk:    disk,
		start:   time.Now(),
		tel:     tel,
		tenants: newTenantSet(),
	}
	s.admit.init(int64(cfg.MaxQueuedCandidates), cfg.TenantWeights)
	for _, arch := range cfg.Archs {
		s.shards[arch] = newShard(hw.Lookup(arch), cfg.WorkersPerArch)
	}
	return s, nil
}

// Local returns an in-process server with default configuration — the
// no-sockets Backend used by tests, examples and single-machine tuning.
// In-process callers share cached Result values; treat Stats as read-only.
func Local() *Server {
	s, err := NewServer(Config{})
	if err != nil {
		// Unreachable: the default config has no CacheDir, and only the
		// store can fail construction.
		panic(err)
	}
	return s
}

// Close flushes and closes the durable store (a no-op without CacheDir).
// Call it on shutdown so the write-behind queue reaches disk; results
// appended after the last Flush/Close would otherwise be lost to a crash —
// which is safe (they re-simulate) but wasteful. Close is idempotent — the
// drain path (Shutdown), signal handlers and deferred cleanups may all call
// it — and every call returns the first flush/close error rather than
// swallowing it behind a later no-op.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.disk != nil {
			s.closeErr = s.disk.Close()
		}
	})
	return s.closeErr
}

// Shutdown drains the server the way SIGTERM should: it stops admitting new
// batches (they fail with a retryable 503 carrying "draining", and statusz
// reports Draining so a router treats the node as a planned down→up cycle),
// waits for every in-flight batch to finish — their results land in the
// cache and the write-behind store as usual — and then flushes and closes
// the durable store. If ctx expires first, the store is still flushed with
// whatever completed, the stragglers keep running under their own contexts
// (the caller may cancel those; a post-close store write is a safe no-op)
// and ctx's error is returned. Shutdown is idempotent and safe to race with
// Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
	}
	if err := s.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// Draining reports whether Shutdown has started.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Simulate implements Backend: every candidate is served from the result
// cache when possible and otherwise compiled and simulated on the arch's
// shard, at most WorkersPerArch concurrently per batch. Duplicate candidates
// — within the batch or racing with other clients — are simulated once and
// shared through the singleflight layer. Cancelling ctx (server shutdown,
// client disconnect) stops dispatching, lets in-flight simulations finish
// into the cache, and fails the batch as a whole with a retryable error.
//
// Cancellation is never folded into a per-candidate Result.Err: Result.Err
// is reserved for deterministic candidate failures, which clients score as
// +Inf and tuners permanently discard. A canceled batch says nothing about
// any candidate's viability, so it must surface as a batch-level error the
// caller can retry.
func (s *Server) Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	// Drain gate first: once Shutdown has started, no new batch may join
	// the in-flight set. The 503 is retryable — a router fails the batch
	// over to ring successors, exactly like a node that is already gone.
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		return nil, fmt.Errorf("service: %w", unavailablef("draining: shutting down"))
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	defer s.inflight.Done()

	// Telemetry opens before validation so even malformed batches leave a
	// trace (tier "node", the context's trace ID or a freshly minted one).
	var batchStart time.Time
	var tr *obs.ActiveTrace
	if s.tel != nil {
		batchStart = time.Now()
		ctx, tr = s.tel.startTrace(ctx, "node")
		tr.Describe(req.Arch, req.Workload.signature(), len(req.Candidates))
	}

	arch, err := isa.ParseArch(req.Arch)
	if err != nil {
		err = fmt.Errorf("service: %w", badRequestf("%v", err))
		s.tel.finishBatch(tr, nil, nil, batchStart, "node", req.Arch, req.Workload.signature(), len(req.Candidates), err)
		return nil, err
	}
	sh, ok := s.shards[arch]
	if !ok {
		// The arch exists but this node was not configured to serve it: a
		// deployment fact, not a request defect and not a node fault — a
		// router tries a differently-configured replica without taking this
		// node out of rotation.
		err := fmt.Errorf("service: %w",
			unservedf("arch %s not served (configured: %v)", arch, s.cfg.Archs))
		s.tel.finishBatch(tr, nil, nil, batchStart, "node", req.Arch, req.Workload.signature(), len(req.Candidates), err)
		return nil, err
	}
	at := s.tel.forArch(arch)
	factory, err := req.Workload.Factory()
	if err != nil {
		err = fmt.Errorf("service: %w", badRequestf("%v", err))
		if at != nil {
			s.tel.finishBatch(tr, nil, at.batchError, batchStart, "node", req.Arch, req.Workload.signature(), len(req.Candidates), err)
		}
		return nil, err
	}
	// Admission: the request is well-formed but the tenant's share of the
	// gate is full — refuse rather than queue without bound. The gate is
	// weighted-fair (see admission): an aggressor tenant is capped at its
	// share while a tenant under its share is never rejected. Rejected
	// candidates are never "accepted", so they are counted in their own
	// ledgers (global and per-tenant) and the hits+misses+canceled ==
	// candidates invariant is untouched.
	tenant := tenantOf(ctx)
	tl := s.tenants.get(tenant, s.tel)
	var adm0 time.Time
	if s.tel != nil {
		adm0 = time.Now()
	}
	if !s.admit.tryAcquire(tenant, len(req.Candidates)) {
		s.rejected.Add(uint64(len(req.Candidates)))
		tl.rejected.Add(uint64(len(req.Candidates)))
		err := fmt.Errorf("service: %w", overloadedf(s.cfg.RetryAfterHint,
			"overloaded: %d candidates admitted (max %d, tenant %s over fair share)",
			s.admit.cur.Load(), s.cfg.MaxQueuedCandidates, tenant))
		if at != nil {
			s.tel.finishBatch(tr, nil, at.batchRejected, batchStart, "node", req.Arch, req.Workload.signature(), len(req.Candidates), err)
		}
		return nil, err
	}
	if at != nil {
		admDur := time.Since(adm0)
		at.admission.Observe(admDur)
		tr.Span(stageAdmission, adm0, admDur, 1, "")
	}
	defer s.admit.release(tenant, len(req.Candidates))
	s.requests.Add(1)
	s.candidates.Add(uint64(len(req.Candidates)))
	tl.candidates.Add(uint64(len(req.Candidates)))

	// Per-candidate timing state: one slice allocation per batch, nil slots
	// when telemetry is off (candTimings pointers then disable every
	// measurement point down the doTimed/exec path).
	var tms []candTimings
	var agg *batchAgg
	if at != nil {
		tms = make([]candTimings, len(req.Candidates))
		agg = &batchAgg{}
	}

	results := make([]Result, len(req.Candidates))
	var mu sync.Mutex
	var cancelErr error // first cancellation seen by any worker
	var dispatched atomic.Uint64
	perr := runner.ParallelCtx(ctx, s.cfg.WorkersPerArch, len(req.Candidates), func(i int) {
		dispatched.Add(1)
		steps := req.Candidates[i].Steps
		key := CacheKey(arch, sh.prof.Caches, req.Workload, steps)
		var tm *candTimings
		var c0 time.Time
		if at != nil {
			tm = &tms[i]
			c0 = time.Now()
		}
		r, hit, err := s.cache.doTimed(ctx, key, tm, func() (Result, error) {
			return sh.exec(ctx, factory, steps, tm)
		})
		var total time.Duration
		if at != nil {
			total = time.Since(c0)
			at.record(agg, tm, total, hit, err)
		}
		tl.recordServe(total, hit, err)
		if err != nil {
			// Only cancellation reaches here (deterministic failures travel
			// inside Result.Err). If ctx died after ParallelCtx dispatched
			// everything, perr below stays nil — record the abort ourselves.
			mu.Lock()
			if cancelErr == nil {
				cancelErr = err
			}
			mu.Unlock()
			return
		}
		r.CacheHit = hit
		results[i] = r
	})
	if perr == nil {
		perr = cancelErr
	}
	if perr != nil {
		// Candidates ParallelCtx never dispatched were canceled before the
		// cache could see them; charge them to the canceled counters (global
		// and per-tenant) so hits+misses+canceled still reconciles with
		// candidates accepted at both granularities.
		undispatched := uint64(len(req.Candidates)) - dispatched.Load()
		s.cache.canceled.Add(undispatched)
		tl.canceled.Add(undispatched)
		err := fmt.Errorf("service: %w", unavailablef("batch canceled: %v", perr))
		if at != nil {
			s.tel.finishBatch(tr, agg, at.batchCanceled, batchStart, "node", req.Arch, req.Workload.signature(), len(req.Candidates), err)
		}
		return nil, err
	}
	if at != nil {
		s.tel.finishBatch(tr, agg, at.batchOK, batchStart, "node", req.Arch, req.Workload.signature(), len(req.Candidates), nil)
	}
	return &SimulateResponse{Results: results}, nil
}

// Statusz implements Backend.
func (s *Server) Statusz(context.Context) (*Statusz, error) {
	st := &Statusz{
		UptimeSec:          time.Since(s.start).Seconds(),
		Draining:           s.Draining(),
		Requests:           s.requests.Load(),
		Candidates:         s.candidates.Load(),
		RejectedCandidates: s.rejected.Load(),
		CacheHits:          s.cache.hits.Load(),
		CacheMisses:        s.cache.misses.Load(),
		CacheCanceled:      s.cache.canceled.Load(),
		CacheEntries:       s.cache.len(),
		CacheDiskHits:      s.cache.diskHits.Load(),
		CacheEvictions:     s.cache.evictions.Load(),
		HandoffKeys:        s.cache.handoffKeys.Load(),
	}
	st.CacheResident = st.CacheEntries
	if s.disk != nil {
		st.CacheDiskEntries = s.disk.Len()
		st.StoreLiveBytes, st.StoreTotalBytes = s.disk.Bytes()
		st.StoreCompactions = s.disk.Compactions()
	}
	for _, arch := range s.cfg.Archs {
		st.Shards = append(st.Shards, s.shards[arch].status())
	}
	st.Tenants = s.tenantStatuses()
	st.Stages = stageLatencies(s.tel.histSnapshot())
	return st, nil
}

// MetricsSnapshot implements MetricsBackend: every telemetry histogram plus
// the server's counters and gauges as one mergeable snapshot — the
// /v1/metricsz body a router folds into its fleet view. The counters mirror
// statusz (they are the same atomics); the histograms exist only here and
// on /v1/metrics. Works with telemetry disabled too (counters and gauges
// only).
func (s *Server) MetricsSnapshot(context.Context) (*obs.MetricsSnapshot, error) {
	snap := &obs.MetricsSnapshot{Hists: s.tel.histSnapshot()}
	counter := func(name, labels string, v uint64) {
		snap.Counters = append(snap.Counters, obs.ScalarMetric{Name: name, Labels: labels, Value: float64(v)})
	}
	gauge := func(name, labels string, v float64) {
		snap.Gauges = append(snap.Gauges, obs.ScalarMetric{Name: name, Labels: labels, Value: v})
	}
	counter("simtune_requests_total", "", s.requests.Load())
	counter("simtune_candidates_total", "", s.candidates.Load())
	counter("simtune_rejected_candidates_total", "", s.rejected.Load())
	counter("simtune_cache_hits_total", "", s.cache.hits.Load())
	counter("simtune_cache_misses_total", "", s.cache.misses.Load())
	counter("simtune_cache_canceled_total", "", s.cache.canceled.Load())
	counter("simtune_cache_disk_hits_total", "", s.cache.diskHits.Load())
	counter("simtune_cache_evictions_total", "", s.cache.evictions.Load())
	counter("simtune_handoff_keys_total", "", s.cache.handoffKeys.Load())
	gauge("simtune_admitted_candidates", "", float64(s.admit.cur.Load()))
	gauge("simtune_cache_entries", "", float64(s.cache.len()))
	gauge("simtune_cache_resident", "", float64(s.cache.len()))
	for _, arch := range s.cfg.Archs {
		sh := s.shards[arch]
		l := obs.Labels("arch", string(arch))
		counter("simtune_simulated_total", l, sh.simulated.Load())
		gauge("simtune_queue_depth", l, float64(sh.queued.Load()))
		gauge("simtune_running", l, float64(sh.running.Load()))
	}
	// Per-tenant ledgers as tenant-labeled series. The tenant serve-latency
	// histograms (simtune_tenant_serve_seconds) are already in Hists via the
	// registry snapshot; series with the same (name, labels) merge
	// bucket-wise across nodes like every other histogram, so fleet-level
	// per-tenant quantiles stay exact.
	for _, tl := range s.tenants.snapshot() {
		l := obs.Labels("tenant", tl.name)
		counter("simtune_tenant_candidates_total", l, tl.candidates.Load())
		counter("simtune_tenant_rejected_candidates_total", l, tl.rejected.Load())
		counter("simtune_tenant_cache_hits_total", l, tl.hits.Load())
		counter("simtune_tenant_cache_misses_total", l, tl.misses.Load())
		counter("simtune_tenant_cache_canceled_total", l, tl.canceled.Load())
		gauge("simtune_tenant_admitted_candidates", l, float64(s.admit.admitted(tl.name)))
	}
	if s.disk != nil {
		live, total := s.disk.Bytes()
		gauge("simtune_cache_disk_entries", "", float64(s.disk.Len()))
		gauge("simtune_store_live_bytes", "", float64(live))
		gauge("simtune_store_total_bytes", "", float64(total))
		counter("simtune_store_compactions_total", "", s.disk.Compactions())
	}
	snap.Gauges = append(snap.Gauges, obs.RuntimeGauges()...)
	return snap, nil
}

// Keys implements HandoffBackend over the result cache (RAM plus durable
// layer).
func (s *Server) Keys(_ context.Context, lo, hi uint64) ([]Key, error) {
	return s.cache.keysInRange(lo, hi), nil
}

// Fetch implements HandoffBackend.
func (s *Server) Fetch(_ context.Context, keys []Key) ([]Entry, error) {
	return s.cache.fetch(keys), nil
}

// Ingest implements HandoffBackend.
func (s *Server) Ingest(_ context.Context, entries []Entry) (int, error) {
	return s.cache.ingest(entries), nil
}

// Handler returns the HTTP surface of the server:
//
//	POST /v1/simulate — SimulateRequest in, SimulateResponse out
//	GET  /v1/statusz  — Statusz out
//	GET  /v1/metrics  — Prometheus text exposition
//	GET  /v1/metricsz — mergeable obs.MetricsSnapshot (JSON)
//	GET  /v1/traces   — recent batch traces (when tracing is on)
//
// Requests run under the HTTP request context, so a disconnecting client
// aborts its own batch's undispatched work.
func (s *Server) Handler() http.Handler { return backendHandler(s, s.tel, s.cfg.EnablePprof) }

// backendHandler exposes any Backend over the wire protocol — the one
// handler serves both a leaf *Server and a *Router, which is what keeps the
// protocol identical at every tier. Error responses carry the Error
// classification as their status: 4xx for request defects, 5xx for server
// faults and cancellation, so routers and dashboards can tell "this batch
// can never succeed" from "retry elsewhere".
//
// tel (nil when the tier runs without telemetry) supplies the trace ring
// behind /v1/traces and the encode-stage histogram; enablePprof mounts
// net/http/pprof under /debug/pprof/.
func backendHandler(b Backend, tel *telemetry, enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req SimulateRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
		// The trace ID travels as a header across the wire and as a context
		// value inside the process; echoing it on the response lets callers
		// join their batch to this tier's /v1/traces without re-parsing logs.
		ctx := r.Context()
		if id := r.Header.Get(obs.TraceHeader); id != "" {
			ctx = obs.WithTrace(ctx, id)
			w.Header().Set(obs.TraceHeader, id)
		}
		// The tenant identity travels the same way as the trace ID: header
		// on the wire, context value in the process. A router forwards the
		// same context to its node clients, so the identity survives the
		// fan-out; absent or invalid identities resolve to DefaultTenant at
		// admission time.
		if tnt := r.Header.Get(TenantHeader); tnt != "" {
			ctx = WithTenant(ctx, tnt)
		}
		resp, err := b.Simulate(ctx, &req)
		if err != nil {
			writeError(w, err)
			return
		}
		if tel != nil {
			e0 := time.Now()
			writeJSON(w, resp)
			ed := time.Since(e0)
			tel.encode.Observe(ed)
			// The batch trace sealed inside Simulate; attach the encode span
			// after the fact. Only wire-identified batches can be amended —
			// a server-minted ID never escapes Simulate's context.
			if id := obs.TraceID(ctx); id != "" {
				tel.traces.Amend(id, obs.Span{
					Stage: stageEncode, StartNS: e0.UnixNano(), DurNS: int64(ed), N: 1,
				})
			}
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/statusz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		st, err := b.Statusz(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, st)
	})
	if mb, ok := b.(MetricsBackend); ok {
		registerMetricsRoutes(mux, mb)
	}
	if tel != nil && tel.traces != nil {
		mux.HandleFunc("/v1/traces", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				httpError(w, http.StatusMethodNotAllowed, "GET only")
				return
			}
			traces, total := tel.traces.Snapshot()
			writeJSON(w, &TracesResponse{Total: total, Traces: traces})
		})
	}
	if hb, ok := b.(HandoffBackend); ok {
		registerHandoffRoutes(mux, hb)
	}
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// registerMetricsRoutes exposes the telemetry snapshot twice: rendered for a
// Prometheus scraper (/v1/metrics) and as the raw mergeable JSON a router
// folds into its fleet view (/v1/metricsz).
func registerMetricsRoutes(mux *http.ServeMux, mb MetricsBackend) {
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		snap, err := mb.MetricsSnapshot(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
	})
	mux.HandleFunc("/v1/metricsz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		snap, err := mb.MetricsSnapshot(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, snap)
	})
}

// registerHandoffRoutes exposes the replication triple. Only backends that
// implement HandoffBackend (leaf servers) get these routes; on a router the
// paths 404 like any other unknown path.
func registerHandoffRoutes(mux *http.ServeMux, hb HandoffBackend) {
	mux.HandleFunc("/v1/keys", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		lo, hi := uint64(0), ^uint64(0)
		if rng := r.URL.Query().Get("range"); rng != "" {
			var err error
			if lo, hi, err = parseKeyRange(rng); err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		keys, err := hb.Keys(r.Context(), lo, hi)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, &KeysResponse{Keys: keys})
	})
	mux.HandleFunc("/v1/fetch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req FetchRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
		entries, err := hb.Fetch(r.Context(), req.Keys)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, &FetchResponse{Entries: entries})
	})
	mux.HandleFunc("/v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req IngestRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
		n, err := hb.Ingest(r.Context(), req.Entries)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, &IngestResponse{Ingested: n})
	})
}

// parseKeyRange parses the "?range=lo-hi" query form: two 16-digit hex ring
// positions. lo > hi is valid and wraps through zero (a ring arc).
func parseKeyRange(s string) (lo, hi uint64, err error) {
	dash := strings.IndexByte(s, '-')
	if dash < 0 {
		return 0, 0, fmt.Errorf("range %q: want lo-hi (hex uint64 pair)", s)
	}
	if lo, err = strconv.ParseUint(s[:dash], 16, 64); err != nil {
		return 0, 0, fmt.Errorf("range %q: %v", s, err)
	}
	if hi, err = strconv.ParseUint(s[dash+1:], 16, 64); err != nil {
		return 0, 0, fmt.Errorf("range %q: %v", s, err)
	}
	return lo, hi, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeError renders a backend error with its Error classification as the
// HTTP status. An overload rejection additionally carries its pacing hint
// twice: the standard Retry-After header (whole seconds, ceiling — the header
// cannot express less) and a retry_after_ms body field preserving sub-second
// precision for our own client.
func writeError(w http.ResponseWriter, err error) {
	var se *Error
	if errors.As(err, &se) && se.RetryAfter > 0 {
		secs := int64((se.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(se.Status)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error":          err.Error(),
			"retry_after_ms": se.RetryAfter.Milliseconds(),
		})
		return
	}
	httpError(w, httpStatus(err), err.Error())
}

// ListenAndServe runs the HTTP server until ctx is cancelled, then drains:
// Server.Shutdown stops admitting (new batches 503 with "draining" and
// statusz reports Draining, so a router rotates the node out as a planned
// restart), in-flight batches finish and the store is flushed and closed —
// all bounded by Config.DrainTimeout. Only if the drain deadline passes are
// the stragglers hard-aborted through their request contexts.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	return serveHTTP(ctx, addr, s.Handler(), func() error {
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		return s.Shutdown(drainCtx)
	})
}

// serveHTTP is the shared listen/shutdown loop behind Server.ListenAndServe
// and Router.ListenAndServe. Request contexts derive from an internal base
// context that outlives ctx: cancelling ctx triggers drain (when the backend
// has one) with in-flight batches still running; the base is cancelled only
// after drain returns, hard-aborting whatever the drain deadline left behind.
func serveHTTP(ctx context.Context, addr string, h http.Handler, drain func() error) error {
	baseCtx, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	httpSrv := &http.Server{
		Addr:        addr,
		Handler:     h,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		var drainErr error
		if drain != nil {
			drainErr = drain()
		}
		hardStop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shutdownCtx)
		if drainErr != nil {
			return drainErr
		}
		return err
	}
}
