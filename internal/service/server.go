package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/runner"
)

// maxRequestBytes bounds a simulate request body (a 10k-candidate batch of
// long step logs stays well under 1 MB; 64 MB leaves headroom without
// letting one client exhaust server memory).
const maxRequestBytes = 64 << 20

// Server is the batch simulation service: per-arch worker shards behind one
// content-addressed result cache. It implements Backend directly, which is
// the Local() in-process mode; Handler exposes the same operations over
// HTTP.
type Server struct {
	cfg    Config
	shards map[isa.Arch]*shard
	cache  *resultCache
	start  time.Time

	requests   atomic.Uint64
	candidates atomic.Uint64
}

// NewServer builds a server from the configuration.
func NewServer(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:    cfg,
		shards: make(map[isa.Arch]*shard, len(cfg.Archs)),
		cache:  newResultCache(cfg.CacheCapacity),
		start:  time.Now(),
	}
	for _, arch := range cfg.Archs {
		s.shards[arch] = newShard(hw.Lookup(arch), cfg.WorkersPerArch)
	}
	return s
}

// Local returns an in-process server with default configuration — the
// no-sockets Backend used by tests, examples and single-machine tuning.
// In-process callers share cached Result values; treat Stats as read-only.
func Local() *Server { return NewServer(Config{}) }

// Simulate implements Backend: every candidate is served from the result
// cache when possible and otherwise compiled and simulated on the arch's
// shard, at most WorkersPerArch concurrently per batch. Duplicate candidates
// — within the batch or racing with other clients — are simulated once and
// shared through the singleflight layer. Cancelling ctx (server shutdown,
// client disconnect) stops dispatching, lets in-flight simulations finish
// into the cache, and returns the context error.
func (s *Server) Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	arch, err := isa.ParseArch(req.Arch)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	sh, ok := s.shards[arch]
	if !ok {
		return nil, fmt.Errorf("service: arch %s not served (configured: %v)", arch, s.cfg.Archs)
	}
	factory, err := req.Workload.Factory()
	if err != nil {
		return nil, err
	}
	s.requests.Add(1)
	s.candidates.Add(uint64(len(req.Candidates)))

	results := make([]Result, len(req.Candidates))
	perr := runner.ParallelCtx(ctx, s.cfg.WorkersPerArch, len(req.Candidates), func(i int) {
		steps := req.Candidates[i].Steps
		key := CacheKey(arch, sh.prof.Caches, req.Workload, steps)
		r, hit, err := s.cache.do(ctx, key, func() (Result, error) {
			return sh.exec(ctx, factory, steps)
		})
		if err != nil {
			results[i] = Result{Err: "canceled: " + err.Error()}
			return
		}
		r.CacheHit = hit
		results[i] = r
	})
	if perr != nil {
		return nil, fmt.Errorf("service: batch aborted: %w", perr)
	}
	return &SimulateResponse{Results: results}, nil
}

// Statusz implements Backend.
func (s *Server) Statusz(context.Context) (*Statusz, error) {
	st := &Statusz{
		UptimeSec:    time.Since(s.start).Seconds(),
		Requests:     s.requests.Load(),
		Candidates:   s.candidates.Load(),
		CacheHits:    s.cache.hits.Load(),
		CacheMisses:  s.cache.misses.Load(),
		CacheEntries: s.cache.len(),
	}
	for _, arch := range s.cfg.Archs {
		st.Shards = append(st.Shards, s.shards[arch].status())
	}
	return st, nil
}

// Handler returns the HTTP surface of the server:
//
//	POST /v1/simulate — SimulateRequest in, SimulateResponse out
//	GET  /v1/statusz  — Statusz out
//
// Requests run under the HTTP request context, so a disconnecting client
// aborts its own batch's undispatched work.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	mux.HandleFunc("/v1/statusz", s.handleStatusz)
	return mux
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SimulateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	resp, err := s.Simulate(r.Context(), &req)
	if err != nil {
		status := http.StatusBadRequest
		if r.Context().Err() != nil {
			// The client is gone; the status is moot but 499-style intent
			// should not read as a server fault in logs.
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st, err := s.Statusz(r.Context())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, st)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ListenAndServe runs the HTTP server until ctx is cancelled, then shuts
// down. Request contexts derive from ctx (BaseContext), so cancelling it
// aborts in-flight batches too: ParallelCtx stops dispatching, the
// already-running simulations drain into the cache, handlers return, and
// Shutdown completes — Shutdown alone would wait out active handlers
// without ever cancelling them.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	httpSrv := &http.Server{
		Addr:        addr,
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutdownCtx)
	}
}
