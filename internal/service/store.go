package service

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The durable result store: an append-only segment log of
// (sha256 key, JSON-encoded Result) records under one directory, with an
// in-memory key→offset index rebuilt by scanning the segments on startup.
// It sits beneath resultCache as a write-behind layer — appends are queued
// to a single writer goroutine so the simulate hot path never waits on a
// disk write — and it is what lets a restarted node serve its previously
// computed corpus as cache hits instead of re-simulating at the cold rate.
//
// Durability model: results are deterministic and content-addressed, so the
// store never needs ordering, transactions or freshness — a record is
// immutable once written and a duplicate record for the same key is merely
// wasted bytes (the index keeps the last one; compaction drops the rest).
// Crash safety follows from the same property: a torn or garbage tail is
// detected by record checksums, logged, and skipped — the node simply
// restarts with the valid prefix and re-simulates whatever the tail lost.
// Every Open starts a fresh segment, so new records are never appended
// after a torn tail inside an old file.
//
// On-disk layout (little-endian):
//
//	<dir>/seg-00000001.log, seg-00000002.log, ...   (ids monotonically grow)
//	segment := magic "SIMSTORE1\n" record*
//	record  := uint32 payloadLen | key [32]byte | payload | uint32 crc32(key‖payload)
const (
	storeMagic = "SIMSTORE1\n"
	// recordOverhead is the fixed framing around a payload.
	recordOverhead = 4 + keySize + 4
	keySize        = 32
	// maxRecordBytes is a scan-time sanity bound: a length prefix above it
	// is treated as corruption, not as a 4 GB allocation request.
	maxRecordBytes = 16 << 20
	// defaultSegmentBytes rotates the active segment once it grows past
	// this, bounding the blast radius of a torn tail and giving compaction
	// whole files to drop.
	defaultSegmentBytes = 64 << 20
	// compactMinDeadBytes is the floor of the background-compaction trigger:
	// a pass starts only once dead bytes exceed both this floor and the live
	// bytes (so small stores never churn and a pass always at least halves
	// the on-disk footprint).
	compactMinDeadBytes = 1 << 20
)

// StoreFile is the slice of *os.File the store actually uses — the seam the
// fault-injection harness wraps to exercise short writes and fsync errors
// without a real failing disk. Production stores use *os.File directly.
type StoreFile interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	Sync() error
	Close() error
}

// StoreOptions tune a Store. The zero value is production-ready.
type StoreOptions struct {
	// MaxSegmentBytes rotates the active segment past this size
	// (default 64 MB).
	MaxSegmentBytes int64
	// Logf sinks corruption and compaction warnings (default log.Printf).
	Logf func(format string, args ...any)
	// WrapFile, when set, wraps every segment file handle the store opens.
	// Fault-injection hook; nil means use the file as-is.
	WrapFile func(*os.File) StoreFile
	// WriteHist, when non-nil, records the latency of every write-behind
	// append (encode + frame + disk write) — the store_write telemetry
	// stage. The appends run on the writer goroutine, so this measures the
	// durability lag, not anything on the serve path.
	WriteHist *obs.Histogram
	// CompactHist, when non-nil, records the latency of every compaction
	// pass (startup-triggered, background-triggered, or explicit) — the
	// compact telemetry stage. Compactions run on the writer goroutine, off
	// the serve path.
	CompactHist *obs.Histogram
}

// recordRef locates one live record: segment id, payload offset, payload
// length.
type recordRef struct {
	seg int
	off int64
	n   int
}

// storeOp is one unit of writer-goroutine work: an append, a flush barrier
// (flush non-nil), or a compaction pass (compact non-nil).
type storeOp struct {
	key     Key
	res     Result
	flush   chan error
	compact chan error
}

// Store is the disk layer. All mutation of segment files happens on the
// single writer goroutine (appends, rotation, compaction), so file state
// needs no locking; mu guards the maps (index, pending, readers) that the
// concurrent read paths share with it.
type Store struct {
	dir         string
	maxSeg      int64
	logf        func(format string, args ...any)
	wrap        func(*os.File) StoreFile
	writeHist   *obs.Histogram // nil: append latency not recorded
	compactHist *obs.Histogram // nil: compaction latency not recorded

	// compactions counts completed compaction passes (statusz surface).
	compactions atomic.Uint64

	mu         sync.Mutex
	index      map[Key]recordRef
	pending    map[Key]Result // queued for the writer, not yet indexed
	readers    map[int]StoreFile
	active     StoreFile
	activeID   int
	activeSize int64
	liveBytes  int64 // bytes of records the index references
	totalBytes int64 // bytes of all records on disk (dead ones included)

	queue chan storeOp
	wg    sync.WaitGroup

	// sendMu serializes queue sends against Close: senders hold the read
	// lock (so Close cannot close the channel under them) and check closed.
	sendMu sync.RWMutex
	closed bool
}

// enqueue submits op to the writer unless the store is closed. Senders may
// block on a full queue while holding the read lock; that is safe — the
// writer keeps draining until Close (which needs the write lock) can
// proceed.
func (s *Store) enqueue(op storeOp) bool {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return false
	}
	s.queue <- op
	return true
}

// OpenStore opens (creating if needed) the durable store in dir, scanning
// every segment to rebuild the key→offset index. Corrupt segment tails are
// skipped with a warning; they never fail the open. If the scan finds more
// dead than live bytes, a compaction pass is queued onto the writer
// goroutine — the open returns immediately and the store serves reads while
// the rewrite runs behind it.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultSegmentBytes
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	s := &Store{
		dir:         dir,
		maxSeg:      opts.MaxSegmentBytes,
		logf:        opts.Logf,
		wrap:        opts.WrapFile,
		writeHist:   opts.WriteHist,
		compactHist: opts.CompactHist,
		index:       make(map[Key]recordRef),
		pending:     make(map[Key]Result),
		readers:     make(map[int]StoreFile),
		queue:       make(chan storeOp, 1024),
	}
	ids, err := s.segmentIDs()
	if err != nil {
		return nil, err
	}
	maxID := 0
	for _, id := range ids {
		if err := s.scanSegment(id); err != nil {
			return nil, err
		}
		if id > maxID {
			maxID = id
		}
	}
	// A fresh segment per process lifetime: appends never land after a torn
	// tail inside an old file, and restart recovery stays scan-only.
	if err := s.openActive(maxID + 1); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go s.writer()
	if s.shouldCompact() {
		// Queue (don't run) the startup pass: the open path must not block
		// on a full-log rewrite. The queue is empty and buffered, so this
		// cannot block either; the buffered ack is deliberately unread.
		ack := make(chan error, 1)
		s.enqueue(storeOp{compact: ack})
	}
	return s, nil
}

// shouldCompact reports whether dead bytes justify a compaction pass. It
// takes mu only for the byte counters — never across the pass itself.
func (s *Store) shouldCompact() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	dead := s.totalBytes - s.liveBytes
	return dead > compactMinDeadBytes && dead > s.liveBytes
}

// Compactions reports how many compaction passes have completed.
func (s *Store) Compactions() uint64 { return s.compactions.Load() }

// segmentIDs lists existing segment ids in ascending order.
func (s *Store) segmentIDs() ([]int, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	var ids []int
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &id); err == nil && id > 0 {
			ids = append(ids, id)
		} else {
			s.logf("service/store: ignoring unrecognized file %s", name)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", id))
}

// wrapFile applies the WrapFile fault hook, if any.
func (s *Store) wrapFile(f *os.File) StoreFile {
	if s.wrap != nil {
		return s.wrap(f)
	}
	return f
}

// scanSegment replays one segment into the index, stopping (with a warning)
// at the first truncated or corrupt record — the valid prefix stays live.
// Later segments override earlier records for the same key.
func (s *Store) scanSegment(id int) error {
	osf, err := os.Open(s.segPath(id))
	if err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	f := s.wrapFile(osf)
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != storeMagic {
		s.logf("service/store: segment %s has no valid header — skipping file", s.segPath(id))
		f.Close()
		return nil
	}
	off := int64(len(storeMagic))
	var header [4 + keySize]byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("service/store: segment %s: truncated record header at offset %d — keeping valid prefix", s.segPath(id), off)
			}
			break
		}
		n := int(binary.LittleEndian.Uint32(header[:4]))
		if n > maxRecordBytes {
			s.logf("service/store: segment %s: implausible record length %d at offset %d — keeping valid prefix", s.segPath(id), n, off)
			break
		}
		var k Key
		copy(k[:], header[4:])
		payload := make([]byte, n+4)
		if _, err := io.ReadFull(br, payload); err != nil {
			s.logf("service/store: segment %s: truncated record payload at offset %d — keeping valid prefix", s.segPath(id), off)
			break
		}
		sum := crc32.ChecksumIEEE(k[:])
		sum = crc32.Update(sum, crc32.IEEETable, payload[:n])
		if binary.LittleEndian.Uint32(payload[n:]) != sum {
			s.logf("service/store: segment %s: checksum mismatch at offset %d — keeping valid prefix", s.segPath(id), off)
			break
		}
		size := int64(recordOverhead + n)
		if old, ok := s.index[k]; ok {
			s.liveBytes -= int64(recordOverhead + old.n)
		}
		s.index[k] = recordRef{seg: id, off: off + 4 + keySize, n: n}
		s.liveBytes += size
		s.totalBytes += size
		off += size
	}
	// Keep the handle for ReadAt; the bufio reader is discarded.
	s.readers[id] = f
	return nil
}

// openActive creates segment id and makes it the append target.
func (s *Store) openActive(id int) error {
	osf, err := os.OpenFile(s.segPath(id), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	f := s.wrapFile(osf)
	if _, err := f.Write([]byte(storeMagic)); err != nil {
		f.Close()
		return fmt.Errorf("service: store: %w", err)
	}
	s.active = f
	s.activeID = id
	s.activeSize = int64(len(storeMagic))
	s.readers[id] = f
	return nil
}

// Put schedules a write-behind append of (k, r). It is idempotent — keys
// already on disk or already queued are skipped — and returns quickly; the
// record reaches disk when the writer goroutine drains to it (Flush forces
// that).
func (s *Store) Put(k Key, r Result) {
	s.mu.Lock()
	if _, ok := s.index[k]; ok {
		s.mu.Unlock()
		return
	}
	if _, ok := s.pending[k]; ok {
		s.mu.Unlock()
		return
	}
	s.pending[k] = r
	s.mu.Unlock()
	if !s.enqueue(storeOp{key: k, res: r}) {
		s.mu.Lock()
		delete(s.pending, k)
		s.mu.Unlock()
	}
}

// Get returns the stored result for k, reading it back from its segment
// (or from the pending write-behind queue). The disk read and JSON decode
// run outside mu — post-restart recovery traffic pays one Get per key and
// must not serialize on the store lock — so a concurrent compaction can
// close the segment under the read; the retry re-resolves through the
// freshly swapped index.
func (s *Store) Get(k Key) (Result, bool) {
	for attempt := 0; attempt < 2; attempt++ {
		s.mu.Lock()
		if r, ok := s.pending[k]; ok {
			s.mu.Unlock()
			return r, true
		}
		ref, ok := s.index[k]
		if !ok {
			s.mu.Unlock()
			return Result{}, false
		}
		f, ok := s.readers[ref.seg]
		s.mu.Unlock()
		if !ok {
			continue // index/readers raced a compaction swap; re-resolve
		}
		buf := make([]byte, ref.n)
		if _, err := f.ReadAt(buf, ref.off); err != nil {
			if attempt == 0 {
				continue // likely a compaction closed the segment mid-read
			}
			s.logf("service/store: read %x: %v", k[:4], err)
			return Result{}, false
		}
		var r Result
		if err := json.Unmarshal(buf, &r); err != nil {
			if attempt == 0 {
				continue
			}
			s.logf("service/store: decode %x: %v", k[:4], err)
			return Result{}, false
		}
		return r, true
	}
	return Result{}, false
}

// Has reports whether k is stored (on disk or pending).
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pending[k]; ok {
		return true
	}
	_, ok := s.index[k]
	return ok
}

// Len reports the number of stored keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index) + len(s.pending)
}

// Bytes reports the segment footprint: live is the record bytes the index
// still references, total is everything on disk including dead records
// (superseded duplicates, skipped tails) awaiting compaction.
func (s *Store) Bytes() (live, total int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes, s.totalBytes
}

// Keys lists the stored keys whose ring position falls in [lo, hi]
// (wrapping when lo > hi, so a ring arc that crosses zero is one range).
func (s *Store) Keys(lo, hi uint64) []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, 0, len(s.index)+len(s.pending))
	for k := range s.index {
		if posInRange(keyPos(k), lo, hi) {
			out = append(out, k)
		}
	}
	for k := range s.pending {
		if posInRange(keyPos(k), lo, hi) {
			out = append(out, k)
		}
	}
	return out
}

// posInRange reports lo <= pos <= hi on the ring: a range with lo > hi
// wraps through zero.
func posInRange(pos, lo, hi uint64) bool {
	if lo <= hi {
		return lo <= pos && pos <= hi
	}
	return pos >= lo || pos <= hi
}

// Flush blocks until every append queued before it is on disk and synced.
func (s *Store) Flush() error {
	ack := make(chan error, 1)
	if !s.enqueue(storeOp{flush: ack}) {
		return nil
	}
	return <-ack
}

// Close flushes, stops the writer and closes every segment handle. The
// store is unusable afterwards (Put becomes a no-op, Get misses).
func (s *Store) Close() error {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return nil
	}
	s.closed = true
	s.sendMu.Unlock()
	close(s.queue)
	s.wg.Wait()
	// Detach the file handles under mu, then sync and close them outside
	// it: fsync can stall on a slow disk, and anything serialized on mu
	// (Get, Has, statusz byte counts) must not stall with it. After
	// wg.Wait the writer is gone, so nobody re-populates the maps.
	s.mu.Lock()
	active := s.active
	handles := make([]StoreFile, 0, len(s.readers))
	for id, f := range s.readers {
		handles = append(handles, f)
		delete(s.readers, id)
	}
	s.active = nil
	s.index = map[Key]recordRef{}
	s.pending = map[Key]Result{}
	s.mu.Unlock()
	var firstErr error
	if err := active.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	for _, f := range handles {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// writer is the single goroutine that owns the segment files: it drains
// appends, honours flush barriers and rotates segments.
func (s *Store) writer() {
	defer s.wg.Done()
	for op := range s.queue {
		if op.flush != nil {
			op.flush <- s.active.Sync()
			continue
		}
		if op.compact != nil {
			op.compact <- s.runCompact()
			continue
		}
		var a0 time.Time
		if s.writeHist != nil {
			a0 = time.Now()
		}
		err := s.append(op.key, op.res)
		if s.writeHist != nil {
			s.writeHist.Observe(time.Since(a0))
		}
		if err != nil {
			s.logf("service/store: append %x: %v", op.key[:4], err)
			s.mu.Lock()
			delete(s.pending, op.key)
			s.mu.Unlock()
			continue
		}
		if s.shouldCompact() {
			// Run the pass directly: the writer must never enqueue onto its
			// own queue (it is the sole drainer — a full queue would
			// deadlock). Appends queued meanwhile just wait; the serve path
			// never does, it only enqueues.
			if cerr := s.runCompact(); cerr != nil {
				s.logf("service/store: background compaction: %v", cerr)
			}
		}
	}
}

// runCompact is the timed, counted wrapper every compaction path (startup
// queue, dead-bytes trigger, explicit Compact) goes through.
func (s *Store) runCompact() error {
	var c0 time.Time
	if s.compactHist != nil {
		c0 = time.Now()
	}
	err := s.compact()
	if s.compactHist != nil {
		s.compactHist.Observe(time.Since(c0))
	}
	if err == nil {
		s.compactions.Add(1)
	}
	return err
}

// append encodes and writes one record, then publishes it to the index.
func (s *Store) append(k Key, r Result) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if len(payload) > maxRecordBytes {
		// The scan-time sanity bound would treat this record — and every
		// record after it in the segment — as corruption on the next open,
		// silently truncating recovery. Refusing to persist it keeps the
		// log recoverable; the result simply re-simulates after a restart.
		return fmt.Errorf("result payload %d bytes exceeds the %d-byte record bound; not persisted",
			len(payload), maxRecordBytes)
	}
	rec := encodeRecord(k, payload)
	if s.activeSize+int64(len(rec)) > s.maxSeg {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	off := s.activeSize
	if _, err := s.active.WriteAt(rec, off); err != nil {
		return err
	}
	s.mu.Lock()
	s.activeSize += int64(len(rec))
	s.index[k] = recordRef{seg: s.activeID, off: off + 4 + keySize, n: len(payload)}
	delete(s.pending, k)
	s.liveBytes += int64(len(rec))
	s.totalBytes += int64(len(rec))
	s.mu.Unlock()
	return nil
}

// encodeRecord frames one (key, payload) record.
func encodeRecord(k Key, payload []byte) []byte {
	rec := make([]byte, recordOverhead+len(payload))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	copy(rec[4:], k[:])
	copy(rec[4+keySize:], payload)
	sum := crc32.ChecksumIEEE(k[:])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(rec[len(rec)-4:], sum)
	return rec
}

// rotate syncs and retires the active segment and opens the next one.
func (s *Store) rotate() error {
	if err := s.active.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.openActive(s.activeID + 1)
}

// Compact rewrites every live record into fresh segments and deletes the
// old files, dropping dead bytes (superseded duplicates, skipped tails).
// Live keys are preserved exactly. The pass runs on the writer goroutine,
// so no append interleaves with it, and the rewrite itself runs unlocked —
// mu is held only to snapshot the index and to swap in the new layout, so
// concurrent Get/Keys are never stalled for the duration of the copy and
// see either the old or the new layout, never a mix.
func (s *Store) Compact() error {
	ack := make(chan error, 1)
	if !s.enqueue(storeOp{compact: ack}) {
		return nil
	}
	return <-ack
}

// compact does the rewrite. It must run on the writer goroutine: that is
// what guarantees no append mutates the segments mid-pass, which lets the
// bulk copy proceed without holding mu. Concurrent Get/ReadAt on the old segments is safe — they are not
// closed or removed until the swap, which happens under mu.
func (s *Store) compact() error {
	// Phase 1 (under mu): snapshot the live layout.
	s.mu.Lock()
	oldIDs := make([]int, 0, len(s.readers))
	oldReaders := make(map[int]StoreFile, len(s.readers))
	for id, f := range s.readers {
		oldIDs = append(oldIDs, id)
		oldReaders[id] = f
	}
	sort.Ints(oldIDs)
	nextID := s.activeID + 1

	type liveRec struct {
		k   Key
		ref recordRef
	}
	live := make([]liveRec, 0, len(s.index))
	for k, ref := range s.index {
		live = append(live, liveRec{k, ref})
	}
	s.mu.Unlock()
	// Deterministic rewrite order (by segment, then offset) keeps locality
	// and makes the pass reproducible.
	sort.Slice(live, func(i, j int) bool {
		if live[i].ref.seg != live[j].ref.seg {
			return live[i].ref.seg < live[j].ref.seg
		}
		return live[i].ref.off < live[j].ref.off
	})

	newIndex := make(map[Key]recordRef, len(live))
	var newLive int64
	var out StoreFile
	outID := 0
	var outSize int64
	newReaders := make(map[int]StoreFile)
	openOut := func() error {
		osf, err := os.OpenFile(s.segPath(nextID), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		f := s.wrapFile(osf)
		if _, err := f.Write([]byte(storeMagic)); err != nil {
			f.Close()
			return err
		}
		out, outID, outSize = f, nextID, int64(len(storeMagic))
		newReaders[outID] = f
		nextID++
		return nil
	}
	fail := func(err error) error {
		for id, f := range newReaders {
			f.Close()
			os.Remove(s.segPath(id))
		}
		return fmt.Errorf("service: store: compact: %w", err)
	}
	if err := openOut(); err != nil {
		return fail(err)
	}
	for _, lr := range live {
		src, ok := oldReaders[lr.ref.seg]
		if !ok {
			return fail(fmt.Errorf("segment %d vanished", lr.ref.seg))
		}
		payload := make([]byte, lr.ref.n)
		if _, err := src.ReadAt(payload, lr.ref.off); err != nil {
			return fail(err)
		}
		rec := encodeRecord(lr.k, payload)
		if outSize+int64(len(rec)) > s.maxSeg && outSize > int64(len(storeMagic)) {
			if err := out.Sync(); err != nil {
				return fail(err)
			}
			if err := openOut(); err != nil {
				return fail(err)
			}
		}
		if _, err := out.WriteAt(rec, outSize); err != nil {
			return fail(err)
		}
		newIndex[lr.k] = recordRef{seg: outID, off: outSize + 4 + keySize, n: lr.ref.n}
		outSize += int64(len(rec))
		newLive += int64(len(rec))
	}
	if err := out.Sync(); err != nil {
		return fail(err)
	}
	// Phase 3 (under mu): swap — new segments live, the last one becomes
	// the append target. No append ran since the snapshot (this is the
	// writer goroutine), so newIndex is complete. The old handles are only
	// unlinked from the maps here; closing and unlinking the files happens
	// after the unlock — a Get that raced past the swap and still reads an
	// old segment sees the close, and its documented retry re-resolves
	// through the fresh index.
	s.mu.Lock()
	for _, id := range oldIDs {
		delete(s.readers, id)
	}
	for id, f := range newReaders {
		s.readers[id] = f
	}
	s.index = newIndex
	s.active = out
	s.activeID = outID
	s.activeSize = outSize
	s.liveBytes = newLive
	s.totalBytes = newLive
	s.mu.Unlock()
	for _, id := range oldIDs {
		oldReaders[id].Close()
		if err := os.Remove(s.segPath(id)); err != nil {
			s.logf("service/store: compact: remove %s: %v", s.segPath(id), err)
		}
	}
	s.logf("service/store: compacted %d segments into %d (%d live keys, %d bytes)",
		len(oldIDs), len(newReaders), len(newIndex), newLive)
	return nil
}
