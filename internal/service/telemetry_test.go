package service

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/te"
)

// promLine matches one Prometheus text-exposition sample:
// name{labels} value. Labels are optional; the value must parse as a float.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// validatePrometheus is a minimal exposition-format checker: every line is a
// comment or a parseable sample, histogram families have a le="+Inf" bucket
// whose cumulative count equals the family's _count, and bucket series are
// non-decreasing in file order. It returns the set of sampled metric names.
func validatePrometheus(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	// family+labels (minus le) → last cumulative value and whether +Inf seen.
	type bucketState struct {
		last    float64
		infSeen bool
		inf     float64
	}
	buckets := map[string]*bucketState{}
	counts := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line %q", line)
		}
		name, labels := m[1], m[2]
		val, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %q: value %q is not a float: %v", line, m[3], err)
		}
		names[name] = true
		if labels == "{}" {
			t.Fatalf("line %q: empty brace pair is not valid exposition syntax", line)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le := ""
			rest := []string{}
			for _, kv := range strings.Split(strings.Trim(labels, "{}"), ",") {
				if strings.HasPrefix(kv, "le=") {
					le = strings.Trim(strings.TrimPrefix(kv, "le="), `"`)
				} else if kv != "" {
					rest = append(rest, kv)
				}
			}
			if le == "" {
				t.Fatalf("bucket line %q has no le label", line)
			}
			key := strings.TrimSuffix(name, "_bucket") + "{" + strings.Join(rest, ",") + "}"
			bs := buckets[key]
			if bs == nil {
				bs = &bucketState{}
				buckets[key] = bs
			}
			if val < bs.last {
				t.Fatalf("bucket series %s not cumulative: %v after %v", key, val, bs.last)
			}
			bs.last = val
			if le == "+Inf" {
				bs.infSeen, bs.inf = true, val
			}
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")+labels] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for key, bs := range buckets {
		if !bs.infSeen {
			t.Fatalf("histogram %s has no le=\"+Inf\" bucket", key)
		}
		if c, ok := counts[key]; !ok || c != bs.inf {
			t.Fatalf("histogram %s: +Inf bucket %v != _count %v", key, bs.inf, c)
		}
	}
	return names
}

// TestMetricsEndpointPrometheusParseable scrapes a node that has served a
// warm and a cold batch and validates the whole /v1/metrics body: correct
// content type, parseable exposition syntax, cumulative buckets, and the
// series an operator would alert on actually present.
func TestMetricsEndpointPrometheusParseable(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req := &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 3),
	}
	c := NewClient(hs.URL)
	for i := 0; i < 2; i++ { // second round is all cache hits
		if _, err := c.Simulate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	names := validatePrometheus(t, string(body))
	for _, want := range []string{
		"simtune_requests_total",
		"simtune_candidates_total",
		"simtune_cache_hits_total",
		"simtune_stage_duration_seconds_bucket",
		"simtune_candidate_serve_seconds_count",
		"simtune_batch_duration_seconds_sum",
		"simtune_goroutines",
	} {
		if !names[want] {
			t.Errorf("scrape is missing %s", want)
		}
	}

	// The mergeable JSON twin carries the same state for router merging.
	snap, err := c.MetricsSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Hists) == 0 || len(snap.Counters) == 0 {
		t.Fatalf("metricsz snapshot is empty: %+v", snap)
	}
	for _, c := range snap.Counters {
		if c.Name == "simtune_requests_total" {
			if c.Value != 2 {
				t.Fatalf("simtune_requests_total = %v, want 2", c.Value)
			}
			return
		}
	}
	t.Fatal("metricsz snapshot has no simtune_requests_total")
}

// TestTraceTravelsClientToNode pins the tentpole's propagation contract on a
// single hop: a trace ID minted client-side arrives at the node in the
// X-Simtune-Trace header, is echoed on the response, names the node-tier
// trace in /v1/traces, and that trace carries the per-stage span timeline —
// including the encode span amended after the batch sealed.
func TestTraceTravelsClientToNode(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const id = "feedfacecafef00d"
	ctx := obs.WithTrace(context.Background(), id)
	if _, err := NewClient(hs.URL).Simulate(ctx, &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 4),
	}); err != nil {
		t.Fatal(err)
	}

	var trace obs.Trace
	waitFor(t, "the trace to appear in the ring", func() bool {
		traces := srv.tel.traces.Find(id)
		if len(traces) == 0 {
			return false
		}
		trace = traces[0]
		// The encode span is amended after the HTTP body is written, which
		// races the client's return — wait for it too.
		for _, sp := range trace.Spans {
			if sp.Stage == stageEncode {
				return true
			}
		}
		return false
	})
	if trace.Tier != "node" || trace.Arch != "riscv" || trace.Candidates != 4 {
		t.Fatalf("trace header wrong: %+v", trace)
	}
	if trace.Err != "" {
		t.Fatalf("successful batch recorded error %q", trace.Err)
	}
	stages := map[string]bool{}
	for _, sp := range trace.Spans {
		stages[sp.Stage] = true
		if sp.DurNS < 0 || sp.N <= 0 {
			t.Fatalf("malformed span %+v", sp)
		}
	}
	for _, want := range []string{stageAdmission, stageSimulate, stageEncode} {
		if !stages[want] {
			t.Errorf("trace has no %s span (spans: %v)", want, stages)
		}
	}

	// Raw HTTP view: the response echoes the trace ID.
	hreq, _ := http.NewRequest("POST", hs.URL+"/v1/simulate",
		strings.NewReader(`{"arch":"riscv","workload":{"kind":"conv_group","scale":"tiny","group":1},"candidates":[{"steps":[]}]}`))
	hreq.Header.Set(obs.TraceHeader, id)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != id {
		t.Fatalf("response trace header %q, want %q", got, id)
	}

	// And the wire surface exposes the ring: /v1/traces returns the batch.
	tresp, err := http.Get(hs.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	raw, _ := io.ReadAll(tresp.Body)
	if !strings.Contains(string(raw), id) {
		t.Fatalf("/v1/traces does not mention trace %s: %s", id, raw)
	}
}

// TestTraceSurvivesReroute: when a node rejects its sub-batch and the router
// fails over to a ring successor, the reroute hop must keep the batch's trace
// ID — the router trace records the reroute span and the surviving node's
// trace carries the same ID, so the whole detour reads as one timeline.
func TestTraceSurvivesReroute(t *testing.T) {
	servers := make([]*Server, 2)
	hot := make([]*overloadBackend, 2)
	backends := make([]Backend, 2)
	ids := []string{"node-a", "node-b"}
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		hot[i] = &overloadBackend{Backend: servers[i], hint: time.Millisecond}
		backends[i] = hot[i]
	}
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1, DisableHandoff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	hot[0].mu.Lock()
	hot[0].saturated = true
	hot[0].mu.Unlock()

	const id = "deadbeef01020304"
	ctx := obs.WithTrace(context.Background(), id)
	resp, err := rt.Simulate(ctx, &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 2),
		Candidates: tinyCandidates(t, 2, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Stats == nil {
			t.Fatalf("candidate %d unserved after reroute: %+v", i, r)
		}
	}
	if hot[0].rejected == 0 {
		t.Skip("hash ring sent nothing to the saturated node with these keys")
	}

	rtraces := rt.tel.traces.Find(id)
	if len(rtraces) != 1 {
		t.Fatalf("router recorded %d traces for %s, want 1", len(rtraces), id)
	}
	stages := map[string]int{}
	for _, sp := range rtraces[0].Spans {
		stages[sp.Stage]++
	}
	if stages[stageSplit] == 0 || stages[stageDispatch] == 0 || stages[stageReroute] == 0 {
		t.Fatalf("router trace lacks split/dispatch/reroute spans: %v", stages)
	}
	// The survivor saw the same trace identity on every hop that reached it.
	ntraces := servers[1].tel.traces.Find(id)
	if len(ntraces) == 0 {
		t.Fatal("surviving node has no trace under the batch's ID — the reroute hop dropped it")
	}
	for _, tr := range ntraces {
		if tr.Tier != "node" {
			t.Fatalf("node-side trace has tier %q", tr.Tier)
		}
	}
	if len(servers[0].tel.traces.Find(id)) != 0 {
		t.Fatal("saturated node never admitted the batch but recorded a trace")
	}
}

// TestRouterMetricsMergeIsExact pins the fleet-quantile semantics: the
// router's /v1/metricsz merges node histograms bucket-wise, so a quantile of
// the merged series is the quantile of the combined sample. A 60/40 bimodal
// split across two nodes makes the distinction sharp — averaging the two
// per-node p50s would land near 500ms; the true combined p50 is ~1ms.
func TestRouterMetricsMergeIsExact(t *testing.T) {
	servers := make([]*Server, 2)
	backends := make([]Backend, 2)
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 1})
		backends[i] = servers[i]
	}
	rt, err := NewRouterBackends([]string{"node-a", "node-b"}, backends,
		RouterConfig{ProbeInterval: -1, DisableHandoff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	fast := servers[0].tel.forArch(isa.RISCV).simulate
	slow := servers[1].tel.forArch(isa.RISCV).simulate
	for i := 0; i < 60; i++ {
		fast.Observe(time.Millisecond)
	}
	for i := 0; i < 40; i++ {
		slow.Observe(time.Second)
	}
	// The same bimodal split under one tenant label: per-tenant serve
	// histograms must merge bucket-wise across nodes exactly like the stage
	// series, keyed by the tenant label.
	tfast := servers[0].tel.tenantServe("acme")
	tslow := servers[1].tel.tenantServe("acme")
	for i := 0; i < 60; i++ {
		tfast.Observe(time.Millisecond)
	}
	for i := 0; i < 40; i++ {
		tslow.Observe(time.Second)
	}

	snap, err := rt.MetricsSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := obs.Labels("stage", stageSimulate, "arch", "riscv")
	var merged *obs.HistSnapshot
	for i := range snap.Hists {
		if snap.Hists[i].Name == metricStage && snap.Hists[i].Labels == wantLabels {
			merged = &snap.Hists[i]
			break
		}
	}
	if merged == nil {
		t.Fatalf("merged snapshot lacks %s{%s}", metricStage, wantLabels)
	}
	if merged.Count != 100 {
		t.Fatalf("merged count %d, want 100 (both nodes' samples)", merged.Count)
	}
	p50 := merged.Quantile(0.50)
	if p50 > 10*time.Millisecond {
		t.Fatalf("merged p50 = %v — that is an averaged quantile, not a merged one (true combined p50 ≈ 1ms)", p50)
	}
	if max := merged.Max(); max < time.Second {
		t.Fatalf("merged max %v lost the slow node's tail", max)
	}
	if p99 := merged.Quantile(0.99); p99 < 512*time.Millisecond {
		t.Fatalf("merged p99 = %v, want the slow mode (≥512ms at factor-of-two error)", p99)
	}

	// The tenant-labeled series must merge with the same exactness.
	tenantLabels := obs.Labels("tenant", "acme")
	var tmerged *obs.HistSnapshot
	for i := range snap.Hists {
		if snap.Hists[i].Name == metricTenant && snap.Hists[i].Labels == tenantLabels {
			tmerged = &snap.Hists[i]
			break
		}
	}
	if tmerged == nil {
		t.Fatalf("merged snapshot lacks %s{%s}", metricTenant, tenantLabels)
	}
	if tmerged.Count != 100 {
		t.Fatalf("merged tenant count %d, want 100 (both nodes' samples)", tmerged.Count)
	}
	if p50 := tmerged.Quantile(0.50); p50 > 10*time.Millisecond {
		t.Fatalf("merged tenant p50 = %v — averaged, not merged", p50)
	}
	if p99 := tmerged.Quantile(0.99); p99 < 512*time.Millisecond {
		t.Fatalf("merged tenant p99 = %v lost the slow node's mode", p99)
	}
}

// TestStatuszStageLatencies: a served batch must surface per-stage quantile
// rows in statusz; with telemetry disabled the section is empty, the trace
// surface is absent, but the counters-only metrics scrape still works.
func TestStatuszStageLatencies(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
	if _, err := srv.Simulate(context.Background(), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 2),
	}); err != nil {
		t.Fatal(err)
	}
	st, err := srv.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Stages) == 0 {
		t.Fatal("statusz has no stage latencies after a served batch")
	}
	var sawBatch bool
	for _, sl := range st.Stages {
		if sl.Count == 0 {
			t.Fatalf("zero-count series leaked into statusz: %+v", sl)
		}
		if sl.Metric == metricBatch && strings.Contains(sl.Labels, `outcome="ok"`) {
			sawBatch = true
			if sl.P99MS < sl.P50MS || sl.MaxMS < sl.P99MS {
				t.Fatalf("non-monotone quantiles: %+v", sl)
			}
		}
	}
	if !sawBatch {
		t.Fatalf("no ok-batch series in %+v", st.Stages)
	}

	// Telemetry off: no stage rows, no traces route, counters still scrape.
	off := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2, DisableTelemetry: true,
	})
	if _, err := off.Simulate(context.Background(), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 2),
	}); err != nil {
		t.Fatal(err)
	}
	ost, err := off.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ost.Stages) != 0 {
		t.Fatalf("telemetry-off statusz has stage rows: %+v", ost.Stages)
	}
	hs := httptest.NewServer(off.Handler())
	defer hs.Close()
	if resp, err := http.Get(hs.URL + "/v1/traces"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("telemetry-off /v1/traces returned %d, want 404", resp.StatusCode)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	names := validatePrometheus(t, string(body))
	if !names["simtune_candidates_total"] {
		t.Fatalf("telemetry-off scrape lost its counters: %s", body)
	}
}

// TestSlowBatchLogLine pins the structured slow-batch line: with a threshold
// every batch exceeds, exactly one greppable line per batch, carrying the
// trace ID as the join key into /v1/traces.
func TestSlowBatchLogLine(t *testing.T) {
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2,
		SlowBatchThreshold: time.Nanosecond,
	})
	var mu sync.Mutex
	var lines []string
	srv.tel.logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	const id = "0123456789abcdef"
	if _, err := srv.Simulate(obs.WithTrace(context.Background(), id), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 2),
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("got %d slow-batch lines, want 1: %q", len(lines), lines)
	}
	want := regexp.MustCompile(`^obs: slow-batch trace=` + id +
		` tier=node arch=riscv workload=\S+ candidates=2 dur=\S+ threshold=1ns err=""$`)
	if !want.MatchString(lines[0]) {
		t.Fatalf("slow-batch line %q does not match %v", lines[0], want)
	}
}

// TestClientRetryTelemetry: the runner's client-side counters must account
// for every attempt — a batch that fails once retryably and then succeeds is
// two attempts, one retry, nonzero backoff, and two attempt-latency samples.
func TestClientRetryTelemetry(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
	inner := srv.Handler()
	var calls atomic.Int64
	fs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/simulate" && calls.Add(1) == 1 {
			httpError(w, http.StatusServiceUnavailable, "injected: restarting")
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer fs.Close()

	r := &ServiceRunner{
		Backend: NewClient(fs.URL), Arch: isa.RISCV,
		Workload: ConvGroupSpec(te.ScaleTiny, 1), Retries: 2,
		sleep: func(context.Context, time.Duration) error { return nil },
	}
	resp, err := r.simulateWithRetry(context.Background(), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	tel := r.Telemetry()
	if tel.Attempts != 2 || tel.Retries != 1 {
		t.Fatalf("attempts/retries = %d/%d, want 2/1", tel.Attempts, tel.Retries)
	}
	if tel.BackoffTotal <= 0 {
		t.Fatalf("backoff total %v, want > 0 (one retry pause was recorded)", tel.BackoffTotal)
	}
	if tel.AttemptLatency.Count != 2 {
		t.Fatalf("attempt-latency count %d, want 2 (failed attempts are recorded too)", tel.AttemptLatency.Count)
	}
}
