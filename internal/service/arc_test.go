package service

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/isa"
	"repro/internal/te"
)

// arcResult builds a distinguishable payload for direct cache tests.
func arcResult(i int) Result { return testResult(i) }

// residentList reports which ARC list a key sits on (-1 when untracked).
func residentList(c *resultCache, k Key) int8 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		return e.list
	}
	return -1
}

// TestARCBoundedResidency: the capacity argument is a real bound — the
// resident set never exceeds it no matter how many distinct keys flow
// through, evictions are counted, and a hot set that proves frequency (T2)
// survives a long one-shot scan (the scan churns T1 only).
func TestARCBoundedResidency(t *testing.T) {
	const cap = 8
	c := newResultCache(cap, nil)
	get := func(i int) {
		t.Helper()
		_, _, err := c.do(context.Background(), testKey(i), func() (Result, error) {
			return arcResult(i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Establish a hot set and touch it twice: second access promotes to T2.
	for round := 0; round < 2; round++ {
		for i := 0; i < 4; i++ {
			get(i)
		}
	}
	for i := 0; i < 4; i++ {
		if l := residentList(c, testKey(i)); l != listT2 {
			t.Fatalf("hot key %d on list %d after two touches, want T2", i, l)
		}
	}

	// A long one-shot scan: the bound must hold throughout and the hot set
	// must survive (scan keys live and die in T1).
	for i := 100; i < 300; i++ {
		get(i)
		if n := c.len(); n > cap {
			t.Fatalf("resident set grew to %d, capacity %d", n, cap)
		}
	}
	for i := 0; i < 4; i++ {
		if l := residentList(c, testKey(i)); l != listT2 {
			t.Fatalf("scan evicted hot key %d (list %d) — no scan resistance", i, l)
		}
	}
	if ev := c.evictions.Load(); ev == 0 {
		t.Fatal("a 200-key scan through an 8-entry cache evicted nothing")
	}
	// Eviction is a parallel ledger: every do() above was a miss or a hit,
	// and the reconciliation must not see evictions.
	if got, want := c.hits.Load()+c.misses.Load()+c.canceled.Load(), uint64(2*4+200); got != want {
		t.Fatalf("hits+misses+canceled = %d, want %d servings", got, want)
	}
}

// TestARCGhostHitAdapts: re-touching a key whose value was evicted (a B1
// ghost) must land it in T2 and grow the recency target p — the adaptive
// half of ARC.
func TestARCGhostHitAdapts(t *testing.T) {
	const cap = 4
	c := newResultCache(cap, nil)
	get := func(i int) {
		_, _, _ = c.do(context.Background(), testKey(i), func() (Result, error) {
			return arcResult(i), nil
		})
	}
	get(0)
	get(0) // key 0 proves frequency: T2 occupancy makes eviction go via replace()
	for i := 1; i <= cap; i++ {
		get(i) // fills T1; the overflow demotes T1's LRU (key 1) to a B1 ghost
	}
	if l := residentList(c, testKey(1)); l != listB1 {
		t.Fatalf("key 1 on list %d after eviction, want B1 ghost", l)
	}
	// Memory-only: the value is gone, so the refill recomputes — and the
	// ghost hit must steer the insert into T2 and raise p.
	var recomputed bool
	_, hit, err := c.do(context.Background(), testKey(1), func() (Result, error) {
		recomputed = true
		return arcResult(1), nil
	})
	if err != nil || hit || !recomputed {
		t.Fatalf("ghost refill: hit=%v recomputed=%v err=%v, want miss+recompute", hit, recomputed, err)
	}
	if l := residentList(c, testKey(1)); l != listT2 {
		t.Fatalf("ghost hit landed key 1 on list %d, want T2", l)
	}
	c.mu.Lock()
	p := c.p
	c.mu.Unlock()
	if p == 0 {
		t.Fatal("B1 ghost hit did not grow the adaptive target p")
	}
}

// TestUnboundedCapacityNeverEvicts pins the capacity <= 0 escape hatch the
// direct constructor callers rely on.
func TestUnboundedCapacityNeverEvicts(t *testing.T) {
	c := newResultCache(0, nil)
	for i := 0; i < 500; i++ {
		_, _, _ = c.do(context.Background(), testKey(i), func() (Result, error) {
			return arcResult(i), nil
		})
	}
	if got := c.len(); got != 500 {
		t.Fatalf("unbounded cache holds %d of 500", got)
	}
	if ev := c.evictions.Load(); ev != 0 {
		t.Fatalf("unbounded cache evicted %d entries", ev)
	}
}

// TestEvictionSingleflightRace is the -race pin for the tentpole's core
// invariant: with a resident bound far below the keyspace and a durable
// layer beneath it, concurrent callers hammering overlapping keys still
// compute each key EXACTLY once — eviction demotes values to disk, never
// back to "recompute", and the eviction bookkeeping never races the
// singleflight accounting.
func TestEvictionSingleflightRace(t *testing.T) {
	dir := t.TempDir()
	disk, _ := openTestStore(t, dir, StoreOptions{})
	defer disk.Close()
	const (
		capacity   = 2
		keys       = 32
		goroutines = 8
		rounds     = 6
	)
	c := newResultCache(capacity, disk)
	var computes [keys]atomic.Uint64
	var calls atomic.Uint64

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < rounds; r++ {
				for _, i := range rng.Perm(keys) {
					i := i
					res, _, err := c.do(context.Background(), testKey(i), func() (Result, error) {
						computes[i].Add(1)
						return arcResult(i), nil
					})
					if err != nil {
						t.Error(err)
						return
					}
					if res.Stats == nil || res.Stats.Total != uint64(1000+i) {
						t.Errorf("key %d served wrong value: %+v", i, res)
						return
					}
					calls.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	for i := 0; i < keys; i++ {
		if n := computes[i].Load(); n != 1 {
			t.Fatalf("key %d computed %d times under eviction pressure, want exactly 1", i, n)
		}
	}
	if n := c.len(); n > capacity {
		t.Fatalf("resident set %d exceeds capacity %d", n, capacity)
	}
	if got, want := c.hits.Load()+c.misses.Load()+c.canceled.Load(), calls.Load(); got != want {
		t.Fatalf("hits+misses+canceled = %d, want %d do() calls", got, want)
	}
	if ev := c.evictions.Load(); ev == 0 {
		t.Fatalf("%d keys through a %d-entry cache evicted nothing", keys, capacity)
	}
}

// TestFetchReadsThroughEviction: the replication surface (fetch, keys) must
// see a bounded node's full corpus — resident AND evicted-to-disk — or
// handoff/anti-entropy would silently under-replicate bounded nodes.
func TestFetchReadsThroughEviction(t *testing.T) {
	dir := t.TempDir()
	disk, _ := openTestStore(t, dir, StoreOptions{})
	defer disk.Close()
	const n = 10
	c := newResultCache(2, disk)
	for i := 0; i < n; i++ {
		if _, _, err := c.do(context.Background(), testKey(i), func() (Result, error) {
			return arcResult(i), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.len(); got > 2 {
		t.Fatalf("resident set %d exceeds capacity 2", got)
	}
	all := make([]Key, n)
	for i := range all {
		all[i] = testKey(i)
	}
	got := c.fetch(all)
	if len(got) != n {
		t.Fatalf("fetch returned %d of %d keys — evicted keys did not read through", len(got), n)
	}
	for _, e := range got {
		want := arcResult(int(e.Key[0]))
		if e.Result.Stats == nil || e.Result.Stats.Total != want.Stats.Total {
			t.Fatalf("fetch served wrong value for key %d: %+v", e.Key[0], e.Result)
		}
	}
	if keys := c.keysInRange(0, ^uint64(0)); len(keys) != n {
		t.Fatalf("keysInRange lists %d of %d keys", len(keys), n)
	}
}

// TestMaxResidentConfig wires the bound through the public Config: negative
// is a configuration error; a small bound over a durable store serves a
// corpus far larger than RAM at full hit rate on re-submission, with
// statusz reporting residency, evictions, and the unchanged candidate
// reconciliation.
func TestMaxResidentConfig(t *testing.T) {
	if _, err := NewServer(Config{Archs: []isa.Arch{isa.RISCV}, MaxResidentResults: -1}); err == nil {
		t.Fatal("MaxResidentResults < 0 must be rejected")
	}

	const bound, n = 4, 16
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2,
		MaxResidentResults: bound, CacheDir: t.TempDir(),
	})
	defer srv.Close()
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, 1),
		Candidates: tinyCandidates(t, 1, n),
	}
	if _, err := srv.Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st, _ := srv.Statusz(context.Background())
	if st.CacheEntries > bound || st.CacheResident != st.CacheEntries {
		t.Fatalf("resident %d/%d exceeds bound %d", st.CacheResident, st.CacheEntries, bound)
	}
	if st.CacheEvictions == 0 {
		t.Fatalf("%d keys through a %d-resident node evicted nothing", n, bound)
	}
	if st.CacheDiskEntries != n {
		t.Fatalf("durable layer holds %d of %d results", st.CacheDiskEntries, n)
	}
	if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
		t.Fatalf("eviction broke the candidate reconciliation: %+v", st)
	}

	// Re-submission: the whole corpus — 4x the resident bound — must be
	// absorbed with zero new simulation (the evicted share from disk).
	sim0 := srv.shards[isa.RISCV].simulated.Load()
	warm, err := srv.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d missed on re-submission through the bound", i)
		}
	}
	if got := srv.shards[isa.RISCV].simulated.Load(); got != sim0 {
		t.Fatalf("bounded node re-simulated %d candidates it already paid for", got-sim0)
	}
	st, _ = srv.Statusz(context.Background())
	if st.CacheDiskHits == 0 {
		t.Fatal("no disk hits — the evicted share was not served from the durable layer")
	}
	if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
		t.Fatalf("disk-hit path broke the candidate reconciliation: %+v", st)
	}
}

// TestMaxResidentZeroFallsBackToCacheCapacity pins the legacy-name
// precedence so existing deployments keep their bound.
func TestMaxResidentZeroFallsBackToCacheCapacity(t *testing.T) {
	cfg := Config{Archs: []isa.Arch{isa.RISCV}, CacheCapacity: 7}
	cfg.defaults()
	if cfg.MaxResidentResults != 7 {
		t.Fatalf("MaxResidentResults defaulted to %d, want CacheCapacity 7", cfg.MaxResidentResults)
	}
}
