package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// warnLog captures store warnings race-safely (the writer goroutine logs
// too under -race).
type warnLog struct {
	mu   sync.Mutex
	msgs []string
}

func (w *warnLog) logf(format string, args ...any) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.msgs = append(w.msgs, fmt.Sprintf(format, args...))
}

func (w *warnLog) contains(sub string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, m := range w.msgs {
		if strings.Contains(m, sub) {
			return true
		}
	}
	return false
}

// testKey derives a distinct, deterministic key.
func testKey(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[31] = 0xAB
	return k
}

// testResult builds a payload whose identity survives a JSON round trip.
func testResult(i int) Result {
	return Result{Stats: &sim.Stats{Total: uint64(1000 + i), Loads: uint64(i)}}
}

func openTestStore(t *testing.T, dir string, opts StoreOptions) (*Store, *warnLog) {
	t.Helper()
	w := &warnLog{}
	if opts.Logf == nil {
		opts.Logf = w.logf
	}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, w
}

// segFiles lists the store's segment files.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// diskBytes sums the segment file sizes.
func diskBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	for _, name := range segFiles(t, dir) {
		fi, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestStoreRoundtripAcrossRestart is the core durability contract: every
// record written before Close is served — value-identical — by a fresh
// Store over the same directory, purely from the rebuilt index.
func TestStoreRoundtripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const n = 50
	s, _ := openTestStore(t, dir, StoreOptions{})
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testResult(i))
	}
	if err := s.Close(); err != nil { // Close implies flush
		t.Fatal(err)
	}

	s2, warns := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != n {
		t.Fatalf("recovered %d keys, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		r, ok := s2.Get(testKey(i))
		if !ok {
			t.Fatalf("key %d lost across restart", i)
		}
		want, _ := json.Marshal(testResult(i))
		got, _ := json.Marshal(r)
		if string(got) != string(want) {
			t.Fatalf("key %d: recovered %s, want %s", i, got, want)
		}
	}
	if len(warns.msgs) != 0 {
		t.Fatalf("clean restart produced warnings: %v", warns.msgs)
	}
}

// TestStoreSegmentRotation checks records spread over many segments when
// they outgrow MaxSegmentBytes, and that recovery scans all of them.
func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	const n = 24
	s, _ := openTestStore(t, dir, StoreOptions{MaxSegmentBytes: 256})
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testResult(i))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(segFiles(t, dir)); got < 3 {
		t.Fatalf("rotation produced %d segments, want several", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := openTestStore(t, dir, StoreOptions{MaxSegmentBytes: 256})
	defer s2.Close()
	if got := s2.Len(); got != n {
		t.Fatalf("recovered %d keys across segments, want %d", got, n)
	}
}

// TestStoreTruncatedTailKeepsValidPrefix simulates a crash mid-append: the
// torn final record is skipped with a warning and every record before it
// stays live — the node starts, it does not crash.
func TestStoreTruncatedTailKeepsValidPrefix(t *testing.T) {
	dir := t.TempDir()
	const n = 10
	s, _ := openTestStore(t, dir, StoreOptions{})
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testResult(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its trailing checksum plus a payload byte.
	if err := os.Truncate(last, fi.Size()-6); err != nil {
		t.Fatal(err)
	}

	s2, warns := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != n-1 {
		t.Fatalf("recovered %d keys from torn log, want %d (valid prefix)", got, n-1)
	}
	for i := 0; i < n-1; i++ {
		if _, ok := s2.Get(testKey(i)); !ok {
			t.Fatalf("valid-prefix key %d lost", i)
		}
	}
	if _, ok := s2.Get(testKey(n - 1)); ok {
		t.Fatal("torn record served as if intact")
	}
	if !warns.contains("truncated record") {
		t.Fatalf("no truncation warning logged: %v", warns.msgs)
	}
	// The reopened store appends to a fresh segment, so new writes are
	// recoverable even though an old segment has a torn tail.
	s2.Put(testKey(100), testResult(100))
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(testKey(100)); !ok {
		t.Fatal("write after torn-tail recovery not served")
	}
}

// TestStoreGarbageTailKeepsValidPrefix covers the two corruption shapes a
// scan distinguishes: an implausible length prefix and a checksum mismatch.
// Both stop the scan at the valid prefix with a warning.
func TestStoreGarbageTailKeepsValidPrefix(t *testing.T) {
	t.Run("implausible-length", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openTestStore(t, dir, StoreOptions{})
		for i := 0; i < 5; i++ {
			s.Put(testKey(i), testResult(i))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		last := segFiles(t, dir)[0]
		f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		garbage := make([]byte, 64)
		for i := range garbage {
			garbage[i] = 0xFF
		}
		if _, err := f.Write(garbage); err != nil {
			t.Fatal(err)
		}
		f.Close()

		s2, warns := openTestStore(t, dir, StoreOptions{})
		defer s2.Close()
		if got := s2.Len(); got != 5 {
			t.Fatalf("recovered %d keys, want 5", got)
		}
		if !warns.contains("implausible record length") {
			t.Fatalf("no corruption warning: %v", warns.msgs)
		}
	})
	t.Run("checksum-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := openTestStore(t, dir, StoreOptions{})
		for i := 0; i < 5; i++ {
			s.Put(testKey(i), testResult(i))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		last := segFiles(t, dir)[0]
		fi, err := os.Stat(last)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(last, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one byte inside the final record's payload.
		if _, err := f.WriteAt([]byte{0x5A}, fi.Size()-8); err != nil {
			t.Fatal(err)
		}
		f.Close()

		s2, warns := openTestStore(t, dir, StoreOptions{})
		defer s2.Close()
		if got := s2.Len(); got != 4 {
			t.Fatalf("recovered %d keys, want 4 (corrupt final record dropped)", got)
		}
		if !warns.contains("checksum mismatch") {
			t.Fatalf("no checksum warning: %v", warns.msgs)
		}
	})
}

// TestStoreUnrecognizedSegmentSkipped: a file with no valid magic header is
// skipped whole, with a warning, without failing the open.
func TestStoreUnrecognizedSegmentSkipped(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, StoreOptions{})
	s.Put(testKey(1), testResult(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000099.log"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, warns := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != 1 {
		t.Fatalf("recovered %d keys, want 1", got)
	}
	if !warns.contains("no valid header") {
		t.Fatalf("no header warning: %v", warns.msgs)
	}
}

// TestStoreCompactionPreservesLiveKeys builds a log with dead weight —
// duplicate records for the same keys — and checks compaction drops the
// dead bytes while preserving every live key exactly, including across a
// subsequent restart.
func TestStoreCompactionPreservesLiveKeys(t *testing.T) {
	dir := t.TempDir()
	const n = 16
	// Hand-write a segment with every record duplicated (the public Put is
	// idempotent, so duplication only arises from crashes or old logs).
	var buf []byte
	buf = append(buf, storeMagic...)
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			payload, err := json.Marshal(testResult(i))
			if err != nil {
				t.Fatal(err)
			}
			buf = append(buf, encodeRecord(testKey(i), payload)...)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s, _ := openTestStore(t, dir, StoreOptions{MaxSegmentBytes: 512})
	if got := s.Len(); got != n {
		t.Fatalf("indexed %d keys from duplicated log, want %d", got, n)
	}
	before := diskBytes(t, dir)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := diskBytes(t, dir)
	if after >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before, after)
	}
	if got := s.Len(); got != n {
		t.Fatalf("compaction changed live key count: %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		r, ok := s.Get(testKey(i))
		if !ok {
			t.Fatalf("compaction lost key %d", i)
		}
		want, _ := json.Marshal(testResult(i))
		got, _ := json.Marshal(r)
		if string(got) != string(want) {
			t.Fatalf("compaction corrupted key %d: %s != %s", i, got, want)
		}
	}
	// Appends keep working after the swap, and everything survives restart.
	s.Put(testKey(200), testResult(200))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := openTestStore(t, dir, StoreOptions{MaxSegmentBytes: 512})
	defer s2.Close()
	if got := s2.Len(); got != n+1 {
		t.Fatalf("post-compaction restart recovered %d keys, want %d", got, n+1)
	}
}

// TestStorePutIdempotent: re-putting a stored key writes nothing new.
func TestStorePutIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, StoreOptions{})
	s.Put(testKey(1), testResult(1))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	size1 := diskBytes(t, dir)
	for i := 0; i < 10; i++ {
		s.Put(testKey(1), testResult(1))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if size2 := diskBytes(t, dir); size2 != size1 {
		t.Fatalf("duplicate Put grew the log: %d -> %d bytes", size1, size2)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreKeysRange pins the ring-range filter, including the wrapping
// form (lo > hi) that a ring arc crossing zero produces.
func TestStoreKeysRange(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, StoreOptions{})
	defer s.Close()
	const n = 32
	for i := 0; i < n; i++ {
		s.Put(testKey(i), testResult(i))
	}
	all := s.Keys(0, ^uint64(0))
	if len(all) != n {
		t.Fatalf("full range lists %d keys, want %d", len(all), n)
	}
	// Split the space at an arbitrary pivot: the two halves partition it.
	const pivot = uint64(1) << 63
	low := s.Keys(0, pivot-1)
	high := s.Keys(pivot, ^uint64(0))
	if len(low)+len(high) != n {
		t.Fatalf("range split loses keys: %d + %d != %d", len(low), len(high), n)
	}
	// A wrapping range is the complement of its inverse interior.
	wrapped := s.Keys(pivot, pivot-1) // everything
	if len(wrapped) != n {
		t.Fatalf("wrapping full range lists %d keys, want %d", len(wrapped), n)
	}
}

// TestBackgroundCompactionTriggersOffOpenPath: a log carrying well over the
// dead-bytes threshold compacts on the writer goroutine after open — with
// no Compact() call and no blocking of the open path — while every live key
// stays servable throughout. A log below the threshold must not trigger.
func TestBackgroundCompactionTriggersOffOpenPath(t *testing.T) {
	dir := t.TempDir()
	const n, rounds = 32, 10
	// Hand-write a segment whose records are duplicated rounds times with a
	// payload fat enough that the dead share clears compactMinDeadBytes.
	fat := Result{Err: strings.Repeat("x", 4<<10)}
	body, err := json.Marshal(fat)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = append(buf, storeMagic...)
	for round := 0; round < rounds; round++ {
		for i := 0; i < n; i++ {
			buf = append(buf, encodeRecord(testKey(i), body)...)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	before := diskBytes(t, dir)

	s, _ := openTestStore(t, dir, StoreOptions{})
	// The open path queued — did not run — the pass: the store serves now.
	if got := s.Len(); got != n {
		t.Fatalf("indexed %d keys, want %d", got, n)
	}
	if r, ok := s.Get(testKey(3)); !ok || r.Err != fat.Err {
		t.Fatalf("Get(3) during pending compaction: ok=%v", ok)
	}
	// The writer goroutine runs the queued pass; Flush is the barrier that
	// proves the queue (compact op included) drained.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Compactions(); got != 1 {
		t.Fatalf("background compactions = %d, want 1", got)
	}
	if after := diskBytes(t, dir); after >= before {
		t.Fatalf("background compaction did not shrink the log: %d -> %d bytes", before, after)
	}
	for i := 0; i < n; i++ {
		if r, ok := s.Get(testKey(i)); !ok || r.Err != fat.Err {
			t.Fatalf("background compaction lost key %d (ok=%v)", i, ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Below threshold: duplicates exist but dead bytes are tiny — the
	// trigger must hold its fire (the threshold exists to stop churn).
	dir2 := t.TempDir()
	small, _ := json.Marshal(testResult(1))
	var buf2 []byte
	buf2 = append(buf2, storeMagic...)
	for round := 0; round < 3; round++ {
		buf2 = append(buf2, encodeRecord(testKey(1), small)...)
	}
	if err := os.WriteFile(filepath.Join(dir2, "seg-00000001.log"), buf2, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := openTestStore(t, dir2, StoreOptions{})
	if s2.shouldCompact() {
		t.Fatal("a few KB of dead bytes must not trigger compaction")
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Compactions(); got != 0 {
		t.Fatalf("below-threshold store compacted %d times", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
