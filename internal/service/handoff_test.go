package service

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/te"
)

// flakyBackend's replication surface, so routed fleets in tests can hand
// off through the same wrapper that injects node faults. handoffTripped
// fails only Keys/Fetch/Ingest — the "statusz answers but the node is not
// ready for replication" shape.
func (f *flakyBackend) Keys(ctx context.Context, lo, hi uint64) ([]Key, error) {
	if f.tripped.Load() || f.handoffTripped.Load() {
		return nil, &Error{Status: 503, Msg: "injected node fault"}
	}
	return f.Backend.(HandoffBackend).Keys(ctx, lo, hi)
}

func (f *flakyBackend) Fetch(ctx context.Context, keys []Key) ([]Entry, error) {
	if f.tripped.Load() {
		return nil, &Error{Status: 503, Msg: "injected node fault"}
	}
	return f.Backend.(HandoffBackend).Fetch(ctx, keys)
}

func (f *flakyBackend) Ingest(ctx context.Context, entries []Entry) (int, error) {
	if f.tripped.Load() {
		return 0, &Error{Status: 503, Msg: "injected node fault"}
	}
	return f.Backend.(HandoffBackend).Ingest(ctx, entries)
}

// TestHandoffEndpointsHTTP exercises the /v1/keys + /v1/fetch + /v1/ingest
// triple over a live HTTP hop: inventory (full and ranged), bulk read, and
// idempotent install on a second node — after which the second node serves
// the transferred corpus as cache hits without ever simulating.
func TestHandoffEndpointsHTTP(t *testing.T) {
	const group, n = 2, 8
	src := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
	hsSrc := httptest.NewServer(src.Handler())
	defer hsSrc.Close()
	srcCl := NewClient(hsSrc.URL)

	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}
	cold, err := srcCl.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	keys, err := srcCl.Keys(ctx, 0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("inventory lists %d keys, want %d", len(keys), n)
	}
	// Ranged inventory partitions the full one.
	const pivot = uint64(1) << 63
	low, err := srcCl.Keys(ctx, 0, pivot-1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := srcCl.Keys(ctx, pivot, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(low)+len(high) != n {
		t.Fatalf("ranged inventories lose keys: %d + %d != %d", len(low), len(high), n)
	}

	entries, err := srcCl.Fetch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("fetch returned %d entries for %d keys", len(entries), n)
	}

	dst := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
	hsDst := httptest.NewServer(dst.Handler())
	defer hsDst.Close()
	dstCl := NewClient(hsDst.URL)
	got, err := dstCl.Ingest(ctx, entries)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("ingested %d entries, want %d", got, n)
	}
	// Ingest is idempotent: replaying the same entries installs nothing.
	if again, err := dstCl.Ingest(ctx, entries); err != nil || again != 0 {
		t.Fatalf("re-ingest installed %d entries (err %v), want 0", again, err)
	}

	warm, err := dstCl.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d missed on the ingest-warmed node", i)
		}
		if !reflect.DeepEqual(normalized(res.Stats), normalized(cold.Results[i].Stats)) {
			t.Fatalf("candidate %d: handed-off stats diverge", i)
		}
	}
	st, _ := dst.Statusz(ctx)
	if st.HandoffKeys != n {
		t.Fatalf("handoff_keys = %d, want %d", st.HandoffKeys, n)
	}
	if st.Shards[0].Simulated != 0 {
		t.Fatalf("warmed node simulated %d candidates", st.Shards[0].Simulated)
	}
	// Handoff never enters the candidate accounting: the warmed node served
	// n candidates, all hits, and ingest added nothing to hits/misses.
	if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
		t.Fatalf("ingest broke the statusz reconciliation: %+v", st)
	}
}

// TestRingRejoinHandoffZeroDuplicateSimulation is the acceptance path of
// warm handoff: a node is down while the fleet computes a corpus (its key
// range drains to ring successors), then rejoins. The router must replay
// the keys the node owns into it before it re-enters rotation, so the
// re-submitted run is fully cache-absorbed and the fleet's total
// simulation count does not grow — rejoin causes zero duplicate
// simulations.
func TestRingRejoinHandoffZeroDuplicateSimulation(t *testing.T) {
	const group, n = 1, 24
	servers := make([]*Server, 3)
	ids := make([]string, 3)
	flaky := make([]*flakyBackend, 3)
	backends := make([]Backend, 3)
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		ids[i] = "node-" + string(rune('a'+i))
		flaky[i] = &flakyBackend{Backend: servers[i]}
		backends[i] = flaky[i]
	}
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}
	// How many of the batch's keys node 0 owns on the ring (deterministic:
	// candidates, ring ids and the hash are all fixed).
	caches := hw.Lookup(isa.RISCV).Caches
	owned := 0
	for _, c := range req.Candidates {
		if rt.ring.owner(CacheKey(isa.RISCV, caches, req.Workload, c.Steps)) == 0 {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("degenerate ring split: node 0 owns none of the batch; grow n")
	}

	// Node 0 is down before anything is computed: its range drains to the
	// successors, which simulate and cache its keys.
	flaky[0].tripped.Store(true)
	rt.probeOnce(context.Background())
	if rt.nodes[0].up.Load() {
		t.Fatal("tripped node still in rotation")
	}
	cold, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	fleetSimulated := func() (total uint64) {
		for _, s := range servers {
			total += s.shards[isa.RISCV].simulated.Load()
		}
		return
	}
	if got := fleetSimulated(); got != n {
		t.Fatalf("cold run simulated %d, want %d", got, n)
	}

	// Rejoin: the probe must replay node 0's owned keys from the survivors
	// before returning it to rotation.
	flaky[0].tripped.Store(false)
	rt.probeOnce(context.Background())
	if !rt.nodes[0].up.Load() {
		t.Fatal("recovered node did not rejoin")
	}
	if got := servers[0].cache.len(); got != owned {
		t.Fatalf("handoff replayed %d keys into the rejoined node, want %d (its ring share)", got, owned)
	}
	if got := rt.handoffKeys.Load(); got != uint64(owned) {
		t.Fatalf("router handoff_keys = %d, want %d", got, owned)
	}
	st0, _ := servers[0].Statusz(context.Background())
	if st0.HandoffKeys != uint64(owned) {
		t.Fatalf("rejoined node handoff_keys = %d, want %d", st0.HandoffKeys, owned)
	}

	// Re-submission: fully absorbed, bit-identical, and the fleet's
	// simulation count has not moved — zero duplicate simulation on rejoin.
	warm, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d missed after rejoin — its key was not handed off", i)
		}
		if !reflect.DeepEqual(normalized(res.Stats), normalized(cold.Results[i].Stats)) {
			t.Fatalf("candidate %d: stats diverge across the handoff", i)
		}
	}
	if got := fleetSimulated(); got != n {
		t.Fatalf("fleet simulated %d after rejoin, want %d — handoff caused duplicate simulation", got, n)
	}
	// The rejoined node actually served its share from the replayed corpus.
	st0, _ = servers[0].Statusz(context.Background())
	if st0.CacheHits != uint64(owned) || st0.CacheMisses != 0 {
		t.Fatalf("rejoined node served %d hits / %d misses, want %d / 0",
			st0.CacheHits, st0.CacheMisses, owned)
	}
	// Fleet-wide statusz reconciliation, handoff counters included.
	agg, err := rt.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses, canceled, served uint64
	for _, s := range servers {
		st, _ := s.Statusz(context.Background())
		hits += st.CacheHits
		misses += st.CacheMisses
		canceled += st.CacheCanceled
		served += st.Candidates
	}
	if hits+misses+canceled != served {
		t.Fatalf("fleet candidate accounting broken: %d+%d+%d != %d", hits, misses, canceled, served)
	}
	if agg.CacheHits != hits || agg.CacheMisses != misses {
		t.Fatalf("router statusz (%d/%d) disagrees with node sums (%d/%d)",
			agg.CacheHits, agg.CacheMisses, hits, misses)
	}
	if agg.HandoffKeys != uint64(owned) {
		t.Fatalf("aggregated handoff_keys = %d, want %d", agg.HandoffKeys, owned)
	}
}

// TestRejoinWithDurableStoreReplaysOnlyTheGap: a node that recovers its
// corpus from its own -cache-dir receives only the keys computed while it
// was down — handoff respects what the node already holds.
func TestRejoinWithDurableStoreReplaysOnlyTheGap(t *testing.T) {
	const group = 1
	dir := t.TempDir()
	cfg0 := Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2, CacheDir: dir}

	// First lifetime of node 0: the fleet computes a first batch, node 0
	// caching (and persisting) its share.
	servers := make([]*Server, 3)
	ids := []string{"node-a", "node-b", "node-c"}
	flaky := make([]*flakyBackend, 3)
	backends := make([]Backend, 3)
	build := func() {
		for i := range servers {
			c := Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2}
			if i == 0 {
				c = cfg0
			}
			servers[i] = mustServer(t, c)
			flaky[i] = &flakyBackend{Backend: servers[i]}
			backends[i] = flaky[i]
		}
	}
	build()
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	all := tinyCandidates(t, group, 32)
	reqA := &SimulateRequest{Arch: "riscv", Workload: ConvGroupSpec(te.ScaleTiny, group), Candidates: all[:16]}
	reqB := &SimulateRequest{Arch: "riscv", Workload: ConvGroupSpec(te.ScaleTiny, group), Candidates: all[16:]}
	if _, err := rt.Simulate(context.Background(), reqA); err != nil {
		t.Fatal(err)
	}
	persisted := servers[0].cache.len() // node 0's share of batch A

	// Node 0 dies (process gone, disk survives); batch B lands on the
	// survivors.
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}
	flaky[0].tripped.Store(true)
	rt.probeOnce(context.Background())
	if _, err := rt.Simulate(context.Background(), reqB); err != nil {
		t.Fatal(err)
	}

	// Node 0 restarts over its cache-dir and rejoins.
	restarted := mustServer(t, cfg0)
	defer restarted.Close()
	servers[0] = restarted
	flaky[0].Backend = restarted
	flaky[0].tripped.Store(false)
	rt.probeOnce(context.Background())
	if !rt.nodes[0].up.Load() {
		t.Fatal("restarted node did not rejoin")
	}

	// Handoff must have replayed only batch-B keys node 0 owns — not the
	// batch-A corpus it recovered from disk.
	caches := hw.Lookup(isa.RISCV).Caches
	gap := 0
	for _, c := range reqB.Candidates {
		if rt.ring.owner(CacheKey(isa.RISCV, caches, reqB.Workload, c.Steps)) == 0 {
			gap++
		}
	}
	st0, _ := restarted.Statusz(context.Background())
	if st0.HandoffKeys != uint64(gap) {
		t.Fatalf("handoff replayed %d keys, want only the %d-key gap (disk corpus: %d)",
			st0.HandoffKeys, gap, persisted)
	}
	if st0.CacheDiskEntries < persisted {
		t.Fatalf("restart lost disk entries: %d < %d", st0.CacheDiskEntries, persisted)
	}

	// Both batches are now fully absorbed, with no simulation anywhere.
	before := servers[1].shards[isa.RISCV].simulated.Load() +
		servers[2].shards[isa.RISCV].simulated.Load() +
		restarted.shards[isa.RISCV].simulated.Load()
	for _, req := range []*SimulateRequest{reqA, reqB} {
		resp, err := rt.Simulate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range resp.Results {
			if !res.CacheHit {
				t.Fatalf("candidate %d missed after rejoin-with-disk", i)
			}
		}
	}
	after := servers[1].shards[isa.RISCV].simulated.Load() +
		servers[2].shards[isa.RISCV].simulated.Load() +
		restarted.shards[isa.RISCV].simulated.Load()
	if before != after {
		t.Fatalf("rejoin-with-disk caused %d duplicate simulations", after-before)
	}
}

// TestFailedHandoffKeepsNodeOutOfRotation pins the retry semantics: a node
// whose statusz answers but whose replication surface fails must NOT
// re-enter rotation unwarmed — it stays down and a later probe round (with
// the replication surface healthy) completes the replay and restores it.
func TestFailedHandoffKeepsNodeOutOfRotation(t *testing.T) {
	const group, n = 1, 24
	servers := make([]*Server, 3)
	ids := make([]string, 3)
	flaky := make([]*flakyBackend, 3)
	backends := make([]Backend, 3)
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		ids[i] = "node-" + string(rune('a'+i))
		flaky[i] = &flakyBackend{Backend: servers[i]}
		backends[i] = flaky[i]
	}
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}
	flaky[0].tripped.Store(true)
	rt.probeOnce(context.Background())
	if _, err := rt.Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	// The node recovers statusz but its replication surface still fails:
	// rotation must wait for a successful replay.
	flaky[0].tripped.Store(false)
	flaky[0].handoffTripped.Store(true)
	rt.probeOnce(context.Background())
	if rt.nodes[0].up.Load() {
		t.Fatal("node with a failed handoff re-entered rotation unwarmed")
	}

	flaky[0].handoffTripped.Store(false)
	rt.probeOnce(context.Background())
	if !rt.nodes[0].up.Load() {
		t.Fatal("node did not rejoin once the replay could complete")
	}
	if servers[0].cache.len() == 0 {
		t.Fatal("retried replay moved no keys")
	}
	// And the rejoin still costs zero duplicate simulation.
	warm, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d missed after retried rejoin", i)
		}
	}
	var total uint64
	for _, s := range servers {
		total += s.shards[isa.RISCV].simulated.Load()
	}
	if total != n {
		t.Fatalf("fleet simulated %d, want %d", total, n)
	}
}

// legacyBackend simulates a pre-handoff node behind a Client: statusz and
// simulate work, but the replication endpoints answer 404 (non-retryable).
type legacyBackend struct{ Backend }

func (legacyBackend) Keys(context.Context, uint64, uint64) ([]Key, error) {
	return nil, &Error{Status: 404, Msg: "404 page not found"}
}
func (legacyBackend) Fetch(context.Context, []Key) ([]Entry, error) {
	return nil, &Error{Status: 404, Msg: "404 page not found"}
}
func (legacyBackend) Ingest(context.Context, []Entry) (int, error) {
	return 0, &Error{Status: 404, Msg: "404 page not found"}
}

// TestRejoinWithoutHandoffSurfaceStillRejoins pins the rolling-upgrade
// case: a recovered node whose backend lacks the replication endpoints
// (404, non-retryable) must rejoin unwarmed rather than being retried to
// the same answer forever and locked out of rotation.
func TestRejoinWithoutHandoffSurfaceStillRejoins(t *testing.T) {
	servers := []*Server{
		mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 1}),
		mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 1}),
	}
	flaky := &flakyBackend{Backend: legacyBackend{servers[0]}}
	rt, err := NewRouterBackends([]string{"legacy", "modern"},
		[]Backend{flaky, servers[1]}, RouterConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	flaky.tripped.Store(true)
	rt.probeOnce(context.Background())
	if rt.nodes[0].up.Load() {
		t.Fatal("tripped node still in rotation")
	}
	flaky.tripped.Store(false)
	rt.probeOnce(context.Background())
	if !rt.nodes[0].up.Load() {
		t.Fatal("node without a handoff surface was locked out of rotation")
	}
	if got := rt.handoffKeys.Load(); got != 0 {
		t.Fatalf("replayed %d keys through a 404 surface", got)
	}
}
