package service

import (
	"context"
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/te"
)

// replicatedRouter builds a router over n in-process servers with the
// default replication factor (2) and the anti-entropy timer disabled —
// tests drive antiEntropyOnce explicitly.
func replicatedRouter(t testing.TB, n int, cfgs ...func(i int) Config) (*Router, []*Server) {
	t.Helper()
	servers := make([]*Server, n)
	ids := make([]string, n)
	backends := make([]Backend, n)
	for i := range servers {
		cfg := Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2}
		if len(cfgs) > 0 {
			cfg = cfgs[0](i)
		}
		servers[i] = mustServer(t, cfg)
		s := servers[i]
		t.Cleanup(func() { s.Close() })
		ids[i] = "node-" + string(rune('a'+i))
		backends[i] = servers[i]
	}
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1, AntiEntropyInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, servers
}

// holders counts which servers can serve key k (RAM or disk).
func holders(t *testing.T, servers []*Server, k Key) []int {
	t.Helper()
	var out []int
	for i, s := range servers {
		keys, err := s.Keys(context.Background(), 0, ^uint64(0))
		if err != nil {
			t.Fatal(err)
		}
		for _, have := range keys {
			if have == k {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// TestWriteThroughReplicationOnMissFill: by the time a batch returns, every
// freshly computed result lives on ReplicationFactor nodes — the owner that
// computed it and its live ring successor — and the copies cost zero extra
// simulation. Cache hits are never re-replicated.
func TestWriteThroughReplicationOnMissFill(t *testing.T) {
	const group, n = 1, 12
	rt, servers := replicatedRouter(t, 3)
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}
	if _, err := rt.Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	caches := hw.Lookup(isa.RISCV).Caches
	for i, c := range req.Candidates {
		k := CacheKey(isa.RISCV, caches, req.Workload, c.Steps)
		hold := holders(t, servers, k)
		if len(hold) != 2 {
			t.Fatalf("candidate %d held by %d nodes %v, want exactly RF=2", i, len(hold), hold)
		}
		// The copies sit exactly on the replica set the ring prescribes.
		want := rt.liveReplicas(k)
		for _, j := range want {
			found := false
			for _, h := range hold {
				if h == j {
					found = true
				}
			}
			if !found {
				t.Fatalf("candidate %d: replica %d (of %v) lacks the key (holders %v)", i, j, want, hold)
			}
		}
	}
	var simulated uint64
	for _, s := range servers {
		simulated += s.shards[isa.RISCV].simulated.Load()
	}
	if simulated != n {
		t.Fatalf("fleet simulated %d for %d unique candidates — replication cost simulations", simulated, n)
	}
	if got := rt.replicaKeys.Load(); got != n {
		t.Fatalf("router replica_keys = %d, want %d (one copy per fresh result)", got, n)
	}

	// A warm re-run is all hits and moves no further copies.
	warm, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d missed on the warm run", i)
		}
	}
	if got := rt.replicaKeys.Load(); got != n {
		t.Fatalf("warm run re-replicated: replica_keys = %d, want %d", got, n)
	}

	// Statusz carries the ledgers and the per-node reconciliation holds.
	agg, err := rt.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if agg.ReplicaKeys != n {
		t.Fatalf("agg replica_keys = %d, want %d", agg.ReplicaKeys, n)
	}
	for _, s := range servers {
		st, _ := s.Statusz(context.Background())
		if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
			t.Fatalf("replication broke a node's candidate reconciliation: %+v", st)
		}
	}
}

// TestAntiEntropyConverges: results that bypassed the router (here: computed
// against one node directly) are spread to their full replica sets by
// anti-entropy rounds, and the rounds reach a fixed point — a converged
// fleet moves zero entries.
func TestAntiEntropyConverges(t *testing.T) {
	const group, n = 1, 12
	rt, servers := replicatedRouter(t, 3)
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}
	// Seed node 0 directly: the router never saw these results, so only
	// node 0 holds them — exactly the gap anti-entropy exists to close.
	if _, err := servers[0].Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	moved := rt.antiEntropyOnce(context.Background())
	if moved == 0 {
		t.Fatal("anti-entropy moved nothing over an under-replicated fleet")
	}
	if again := rt.antiEntropyOnce(context.Background()); again != 0 {
		t.Fatalf("anti-entropy did not converge: second round moved %d", again)
	}
	if got := rt.aeRounds.Load(); got != 2 {
		t.Fatalf("antientropy_rounds = %d, want 2", got)
	}
	if got := rt.replicaKeys.Load(); got != uint64(moved) {
		t.Fatalf("replica_keys = %d, want the %d anti-entropy moves", got, moved)
	}

	caches := hw.Lookup(isa.RISCV).Caches
	for i, c := range req.Candidates {
		k := CacheKey(isa.RISCV, caches, req.Workload, c.Steps)
		hold := holders(t, servers, k)
		for _, j := range rt.liveReplicas(k) {
			found := false
			for _, h := range hold {
				if h == j {
					found = true
				}
			}
			if !found {
				t.Fatalf("candidate %d: replica %d still lacks the key after convergence (holders %v)", i, j, hold)
			}
		}
	}

	// Repair traffic never counts as served candidates anywhere.
	for i, s := range servers {
		st, _ := s.Statusz(context.Background())
		if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
			t.Fatalf("node %d reconciliation broken by anti-entropy: %+v", i, st)
		}
	}
}

// TestAntiEntropyHealsAroundPermanentLoss: when a node is permanently gone,
// the replica walk extends past it — one anti-entropy round re-establishes
// RF copies among the survivors, so the fleet heals back to tolerating the
// NEXT failure too.
func TestAntiEntropyHealsAroundPermanentLoss(t *testing.T) {
	const group, n = 1, 16
	rt, servers := replicatedRouter(t, 3)
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}
	if _, err := rt.Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	for rt.antiEntropyOnce(context.Background()) != 0 {
	}

	// Node 0 is gone for good: its RAM and any copies it held are lost.
	rt.nodes[0].markDown(errors.New("node permanently lost (test)"))
	servers[0].cache.mu.Lock()
	servers[0].cache.entries = make(map[Key]*cacheEntry)
	servers[0].cache.t1.init()
	servers[0].cache.t2.init()
	servers[0].cache.b1.init()
	servers[0].cache.b2.init()
	servers[0].cache.mu.Unlock()

	// Heal: replicas recompute against the surviving membership.
	if moved := rt.antiEntropyOnce(context.Background()); moved == 0 {
		// Every key may already sit on both survivors via write-through;
		// that is convergence, not failure.
		t.Log("fleet already fully replicated among survivors")
	}
	for rt.antiEntropyOnce(context.Background()) != 0 {
	}

	caches := hw.Lookup(isa.RISCV).Caches
	for i, c := range req.Candidates {
		k := CacheKey(isa.RISCV, caches, req.Workload, c.Steps)
		reps := rt.liveReplicas(k)
		if len(reps) != 2 {
			t.Fatalf("candidate %d: %d live replicas after one loss, want 2", i, len(reps))
		}
		hold := holders(t, servers[1:], k) // survivors only (offset by one)
		if len(hold) != 2 {
			t.Fatalf("candidate %d: held by %d survivors, want 2 (healed RF)", i, len(hold))
		}
	}

	// And the corpus serves at hit rate: zero new simulation on re-run.
	var before uint64
	for _, s := range servers[1:] {
		before += s.shards[isa.RISCV].simulated.Load()
	}
	warm, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d missed after permanent loss — replica did not cover it", i)
		}
	}
	var after uint64
	for _, s := range servers[1:] {
		after += s.shards[isa.RISCV].simulated.Load()
	}
	if before != after {
		t.Fatalf("permanent loss cost %d duplicate simulations", after-before)
	}
}

// TestReplicationDisabledByConfig pins the gates: RF=1 and DisableHandoff
// both turn write-through off, and a negative RF is a construction error.
func TestReplicationDisabledByConfig(t *testing.T) {
	if _, err := NewRouterBackends([]string{"a"}, []Backend{Local()},
		RouterConfig{ProbeInterval: -1, ReplicationFactor: -1}); err == nil {
		t.Fatal("negative ReplicationFactor must be rejected")
	}
	for name, cfg := range map[string]RouterConfig{
		"rf1":        {ProbeInterval: -1, ReplicationFactor: 1},
		"no-handoff": {ProbeInterval: -1, DisableHandoff: true},
	} {
		servers := []*Server{
			mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2}),
			mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2}),
		}
		rt, err := NewRouterBackends([]string{"a", "b"}, []Backend{servers[0], servers[1]}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		req := &SimulateRequest{
			Arch:       "riscv",
			Workload:   ConvGroupSpec(te.ScaleTiny, 1),
			Candidates: tinyCandidates(t, 1, 8),
		}
		if _, err := rt.Simulate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		if got := rt.replicaKeys.Load(); got != 0 {
			t.Fatalf("%s: replicated %d keys with replication off", name, got)
		}
		if moved := rt.antiEntropyOnce(context.Background()); moved != 0 {
			t.Fatalf("%s: anti-entropy moved %d with replication off", name, moved)
		}
		if entries := servers[0].cache.len() + servers[1].cache.len(); entries != 8 {
			t.Fatalf("%s: fleet holds %d entries for 8 keys, want single copies", name, entries)
		}
		rt.Close()
		servers[0].Close()
		servers[1].Close()
	}
}
