package service

import (
	"context"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
)

// Metric and stage names. The span taxonomy (ARCHITECTURE.md "Telemetry"):
// a batch enters admission, its cold candidates wait in queue_wait for a
// shard slot and pay simulate, warm ones are served by cache_lookup (RAM),
// disk_hit (durable store) or singleflight_wait (another caller's flight),
// computed results drain through store_write behind the serve path, and the
// HTTP layer pays encode on the way out. Bounded-memory bookkeeping shows up
// as evict (ARC demotion on the fill path) and compact (background segment
// rewrite on the store's writer goroutine). Router-tier spans: split (key
// hashing + ring grouping), dispatch (one sub-batch round trip to a node),
// reroute (a failover round re-grouping), replicate (write-through fan-out of
// fresh results to ring replicas), antientropy (one replica-diff repair
// round).
const (
	metricStage     = "simtune_stage_duration_seconds"
	metricServe     = "simtune_candidate_serve_seconds"
	metricTenant    = "simtune_tenant_serve_seconds"
	metricBatch     = "simtune_batch_duration_seconds"
	metricRtBatch   = "simtune_router_batch_duration_seconds"
	metricRtDisp    = "simtune_router_dispatch_seconds"
	stageAdmission  = "admission"
	stageQueueWait  = "queue_wait"
	stageCacheHit   = "cache_lookup"
	stageDiskHit    = "disk_hit"
	stageSFWait     = "singleflight_wait"
	stageSimulate   = "simulate"
	stageStoreWrite = "store_write"
	stageEncode     = "encode"
	stageEvict      = "evict"
	stageCompact    = "compact"
	stageSplit      = "split"
	stageDispatch   = "dispatch"
	stageReroute    = "reroute"
	stageReplicate  = "replicate"
	stageAntiEnt    = "antientropy"
)

// Candidate serve outcomes (the per-outcome latency partition; rejected
// batches never serve candidates, so rejection is a batch outcome only).
const (
	outcomeHit      = "hit"
	outcomeDiskHit  = "disk_hit"
	outcomeMiss     = "miss"
	outcomeCanceled = "canceled"
)

// telemetry is one tier's instrument panel: the histogram registry, the
// recent-trace ring, and the slow-batch log hook. A nil *telemetry is
// telemetry switched off — every histogram it would hand out is nil (which
// discards observations) and StartTrace returns an inert nil trace, so the
// request path needs no feature flags, only the pointers it already holds.
type telemetry struct {
	m      *obs.Metrics
	traces *obs.TraceRing
	slow   time.Duration
	logf   func(format string, args ...any)

	encode       *obs.Histogram
	storeWrite   *obs.Histogram
	storeCompact *obs.Histogram
	arch         map[isa.Arch]*archTel
}

// archTel pre-registers one architecture's hot-path histograms so workers
// never touch the registry lock.
type archTel struct {
	admission *obs.Histogram
	queueWait *obs.Histogram
	cacheHit  *obs.Histogram
	diskHit   *obs.Histogram
	sfWait    *obs.Histogram
	simulate  *obs.Histogram
	evict     *obs.Histogram

	serveHit, serveDiskHit, serveMiss, serveCanceled *obs.Histogram

	batchOK, batchCanceled, batchRejected, batchError *obs.Histogram
}

// newTelemetry builds the panel for a leaf server (archs non-empty) or a
// router (archs nil — router histograms are registered by the caller).
// ringSize <= 0 disables tracing only; disabled turns everything off.
func newTelemetry(disabled bool, ringSize int, slow time.Duration, archs []isa.Arch) *telemetry {
	if disabled {
		return nil
	}
	t := &telemetry{
		m:      obs.NewMetrics(),
		traces: obs.NewTraceRing(ringSize),
		slow:   slow,
		logf:   log.Printf,
		arch:   make(map[isa.Arch]*archTel, len(archs)),
	}
	t.encode = t.m.Histogram(metricStage, obs.Labels("stage", stageEncode))
	t.storeWrite = t.m.Histogram(metricStage, obs.Labels("stage", stageStoreWrite))
	t.storeCompact = t.m.Histogram(metricStage, obs.Labels("stage", stageCompact))
	for _, a := range archs {
		as := string(a)
		stage := func(s string) *obs.Histogram {
			return t.m.Histogram(metricStage, obs.Labels("stage", s, "arch", as))
		}
		serve := func(o string) *obs.Histogram {
			return t.m.Histogram(metricServe, obs.Labels("arch", as, "outcome", o))
		}
		batch := func(o string) *obs.Histogram {
			return t.m.Histogram(metricBatch, obs.Labels("arch", as, "outcome", o))
		}
		t.arch[a] = &archTel{
			admission: stage(stageAdmission),
			queueWait: stage(stageQueueWait),
			cacheHit:  stage(stageCacheHit),
			diskHit:   stage(stageDiskHit),
			sfWait:    stage(stageSFWait),
			simulate:  stage(stageSimulate),
			evict:     stage(stageEvict),

			serveHit:      serve(outcomeHit),
			serveDiskHit:  serve(outcomeDiskHit),
			serveMiss:     serve(outcomeMiss),
			serveCanceled: serve(outcomeCanceled),

			batchOK:       batch("ok"),
			batchCanceled: batch("canceled"),
			batchRejected: batch("rejected"),
			batchError:    batch("error"),
		}
	}
	return t
}

// forArch returns the architecture's histogram set, nil when telemetry is
// off or the arch unknown (callers treat a nil *archTel as "skip").
func (t *telemetry) forArch(a isa.Arch) *archTel {
	if t == nil {
		return nil
	}
	return t.arch[a]
}

// startTrace opens a batch trace at this tier under the context's trace ID
// (minting one if the batch arrived without — direct in-process callers).
// Returns the possibly-updated context so in-process sub-calls inherit the
// identity, plus the trace (nil when tracing is off — still inert-safe).
func (t *telemetry) startTrace(ctx context.Context, tier string) (context.Context, *obs.ActiveTrace) {
	if t == nil || t.traces == nil {
		return ctx, nil
	}
	ctx, id := obs.EnsureTrace(ctx)
	return ctx, obs.StartTrace(t.traces, id, tier)
}

// slowBatchLog emits the structured slow-batch line when the batch exceeded
// the threshold: one greppable line with the trace ID as the join key into
// /v1/traces.
func (t *telemetry) slowBatchLog(tr *obs.ActiveTrace, dur time.Duration, tier, arch, workload string, candidates int, err error) {
	if t == nil || t.slow <= 0 || dur < t.slow || tr == nil {
		return
	}
	errs := ""
	if err != nil {
		errs = err.Error()
	}
	t.logf("obs: slow-batch trace=%s tier=%s arch=%s workload=%s candidates=%d dur=%s threshold=%s err=%q",
		tr.ID(), tier, arch, workload, candidates, dur.Round(time.Microsecond), t.slow, errs)
}

// histSnapshot returns the registered histograms, nil when telemetry is off.
func (t *telemetry) histSnapshot() []obs.HistSnapshot {
	if t == nil {
		return nil
	}
	return t.m.Snapshot()
}

// stageLatencies summarizes every histogram as statusz-friendly quantiles.
func stageLatencies(hists []obs.HistSnapshot) []StageLatency {
	out := make([]StageLatency, 0, len(hists))
	for _, h := range hists {
		if h.Count == 0 {
			continue
		}
		out = append(out, StageLatency{
			Metric: h.Name,
			Labels: h.Labels,
			Count:  h.Count,
			P50MS:  durMS(h.Quantile(0.50)),
			P90MS:  durMS(h.Quantile(0.90)),
			P99MS:  durMS(h.Quantile(0.99)),
			MaxMS:  durMS(h.Max()),
			MeanMS: durMS(h.Mean()),
		})
	}
	return out
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// tenantServe returns the tenant's serve-latency histogram (nil when
// telemetry is off). Unlike the per-arch panel this registers lazily —
// tenants appear with traffic — but only once per tenant (tenantSet caches
// the ledger), so workers still never touch the registry lock.
func (t *telemetry) tenantServe(tenant string) *obs.Histogram {
	if t == nil {
		return nil
	}
	return t.m.Histogram(metricTenant, obs.Labels("tenant", tenant))
}

// storeWriteHist hands the durable store its append-latency histogram (nil
// when telemetry is off — the store then records nothing).
func (t *telemetry) storeWriteHist() *obs.Histogram {
	if t == nil {
		return nil
	}
	return t.storeWrite
}

// storeCompactHist hands the durable store its compaction-latency histogram
// (nil when telemetry is off — the store then records nothing).
func (t *telemetry) storeCompactHist() *obs.Histogram {
	if t == nil {
		return nil
	}
	return t.storeCompact
}

// candTimings collects one candidate's cold-path stage durations as it moves
// through resultCache.do and shard.exec. A nil *candTimings disables
// measurement entirely — the telemetry-off hot path takes no extra clock
// reads. RAM hits leave every field zero: their whole cost is the serve
// total the caller measures around the do() call.
type candTimings struct {
	sfWait    time.Duration // waited on another caller's in-flight compute
	disk      time.Duration // durable-store read (hit or probe)
	diskHit   bool
	queueWait time.Duration // waited for a shard worker slot
	simulate  time.Duration // build + simulate on the slot
	simulated bool
	evict     time.Duration // ARC bookkeeping on a fill that evicted
	evicted   bool
}

// stageAgg accumulates one stage's events across a batch's workers so the
// trace records one aggregated span per stage instead of one per candidate —
// a 10k-candidate batch would blow the per-trace span cap in its first
// worker otherwise. The histograms still see every individual event.
type stageAgg struct {
	n   atomic.Int64
	sum atomic.Int64
}

func (a *stageAgg) add(d time.Duration) { a.n.Add(1); a.sum.Add(int64(d)) }

func (a *stageAgg) span(tr *obs.ActiveTrace, stage string, start time.Time) {
	if n := a.n.Load(); n > 0 {
		tr.Span(stage, start, time.Duration(a.sum.Load()), int(n), "")
	}
}

// batchAgg is a batch's per-stage aggregation, filled concurrently by the
// workers and emitted as at most one span per stage when the batch seals.
type batchAgg struct {
	cacheHit, diskHit, sfWait, queueWait, simulate, evict stageAgg
}

func (g *batchAgg) emit(tr *obs.ActiveTrace, start time.Time) {
	if g == nil {
		return
	}
	g.cacheHit.span(tr, stageCacheHit, start)
	g.diskHit.span(tr, stageDiskHit, start)
	g.sfWait.span(tr, stageSFWait, start)
	g.queueWait.span(tr, stageQueueWait, start)
	g.simulate.span(tr, stageSimulate, start)
	g.evict.span(tr, stageEvict, start)
}

// record folds one served candidate into the per-arch histograms and the
// batch's aggregated spans. total is the full doTimed duration — on a RAM
// hit that is the entire serve cost, which is why the hit path's telemetry
// bill is two clock reads plus the Observe calls below.
func (at *archTel) record(agg *batchAgg, tm *candTimings, total time.Duration, hit bool, err error) {
	switch {
	case err != nil:
		at.serveCanceled.Observe(total)
	case hit && tm.diskHit:
		at.serveDiskHit.Observe(total)
		at.diskHit.Observe(tm.disk)
		agg.diskHit.add(tm.disk)
	case hit:
		at.serveHit.Observe(total)
		at.cacheHit.Observe(total)
		agg.cacheHit.add(total)
	default:
		at.serveMiss.Observe(total)
	}
	if tm.sfWait > 0 {
		at.sfWait.Observe(tm.sfWait)
		agg.sfWait.add(tm.sfWait)
	}
	if tm.queueWait > 0 {
		at.queueWait.Observe(tm.queueWait)
		agg.queueWait.add(tm.queueWait)
	}
	if tm.simulated {
		at.simulate.Observe(tm.simulate)
		agg.simulate.add(tm.simulate)
	}
	if tm.evicted {
		at.evict.Observe(tm.evict)
		agg.evict.add(tm.evict)
	}
}

// finishBatch seals a batch's telemetry: aggregated stage spans, the batch
// outcome histogram (nil-safe — error paths before arch resolution pass
// nil), the trace, and the slow-batch log line.
func (t *telemetry) finishBatch(tr *obs.ActiveTrace, agg *batchAgg, outcome *obs.Histogram, start time.Time, tier, arch, workload string, candidates int, err error) {
	if t == nil {
		return
	}
	agg.emit(tr, start)
	dur := time.Since(start)
	tr.Finish(err)
	outcome.Observe(dur)
	t.slowBatchLog(tr, dur, tier, arch, workload, candidates, err)
}
