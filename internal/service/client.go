package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/runner"
)

// DefaultRequestTimeout bounds one batch request end to end when the caller
// does not supply its own HTTPClient or context deadline. It is generous —
// a cold paper-scale batch legitimately simulates for minutes — but finite,
// so a wedged server or a network partition after connect fails the tune
// instead of hanging it forever.
const DefaultRequestTimeout = 10 * time.Minute

// Client is the HTTP Backend: it talks to a remote `simtune serve` instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://tuner-farm:8070".
	BaseURL string
	// HTTPClient overrides the default client (DefaultRequestTimeout);
	// set it to tighten or lift the per-request timeout.
	HTTPClient *http.Client
}

// NewClient builds a client for a server base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// defaultHTTPClient is shared so connections are pooled across Clients.
var defaultHTTPClient = &http.Client{Timeout: DefaultRequestTimeout}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// Simulate implements Backend over POST /v1/simulate.
func (c *Client) Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	var resp SimulateResponse
	if err := c.post(ctx, "/v1/simulate", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(req.Candidates) {
		return nil, fmt.Errorf("service: server returned %d results for %d candidates",
			len(resp.Results), len(req.Candidates))
	}
	return &resp, nil
}

// Statusz implements Backend over GET /v1/statusz.
func (c *Client) Statusz(ctx context.Context) (*Statusz, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/statusz", nil)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	var st Statusz
	if err := c.roundTrip(httpReq, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Keys implements HandoffBackend over GET /v1/keys. The full inventory is
// lo=0, hi=^uint64(0); any other pair is sent as ?range=lo-hi (wrapping
// when lo > hi, matching ring arcs).
func (c *Client) Keys(ctx context.Context, lo, hi uint64) ([]Key, error) {
	url := c.BaseURL + "/v1/keys"
	if !(lo == 0 && hi == ^uint64(0)) {
		url += fmt.Sprintf("?range=%016x-%016x", lo, hi)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	var resp KeysResponse
	if err := c.roundTrip(httpReq, &resp); err != nil {
		return nil, err
	}
	return resp.Keys, nil
}

// Fetch implements HandoffBackend over POST /v1/fetch.
func (c *Client) Fetch(ctx context.Context, keys []Key) ([]Entry, error) {
	var resp FetchResponse
	if err := c.post(ctx, "/v1/fetch", &FetchRequest{Keys: keys}, &resp); err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Ingest implements HandoffBackend over POST /v1/ingest.
func (c *Client) Ingest(ctx context.Context, entries []Entry) (int, error) {
	var resp IngestResponse
	if err := c.post(ctx, "/v1/ingest", &IngestRequest{Entries: entries}, &resp); err != nil {
		return 0, err
	}
	return resp.Ingested, nil
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	enc, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("service: encode request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(enc))
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	// The batch's trace identity crosses the wire as a header; the server
	// (or router, which forwards the same ctx to its nodes) records its
	// spans under it, so one ID joins the timeline at every tier — retries
	// and reroutes included, since they reuse this ctx.
	if id := obs.TraceID(ctx); id != "" {
		httpReq.Header.Set(obs.TraceHeader, id)
	}
	// The tenant identity travels the same way: every tier admits and
	// accounts the batch under the context's tenant, falling back to the
	// default tenant when untagged.
	if tnt := TenantFrom(ctx); tnt != "" {
		httpReq.Header.Set(TenantHeader, tnt)
	}
	return c.roundTrip(httpReq, out)
}

// MetricsSnapshot implements MetricsBackend over GET /v1/metricsz — the
// mergeable-snapshot surface a router polls to fold this node's histograms
// into the fleet view.
func (c *Client) MetricsSnapshot(ctx context.Context) (*obs.MetricsSnapshot, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metricsz", nil)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	var snap obs.MetricsSnapshot
	if err := c.roundTrip(httpReq, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func (c *Client) roundTrip(req *http.Request, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("service: %s %s: %w", req.Method, req.URL.Path, err)
	}
	// Drain whatever the handlers below leave unread before closing: a
	// partially-read body makes net/http tear the pooled connection down
	// instead of reusing it, which under a router's fan-out turns every
	// error (and every decode hiccup) into connection churn. The limit
	// bounds how much we are willing to read just to save a dial.
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorDrainBytes))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		se := &Error{Status: resp.StatusCode, Msg: resp.Status}
		var wire struct {
			Error        string `json:"error"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		}
		if json.Unmarshal(msg, &wire) == nil && wire.Error != "" {
			se.Msg = resp.Status + ": " + wire.Error
			if wire.RetryAfterMS > 0 {
				se.RetryAfter = time.Duration(wire.RetryAfterMS) * time.Millisecond
			}
		}
		// The body field carries sub-second precision; the standard header
		// (whole seconds) is the fallback for proxies that strip bodies.
		if se.RetryAfter == 0 {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		// Wrap the typed error so callers (the router's failover logic
		// foremost) can recover the 4xx/5xx classification via errors.As.
		return fmt.Errorf("service: %s %s: %w", req.Method, req.URL.Path, se)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("service: decode response: %w", err)
	}
	return nil
}

// maxErrorDrainBytes bounds the body tail drained for connection reuse; past
// that, redialing is cheaper than reading.
const maxErrorDrainBytes = 1 << 20

// ServiceRunner is the client-side runner.Runner over a simulate Backend:
// the drop-in replacement for runner.SimulatorRunner that lets
// core.ExecutionPhase and simtune.TuneGroup tune against a shared remote
// server (or an in-process Local() one) instead of private simulator
// instances. Pair it with NopBuilder — candidates are compiled server-side
// from their step logs, so client-side lowering would be wasted work.
type ServiceRunner struct {
	// Backend executes the batches (NewClient(...) or Local()).
	Backend Backend
	// Arch is the simulated target.
	Arch isa.Arch
	// Workload identifies the kernel instance being tuned.
	Workload WorkloadSpec
	// NPar is advertised as NParallel (informational; actual concurrency
	// lives server-side in the arch shard).
	NPar int
	// Scorer converts statistics to scores; nil leaves Score = 0.
	Scorer runner.Scorer
	// Ctx, when set, bounds every batch (client-side deadline/cancel);
	// nil means context.Background().
	Ctx context.Context
	// Tenant, when set, tags every batch with this tenant identity
	// (X-Simtune-Tenant on the wire): the service admits it under the
	// tenant's fair share of the admission gate and accounts it in the
	// tenant's statusz/metrics ledgers. Empty means the default tenant.
	Tenant string
	// Retries bounds re-submissions of a batch that failed with a
	// retryable error (server restart, canceled batch, overloaded fleet,
	// router with every node briefly down). Retrying matters because the
	// runner interface has no batch-level error channel: an unretried
	// transient failure becomes per-candidate +Inf scores and the tuner
	// permanently discards candidates that were never actually measured.
	// Default 2; negative disables.
	Retries int
	// RetryBackoff is the base re-submission delay (default 250ms). Each
	// attempt doubles the window, capped at RetryBackoffMax, and the actual
	// sleep is drawn uniformly from it (full jitter) so a population of
	// clients rejected together does not retry together. A server-supplied
	// Retry-After (429) floors the delay.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential growth (default 8s).
	RetryBackoffMax time.Duration

	// sleep replaces the inter-attempt wait when set — the test seam for
	// asserting pacing without real wall-clock sleeps.
	sleep func(context.Context, time.Duration) error

	hits, misses atomic.Uint64

	// Client-side telemetry: attempt/retry/backoff pressure and the
	// latency of every Simulate attempt (failed ones included). Recorded
	// unconditionally — one histogram Observe per HTTP round trip is noise
	// next to the round trip itself.
	attempts    atomic.Uint64
	retried     atomic.Uint64
	backoffNS   atomic.Int64
	attemptHist obs.Histogram
}

// ClientTelemetry is a ServiceRunner's client-side view of its service
// traffic: how many Simulate attempts it made, how many were retries of a
// failed batch, how long it spent backing off, and the attempt latency as a
// mergeable histogram snapshot (quantiles via Snapshot.Quantile).
type ClientTelemetry struct {
	// Attempts counts every Simulate call; Retries counts the re-submissions
	// among them (Attempts - Retries = batches on their first try).
	Attempts uint64 `json:"attempts"`
	Retries  uint64 `json:"retries"`
	// BackoffTotal is the cumulative time spent sleeping between attempts.
	BackoffTotal time.Duration `json:"backoff_total_ns"`
	// AttemptLatency is the per-attempt round-trip latency histogram.
	AttemptLatency obs.Snapshot `json:"attempt_latency"`
}

// Telemetry snapshots the runner's client-side telemetry.
func (r *ServiceRunner) Telemetry() ClientTelemetry {
	return ClientTelemetry{
		Attempts:       r.attempts.Load(),
		Retries:        r.retried.Load(),
		BackoffTotal:   time.Duration(r.backoffNS.Load()),
		AttemptLatency: r.attemptHist.Snapshot(),
	}
}

// Name implements runner.Runner.
func (r *ServiceRunner) Name() string { return "service[" + string(r.Arch) + "]" }

// NParallel implements runner.Runner.
func (r *ServiceRunner) NParallel() int {
	if r.NPar < 1 {
		return 1
	}
	return r.NPar
}

// SetScorer implements runner.ScorerSetter.
func (r *ServiceRunner) SetScorer(s runner.Scorer) { r.Scorer = s }

// CacheHits and CacheMisses report how many of this runner's candidates the
// service served from its result cache — the client-side view of the Eq. (4)
// bookkeeping (the server's statusz aggregates across all clients).
func (r *ServiceRunner) CacheHits() uint64   { return r.hits.Load() }
func (r *ServiceRunner) CacheMisses() uint64 { return r.misses.Load() }

// Run implements runner.Runner: the batch travels as one SimulateRequest
// (steps only — programs never cross the wire), results map back
// index-aligned, then scoring runs sequentially in input order exactly like
// the in-process SimulatorRunner so windowed normalizers stay deterministic
// across backends.
func (r *ServiceRunner) Run(inputs []runner.MeasureInput, builds []runner.BuildResult) []runner.MeasureResult {
	ctx := r.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Mint the batch's trace identity here, at the outermost client tier —
	// every retry and every reroute hop downstream reuses it, which is what
	// makes one tuner batch one joinable timeline across the fleet.
	ctx, _ = obs.EnsureTrace(ctx)
	if r.Tenant != "" {
		ctx = WithTenant(ctx, r.Tenant)
	}
	out := make([]runner.MeasureResult, len(inputs))
	req := &SimulateRequest{
		Arch:       string(r.Arch),
		Workload:   r.Workload,
		Candidates: make([]Candidate, 0, len(inputs)),
	}
	// Client-side build failures (only possible with a real Builder in
	// front; NopBuilder never fails) are reported locally and skipped.
	sent := make([]int, 0, len(inputs))
	for i := range inputs {
		if i < len(builds) && builds[i].Err != nil {
			out[i] = runner.MeasureResult{Err: builds[i].Err, Score: math.Inf(1)}
			continue
		}
		req.Candidates = append(req.Candidates, Candidate{Steps: inputs[i].Steps})
		sent = append(sent, i)
	}
	if len(sent) > 0 {
		resp, err := r.simulateWithRetry(ctx, req)
		if err != nil {
			for _, i := range sent {
				out[i] = runner.MeasureResult{Err: err, Score: math.Inf(1)}
			}
		} else {
			for j, i := range sent {
				res := resp.Results[j]
				if res.Err != "" {
					out[i] = runner.MeasureResult{Err: errors.New(res.Err), Score: math.Inf(1)}
					continue
				}
				if res.Stats == nil {
					out[i] = runner.MeasureResult{
						Err: errors.New("service: result has neither stats nor error"), Score: math.Inf(1)}
					continue
				}
				if res.CacheHit {
					r.hits.Add(1)
				} else {
					r.misses.Add(1)
				}
				out[i] = runner.MeasureResult{Stats: res.Stats, CacheHit: res.CacheHit}
			}
		}
	}
	if r.Scorer != nil {
		for i := range out {
			if out[i].Err == nil && out[i].Stats != nil {
				out[i].Score = r.Scorer.Score(out[i].Stats)
			}
		}
	}
	return out
}

// simulateWithRetry re-submits a batch whose error is retryable (and whose
// context is still alive): the batch is idempotent — results are
// content-addressed and cancellation is never cached — so re-submission can
// only re-simulate work, never corrupt it.
func (r *ServiceRunner) simulateWithRetry(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	retries := r.Retries
	if retries == 0 {
		retries = 2
	}
	base := r.RetryBackoff
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	cap := r.RetryBackoffMax
	if cap <= 0 {
		cap = 8 * time.Second
	}
	if cap < base {
		cap = base
	}
	for attempt := 0; ; attempt++ {
		r.attempts.Add(1)
		if attempt > 0 {
			r.retried.Add(1)
		}
		a0 := time.Now()
		resp, err := r.Backend.Simulate(ctx, req)
		r.attemptHist.Observe(time.Since(a0))
		if err == nil || attempt >= retries || !IsRetryable(err) || ctx.Err() != nil {
			return resp, err
		}
		d := retryDelay(base, cap, attempt, retryAfterOf(err))
		r.backoffNS.Add(int64(d))
		if serr := r.pause(ctx, d); serr != nil {
			return nil, serr
		}
	}
}

// retryDelay is capped exponential backoff with full jitter: the window
// doubles per attempt up to cap and the sleep is drawn uniformly from
// (0, window] — rejected clients de-synchronize instead of stampeding back
// in lockstep. A server-supplied Retry-After floors the result; the server
// knows its own drain rate better than the client's schedule does.
func retryDelay(base, cap time.Duration, attempt int, floor time.Duration) time.Duration {
	window := cap
	if attempt < 32 {
		if w := base << uint(attempt); w > 0 && w < cap {
			window = w
		}
	}
	d := time.Duration(rand.Int63n(int64(window))) + 1
	if d < floor {
		d = floor
	}
	return d
}

// retryAfterOf extracts the server's pacing hint, if the error carries one.
func retryAfterOf(err error) time.Duration {
	var se *Error
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// pause waits d or until ctx dies, through the test seam when installed.
func (r *ServiceRunner) pause(ctx context.Context, d time.Duration) error {
	if r.sleep != nil {
		return r.sleep(ctx, d)
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NopBuilder implements runner.Builder by declining to compile: the
// simulate service lowers candidates server-side from their step logs, so
// the client ships no programs. Build results carry neither program nor
// error; only ServiceRunner (which ignores Prog) understands them.
type NopBuilder struct{}

// Build implements runner.Builder.
func (NopBuilder) Build(inputs []runner.MeasureInput) []runner.BuildResult {
	return make([]runner.BuildResult, len(inputs))
}
