package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/obs"
)

// RouterConfig sizes a Router.
type RouterConfig struct {
	// Nodes are the backend server base URLs, e.g.
	// ["http://sim-0:8070", "http://sim-1:8070"]. The strings are also the
	// ring identities, so keep them stable across router restarts — the
	// ring placement (and therefore which node's cache owns which key)
	// derives from them.
	Nodes []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (default 128).
	Replicas int
	// ProbeInterval paces the background /v1/statusz health probe that
	// returns recovered nodes to rotation (default 2s; negative disables
	// probing — down nodes then stay down until probeOnce is called).
	ProbeInterval time.Duration
	// HTTPClient overrides the transport shared by all node clients.
	HTTPClient *http.Client
	// DisableHandoff turns off the warm-handoff replay that runs when a
	// node rejoins the ring. With handoff off, a rejoining node re-simulates
	// the keys it owns (its misses) instead of receiving them from the
	// successors that covered its range. It also disables replication and
	// anti-entropy, which ride the same endpoint triple.
	DisableHandoff bool
	// ReplicationFactor is how many ring nodes hold each key: the owner
	// plus RF-1 successors (default 2; clamped to the node count; 1 turns
	// replication off; negative is a configuration error). Fresh results
	// are write-through replicated after each batch, and the anti-entropy
	// round repairs whatever the write-through missed — so a permanently
	// lost node's keys are re-served by its replica at hit rate instead of
	// re-simulated at cold rate.
	ReplicationFactor int
	// AntiEntropyInterval paces the background anti-entropy round (default
	// 1m; negative disables the loop — antiEntropyOnce still works, which
	// is what tests and operators drive directly).
	AntiEntropyInterval time.Duration
	// HandoffChunk bounds how many results travel per fetch/ingest round
	// trip during a handoff replay (default 256).
	HandoffChunk int
	// HandoffTimeout bounds one node's whole rejoin replay (default 2m —
	// generous, since a replay moves cached results, never simulations).
	HandoffTimeout time.Duration
	// DisableTelemetry turns off the router-tier obs layer (histograms,
	// traces). Node-side telemetry is each node's own setting.
	DisableTelemetry bool
	// TraceRingSize bounds the router's recent-trace ring behind GET
	// /v1/traces (default 256; negative disables tracing, keeps metrics).
	TraceRingSize int
	// SlowBatchThreshold, when positive, logs one structured line per batch
	// slower than it at the routing tier (same format as the node's).
	SlowBatchThreshold time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the router's
	// handler.
	EnablePprof bool
}

func (c *RouterConfig) defaults() {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = 2
	}
	if c.AntiEntropyInterval == 0 {
		c.AntiEntropyInterval = time.Minute
	}
	if c.HandoffChunk <= 0 {
		c.HandoffChunk = 256
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 2 * time.Minute
	}
	if c.TraceRingSize == 0 {
		c.TraceRingSize = 256
	}
}

// Router is the horizontal scaling tier of the simulate service: it
// implements Backend over N backend servers by consistent-hashing the
// sha256 cache-key space across them. Each incoming batch is split by ring
// owner, the sub-batches fan out to their owning nodes concurrently, and
// the per-candidate results are re-assembled index-aligned — so the wire
// protocol is unchanged at every tier (clients cannot tell a router from a
// leaf server) while each cache key lives on exactly one node and
// concurrent clients dedupe globally instead of per-node.
//
// Nodes that fail a probe or a simulate call leave rotation and their key
// range drains to their ring successors; the background probe returns them
// once /v1/statusz answers again. Only retryable faults (5xx, transport)
// trigger failover — a 4xx means the request itself is broken and no
// replica can help, and a 501 ("arch not served here", heterogeneous -archs
// fleets) re-routes the batch around the healthy node without ejecting it.
type Router struct {
	cfg   RouterConfig
	ring  *ring
	nodes []*routerNode
	start time.Time

	requests   atomic.Uint64
	candidates atomic.Uint64
	rerouted   atomic.Uint64
	// handoffKeys counts results this router replayed into rejoining nodes
	// (warm handoff). Leaf servers count their own ingests; this is the
	// router-side view of the same transfers.
	handoffKeys atomic.Uint64
	// replicaKeys counts entries this router copied onto ring replicas —
	// write-through after a miss-fill plus anti-entropy repairs. Like
	// handoffKeys, a parallel ledger: replication serves no candidate.
	replicaKeys atomic.Uint64
	// aeRounds counts completed anti-entropy rounds.
	aeRounds atomic.Uint64

	// tel is the routing-tier instrument panel (nil when disabled):
	// per-outcome batch histograms, per-node dispatch histograms, and the
	// router's own trace ring. Telemetry here is per-batch/per-sub-batch
	// only — the router does no per-candidate timing.
	tel         *telemetry
	rtBatch     map[string]*obs.Histogram // outcome → batch duration
	rtSplit     *obs.Histogram
	rtReroute   *obs.Histogram
	rtReplicate *obs.Histogram
	rtAntiEnt   *obs.Histogram

	// stopBG cancels the background goroutines (health prober, anti-entropy
	// loop); bg tracks them plus the per-node probe goroutines.
	stopBG context.CancelFunc
	bg     sync.WaitGroup
}

// routerNode is one backend in the ring with its liveness state.
type routerNode struct {
	id      string
	backend Backend
	// dispatch records this node's sub-batch round-trip latency as seen from
	// the router (nil when router telemetry is off).
	dispatch *obs.Histogram

	up atomic.Bool
	// handingOff guards the rejoin replay: at most one warm handoff runs
	// per node, and while it runs the node stays out of rotation.
	handingOff atomic.Bool
	candidates atomic.Uint64

	mu      sync.Mutex
	lastErr string
}

func (n *routerNode) markDown(err error) {
	n.up.Store(false)
	n.mu.Lock()
	n.lastErr = err.Error()
	n.mu.Unlock()
}

func (n *routerNode) markUp() {
	n.up.Store(true)
	n.mu.Lock()
	n.lastErr = ""
	n.mu.Unlock()
}

func (n *routerNode) status() NodeStatus {
	n.mu.Lock()
	lastErr := n.lastErr
	n.mu.Unlock()
	return NodeStatus{
		ID:         n.id,
		Up:         n.up.Load(),
		Candidates: n.candidates.Load(),
		LastErr:    lastErr,
	}
}

// NewRouter builds a router over remote nodes and starts its health probe.
// Call Close to stop probing.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("service: router needs at least one node")
	}
	backends := make([]Backend, len(cfg.Nodes))
	for i, url := range cfg.Nodes {
		cl := NewClient(url)
		cl.HTTPClient = cfg.HTTPClient
		backends[i] = cl
	}
	return NewRouterBackends(cfg.Nodes, backends, cfg)
}

// NewRouterBackends wires arbitrary Backends into the ring — the seam for
// routing over in-process *Server values directly (tests, benchmarks,
// single-binary multi-shard deployments). ids are the ring identities,
// index-aligned with backends; cfg.Nodes is ignored.
func NewRouterBackends(ids []string, backends []Backend, cfg RouterConfig) (*Router, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("service: router needs at least one node")
	}
	if len(ids) != len(backends) {
		return nil, fmt.Errorf("service: router got %d ids for %d backends", len(ids), len(backends))
	}
	if cfg.ReplicationFactor < 0 {
		return nil, fmt.Errorf("service: ReplicationFactor must be >= 0, got %d", cfg.ReplicationFactor)
	}
	cfg.defaults()
	if cfg.ReplicationFactor > len(ids) {
		cfg.ReplicationFactor = len(ids)
	}
	rt := &Router{
		cfg:   cfg,
		ring:  newRing(ids, cfg.Replicas),
		nodes: make([]*routerNode, len(ids)),
		start: time.Now(),
		tel:   newTelemetry(cfg.DisableTelemetry, cfg.TraceRingSize, cfg.SlowBatchThreshold, nil),
	}
	if rt.tel != nil {
		rt.rtBatch = make(map[string]*obs.Histogram)
		for _, o := range []string{"ok", "canceled", "error", "overloaded", "unserved", "undeliverable"} {
			rt.rtBatch[o] = rt.tel.m.Histogram(metricRtBatch, obs.Labels("outcome", o))
		}
		rt.rtSplit = rt.tel.m.Histogram(metricStage, obs.Labels("stage", stageSplit))
		rt.rtReroute = rt.tel.m.Histogram(metricStage, obs.Labels("stage", stageReroute))
		rt.rtReplicate = rt.tel.m.Histogram(metricStage, obs.Labels("stage", stageReplicate))
		rt.rtAntiEnt = rt.tel.m.Histogram(metricStage, obs.Labels("stage", stageAntiEnt))
	}
	for i := range ids {
		rt.nodes[i] = &routerNode{id: ids[i], backend: backends[i]}
		rt.nodes[i].up.Store(true)
		if rt.tel != nil {
			rt.nodes[i].dispatch = rt.tel.m.Histogram(metricRtDisp, obs.Labels("node", ids[i]))
		}
	}
	// The lifecycle context outlives any single request: the prober and the
	// anti-entropy loop both run under it, and Close cancels it. It exists
	// even when both loops are configured off, so Close is always safe.
	lifeCtx, cancel := context.WithCancel(context.Background())
	rt.stopBG = cancel
	if cfg.ProbeInterval > 0 {
		rt.bg.Add(1)
		go func() {
			defer rt.bg.Done()
			tick := time.NewTicker(cfg.ProbeInterval)
			defer tick.Stop()
			for {
				select {
				case <-lifeCtx.Done():
					return
				case <-tick.C:
					// Fire-and-track: a slow rejoin replay on one node must
					// not delay liveness updates for the others, so rounds
					// may overlap (per-node replays stay single-flight).
					rt.probe(lifeCtx)
				}
			}
		}()
	}
	if cfg.AntiEntropyInterval > 0 && rt.replicationEnabled() {
		rt.bg.Add(1)
		go func() {
			defer rt.bg.Done()
			tick := time.NewTicker(cfg.AntiEntropyInterval)
			defer tick.Stop()
			for {
				select {
				case <-lifeCtx.Done():
					return
				case <-tick.C:
					rt.antiEntropyOnce(lifeCtx)
				}
			}
		}()
	}
	return rt, nil
}

// Close stops the background goroutines (health probe, anti-entropy loop).
// The router remains usable — nodes just no longer recover automatically and
// replica gaps are no longer repaired on a timer.
func (rt *Router) Close() {
	if rt.stopBG != nil {
		rt.stopBG()
		rt.bg.Wait()
		rt.stopBG = nil
	}
}

// probeOnce health-checks every node and flips their rotation state:
// statusz answering means up, anything else means out. A node
// transitioning down→up is a ring rejoin: before it re-enters rotation, the
// warm-handoff replay copies the results it owns from the peers that
// covered its range — ordering that matters, because the moment the node is
// marked up its keys route to it again, and any key it does not hold by
// then costs a duplicate simulation. If the replay fails, the node stays
// out of rotation and the next probe round retries it. probeOnce blocks
// until the round (replays included) finishes — the synchronous form used
// by tests; the background prober uses the non-blocking probe so a long
// replay on one node never delays liveness updates for the others.
func (rt *Router) probeOnce(ctx context.Context) {
	rt.probe(ctx).Wait()
}

// probe starts one concurrent health-check/rejoin round and returns its
// WaitGroup without waiting. Statusz probes are bounded by the probe
// timeout; a rejoin replay runs under its own HandoffTimeout budget and is
// guarded per node, so overlapping rounds never start a second replay.
func (rt *Router) probe(ctx context.Context) *sync.WaitGroup {
	timeout := rt.cfg.ProbeInterval
	if timeout <= 0 { // probing disabled; direct calls still need a bound
		timeout = 2 * time.Second
	}
	wg := new(sync.WaitGroup)
	for i, n := range rt.nodes {
		wg.Add(1)
		rt.bg.Add(1)
		go func(i int, n *routerNode) {
			defer wg.Done()
			defer rt.bg.Done()
			probeCtx, cancel := context.WithTimeout(ctx, timeout)
			st, err := n.backend.Statusz(probeCtx)
			cancel()
			if err != nil {
				n.markDown(err)
				return
			}
			if st.Draining {
				// The node answered but is shutting down: a planned down→up
				// cycle. Leave rotation now so its keys drain to successors,
				// and when its replacement answers statusz without the flag,
				// the normal rejoin replay warms it back up — warm handoff
				// covers rolling restarts for free.
				n.markDown(fmt.Errorf("draining"))
				return
			}
			if n.up.Load() || rt.cfg.DisableHandoff {
				n.markUp()
				return
			}
			// Rejoin: replay the node's corpus before rotation, at most one
			// replay per node at a time. The replay gets its own (generous)
			// budget — the probe timeout paces liveness checks, not bulk
			// replication.
			if !n.handingOff.CompareAndSwap(false, true) {
				return // a replay is already running; it decides the markUp
			}
			defer n.handingOff.Store(false)
			hctx, hcancel := context.WithTimeout(ctx, rt.cfg.HandoffTimeout)
			defer hcancel()
			rt.rejoin(hctx, i, n)
		}(i, n)
	}
	return wg
}

// rejoin replays the results node idx owns on the ring from the peers that
// held them while it was down, then returns it to rotation. Error
// semantics, chosen so a node can neither rejoin unwarmed nor be locked
// out forever:
//
//   - Peer-side errors are tolerated: a struggling peer's keys stay where
//     they are, and re-simulating them later is the bounded fallback.
//   - A transient target-side error leaves the node out of rotation; the
//     next probe round retries the replay.
//   - A non-retryable target-side error (404/405 from a backend without
//     the handoff endpoints — an older server, or a router used as a node)
//     means there is no replication surface to wait for: the node rejoins
//     without a replay rather than being retried to the same answer
//     forever.
//
// The replay never moves a key to a node that does not own it, and ingest
// skips keys the node already holds, so replaying is always safe to
// repeat.
func (rt *Router) rejoin(ctx context.Context, idx int, n *routerNode) {
	target, ok := n.backend.(HandoffBackend)
	if !ok {
		n.markUp() // nothing to replay through (in-process router, ...)
		return
	}
	// What the rejoining node already holds (it may have kept RAM, or
	// recovered a durable store): those keys need no transfer.
	have := make(map[Key]bool)
	targetKeys, err := target.Keys(ctx, 0, ^uint64(0))
	if err != nil {
		if !IsRetryable(err) {
			n.markUp() // no handoff surface on this node; rejoin unwarmed
		}
		return // transient: stay down, next probe round retries
	}
	for _, k := range targetKeys {
		have[k] = true
	}
	// Delta passes: while the replay runs the node is still out of
	// rotation, so its keys keep draining to the successors — a peer may
	// compute more owned results after its inventory was taken. Re-scan
	// until a pass finds nothing new (have accumulates, so each pass sees
	// only the delta); the pass cap bounds a pathological client that
	// produces owned keys faster than they can be copied.
	for pass := 0; pass < 4; pass++ {
		found, ok := rt.handoffSweep(ctx, idx, target, have)
		if !ok {
			return // the rejoining node faltered; retry later
		}
		if found == 0 {
			break
		}
	}
	n.markUp()
	// Closing sweep: a key in flight on a successor when the last pass
	// scanned may have completed just before markUp and would otherwise be
	// stranded there (anything computed after markUp routes to the node
	// itself). One post-markUp sweep closes that window.
	rt.handoffSweep(ctx, idx, target, have)
}

// handoffSweep performs one replay pass for node idx: scan every live
// peer's inventory, transfer the owned keys not yet in have, and report how
// many new keys the scan found. ok is false only when the rejoining node
// itself failed an ingest.
func (rt *Router) handoffSweep(ctx context.Context, idx int, target HandoffBackend, have map[Key]bool) (found int, ok bool) {
	for j, peer := range rt.nodes {
		if j == idx || !peer.up.Load() {
			continue
		}
		pb, ok := peer.backend.(HandoffBackend)
		if !ok {
			continue
		}
		// One inventory round trip per peer; ownership is decided here
		// against the ring, which hashes exactly what the peers hashed.
		// (/v1/keys also accepts ?range= for narrower pulls — with 128
		// virtual nodes per backend the rejoined node's range is many
		// small arcs, so one full listing is the cheaper shape.)
		keys, err := pb.Keys(ctx, 0, ^uint64(0))
		if err != nil {
			continue
		}
		var want []Key
		for _, k := range keys {
			if !have[k] && rt.ring.owner(k) == idx {
				have[k] = true
				want = append(want, k)
			}
		}
		found += len(want)
		for start := 0; start < len(want); start += rt.cfg.HandoffChunk {
			end := start + rt.cfg.HandoffChunk
			if end > len(want) {
				end = len(want)
			}
			entries, err := pb.Fetch(ctx, want[start:end])
			if err != nil {
				break // this peer is struggling; try the next one
			}
			n, err := target.Ingest(ctx, entries)
			if err != nil {
				return found, false
			}
			rt.handoffKeys.Add(uint64(n))
		}
	}
	return found, true
}

// replicationEnabled reports whether the ring keeps multiple copies of each
// key. Replication rides the handoff endpoint triple, so DisableHandoff
// turns it off too, and a single-node ring has nowhere to replicate to.
func (rt *Router) replicationEnabled() bool {
	return rt.cfg.ReplicationFactor > 1 && !rt.cfg.DisableHandoff && len(rt.nodes) > 1
}

// liveReplicas returns the first ReplicationFactor live nodes on k's
// successor walk (index 0 is the owner when it is up). Computing the replica
// set against liveness — not fixed ring positions — is what makes the scheme
// self-healing: when a node is permanently lost, the walk extends past it
// and the next live successor inherits replica duty for its range.
func (rt *Router) liveReplicas(k Key) []int {
	out := make([]int, 0, rt.cfg.ReplicationFactor)
	for _, n := range rt.ring.successors(k) {
		if !rt.nodes[n].up.Load() {
			continue
		}
		out = append(out, n)
		if len(out) == rt.cfg.ReplicationFactor {
			break
		}
	}
	return out
}

// pushEntries ingests each target's entries in HandoffChunk-sized rounds,
// crediting replicaKeys with what the targets report as new. Errors are
// tolerated per target — a replica that cannot take its copy right now is
// repaired by a later anti-entropy round, never retried inline.
func (rt *Router) pushEntries(ctx context.Context, byTarget map[int][]Entry) int {
	moved := 0
	for j, entries := range byTarget {
		tb, ok := rt.nodes[j].backend.(HandoffBackend)
		if !ok {
			continue
		}
		for start := 0; start < len(entries); start += rt.cfg.HandoffChunk {
			end := start + rt.cfg.HandoffChunk
			if end > len(entries) {
				end = len(entries)
			}
			n, err := tb.Ingest(ctx, entries[start:end])
			if err != nil {
				break // this replica is struggling; anti-entropy catches it up
			}
			moved += n
			rt.replicaKeys.Add(uint64(n))
		}
	}
	return moved
}

// replicateFresh write-through-replicates a batch's freshly computed results
// (miss-fills, never cache hits) onto each key's other live replicas. It runs
// synchronously at the end of Simulate — by the time a batch returns, its
// results are already on ReplicationFactor nodes, so statusz reconciliation
// across the fleet never observes replication in flight. The copies land via
// /v1/ingest, which skips keys the replica already holds, so replaying a key
// is always safe.
func (rt *Router) replicateFresh(ctx context.Context, keys []Key, results []Result, servedBy []int) {
	if !rt.replicationEnabled() {
		return
	}
	var r0 time.Time
	if rt.tel != nil {
		r0 = time.Now()
	}
	byTarget := make(map[int][]Entry)
	seen := make(map[Key]bool, len(keys))
	for i, k := range keys {
		if servedBy[i] < 0 || results[i].CacheHit || seen[k] {
			continue
		}
		seen[k] = true
		for _, j := range rt.liveReplicas(k) {
			if j == servedBy[i] {
				continue
			}
			byTarget[j] = append(byTarget[j], Entry{Key: k, Result: results[i]})
		}
	}
	if len(byTarget) == 0 {
		return
	}
	rt.pushEntries(ctx, byTarget)
	if rt.tel != nil {
		rt.rtReplicate.Observe(time.Since(r0))
	}
}

// antiEntropyOnce runs one anti-entropy round: diff the live nodes' key
// inventories (/v1/keys) against each key's replica set and copy every
// missing entry from a node that holds it. The round is the repair path for
// everything write-through cannot cover — a replica that was down when its
// copy was pushed, a node permanently lost with its disk, a fleet whose
// ReplicationFactor was just raised. Returns how many entries moved, so
// callers can loop until a round moves nothing (convergence). Safe to run
// concurrently with serving: ingest is idempotent and never evicts.
func (rt *Router) antiEntropyOnce(ctx context.Context) int {
	if !rt.replicationEnabled() {
		return 0
	}
	var a0 time.Time
	if rt.tel != nil {
		a0 = time.Now()
	}
	// Inventory every live node with a handoff surface, in parallel.
	invs := make([][]Key, len(rt.nodes))
	participating := make([]bool, len(rt.nodes))
	var wg sync.WaitGroup
	for i, n := range rt.nodes {
		hb, ok := n.backend.(HandoffBackend)
		if !ok || !n.up.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, hb HandoffBackend) {
			defer wg.Done()
			keys, err := hb.Keys(ctx, 0, ^uint64(0))
			if err != nil {
				return // skip this node this round; the next round retries
			}
			invs[i] = keys
			participating[i] = true
		}(i, hb)
	}
	wg.Wait()

	has := make([]map[Key]bool, len(rt.nodes))
	for i := range rt.nodes {
		if !participating[i] {
			continue
		}
		has[i] = make(map[Key]bool, len(invs[i]))
		for _, k := range invs[i] {
			has[i][k] = true
		}
	}
	// For every key anywhere in the fleet, find the replicas that lack it.
	// The first node seen holding a key sources every pull for it (seen
	// dedupes, so each key is planned exactly once per round).
	type pullPair struct{ target, source int }
	pulls := make(map[pullPair][]Key)
	seen := make(map[Key]bool)
	for i := range rt.nodes {
		if !participating[i] {
			continue
		}
		for _, k := range invs[i] {
			if seen[k] {
				continue
			}
			seen[k] = true
			for _, j := range rt.liveReplicas(k) {
				if j == i || !participating[j] || has[j][k] {
					continue
				}
				pulls[pullPair{target: j, source: i}] = append(pulls[pullPair{target: j, source: i}], k)
			}
		}
	}
	moved := 0
	for pair, want := range pulls {
		src, ok := rt.nodes[pair.source].backend.(HandoffBackend)
		if !ok {
			continue
		}
		for start := 0; start < len(want); start += rt.cfg.HandoffChunk {
			end := start + rt.cfg.HandoffChunk
			if end > len(want) {
				end = len(want)
			}
			entries, err := src.Fetch(ctx, want[start:end])
			if err != nil {
				break // source faltered; the next round replans
			}
			moved += rt.pushEntries(ctx, map[int][]Entry{pair.target: entries})
		}
	}
	rt.aeRounds.Add(1)
	if rt.tel != nil {
		rt.rtAntiEnt.Observe(time.Since(a0))
	}
	return moved
}

// Simulate implements Backend: split the batch by ring owner, fan sub-batches
// out to the owning nodes, re-assemble index-aligned. Node faults re-route
// the failed sub-batch to each key's ring successors; request defects (4xx)
// and the caller's own cancellation fail the batch immediately.
func (rt *Router) Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	// Telemetry opens first: the trace ID the client minted (or one minted
	// here) is in ctx before any node call, so every dispatch — including
	// reroute hops — carries the same X-Simtune-Trace identity downstream.
	var batchStart time.Time
	var tr *obs.ActiveTrace
	if rt.tel != nil {
		batchStart = time.Now()
		ctx, tr = rt.tel.startTrace(ctx, "router")
		tr.Describe(req.Arch, req.Workload.signature(), len(req.Candidates))
	}
	finish := func(outcome string, err error) {
		if rt.tel == nil {
			return
		}
		dur := time.Since(batchStart)
		tr.Finish(err)
		rt.rtBatch[outcome].Observe(dur)
		rt.tel.slowBatchLog(tr, dur, "router", req.Arch, req.Workload.signature(), len(req.Candidates), err)
	}

	// Validate up front so malformed requests are rejected at the routing
	// tier — they must never count as node faults or trigger failover.
	arch, err := isa.ParseArch(req.Arch)
	if err != nil {
		err = fmt.Errorf("service: %w", badRequestf("%v", err))
		finish("error", err)
		return nil, err
	}
	if _, err := req.Workload.Factory(); err != nil {
		err = fmt.Errorf("service: %w", badRequestf("%v", err))
		finish("error", err)
		return nil, err
	}
	rt.requests.Add(1)
	rt.candidates.Add(uint64(len(req.Candidates)))

	// The routing decision hashes exactly what the node's cache will hash,
	// so a key's simulate traffic and its cache entry meet on one node.
	// Keys are kept for failover; the successor walk itself is deferred to
	// the (rare) rounds where a key's owner is down, keeping the
	// all-nodes-up hot path to one hash and one ring lookup per candidate.
	var sp0 time.Time
	if rt.tel != nil {
		sp0 = time.Now()
	}
	caches := hw.Lookup(arch).Caches
	keys := make([]Key, len(req.Candidates))
	remaining := make([]int, len(req.Candidates))
	for i, c := range req.Candidates {
		keys[i] = CacheKey(arch, caches, req.Workload, c.Steps)
		remaining[i] = i
	}
	if rt.tel != nil {
		spDur := time.Since(sp0)
		rt.rtSplit.Observe(spDur)
		tr.Span(stageSplit, sp0, spDur, len(req.Candidates), "")
	}

	results := make([]Result, len(req.Candidates))
	// servedBy records which node produced each result so the write-through
	// replication pass can copy fresh results to the other replicas without
	// re-ingesting into the node that just computed them.
	servedBy := make([]int, len(req.Candidates))
	for i := range servedBy {
		servedBy[i] = -1
	}
	// excluded marks nodes that declined THIS batch while staying healthy:
	// a 501 (arch not served there) or a 429 (admission gate full). Both
	// stay in rotation for other traffic, but this batch's keys must route
	// past them.
	excluded := make([]bool, len(rt.nodes))
	var unservedErr, overloadErr error
	pick := func(i int) int {
		if n := rt.ring.owner(keys[i]); rt.nodes[n].up.Load() && !excluded[n] {
			return n
		}
		for _, n := range rt.ring.successors(keys[i]) {
			if rt.nodes[n].up.Load() && !excluded[n] {
				return n
			}
		}
		return -1
	}
	for attempt := 0; len(remaining) > 0; attempt++ {
		if attempt > len(rt.nodes) {
			err := fmt.Errorf("service: %w",
				unavailablef("batch undeliverable after %d failover rounds", attempt))
			finish("undeliverable", err)
			return nil, err
		}
		groups := make(map[int][]int)
		for _, i := range remaining {
			n := pick(i)
			if n < 0 {
				if overloadErr != nil {
					// Every live node is saturated: propagate the 429 (with
					// its Retry-After) so the client backs off and retries —
					// the fleet is healthy, just full.
					finish("overloaded", overloadErr)
					return nil, overloadErr
				}
				if unservedErr != nil {
					// Every live node declined the arch: the fleet's config,
					// not its health, fails this batch — report the stable
					// 501 so clients do not spin on retries.
					finish("unserved", unservedErr)
					return nil, unservedErr
				}
				err := fmt.Errorf("service: %w", unavailablef("no live nodes (of %d)", len(rt.nodes)))
				finish("undeliverable", err)
				return nil, err
			}
			groups[n] = append(groups[n], i)
		}

		type outcome struct {
			node int
			idx  []int
			resp *SimulateResponse
			err  error
			t0   time.Time
			dur  time.Duration
		}
		ch := make(chan outcome, len(groups))
		for n, idx := range groups {
			go func(n int, idx []int) {
				sub := &SimulateRequest{Arch: req.Arch, Workload: req.Workload,
					Candidates: make([]Candidate, len(idx))}
				for j, i := range idx {
					sub.Candidates[j] = req.Candidates[i]
				}
				var t0 time.Time
				if rt.tel != nil {
					t0 = time.Now()
				}
				resp, err := rt.nodes[n].backend.Simulate(ctx, sub)
				var dur time.Duration
				if rt.tel != nil {
					dur = time.Since(t0)
					rt.nodes[n].dispatch.Observe(dur)
					tr.Span(stageDispatch, t0, dur, len(idx), rt.nodes[n].id)
				}
				if err == nil && len(resp.Results) != len(idx) {
					err = fmt.Errorf("service: node %s returned %d results for %d candidates",
						rt.nodes[n].id, len(resp.Results), len(idx))
				}
				ch <- outcome{node: n, idx: idx, resp: resp, err: err, t0: t0, dur: dur}
			}(n, idx)
		}

		reroute := func(o outcome) {
			rt.rerouted.Add(1)
			if rt.tel != nil {
				// The reroute span carries the failed dispatch's cost — the
				// latency this batch paid before its keys moved on.
				rt.rtReroute.Observe(o.dur)
				tr.Span(stageReroute, o.t0, o.dur, len(o.idx), rt.nodes[o.node].id)
			}
		}
		var retry []int
		var batchErr error
		for range groups {
			o := <-ch
			switch {
			case o.err == nil:
				for j, i := range o.idx {
					results[i] = o.resp.Results[j]
					servedBy[i] = o.node
				}
				rt.nodes[o.node].candidates.Add(uint64(len(o.idx)))
			case ctx.Err() != nil:
				// The caller canceled; says nothing about node health.
				if batchErr == nil {
					batchErr = o.err
				}
			case isUnserved(o.err):
				// The node is healthy but its operator config does not
				// serve this arch: route around it for this batch only.
				excluded[o.node] = true
				unservedErr = o.err
				reroute(o)
				retry = append(retry, o.idx...)
			case isOverloaded(o.err):
				// The node's admission gate is full — a load fact, not a
				// fault. Shed this batch to ring successors without ejecting
				// the node; if every live node is saturated, the 429 (and its
				// Retry-After) propagates so the client paces itself.
				excluded[o.node] = true
				overloadErr = o.err
				reroute(o)
				retry = append(retry, o.idx...)
			case !IsRetryable(o.err):
				// The node proved the request itself defective — not the
				// node's fault; fail the batch.
				if batchErr == nil {
					batchErr = o.err
				}
			default:
				// Node fault: out of rotation, keys drain to ring successors.
				rt.nodes[o.node].markDown(o.err)
				reroute(o)
				retry = append(retry, o.idx...)
			}
		}
		if batchErr != nil {
			if ctx.Err() != nil {
				finish("canceled", batchErr)
			} else {
				finish("error", batchErr)
			}
			return nil, batchErr
		}
		remaining = retry
	}
	// Write-through: before the batch returns, its miss-fills are copied to
	// their other live replicas. Synchronous on purpose — fleet-wide counters
	// reconcile at every instant, and a node lost the moment after a batch
	// completes has already been covered.
	rt.replicateFresh(ctx, keys, results, servedBy)
	finish("ok", nil)
	return &SimulateResponse{Results: results}, nil
}

// Statusz implements Backend: the router's own routing counters plus the
// reachable nodes' counters summed — cache hits/misses/canceled and entries
// across the fleet, and per-arch shard loads merged by architecture — with a
// per-node breakdown in Nodes. Unreachable nodes are reported but not
// summed (their counters are unknowable, not zero).
func (rt *Router) Statusz(ctx context.Context) (*Statusz, error) {
	agg := &Statusz{
		UptimeSec:         time.Since(rt.start).Seconds(),
		Requests:          rt.requests.Load(),
		Candidates:        rt.candidates.Load(),
		Rerouted:          rt.rerouted.Load(),
		HandoffKeys:       rt.handoffKeys.Load(),
		ReplicaKeys:       rt.replicaKeys.Load(),
		AntiEntropyRounds: rt.aeRounds.Load(),
	}
	type nodeStatusz struct {
		st  *Statusz
		err error
	}
	polled := make([]nodeStatusz, len(rt.nodes))
	var wg sync.WaitGroup
	for i, n := range rt.nodes {
		wg.Add(1)
		go func(i int, n *routerNode) {
			defer wg.Done()
			polled[i].st, polled[i].err = n.backend.Statusz(ctx)
		}(i, n)
	}
	wg.Wait()

	shardByArch := make(map[string]*ShardStatus)
	tenantByName := make(map[string]*TenantStatus)
	var shardOrder []string
	for i, n := range rt.nodes {
		ns := n.status()
		if polled[i].err != nil {
			ns.Up = false
			ns.LastErr = polled[i].err.Error()
		} else {
			st := polled[i].st
			ns.Draining = st.Draining
			agg.RejectedCandidates += st.RejectedCandidates
			agg.CacheHits += st.CacheHits
			agg.CacheMisses += st.CacheMisses
			agg.CacheCanceled += st.CacheCanceled
			agg.CacheEntries += st.CacheEntries
			agg.CacheDiskHits += st.CacheDiskHits
			agg.CacheDiskEntries += st.CacheDiskEntries
			agg.CacheResident += st.CacheResident
			agg.CacheEvictions += st.CacheEvictions
			agg.StoreCompactions += st.StoreCompactions
			for _, sh := range st.Shards {
				m, ok := shardByArch[sh.Arch]
				if !ok {
					m = &ShardStatus{Arch: sh.Arch}
					shardByArch[sh.Arch] = m
					shardOrder = append(shardOrder, sh.Arch)
				}
				m.Workers += sh.Workers
				m.Queued += sh.Queued
				m.Running += sh.Running
				m.Simulated += sh.Simulated
			}
			mergeTenantStatus(tenantByName, st.Tenants)
		}
		agg.Nodes = append(agg.Nodes, ns)
	}
	for _, arch := range shardOrder {
		agg.Shards = append(agg.Shards, *shardByArch[arch])
	}
	// Per-tenant ledgers merge by tenant name exactly like shards merge by
	// arch: the fleet view of each tenant's candidates/hits/misses/canceled
	// (reconciling per tenant) and rejected (the fairness gate's shed work).
	agg.Tenants = sortedTenantStatus(tenantByName)
	// Stages on a router statusz summarizes the routing tier's own
	// histograms (split, dispatch, reroute, per-outcome batches). The exact
	// fleet-wide merge — node histograms folded bucket-wise — lives on
	// /v1/metrics; quantiles cannot be merged after summarization, so they
	// are never summed here.
	agg.Stages = stageLatencies(rt.tel.histSnapshot())
	return agg, nil
}

// MetricsSnapshot implements MetricsBackend at the routing tier: the
// router's own series merged with every reachable node's snapshot. The
// histograms merge bucket-wise (obs.Snapshot.Merge), so a quantile rendered
// from the result is the quantile of the combined fleet sample — exact,
// where averaging per-node p99s would be wrong by up to the fleet's spread.
// Unreachable nodes and nodes without a telemetry surface are skipped, like
// Statusz skips their counters.
func (rt *Router) MetricsSnapshot(ctx context.Context) (*obs.MetricsSnapshot, error) {
	snap := &obs.MetricsSnapshot{Hists: rt.tel.histSnapshot()}
	counter := func(name string, v uint64) {
		snap.Counters = append(snap.Counters, obs.ScalarMetric{Name: name, Value: float64(v)})
	}
	counter("simtune_router_requests_total", rt.requests.Load())
	counter("simtune_router_candidates_total", rt.candidates.Load())
	counter("simtune_router_rerouted_total", rt.rerouted.Load())
	counter("simtune_router_handoff_keys_total", rt.handoffKeys.Load())
	counter("simtune_router_replica_keys_total", rt.replicaKeys.Load())
	counter("simtune_router_antientropy_rounds_total", rt.aeRounds.Load())
	snap.Gauges = append(snap.Gauges, obs.RuntimeGauges()...)

	polled := make([]*obs.MetricsSnapshot, len(rt.nodes))
	var wg sync.WaitGroup
	for i, n := range rt.nodes {
		mb, ok := n.backend.(MetricsBackend)
		if !ok || !n.up.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, mb MetricsBackend) {
			defer wg.Done()
			if s, err := mb.MetricsSnapshot(ctx); err == nil {
				polled[i] = s
			}
		}(i, mb)
	}
	wg.Wait()
	for _, s := range polled {
		snap.Merge(s)
	}
	return snap, nil
}

// Handler exposes the router over the same wire protocol as a leaf server.
func (rt *Router) Handler() http.Handler { return backendHandler(rt, rt.tel, rt.cfg.EnablePprof) }

// ListenAndServe runs the router's HTTP surface until ctx is cancelled (see
// Server.ListenAndServe), then stops the health probe. The router holds no
// durable state, so it has no drain phase of its own — in-flight proxied
// batches are bounded by the HTTP shutdown grace below.
func (rt *Router) ListenAndServe(ctx context.Context, addr string) error {
	defer rt.Close()
	return serveHTTP(ctx, addr, rt.Handler(), nil)
}
