package service

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// admission is the bounded gate in front of the worker shards: the total
// candidates admitted (queued or running, across every shard and batch) may
// not exceed max. It is the server's backpressure primitive — when full, a
// batch is rejected with a 429 instead of queueing without bound, so memory
// and latency stay bounded under any client population and a router can
// shed the load to ring successors.
//
// One liveness exception: a batch larger than max is admitted when nothing
// else is (cur == 0), so an oversized client degrades to serial service
// rather than being re-rejected forever.
type admission struct {
	max int64
	cur atomic.Int64
}

// tryAcquire admits n candidates, or reports the gate full.
func (a *admission) tryAcquire(n int) bool {
	for {
		cur := a.cur.Load()
		if cur > 0 && cur+int64(n) > a.max {
			return false
		}
		if a.cur.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

func (a *admission) release(n int) { a.cur.Add(int64(-n)) }

// shard is the worker pool of one architecture: a fixed number of simulator
// slots shared by every concurrent batch targeting that arch. Slots are a
// counting semaphore rather than resident goroutines — the expensive
// resource, the simulator machine with its cache hierarchy, is pooled by
// sim.Acquire inside sim.Run, so an idle shard holds no memory and a busy
// one reuses the PR 1 machine pool. Per-arch sharding keeps one
// architecture's backlog from starving the others.
type shard struct {
	prof    hw.Profile
	builder runner.LocalBuilder
	slots   chan struct{}

	queued    atomic.Int64
	running   atomic.Int64
	simulated atomic.Uint64
}

func newShard(prof hw.Profile, workers int) *shard {
	return &shard{
		prof:    prof,
		builder: runner.LocalBuilder{Arch: prof.Arch},
		slots:   make(chan struct{}, workers),
	}
}

// exec compiles and simulates one candidate on a worker slot. The returned
// error is non-nil only for cancellation (not cacheable); deterministic
// build/simulate failures are folded into Result.Err so the cache can absorb
// re-submissions of broken candidates too.
//
// Unlike SimulatorRunner.Run, exec deliberately does NOT consult the
// SimulatorRunKey registry override (Listing 4): cached results must stay a
// pure function of the cache key, and a process-local override would poison
// a cache shared across clients. Custom simulator backends belong behind
// their own Backend implementation instead.
// A non-nil tm records how long the candidate waited for a slot
// (queue_wait) and how long the build+simulate took (simulate); nil tm
// measures nothing.
func (sh *shard) exec(ctx context.Context, factory runner.WorkloadFactory, steps []schedule.Step, tm *candTimings) (Result, error) {
	sh.queued.Add(1)
	var q0 time.Time
	if tm != nil {
		q0 = time.Now()
	}
	select {
	case sh.slots <- struct{}{}:
		sh.queued.Add(-1)
		if tm != nil {
			tm.queueWait = time.Since(q0)
		}
	case <-ctx.Done():
		sh.queued.Add(-1)
		if tm != nil {
			tm.queueWait = time.Since(q0)
		}
		return Result{}, ctx.Err()
	}
	sh.running.Add(1)
	defer func() {
		sh.running.Add(-1)
		<-sh.slots
	}()

	var s0 time.Time
	if tm != nil {
		s0 = time.Now()
	}
	done := func(r Result) Result {
		if tm != nil {
			tm.simulate = time.Since(s0)
			tm.simulated = true
		}
		return r
	}
	build := sh.builder.Build([]runner.MeasureInput{{Factory: factory, Steps: steps}})[0]
	if build.Err != nil {
		return done(Result{Err: build.Err.Error()}), nil
	}
	st, err := sim.Run(build.Prog, sh.prof.Caches)
	if err != nil {
		return done(Result{Err: err.Error()}), nil
	}
	sh.simulated.Add(1)
	return done(Result{Stats: st}), nil
}

// status snapshots the shard's load counters.
func (sh *shard) status() ShardStatus {
	return ShardStatus{
		Arch:      string(sh.prof.Arch),
		Workers:   cap(sh.slots),
		Queued:    sh.queued.Load(),
		Running:   sh.running.Load(),
		Simulated: sh.simulated.Load(),
	}
}
