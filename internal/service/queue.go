package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hw"
	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// admission is the bounded gate in front of the worker shards: the total
// candidates admitted (queued or running, across every shard and batch) may
// not exceed max. It is the server's backpressure primitive — when full, a
// batch is rejected with a 429 instead of queueing without bound, so memory
// and latency stay bounded under any client population and a router can
// shed the load to ring successors.
//
// The bound is shared weighted-fair across tenants. Let W be the weight sum
// of the tenants currently holding admitted work plus the requester; the
// requester's limit is max·w/W. A tenant alone on the server therefore gets
// the whole gate (work conservation — single-tenant behavior is unchanged),
// while under contention each tenant is capped at exactly its share: an
// aggressor that filled the gate is rejected back to its share as soon as a
// second tenant shows up, and a tenant under its share is admitted
// *unconditionally* — a compliant tenant is never 429d by someone else's
// backlog. The price is a bounded transient overshoot of the global max
// (at most one extra share per under-share tenant while an aggressor's
// borrowed admissions drain), which buys the hard fairness guarantee.
//
// One liveness exception: a batch larger than its limit is admitted when
// nothing else is (cur == 0), so an oversized client degrades to serial
// service rather than being re-rejected forever.
//
// Admission is once per batch, not per candidate, so the mutex guarding the
// per-tenant occupancy map is off the per-candidate hot path; cur remains a
// plain atomic for lock-free gauge reads.
type admission struct {
	max int64
	cur atomic.Int64 // total admitted candidates across all tenants

	mu      sync.Mutex
	weights map[string]float64     // configured fair-share weights (nil: all 1)
	gates   map[string]*tenantGate // per-tenant occupancy, created on first sight
}

// tenantGate is one tenant's admission occupancy.
type tenantGate struct {
	weight float64
	cur    int64
}

// init readies the gate in place (admission embeds a mutex, so it is
// initialized where it lives rather than copied from a constructor).
func (a *admission) init(max int64, weights map[string]float64) {
	a.max = max
	a.weights = weights
	a.gates = make(map[string]*tenantGate)
}

// gate returns the tenant's occupancy record, creating it with the
// configured weight (default 1). Callers hold a.mu.
func (a *admission) gate(tenant string) *tenantGate {
	g := a.gates[tenant]
	if g == nil {
		wt := 1.0
		if w, ok := a.weights[tenant]; ok && w > 0 {
			wt = w
		}
		g = &tenantGate{weight: wt}
		a.gates[tenant] = g
	}
	return g
}

// tryAcquire admits n of the tenant's candidates, or reports its fair share
// of the gate full.
func (a *admission) tryAcquire(tenant string, n int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	g := a.gate(tenant)
	if a.cur.Load() == 0 {
		// Liveness: an idle server admits any batch, oversized included.
		g.cur += int64(n)
		a.cur.Add(int64(n))
		return true
	}
	// W sums the weights of tenants currently holding admitted work, plus
	// this one; the tenant's limit is its weighted share of the gate. With
	// no contention W == g.weight and the limit is the whole gate.
	w := g.weight
	for _, og := range a.gates {
		if og != g && og.cur > 0 {
			w += og.weight
		}
	}
	limit := int64(float64(a.max) * g.weight / w)
	if g.cur+int64(n) > limit {
		return false
	}
	g.cur += int64(n)
	a.cur.Add(int64(n))
	return true
}

// release returns n of the tenant's candidates to the gate.
func (a *admission) release(tenant string, n int) {
	a.mu.Lock()
	if g := a.gates[tenant]; g != nil {
		g.cur -= int64(n)
	}
	a.mu.Unlock()
	a.cur.Add(int64(-n))
}

// admitted reports the tenant's current gate occupancy (statusz).
func (a *admission) admitted(tenant string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if g := a.gates[tenant]; g != nil {
		return g.cur
	}
	return 0
}

// weightOf reports the tenant's effective fair-share weight.
func (a *admission) weightOf(tenant string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if g := a.gates[tenant]; g != nil {
		return g.weight
	}
	if w, ok := a.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// shard is the worker pool of one architecture: a fixed number of simulator
// slots shared by every concurrent batch targeting that arch. Slots are a
// counting semaphore rather than resident goroutines — the expensive
// resource, the simulator machine with its cache hierarchy, is pooled by
// sim.Acquire inside sim.Run, so an idle shard holds no memory and a busy
// one reuses the PR 1 machine pool. Per-arch sharding keeps one
// architecture's backlog from starving the others.
type shard struct {
	prof    hw.Profile
	builder runner.LocalBuilder
	slots   chan struct{}

	queued    atomic.Int64
	running   atomic.Int64
	simulated atomic.Uint64
}

func newShard(prof hw.Profile, workers int) *shard {
	return &shard{
		prof:    prof,
		builder: runner.LocalBuilder{Arch: prof.Arch},
		slots:   make(chan struct{}, workers),
	}
}

// exec compiles and simulates one candidate on a worker slot. The returned
// error is non-nil only for cancellation (not cacheable); deterministic
// build/simulate failures are folded into Result.Err so the cache can absorb
// re-submissions of broken candidates too.
//
// Unlike SimulatorRunner.Run, exec deliberately does NOT consult the
// SimulatorRunKey registry override (Listing 4): cached results must stay a
// pure function of the cache key, and a process-local override would poison
// a cache shared across clients. Custom simulator backends belong behind
// their own Backend implementation instead.
// A non-nil tm records how long the candidate waited for a slot
// (queue_wait) and how long the build+simulate took (simulate); nil tm
// measures nothing.
func (sh *shard) exec(ctx context.Context, factory runner.WorkloadFactory, steps []schedule.Step, tm *candTimings) (Result, error) {
	sh.queued.Add(1)
	var q0 time.Time
	if tm != nil {
		q0 = time.Now()
	}
	select {
	case sh.slots <- struct{}{}:
		sh.queued.Add(-1)
		if tm != nil {
			tm.queueWait = time.Since(q0)
		}
	case <-ctx.Done():
		sh.queued.Add(-1)
		if tm != nil {
			tm.queueWait = time.Since(q0)
		}
		return Result{}, ctx.Err()
	}
	sh.running.Add(1)
	defer func() {
		sh.running.Add(-1)
		<-sh.slots
	}()

	var s0 time.Time
	if tm != nil {
		s0 = time.Now()
	}
	done := func(r Result) Result {
		if tm != nil {
			tm.simulate = time.Since(s0)
			tm.simulated = true
		}
		return r
	}
	build := sh.builder.Build([]runner.MeasureInput{{Factory: factory, Steps: steps}})[0]
	if build.Err != nil {
		return done(Result{Err: build.Err.Error()}), nil
	}
	st, err := sim.Run(build.Prog, sh.prof.Caches)
	if err != nil {
		return done(Result{Err: err.Error()}), nil
	}
	sh.simulated.Add(1)
	return done(Result{Stats: st}), nil
}

// status snapshots the shard's load counters.
func (sh *shard) status() ShardStatus {
	return ShardStatus{
		Arch:      string(sh.prof.Arch),
		Workers:   cap(sh.slots),
		Queued:    sh.queued.Load(),
		Running:   sh.running.Load(),
		Simulated: sh.simulated.Load(),
	}
}
