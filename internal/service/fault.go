package service

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection for the chaos harness: a seeded http.RoundTripper that
// makes the wire unreliable (FaultTransport) and a seeded StoreFile wrapper
// that makes the disk unreliable (StoreFaults). Both draw from their own
// deterministic PRNG, so a chaos run's fault schedule is reproducible from
// its seed, and both can be switched off mid-run — the recovery half of a
// chaos test asserts what the fleet looks like after the weather clears.
//
// The injected faults are exactly the classes the stack claims to survive:
//
//   - dropped connections and injected 5xx → client retry / router failover
//   - truncated response bodies → decode failures, classified retryable
//   - added latency → overlap, timeout and probe paths
//   - short segment writes and fsync errors → write-behind store resilience
//     (an unpersisted result re-simulates after restart; it is never wrong)

// TransportFaults configures one FaultTransport. Probabilities are per
// request and independent; zero values inject nothing.
type TransportFaults struct {
	// DropProb fails the request outright with a transport error, as a
	// yanked cable would — no response, no status.
	DropProb float64
	// Err5xxProb synthesizes a 500 response without reaching the server.
	Err5xxProb float64
	// TruncateProb lets the request through but cuts the response body in
	// half, so the client's JSON decode fails mid-object.
	TruncateProb float64
	// DelayProb adds Delay before the request proceeds (bounded by the
	// request context, so canceled callers are not held hostage).
	DelayProb float64
	Delay     time.Duration
}

// FaultTransport is an http.RoundTripper that injects TransportFaults ahead
// of an inner transport. Construct with NewFaultTransport; safe for
// concurrent use.
type FaultTransport struct {
	inner http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand
	cfg TransportFaults

	// Injected fault counts, by class — chaos assertions use them to prove
	// the run actually exercised something.
	Drops       atomic.Uint64
	Errs        atomic.Uint64
	Truncations atomic.Uint64
	Delays      atomic.Uint64
}

// NewFaultTransport wraps inner (nil means http.DefaultTransport) with the
// given fault profile, drawing from a PRNG seeded with seed.
func NewFaultTransport(inner http.RoundTripper, seed int64, cfg TransportFaults) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &FaultTransport{inner: inner, rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// SetFaults swaps the fault profile; SetFaults(TransportFaults{}) clears the
// weather so a recovery phase runs on a clean wire.
func (ft *FaultTransport) SetFaults(cfg TransportFaults) {
	ft.mu.Lock()
	ft.cfg = cfg
	ft.mu.Unlock()
}

// roll draws the independent fault decisions for one request atomically, so
// concurrent requests never interleave PRNG draws non-deterministically
// within a single decision set.
func (ft *FaultTransport) roll() (drop, errs, trunc, delay bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	drop = ft.cfg.DropProb > 0 && ft.rng.Float64() < ft.cfg.DropProb
	errs = ft.cfg.Err5xxProb > 0 && ft.rng.Float64() < ft.cfg.Err5xxProb
	trunc = ft.cfg.TruncateProb > 0 && ft.rng.Float64() < ft.cfg.TruncateProb
	delay = ft.cfg.DelayProb > 0 && ft.rng.Float64() < ft.cfg.DelayProb
	return
}

// RoundTrip implements http.RoundTripper.
func (ft *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, errs, trunc, delay := ft.roll()
	if delay {
		ft.Delays.Add(1)
		select {
		case <-time.After(ft.delayFor()):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if drop {
		ft.Drops.Add(1)
		return nil, fmt.Errorf("faulttransport: connection dropped (injected)")
	}
	if errs {
		ft.Errs.Add(1)
		body := `{"error":"injected server fault"}`
		return &http.Response{
			Status:        "500 Internal Server Error (injected)",
			StatusCode:    http.StatusInternalServerError,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := ft.inner.RoundTrip(req)
	if err != nil || !trunc {
		return resp, err
	}
	ft.Truncations.Add(1)
	resp.Body = &truncatedBody{inner: resp.Body, remaining: truncateAt(resp.ContentLength)}
	resp.ContentLength = -1
	return resp, nil
}

func (ft *FaultTransport) delayFor() time.Duration {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if ft.cfg.Delay > 0 {
		return ft.cfg.Delay
	}
	return 10 * time.Millisecond
}

// truncateAt picks how many body bytes survive: half the declared length, or
// a token prefix when the length is unknown — either way the JSON decode
// downstream fails mid-object.
func truncateAt(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 16
}

// truncatedBody yields a prefix of the real body and then fails the read the
// way a torn connection does (unexpected EOF), while still closing (and
// draining nothing of) the underlying body.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (tb *truncatedBody) Read(p []byte) (int, error) {
	if tb.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > tb.remaining {
		p = p[:tb.remaining]
	}
	n, err := tb.inner.Read(p)
	tb.remaining -= int64(n)
	if errors.Is(err, io.EOF) {
		err = nil // the cut must look like a tear, not a clean end
	}
	return n, err
}

func (tb *truncatedBody) Close() error { return tb.inner.Close() }

// StoreFaults makes a durable store's disk unreliable: its WrapFile hooks
// into StoreOptions/Config.StoreWrapFile and injects short writes and fsync
// errors into segment I/O. Reads and the plain Write path (segment headers at
// open) are never failed — OpenStore itself must succeed so a chaos run
// always has a store to hurt.
type StoreFaults struct {
	mu  sync.Mutex
	rng *rand.Rand
	// WriteProb fails a record append (WriteAt) after writing only half the
	// record — a torn write the next open's checksum scan must skip.
	writeProb float64
	// SyncProb fails an fsync — the flush path's error propagation.
	syncProb float64

	Writes atomic.Uint64 // injected short writes
	Syncs  atomic.Uint64 // injected fsync failures
}

// NewStoreFaults builds a seeded store fault injector.
func NewStoreFaults(seed int64, writeProb, syncProb float64) *StoreFaults {
	return &StoreFaults{rng: rand.New(rand.NewSource(seed)), writeProb: writeProb, syncProb: syncProb}
}

// Disable clears both probabilities — the recovery phase of a chaos run.
func (sf *StoreFaults) Disable() {
	sf.mu.Lock()
	sf.writeProb, sf.syncProb = 0, 0
	sf.mu.Unlock()
}

func (sf *StoreFaults) rollWrite() bool {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.writeProb > 0 && sf.rng.Float64() < sf.writeProb
}

func (sf *StoreFaults) rollSync() bool {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.syncProb > 0 && sf.rng.Float64() < sf.syncProb
}

// WrapFile is the StoreOptions.WrapFile / Config.StoreWrapFile hook.
func (sf *StoreFaults) WrapFile(f *os.File) StoreFile {
	return &faultFile{File: f, sf: sf}
}

// faultFile injects faults into the mutation paths of one segment file.
type faultFile struct {
	*os.File
	sf *StoreFaults
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if f.sf.rollWrite() {
		f.sf.Writes.Add(1)
		n := len(p) / 2
		if n > 0 {
			_, _ = f.File.WriteAt(p[:n], off) // the torn half reaches disk
		}
		return n, fmt.Errorf("storefaults: short write (injected, %d of %d bytes)", n, len(p))
	}
	return f.File.WriteAt(p, off)
}

func (f *faultFile) Sync() error {
	if f.sf.rollSync() {
		f.sf.Syncs.Add(1)
		return fmt.Errorf("storefaults: fsync failed (injected)")
	}
	return f.File.Sync()
}
