package service

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/num"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/te"
)

// mustServer builds a server or fails the test — the NewServer error path
// exists only for durable-store problems, which these configs don't hit.
func mustServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fixedHierarchy is a frozen geometry for the golden-key test, so the
// goldens pin the key derivation itself, independent of any future Table I
// profile adjustments (which are *supposed* to change real keys).
func fixedHierarchy() cache.HierarchyConfig {
	return cache.HierarchyConfig{
		L1D: cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8},
		L1I: cache.Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8},
		L2:  cache.Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 8},
	}
}

// TestCacheKeyGolden pins the cache-key derivation across processes and
// releases: these hex constants were recorded when the v1 key format was
// defined. A mismatch means persisted/shared caches would silently split or
// alias — bump the version tag inside CacheKey when changing the format.
func TestCacheKeyGolden(t *testing.T) {
	steps := []schedule.Step{
		{Kind: "split", Leaf: 1, Factor: 8},
		{Kind: "reorder", Perm: []int{0, 2, 1}},
		{Kind: "annotate", Leaf: 2, Ann: schedule.AnnVectorize},
	}
	golden := []struct {
		name string
		key  Key
		hash string
	}{
		{"convRISCV", CacheKey(isa.RISCV, fixedHierarchy(), ConvGroupSpec(te.ScaleSmall, 1), steps),
			"cd1fb3b7abb39f5775dc9ead5f4e20119147879afdf2c56d70e28ae3809fea8d"},
		{"convX86", CacheKey(isa.X86, fixedHierarchy(), ConvGroupSpec(te.ScaleSmall, 1), steps),
			"71dbe720758a84da1b2e06445fd85372bb2b087acf83f7443bd903df348c4a72"},
		{"matmulEmpty", CacheKey(isa.RISCV, fixedHierarchy(), MatMulSpec(8, 8, 8), nil),
			"26d7f62e853c5c00933483b1c029c8a093af6e76f3bcfe7a2c03ab6c214ecdb1"},
	}
	for _, g := range golden {
		if got := hex.EncodeToString(g.key[:]); got != g.hash {
			t.Errorf("%s: key %s, want golden %s", g.name, got, g.hash)
		}
	}
}

// TestCacheKeyCollisionFree checks key distinctness across every real
// (arch, Table II group, scale) combination and several step logs — the
// dimensions a shared production cache actually mixes.
func TestCacheKeyCollisionFree(t *testing.T) {
	stepLogs := [][]schedule.Step{
		nil,
		{{Kind: "split", Leaf: 0, Factor: 2}},
		{{Kind: "split", Leaf: 0, Factor: 4}},
		{{Kind: "split", Leaf: 1, Factor: 2}, {Kind: "annotate", Leaf: 2, Ann: schedule.AnnUnroll}},
	}
	seen := map[Key]string{}
	check := func(id string, k Key) {
		if prev, dup := seen[k]; dup {
			t.Fatalf("cache-key collision: %s and %s", prev, id)
		}
		seen[k] = id
	}
	for _, arch := range isa.Archs() {
		caches := hw.Lookup(arch).Caches
		for _, scale := range []te.Scale{te.ScaleTiny, te.ScaleSmall, te.ScalePaper} {
			for g := 0; g < te.NumConvGroups; g++ {
				for si, steps := range stepLogs {
					id := fmt.Sprintf("%s/%s/g%d/steps%d", arch, scale, g, si)
					check(id, CacheKey(arch, caches, ConvGroupSpec(scale, g), steps))
				}
			}
		}
		check(string(arch)+"/matmul", CacheKey(arch, caches, MatMulSpec(8, 8, 8), nil))
	}
	if len(seen) != len(isa.Archs())*(3*te.NumConvGroups*4+1) {
		t.Fatalf("unexpected key count %d", len(seen))
	}
}

// TestWorkloadSpecValidation rejects malformed specs before they reach a
// worker.
func TestWorkloadSpecValidation(t *testing.T) {
	bad := []WorkloadSpec{
		{Kind: "conv_group", Scale: "huge", Group: 0},
		{Kind: "conv_group", Scale: "small", Group: -1},
		{Kind: "conv_group", Scale: "small", Group: te.NumConvGroups},
		{Kind: "matmul", Dims: []int{8, 8}},
		{Kind: "matmul", Dims: []int{8, 0, 8}},
		{Kind: "winograd"},
	}
	for _, spec := range bad {
		if _, err := spec.Factory(); err == nil {
			t.Errorf("spec %+v must not validate", spec)
		}
	}
	good := []WorkloadSpec{
		ConvGroupSpec(te.ScaleTiny, 1),
		{Scale: "small", Group: 4}, // empty kind defaults to conv_group
		MatMulSpec(4, 4, 4),
	}
	for _, spec := range good {
		if _, err := spec.Factory(); err != nil {
			t.Errorf("spec %+v: %v", spec, err)
		}
	}
}

// tinyCandidates builds n distinct valid step logs for ConvGroup(tiny,
// group): candidate i reorders the 7-axis loop nest into its i-th
// permutation (5040 available), so logs are distinct by construction and
// exercise genuinely different access patterns.
func tinyCandidates(t testing.TB, group, n int) []Candidate {
	t.Helper()
	out := make([]Candidate, 0, n)
	for i := 0; i < n; i++ {
		s := schedule.New(te.ConvGroup(te.ScaleTiny, group).Op)
		perm := num.NthPerm(i, len(s.Leaves))
		order := make([]*schedule.IterVar, len(perm))
		for j, p := range perm {
			order[j] = s.Leaves[p]
		}
		if err := s.Reorder(order); err != nil {
			t.Fatal(err)
		}
		out = append(out, Candidate{Steps: s.Steps})
	}
	return out
}

// referenceStats simulates one candidate in-process, the way
// runner.SimulatorRunner would.
func referenceStats(t testing.TB, arch isa.Arch, group int, steps []schedule.Step) *sim.Stats {
	t.Helper()
	wl := te.ConvGroup(te.ScaleTiny, group)
	s, err := schedule.Replay(wl.Op, steps)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lower.Build(s, isa.Lookup(arch))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(p, hw.Lookup(arch).Caches)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// normalized strips the one non-deterministic field (host wall time) so the
// rest of the statistics can be compared bit for bit.
func normalized(st *sim.Stats) sim.Stats {
	c := *st
	c.SimWallSeconds = 0
	c.Caches = append([]sim.LevelStats(nil), st.Caches...)
	return c
}

// TestLocalBackendBitIdentical checks the in-process Backend returns stats
// bit-identical to direct simulation, and that re-submitting the same batch
// is served entirely from the cache with the same payload.
func TestLocalBackendBitIdentical(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 3})
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, 2),
		Candidates: tinyCandidates(t, 2, 6),
	}
	cold, err := srv.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range cold.Results {
		if res.Err != "" {
			t.Fatalf("candidate %d: %s", i, res.Err)
		}
		if res.CacheHit {
			t.Fatalf("candidate %d: cold run cannot hit", i)
		}
		want := referenceStats(t, isa.RISCV, 2, req.Candidates[i].Steps)
		if got, ref := normalized(res.Stats), normalized(want); !reflect.DeepEqual(got, ref) {
			t.Fatalf("candidate %d: service stats diverge from in-process:\n got %+v\nwant %+v", i, got, ref)
		}
	}
	warm, err := srv.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d: warm run must hit the cache", i)
		}
		if !reflect.DeepEqual(res.Stats, cold.Results[i].Stats) {
			t.Fatalf("candidate %d: cached stats diverge", i)
		}
	}
	st, _ := srv.Statusz(context.Background())
	if st.CacheMisses != 6 || st.CacheHits != 6 {
		t.Fatalf("statusz hits/misses = %d/%d, want 6/6", st.CacheHits, st.CacheMisses)
	}
	if st.CacheEntries != 6 || st.Candidates != 12 || st.Requests != 2 {
		t.Fatalf("statusz bookkeeping off: %+v", st)
	}
}

// TestWithinBatchDuplicatesSimulateOnce checks the singleflight layer: a
// batch repeating one candidate must cost one simulation.
func TestWithinBatchDuplicatesSimulateOnce(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.ARM}, WorkersPerArch: 4})
	one := tinyCandidates(t, 1, 1)[0]
	req := &SimulateRequest{
		Arch:       "arm",
		Workload:   ConvGroupSpec(te.ScaleTiny, 1),
		Candidates: []Candidate{one, one, one, one},
	}
	resp, err := srv.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, res := range resp.Results {
		if res.Err != "" {
			t.Fatalf("candidate %d: %s", i, res.Err)
		}
		if res.CacheHit {
			hits++
		}
		if !reflect.DeepEqual(res.Stats, resp.Results[0].Stats) {
			t.Fatalf("candidate %d: duplicate stats diverge", i)
		}
	}
	if hits != 3 {
		t.Fatalf("%d of 4 duplicates were hits, want 3", hits)
	}
	if sh := srv.shards[isa.ARM].simulated.Load(); sh != 1 {
		t.Fatalf("%d simulations for 4 identical candidates", sh)
	}
}

// TestDeterministicFailuresAreCached checks broken candidates fail fast the
// second time: the error is content-addressed like any result.
func TestDeterministicFailuresAreCached(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}})
	req := &SimulateRequest{
		Arch:     "riscv",
		Workload: ConvGroupSpec(te.ScaleTiny, 0),
		Candidates: []Candidate{
			{Steps: []schedule.Step{{Kind: "split", Leaf: 99, Factor: 2}}},
		},
	}
	first, err := srv.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Results[0].Err == "" || first.Results[0].CacheHit {
		t.Fatalf("want cold deterministic failure, got %+v", first.Results[0])
	}
	second, err := srv.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Results[0].Err != first.Results[0].Err || !second.Results[0].CacheHit {
		t.Fatalf("want cached failure, got %+v", second.Results[0])
	}
}

// TestSimulateRejectsBadRequests checks whole-batch validation.
func TestSimulateRejectsBadRequests(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.X86}})
	cases := []SimulateRequest{
		{Arch: "sparc", Workload: ConvGroupSpec(te.ScaleTiny, 0)},
		{Arch: "riscv", Workload: ConvGroupSpec(te.ScaleTiny, 0)}, // not served
		{Arch: "x86", Workload: WorkloadSpec{Kind: "winograd"}},
	}
	for i, req := range cases {
		if _, err := srv.Simulate(context.Background(), &req); err == nil {
			t.Errorf("request %d must fail", i)
		}
	}
}

// TestSimulateCancellation checks a dead context aborts the batch instead of
// leaking work into the queue.
func TestSimulateCancellation(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := srv.Simulate(ctx, &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, 1),
		Candidates: tinyCandidates(t, 1, 8),
	})
	if err == nil || !strings.Contains(err.Error(), "batch canceled") {
		t.Fatalf("err = %v, want batch canceled", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("a canceled batch must classify as retryable, got %v", err)
	}
	st, _ := srv.Statusz(context.Background())
	for _, sh := range st.Shards {
		if sh.Queued != 0 || sh.Running != 0 {
			t.Fatalf("cancelled batch left work behind: %+v", sh)
		}
	}
}

// TestConcurrentBatchSubmission hammers one server from many clients with
// overlapping batches (run under -race in CI): every response must carry
// stats bit-identical to the in-process reference regardless of which
// goroutine's flight computed them.
func TestConcurrentBatchSubmission(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 4})
	const group = 3
	cands := tinyCandidates(t, group, 10)
	refs := make([]sim.Stats, len(cands))
	for i, c := range cands {
		refs[i] = normalized(referenceStats(t, isa.RISCV, group, c.Steps))
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each client rotates the shared candidate list so batches
			// overlap at shifted offsets — the cross-client re-proposal
			// pattern the cache exists for.
			idx := make([]int, len(cands))
			for i := range idx {
				idx[i] = (i + c) % len(cands)
			}
			for round := 0; round < 3; round++ {
				req := &SimulateRequest{Arch: "riscv", Workload: ConvGroupSpec(te.ScaleTiny, group)}
				for _, i := range idx {
					req.Candidates = append(req.Candidates, cands[i])
				}
				resp, err := srv.Simulate(context.Background(), req)
				if err != nil {
					errs <- err
					return
				}
				for j, i := range idx {
					if resp.Results[j].Err != "" {
						errs <- fmt.Errorf("client %d: candidate %d: %s", c, i, resp.Results[j].Err)
						return
					}
					if got := normalized(resp.Results[j].Stats); !reflect.DeepEqual(got, refs[i]) {
						errs <- fmt.Errorf("client %d: candidate %d: stats diverge", c, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, _ := srv.Statusz(context.Background())
	if st.CacheMisses != uint64(len(cands)) {
		t.Fatalf("%d misses across all clients, want one per unique candidate (%d)",
			st.CacheMisses, len(cands))
	}
	wantServed := uint64(clients * 3 * len(cands))
	if st.CacheHits+st.CacheMisses != wantServed {
		t.Fatalf("served %d candidates, want %d", st.CacheHits+st.CacheMisses, wantServed)
	}
}

// TestCacheEviction checks the capacity bound holds.
func TestCacheEviction(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, CacheCapacity: 4})
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, 1),
		Candidates: tinyCandidates(t, 1, 9),
	}
	if _, err := srv.Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if n := srv.cache.len(); n > 4 {
		t.Fatalf("cache holds %d entries, capacity 4", n)
	}
}

// TestHTTPRoundTrip drives the full wire path: JSON encode, HTTP server,
// decode — stats must survive bit-identically, statusz must be served, and
// protocol misuse must map to HTTP errors.
func TestHTTPRoundTrip(t *testing.T) {
	srv := mustServer(t, Config{Archs: []isa.Arch{isa.ARM}, WorkersPerArch: 2})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := NewClient(hs.URL)

	req := &SimulateRequest{
		Arch:       "arm",
		Workload:   ConvGroupSpec(te.ScaleTiny, 4),
		Candidates: tinyCandidates(t, 4, 4),
	}
	resp, err := cl.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range resp.Results {
		if res.Err != "" {
			t.Fatalf("candidate %d: %s", i, res.Err)
		}
		want := referenceStats(t, isa.ARM, 4, req.Candidates[i].Steps)
		if got, ref := normalized(res.Stats), normalized(want); !reflect.DeepEqual(got, ref) {
			t.Fatalf("candidate %d: stats did not survive the wire:\n got %+v\nwant %+v", i, got, ref)
		}
	}
	st, err := cl.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheMisses != 4 || len(st.Shards) != 1 || st.Shards[0].Arch != "arm" {
		t.Fatalf("statusz over HTTP off: %+v", st)
	}

	// Protocol misuse.
	if _, err := cl.Simulate(context.Background(), &SimulateRequest{Arch: "sparc"}); err == nil {
		t.Fatal("unknown arch must surface as an HTTP error")
	}
	getResp, err := http.Get(hs.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/simulate = %d, want 405", getResp.StatusCode)
	}
	postResp, err := http.Post(hs.URL+"/v1/simulate", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", postResp.StatusCode)
	}
}
